package jpegact

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/offload/codec"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// TestCompressActivationAllocs guards the allocation budget of the hot
// compression path. The seed implementation allocated 4123 objects per
// CompressActivation call (per-block DCT temporaries escaping through an
// indirect transform call, a flat ZVC copy, a codes tensor, fresh padded
// planes); pooled scratch buffers and devirtualized DCT kernels brought
// that down to ~23. The bound leaves slack for benign churn but fails
// loudly if per-block allocations ever creep back in.
func TestCompressActivationAllocs(t *testing.T) {
	r := tensor.NewRNG(1)
	x := data.ActivationTensor(r, 4, 16, 32, 32, 0.5, 1.0)
	m := JPEGACT()

	// Pin to one worker: goroutine spawns would otherwise count as
	// allocations and vary with GOMAXPROCS.
	prev := SetParallelWorkers(1)
	defer SetParallelWorkers(prev)

	// Warm the sync.Pools so the steady state is measured.
	CompressActivation(m, x, KindConv, 10)

	allocs := testing.AllocsPerRun(10, func() {
		CompressActivation(m, x, KindConv, 10)
	})
	const maxAllocs = 200 // seed: 4123; current: ~23
	if allocs > maxAllocs {
		t.Fatalf("CompressActivation allocates %.0f objects/op, budget %d (seed was 4123)",
			allocs, maxAllocs)
	}
}

// TestGradExchangeAllocs guards the data-parallel gradient exchange hot
// path: one encode+decode round trip per chunk per microbatch per step,
// driven exactly as the trainer drives it — a pooled staging tensor
// into EncodeGradient, the frame across the wire codec, and
// DecodeGradientInto a pooled destination. The only per-op allocations
// allowed are the wire artifacts that must be fresh (the payload and
// frame the transport retains for resends, the decoded frame's slices)
// — a small constant per chunk, never per element. The budget fails
// loudly if a fresh tensor or staging copy ever sneaks back in.
func TestGradExchangeAllocs(t *testing.T) {
	const n = 1 << 14 // one quarter-size chunk: enough to expose per-element churn
	r := tensor.NewRNG(3)
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = float32(r.Norm()) * 0.01
	}

	prev := SetParallelWorkers(1)
	defer SetParallelWorkers(prev)

	p := codec.Pipeline{}
	staging := &tensor.Tensor{Shape: tensor.Shape{N: 1, C: 1, H: 1, W: n}, Data: make([]float32, n)}
	dst := make([]float32, n)

	for _, gc := range []frame.Codec{frame.CodecGradRaw, frame.CodecGradQuant} {
		gc := gc
		roundTrip := func() {
			copy(staging.Data, grad)
			enc, err := p.EncodeGradient(gc, staging)
			if err != nil {
				t.Fatal(err)
			}
			wire := frame.EncodeFrame(enc.Frame)
			f, err := frame.DecodeFrame(wire)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.DecodeGradientInto(f, dst); err != nil {
				t.Fatal(err)
			}
		}
		roundTrip() // warm any pools below the codec
		allocs := testing.AllocsPerRun(10, roundTrip)
		const maxAllocs = 24
		if allocs > maxAllocs {
			t.Fatalf("%s gradient chunk round trip allocates %.0f objects/op, budget %d",
				gc, allocs, maxAllocs)
		}
	}
}

// TestDecodeCoefficientsAllocs guards the coefficient-restore hot path:
// DecodeCoefficients runs once per qualifying saved activation per
// backward step, so per-block allocations there would undo the win of
// skipping the inverse transform. With the plane and its block storage
// drawn from pools, a steady-state decode+release cycle costs only the
// plane bookkeeping (~a dozen objects); the budget fails loudly if
// per-block temporaries ever start escaping.
func TestDecodeCoefficientsAllocs(t *testing.T) {
	r := tensor.NewRNG(2)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)

	p := codec.New(quant.OptL())
	enc, err := p.Encode(compress.KindConv, x)
	if err != nil {
		t.Fatal(err)
	}
	f, err := frame.DecodeFrame(frame.EncodeFrame(enc.Frame))
	if err != nil {
		t.Fatal(err)
	}

	prev := SetParallelWorkers(1)
	defer SetParallelWorkers(prev)

	// Warm the plane/block pools so the steady state is measured.
	if pl, err := p.DecodeCoefficients(f); err != nil {
		t.Fatal(err)
	} else {
		pl.Release()
	}

	allocs := testing.AllocsPerRun(10, func() {
		pl, err := p.DecodeCoefficients(f)
		if err != nil {
			t.Fatal(err)
		}
		pl.Release()
	})
	const maxAllocs = 16
	if allocs > maxAllocs {
		t.Fatalf("DecodeCoefficients+Release allocates %.0f objects/op, budget %d",
			allocs, maxAllocs)
	}
}
