package jpegact

import (
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/tensor"
)

// TestCompressActivationAllocs guards the allocation budget of the hot
// compression path. The seed implementation allocated 4123 objects per
// CompressActivation call (per-block DCT temporaries escaping through an
// indirect transform call, a flat ZVC copy, a codes tensor, fresh padded
// planes); pooled scratch buffers and devirtualized DCT kernels brought
// that down to ~23. The bound leaves slack for benign churn but fails
// loudly if per-block allocations ever creep back in.
func TestCompressActivationAllocs(t *testing.T) {
	r := tensor.NewRNG(1)
	x := data.ActivationTensor(r, 4, 16, 32, 32, 0.5, 1.0)
	m := JPEGACT()

	// Pin to one worker: goroutine spawns would otherwise count as
	// allocations and vary with GOMAXPROCS.
	prev := SetParallelWorkers(1)
	defer SetParallelWorkers(prev)

	// Warm the sync.Pools so the steady state is measured.
	CompressActivation(m, x, KindConv, 10)

	allocs := testing.AllocsPerRun(10, func() {
		CompressActivation(m, x, KindConv, 10)
	})
	const maxAllocs = 200 // seed: 4123; current: ~23
	if allocs > maxAllocs {
		t.Fatalf("CompressActivation allocates %.0f objects/op, budget %d (seed was 4123)",
			allocs, maxAllocs)
	}
}
