#!/bin/sh
# Runs the parallel-path micro-benchmarks and writes BENCH_parallel.json
# at the repo root. Usage:
#
#   scripts/bench.sh          # record the "after" numbers
#   scripts/bench.sh before   # record a "before" baseline (e.g. on the
#                             # parent commit) into BENCH_parallel.before.txt
#
# The committed BENCH_parallel.json pairs the seed baseline (captured on
# the pre-parallel tree) with the current tree's numbers.
set -e
cd "$(dirname "$0")/.."

label="${1:-after}"
out="BENCH_parallel.${label}.txt"

go test -run '^$' -benchtime=20x -benchmem \
  -bench 'BenchmarkGemm$|BenchmarkGemmTA$|BenchmarkGemmTB$|BenchmarkQuantizeBlocks$|BenchmarkReconstructBlocks$|BenchmarkRoundtripZVC$|BenchmarkCompressJPEGACT$|BenchmarkTrainStep$' \
  ./... | tee "$out"

echo "wrote $out (GOMAXPROCS=$(go env GOMAXPROCS 2>/dev/null || echo "$(nproc)") cores=$(nproc))"
echo "merge before/after into BENCH_parallel.json by hand or rerun the recording step"

# Offload pipeline: sync vs async step wall-clock over the simulated DMA
# channel. The command exits non-zero if the async trajectory diverges
# from sync, so a regression in bit-exactness fails the bench run too.
go run ./cmd/offloadbench > BENCH_offload.json
echo "wrote BENCH_offload.json:"
grep -E 'speedup|trajectory' BENCH_offload.json

# Kernel benchmarks (fused AAN codec + packed GEMM): one serial row and
# one all-cores row, recorded as raw `go test -bench` output. The
# committed BENCH_kernels.json pairs the saxpy/pre-fusion reference
# numbers (the *SaxpyRef benchmarks and the pre-rewrite baseline run)
# with these.
kbench='BenchmarkGemm$|BenchmarkGemmTA$|BenchmarkGemmTB$|BenchmarkGemmSaxpyRef$|BenchmarkGemmTASaxpyRef$|BenchmarkGemmTBSaxpyRef$|BenchmarkCompressJPEGACT$|BenchmarkTrainStep$|BenchmarkAANForward8x8$|BenchmarkLLMForward8x8$'
kout="BENCH_kernels.${label}.txt"
: > "$kout"
for procs in 1 "$(nproc)"; do
  echo "# GOMAXPROCS=$procs" >> "$kout"
  GOMAXPROCS="$procs" go test -run '^$' -benchtime=2s -benchmem \
    -bench "$kbench" ./... | tee -a "$kout"
done
echo "wrote $kout (cores=$(nproc)); merge into BENCH_kernels.json by hand"

# Networked activation store: multi-client training load against an
# in-process actstore server on a unix socket, sweeping 1/2/4 clients
# and recording aggregate throughput plus request-latency percentiles.
# Runs with 2-way replication and 5ms hedged GETs so the report also
# carries the failure-domain overheads: the replicated-overhead pass
# compares one client's PUT p95 against single- vs two-replica servers
# (acceptance: replicated_p95_overhead <= 1.25) and the hedged counter
# shows how often the tail raced a second connection. The command exits
# non-zero if any client's trajectory diverges from the local
# in-process reference.
go run ./cmd/offloadbench -net -clients 1,2,4 -replicas 2 -hedge 5ms > BENCH_netstore.json
echo "wrote BENCH_netstore.json:"
grep -E 'clients|throughput|p99|trajectory|replica|hedged' BENCH_netstore.json

# Frequency-domain restore: the spatial vs coefficient-path backward pair
# (BN + 1x1 conv over offload-restored activations) plus the TrainStep
# guard showing the opt-in path costs nothing when disabled. The
# committed BENCH_dctdomain.json pairs a full-decode baseline run with
# the coefficient-path numbers from the same machine.
dout="BENCH_dctdomain.${label}.txt"
go test -run '^$' -benchtime=20x -benchmem \
  -bench 'BenchmarkBackwardSpatial$|BenchmarkBackwardFreqDomain$|BenchmarkTrainStep$' \
  . ./internal/nn | tee "$dout"
echo "wrote $dout; merge before/after into BENCH_dctdomain.json by hand"
