#!/bin/sh
# Runs every benchmark family and records BENCH_*.json / BENCH_*.txt at
# the repo root. Usage:
#
#   scripts/bench.sh          # record the "after" numbers
#   scripts/bench.sh before   # record a "before" baseline (e.g. on the
#                             # parent commit) into BENCH_*.before.txt
#
# The JSON reports (offload, netstore, dataparallel) are emitted by
# cmd/offloadbench and share one schema: every report embeds a "meta"
# provenance block (machine, os/arch, cores, gomaxprocs, go version,
# git rev) via internal/benchmeta, so numbers recorded on different
# machines or revisions are never silently compared. The raw `go test
# -bench` captures are plain text; merge before/after pairs into the
# committed BENCH_*.json by hand.
set -e
cd "$(dirname "$0")/.."

label="${1:-after}"

# record <outfile> <benchtime> <regex> <pkgs...>: one `go test -bench`
# capture appended to <outfile> under the current GOMAXPROCS.
record() {
  out="$1"; benchtime="$2"; regex="$3"; shift 3
  go test -run '^$' -benchtime="$benchtime" -benchmem -bench "$regex" "$@" | tee -a "$out"
}

# Parallel-path micro-benchmarks -> BENCH_parallel.<label>.txt.
pout="BENCH_parallel.${label}.txt"
: > "$pout"
record "$pout" 20x \
  'BenchmarkGemm$|BenchmarkGemmTA$|BenchmarkGemmTB$|BenchmarkQuantizeBlocks$|BenchmarkReconstructBlocks$|BenchmarkRoundtripZVC$|BenchmarkCompressJPEGACT$|BenchmarkTrainStep$' \
  ./...
echo "wrote $pout (GOMAXPROCS=$(go env GOMAXPROCS 2>/dev/null || echo "$(nproc)") cores=$(nproc))"

# Offload pipeline: sync vs async step wall-clock over the simulated DMA
# channel. The command exits non-zero if the async trajectory diverges
# from sync, so a regression in bit-exactness fails the bench run too.
go run ./cmd/offloadbench > BENCH_offload.json
echo "wrote BENCH_offload.json:"
grep -E 'speedup|trajectory' BENCH_offload.json

# Kernel benchmarks (fused AAN codec + packed GEMM): one serial row and
# one all-cores row. The committed BENCH_kernels.json pairs the
# saxpy/pre-fusion reference numbers with these.
kbench='BenchmarkGemm$|BenchmarkGemmTA$|BenchmarkGemmTB$|BenchmarkGemmSaxpyRef$|BenchmarkGemmTASaxpyRef$|BenchmarkGemmTBSaxpyRef$|BenchmarkCompressJPEGACT$|BenchmarkTrainStep$|BenchmarkAANForward8x8$|BenchmarkLLMForward8x8$'
kout="BENCH_kernels.${label}.txt"
: > "$kout"
for procs in 1 "$(nproc)"; do
  echo "# GOMAXPROCS=$procs" >> "$kout"
  GOMAXPROCS="$procs" record "$kout" 2s "$kbench" ./...
done
echo "wrote $kout (cores=$(nproc)); merge into BENCH_kernels.json by hand"

# Networked activation store: multi-client training load against an
# in-process actstore server on a unix socket, sweeping 1/2/4 clients
# and recording aggregate throughput plus request-latency percentiles.
# Runs with 2-way replication and 5ms hedged GETs so the report also
# carries the failure-domain overheads (acceptance:
# replicated_p95_overhead <= 1.25). Exits non-zero if any client's
# trajectory diverges from the local in-process reference.
go run ./cmd/offloadbench -net -clients 1,2,4 -replicas 2 -hedge 5ms > BENCH_netstore.json
echo "wrote BENCH_netstore.json:"
grep -E 'clients|throughput|p99|trajectory|replica|hedged' BENCH_netstore.json

# Data-parallel replica scaling: K workers exchanging gradients through
# an in-process actstore on a unix socket (real wire costs, pipelined
# window 8), measured wall-clock speedup next to the gpusim ring
# all-reduce predictions, with every sweep point rerun in
# serial-exchange mode for the overlap baseline. Exits non-zero if any
# replica count — in either exchange mode — lands on weights that
# differ from K=1.
go run ./cmd/offloadbench -dp -dp-replicas 1,2,4 > BENCH_dataparallel.json
echo "wrote BENCH_dataparallel.json:"
grep -E 'replicas|speedup|weights_match' BENCH_dataparallel.json

# Frequency-domain restore: the spatial vs coefficient-path backward pair
# (BN + 1x1 conv over offload-restored activations) plus the TrainStep
# guard showing the opt-in path costs nothing when disabled.
dout="BENCH_dctdomain.${label}.txt"
: > "$dout"
record "$dout" 20x \
  'BenchmarkBackwardSpatial$|BenchmarkBackwardFreqDomain$|BenchmarkTrainStep$' \
  . ./internal/nn
echo "wrote $dout; merge before/after into BENCH_dctdomain.json by hand"
