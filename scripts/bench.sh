#!/bin/sh
# Runs the parallel-path micro-benchmarks and writes BENCH_parallel.json
# at the repo root. Usage:
#
#   scripts/bench.sh          # record the "after" numbers
#   scripts/bench.sh before   # record a "before" baseline (e.g. on the
#                             # parent commit) into BENCH_parallel.before.txt
#
# The committed BENCH_parallel.json pairs the seed baseline (captured on
# the pre-parallel tree) with the current tree's numbers.
set -e
cd "$(dirname "$0")/.."

label="${1:-after}"
out="BENCH_parallel.${label}.txt"

go test -run '^$' -benchtime=20x -benchmem \
  -bench 'BenchmarkGemm$|BenchmarkGemmTA$|BenchmarkGemmTB$|BenchmarkQuantizeBlocks$|BenchmarkReconstructBlocks$|BenchmarkRoundtripZVC$|BenchmarkCompressJPEGACT$|BenchmarkTrainStep$' \
  ./... | tee "$out"

echo "wrote $out (GOMAXPROCS=$(go env GOMAXPROCS 2>/dev/null || echo "$(nproc)") cores=$(nproc))"
echo "merge before/after into BENCH_parallel.json by hand or rerun the recording step"

# Offload pipeline: sync vs async step wall-clock over the simulated DMA
# channel. The command exits non-zero if the async trajectory diverges
# from sync, so a regression in bit-exactness fails the bench run too.
go run ./cmd/offloadbench > BENCH_offload.json
echo "wrote BENCH_offload.json:"
grep -E 'speedup|trajectory' BENCH_offload.json
