// Command offloadbench times offloaded training steps in sync,
// async/on-demand and async+prefetch modes over a simulated DMA channel
// (fixed per-transfer latency plus a bytes/bandwidth term, the cost
// model of the paper's PCIe path) and emits a JSON report. With the
// synchronous store every transfer stalls compute; the engine hides
// them behind the forward/backward passes, so the per-step wall-clock
// difference is exactly the offload–compute overlap the scheduler buys.
//
// All modes must land on the identical loss at every step — the report
// carries a trajectory_match flag asserting it.
//
//	offloadbench -steps 16 -latency 1ms -bandwidth 2 > BENCH_offload.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// simChannel charges every transfer a DMA setup latency plus a
// bandwidth term, sleeping for the sum — so the cost is hidden exactly
// when a concurrent goroutine has compute to run.
type simChannel struct {
	latency time.Duration
	bps     float64 // bytes per second
}

func (c *simChannel) xfer(n int) {
	d := c.latency
	if c.bps > 0 {
		d += time.Duration(float64(n) / c.bps * float64(time.Second))
	}
	time.Sleep(d)
}

func (c *simChannel) Send(b []byte) []byte { c.xfer(len(b)); return b }
func (c *simChannel) Recv(b []byte) []byte { c.xfer(len(b)); return b }

type modeResult struct {
	Mode        string    `json:"mode"`
	Steps       int       `json:"steps"`
	MSPerStep   float64   `json:"ms_per_step"` // median over timed steps
	MSPerStepP0 float64   `json:"ms_per_step_min"`
	TotalMS     float64   `json:"total_ms"`
	Losses      []float64 `json:"step_losses"`
	// Restore-path split (freq mode): how many restores the coefficient
	// path served vs. the total, and the served fraction. Layers outside
	// the coefficient plan must keep falling back to the full decode, so
	// a fraction of 0 or 1 is a wiring bug either way.
	Restored     uint64  `json:"restored,omitempty"`
	CoefRestores uint64  `json:"coef_restores,omitempty"`
	CoefFraction float64 `json:"coef_fraction,omitempty"`
}

type report struct {
	Benchmark       string       `json:"benchmark"`
	Model           string       `json:"model"`
	BatchSize       int          `json:"batch_size"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	LatencyUS       float64      `json:"channel_latency_us"`
	BandwidthGBps   float64      `json:"channel_bandwidth_gbps"`
	Results         []modeResult `json:"results"`
	SpeedupPrefetch float64      `json:"speedup_async_prefetch_vs_sync"`
	TrajectoryMatch bool         `json:"trajectory_match"`
}

// runMode trains `steps` batches through the offload engine and times
// each step: forward (with streaming save hooks in async mode), the
// commit barrier, restore preparation, backward and the optimizer
// update. No evaluation pass pollutes the timing — this measures the
// training step alone, where the overlap lives.
func runMode(mode string, cfg offload.EngineConfig, freq bool, steps, batch, width int, ch *simChannel) modeResult {
	m := models.ResNet18(models.Scale{Width: width, Blocks: 1}, 2, tensor.NewRNG(42))
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, H: 16, W: 16, Seed: 43,
	})
	opt := nn.NewSGD(0.05, 0.9, 0)

	store := offload.NewStore(quant.OptL())
	store.Channel = ch
	eng := offload.NewEngine(store, cfg)
	defer eng.Close()

	res := modeResult{Mode: mode, Steps: steps}
	times := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		x, labels := ds.Batch(batch)
		t0 := time.Now()

		eng.BeginStep()
		if cfg.Async {
			nn.SetHooks(m.Net, &nn.Hooks{OnSave: func(r *nn.ActRef) { eng.Offload(r) }})
		}
		out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
		loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)
		if freq {
			plan := nn.CoefficientPlan(m.Net)
			store.CoefPlan = func(ref *nn.ActRef) bool { return plan[ref] }
		}
		if _, _, err := eng.EndForward(m.Net.SavedRefs()); err != nil {
			fatal(mode, err)
		}
		if err := eng.PrepareBackward(); err != nil {
			fatal(mode, err)
		}
		if cfg.Async {
			nn.SetHooks(m.Net, &nn.Hooks{OnNeed: func(r *nn.ActRef) {
				if err := eng.Restore(r); err != nil {
					fatal(mode, err)
				}
			}})
		}
		m.Net.Backward(grad)
		nn.SetHooks(m.Net, nil)
		if err := eng.EndStep(); err != nil {
			fatal(mode, err)
		}
		if freq {
			store.CoefPlan = nil
			nn.ReleaseCoefficients(m.Net.SavedRefs())
		}
		opt.Step(m.Net.Params())

		elapsed := float64(time.Since(t0).Microseconds()) / 1e3
		times = append(times, elapsed)
		res.TotalMS += elapsed
		res.Losses = append(res.Losses, loss)
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	res.MSPerStep = sorted[len(sorted)/2]
	res.MSPerStepP0 = sorted[0]
	if freq {
		st := store.Stats()
		res.Restored = st.Restored
		res.CoefRestores = st.CoefRestores
		if st.Restored > 0 {
			res.CoefFraction = float64(st.CoefRestores) / float64(st.Restored)
		}
		if st.CoefRestores == 0 {
			fatal(mode, fmt.Errorf("no restore took the coefficient path"))
		}
		if st.CoefRestores >= st.Restored {
			fatal(mode, fmt.Errorf("all %d restores took the coefficient path; the spatial fallback never covered a non-capable layer", st.Restored))
		}
	}
	return res
}

func fatal(mode string, err error) {
	fmt.Fprintf(os.Stderr, "offloadbench: %s: %v\n", mode, err)
	os.Exit(1)
}

func main() {
	steps := flag.Int("steps", 16, "training steps to time")
	batch := flag.Int("batch", 8, "batch size")
	width := flag.Int("width", 10, "model base width")
	latency := flag.Duration("latency", time.Millisecond, "per-transfer DMA latency")
	gbps := flag.Float64("bandwidth", 2, "channel bandwidth in GB/s")
	flag.Parse()

	// The simulated channel is I/O, not compute: a transfer completion
	// must be serviceable while the compute goroutine holds the CPU, just
	// as a real DMA engine runs beside the cores. At GOMAXPROCS=1 the Go
	// scheduler parks expired channel timers behind the compute
	// goroutine's ~10ms preemption quantum, serializing the pipeline, so
	// give the runtime a second P (sleeping transfers burn no CPU).
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}

	ch := &simChannel{latency: *latency, bps: *gbps * 1e9}
	rep := report{
		Benchmark:     "offload_step_walltime",
		Model:         fmt.Sprintf("ResNet18/w%d", *width),
		BatchSize:     *batch,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		LatencyUS:     float64(latency.Microseconds()),
		BandwidthGBps: *gbps,
	}
	rep.Results = append(rep.Results,
		runMode("sync", offload.EngineConfig{}, false, *steps, *batch, *width, ch),
		runMode("async-ondemand", offload.EngineConfig{Async: true}, false, *steps, *batch, *width, ch),
		runMode("async-prefetch", offload.EngineConfig{Async: true, Prefetch: 4}, false, *steps, *batch, *width, ch),
		runMode("async-prefetch-freq", offload.EngineConfig{Async: true, Prefetch: 4}, true, *steps, *batch, *width, ch),
	)

	// Best-of-steps, not median: on a shared machine the minimum is the
	// closest estimate of the undisturbed step, and it is what the
	// overlap actually bounds.
	syncR, prefR := rep.Results[0], rep.Results[2]
	rep.SpeedupPrefetch = syncR.MSPerStepP0 / prefR.MSPerStepP0
	// Spatial modes must land on bit-identical losses. The freq mode's
	// gradients carry the documented coefficient-domain tolerance, so it
	// is held to a 5% per-step band around sync instead of bit-equality.
	rep.TrajectoryMatch = true
	for _, r := range rep.Results[1:3] {
		for i, l := range r.Losses {
			if l != rep.Results[0].Losses[i] {
				rep.TrajectoryMatch = false
			}
		}
	}
	for i, l := range rep.Results[3].Losses {
		ref := rep.Results[0].Losses[i]
		if diff := l - ref; diff > 5e-2*(1+ref) || diff < -5e-2*(1+ref) {
			rep.TrajectoryMatch = false
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "offloadbench:", err)
		os.Exit(1)
	}
	if !rep.TrajectoryMatch {
		fmt.Fprintln(os.Stderr, "offloadbench: modes disagree on the training trajectory")
		os.Exit(1)
	}
}
