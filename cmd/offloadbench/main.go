// Command offloadbench times offloaded training steps in sync,
// async/on-demand and async+prefetch modes over a simulated DMA channel
// (fixed per-transfer latency plus a bytes/bandwidth term, the cost
// model of the paper's PCIe path) and emits a JSON report. With the
// synchronous store every transfer stalls compute; the engine hides
// them behind the forward/backward passes, so the per-step wall-clock
// difference is exactly the offload–compute overlap the scheduler buys.
//
// All modes must land on the identical loss at every step — the report
// carries a trajectory_match flag asserting it.
//
//	offloadbench -steps 16 -latency 1ms -bandwidth 2 > BENCH_offload.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"jpegact/internal/benchmeta"
	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// simChannel charges every transfer a DMA setup latency plus a
// bandwidth term, sleeping for the sum — so the cost is hidden exactly
// when a concurrent goroutine has compute to run.
type simChannel struct {
	latency time.Duration
	bps     float64 // bytes per second
}

func (c *simChannel) xfer(n int) {
	d := c.latency
	if c.bps > 0 {
		d += time.Duration(float64(n) / c.bps * float64(time.Second))
	}
	time.Sleep(d)
}

func (c *simChannel) Send(b []byte) []byte { c.xfer(len(b)); return b }
func (c *simChannel) Recv(b []byte) []byte { c.xfer(len(b)); return b }

type modeResult struct {
	Mode        string    `json:"mode"`
	Steps       int       `json:"steps"`
	MSPerStep   float64   `json:"ms_per_step"` // median over timed steps
	MSPerStepP0 float64   `json:"ms_per_step_min"`
	TotalMS     float64   `json:"total_ms"`
	Losses      []float64 `json:"step_losses"`
	// Restore-path split (freq mode): how many restores the coefficient
	// path served vs. the total, and the served fraction. Layers outside
	// the coefficient plan must keep falling back to the full decode, so
	// a fraction of 0 or 1 is a wiring bug either way.
	Restored     uint64  `json:"restored,omitempty"`
	CoefRestores uint64  `json:"coef_restores,omitempty"`
	CoefFraction float64 `json:"coef_fraction,omitempty"`

	stats offload.Stats // full counter snapshot, for the net-mode report
}

type report struct {
	Benchmark       string         `json:"benchmark"`
	Meta            benchmeta.Meta `json:"meta"`
	Model           string         `json:"model"`
	BatchSize       int            `json:"batch_size"`
	GOMAXPROCS      int            `json:"gomaxprocs"`
	LatencyUS       float64        `json:"channel_latency_us"`
	BandwidthGBps   float64        `json:"channel_bandwidth_gbps"`
	Results         []modeResult   `json:"results"`
	SpeedupPrefetch float64        `json:"speedup_async_prefetch_vs_sync"`
	TrajectoryMatch bool           `json:"trajectory_match"`
}

// runMode trains `steps` batches through the offload engine and times
// each step: forward (with streaming save hooks in async mode), the
// commit barrier, restore preparation, backward and the optimizer
// update. No evaluation pass pollutes the timing — this measures the
// training step alone, where the overlap lives. setup configures the
// store's byte path (simulated DMA channel, or a netstore client).
func runMode(mode string, cfg offload.EngineConfig, freq bool, steps, batch, width int, setup func(*offload.Store)) modeResult {
	m := models.ResNet18(models.Scale{Width: width, Blocks: 1}, 2, tensor.NewRNG(42))
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, H: 16, W: 16, Seed: 43,
	})
	opt := nn.NewSGD(0.05, 0.9, 0)

	store := offload.NewStore(quant.OptL())
	if setup != nil {
		setup(store)
	}
	defer store.Close()
	eng := offload.NewEngine(store, cfg)
	defer eng.Close()

	res := modeResult{Mode: mode, Steps: steps}
	times := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		x, labels := ds.Batch(batch)
		// Snapshot forward side effects so a chaos-triggered recompute
		// (store set to PolicyRecompute by the -chaos setup) can replay
		// the step bit-exactly; a fatal wire failure then costs a replay
		// instead of the whole benchmark.
		pre := nn.CaptureNetState(m.Net)
		t0 := time.Now()

		eng.BeginStep()
		if cfg.Async {
			nn.SetHooks(m.Net, &nn.Hooks{OnSave: func(r *nn.ActRef) { eng.Offload(r) }})
		}
		out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
		loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)
		if freq {
			plan := nn.CoefficientPlan(m.Net)
			store.CoefPlan = func(ref *nn.ActRef) bool { return plan[ref] }
		}
		if store.Recovery.Policy == offload.PolicyRecompute {
			recomputes := 0
			store.Recovery.Recompute = func(_ *nn.ActRef) error {
				if recomputes >= 8 {
					return fmt.Errorf("recompute budget (8) exhausted")
				}
				recomputes++
				// Rewind and replay the forward with hooks detached, then
				// re-offload the fresh refs synchronously — the same
				// whole-step rebuild the trainer uses.
				nn.SetHooks(m.Net, nil)
				nn.RestoreNetState(m.Net, pre)
				m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
				store.Reset()
				_, _, oerr := store.OffloadAll(m.Net.SavedRefs())
				return oerr
			}
		}
		if _, _, err := eng.EndForward(m.Net.SavedRefs()); err != nil {
			fatal(mode, err)
		}
		if err := eng.PrepareBackward(); err != nil {
			fatal(mode, err)
		}
		if cfg.Async {
			nn.SetHooks(m.Net, &nn.Hooks{OnNeed: func(r *nn.ActRef) {
				if err := eng.Restore(r); err != nil {
					fatal(mode, err)
				}
			}})
		}
		m.Net.Backward(grad)
		nn.SetHooks(m.Net, nil)
		store.Recovery.Recompute = nil
		if err := eng.EndStep(); err != nil {
			fatal(mode, err)
		}
		if freq {
			store.CoefPlan = nil
			nn.ReleaseCoefficients(m.Net.SavedRefs())
		}
		opt.Step(m.Net.Params())

		elapsed := float64(time.Since(t0).Microseconds()) / 1e3
		times = append(times, elapsed)
		res.TotalMS += elapsed
		res.Losses = append(res.Losses, loss)
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	res.MSPerStep = sorted[len(sorted)/2]
	res.MSPerStepP0 = sorted[0]
	res.stats = store.Stats()
	if freq {
		st := res.stats
		res.Restored = st.Restored
		res.CoefRestores = st.CoefRestores
		if st.Restored > 0 {
			res.CoefFraction = float64(st.CoefRestores) / float64(st.Restored)
		}
		if st.CoefRestores == 0 {
			fatal(mode, fmt.Errorf("no restore took the coefficient path"))
		}
		if st.CoefRestores >= st.Restored {
			fatal(mode, fmt.Errorf("all %d restores took the coefficient path; the spatial fallback never covered a non-capable layer", st.Restored))
		}
	}
	return res
}

func fatal(mode string, err error) {
	fmt.Fprintf(os.Stderr, "offloadbench: %s: %v\n", mode, err)
	os.Exit(1)
}

// ensureProcs gives the runtime the second P the async overlap
// measurement needs (transfer completions must be serviceable while the
// compute goroutine holds a CPU, like a real DMA engine beside the
// cores). A GOMAXPROCS=1 pinned in the environment is refused loudly —
// silently overriding the user's pin would time a configuration they
// explicitly ruled out, and silently keeping it would serialize the
// pipeline and report a meaningless overlap.
func ensureProcs() int {
	if runtime.GOMAXPROCS(0) >= 2 {
		return runtime.GOMAXPROCS(0)
	}
	if env := os.Getenv("GOMAXPROCS"); env != "" {
		fmt.Fprintf(os.Stderr, "offloadbench: GOMAXPROCS=%s pins the runtime to one P; the async overlap measurement is meaningless without a second one.\n", env)
		fmt.Fprintln(os.Stderr, "offloadbench: unset GOMAXPROCS or set it >= 2 and re-run.")
		os.Exit(2)
	}
	runtime.GOMAXPROCS(2)
	return runtime.GOMAXPROCS(0)
}

func main() {
	steps := flag.Int("steps", 16, "training steps to time")
	batch := flag.Int("batch", 8, "batch size")
	width := flag.Int("width", 10, "model base width")
	latency := flag.Duration("latency", time.Millisecond, "per-transfer DMA latency")
	gbps := flag.Float64("bandwidth", 2, "channel bandwidth in GB/s")
	netMode := flag.Bool("net", false, "benchmark the networked activation store instead of the simulated DMA channel")
	clients := flag.String("clients", "1,2,4", "comma-separated client counts for the -net sweep")
	addr := flag.String("addr", "", "activation-store address for -net (unix:/path or tcp:host:port; empty starts an in-process server on a unix socket)")
	shards := flag.Int("shards", 0, "shard count for the in-process -net server (0 = default)")
	replicas := flag.Int("replicas", 1, "replica copies per PUT on the in-process -net server (also sets the replicated-overhead pass width)")
	pipeline := flag.Int("pipeline", 8, "wire pipelining window: max in-flight requests per connection (1 = stop-and-wait)")
	bucketBytes := flag.Int("bucket-bytes", 0, "with -dp: gradient bucket size in raw float32 bytes (0 = trainer default, 256KiB)")
	hedge := flag.Duration("hedge", 0, "with -net: hedge GETs slower than this on a second connection (0 = off)")
	storeTimeout := flag.Duration("store-timeout", 5*time.Second, "with -net: total wall budget per wire op across reconnect+resend (0 = unbounded)")
	chaos := flag.Uint64("chaos", 0, "with -net: seed for deterministic connection chaos (resets, stalls, latency spikes; 0 = off)")
	dpMode := flag.Bool("dp", false, "benchmark data-parallel replica scaling over the gradient-exchange transport")
	dpReplicas := flag.String("dp-replicas", "1,2,4", "comma-separated replica counts for the -dp sweep")
	microbatches := flag.Int("microbatches", 4, "with -dp: fixed microbatches per step (sets the replica ceiling)")
	gradCodec := flag.String("grad-codec", "raw", "with -dp: gradient codec (raw or quant)")
	flag.Parse()

	procs := ensureProcs()
	const prefetch = 4
	fmt.Fprintf(os.Stderr, "offloadbench: gomaxprocs=%d workers=%d prefetch=%d steps=%d batch=%d width=%d\n",
		procs, procs, prefetch, *steps, *batch, *width)

	if *dpMode {
		runDPBench(dpBenchConfig{
			addr: *addr, replicas: *dpReplicas, microbatches: *microbatches,
			gradCodec: *gradCodec, steps: *steps, batch: *batch, width: *width,
			procs: procs, window: *pipeline, bucketBytes: *bucketBytes,
			storeTimeout: *storeTimeout,
		})
		return
	}

	if *netMode {
		runNetBench(netBenchConfig{
			addr: *addr, clients: *clients, shards: *shards, replicas: *replicas,
			steps: *steps, batch: *batch, width: *width, procs: procs, prefetch: prefetch,
			pipeline: *pipeline, hedge: *hedge, storeTimeout: *storeTimeout, chaosSeed: *chaos,
		})
		return
	}

	ch := &simChannel{latency: *latency, bps: *gbps * 1e9}
	simSetup := func(s *offload.Store) { s.Channel = ch }
	rep := report{
		Benchmark:     "offload_step_walltime",
		Meta:          benchmeta.Collect(),
		Model:         fmt.Sprintf("ResNet18/w%d", *width),
		BatchSize:     *batch,
		GOMAXPROCS:    procs,
		LatencyUS:     float64(latency.Microseconds()),
		BandwidthGBps: *gbps,
	}
	rep.Results = append(rep.Results,
		runMode("sync", offload.EngineConfig{}, false, *steps, *batch, *width, simSetup),
		runMode("async-ondemand", offload.EngineConfig{Async: true}, false, *steps, *batch, *width, simSetup),
		runMode("async-prefetch", offload.EngineConfig{Async: true, Prefetch: prefetch}, false, *steps, *batch, *width, simSetup),
		runMode("async-prefetch-freq", offload.EngineConfig{Async: true, Prefetch: prefetch}, true, *steps, *batch, *width, simSetup),
	)

	// Best-of-steps, not median: on a shared machine the minimum is the
	// closest estimate of the undisturbed step, and it is what the
	// overlap actually bounds.
	syncR, prefR := rep.Results[0], rep.Results[2]
	rep.SpeedupPrefetch = syncR.MSPerStepP0 / prefR.MSPerStepP0
	// Spatial modes must land on bit-identical losses. The freq mode's
	// gradients carry the documented coefficient-domain tolerance, so it
	// is held to a 5% per-step band around sync instead of bit-equality.
	rep.TrajectoryMatch = true
	for _, r := range rep.Results[1:3] {
		for i, l := range r.Losses {
			if l != rep.Results[0].Losses[i] {
				rep.TrajectoryMatch = false
			}
		}
	}
	for i, l := range rep.Results[3].Losses {
		ref := rep.Results[0].Losses[i]
		if diff := l - ref; diff > 5e-2*(1+ref) || diff < -5e-2*(1+ref) {
			rep.TrajectoryMatch = false
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "offloadbench:", err)
		os.Exit(1)
	}
	if !rep.TrajectoryMatch {
		fmt.Fprintln(os.Stderr, "offloadbench: modes disagree on the training trajectory")
		os.Exit(1)
	}
}
