package main

// The -dp mode: data-parallel scaling sweep. For each replica count K
// the full deterministic trainer runs (train.ClassifierDataParallel) —
// same model seed, same data stream, same M microbatches — exchanging
// compressed gradients through the activation-store transport. The
// report carries measured wall-clock scaling next to the gpusim ring
// all-reduce prediction, and asserts that every K lands on weights
// bit-identical to K=1 (weights_match).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jpegact/internal/benchmeta"
	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/gpusim"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload/netstore"
	"jpegact/internal/offload/transport"
	"jpegact/internal/tensor"
	"jpegact/internal/train"
)

type dpBenchConfig struct {
	addr         string // external store ("" = in-process transport)
	replicas     string // sweep spec, e.g. "1,2,4"
	microbatches int
	gradCodec    string
	steps        int
	batch        int
	width        int
	procs        int
	window       int // wire pipelining window for the exchange clients
	bucketBytes  int // gradient bucket size (0 = trainer default)
	storeTimeout time.Duration
}

type dpKResult struct {
	Replicas        int     `json:"replicas"`
	TotalMS         float64 `json:"total_ms"`
	MSPerStep       float64 `json:"ms_per_step"`
	MeasuredSpeedup float64 `json:"measured_speedup"`
	// MSPerStepSerial is the same sweep point rerun with the
	// backward-overlapped bucketed exchange disabled (SerialExchange:
	// flatten, then ship, then reduce, stop-and-wait wire); the overlap
	// speedup is serial/overlapped wall time.
	MSPerStepSerial float64 `json:"ms_per_step_serial"`
	OverlapSpeedup  float64 `json:"overlap_speedup"`
	// PredictedIdeal is the gpusim ring model with a dedicated device
	// per replica (the paper-platform prediction); PredictedSpeedup
	// clamps the model's compute parallelism to this host's GOMAXPROCS,
	// which is what a measured sweep on one machine can honestly chase.
	PredictedIdeal   float64 `json:"predicted_ideal"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
	GradPuts         uint64  `json:"grad_puts"`
	GradGets         uint64  `json:"grad_gets"`
	BytesGrad        int64   `json:"bytes_grad"`
	Reconnects       uint64  `json:"reconnects,omitempty"`
	WeightsMatch     bool    `json:"weights_match"`
}

type dpReport struct {
	Benchmark    string         `json:"benchmark"`
	Meta         benchmeta.Meta `json:"meta"`
	Model        string         `json:"model"`
	BatchSize    int            `json:"batch_size"`
	Microbatches int            `json:"microbatches"`
	Steps        int            `json:"steps"`
	GradCodec    string         `json:"grad_codec"`
	GradBytes    int            `json:"grad_bytes"` // raw float32 gradient footprint
	Window       int            `json:"pipeline_window"`
	BucketBytes  int            `json:"bucket_bytes,omitempty"`
	Addr         string         `json:"addr,omitempty"`
	Results      []dpKResult    `json:"results"`
	WeightsMatch bool           `json:"weights_match"` // all K and both exchange modes bit-identical to K=1
}

func parseGradCodec(s string) frame.Codec {
	switch s {
	case "", "raw":
		return frame.CodecGradRaw
	case "quant":
		return frame.CodecGradQuant
	}
	fatal("dp", fmt.Errorf("unknown -grad-codec %q (want raw or quant)", s))
	return 0
}

// runDPBench drives the replica sweep and writes the JSON report to
// stdout (make bench-dp lands it in BENCH_dataparallel.json).
func runDPBench(cfg dpBenchConfig) {
	codec := parseGradCodec(cfg.gradCodec)
	if cfg.microbatches <= 0 {
		cfg.microbatches = 4
	}
	ks := parseClients(cfg.replicas) // same "1,2,4" spec syntax as -clients

	// The sweep always runs networked: an empty -addr spins an
	// in-process actstore on a unix socket (the -net arrangement), so
	// the measured exchange pays real wire costs and the overlap has
	// something to hide — the Local transport executes ops inline and
	// would make the serial/overlapped comparison vacuous.
	addr := cfg.addr
	if addr == "" {
		_, a, cleanup := startServer(netstore.Config{})
		defer cleanup()
		addr = a
	}
	dial, err := transport.DialAddr(addr)
	if err != nil {
		fatal("dp", err)
	}

	trainCfg := train.Config{
		Epochs: 1, BatchesPerEpoch: cfg.steps, BatchSize: cfg.batch,
		LR: 0.05, Seed: 42,
	}
	newFixture := func() (func() *models.Model, func() *models.Model, *data.Classification) {
		var first *models.Model
		factory := func() *models.Model {
			m := models.ResNet18(models.Scale{Width: cfg.width, Blocks: 1}, 2, tensor.NewRNG(42))
			if first == nil {
				first = m
			}
			return m
		}
		ds := data.NewClassification(data.ClassificationConfig{
			Classes: 2, Channels: 3, H: 16, W: 16, Seed: 43,
		})
		return factory, func() *models.Model { return first }, ds
	}

	// The gradient footprint (for the report and the gpusim prediction).
	probe := models.ResNet18(models.Scale{Width: cfg.width, Blocks: 1}, 2, tensor.NewRNG(42))
	gradBytes := 4 * nn.GradSize(probe.Net)
	gradRatio := 1.0
	if codec == frame.CodecGradQuant {
		gradRatio = 4 // int8 + scale vs float32, before ZVC
	}

	// Analytic prediction: the ring all-reduce model over the paper's
	// platform on the matching full-scale workload. Two variants: the
	// ideal one gives every replica its own device (the paper-platform
	// shape), the host one clamps compute parallelism to this machine's
	// GOMAXPROCS and credits the bucketed exchange with hiding half the
	// wire time when pipelining is on — the coarse stand-in the simple
	// model affords for the measured overlap.
	var workload gpusim.Workload
	for _, w := range gpusim.Workloads() {
		if w.Name == "ResNet18/IN" {
			workload = w
		}
	}
	simCfg := gpusim.TitanV(4)
	scheme := gpusim.JPEGAct(gpusim.JPEGActDefaultRatios())
	base := gpusim.DPConfig{GradBytes: float64(gradBytes), GradRatio: gradRatio}
	predIdeal := map[int]float64{}
	for _, r := range gpusim.DPSweep(workload, scheme, simCfg, base, ks) {
		predIdeal[r.GPUs] = r.Speedup
	}
	host := base
	host.HostCores = runtime.GOMAXPROCS(0)
	if cfg.window > 1 {
		host.Overlap = 0.5
	}
	predHost := map[int]float64{}
	for _, r := range gpusim.DPSweep(workload, scheme, simCfg, host, ks) {
		predHost[r.GPUs] = r.Speedup
	}

	rep := dpReport{
		Benchmark:    "dataparallel_scaling",
		Meta:         benchmeta.Collect(),
		Model:        fmt.Sprintf("ResNet18/w%d", cfg.width),
		BatchSize:    cfg.batch,
		Microbatches: cfg.microbatches,
		Steps:        cfg.steps,
		GradCodec:    codec.String(),
		GradBytes:    gradBytes,
		Window:       cfg.window,
		BucketBytes:  cfg.bucketBytes,
		Addr:         cfg.addr,
		WeightsMatch: true,
	}

	// runSweep trains one (K, exchange-mode) point and returns its wall
	// time, final weights, and counter snapshot.
	runSweep := func(k int, serial bool) (float64, []float32, transport.Snapshot) {
		factory, lead, ds := newFixture()
		start := time.Now()
		_, snap, err := train.ClassifierDataParallel(factory, ds, trainCfg, train.DPOptions{
			Replicas: k, Microbatches: cfg.microbatches, GradCodec: codec,
			StoreDial: dial, StoreTimeout: cfg.storeTimeout,
			Window: cfg.window, BucketBytes: cfg.bucketBytes, SerialExchange: serial,
		})
		if err != nil {
			fatal("dp", err)
		}
		wall := float64(time.Since(start).Microseconds()) / 1e3
		return wall, train.DPFinalWeights(lead()), snap
	}

	var refWeights []float32
	var refWall float64
	sameWeights := func(w []float32) bool {
		if len(w) != len(refWeights) {
			return false
		}
		for i := range w {
			if w[i] != refWeights[i] {
				return false
			}
		}
		return true
	}
	for _, k := range ks {
		wall, weights, snap := runSweep(k, false)
		serialWall, serialWeights, _ := runSweep(k, true)
		if refWeights == nil {
			refWeights, refWall = weights, wall
		}
		// Both exchange modes must land on the reference weights: the
		// overlap may only move wall time, never a float32 operation.
		match := sameWeights(weights) && sameWeights(serialWeights)
		if !match {
			rep.WeightsMatch = false
		}
		res := dpKResult{
			Replicas:         k,
			TotalMS:          wall,
			MSPerStep:        wall / float64(cfg.steps),
			MeasuredSpeedup:  refWall / wall,
			MSPerStepSerial:  serialWall / float64(cfg.steps),
			OverlapSpeedup:   serialWall / wall,
			PredictedIdeal:   predIdeal[k],
			PredictedSpeedup: predHost[k],
			GradPuts:         snap.GradPuts,
			GradGets:         snap.GradGets,
			BytesGrad:        snap.BytesGrad,
			Reconnects:       snap.Reconnects,
			WeightsMatch:     match,
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "offloadbench: dp K=%d wall=%.0fms serial=%.0fms overlap=%.2fx speedup=%.2fx (host %.2fx, ideal %.2fx) grad_puts=%d grad_gets=%d grad_bytes=%d match=%v\n",
			k, wall, serialWall, res.OverlapSpeedup, res.MeasuredSpeedup, res.PredictedSpeedup, res.PredictedIdeal, snap.GradPuts, snap.GradGets, snap.BytesGrad, match)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("dp", err)
	}
	if !rep.WeightsMatch {
		fmt.Fprintln(os.Stderr, "offloadbench: dp replica counts disagree on the final weights")
		os.Exit(1)
	}
}
