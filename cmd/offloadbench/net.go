package main

// The -net mode: multi-client load against the networked activation
// store. Each client is a full offloaded training loop (async engine,
// prefetch) whose store talks to the server over the wire protocol; the
// sweep scales the client count and reports aggregate throughput plus
// request-latency percentiles. All clients run the same seeds, so every
// trajectory must match a local in-process reference run bit for bit —
// the transport may only change timing, never bytes.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"jpegact/internal/offload"
	"jpegact/internal/offload/netstore"
	"jpegact/internal/offload/transport"
)

// latCollector gathers per-request wall-clock latencies from the
// NetClient hooks of every concurrent client.
type latCollector struct {
	mu sync.Mutex
	us []float64
}

func (l *latCollector) observe(_ uint8, d time.Duration) {
	us := float64(d.Nanoseconds()) / 1e3
	l.mu.Lock()
	l.us = append(l.us, us)
	l.mu.Unlock()
}

func (l *latCollector) percentiles() (n int, p50, p95, p99 float64) {
	l.mu.Lock()
	us := append([]float64(nil), l.us...)
	l.mu.Unlock()
	sort.Float64s(us)
	pct := func(p float64) float64 {
		if len(us) == 0 {
			return 0
		}
		i := int(p*float64(len(us)-1) + 0.5)
		return us[i]
	}
	return len(us), pct(.50), pct(.95), pct(.99)
}

type netClientsResult struct {
	Clients        int     `json:"clients"`
	TotalMS        float64 `json:"total_ms"`
	StepsPerSec    float64 `json:"steps_per_sec"`
	ThroughputMBps float64 `json:"throughput_mb_per_s"` // frame bytes put + verified back, over the wall clock
	Ops            int     `json:"ops"`
	P50us          float64 `json:"latency_p50_us"`
	P95us          float64 `json:"latency_p95_us"`
	P99us          float64 `json:"latency_p99_us"`
	Reconnects     uint64  `json:"reconnects"`
}

type netReport struct {
	Benchmark       string             `json:"benchmark"`
	Model           string             `json:"model"`
	BatchSize       int                `json:"batch_size"`
	Steps           int                `json:"steps"`
	GOMAXPROCS      int                `json:"gomaxprocs"`
	Workers         int                `json:"workers"`
	Prefetch        int                `json:"prefetch"`
	Addr            string             `json:"addr"`
	Shards          int                `json:"shards"`
	Results         []netClientsResult `json:"results"`
	TrajectoryMatch bool               `json:"trajectory_match"`
}

func parseClients(spec string) []int {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			fatal("net", fmt.Errorf("bad -clients entry %q", part))
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fatal("net", fmt.Errorf("-clients %q selects no client counts", spec))
	}
	return out
}

// runNetBench drives the client-count sweep and writes the JSON report
// to stdout (scripts/bench.sh lands it in BENCH_netstore.json).
func runNetBench(addr, clientsSpec string, shards, steps, batch, width, procs, prefetch int) {
	external := addr != ""
	if shards <= 0 {
		shards = netstore.DefaultShards
	}
	var srv *netstore.Server
	if !external {
		tmp, err := os.MkdirTemp("", "actstore")
		if err != nil {
			fatal("net", err)
		}
		defer os.RemoveAll(tmp)
		addr = "unix:" + filepath.Join(tmp, "store.sock")
		srv = netstore.New(netstore.Config{Shards: shards})
		ln, err := srv.Listen(addr)
		if err != nil {
			fatal("net", err)
		}
		go srv.Serve(ln)
		defer srv.Close()
	}
	dial, err := transport.DialAddr(addr)
	if err != nil {
		fatal("net", err)
	}

	cfg := offload.EngineConfig{Async: true, Prefetch: prefetch}
	// Every client runs the same seeds, so the local run is the exact
	// trajectory each of them must reproduce over the wire.
	ref := runMode("local-ref", cfg, false, steps, batch, width, nil)

	rep := netReport{
		Benchmark:       "netstore_multiclient",
		Model:           fmt.Sprintf("ResNet18/w%d", width),
		BatchSize:       batch,
		Steps:           steps,
		GOMAXPROCS:      procs,
		Workers:         procs,
		Prefetch:        prefetch,
		Addr:            addr,
		Shards:          shards,
		TrajectoryMatch: true,
	}

	for _, n := range parseClients(clientsSpec) {
		col := &latCollector{}
		results := make([]modeResult, n)
		var reconnects uint64
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				setup := func(s *offload.Store) {
					c := transport.NewNetClient(dial, s.Counters())
					c.Latency = col.observe
					s.Transport = c
					// Disjoint key spaces: concurrent clients must never
					// collide on the shared server.
					s.KeyBase = uint64(id+1) << 32
				}
				res := runMode(fmt.Sprintf("net-c%d-id%d", n, id), cfg, false, steps, batch, width, setup)
				mu.Lock()
				results[id] = res
				reconnects += res.stats.Reconnects
				mu.Unlock()
			}(id)
		}
		wg.Wait()
		wall := time.Since(start)

		var bytes int64
		for _, res := range results {
			bytes += res.stats.BytesOffloaded + res.stats.BytesVerified
			for i, l := range res.Losses {
				if l != ref.Losses[i] {
					rep.TrajectoryMatch = false
				}
			}
		}
		ops, p50, p95, p99 := col.percentiles()
		rep.Results = append(rep.Results, netClientsResult{
			Clients:        n,
			TotalMS:        float64(wall.Microseconds()) / 1e3,
			StepsPerSec:    float64(n*steps) / wall.Seconds(),
			ThroughputMBps: float64(bytes) / 1e6 / wall.Seconds(),
			Ops:            ops,
			P50us:          p50,
			P95us:          p95,
			P99us:          p99,
			Reconnects:     reconnects,
		})
		fmt.Fprintf(os.Stderr, "offloadbench: net clients=%d wall=%v ops=%d p50=%.0fus p95=%.0fus p99=%.0fus\n",
			n, wall.Round(time.Millisecond), ops, p50, p95, p99)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("net", err)
	}
	if !rep.TrajectoryMatch {
		fmt.Fprintln(os.Stderr, "offloadbench: a networked client diverged from the local trajectory")
		os.Exit(1)
	}
}
