package main

// The -net mode: multi-client load against the networked activation
// store. Each client is a full offloaded training loop (async engine,
// prefetch) whose store talks to the server over the wire protocol; the
// sweep scales the client count and reports aggregate throughput plus
// request-latency percentiles. All clients run the same seeds, so every
// trajectory must match a local in-process reference run bit for bit —
// the transport may only change timing, never bytes.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"jpegact/internal/benchmeta"
	"jpegact/internal/frame"
	"jpegact/internal/netfaults"
	"jpegact/internal/offload"
	"jpegact/internal/offload/codec"
	"jpegact/internal/offload/netstore"
	"jpegact/internal/offload/transport"
	"jpegact/internal/tensor"
)

// latCollector gathers per-request wall-clock latencies from the
// NetClient hooks of every concurrent client.
type latCollector struct {
	mu sync.Mutex
	us []float64
}

func (l *latCollector) observe(_ uint8, d time.Duration) {
	us := float64(d.Nanoseconds()) / 1e3
	l.mu.Lock()
	l.us = append(l.us, us)
	l.mu.Unlock()
}

func (l *latCollector) percentiles() (n int, p50, p95, p99 float64) {
	l.mu.Lock()
	us := append([]float64(nil), l.us...)
	l.mu.Unlock()
	sort.Float64s(us)
	pct := func(p float64) float64 {
		if len(us) == 0 {
			return 0
		}
		i := int(p*float64(len(us)-1) + 0.5)
		return us[i]
	}
	return len(us), pct(.50), pct(.95), pct(.99)
}

type netClientsResult struct {
	Clients        int     `json:"clients"`
	TotalMS        float64 `json:"total_ms"`
	StepsPerSec    float64 `json:"steps_per_sec"`
	ThroughputMBps float64 `json:"throughput_mb_per_s"` // frame bytes put + verified back, over the wall clock
	Ops            int     `json:"ops"`
	P50us          float64 `json:"latency_p50_us"`
	P95us          float64 `json:"latency_p95_us"`
	P99us          float64 `json:"latency_p99_us"`
	Reconnects     uint64  `json:"reconnects"`
	// Failure-domain counters: nonzero only when the run actually lived
	// through faults (chaos mode, hedging, a degrading store).
	Degraded   uint64 `json:"degraded,omitempty"`
	Hedged     uint64 `json:"hedged,omitempty"`
	Recomputed uint64 `json:"recomputed,omitempty"`
}

type netReport struct {
	Benchmark    string              `json:"benchmark"`
	Meta         benchmeta.Meta      `json:"meta"`
	Model        string              `json:"model"`
	BatchSize    int                 `json:"batch_size"`
	Steps        int                 `json:"steps"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	Workers      int                 `json:"workers"`
	Prefetch     int                 `json:"prefetch"`
	Addr         string              `json:"addr"`
	Shards       int                 `json:"shards"`
	Replicas     int                 `json:"replicas"`
	HedgeUS      float64             `json:"hedge_us,omitempty"`
	ChaosSeed    uint64              `json:"chaos_seed,omitempty"`
	Results      []netClientsResult  `json:"results"`
	ReplicaReads uint64              `json:"replica_reads,omitempty"`
	Chaos        *netfaults.Snapshot `json:"chaos,omitempty"`
	// Replicated-overhead pass (in-process server only): one client's
	// PUT p95 against a single-replica server vs an R-replica one. The
	// extra copies are server-side shard memcopies, so the acceptance
	// bar for the fan-out is <= 1.25x the single-replica p95.
	SingleP95us           float64 `json:"single_replica_put_p95_us,omitempty"`
	ReplicatedP95us       float64 `json:"replicated_put_p95_us,omitempty"`
	ReplicatedP95Overhead float64 `json:"replicated_p95_overhead,omitempty"`
	// Pipelining microbench (in-process server only): 64 GETs against a
	// server injecting a fixed per-response service delay, stop-and-wait
	// (window 1) vs a pipelined window on one connection. Pipelined
	// requests overlap their delays, so the expected speedup approaches
	// the window size; the acceptance bar is >= 2x.
	PipelineWindow  int     `json:"pipeline_window"`
	SerialGetMS     float64 `json:"serial_get_ms,omitempty"`
	PipelinedGetMS  float64 `json:"pipelined_get_ms,omitempty"`
	PipelineSpeedup float64 `json:"pipeline_speedup,omitempty"`
	TrajectoryMatch bool    `json:"trajectory_match"`
}

func parseClients(spec string) []int {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			fatal("net", fmt.Errorf("bad -clients entry %q", part))
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fatal("net", fmt.Errorf("-clients %q selects no client counts", spec))
	}
	return out
}

// netBenchConfig carries the -net mode's flag surface.
type netBenchConfig struct {
	addr         string
	clients      string
	shards       int
	replicas     int
	steps        int
	batch        int
	width        int
	procs        int
	prefetch     int
	pipeline     int
	hedge        time.Duration
	storeTimeout time.Duration
	chaosSeed    uint64
}

// startServer launches an in-process netstore server on a fresh unix
// socket and returns it with its address and a cleanup.
func startServer(cfg netstore.Config) (*netstore.Server, string, func()) {
	tmp, err := os.MkdirTemp("", "actstore")
	if err != nil {
		fatal("net", err)
	}
	addr := "unix:" + filepath.Join(tmp, "store.sock")
	srv := netstore.New(cfg)
	ln, err := srv.Listen(addr)
	if err != nil {
		fatal("net", err)
	}
	go srv.Serve(ln)
	return srv, addr, func() {
		srv.Close()
		os.RemoveAll(tmp)
	}
}

// replicatedOverheadPass times one client's wire PUTs against a fresh
// single-replica server and against an R-replica one, returning both
// p95s. Replication fans each PUT into R shard memcopies on the server,
// so the replicated p95 is expected within 1.25x of the single one.
func replicatedOverheadPass(cfg netBenchConfig, ec offload.EngineConfig, replicas int) (p95single, p95repl float64) {
	run := func(r int) float64 {
		srv, addr, cleanup := startServer(netstore.Config{Shards: cfg.shards, Replicas: r})
		defer cleanup()
		_ = srv
		dial, err := transport.DialAddr(addr)
		if err != nil {
			fatal("net", err)
		}
		col := &latCollector{}
		setup := func(s *offload.Store) {
			c := transport.NewNetClient(dial, s.Counters())
			c.Latency = func(op uint8, d time.Duration) {
				if op == transport.OpPut {
					col.observe(op, d)
				}
			}
			s.Transport = c
		}
		runMode(fmt.Sprintf("replica-overhead-r%d", r), ec, false, cfg.steps, cfg.batch, cfg.width, setup)
		_, _, p95, _ := col.percentiles()
		return p95
	}
	return run(1), run(replicas)
}

// pipelinePass times the same 64 GETs twice against a fresh server that
// injects a fixed per-response delay: once stop-and-wait (window 1) and
// once with `window` requests pipelined on the single connection. The
// delay dominates the wire time deterministically, so the measured
// ratio is the pipelining win itself, not scheduler noise.
func pipelinePass(window int) (serialMS, pipedMS float64) {
	const (
		ops   = 64
		delay = 2 * time.Millisecond
	)
	srv, addr, cleanup := startServer(netstore.Config{RespDelay: delay})
	defer cleanup()
	_ = srv
	dial, err := transport.DialAddr(addr)
	if err != nil {
		fatal("net", err)
	}
	// One small, valid gradient frame: the server CRC-validates PUT
	// bodies before storing them.
	x := &tensor.Tensor{Shape: tensor.Shape{N: 1, C: 1, H: 1, W: 64}, Data: make([]float32, 64)}
	enc, err := codec.Pipeline{}.EncodeGradient(frame.CodecGradRaw, x)
	if err != nil {
		fatal("net", err)
	}
	body := frame.EncodeFrame(enc.Frame)

	run := func(w int) float64 {
		c := transport.NewNetClient(dial, nil)
		c.Window = w
		defer c.Close()
		retry := transport.Retry{Attempts: 2}
		for k := 0; k < ops; k++ {
			if _, err := c.Put(uint64(k+1), body, retry); err != nil {
				fatal("net", err)
			}
		}
		start := time.Now()
		pending := make([]*transport.Pending, 0, ops)
		for k := 0; k < ops; k++ {
			pending = append(pending, c.GetAsync(uint64(k+1), retry, false))
		}
		for _, p := range pending {
			if _, err := p.GetResult(); err != nil {
				fatal("net", err)
			}
		}
		return float64(time.Since(start).Microseconds()) / 1e3
	}
	return run(1), run(window)
}

// runNetBench drives the client-count sweep and writes the JSON report
// to stdout (scripts/bench.sh lands it in BENCH_netstore.json).
func runNetBench(cfg netBenchConfig) {
	external := cfg.addr != ""
	if cfg.shards <= 0 {
		cfg.shards = netstore.DefaultShards
	}
	if cfg.replicas < 1 {
		cfg.replicas = 1
	}
	addr := cfg.addr
	var srv *netstore.Server
	if !external {
		var cleanup func()
		srv, addr, cleanup = startServer(netstore.Config{Shards: cfg.shards, Replicas: cfg.replicas})
		defer cleanup()
	}
	dial, err := transport.DialAddr(addr)
	if err != nil {
		fatal("net", err)
	}
	// Chaos mode wraps every connection in the deterministic fault
	// injector: resets mid-frame, stalls and latency spikes. Recovery is
	// content-transparent (reconnect+resend, recompute replay, breaker
	// degradation), so the trajectory check below still demands
	// bit-identity with the local reference.
	var inj *netfaults.Injector
	if cfg.chaosSeed != 0 {
		inj = netfaults.New(netfaults.Config{
			Seed:     cfg.chaosSeed,
			PReset:   0.01,
			PLatency: 0.02, Latency: time.Millisecond,
			PStall: 0.01, Stall: 10 * time.Millisecond,
		})
		dial = transport.Dialer(inj.WrapDialer(dial))
	}
	opTimeout := cfg.storeTimeout / 4
	if cfg.storeTimeout > 0 && opTimeout < 50*time.Millisecond {
		opTimeout = 50 * time.Millisecond
	}

	ec := offload.EngineConfig{Async: true, Prefetch: cfg.prefetch, PipelineWindow: cfg.pipeline}
	// Every client runs the same seeds, so the local run is the exact
	// trajectory each of them must reproduce over the wire.
	ref := runMode("local-ref", ec, false, cfg.steps, cfg.batch, cfg.width, nil)

	rep := netReport{
		Benchmark:       "netstore_multiclient",
		Meta:            benchmeta.Collect(),
		Model:           fmt.Sprintf("ResNet18/w%d", cfg.width),
		BatchSize:       cfg.batch,
		Steps:           cfg.steps,
		GOMAXPROCS:      cfg.procs,
		Workers:         cfg.procs,
		Prefetch:        cfg.prefetch,
		Addr:            addr,
		Shards:          cfg.shards,
		Replicas:        cfg.replicas,
		HedgeUS:         float64(cfg.hedge.Microseconds()),
		ChaosSeed:       cfg.chaosSeed,
		TrajectoryMatch: true,
	}

	for _, n := range parseClients(cfg.clients) {
		col := &latCollector{}
		results := make([]modeResult, n)
		var wg sync.WaitGroup
		start := time.Now()
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				setup := func(s *offload.Store) {
					c := transport.NewNetClient(dial, s.Counters())
					c.Latency = col.observe
					c.OpTimeout = opTimeout
					c.Hedge = cfg.hedge
					c.Window = cfg.pipeline
					s.Transport = c
					// Disjoint key spaces: concurrent clients must never
					// collide on the shared server.
					s.KeyBase = uint64(id+1) << 32
					s.Recovery.OpTimeout = opTimeout
					s.Recovery.Deadline = cfg.storeTimeout
					if cfg.chaosSeed != 0 {
						// Chaos runs must survive whole-op failures: retry
						// hard, replay the step when a restore is lost, and
						// degrade through the breaker rather than die.
						s.Recovery.Policy = offload.PolicyRecompute
						s.Recovery.MaxRetries = 8
						s.Breaker = offload.BreakerConfig{FailureThreshold: 1, ProbeAfter: 16}
					}
				}
				results[id] = runMode(fmt.Sprintf("net-c%d-id%d", n, id), ec, false, cfg.steps, cfg.batch, cfg.width, setup)
			}(id)
		}
		wg.Wait()
		wall := time.Since(start)

		var bytes int64
		var reconnects, degraded, hedged, recomputed uint64
		for _, res := range results {
			bytes += res.stats.BytesOffloaded + res.stats.BytesVerified
			reconnects += res.stats.Reconnects
			degraded += res.stats.Degraded
			hedged += res.stats.Hedged
			recomputed += res.stats.Recomputed
			for i, l := range res.Losses {
				if l != ref.Losses[i] {
					rep.TrajectoryMatch = false
				}
			}
		}
		ops, p50, p95, p99 := col.percentiles()
		rep.Results = append(rep.Results, netClientsResult{
			Clients:        n,
			TotalMS:        float64(wall.Microseconds()) / 1e3,
			StepsPerSec:    float64(n*cfg.steps) / wall.Seconds(),
			ThroughputMBps: float64(bytes) / 1e6 / wall.Seconds(),
			Ops:            ops,
			P50us:          p50,
			P95us:          p95,
			P99us:          p99,
			Reconnects:     reconnects,
			Degraded:       degraded,
			Hedged:         hedged,
			Recomputed:     recomputed,
		})
		fmt.Fprintf(os.Stderr, "offloadbench: net clients=%d wall=%v ops=%d p50=%.0fus p95=%.0fus p99=%.0fus\n",
			n, wall.Round(time.Millisecond), ops, p50, p95, p99)
	}

	if srv != nil {
		rep.ReplicaReads = srv.Snapshot().ReplicaReads
	}
	if inj != nil {
		snap := inj.Stats()
		rep.Chaos = &snap
	}

	// The replicated-overhead and pipelining passes need their own clean
	// servers, so they only run against the in-process backend and
	// outside chaos mode.
	if !external && inj == nil {
		r := cfg.replicas
		if r < 2 {
			r = 2
		}
		rep.SingleP95us, rep.ReplicatedP95us = replicatedOverheadPass(cfg, ec, r)
		if rep.SingleP95us > 0 {
			rep.ReplicatedP95Overhead = rep.ReplicatedP95us / rep.SingleP95us
		}
		fmt.Fprintf(os.Stderr, "offloadbench: replicated PUT p95 %.0fus vs single %.0fus (%.2fx, replicas=%d)\n",
			rep.ReplicatedP95us, rep.SingleP95us, rep.ReplicatedP95Overhead, r)
		if rep.ReplicatedP95Overhead > 1.25 {
			fmt.Fprintln(os.Stderr, "offloadbench: WARNING: replicated-PUT overhead exceeds the 1.25x acceptance bar")
		}

		w := cfg.pipeline
		if w < 2 {
			w = 8
		}
		rep.PipelineWindow = w
		rep.SerialGetMS, rep.PipelinedGetMS = pipelinePass(w)
		if rep.PipelinedGetMS > 0 {
			rep.PipelineSpeedup = rep.SerialGetMS / rep.PipelinedGetMS
		}
		fmt.Fprintf(os.Stderr, "offloadbench: pipelined GETs %.1fms vs serial %.1fms (%.2fx at window %d)\n",
			rep.PipelinedGetMS, rep.SerialGetMS, rep.PipelineSpeedup, w)
		if rep.PipelineSpeedup < 2 {
			fmt.Fprintln(os.Stderr, "offloadbench: WARNING: pipelining speedup below the 2x acceptance bar")
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("net", err)
	}
	if !rep.TrajectoryMatch {
		fmt.Fprintln(os.Stderr, "offloadbench: a networked client diverged from the local trajectory")
		os.Exit(1)
	}
}
