// Command acttrain trains one of the bundled mini networks under a chosen
// activation-compression method and reports per-epoch accuracy/PSNR,
// compression ratio and recovered-activation error.
//
// Usage:
//
//	acttrain -model ResNet50 -method jpeg-act -epochs 6
//	acttrain -model VDSR -method gist
//	acttrain -model WRN -method jpeg-base80 -epochs 8 -lr 0.03
//
// With -offload the activations really cross a host-memory channel as
// framed CRC-checked buffers; -flip/-trunc/-drop inject channel faults
// and -policy selects the recovery (fail|retry|recompute). -async runs
// the pipelined engine (offload–compute overlap with -prefetch restore
// lookahead and an optional -inflight byte budget); the trajectory is
// bit-identical to the synchronous path:
//
//	acttrain -model ResNet18 -offload -flip 1e-5 -policy recompute
//	acttrain -model ResNet18 -offload -async -prefetch 4 -inflight 262144
//
// With -store the offload traffic targets a shared networked activation
// store (cmd/actstore) instead of the in-process channel; -store-key
// namespaces this trainer's keys when several share one server:
//
//	acttrain -model ResNet18 -offload -async -store unix:/tmp/actstore.sock -store-key 1
//
// With -replicas K the step runs data-parallel: K workers train on
// disjoint microbatch shards and exchange compressed gradients through
// the activation-store transport (in-process, or a shared networked
// store with -store). Final weights are bit-identical for any K up to
// -microbatches:
//
//	acttrain -model ResNet18 -replicas 4 -microbatches 4 -grad-codec quant
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jpegact"
)

func methodByName(name string) (jpegact.Method, bool) {
	switch strings.ToLower(name) {
	case "baseline", "none", "vdnn":
		return jpegact.Baseline(), true
	case "cdma", "cdma+", "zvc":
		return jpegact.CDMAPlus(), true
	case "gist":
		return jpegact.GIST(), true
	case "sfpr":
		return jpegact.SFPR(), true
	case "jpeg-base80":
		return jpegact.JPEGBase(80), true
	case "jpeg-base60":
		return jpegact.JPEGBase(60), true
	case "jpeg-act", "optl5h":
		return jpegact.JPEGACT(), true
	case "optl":
		return jpegact.JPEGACTWith(jpegact.FixedDQT(jpegact.OptL())), true
	case "opth":
		return jpegact.JPEGACTWith(jpegact.FixedDQT(jpegact.OptH())), true
	}
	return nil, false
}

func main() {
	model := flag.String("model", "ResNet50", "VGG|ResNet18|ResNet50|ResNet101|WRN|VDSR")
	method := flag.String("method", "jpeg-act",
		"baseline|cdma|gist|sfpr|jpeg-base80|jpeg-base60|jpeg-act|optl|opth")
	epochs := flag.Int("epochs", 6, "training epochs")
	batches := flag.Int("batches", 8, "batches per epoch")
	batch := flag.Int("batch", 8, "batch size")
	lr := flag.Float64("lr", 0.05, "learning rate")
	width := flag.Int("width", 8, "base channel width")
	blocks := flag.Int("blocks", 1, "residual blocks per stage")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	useOffload := flag.Bool("offload", false,
		"route activations through the real host-memory offload channel")
	policy := flag.String("policy", "recompute",
		"corruption recovery with -offload: fail|retry|recompute")
	flip := flag.Float64("flip", 0, "channel bit-flip rate per byte")
	trunc := flag.Float64("trunc", 0, "channel truncation rate per transfer")
	drop := flag.Float64("drop", 0, "channel drop rate per transfer")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injector seed")
	maxRecompute := flag.Int("max-recompute", 16,
		"with -policy recompute: forward replays allowed per batch")
	async := flag.Bool("async", false,
		"with -offload: pipeline compression and channel transfers against compute")
	prefetch := flag.Int("prefetch", 4,
		"with -async: backward restore lookahead (0 = on-demand)")
	inflight := flag.Int("inflight", 0,
		"with -async: in-flight encoded byte budget (0 = unlimited)")
	freq := flag.Bool("freq", false,
		"with -offload: restore qualifying activations as DCT coefficient planes (skip the inverse transform)")
	store := flag.String("store", "",
		"with -offload: networked activation-store address (unix:/path or tcp:host:port; see cmd/actstore)")
	storeKey := flag.Uint64("store-key", 0,
		"with -store: client id namespacing this trainer's keys on the shared store (keys become id<<32 | seq)")
	storeTimeout := flag.Duration("store-timeout", 5*time.Second,
		"with -store: total wall budget per wire op across reconnect+resend; a dead store fails typed and trips the circuit breaker into degraded local mode (0 = unbounded)")
	storeHedge := flag.Duration("store-hedge", 0,
		"with -store: hedge restores slower than this on a second connection (0 = off)")
	noDegrade := flag.Bool("no-degrade", false,
		"with -store: disable the circuit breaker; wire failures fail the run instead of degrading to local offload")
	replicas := flag.Int("replicas", 0,
		"data-parallel replica workers exchanging gradients through the activation-store transport (0 = regular single-worker training)")
	microbatches := flag.Int("microbatches", 4,
		"with -replicas: fixed microbatches per step; weights are bit-identical for any replica count up to this")
	gradCodec := flag.String("grad-codec", "raw",
		"with -replicas: gradient exchange codec, raw (lossless) or quant (int8+ZVC)")
	flag.Parse()

	m, ok := methodByName(*method)
	if !ok {
		fmt.Fprintf(os.Stderr, "acttrain: unknown method %q\n", *method)
		os.Exit(2)
	}
	cfg := jpegact.TrainConfig{
		Method: m, Epochs: *epochs, BatchesPerEpoch: *batches,
		BatchSize: *batch, LR: *lr, MeasureError: true,
	}
	sc := jpegact.ModelScale{Width: *width, Blocks: *blocks}

	if *replicas > 0 {
		if *useOffload {
			fmt.Fprintln(os.Stderr, "acttrain: -replicas runs its own transport; drop -offload")
			os.Exit(2)
		}
		runDataParallel(*model, sc, cfg, *seed, *replicas, *microbatches, *gradCodec,
			*store, *storeTimeout, *storeHedge)
		return
	}

	if *useOffload {
		runOffloaded(*model, sc, cfg, *seed, *policy, *flip, *trunc, *drop, *faultSeed,
			*maxRecompute, *async, *prefetch, *inflight, *freq, *store, *storeKey,
			*storeTimeout, *storeHedge, *noDegrade)
		return
	}
	if *store != "" {
		fmt.Fprintln(os.Stderr, "acttrain: -store requires -offload")
		os.Exit(2)
	}

	var rep jpegact.TrainReport
	if *model == "VDSR" {
		if cfg.LR == 0.05 {
			cfg.LR = 0.01
		}
		rep = jpegact.TrainSuperRes(sc, cfg, *seed)
	} else {
		rep = jpegact.TrainClassifier(*model, sc, cfg, *seed)
	}

	fmt.Printf("model=%s method=%s\n", rep.ModelName, rep.MethodName)
	fmt.Printf("%-6s %-9s %-9s %-8s %-10s\n", "epoch", "loss", "score", "ratio", "act-L2-err")
	for _, e := range rep.Epochs {
		fmt.Printf("%-6d %-9.4f %-9.4f %-8.2f %-10.3e\n",
			e.Epoch, e.Loss, e.Score, e.CompressionRatio, e.ActL2Error)
	}
	fmt.Printf("best score %.4f, final ratio %.2fx, diverged=%v\n",
		rep.BestScore, rep.FinalRatio, rep.Diverged)
	if len(rep.Footprint) > 0 {
		fmt.Println("footprint by activation kind:")
		for _, fe := range rep.Footprint {
			fmt.Printf("  %-16s %8d B -> %8d B (%.2fx)\n",
				fe.Kind.String(), fe.OriginalBytes, fe.CompressedBytes,
				float64(fe.OriginalBytes)/float64(fe.CompressedBytes))
		}
	}
	if rep.Diverged {
		os.Exit(1)
	}
}

// runDataParallel trains with K replica workers exchanging gradients
// through the activation-store transport (in-process by default; a
// shared networked store with -store) and reports the exchange counters.
func runDataParallel(model string, sc jpegact.ModelScale, cfg jpegact.TrainConfig, seed uint64, replicas, microbatches int, gradCodec, store string, storeTimeout, storeHedge time.Duration) {
	if model == "VDSR" {
		fmt.Fprintln(os.Stderr, "acttrain: -replicas supports the classification models only")
		os.Exit(2)
	}
	dp := jpegact.DataParallelOptions{
		Replicas: replicas, Microbatches: microbatches,
		StoreTimeout: storeTimeout, StoreHedge: storeHedge, Verbose: true,
	}
	switch strings.ToLower(gradCodec) {
	case "", "raw":
		dp.GradCodec = jpegact.GradCodecRaw
	case "quant":
		dp.GradCodec = jpegact.GradCodecQuant
	default:
		fmt.Fprintf(os.Stderr, "acttrain: unknown grad codec %q (raw|quant)\n", gradCodec)
		os.Exit(2)
	}
	if store != "" {
		dial, err := jpegact.DialActivationStore(store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acttrain: %v\n", err)
			os.Exit(1)
		}
		dp.StoreDial = dial
	}
	cfg.Seed = seed

	rep, snap, err := jpegact.TrainClassifierDataParallel(model, sc, cfg, dp, seed)
	fmt.Printf("model=%s method=%s\n", rep.ModelName, rep.MethodName)
	fmt.Printf("%-6s %-9s %-9s\n", "epoch", "loss", "score")
	for _, e := range rep.Epochs {
		fmt.Printf("%-6d %-9.4f %-9.4f\n", e.Epoch, e.Loss, e.Score)
	}
	fmt.Printf("exchange: grad_puts=%d grad_gets=%d grad_bytes=%d reconnects=%d\n",
		snap.GradPuts, snap.GradGets, snap.BytesGrad, snap.Reconnects)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acttrain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("best score %.4f, diverged=%v\n", rep.BestScore, rep.Diverged)
	if rep.Diverged {
		os.Exit(1)
	}
}

// runOffloaded trains over the real host-memory channel, optionally
// fault-injected, and reports the store's recovery counters.
func runOffloaded(model string, sc jpegact.ModelScale, cfg jpegact.TrainConfig, seed uint64, policy string, flip, trunc, drop float64, faultSeed uint64, maxRecompute int, async bool, prefetch, inflight int, freq bool, store string, storeKey uint64, storeTimeout, storeHedge time.Duration, noDegrade bool) {
	if model == "VDSR" {
		fmt.Fprintln(os.Stderr, "acttrain: -offload supports the classification models only")
		os.Exit(2)
	}
	var pol jpegact.RecoveryPolicy
	switch strings.ToLower(policy) {
	case "fail":
		pol = jpegact.RecoverFail
	case "retry":
		pol = jpegact.RecoverRetry
	case "recompute":
		pol = jpegact.RecoverRecompute
	default:
		fmt.Fprintf(os.Stderr, "acttrain: unknown policy %q\n", policy)
		os.Exit(2)
	}
	oc := jpegact.OffloadTrainOptions{
		DQT: jpegact.OptL(), Policy: pol, MaxRecompute: maxRecompute, Verbose: true,
		FreqDomain: freq, StoreAddr: store, StoreKeyBase: storeKey << 32,
		StoreTimeout: storeTimeout, StoreHedge: storeHedge,
		Breaker: jpegact.StoreBreakerConfig{Disabled: noDegrade},
	}
	if store != "" && (flip > 0 || trunc > 0 || drop > 0) {
		fmt.Fprintln(os.Stderr, "acttrain: -flip/-trunc/-drop inject on the in-process channel; they have no effect with -store")
		os.Exit(2)
	}
	if async {
		oc.Async = true
		oc.InFlightBytes = inflight
		// The options treat 0 as "default lookahead"; the flag's 0 means
		// strictly on-demand.
		if prefetch <= 0 {
			oc.Prefetch = -1
		} else {
			oc.Prefetch = prefetch
		}
	}
	var inj *jpegact.FaultInjector
	if flip > 0 || trunc > 0 || drop > 0 {
		inj = jpegact.NewFaultInjector(jpegact.FaultConfig{
			Seed: faultSeed, BitFlipPerByte: flip, TruncationRate: trunc, DropRate: drop,
		})
		oc.Channel = inj
	}

	rep, stats, err := jpegact.TrainClassifierOffloaded(model, sc, cfg, oc, seed)
	fmt.Printf("model=%s method=%s\n", rep.ModelName, rep.MethodName)
	fmt.Printf("%-6s %-9s %-9s %-8s\n", "epoch", "loss", "score", "ratio")
	for _, e := range rep.Epochs {
		fmt.Printf("%-6d %-9.4f %-9.4f %-8.2f\n", e.Epoch, e.Loss, e.Score, e.CompressionRatio)
	}
	fmt.Printf("channel: offloaded=%d restored=%d corrupted=%d retried=%d recomputed=%d dropped=%d reconnects=%d verified=%dB\n",
		stats.Offloaded, stats.Restored, stats.Corrupted, stats.Retried,
		stats.Recomputed, stats.Dropped, stats.Reconnects, stats.BytesVerified)
	if stats.Degraded > 0 || stats.Hedged > 0 {
		fmt.Printf("failure-domain: degraded=%d hedged=%d\n", stats.Degraded, stats.Hedged)
	}
	if freq && stats.Restored > 0 {
		fmt.Printf("freq: coef_restores=%d/%d (%.1f%%)\n", stats.CoefRestores, stats.Restored,
			100*float64(stats.CoefRestores)/float64(stats.Restored))
	}
	if inj != nil {
		s := inj.Stats()
		fmt.Printf("injector: transfers=%d flips=%d truncations=%d drops=%d forced=%d\n",
			s.Transfers, s.Flips, s.Truncations, s.Drops, s.Forced)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "acttrain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("best score %.4f, final ratio %.2fx, diverged=%v\n",
		rep.BestScore, rep.FinalRatio, rep.Diverged)
	if rep.Diverged {
		os.Exit(1)
	}
}
