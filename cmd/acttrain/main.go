// Command acttrain trains one of the bundled mini networks under a chosen
// activation-compression method and reports per-epoch accuracy/PSNR,
// compression ratio and recovered-activation error.
//
// Usage:
//
//	acttrain -model ResNet50 -method jpeg-act -epochs 6
//	acttrain -model VDSR -method gist
//	acttrain -model WRN -method jpeg-base80 -epochs 8 -lr 0.03
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jpegact"
)

func methodByName(name string) (jpegact.Method, bool) {
	switch strings.ToLower(name) {
	case "baseline", "none", "vdnn":
		return jpegact.Baseline(), true
	case "cdma", "cdma+", "zvc":
		return jpegact.CDMAPlus(), true
	case "gist":
		return jpegact.GIST(), true
	case "sfpr":
		return jpegact.SFPR(), true
	case "jpeg-base80":
		return jpegact.JPEGBase(80), true
	case "jpeg-base60":
		return jpegact.JPEGBase(60), true
	case "jpeg-act", "optl5h":
		return jpegact.JPEGACT(), true
	case "optl":
		return jpegact.JPEGACTWith(jpegact.FixedDQT(jpegact.OptL())), true
	case "opth":
		return jpegact.JPEGACTWith(jpegact.FixedDQT(jpegact.OptH())), true
	}
	return nil, false
}

func main() {
	model := flag.String("model", "ResNet50", "VGG|ResNet18|ResNet50|ResNet101|WRN|VDSR")
	method := flag.String("method", "jpeg-act",
		"baseline|cdma|gist|sfpr|jpeg-base80|jpeg-base60|jpeg-act|optl|opth")
	epochs := flag.Int("epochs", 6, "training epochs")
	batches := flag.Int("batches", 8, "batches per epoch")
	batch := flag.Int("batch", 8, "batch size")
	lr := flag.Float64("lr", 0.05, "learning rate")
	width := flag.Int("width", 8, "base channel width")
	blocks := flag.Int("blocks", 1, "residual blocks per stage")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	flag.Parse()

	m, ok := methodByName(*method)
	if !ok {
		fmt.Fprintf(os.Stderr, "acttrain: unknown method %q\n", *method)
		os.Exit(2)
	}
	cfg := jpegact.TrainConfig{
		Method: m, Epochs: *epochs, BatchesPerEpoch: *batches,
		BatchSize: *batch, LR: *lr, MeasureError: true,
	}
	sc := jpegact.ModelScale{Width: *width, Blocks: *blocks}

	var rep jpegact.TrainReport
	if *model == "VDSR" {
		if cfg.LR == 0.05 {
			cfg.LR = 0.01
		}
		rep = jpegact.TrainSuperRes(sc, cfg, *seed)
	} else {
		rep = jpegact.TrainClassifier(*model, sc, cfg, *seed)
	}

	fmt.Printf("model=%s method=%s\n", rep.ModelName, rep.MethodName)
	fmt.Printf("%-6s %-9s %-9s %-8s %-10s\n", "epoch", "loss", "score", "ratio", "act-L2-err")
	for _, e := range rep.Epochs {
		fmt.Printf("%-6d %-9.4f %-9.4f %-8.2f %-10.3e\n",
			e.Epoch, e.Loss, e.Score, e.CompressionRatio, e.ActL2Error)
	}
	fmt.Printf("best score %.4f, final ratio %.2fx, diverged=%v\n",
		rep.BestScore, rep.FinalRatio, rep.Diverged)
	if len(rep.Footprint) > 0 {
		fmt.Println("footprint by activation kind:")
		for _, fe := range rep.Footprint {
			fmt.Printf("  %-16s %8d B -> %8d B (%.2fx)\n",
				fe.Kind.String(), fe.OriginalBytes, fe.CompressedBytes,
				float64(fe.OriginalBytes)/float64(fe.CompressedBytes))
		}
	}
	if rep.Diverged {
		os.Exit(1)
	}
}
