// Command actbench regenerates the paper's tables and figures.
//
// Usage:
//
//	actbench -exp table1            # one experiment, full scale
//	actbench -exp fig20 -quick      # reduced scale
//	actbench -all -quick            # every experiment
//	actbench -list                  # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"jpegact/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	list := flag.Bool("list", false, "list experiment ids")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	o := experiments.Options{Quick: *quick, Seed: *seed}
	ids := []string{*exp}
	if *all {
		ids = experiments.IDs()
	} else if *exp == "" {
		fmt.Fprintln(os.Stderr, "actbench: need -exp <id>, -all, or -list")
		os.Exit(2)
	}
	for _, id := range ids {
		r, err := experiments.Run(id, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "actbench:", err)
			os.Exit(1)
		}
		fmt.Println(r)
	}
}
