// Command dqtopt runs the §IV DQT optimization procedure (Fig. 9): it
// trains the generator network briefly, harvests dense activations, then
// minimizes O = (1-α)λ₁H + αλ₂L2 over the quantization table by
// finite-difference SGD, printing the trace and the resulting table in
// both exact and power-of-two (SH) form.
//
// Usage:
//
//	dqtopt -alpha 0.005 -iters 10          # optH-style table
//	dqtopt -alpha 0.025 -iters 10          # optL-style table
//	dqtopt -seed-table jpeg80 -grouped=false
package main

import (
	"flag"
	"fmt"
	"os"

	"jpegact"
	"jpegact/internal/data"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func main() {
	alpha := flag.Float64("alpha", 0.005, "rate/distortion trade-off (optL=0.025, optH=0.005)")
	iters := flag.Int("iters", 8, "SGD iterations")
	lr := flag.Float64("lr", 2.0, "SGD learning rate")
	diff := flag.Float64("diff", 5, "finite-difference step")
	grouped := flag.Bool("grouped", true, "optimize anti-diagonal groups instead of all 63 entries")
	seedTable := flag.String("seed-table", "uniform16", "uniform16|jpeg80|jpeg60|optl|opth")
	samples := flag.Int("samples", 4, "sample activation tensors")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	out := flag.String("out", "", "write the optimized table to this file (quant text format)")
	name := flag.String("name", "opt", "name recorded in the saved table")
	flag.Parse()

	var seedDQT quant.DQT
	switch *seedTable {
	case "uniform16":
		seedDQT = quant.Uniform("uniform16", 8, 16)
	case "jpeg80":
		seedDQT = quant.JPEGQuality(80)
	case "jpeg60":
		seedDQT = quant.JPEGQuality(60)
	case "optl":
		seedDQT = quant.OptL()
	case "opth":
		seedDQT = quant.OptH()
	default:
		fmt.Fprintf(os.Stderr, "dqtopt: unknown seed table %q\n", *seedTable)
		os.Exit(2)
	}

	// Sample activations: flat-spectrum activation-like tensors (the
	// shipped stand-in for the paper's 240 generator-network examples).
	r := tensor.NewRNG(*seed)
	acts := make([]*jpegact.Tensor, *samples)
	for i := range acts {
		acts[i] = data.ActivationTensor(r, 1, 8, 32, 32, 0.5, 1.0)
	}

	cfg := jpegact.DQTOptimizerConfig{
		Alpha: *alpha, LR: *lr, Diff: *diff, Iters: *iters, Grouped: *grouped,
	}
	d, trace := jpegact.OptimizeDQT(seedDQT, acts, cfg)

	fmt.Printf("seed=%s alpha=%g iters=%d grouped=%v\n", seedDQT.Name, *alpha, *iters, *grouped)
	fmt.Printf("%-5s %-10s %-12s %-12s\n", "iter", "entropy", "L2", "objective")
	for i, p := range trace {
		fmt.Printf("%-5d %-10.4f %-12.4e %-12.4f\n", i, p.Entropy, p.L2, p.O)
	}
	fmt.Println("optimized DQT (row-major):")
	for row := 0; row < 8; row++ {
		for col := 0; col < 8; col++ {
			fmt.Printf("%6.1f", d.Entries[row*8+col])
		}
		fmt.Println()
	}
	logs := d.ShiftLogs()
	fmt.Println("SH form (log2 shifts):")
	for row := 0; row < 8; row++ {
		for col := 0; col < 8; col++ {
			fmt.Printf("%3d", logs[row*8+col])
		}
		fmt.Println()
	}

	if *out != "" {
		d.Name = *name
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dqtopt:", err)
			os.Exit(1)
		}
		defer fh.Close()
		if err := d.Save(fh); err != nil {
			fmt.Fprintln(os.Stderr, "dqtopt:", err)
			os.Exit(1)
		}
		fmt.Println("saved table to", *out)
	}
}
