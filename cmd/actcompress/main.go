// Command actcompress compresses and decompresses activation tensors on
// disk using the JPEG-ACT container format. Input tensors are raw
// little-endian float32 in NCHW order; the shape is given on the command
// line for compression and recorded in the container for decompression.
//
// Usage:
//
//	actcompress -c -shape 8x64x32x32 -dqt opth -in acts.f32 -out acts.jact
//	actcompress -d -in acts.jact -out recovered.f32
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"jpegact/internal/compress"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "actcompress: "+format+"\n", args...)
	os.Exit(1)
}

func parseShape(s string) (tensor.Shape, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 4 {
		return tensor.Shape{}, fmt.Errorf("shape %q must be NxCxHxW", s)
	}
	var dims [4]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return tensor.Shape{}, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return tensor.Shape{N: dims[0], C: dims[1], H: dims[2], W: dims[3]}, nil
}

func tableByName(name string) (quant.DQT, bool) {
	switch strings.ToLower(name) {
	case "optl":
		return quant.OptL(), true
	case "opth":
		return quant.OptH(), true
	case "jpeg80":
		return quant.JPEGQuality(80), true
	case "jpeg60":
		return quant.JPEGQuality(60), true
	}
	return quant.DQT{}, false
}

func main() {
	comp := flag.Bool("c", false, "compress")
	decomp := flag.Bool("d", false, "decompress")
	shapeStr := flag.String("shape", "", "input shape NxCxHxW (compress only)")
	dqtName := flag.String("dqt", "opth", "optl|opth|jpeg80|jpeg60")
	dqtFile := flag.String("dqt-file", "", "load the DQT from a file written by dqtopt -out")
	base := flag.Bool("base", false, "use the JPEG-BASE back end (DIV+RLE) instead of SH+ZVC")
	in := flag.String("in", "", "input file")
	out := flag.String("out", "", "output file")
	flag.Parse()

	if *comp == *decomp {
		fail("need exactly one of -c or -d")
	}
	if *in == "" || *out == "" {
		fail("need -in and -out")
	}
	inF, err := os.Open(*in)
	if err != nil {
		fail("%v", err)
	}
	defer inF.Close()
	outF, err := os.Create(*out)
	if err != nil {
		fail("%v", err)
	}
	defer outF.Close()

	if *decomp {
		x, err := compress.ReadTensor(inF)
		if err != nil {
			fail("decode: %v", err)
		}
		buf := make([]byte, 4*len(x.Data))
		for i, v := range x.Data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := outF.Write(buf); err != nil {
			fail("%v", err)
		}
		fmt.Printf("decompressed %s tensor to %s (%d bytes)\n", x.Shape.String(), *out, len(buf))
		return
	}

	shape, err := parseShape(*shapeStr)
	if err != nil {
		fail("%v", err)
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		fail("%v", err)
	}
	if len(raw) != 4*shape.Elems() {
		fail("input is %d bytes; shape %s needs %d", len(raw), shape.String(), 4*shape.Elems())
	}
	x := tensor.New(shape.N, shape.C, shape.H, shape.W)
	for i := range x.Data {
		x.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}

	var d quant.DQT
	if *dqtFile != "" {
		fh, err := os.Open(*dqtFile)
		if err != nil {
			fail("%v", err)
		}
		d, err = quant.LoadDQT(fh)
		fh.Close()
		if err != nil {
			fail("load DQT: %v", err)
		}
	} else {
		var ok bool
		d, ok = tableByName(*dqtName)
		if !ok {
			fail("unknown DQT %q", *dqtName)
		}
	}

	p := compress.JPEGAct(d)
	if *base {
		p = compress.JPEGBase(d)
	}
	payload, err := p.WriteTensor(outF, x)
	if err != nil {
		fail("encode: %v", err)
	}
	fmt.Printf("compressed %s (%d bytes) -> %s (payload %d bytes, %.2fx)\n",
		shape.String(), len(raw), *out, payload, float64(len(raw))/float64(payload))
}
