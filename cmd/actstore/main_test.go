package main

// End-to-end drain test against the real binary: actstore under live
// PUT/GET traffic must, on SIGTERM, stop accepting connections, let the
// in-flight responses finish cleanly and exit 0 — the contract a rolling
// restart of a shared store leans on.

import (
	"bytes"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"jpegact/internal/frame"
	"jpegact/internal/offload/transport"
	"jpegact/internal/tensor"
)

func buildActstore(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "actstore")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	return bin
}

func drainTestFrame(fill byte) []byte {
	return frame.EncodeFrame(&frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{fill, fill, fill, fill},
	})
}

func TestSignalDrain(t *testing.T) {
	bin := buildActstore(t)
	sock := filepath.Join(t.TempDir(), "store.sock")
	addr := "unix:" + sock

	cmd := exec.Command(bin, "-addr", addr, "-shards", "4", "-replicas", "2", "-grace", "5s")
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the listener.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c, err := net.Dial("unix", sock); err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up:\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	dial, err := transport.DialAddr(addr)
	if err != nil {
		t.Fatal(err)
	}

	// Live traffic: workers PUT and immediately GET back, verifying the
	// payload round-trips intact. Once the drain begins they are allowed
	// exactly one kind of failure — a clean wire/connection error — never
	// a corrupt response.
	var ok atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := transport.NewNetClient(dial, nil)
			defer c.Close()
			buf := drainTestFrame(byte(w + 1))
			for seq := uint64(0); !stop.Load(); seq++ {
				key := uint64(w+1)<<32 | seq
				if _, err := c.Put(key, buf, transport.Retry{}); err != nil {
					return
				}
				f, err := c.Get(key, transport.Retry{}, false)
				if err != nil {
					return
				}
				if len(f.Payload) != 4 || f.Payload[0] != byte(w+1) {
					t.Errorf("worker %d: corrupt payload %v", w, f.Payload)
					return
				}
				ok.Add(1)
			}
		}(w)
	}

	// Let the traffic establish itself, then pull the trigger.
	for ok.Load() < 30 {
		time.Sleep(5 * time.Millisecond)
	}
	before := ok.Load()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The listener must go away: new dials start failing while (or just
	// after) the in-flight work drains.
	deadline = time.Now().Add(3 * time.Second)
	for {
		c, err := net.Dial("unix", sock)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("new connections still accepted after SIGTERM")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The process must exit cleanly inside the grace budget — Serve
	// returns nil on a drain, so a clean drain is exit 0.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("actstore exited dirty: %v\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("actstore did not exit within grace:\n%s", logs.String())
	}

	stop.Store(true)
	wg.Wait()
	if got := ok.Load(); got < before {
		t.Fatalf("completed op count went backwards: %d < %d", got, before)
	}
	if !strings.Contains(logs.String(), "draining") {
		t.Fatalf("no drain log line:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "done:") {
		t.Fatalf("no final counter line — Serve did not return cleanly:\n%s", logs.String())
	}
}
