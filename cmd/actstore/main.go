// Command actstore runs the sharded networked activation store: one
// process that N training or inference clients share as their offload
// target over the wire protocol of internal/offload/transport. Point
// trainers at it with acttrain -store or benchmark it with
// offloadbench -net -addr.
//
//	actstore -addr unix:/tmp/actstore.sock -shards 8
//	actstore -addr tcp:0.0.0.0:7077 -metrics 127.0.0.1:9090 -replicas 2
//
// With -metrics set, the unified counter snapshot (the same one the
// wire STATS op returns) is served Prometheus-text-style on /metrics.
// With -replicas R > 1 every PUT lands on R distinct shards and reads
// fail over (with read-repair) when the primary loses a frame — the
// survival margin the chaos harness kills shards against.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jpegact/internal/offload/netstore"
)

func main() {
	addr := flag.String("addr", "unix:/tmp/actstore.sock", "listen address (unix:/path or tcp:host:port)")
	shards := flag.Int("shards", netstore.DefaultShards, "in-memory store shards (lock-contention granularity)")
	replicas := flag.Int("replicas", 1, "copies stored per PUT across distinct shards (reads fail over)")
	inflight := flag.Int("inflight", netstore.DefaultInFlightBytes, "per-connection response byte budget (backpressure)")
	metrics := flag.String("metrics", "", "HTTP listen address for /metrics (empty = disabled)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain budget for in-flight responses")
	verbose := flag.Bool("v", false, "log connection lifecycle and protocol errors")
	flag.Parse()

	cfg := netstore.Config{Shards: *shards, Replicas: *replicas, InFlightBytes: *inflight}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := netstore.New(cfg)

	ln, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "actstore:", err)
		os.Exit(1)
	}
	log.Printf("actstore: serving on %s (shards=%d replicas=%d inflight=%d)", *addr, *shards, *replicas, *inflight)

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		go func() {
			log.Printf("actstore: metrics on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("actstore: metrics: %v", err)
			}
		}()
	}

	// Drain on SIGINT/SIGTERM: refuse new connections immediately but
	// flush every in-flight response before exiting, within the grace
	// budget; a second signal (or grace expiry) cuts stragglers hard.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("actstore: %v: draining (grace %v)", s, *grace)
		go func() {
			<-sig
			log.Print("actstore: second signal: closing hard")
			srv.Close()
		}()
		if err := srv.Shutdown(*grace); err != nil {
			log.Printf("actstore: %v", err)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "actstore:", err)
		os.Exit(1)
	}
	snap := srv.Snapshot()
	log.Printf("actstore: done: offloaded=%d restored=%d coef=%d corrupted=%d entries=%d",
		snap.Offloaded, snap.Restored, snap.CoefRestores, snap.Corrupted, srv.Entries())
}
