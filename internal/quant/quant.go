// Package quant implements JPEG quantization for the JPEG-ACT pipeline:
// Discrete Quantization Tables (DQTs), the standard division quantizer
// (DIV, used by JPEG-BASE, §III-E) and the hardware-friendly power-of-two
// shift quantizer (SH, used by JPEG-ACT, §III-F).
//
// A DQT entry q for frequency i means the DCT coefficient is divided by q
// and rounded to an 8-bit integer; larger entries discard more precision.
// SH restricts entries to powers of two so the divide becomes a 3-bit
// shift, cutting quantizer area by ~88% at the cost of only eight
// quantization modes per frequency.
package quant

import (
	"fmt"
	"math"
)

// DQT is a Discrete Quantization Table: one divisor per coefficient of an
// 8×8 DCT block, in row-major (not zigzag) order.
type DQT struct {
	Name    string
	Entries [64]float64
}

// jpegLuminanceBase is the Annex-K luminance quantization table from the
// JPEG standard, the base for quality scaling.
var jpegLuminanceBase = [64]float64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// JPEGQuality returns the standard JPEG luminance DQT scaled to the given
// quality in [1, 100] using the IJG scaling rule (quality 50 = base table).
func JPEGQuality(quality int) DQT {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale float64
	if quality < 50 {
		scale = 5000 / float64(quality)
	} else {
		scale = 200 - 2*float64(quality)
	}
	var d DQT
	d.Name = fmt.Sprintf("jpeg%d", quality)
	for i, base := range jpegLuminanceBase {
		v := math.Floor((base*scale + 50) / 100)
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		d.Entries[i] = v
	}
	return d
}

// Uniform returns a DQT with every entry set to v except the DC entry,
// which is pinned to dc (the paper pins the first coefficient to 8 to keep
// batch-norm statistics stable, §IV).
func Uniform(name string, dc, v float64) DQT {
	var d DQT
	d.Name = name
	for i := range d.Entries {
		d.Entries[i] = v
	}
	d.Entries[0] = dc
	return d
}

// ShiftLogs converts the DQT to the 3-bit log form used by the SH unit:
// each entry becomes round(log2(q)) clamped to [0, 7].
func (d *DQT) ShiftLogs() [64]uint8 {
	var out [64]uint8
	for i, q := range d.Entries {
		if q < 1 {
			q = 1
		}
		s := int(math.Round(math.Log2(q)))
		if s < 0 {
			s = 0
		}
		if s > 7 {
			s = 7
		}
		out[i] = uint8(s)
	}
	return out
}

// Effective returns the divisor the given backend actually applies for
// entry i: the raw entry for DIV, the nearest power of two for SH.
func (d *DQT) Effective(i int, shift bool) float64 {
	if !shift {
		return d.Entries[i]
	}
	return float64(int(1) << d.ShiftLogs()[i])
}

func clipInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func roundHalfAway(x float64) int32 {
	if x >= 0 {
		return int32(x + 0.5)
	}
	return int32(x - 0.5)
}

// DivQuantize applies division quantization (the JPEG-BASE DIV unit) to a
// DCT coefficient block, producing signed 8-bit quantized values.
func DivQuantize(coef *[64]float32, d *DQT, out *[64]int8) {
	for i, c := range coef {
		out[i] = clipInt8(roundHalfAway(float64(c) / d.Entries[i]))
	}
}

// DivDequantize reverses DivQuantize (up to the quantization loss).
func DivDequantize(q *[64]int8, d *DQT, out *[64]float32) {
	for i, v := range q {
		out[i] = float32(float64(v) * d.Entries[i])
	}
}

// ShiftQuantize applies the SH unit's power-of-two quantization: each
// coefficient is right-shifted by the 3-bit log-DQT entry with
// round-to-nearest, then clipped to 8 bits. Input coefficients are the
// integer DCT outputs of the fixed-point datapath.
func ShiftQuantize(coef *[64]int32, logs *[64]uint8, out *[64]int8) {
	for i, c := range coef {
		s := uint(logs[i])
		var v int32
		if s == 0 {
			v = c
		} else if c >= 0 {
			v = (c + 1<<(s-1)) >> s
		} else {
			v = -((-c + 1<<(s-1)) >> s)
		}
		out[i] = clipInt8(v)
	}
}

// ShiftDequantize reverses ShiftQuantize: a left shift by the log entry.
func ShiftDequantize(q *[64]int8, logs *[64]uint8, out *[64]int32) {
	for i, v := range q {
		out[i] = int32(v) << uint(logs[i])
	}
}

// ShiftQuantizeFloat is the functional-simulation form of SH quantization
// operating on float coefficients (the training-time simulation path, where
// the DCT runs in float but the quantizer still snaps to powers of two).
func ShiftQuantizeFloat(coef *[64]float32, d *DQT, out *[64]int8) {
	logs := d.ShiftLogs()
	ShiftQuantizeFloatLogs(coef, &logs, out)
}

// ShiftQuantizeFloatLogs is ShiftQuantizeFloat with the shift table
// precomputed, for per-block callers that hoist d.ShiftLogs() (64
// log2+round calls) out of their block loop.
func ShiftQuantizeFloatLogs(coef *[64]float32, logs *[64]uint8, out *[64]int8) {
	for i, c := range coef {
		div := float64(int32(1) << logs[i])
		out[i] = clipInt8(roundHalfAway(float64(c) / div))
	}
}

// ShiftDequantizeFloat reverses ShiftQuantizeFloat.
func ShiftDequantizeFloat(q *[64]int8, d *DQT, out *[64]float32) {
	logs := d.ShiftLogs()
	ShiftDequantizeFloatLogs(q, &logs, out)
}

// ShiftDequantizeFloatLogs is ShiftDequantizeFloat with the shift table
// precomputed (see ShiftQuantizeFloatLogs).
func ShiftDequantizeFloatLogs(q *[64]int8, logs *[64]uint8, out *[64]float32) {
	for i, v := range q {
		out[i] = float32(int32(v) << logs[i])
	}
}
