package quant

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DQT text serialization: the format cmd/dqtopt emits so optimized tables
// can be stored, diffed, and reloaded. A file is a name line followed by
// eight rows of eight divisors:
//
//	dqt <name>
//	8.0 2.0 2.3 ...
//	...

// ErrBadDQT is returned when a table cannot be parsed.
var ErrBadDQT = errors.New("quant: bad DQT encoding")

// Save writes d in the text format.
func (d *DQT) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "dqt %s\n", d.Name); err != nil {
		return err
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			sep := " "
			if c == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "%s%g", sep, d.Entries[r*8+c]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadDQT parses a table written by Save.
func LoadDQT(r io.Reader) (DQT, error) {
	var d DQT
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return d, ErrBadDQT
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != "dqt" {
		return d, fmt.Errorf("bad header %q: %w", sc.Text(), ErrBadDQT)
	}
	d.Name = header[1]
	for row := 0; row < 8; row++ {
		if !sc.Scan() {
			return d, fmt.Errorf("missing row %d: %w", row, ErrBadDQT)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 8 {
			return d, fmt.Errorf("row %d has %d entries: %w", row, len(fields), ErrBadDQT)
		}
		for col, fstr := range fields {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil || v <= 0 {
				return d, fmt.Errorf("row %d entry %q: %w", row, fstr, ErrBadDQT)
			}
			d.Entries[row*8+col] = v
		}
	}
	return d, sc.Err()
}
