package quant

import (
	"math"
	"testing"

	"jpegact/internal/dct"
	"jpegact/internal/tensor"
)

// The folded tables must make the scaled-DCT pipeline agree with the
// unscaled one: quantizing a raw AAN coefficient with the folded table
// is descale-then-divide in one multiply, and must land on the same int8
// code the DIV/SH quantizers produce from the normalized coefficient —
// up to the float32-vs-float64 arithmetic difference at exact rounding
// boundaries, which the tests avoid by checking code distance ≤ 1 on
// random data and exactness on grid-aligned data.

func foldedTestDQTs() []DQT {
	return []DQT{
		JPEGQuality(50),
		JPEGQuality(90),
		JPEGQuality(10),
		Uniform("u8", 8, 8),
		Uniform("u32", 8, 32),
	}
}

func TestFoldedQuantizeMatchesDivOnScaledCoefficients(t *testing.T) {
	r := tensor.NewRNG(30)
	for _, d := range foldedTestDQTs() {
		table := d.FoldedForward(false, &dct.AANDescale2D)
		for trial := 0; trial < 50; trial++ {
			var spatial dct.Block
			for i := range spatial {
				spatial[i] = float32((r.Float64()*2 - 1) * 127)
			}
			// Normalized path: LLM forward (JPEG normalization) + DIV.
			norm := spatial
			dct.Forward8x8(&norm)
			var want [64]int8
			DivQuantize((*[64]float32)(&norm), &d, &want)
			// Scaled path: raw AAN forward + folded table.
			scaled := spatial
			dct.AANForward8x8(&scaled)
			var got [64]int8
			FoldedQuantize((*[64]float32)(&scaled), &table, &got)
			for i := range want {
				if dd := int(got[i]) - int(want[i]); dd > 1 || dd < -1 {
					t.Fatalf("%s trial %d coeff %d: folded %d div %d", d.Name, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFoldedQuantizeMatchesShiftOnScaledCoefficients(t *testing.T) {
	r := tensor.NewRNG(31)
	for _, d := range foldedTestDQTs() {
		table := d.FoldedForward(true, &dct.AANDescale2D)
		for trial := 0; trial < 50; trial++ {
			var spatial dct.Block
			for i := range spatial {
				spatial[i] = float32((r.Float64()*2 - 1) * 127)
			}
			norm := spatial
			dct.Forward8x8(&norm)
			var want [64]int8
			ShiftQuantizeFloat((*[64]float32)(&norm), &d, &want)
			scaled := spatial
			dct.AANForward8x8(&scaled)
			var got [64]int8
			FoldedQuantize((*[64]float32)(&scaled), &table, &got)
			for i := range want {
				if dd := int(got[i]) - int(want[i]); dd > 1 || dd < -1 {
					t.Fatalf("%s trial %d coeff %d: folded %d shift %d", d.Name, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFoldedQuantizeRoundsHalfAwayAndClips(t *testing.T) {
	// With a unit table the quantizer is a pure round-half-away + clip.
	var table [64]float32
	for i := range table {
		table[i] = 1
	}
	var coef [64]float32
	var want [64]int8
	cases := []struct {
		in   float32
		code int8
	}{
		{0, 0}, {0.49, 0}, {0.5, 1}, {-0.5, -1}, {-0.49, 0},
		{1.5, 2}, {-1.5, -2}, {127.4, 127}, {127.5, 127}, {500, 127},
		{-128.4, -128}, {-128.5, -128}, {-500, -128},
	}
	for i, c := range cases {
		coef[i] = c.in
		want[i] = c.code
	}
	var got [64]int8
	FoldedQuantize(&coef, &table, &got)
	for i := range cases {
		if got[i] != want[i] {
			t.Fatalf("case %d (%v): got %d want %d", i, cases[i].in, got[i], want[i])
		}
	}
}

func TestFoldedDequantizeInvertsTable(t *testing.T) {
	for _, shift := range []bool{false, true} {
		for _, d := range foldedTestDQTs() {
			inv := d.FoldedInverse(shift, &dct.AANPrescale2D)
			var q [64]int8
			for i := range q {
				q[i] = int8(i - 32)
			}
			var out [64]float32
			FoldedDequantize(&q, &inv, &out)
			for i, v := range q {
				// q·divisor·prescale, computed in float64 for reference.
				want := float64(v) * d.Effective(i, shift) * dct.AANPrescale2D[i]
				if math.Abs(float64(out[i])-want) > 1e-5*math.Max(1, math.Abs(want)) {
					t.Fatalf("%s shift=%v coeff %d: %v want %v", d.Name, shift, i, out[i], want)
				}
			}
		}
	}
}

func TestFoldedTablesPositiveAndFinite(t *testing.T) {
	for _, shift := range []bool{false, true} {
		for _, d := range foldedTestDQTs() {
			fwd := d.FoldedForward(shift, &dct.AANDescale2D)
			inv := d.FoldedInverse(shift, &dct.AANPrescale2D)
			for i := 0; i < 64; i++ {
				if !(fwd[i] > 0) || math.IsInf(float64(fwd[i]), 0) {
					t.Fatalf("%s shift=%v fwd[%d] = %v", d.Name, shift, i, fwd[i])
				}
				if !(inv[i] > 0) || math.IsInf(float64(inv[i]), 0) {
					t.Fatalf("%s shift=%v inv[%d] = %v", d.Name, shift, i, inv[i])
				}
			}
		}
	}
}
