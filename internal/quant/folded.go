package quant

// Folded quantizer tables for scaled-DCT pipelines, libjpeg-style: a
// scaled transform (dct.AANForward8x8) leaves a known per-coefficient
// factor unapplied, and instead of descaling every coefficient and then
// dividing by the DQT entry, both are pre-combined into one float32
// multiplier per coefficient. Quantization collapses to a multiply +
// round + clip, and dequantization to a single multiply — the software
// mirror of the paper's CDU pipeline where the DCT units feed the
// quantizer with no intermediate normalization stage (§III-D).

// FoldedForward returns the fused forward-quantizer table for this DQT:
// out[i] = descale[i] / divisor_i, where divisor_i is the raw entry for
// the DIV backend or the power-of-two ShiftLogs divisor for SH, and
// descale converts the scaled DCT output to the JPEG normalization
// (dct.AANDescale2D for the AAN kernels). Quantizing is then
// round(coef·out[i]) — see FoldedQuantize.
func (d *DQT) FoldedForward(shift bool, descale *[64]float64) [64]float32 {
	var out [64]float32
	if shift {
		logs := d.ShiftLogs()
		for i := range out {
			out[i] = float32(descale[i] / float64(int32(1)<<logs[i]))
		}
		return out
	}
	for i, q := range d.Entries {
		out[i] = float32(descale[i] / q)
	}
	return out
}

// FoldedInverse returns the fused dequantizer table: out[i] =
// divisor_i · prescale[i], where prescale prepares JPEG-normalized
// coefficients for the scaled inverse transform (dct.AANPrescale2D).
// Dequantizing is then q·out[i] — see FoldedDequantize.
func (d *DQT) FoldedInverse(shift bool, prescale *[64]float64) [64]float32 {
	var out [64]float32
	if shift {
		logs := d.ShiftLogs()
		for i := range out {
			out[i] = float32(float64(int32(1)<<logs[i]) * prescale[i])
		}
		return out
	}
	for i, q := range d.Entries {
		out[i] = float32(q * prescale[i])
	}
	return out
}

// FoldedQuantize quantizes a scaled-DCT coefficient block with a
// pre-folded table (FoldedForward): one multiply, round-half-away, clip
// per coefficient, all in float32 — the whole quantizer is two float
// ops and a compare per coefficient, nothing converts to float64.
func FoldedQuantize(coef *[64]float32, table *[64]float32, out *[64]int8) {
	for i, c := range coef {
		v := c * table[i]
		var q int32
		if v >= 0 {
			q = int32(v + 0.5)
		} else {
			q = int32(v - 0.5)
		}
		out[i] = clipInt8(q)
	}
}

// FoldedDequantize expands quantized values into prescaled coefficients
// ready for the scaled inverse transform (table from FoldedInverse).
func FoldedDequantize(q *[64]int8, table *[64]float32, out *[64]float32) {
	for i, v := range q {
		out[i] = float32(v) * table[i]
	}
}
