package quant

// Optimized DQTs for CNN activation compression (§IV). These are the
// shipped outputs of the optimization procedure in internal/dqtopt run on
// activations of a partially-trained ResNet generator network: compared to
// the perceptual image tables they are much flatter across frequency
// (CNN activations carry significant mid/high-frequency information,
// Fig. 2) and pin the DC entry to 8 to keep batch-norm statistics stable.
//
// OptL  (α = 0.025): low-compression / low-error table, used for the
// critical first epochs of training.
// OptH  (α = 0.005): high-compression table for the remainder.
// OptL5H: the piece-wise schedule that switches from OptL to OptH after
// epoch 5 (Fig. 17), the configuration the paper ships as JPEG-ACT.

// optProfile builds a flat, gently tilted table: DC pinned to dc, AC
// entries ramping from lo at the lowest frequencies to hi at the highest
// (Manhattan frequency distance used as the ramp coordinate).
func optProfile(name string, dc, lo, hi float64) DQT {
	var d DQT
	d.Name = name
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			i := r*8 + c
			if i == 0 {
				d.Entries[0] = dc
				continue
			}
			f := float64(r+c) / 14 // 0..1 across frequency
			d.Entries[i] = lo + (hi-lo)*f
		}
	}
	return d
}

// OptL returns the low-compression optimized DQT.
func OptL() DQT { return optProfile("optL", 8, 2, 6) }

// OptH returns the high-compression optimized DQT.
func OptH() DQT { return optProfile("optH", 8, 12, 28) }

// Schedule selects a DQT per training epoch, implementing the piece-wise
// DQT of §IV. A single-table schedule always returns that table.
type Schedule struct {
	Name     string
	Early    DQT
	Late     DQT
	SwitchAt int // first epoch (0-based) that uses Late
}

// Fixed returns a schedule that uses d for all epochs.
func Fixed(d DQT) Schedule {
	return Schedule{Name: d.Name, Early: d, Late: d, SwitchAt: 0}
}

// OptL5H returns the piece-wise schedule: OptL for the first five epochs,
// OptH afterwards.
func OptL5H() Schedule {
	return Schedule{Name: "optL5H", Early: OptL(), Late: OptH(), SwitchAt: 5}
}

// For returns the DQT in effect at the given 0-based epoch.
func (s *Schedule) For(epoch int) *DQT {
	if epoch < s.SwitchAt {
		return &s.Early
	}
	return &s.Late
}
