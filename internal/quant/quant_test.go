package quant

import (
	"math"
	"testing"
	"testing/quick"

	"jpegact/internal/tensor"
)

func TestJPEGQuality50IsBaseTable(t *testing.T) {
	d := JPEGQuality(50)
	if d.Entries[0] != 16 || d.Entries[63] != 99 {
		t.Fatalf("quality 50 should equal base table, got DC=%v last=%v", d.Entries[0], d.Entries[63])
	}
	if d.Name != "jpeg50" {
		t.Fatalf("Name = %q", d.Name)
	}
}

func TestJPEGQualityMonotone(t *testing.T) {
	// Higher quality must never have larger divisors.
	lo, hi := JPEGQuality(60), JPEGQuality(80)
	for i := range lo.Entries {
		if hi.Entries[i] > lo.Entries[i] {
			t.Fatalf("entry %d: q80 %v > q60 %v", i, hi.Entries[i], lo.Entries[i])
		}
	}
}

func TestJPEGQualityClamps(t *testing.T) {
	d := JPEGQuality(1)
	for i, v := range d.Entries {
		if v < 1 || v > 255 {
			t.Fatalf("entry %d out of range: %v", i, v)
		}
	}
	if JPEGQuality(-5).Entries != JPEGQuality(1).Entries {
		t.Fatal("quality below 1 should clamp to 1")
	}
	d100 := JPEGQuality(100)
	for i, v := range d100.Entries {
		if v != 1 {
			t.Fatalf("quality 100 entry %d = %v, want 1", i, v)
		}
	}
}

func TestUniformPinsDC(t *testing.T) {
	d := Uniform("u", 8, 32)
	if d.Entries[0] != 8 {
		t.Fatal("DC not pinned")
	}
	for i := 1; i < 64; i++ {
		if d.Entries[i] != 32 {
			t.Fatalf("entry %d = %v", i, d.Entries[i])
		}
	}
}

func TestShiftLogs(t *testing.T) {
	var d DQT
	for i := range d.Entries {
		d.Entries[i] = 1
	}
	d.Entries[0] = 8   // log 3
	d.Entries[1] = 6   // round(log2 6)=3 (2.585 -> 3)
	d.Entries[2] = 5   // round(2.32)=2
	d.Entries[3] = 300 // clamp to 7
	d.Entries[4] = 0.3 // clamp to 0
	logs := d.ShiftLogs()
	want := []uint8{3, 3, 2, 7, 0}
	for i, w := range want {
		if logs[i] != w {
			t.Fatalf("log[%d] = %d, want %d", i, logs[i], w)
		}
	}
	if d.Effective(0, true) != 8 {
		t.Fatalf("Effective SH = %v", d.Effective(0, true))
	}
	if d.Effective(2, false) != 5 {
		t.Fatalf("Effective DIV = %v", d.Effective(2, false))
	}
}

func TestDivQuantizeRoundtrip(t *testing.T) {
	d := Uniform("u", 8, 10)
	var coef [64]float32
	r := tensor.NewRNG(1)
	for i := range coef {
		coef[i] = float32(r.Norm() * 100)
	}
	var q [64]int8
	var back [64]float32
	DivQuantize(&coef, &d, &q)
	DivDequantize(&q, &d, &back)
	for i := range coef {
		maxErr := float32(d.Entries[i]) / 2
		diff := coef[i] - back[i]
		if diff < 0 {
			diff = -diff
		}
		// Unless the value clipped, error is bounded by half a divisor.
		if q[i] > -128 && q[i] < 127 && diff > maxErr+1e-3 {
			t.Fatalf("entry %d: coef %v back %v err %v > %v", i, coef[i], back[i], diff, maxErr)
		}
	}
}

func TestDivQuantizeClipping(t *testing.T) {
	d := Uniform("u", 1, 1)
	var coef [64]float32
	coef[0] = 1e6
	coef[1] = -1e6
	var q [64]int8
	DivQuantize(&coef, &d, &q)
	if q[0] != 127 || q[1] != -128 {
		t.Fatalf("clipping failed: %d %d", q[0], q[1])
	}
}

func TestDivRoundHalfAway(t *testing.T) {
	d := Uniform("u", 10, 10)
	var coef [64]float32
	coef[0] = 15  // 1.5 -> 2
	coef[1] = -15 // -1.5 -> -2
	coef[2] = 14  // 1.4 -> 1
	var q [64]int8
	DivQuantize(&coef, &d, &q)
	if q[0] != 2 || q[1] != -2 || q[2] != 1 {
		t.Fatalf("rounding: got %d %d %d", q[0], q[1], q[2])
	}
}

func TestShiftQuantizeMatchesDivForPow2(t *testing.T) {
	// With a power-of-two DQT the SH and DIV quantizers must agree.
	d := Uniform("u", 8, 16)
	logs := d.ShiftLogs()
	r := tensor.NewRNG(2)
	var coefF [64]float32
	var coefI [64]int32
	for i := range coefF {
		v := int32(r.Intn(2000) - 1000)
		coefF[i] = float32(v)
		coefI[i] = v
	}
	var qd, qs [64]int8
	DivQuantize(&coefF, &d, &qd)
	ShiftQuantize(&coefI, &logs, &qs)
	for i := range qd {
		if qd[i] != qs[i] {
			t.Fatalf("entry %d: div %d shift %d (coef %v)", i, qd[i], qs[i], coefF[i])
		}
	}
}

func TestShiftRoundtrip(t *testing.T) {
	d := OptH()
	logs := d.ShiftLogs()
	r := tensor.NewRNG(3)
	var coef [64]int32
	for i := range coef {
		coef[i] = int32(r.Intn(1000) - 500)
	}
	var q [64]int8
	var back [64]int32
	ShiftQuantize(&coef, &logs, &q)
	ShiftDequantize(&q, &logs, &back)
	for i := range coef {
		bound := int32(1) << logs[i] // quantization step
		diff := coef[i] - back[i]
		if diff < 0 {
			diff = -diff
		}
		if q[i] > -128 && q[i] < 127 && diff > bound/2+1 {
			t.Fatalf("entry %d: coef %d back %d step %d", i, coef[i], back[i], bound)
		}
	}
}

func TestShiftFloatMatchesInt(t *testing.T) {
	d := OptL()
	logs := d.ShiftLogs()
	r := tensor.NewRNG(4)
	var coefF [64]float32
	var coefI [64]int32
	for i := range coefF {
		v := int32(r.Intn(800) - 400)
		coefF[i] = float32(v)
		coefI[i] = v
	}
	var qf, qi [64]int8
	ShiftQuantizeFloat(&coefF, &d, &qf)
	ShiftQuantize(&coefI, &logs, &qi)
	for i := range qf {
		if qf[i] != qi[i] {
			t.Fatalf("entry %d: float %d int %d", i, qf[i], qi[i])
		}
	}
	var backF [64]float32
	var backI [64]int32
	ShiftDequantizeFloat(&qf, &d, &backF)
	ShiftDequantize(&qi, &logs, &backI)
	for i := range backF {
		if backF[i] != float32(backI[i]) {
			t.Fatalf("dequant entry %d: %v vs %d", i, backF[i], backI[i])
		}
	}
}

func TestOptTablesShape(t *testing.T) {
	l, h := OptL(), OptH()
	if l.Entries[0] != 8 || h.Entries[0] != 8 {
		t.Fatal("optimized tables must pin DC to 8")
	}
	// optH must quantize harder than optL everywhere.
	for i := 1; i < 64; i++ {
		if h.Entries[i] <= l.Entries[i] {
			t.Fatalf("entry %d: optH %v <= optL %v", i, h.Entries[i], l.Entries[i])
		}
	}
	// Optimized tables are flatter than image tables: ratio of max/min AC
	// divisor must be far below jpeg80's.
	flat := func(d DQT) float64 {
		lo, hi := math.Inf(1), 0.0
		for i := 1; i < 64; i++ {
			lo = math.Min(lo, d.Entries[i])
			hi = math.Max(hi, d.Entries[i])
		}
		return hi / lo
	}
	if flat(l) > flat(JPEGQuality(80)) {
		t.Fatalf("optL flatness %v vs jpeg80 %v", flat(l), flat(JPEGQuality(80)))
	}
}

func TestSchedule(t *testing.T) {
	s := OptL5H()
	if s.For(0).Name != "optL" || s.For(4).Name != "optL" {
		t.Fatal("early epochs must use optL")
	}
	if s.For(5).Name != "optH" || s.For(100).Name != "optH" {
		t.Fatal("late epochs must use optH")
	}
	f := Fixed(JPEGQuality(80))
	if f.For(0).Name != "jpeg80" || f.For(50).Name != "jpeg80" {
		t.Fatal("fixed schedule must not switch")
	}
}

func TestShiftQuantizePropertyBounded(t *testing.T) {
	d := OptH()
	logs := d.ShiftLogs()
	f := func(raw [8]int16) bool {
		var coef [64]int32
		for i := range coef {
			coef[i] = int32(raw[i%8])
		}
		var q [64]int8
		ShiftQuantize(&coef, &logs, &q)
		var back [64]int32
		ShiftDequantize(&q, &logs, &back)
		for i := range back {
			step := int32(1) << logs[i]
			diff := coef[i] - back[i]
			if diff < 0 {
				diff = -diff
			}
			if q[i] > -128 && q[i] < 127 && diff > step {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
