package quant

import (
	"bytes"
	"strings"
	"testing"
)

func TestDQTSaveLoadRoundtrip(t *testing.T) {
	for _, d := range []DQT{JPEGQuality(80), OptL(), OptH(), Uniform("u", 8, 31.5)} {
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := LoadDQT(&buf)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if got.Name != d.Name || got.Entries != d.Entries {
			t.Fatalf("%s roundtrip mismatch", d.Name)
		}
	}
}

func TestLoadDQTRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"nope optL\n1 1 1 1 1 1 1 1\n",
		"dqt x\n1 2 3\n", // short row
		"dqt x\n" + strings.Repeat("1 1 1 1 1 1 1 1\n", 7), // missing row
		"dqt x\n1 1 1 1 1 1 1 bad\n" + strings.Repeat("1 1 1 1 1 1 1 1\n", 7),
		"dqt x\n1 1 1 1 1 1 1 -2\n" + strings.Repeat("1 1 1 1 1 1 1 1\n", 7),
	}
	for i, c := range cases {
		if _, err := LoadDQT(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
