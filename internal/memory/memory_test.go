package memory

import (
	"testing"

	"jpegact/internal/compress"
)

const gb = float64(1 << 30)

func TestResNet50ImageNetOver40GB(t *testing.T) {
	// The paper's intro claim: ResNet50/ImageNet training needs >40 GB of
	// activation storage, exceeding a 12 GB Titan V. Our inventory counts
	// the saved forward tensors only (no gradient workspace), landing at
	// ~34 GB for batch 256 — the same order, comfortably over the GPU.
	n := ResNet50ImageNet()
	if got := float64(n.TotalBytes(256)) / gb; got < 30 {
		t.Fatalf("ResNet50/ImageNet at batch 256: %.1f GB, want > 30", got)
	}
	// And it does not fit the 12 GB Titan V even at batch 128.
	if got := float64(n.TotalBytes(128)) / gb; got < 12 {
		t.Fatalf("ResNet50/ImageNet at batch 128: %.1f GB, want > 12", got)
	}
}

func TestDepthAndWidthOrdering(t *testing.T) {
	b := 32
	r18 := ResNet18ImageNet().TotalBytes(b)
	r50 := ResNet50ImageNet().TotalBytes(b)
	r101 := ResNet101ImageNet().TotalBytes(b)
	if !(r18 < r50 && r50 < r101) {
		t.Fatalf("ordering broken: %d %d %d", r18, r50, r101)
	}
}

func TestActBytes(t *testing.T) {
	a := Act{Channels: 64, Spatial: 56, Kind: compress.KindConv}
	want := int64(4 * 16 * 64 * 56 * 56)
	if got := a.Bytes(16); got != want {
		t.Fatalf("bytes %d, want %d", got, want)
	}
}

func TestCompressionShrinksFootprint(t *testing.T) {
	n := ResNet50ImageNet()
	b := 32
	base := n.TotalBytes(b)
	for _, method := range []string{"cDMA+", "GIST", "SFPR", "JPEG-ACT"} {
		comp := n.CompressedBytes(b, MethodRatios(method))
		if comp >= base {
			t.Fatalf("%s did not shrink footprint", method)
		}
	}
	// Ordering: JPEG-ACT < SFPR < cDMA+ on the dense-dominated ResNet.
	act := n.CompressedBytes(b, MethodRatios("JPEG-ACT"))
	sfpr := n.CompressedBytes(b, MethodRatios("SFPR"))
	cdma := n.CompressedBytes(b, MethodRatios("cDMA+"))
	if !(act < sfpr && sfpr < cdma) {
		t.Fatalf("footprint ordering broken: %d %d %d", act, sfpr, cdma)
	}
}

func TestUnknownRatioDefaultsToOne(t *testing.T) {
	n := Network{Name: "x", Acts: []Act{{Channels: 1, Spatial: 8, Kind: compress.KindConv}}}
	if n.CompressedBytes(1, Ratios{}) != n.TotalBytes(1) {
		t.Fatal("missing ratio must mean uncompressed")
	}
}

func TestAllNetworksNonEmpty(t *testing.T) {
	nets := All()
	if len(nets) != 6 {
		t.Fatalf("networks %d", len(nets))
	}
	for _, n := range nets {
		if len(n.Acts) < 10 {
			t.Fatalf("%s has only %d activations", n.Name, len(n.Acts))
		}
		if n.TotalBytes(16) <= 0 {
			t.Fatalf("%s empty footprint", n.Name)
		}
	}
}

func TestDenseShareDrivesCDMAWeakness(t *testing.T) {
	// ResNets are dense-dominated (≥ 50% conv/sum bytes), which is why
	// cDMA+'s overall ratio is only ~1.3x (Fig. 19).
	n := ResNet50ImageNet()
	var dense, total int64
	for _, a := range n.Acts {
		b := a.Bytes(16)
		total += b
		if a.Kind == compress.KindConv {
			dense += b
		}
	}
	if frac := float64(dense) / float64(total); frac < 0.4 {
		t.Fatalf("dense share %.2f, expected ≥ 0.4", frac)
	}
	overall := float64(n.TotalBytes(16)) / float64(n.CompressedBytes(16, MethodRatios("cDMA+")))
	if overall > 2.0 {
		t.Fatalf("cDMA+ overall ratio %.2f should be low on ResNet", overall)
	}
}

func TestBlockName(t *testing.T) {
	if got := blockName("s", 2, 3); got != "s2b3" {
		t.Fatalf("blockName %q", got)
	}
	if got := blockName("s", 12, 21); got != "s12b21" {
		t.Fatalf("blockName %q", got)
	}
}
