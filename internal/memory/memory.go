// Package memory models the activation storage footprint of the
// full-scale networks during training — the motivation data of the
// paper's introduction (ResNet50/ImageNet needs >40 GB of activation
// storage, more than any consumer GPU) — and how far each compression
// method shrinks it. Unlike the functional training substrate, this is a
// pure shape model, so it uses the real network dimensions.
package memory

import "jpegact/internal/compress"

// Act is one saved activation of a full-scale network.
type Act struct {
	Name     string
	Channels int
	Spatial  int // square spatial edge
	Kind     compress.Kind
}

// Bytes returns the fp32 footprint at the given batch size.
func (a Act) Bytes(batch int) int64 {
	return int64(4*batch*a.Channels) * int64(a.Spatial) * int64(a.Spatial)
}

// Network is a full activation inventory.
type Network struct {
	Name string
	Acts []Act
}

// TotalBytes sums the fp32 footprint at the given batch size.
func (n Network) TotalBytes(batch int) int64 {
	var t int64
	for _, a := range n.Acts {
		t += a.Bytes(batch)
	}
	return t
}

// Ratios maps activation kinds to compression ratios.
type Ratios map[compress.Kind]float64

// CompressedBytes applies per-kind ratios to the inventory.
func (n Network) CompressedBytes(batch int, r Ratios) int64 {
	var t int64
	for _, a := range n.Acts {
		ratio := r[a.Kind]
		if ratio <= 0 {
			ratio = 1
		}
		t += int64(float64(a.Bytes(batch)) / ratio)
	}
	return t
}

// cnr appends the saved activations of one conv/norm/ReLU unit as the
// frameworks of §II-A store them: the conv input r, the norm input c and
// the ReLU output y (Fig. 3). The next unit's conv input aliases y in a
// framework with liveness dedup; the paper's >40 GB motivation figure is
// the naive save-every-output accounting, which this reproduces.
func cnr(acts []Act, name string, inC, outC, inS, outS int) []Act {
	return append(acts,
		Act{name + ".r", inC, inS, compress.KindReLUToConv},
		Act{name + ".c", outC, outS, compress.KindConv},
		Act{name + ".y", outC, outS, compress.KindReLUToConv},
	)
}

// bottleneck appends a ResNet bottleneck block (1×1, 3×3, 1×1 + sum);
// stage-entry blocks also carry a projection shortcut conv.
func bottleneck(acts []Act, name string, inC, midC, outC, inS, outS int) []Act {
	acts = cnr(acts, name+".a", inC, midC, inS, outS)
	acts = cnr(acts, name+".b", midC, midC, outS, outS)
	acts = cnr(acts, name+".c", midC, outC, outS, outS)
	if inC != outC || inS != outS {
		acts = append(acts,
			Act{name + ".proj.r", inC, inS, compress.KindReLUToConv},
			Act{name + ".proj.c", outC, outS, compress.KindConv},
		)
	}
	return append(acts, Act{name + ".sum", outC, outS, compress.KindConv})
}

// basic appends a ResNet basic block (3×3, 3×3 + sum), with a projection
// shortcut on stage entry.
func basic(acts []Act, name string, inC, outC, inS, outS int) []Act {
	acts = cnr(acts, name+".a", inC, outC, inS, outS)
	acts = cnr(acts, name+".b", outC, outC, outS, outS)
	if inC != outC || inS != outS {
		acts = append(acts,
			Act{name + ".proj.r", inC, inS, compress.KindReLUToConv},
			Act{name + ".proj.c", outC, outS, compress.KindConv},
		)
	}
	return append(acts, Act{name + ".sum", outC, outS, compress.KindConv})
}

// ResNet50ImageNet returns the full ResNet50 inventory at 224×224.
func ResNet50ImageNet() Network {
	n := Network{Name: "ResNet50/ImageNet"}
	n.Acts = cnr(n.Acts, "stem", 3, 64, 224, 112)
	n.Acts = append(n.Acts, Act{"maxpool", 64, 56, compress.KindPoolDropout})
	stages := []struct {
		blocks, mid, out, s int
	}{{3, 64, 256, 56}, {4, 128, 512, 28}, {6, 256, 1024, 14}, {3, 512, 2048, 7}}
	inC := 64
	inS := 56
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			name := blockName("s", si, b)
			outS := st.s
			n.Acts = bottleneck(n.Acts, name, inC, st.mid, st.out, inS, outS)
			inC, inS = st.out, outS
		}
	}
	return n
}

// ResNet101ImageNet returns the ResNet101 inventory (23-block stage 3).
func ResNet101ImageNet() Network {
	n := Network{Name: "ResNet101/ImageNet"}
	n.Acts = cnr(n.Acts, "stem", 3, 64, 224, 112)
	n.Acts = append(n.Acts, Act{"maxpool", 64, 56, compress.KindPoolDropout})
	stages := []struct {
		blocks, mid, out, s int
	}{{3, 64, 256, 56}, {4, 128, 512, 28}, {23, 256, 1024, 14}, {3, 512, 2048, 7}}
	inC := 64
	inS := 56
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			n.Acts = bottleneck(n.Acts, blockName("s", si, b), inC, st.mid, st.out, inS, st.s)
			inC, inS = st.out, st.s
		}
	}
	return n
}

// ResNet18ImageNet returns the basic-block ResNet18 inventory.
func ResNet18ImageNet() Network {
	n := Network{Name: "ResNet18/ImageNet"}
	n.Acts = cnr(n.Acts, "stem", 3, 64, 224, 112)
	n.Acts = append(n.Acts, Act{"maxpool", 64, 56, compress.KindPoolDropout})
	stages := []struct {
		blocks, out, s int
	}{{2, 64, 56}, {2, 128, 28}, {2, 256, 14}, {2, 512, 7}}
	inC := 64
	inS := 56
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			n.Acts = basic(n.Acts, blockName("s", si, b), inC, st.out, inS, st.s)
			inC, inS = st.out, st.s
		}
	}
	return n
}

// VGG16CIFAR returns the VGG-16 inventory at 32×32 with dropout.
func VGG16CIFAR() Network {
	n := Network{Name: "VGG16/CIFAR10"}
	cfg := []struct {
		convs, c, s int
	}{{2, 64, 32}, {2, 128, 16}, {3, 256, 8}, {3, 512, 4}, {3, 512, 2}}
	inC := 3
	inS := 32
	for si, st := range cfg {
		for b := 0; b < st.convs; b++ {
			n.Acts = cnr(n.Acts, blockName("s", si, b), inC, st.c, inS, st.s)
			inC, inS = st.c, st.s
		}
		n.Acts = append(n.Acts,
			Act{blockName("pool", si, 0), st.c, st.s / 2, compress.KindPoolDropout},
			Act{blockName("drop", si, 0), st.c, st.s / 2, compress.KindPoolDropout},
		)
		inS = st.s / 2
	}
	return n
}

// WRN28x10CIFAR returns the WRN-28-10 inventory at 32×32.
func WRN28x10CIFAR() Network {
	n := Network{Name: "WRN-28-10/CIFAR10"}
	n.Acts = cnr(n.Acts, "stem", 3, 16, 32, 32)
	stages := []struct {
		blocks, out, s int
	}{{4, 160, 32}, {4, 320, 16}, {4, 640, 8}}
	inC := 16
	inS := 32
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			name := blockName("s", si, b)
			n.Acts = basic(n.Acts, name, inC, st.out, inS, st.s)
			// WRN places dropout inside each block.
			n.Acts = append(n.Acts, Act{name + ".drop", st.out, st.s, compress.KindPoolDropout})
			inC, inS = st.out, st.s
		}
	}
	return n
}

// VDSRDiv2k returns the 20-layer VDSR inventory at 64×64 crops.
func VDSRDiv2k() Network {
	n := Network{Name: "VDSR/Div2k"}
	inC := 1
	for i := 0; i < 20; i++ {
		n.Acts = cnr(n.Acts, blockName("l", i, 0), inC, 64, 64, 64)
		inC = 64
	}
	return n
}

// All returns every full-scale inventory.
func All() []Network {
	return []Network{
		VGG16CIFAR(), ResNet50ImageNet(), ResNet101ImageNet(),
		WRN28x10CIFAR(), ResNet18ImageNet(), VDSRDiv2k(),
	}
}

// MethodRatios returns representative per-kind ratios for the Table I
// methods (the measured full-scale averages the paper reports).
func MethodRatios(method string) Ratios {
	switch method {
	case "cDMA+":
		return Ratios{
			compress.KindConv:        1.0,
			compress.KindReLUToConv:  2.1,
			compress.KindReLUToOther: 2.1,
			compress.KindPoolDropout: 3.9,
		}
	case "GIST":
		return Ratios{
			compress.KindConv:        4.0,
			compress.KindReLUToConv:  2.2,
			compress.KindReLUToOther: 32,
			compress.KindPoolDropout: 2.2,
		}
	case "SFPR":
		return Ratios{
			compress.KindConv:        4,
			compress.KindReLUToConv:  4,
			compress.KindReLUToOther: 4,
			compress.KindPoolDropout: 4,
		}
	case "JPEG-ACT":
		return Ratios{
			compress.KindConv:        8.5,
			compress.KindReLUToConv:  6.4,
			compress.KindReLUToOther: 32,
			compress.KindPoolDropout: 6.4,
		}
	}
	return Ratios{}
}

func blockName(prefix string, a, b int) string {
	const digits = "0123456789"
	out := prefix
	if a >= 10 {
		out += string(digits[a/10])
	}
	out += string(digits[a%10]) + "b"
	if b >= 10 {
		out += string(digits[b/10])
	}
	return out + string(digits[b%10])
}
