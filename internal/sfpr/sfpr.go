// Package sfpr implements the precision-reduction front ends of the paper:
//
//   - SFPR, Scaled Fix-point Precision Reduction (§III-B, Eqns. 4–5): the
//     paper's contribution. Activations are max-scaled per channel and cast
//     to signed 8-bit integers, normalizing every channel to the full
//     integer range before JPEG compression.
//   - DPR, Dynamic Precision Reduction (GIST): a straight cast to a
//     reduced-precision minifloat (8- or 16-bit), which under-utilizes the
//     representable range on small-magnitude channels.
//   - BFP, Block Floating Point: per-channel power-of-two shared exponents
//     with fixed-point mantissas.
package sfpr

import (
	"math"

	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// quantGrain is the minimum per-chunk element count for the parallel
// quantize/dequantize loops.
const quantGrain = 4096

// DefaultS is the global scaling factor selected in §III-B (Fig. 10): it
// minimizes the combined clipping+truncation error of SFPR, JPEG-BASE and
// JPEG-ACT and is shared across all networks and layers.
const DefaultS = 1.125

// Compressed is an SFPR-compressed activation: int8 values in the original
// NCHW order plus the per-channel scale factors needed for recovery.
type Compressed struct {
	Shape  tensor.Shape
	Values []int8
	Scales []float32 // sc per channel (Eqn. 4); 0 for all-zero channels
}

// Bytes returns the storage footprint: one byte per value plus one float32
// scale per channel.
func (c *Compressed) Bytes() int { return len(c.Values) + 4*len(c.Scales) }

// Compress applies SFPR with global scale S to x.
func Compress(x *tensor.Tensor, s float64) *Compressed {
	scales := make([]float32, x.Shape.C)
	ComputeScales(x, s, scales)
	out := &Compressed{Shape: x.Shape, Values: make([]int8, x.Elems()), Scales: scales}
	QuantizeInto(x, scales, out.Values)
	return out
}

// ComputeScales fills scales (len = C) with the per-channel factors of
// Eqn. 4: s over the channel max magnitude, 0 for all-zero channels.
func ComputeScales(x *tensor.Tensor, s float64, scales []float32) {
	maxes := x.ChannelMaxAbs()
	for c, m := range maxes {
		if m > 0 {
			scales[c] = float32(s / float64(m))
		} else {
			scales[c] = 0
		}
	}
}

// QuantizeInto performs the integer cast of Eqn. 5 given precomputed
// per-channel scales, writing into vals (len = x.Elems()). The (n, c)
// planes are independent, so they shard over the worker pool.
func QuantizeInto(x *tensor.Tensor, scales []float32, vals []int8) {
	sh := x.Shape
	hw := sh.H * sh.W
	parallel.For(sh.N*sh.C, parallel.Grain(hw, quantGrain), func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			// Hoisting sc·128 into float64 is bit-exact: the float32
			// product v·sc is exactly representable in float64 (48-bit
			// significand), and ·128 only shifts the exponent, so
			// v·(sc·128) equals (v·sc)·128 computed per element.
			sc128 := float64(scales[nc%sh.C]) * 128
			base := nc * hw
			src := x.Data[base : base+hw]
			dst := vals[base : base+hw]
			for i, v := range src {
				dst[i] = quantizeOne(v, sc128)
			}
		}
	})
}

func quantizeOne(v float32, sc128 float64) int8 {
	f := float64(v) * sc128
	var q int32
	if f >= 0 {
		q = int32(f + 0.5)
	} else {
		q = int32(f - 0.5)
	}
	// Casting saturates rather than truncating (§III-B).
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return int8(q)
}

// Decompress reconstructs the activation from c.
func Decompress(c *Compressed) *tensor.Tensor {
	out := tensor.New(c.Shape.N, c.Shape.C, c.Shape.H, c.Shape.W)
	DequantizeInto(c.Values, c.Scales, out)
	return out
}

// DequantizeInto writes the float recovery of vals into x using the
// inverse scales (backward-pass path of the SFPR unit).
func DequantizeInto(vals []int8, scales []float32, x *tensor.Tensor) {
	sh := x.Shape
	hw := sh.H * sh.W
	parallel.For(sh.N*sh.C, parallel.Grain(hw, quantGrain), func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			var inv float32
			if sc := scales[nc%sh.C]; sc != 0 {
				inv = 1 / (sc * 128)
			}
			base := nc * hw
			for i := 0; i < hw; i++ {
				x.Data[base+i] = float32(vals[base+i]) * inv
			}
		}
	})
}

// Roundtrip compresses and immediately decompresses x, the functional
// simulation of storing the activation through the SFPR path.
func Roundtrip(x *tensor.Tensor, s float64) (*tensor.Tensor, int) {
	c := Compress(x, s)
	return Decompress(c), c.Bytes()
}

// RangeUtilization returns the average (over non-empty channels) fraction
// of the 256 integer code points actually used, the metric behind the
// paper's DPR-vs-SFPR accuracy analysis (§VI-B: 15% for DPR vs 66% for
// SFPR on small-range channels).
func RangeUtilization(vals []int8, sh tensor.Shape) float64 {
	hw := sh.H * sh.W
	var total float64
	channels := 0
	for c := 0; c < sh.C; c++ {
		used := map[int8]bool{}
		any := false
		for n := 0; n < sh.N; n++ {
			base := (n*sh.C + c) * hw
			for i := 0; i < hw; i++ {
				v := vals[base+i]
				used[v] = true
				if v != 0 {
					any = true
				}
			}
		}
		if !any {
			continue
		}
		total += float64(len(used)) / 256
		channels++
	}
	if channels == 0 {
		return 0
	}
	return total / float64(channels)
}

// Minifloat describes a reduced-precision float format (DPR). The format
// is IEEE-like: 1 sign bit, ExpBits exponent bits with bias
// 2^(ExpBits-1)-1, ManBits mantissa bits, subnormals, saturating overflow.
type Minifloat struct {
	ExpBits uint
	ManBits uint
}

// FP16 is the IEEE half-precision format used by 16-bit DPR.
var FP16 = Minifloat{ExpBits: 5, ManBits: 10}

// FP8 is the e4m3 format used by 8-bit DPR.
var FP8 = Minifloat{ExpBits: 4, ManBits: 3}

// Bits returns the total width of the format.
func (m Minifloat) Bits() int { return int(1 + m.ExpBits + m.ManBits) }

// Quantize rounds v to the nearest representable value of the format,
// i.e. the value recovered after an encode/decode roundtrip.
func (m Minifloat) Quantize(v float32) float32 {
	if v == 0 || math.IsNaN(float64(v)) {
		return v
	}
	bias := float64(int(1)<<(m.ExpBits-1) - 1)
	maxExp := float64(int(1)<<m.ExpBits - 2)
	f := float64(v)
	sign := 1.0
	if f < 0 {
		sign = -1
		f = -f
	}
	exp := math.Floor(math.Log2(f))
	e := exp + bias
	scale := float64(int64(1) << m.ManBits)
	if e < 1 {
		// Subnormal: fixed quantum 2^(1-bias-ManBits).
		quantum := math.Pow(2, 1-bias) / scale
		q := math.Round(f / quantum)
		return float32(sign * q * quantum)
	}
	maxVal := math.Pow(2, maxExp-bias) * (2 - 1/scale)
	if e > maxExp {
		return float32(sign * maxVal) // saturate to the largest normal
	}
	quantum := math.Pow(2, exp) / scale
	r := math.Round(f/quantum) * quantum
	if r > maxVal {
		r = maxVal // rounding pushed past the top binade
	}
	return float32(sign * r)
}

// DPR casts every element of x through the minifloat format and back,
// the functional simulation of GIST's precision reduction.
func DPR(x *tensor.Tensor, m Minifloat) *tensor.Tensor {
	out := tensor.NewLike(x)
	for i, v := range x.Data {
		out.Data[i] = m.Quantize(v)
	}
	return out
}

// DPRInt8Codes returns the 8-bit codes GIST stores for x under 8-bit DPR
// (used for sparsity/size accounting by CSR). A code is zero iff the
// quantized value is zero.
func DPRInt8Codes(x *tensor.Tensor, m Minifloat) []int8 {
	out := make([]int8, x.Elems())
	for i, v := range x.Data {
		q := m.Quantize(v)
		if q != 0 {
			// The exact bit pattern is irrelevant for size accounting; any
			// non-zero sentinel preserves the CSR/ZVC footprint.
			out[i] = 1
		}
	}
	return out
}

// BFP applies block floating point with the given mantissa bits: each
// channel shares a power-of-two exponent covering its max magnitude and
// stores signed fixed-point mantissas.
func BFP(x *tensor.Tensor, manBits uint) *tensor.Tensor {
	sh := x.Shape
	out := tensor.NewLike(x)
	maxes := x.ChannelMaxAbs()
	hw := sh.H * sh.W
	half := float64(int32(1) << (manBits - 1))
	for c := 0; c < sh.C; c++ {
		if maxes[c] == 0 {
			continue
		}
		exp := math.Ceil(math.Log2(float64(maxes[c])))
		scale := math.Pow(2, exp)
		for n := 0; n < sh.N; n++ {
			base := (n*sh.C + c) * hw
			for i := 0; i < hw; i++ {
				f := float64(x.Data[base+i]) / scale * half
				q := math.Round(f)
				if q > half-1 {
					q = half - 1
				}
				if q < -half {
					q = -half
				}
				out.Data[base+i] = float32(q / half * scale)
			}
		}
	}
	return out
}
