package sfpr

import (
	"math"
	"testing"
	"testing/quick"

	"jpegact/internal/tensor"
)

func randAct(r *tensor.RNG, n, c, h, w int, std float64) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	x.FillNormal(r, 0, std)
	return x
}

func TestSFPRRoundtripError(t *testing.T) {
	r := tensor.NewRNG(1)
	x := randAct(r, 2, 4, 8, 8, 1.0)
	rec, bytes := Roundtrip(x, DefaultS)
	if bytes != x.Elems()+4*4 {
		t.Fatalf("bytes = %d", bytes)
	}
	// With S=1.125 the quantization step per channel is max/ (128/1.125);
	// per-element error must be far below the data std.
	if e := tensor.L2Error(x, rec); e > 0.01 {
		t.Fatalf("L2 error %v too high", e)
	}
}

func TestSFPRScaleNormalizesSmallChannels(t *testing.T) {
	// A channel with tiny range must still use most of the int8 range —
	// the key advantage over DPR (§III-B, §VI-B).
	r := tensor.NewRNG(2)
	x := tensor.New(1, 2, 16, 16)
	for i := 0; i < 256; i++ {
		x.Data[i] = float32(r.Norm()) * 0.001 // tiny channel
		x.Data[256+i] = float32(r.Norm()) * 100
	}
	c := Compress(x, 1.0)
	var maxTiny int8
	for i := 0; i < 256; i++ {
		v := c.Values[i]
		if v < 0 {
			v = -v
		}
		if v > maxTiny {
			maxTiny = v
		}
	}
	if maxTiny < 100 {
		t.Fatalf("tiny channel max code %d: scale normalization failed", maxTiny)
	}
	rec := Decompress(c)
	// Error within the tiny channel is bounded by its own max/128 (the
	// S=1.0 clip of the max element), despite the 1e5 range difference
	// between channels.
	bound := float64(x.ChannelMaxAbs()[0])/128 + 1e-9
	for i := 0; i < 256; i++ {
		if d := math.Abs(float64(rec.Data[i] - x.Data[i])); d > bound {
			t.Fatalf("tiny channel err %v at %d (bound %v)", d, i, bound)
		}
	}
}

func TestSFPRClipping(t *testing.T) {
	// With S > 1, values at the channel max must clip to 127.
	x := tensor.New(1, 1, 1, 4)
	copy(x.Data, []float32{1, -1, 0.5, 0})
	c := Compress(x, 1.125)
	if c.Values[0] != 127 {
		t.Fatalf("max value code = %d, want 127 (clipped)", c.Values[0])
	}
	if c.Values[1] != -128 {
		t.Fatalf("min value code = %d, want -128", c.Values[1])
	}
	if c.Values[3] != 0 {
		t.Fatal("zero must stay zero")
	}
	// 0.5 * 1.125 * 128 = 72
	if c.Values[2] != 72 {
		t.Fatalf("mid code = %d, want 72", c.Values[2])
	}
}

func TestSFPRAllZeroChannel(t *testing.T) {
	x := tensor.New(1, 2, 2, 2)
	x.Data[4] = 3 // only channel 1 has data
	c := Compress(x, 1.0)
	if c.Scales[0] != 0 {
		t.Fatal("all-zero channel must have zero scale")
	}
	rec := Decompress(c)
	for i := 0; i < 4; i++ {
		if rec.Data[i] != 0 {
			t.Fatal("all-zero channel must reconstruct to zero")
		}
	}
	if rec.Data[4] == 0 {
		t.Fatal("non-zero channel lost")
	}
}

func TestSFPRPreservesZeroSparsity(t *testing.T) {
	// Exact zeros (ReLU outputs) must stay exactly zero so ZVC can code
	// them afterwards.
	r := tensor.NewRNG(3)
	x := randAct(r, 1, 3, 8, 8, 1)
	for i := 0; i < len(x.Data); i += 2 {
		x.Data[i] = 0
	}
	c := Compress(x, DefaultS)
	for i := 0; i < len(x.Data); i += 2 {
		if c.Values[i] != 0 {
			t.Fatalf("zero input produced code %d", c.Values[i])
		}
	}
}

func TestSFPRRoundtripProperty(t *testing.T) {
	r := tensor.NewRNG(4)
	f := func(stdSeed uint8) bool {
		std := math.Pow(10, float64(stdSeed%7)-3) // 1e-3 .. 1e3
		x := randAct(r, 1, 2, 8, 8, std)
		rec, _ := Roundtrip(x, DefaultS)
		// Error per element bounded by channel max / 64 (S=1.125 step ≈
		// max/113, plus clipping of the top 11% magnitudes).
		maxes := x.ChannelMaxAbs()
		hw := 64
		for c := 0; c < 2; c++ {
			bound := float64(maxes[c]) * 0.15 // clipped tail bound
			for n := 0; n < 1; n++ {
				base := (n*2 + c) * hw
				for i := 0; i < hw; i++ {
					if math.Abs(float64(rec.Data[base+i]-x.Data[base+i])) > bound+1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeUtilizationSFPRVsDPR(t *testing.T) {
	// On a small-range channel (range ~0.16, §VI-B) SFPR must use the
	// integer range much better than 8-bit DPR uses its code space.
	r := tensor.NewRNG(5)
	x := tensor.New(4, 1, 16, 16)
	x.FillUniform(r, -0.08, 0.08)
	c := Compress(x, 1.0)
	sfprUtil := RangeUtilization(c.Values, x.Shape)
	if sfprUtil < 0.5 {
		t.Fatalf("SFPR range utilization %v, want >= 0.5", sfprUtil)
	}
}

func TestMinifloatExactValues(t *testing.T) {
	// FP16 must represent small integers and halves exactly.
	for _, v := range []float32{0, 1, -1, 0.5, 2, 1024, -3.25} {
		if got := FP16.Quantize(v); got != v {
			t.Fatalf("FP16(%v) = %v", v, got)
		}
	}
	// FP8 e4m3: max normal = 2^7 * (2 - 1/8) = 240.
	if got := FP8.Quantize(1e9); got != 240 {
		t.Fatalf("FP8 saturation = %v, want 240", got)
	}
	if got := FP8.Quantize(-1e9); got != -240 {
		t.Fatalf("FP8 negative saturation = %v", got)
	}
	if FP8.Bits() != 8 || FP16.Bits() != 16 {
		t.Fatal("format widths wrong")
	}
}

func TestMinifloatMonotone(t *testing.T) {
	prev := float32(math.Inf(-1))
	for v := float32(-300); v <= 300; v += 0.37 {
		q := FP8.Quantize(v)
		if q < prev {
			t.Fatalf("FP8 quantization not monotone at %v: %v < %v", v, q, prev)
		}
		prev = q
	}
}

func TestMinifloatRelativeError(t *testing.T) {
	r := tensor.NewRNG(6)
	for i := 0; i < 1000; i++ {
		v := float32(r.Norm() * 10)
		if v == 0 {
			continue
		}
		q := FP16.Quantize(v)
		if rel := math.Abs(float64(q-v)) / math.Abs(float64(v)); rel > 1.0/1024 {
			t.Fatalf("FP16 relative error %v for %v", rel, v)
		}
		q8 := FP8.Quantize(v)
		if math.Abs(float64(v)) <= 240 {
			if rel := math.Abs(float64(q8-v)) / math.Abs(float64(v)); rel > 1.0/8 {
				t.Fatalf("FP8 relative error %v for %v", rel, v)
			}
		}
	}
}

func TestMinifloatSubnormals(t *testing.T) {
	// FP8 e4m3 subnormal quantum = 2^(1-7-3) = 2^-9.
	quantum := float32(math.Pow(2, -9))
	if got := FP8.Quantize(quantum); got != quantum {
		t.Fatalf("subnormal quantum not exact: %v", got)
	}
	if got := FP8.Quantize(quantum / 3); got != 0 {
		t.Fatalf("tiny value should flush to 0, got %v", got)
	}
}

func TestDPRUnderUtilizesSmallRange(t *testing.T) {
	// The §VI-B phenomenon: channels with range ~0.16 use few of the
	// 8-bit DPR code points but most SFPR code points, which is why GIST
	// loses accuracy where SFPR does not.
	r := tensor.NewRNG(7)
	x := tensor.New(1, 1, 32, 32)
	x.FillUniform(r, -0.08, 0.08)
	codes := map[float32]bool{}
	for _, v := range x.Data {
		codes[FP8.Quantize(v)] = true
	}
	dprUtil := float64(len(codes)) / 256
	c := Compress(x, 1.0)
	sfprUtil := RangeUtilization(c.Values, x.Shape)
	if dprUtil >= sfprUtil {
		t.Fatalf("DPR util %v should be below SFPR util %v", dprUtil, sfprUtil)
	}
}

func TestDPRTensorAndCodes(t *testing.T) {
	r := tensor.NewRNG(8)
	x := randAct(r, 1, 2, 4, 4, 1)
	x.Data[0] = 0
	y := DPR(x, FP8)
	if y.Data[0] != 0 {
		t.Fatal("zero must stay zero")
	}
	codes := DPRInt8Codes(x, FP8)
	if codes[0] != 0 {
		t.Fatal("zero code expected")
	}
	nz := 0
	for _, v := range codes {
		if v != 0 {
			nz++
		}
	}
	if nz < 20 {
		t.Fatalf("expected mostly non-zero codes, got %d", nz)
	}
}

func TestBFPRoundtrip(t *testing.T) {
	r := tensor.NewRNG(9)
	x := randAct(r, 1, 3, 8, 8, 2)
	y := BFP(x, 8)
	maxes := x.ChannelMaxAbs()
	hw := 64
	for c := 0; c < 3; c++ {
		step := float64(maxes[c]) / 128 * 2 // exponent ceil can double scale
		for i := 0; i < hw; i++ {
			d := math.Abs(float64(y.Data[c*hw+i] - x.Data[c*hw+i]))
			if d > step {
				t.Fatalf("BFP error %v > step %v", d, step)
			}
		}
	}
}

func TestBFPZeroChannel(t *testing.T) {
	x := tensor.New(1, 1, 2, 2)
	y := BFP(x, 8)
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("zero channel must stay zero")
		}
	}
}

func BenchmarkSFPRCompress(b *testing.B) {
	r := tensor.NewRNG(10)
	x := randAct(r, 8, 16, 32, 32, 1)
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(x, DefaultS)
	}
}
