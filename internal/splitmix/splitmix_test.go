package splitmix

import "testing"

// TestMixReferenceVectors pins the mixer to fixed vectors (the first
// outputs of the splitmix64 generator for seed 1234567: Mix(seed +
// i*Gamma) for i = 1..3) so the shared implementation can never drift
// from what the netstore shard map and the netfaults chaos schedules
// were recorded against.
func TestMixReferenceVectors(t *testing.T) {
	seed := uint64(1234567)
	want := []uint64{
		0x599ed017fb08fc85,
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
	}
	for i, w := range want {
		got := Mix(seed + uint64(i+1)*Gamma)
		if got != w {
			t.Fatalf("Mix(seed + %d*Gamma) = %#x, want %#x", i+1, got, w)
		}
	}
}

// TestStreamMatchesManualAdvance: Stream draws are exactly
// Mix(seed + n*Gamma).
func TestStreamMatchesManualAdvance(t *testing.T) {
	s := NewStream(42)
	for n := 1; n <= 100; n++ {
		if got, want := s.Next(), Mix(42+uint64(n)*Gamma); got != want {
			t.Fatalf("draw %d: %#x, want %#x", n, got, want)
		}
	}
}

// TestMixAvalanche: flipping any single input bit must flip a healthy
// fraction of output bits — the property the shard router relies on so
// consecutive store keys spread instead of marching across shards.
func TestMixAvalanche(t *testing.T) {
	base := Mix(0xdeadbeef)
	for bit := 0; bit < 64; bit++ {
		diff := base ^ Mix(0xdeadbeef^(1<<bit))
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		if n < 16 || n > 48 {
			t.Fatalf("flipping input bit %d changed %d output bits", bit, n)
		}
	}
}

// TestMixZeroFixedPoint pins the mixer's one fixed point: Mix(0) = 0.
// Callers that feed raw keys or seeds straight into Mix must account
// for it themselves (streams never hit it — they offset by Gamma first).
func TestMixZeroFixedPoint(t *testing.T) {
	if got := Mix(0); got != 0 {
		t.Fatalf("Mix(0) = %#x, want 0 (documented fixed point)", got)
	}
	if got := Mix(Gamma); got == 0 {
		t.Fatal("Mix(Gamma) = 0; first stream draw from seed 0 must be nonzero")
	}
}
