// Package splitmix is the repo's one shared integer mixer: the
// splitmix64 finalizer of Steele, Lea & Flood's SplittableRandom,
// re-implemented identically (before this package existed) by the
// netstore shard router and the netfaults per-connection streams. It
// turns structured 64-bit inputs — small sequence numbers with a
// client base in the high bits, connection indices, run seeds — into
// well-distributed hashes, which is exactly what key sharding, fault
// stream seeding and gradient-key namespacing all need: nearby inputs
// must land far apart.
//
// The mixer is a bijection on uint64, so namespaces derived through it
// collide exactly when their seeds do.
package splitmix

// Gamma is the golden-ratio increment of the splitmix64 generator:
// advancing a stream adds Gamma to its state before mixing, and
// derived streams offset their seeds by multiples of it so stream i of
// seed s shares nothing with stream i+1 of seed s-1.
const Gamma = 0x9e3779b97f4a7c15

// Mix is the splitmix64 finalizer: a bijective avalanche mix of x.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stream is a splitmix64 sequence: state advances by Gamma per draw
// and every output is Mix of the new state. The zero Stream is a valid
// seed-0 stream.
type Stream struct{ state uint64 }

// NewStream returns a stream over seed's splitmix64 sequence.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Next returns the stream's next value.
func (s *Stream) Next() uint64 {
	s.state += Gamma
	return Mix(s.state)
}
