// Package faults provides a deterministic, seeded fault injector for the
// offload channel. The paper's system (Fig. 7) round-trips every saved
// activation over PCIe DMA into CPU DRAM — a physical channel that in
// real deployments sees bit flips, truncated transfers and lost buffers.
// The Injector simulates that misbehaving hardware at configurable rates
// so the store's detection (frame CRCs) and recovery (retry, recompute)
// paths can be exercised reproducibly in tests and experiments.
//
// The Injector satisfies the offload.Channel interface structurally:
// Send models the GPU→host DMA (faults there are persistent — the
// corrupted bytes are what lands in host memory, so re-reads see the
// same damage), Recv models the host→GPU read-back (faults there are
// transient — a retry re-transfers the intact host copy and may
// succeed).
package faults

import (
	"sync"

	"jpegact/internal/tensor"
)

// Config sets the fault rates. All rates are probabilities in [0, 1];
// the zero value is a clean channel.
type Config struct {
	// Seed drives the injector's private RNG; identical seeds and
	// identical transfer sequences produce identical faults.
	Seed uint64
	// BitFlipPerByte is the per-byte probability that one random bit of
	// that byte is flipped (e.g. 1e-5 ≈ one flip per 100 KB).
	BitFlipPerByte float64
	// TruncationRate is the per-transfer probability that the buffer is
	// cut to a random prefix.
	TruncationRate float64
	// DropRate is the per-transfer probability that the buffer is lost
	// entirely (the transfer yields nil).
	DropRate float64
	// OnSend applies the faults on the Send (store) side, making them
	// persistent: retries re-read the same corrupted host copy. The
	// default strikes on Recv, where corruption is transient.
	OnSend bool
}

// Event describes one injected fault, for observer hooks.
type Event struct {
	Transfer int    // sequence number of the faulted transfer
	Op       string // "send" or "recv"
	Kind     string // "bitflip", "truncate" or "drop"
	Offset   int    // byte offset (bitflip) or resulting length (truncate)
}

// Stats counts the injector's activity.
type Stats struct {
	Transfers   uint64 // total Send+Recv calls
	Flips       uint64 // individual bits flipped
	Truncations uint64
	Drops       uint64
	Forced      uint64 // transfers corrupted by ForceNext* hooks
}

// Injector is a deterministic fault-injecting channel. It is safe for
// concurrent use; fault decisions are serialized in call order.
type Injector struct {
	mu        sync.Mutex
	cfg       Config
	rng       *tensor.RNG
	transfers int
	forceSend int
	forceRecv int
	stats     Stats
	// OnFault, when set, observes every injected fault.
	OnFault func(Event)
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: tensor.NewRNG(cfg.Seed)}
}

// Send models the GPU→host transfer, returning the bytes as they land in
// host memory (corrupted persistently when faults strike the send side).
func (in *Injector) Send(b []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	seq := in.transfers
	in.transfers++
	in.stats.Transfers++
	forced := in.forceSend > 0
	if forced {
		in.forceSend--
	}
	if !forced && !in.cfg.OnSend {
		return b
	}
	return in.corrupt(b, "send", seq, forced)
}

// Recv models the host→GPU read-back. Faults here are transient: a
// retry calls Recv again on the same intact host copy.
func (in *Injector) Recv(b []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	seq := in.transfers
	in.transfers++
	in.stats.Transfers++
	forced := in.forceRecv > 0
	if forced {
		in.forceRecv--
	}
	if !forced && in.cfg.OnSend {
		return b
	}
	return in.corrupt(b, "recv", seq, forced)
}

// ForceNextSend forces the next n Send transfers to be corrupted (a
// deterministic single-bit flip), regardless of the configured rates.
func (in *Injector) ForceNextSend(n int) {
	in.mu.Lock()
	in.forceSend += n
	in.mu.Unlock()
}

// ForceNextRecv forces the next n Recv transfers to be corrupted.
func (in *Injector) ForceNextRecv(n int) {
	in.mu.Lock()
	in.forceRecv += n
	in.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// corrupt applies one transfer's faults to b, copying before mutation so
// the caller's buffer is never damaged in place. Called with mu held.
func (in *Injector) corrupt(b []byte, op string, seq int, forced bool) []byte {
	if forced {
		// Deterministic single-bit flip, aimed past the fixed header so
		// it reliably lands in the checksummed scales/payload region.
		in.stats.Forced++
		if len(b) == 0 {
			return b
		}
		out := append([]byte(nil), b...)
		off := 3 * len(out) / 4
		out[off] ^= 1
		in.stats.Flips++
		in.emit(Event{Transfer: seq, Op: op, Kind: "bitflip", Offset: off})
		return out
	}
	if in.cfg.DropRate > 0 && in.rng.Float64() < in.cfg.DropRate {
		in.stats.Drops++
		in.emit(Event{Transfer: seq, Op: op, Kind: "drop"})
		return nil
	}
	if in.cfg.TruncationRate > 0 && in.rng.Float64() < in.cfg.TruncationRate {
		cut := int(in.rng.Uint64() % uint64(len(b)+1))
		in.stats.Truncations++
		in.emit(Event{Transfer: seq, Op: op, Kind: "truncate", Offset: cut})
		b = append([]byte(nil), b[:cut]...)
		// Fall through: flips may still strike the surviving prefix.
	}
	if in.cfg.BitFlipPerByte > 0 {
		var out []byte
		for i := range b {
			if in.rng.Float64() < in.cfg.BitFlipPerByte {
				if out == nil {
					out = append([]byte(nil), b...)
				}
				bit := uint(in.rng.Uint64() % 8)
				out[i] ^= 1 << bit
				in.stats.Flips++
				in.emit(Event{Transfer: seq, Op: op, Kind: "bitflip", Offset: i})
			}
		}
		if out != nil {
			return out
		}
	}
	return b
}

func (in *Injector) emit(e Event) {
	if in.OnFault != nil {
		in.OnFault(e)
	}
}
