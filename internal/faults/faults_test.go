package faults

import (
	"bytes"
	"testing"
)

func payload(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestCleanPassthrough(t *testing.T) {
	in := New(Config{Seed: 1})
	b := payload(256, 0xAB)
	if got := in.Send(b); &got[0] != &b[0] {
		t.Fatal("clean Send must pass the buffer through unchanged")
	}
	if got := in.Recv(b); &got[0] != &b[0] {
		t.Fatal("clean Recv must pass the buffer through unchanged")
	}
	if s := in.Stats(); s.Transfers != 2 || s.Flips != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDeterministicSameSeed(t *testing.T) {
	cfg := Config{Seed: 42, BitFlipPerByte: 0.01, TruncationRate: 0.05, DropRate: 0.02}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		buf := payload(64+i, byte(i))
		ra, rb := a.Recv(buf), b.Recv(buf)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("transfer %d diverged between same-seed injectors", i)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Flips == 0 || sa.Truncations == 0 || sa.Drops == 0 {
		t.Fatalf("expected all fault kinds at these rates: %+v", sa)
	}
}

func TestNeverMutatesCallerBuffer(t *testing.T) {
	in := New(Config{Seed: 3, BitFlipPerByte: 0.5, TruncationRate: 0.3, DropRate: 0.1})
	orig := payload(128, 0x5A)
	keep := append([]byte(nil), orig...)
	for i := 0; i < 50; i++ {
		in.Recv(orig)
		if !bytes.Equal(orig, keep) {
			t.Fatal("injector mutated the caller's buffer in place")
		}
	}
}

func TestSendRecvSides(t *testing.T) {
	// Default (transient) config corrupts only Recv.
	tr := New(Config{Seed: 4, BitFlipPerByte: 1})
	b := payload(64, 0)
	if got := tr.Send(b); !bytes.Equal(got, b) {
		t.Fatal("transient injector corrupted Send")
	}
	if got := tr.Recv(b); bytes.Equal(got, b) {
		t.Fatal("transient injector left Recv clean at rate 1")
	}
	// Persistent config corrupts only Send.
	pe := New(Config{Seed: 4, BitFlipPerByte: 1, OnSend: true})
	if got := pe.Send(b); bytes.Equal(got, b) {
		t.Fatal("persistent injector left Send clean at rate 1")
	}
	if got := pe.Recv(b); !bytes.Equal(got, b) {
		t.Fatal("persistent injector corrupted Recv")
	}
}

func TestForcedHooks(t *testing.T) {
	in := New(Config{Seed: 5}) // zero rates: only forcing corrupts
	var events []Event
	in.OnFault = func(e Event) { events = append(events, e) }

	b := payload(100, 0xFF)
	in.ForceNextRecv(2)
	r1, r2, r3 := in.Recv(b), in.Recv(b), in.Recv(b)
	if bytes.Equal(r1, b) || bytes.Equal(r2, b) {
		t.Fatal("forced Recv transfers not corrupted")
	}
	if !bytes.Equal(r3, b) {
		t.Fatal("force count leaked past its budget")
	}
	// Forced flips are single-bit and deterministic.
	if diff := countDiffBits(r1, b); diff != 1 {
		t.Fatalf("forced corruption flipped %d bits, want 1", diff)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("forced corruption not deterministic")
	}

	in.ForceNextSend(1)
	if got := in.Send(b); bytes.Equal(got, b) {
		t.Fatal("forced Send transfer not corrupted")
	}
	s := in.Stats()
	if s.Forced != 3 || s.Flips != 3 {
		t.Fatalf("stats %+v", s)
	}
	if len(events) != 3 || events[0].Kind != "bitflip" || events[0].Op != "recv" {
		t.Fatalf("events %+v", events)
	}
}

func TestDropReturnsNil(t *testing.T) {
	in := New(Config{Seed: 6, DropRate: 1})
	if got := in.Recv(payload(32, 1)); got != nil {
		t.Fatal("drop rate 1 must lose every transfer")
	}
	if s := in.Stats(); s.Drops != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTruncationShortens(t *testing.T) {
	in := New(Config{Seed: 7, TruncationRate: 1})
	b := payload(64, 2)
	seenShorter := false
	for i := 0; i < 32; i++ {
		if got := in.Recv(b); len(got) < len(b) {
			seenShorter = true
		}
	}
	if !seenShorter {
		t.Fatal("truncation rate 1 never shortened a transfer")
	}
}

func TestBitFlipRateScales(t *testing.T) {
	// At 1e-2/byte over 100 KB, expect roughly 1000 flips — assert the
	// count lands within a loose factor-of-2 band.
	in := New(Config{Seed: 8, BitFlipPerByte: 1e-2})
	total := 0
	for i := 0; i < 100; i++ {
		in.Recv(payload(1024, 3))
		total += 1024
	}
	flips := int(in.Stats().Flips)
	want := int(float64(total) * 1e-2)
	if flips < want/2 || flips > want*2 {
		t.Fatalf("%d flips over %d bytes; want ≈%d", flips, total, want)
	}
}

func countDiffBits(a, b []byte) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			n += int(x & 1)
			x >>= 1
		}
	}
	return n
}
