// Package offload implements the host-memory side of the JPEG-ACT
// system: after the forward pass, saved activations are *actually*
// serialized into compressed byte buffers (the CPU DRAM of Fig. 7) and
// the float tensors are released; before a layer's backward pass its
// activation is restored by decompressing the stored bytes. Unlike the
// functional simulation in internal/train — which swaps in the recovered
// tensor immediately — this path realizes the memory saving for real:
// between offload and restore, only the compressed bytes are live.
//
// The stack is split into three explicit layers, mirroring the paper's
// Fig. 7 datapath:
//
//   - codec (internal/offload/codec): pure tensor↔frame compression,
//     the CDU of the paper;
//   - transport (internal/offload/transport): the pluggable byte path —
//     framing, CRC validation, retry — with an in-process channel
//     backend (the DMA engine) and a wire client for the networked
//     activation store (internal/offload/netstore);
//   - scheduler (Engine, engine.go): the async pipeline that overlaps
//     compression and transfers with forward/backward compute.
//
// Store is the bookkeeping core the layers meet at: it maps activation
// refs to keyed transport entries and drives the synchronous
// (degenerate) path. On corruption a configurable RecoveryPolicy decides
// whether to fail with a typed error, re-read the transport, or
// recompute the activation from scratch (gradient-checkpointing style,
// wired in by internal/train).
package offload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jpegact/internal/dct"
	"jpegact/internal/frame"
	"jpegact/internal/freqdomain"
	"jpegact/internal/nn"
	"jpegact/internal/offload/codec"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// ErrNotStored is returned when restoring a ref that was never offloaded.
var ErrNotStored = errors.New("offload: activation not stored")

// ErrCorrupted wraps a frame decode failure that survived the recovery
// policy; the host entry is retained so the caller can still retry or
// recompute out of band.
var ErrCorrupted = errors.New("offload: corrupted beyond recovery")

// ErrDropped is the transport layer's typed error for a transfer that
// yielded no bytes at all (a lost DMA) — distinct from truncation or
// bit corruption. Match with errors.Is.
var ErrDropped = transport.ErrDropped

// ErrStoreUnavailable is the transport layer's typed verdict for a wire
// operation whose whole retry schedule failed at the connection level —
// the store is dead or unreachable. The circuit breaker counts exactly
// these. Match with errors.Is.
var ErrStoreUnavailable = transport.ErrStoreUnavailable

// Channel is the in-process transport backend's GPU↔host byte path; see
// transport.Channel. internal/faults.Injector implements it; nil means
// a clean passthrough.
type Channel = transport.Channel

// Transport is the pluggable byte-path backend interface; see
// transport.Transport. The default is the in-process channel backend;
// a netstore client (transport.NetClient) swaps in a shared networked
// activation store without touching the store or scheduler.
type Transport = transport.Transport

// RecoveryPolicy selects what Restore does when a frame fails its CRC.
type RecoveryPolicy int

const (
	// PolicyFail returns a typed error; the host entry is retained.
	PolicyFail RecoveryPolicy = iota
	// PolicyRetry re-reads through the transport up to MaxRetries times
	// (with optional exponential backoff) before failing.
	PolicyRetry
	// PolicyRecompute first exhausts the retries, then invokes the
	// Recovery.Recompute hook to re-materialize the activation from the
	// nearest intact upstream state (internal/train wires this to a
	// forward-pass replay).
	PolicyRecompute
)

// String implements fmt.Stringer.
func (p RecoveryPolicy) String() string {
	switch p {
	case PolicyFail:
		return "fail"
	case PolicyRetry:
		return "retry"
	case PolicyRecompute:
		return "recompute"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Recovery configures the corruption-recovery behaviour of a Store. The
// zero value is PolicyFail.
type Recovery struct {
	Policy RecoveryPolicy
	// MaxRetries bounds the transport re-reads under PolicyRetry and
	// PolicyRecompute (0 under PolicyRetry defaults to 3). On the
	// networked backend a retry is a reconnect+resend cycle.
	MaxRetries int
	// Backoff is the initial delay between retries, doubled each attempt
	// (0 retries immediately — the right setting for simulated channels).
	Backoff time.Duration
	// OpTimeout bounds each wire attempt via connection deadlines
	// (0 = none; the in-process backend ignores it).
	OpTimeout time.Duration
	// Deadline bounds the wall time of one operation's whole retry
	// schedule; on expiry the wire reports the typed
	// ErrStoreUnavailable — the verdict the circuit breaker counts —
	// instead of spinning on a dead store (0 = unbounded).
	Deadline time.Duration
	// Recompute re-materializes the corrupted ref's activation under
	// PolicyRecompute. The hook may rebuild the whole step — replay the
	// forward pass, Reset the store and re-offload fresh refs — in which
	// case the caller must refresh its ref list after Restore returns
	// (see train.ClassifierOffloaded).
	Recompute func(ref *nn.ActRef) error
}

// Stats is the unified point-in-time counter snapshot every layer of
// the stack shares: the store's offload/restore/recovery counters and
// the transport's corruption/retry counters are fields of one
// transport.Counters block, and the netstore server reports the same
// Snapshot shape over its STATS op and /metrics endpoint.
type Stats = transport.Snapshot

// entry is one offloaded activation: the offload sequence number that
// fixes the deterministic reverse-restore order (and doubles as the
// transport key) plus the framed byte footprint the backend holds.
// degraded marks frames the circuit breaker routed to the local
// fallback instead of the wire; restore and delete follow the flag so a
// frame is always read back from wherever its bytes actually live.
type entry struct {
	seq      int
	size     int
	degraded bool
}

// Store is a host-memory activation store using the JPEG-ACT pipeline
// with a fixed DQT. It composes the codec and transport layers and owns
// the ref→entry bookkeeping; the async scheduler (Engine) drives it
// through the same internal operations the synchronous Offload/Restore
// use, so both paths land on identical bytes.
type Store struct {
	DQT quant.DQT
	S   float64
	// Channel is the GPU↔host byte path of the default in-process
	// backend (nil = clean passthrough). Ignored when Transport is set.
	Channel Channel
	// Transport overrides the byte-path backend — e.g. a
	// transport.NetClient talking to a shared netstore server. Build it
	// with this store's Counters() so its fault and byte counters land
	// in Stats(), and set it before the first operation.
	Transport Transport
	// KeyBase is OR'd into every transport key (the offload sequence
	// number occupies the low bits). Give each client process of a
	// shared networked store a disjoint base — e.g. id<<32 — so their
	// key spaces cannot collide.
	KeyBase uint64
	// Recovery selects the corruption policy (zero value = PolicyFail).
	Recovery Recovery
	// Sleep is injected into the retry/backoff path (nil = time.Sleep);
	// tests install a recording clock so recovery never real-sleeps.
	Sleep func(time.Duration)
	// CoefPlan, when non-nil, marks the refs whose restore may be served
	// as a quantized-coefficient plane (ref.Coef) instead of a decoded
	// tensor. The trainer computes it from nn.CoefficientPlan — only refs
	// whose every consumer opted in qualify — and clears it each step.
	// Refs outside the plan (and non-JPEG frames within it) take the full
	// spatial decode, unchanged.
	CoefPlan func(ref *nn.ActRef) bool
	// Breaker tunes the circuit breaker guarding a wire Transport (see
	// BreakerConfig; the zero value is enabled with defaults). When the
	// breaker opens, offloads degrade to an in-process fallback holding
	// the identical encoded bytes, so training continues bit-identically
	// through a dead store.
	Breaker BreakerConfig

	mu        sync.Mutex
	entries   map[*nn.ActRef]*entry
	nextSeq   int
	hostBytes int
	local     *transport.Local
	fallback  *transport.Local
	brk       *breaker

	counters transport.Counters
}

// NewStore builds a store with the given quantization table and a clean
// in-process transport.
func NewStore(d quant.DQT) *Store {
	return &Store{DQT: d, S: sfpr.DefaultS, entries: map[*nn.ActRef]*entry{}}
}

// Counters exposes the store's live counter block so an externally
// built transport backend (a NetClient) can share it.
func (s *Store) Counters() *transport.Counters { return &s.counters }

// pipeline returns the codec layer configured with the store's table.
func (s *Store) pipeline() codec.Pipeline {
	return codec.Pipeline{DQT: s.DQT, S: s.S}
}

// transportOf returns the byte-path backend: the configured Transport,
// or the default in-process backend built lazily over Channel (so tests
// that assign Channel after NewStore see it).
func (s *Store) transportOf() Transport {
	if s.Transport != nil {
		return s.Transport
	}
	s.mu.Lock()
	if s.local == nil {
		s.local = transport.NewLocal(s.Channel, &s.counters)
	}
	t := s.local
	s.mu.Unlock()
	return t
}

// fallbackT returns the degraded-mode backend: a clean in-process store
// that receives the same encoded frames a healthy wire PUT would carry.
// Built lazily — a run that never trips the breaker never allocates it.
func (s *Store) fallbackT() Transport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fallback == nil {
		s.fallback = transport.NewLocal(nil, &s.counters)
	}
	return s.fallback
}

// breakerOf returns the breaker state machine with config defaults
// applied.
func (s *Store) breakerOf() *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.brk == nil {
		cfg := s.Breaker
		if cfg.FailureThreshold <= 0 {
			cfg.FailureThreshold = 3
		}
		if cfg.ProbeAfter <= 0 {
			cfg.ProbeAfter = 32
		}
		s.brk = &breaker{cfg: cfg}
	}
	return s.brk
}

// breakerActive reports whether wire ops should consult the breaker: it
// only guards an explicit wire Transport, and only when not disabled.
func (s *Store) breakerActive() bool {
	return s.Transport != nil && !s.Breaker.Disabled
}

// Tripped reports whether the circuit breaker is currently open (new
// offloads are being served degraded from the local fallback).
func (s *Store) Tripped() bool {
	return s.breakerActive() && s.breakerOf().tripped()
}

// effRetries maps the recovery policy onto the transport retry budget.
func (s *Store) effRetries() int {
	switch s.Recovery.Policy {
	case PolicyFail:
		return 0
	case PolicyRetry:
		if s.Recovery.MaxRetries == 0 {
			return 3
		}
	}
	return s.Recovery.MaxRetries
}

// retry builds the transport retry schedule from the recovery config.
func (s *Store) retry() transport.Retry {
	return transport.Retry{
		Attempts:  s.effRetries(),
		Backoff:   s.Recovery.Backoff,
		Sleep:     s.Sleep,
		OpTimeout: s.Recovery.OpTimeout,
		Total:     s.Recovery.Deadline,
	}
}

// key maps an entry onto its transport key.
func (s *Store) key(e *entry) uint64 { return s.KeyBase | uint64(e.seq) }

// Stats returns a point-in-time snapshot of the counters.
func (s *Store) Stats() Stats { return s.counters.Snapshot() }

// Offload compresses the ref's activation into a framed buffer on the
// transport backend and releases the tensor (ref.T becomes nil, or a
// BRC mask replaces it). Refs are deduplicated by pointer; offloading
// the same ref twice is an error.
func (s *Store) Offload(ref *nn.ActRef) error {
	s.mu.Lock()
	_, dup := s.entries[ref]
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("offload: offload %q (%s): already stored", ref.Name, ref.Kind)
	}
	if ref.T == nil {
		return fmt.Errorf("offload: offload %q (%s): %w", ref.Name, ref.Kind, ErrNotStored)
	}
	enc, err := s.pipeline().Encode(ref.Kind, ref.T)
	if err != nil {
		return fmt.Errorf("offload: offload %q (%s): %w", ref.Name, ref.Kind, err)
	}
	_, err = s.commitEncoded(ref, frame.EncodeFrame(enc.Frame), enc.Mask)
	return err
}

// commitTicket is one issued-but-unfinished commit: the sequence number
// already claimed, the routed PUT in flight, and the ref bookkeeping
// commitWait still has to perform. The scheduler keeps a bounded FIFO
// of these so encode-commit traffic pipelines over the wire.
type commitTicket struct {
	ref  *nn.ActRef
	seq  int
	size int
	mask []bool
	pt   *putTicket
}

// commitIssue claims the next offload sequence number and launches the
// routed PUT without waiting for the response. Callers must issue
// tickets in strict submission order (the sequence and the wire order
// must agree) and complete each one with commitWait, in the same order.
func (s *Store) commitIssue(ref *nn.ActRef, data []byte, mask []bool) *commitTicket {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()
	return &commitTicket{
		ref: ref, seq: seq, size: len(data), mask: mask,
		pt: s.putIssue(s.KeyBase|uint64(seq), data),
	}
}

// commitWait blocks for the ticket's PUT result, records the entry, and
// releases the ref's tensor (attaching the BRC mask when present).
func (s *Store) commitWait(t *commitTicket) (*entry, error) {
	// What the Put reports is what actually landed on the backend
	// (send-side faults on the in-process channel are persistent).
	stored, degraded, err := s.putWait(t.pt)
	if err != nil {
		return nil, fmt.Errorf("offload: offload %q (%s): %w", t.ref.Name, t.ref.Kind, err)
	}
	s.mu.Lock()
	e := &entry{seq: t.seq, size: stored, degraded: degraded}
	s.entries[t.ref] = e
	s.hostBytes += stored
	s.mu.Unlock()
	if t.mask != nil {
		t.ref.Mask = t.mask
	}
	t.ref.T = nil
	s.counters.Offloaded.Add(1)
	s.counters.BytesOffloaded.Add(int64(stored))
	return e, nil
}

// commitEncoded pushes one encoded frame to the transport backend,
// records the entry, and releases the ref's tensor (attaching the BRC
// mask when present). The scheduler calls commitIssue/commitWait in
// strict submission order so the backend sees the same Put sequence as
// this synchronous path.
func (s *Store) commitEncoded(ref *nn.ActRef, data []byte, mask []bool) (*entry, error) {
	return s.commitWait(s.commitIssue(ref, data, mask))
}

// putTicket is one routed, in-flight PUT: either an async wire handle
// plus the routing decision putWait needs to finish the breaker
// accounting, or — when the breaker was already open at issue time — the
// resolved fallback result.
type putTicket struct {
	key  uint64
	data []byte
	h    *transport.Pending
	wire bool // issued over the breaker-guarded wire transport
	// Resolved fallback result (h == nil).
	stored int
	err    error
}

// putIssue routes one encoded frame and launches the transfer without
// waiting: to the wire (async, so issues pipeline up to the client's
// window), or — when the circuit breaker is already open — straight to
// the degraded local fallback. The breaker's routing decision is made
// at issue time; a breaker that trips between issue and wait affects
// the next issue, not this one (putWait still degrades this op's bytes
// if its own wire attempt exhausts unavailable).
func (s *Store) putIssue(key uint64, data []byte) *putTicket {
	t := &putTicket{key: key, data: data}
	if !s.breakerActive() {
		t.h = transport.AsPipelined(s.transportOf()).PutAsync(key, data, s.retry())
		return t
	}
	if !s.breakerOf().skipWire() {
		t.wire = true
		t.h = transport.AsPipelined(s.Transport).PutAsync(key, data, s.retry())
		return t
	}
	s.counters.Degraded.Add(1)
	t.stored, t.err = s.fallbackT().Put(key, data, transport.Retry{})
	return t
}

// putWait completes a routed PUT: it reports what actually landed and
// where, applying the breaker bookkeeping — a wire op whose whole retry
// schedule failed at the connection level counts a failure, and once
// the breaker trips the identical bytes land on the local fallback
// instead, so training trajectories stay bit-identical across healthy,
// degraded, and recovered stretches.
func (s *Store) putWait(t *putTicket) (stored int, degraded bool, err error) {
	if t.h == nil {
		return t.stored, true, t.err
	}
	n, err := t.h.PutResult()
	if !t.wire {
		return n, false, err
	}
	b := s.breakerOf()
	if err == nil {
		b.onSuccess()
		return n, false, nil
	}
	if !errors.Is(err, transport.ErrStoreUnavailable) {
		// Payload-level failure (corruption past the retry budget):
		// the wire is answering, so this is not a breaker event.
		return 0, false, err
	}
	b.onFailure()
	if !b.tripped() {
		// Below the threshold the failure still surfaces; the
		// recovery policy (retry/recompute) owns it.
		return 0, false, err
	}
	s.counters.Degraded.Add(1)
	n, ferr := s.fallbackT().Put(t.key, t.data, transport.Retry{})
	return n, true, ferr
}

// put is the synchronous compose of putIssue and putWait.
func (s *Store) put(key uint64, data []byte) (stored int, degraded bool, err error) {
	return s.putWait(s.putIssue(key, data))
}

// lookup returns the entry for ref, if resident.
func (s *Store) lookup(ref *nn.ActRef) (*entry, bool) {
	s.mu.Lock()
	e, ok := s.entries[ref]
	s.mu.Unlock()
	return e, ok
}

// readTicket is one issued, in-flight GET: an async wire handle plus
// the breaker flag readWait needs, or — for a degraded entry whose only
// copy lives in the fallback — the resolved frame.
type readTicket struct {
	h    *transport.Pending
	wire bool
	f    *frame.Frame
	err  error
}

// readIssue launches the entry's read without waiting for the frame, so
// a prefetcher can keep a window of staging GETs on the wire at once.
// Responses complete in issue order (the wire protocol is FIFO), so the
// caller must readWait tickets in the order it issued them.
func (s *Store) readIssue(e *entry, ref *nn.ActRef) *readTicket {
	coef := ref != nil && s.CoefPlan != nil && s.CoefPlan(ref)
	t := &readTicket{}
	if e.degraded {
		// The frame was never sent to the wire; its only copy lives in
		// the breaker's fallback.
		s.counters.Degraded.Add(1)
		t.f, t.err = s.fallbackT().Get(s.key(e), transport.Retry{}, coef)
		return t
	}
	t.wire = s.breakerActive()
	t.h = transport.AsPipelined(s.transportOf()).GetAsync(s.key(e), s.retry(), coef)
	return t
}

// readWait completes an issued read, returning the verified frame
// without decoding it and applying the breaker bookkeeping. It does not
// mutate the store, so a failure leaves the entry untouched.
func (s *Store) readWait(t *readTicket) (*frame.Frame, error) {
	if t.h == nil {
		return t.f, t.err
	}
	f, err := t.h.GetResult()
	if t.wire {
		if err == nil {
			s.breakerOf().onSuccess()
		} else if errors.Is(err, transport.ErrStoreUnavailable) {
			// The failure still surfaces — the bytes are gone with the
			// store, so only the recompute policy can recover this ref —
			// but it advances the breaker so the re-offloads that follow
			// degrade instead of beating on a dead wire.
			s.breakerOf().onFailure()
		}
	}
	return f, err
}

// read pulls the entry's bytes back through the transport layer (with
// the policy's retry schedule): the synchronous compose of readIssue
// and readWait. The coefficient-plan flag rides along so a networked
// backend can count compressed-domain serving separately.
func (s *Store) read(e *entry, ref *nn.ActRef) (*frame.Frame, error) {
	return s.readWait(s.readIssue(e, ref))
}

// deleteEntry releases the backend copy wherever it lives.
func (s *Store) deleteEntry(e *entry) {
	if e.degraded {
		s.fallbackT().Delete(s.key(e))
		return
	}
	s.transportOf().Delete(s.key(e))
}

// decodeFrame turns a verified frame into the ref's restored form:
// a coefficient plane when the ref is in the coefficient plan and the
// frame carries DCT blocks, the fully decoded tensor otherwise. A frame
// the plan covers but that the codec routed elsewhere (ZVC, BRC) falls
// back to the full decode — capability never overrides the Table II
// policy. Decode errors surface for the recovery policy either way.
func (s *Store) decodeFrame(ref *nn.ActRef, f *frame.Frame) (*tensor.Tensor, *freqdomain.Plane, error) {
	if s.CoefPlan != nil && s.CoefPlan(ref) {
		pl, err := s.pipeline().DecodeCoefficients(f)
		if err == nil {
			return nil, pl, nil
		}
		if !errors.Is(err, codec.ErrNoCoefficients) {
			return nil, nil, err
		}
	}
	t, err := s.pipeline().Decode(f)
	return t, nil, err
}

// fetch reads and decodes the entry into a staged tensor or plane.
func (s *Store) fetch(e *entry, ref *nn.ActRef) (*tensor.Tensor, *freqdomain.Plane, error) {
	f, err := s.read(e, ref)
	if err != nil {
		return nil, nil, err
	}
	return s.decodeFrame(ref, f)
}

// finishRestore attaches the staged tensor or coefficient plane (both
// nil for BRC refs, whose mask is already attached) and frees the
// backend copy (best-effort — a failed delete only leaks backend
// memory, never correctness).
func (s *Store) finishRestore(ref *nn.ActRef, e *entry, t *tensor.Tensor, pl *freqdomain.Plane) {
	if t != nil {
		ref.T = t
	}
	if pl != nil {
		ref.Coef = pl
		s.counters.CoefRestores.Add(1)
	}
	s.mu.Lock()
	delete(s.entries, ref)
	s.hostBytes -= e.size
	s.mu.Unlock()
	s.deleteEntry(e)
	s.counters.Restored.Add(1)
}

// dropIfCurrent removes ref's entry if it is still e (a recompute hook
// may have rebuilt the store wholesale, replacing it).
func (s *Store) dropIfCurrent(ref *nn.ActRef, e *entry) {
	s.mu.Lock()
	cur, still := s.entries[ref]
	if still && cur == e {
		delete(s.entries, ref)
		s.hostBytes -= e.size
	}
	s.mu.Unlock()
	if still && cur == e {
		s.deleteEntry(e)
	}
}

// recover applies the post-retry recovery policy to a failed restore:
// under PolicyRecompute the hook re-materializes the activation (and
// may rebuild the store); otherwise the typed error is surfaced with
// the entry retained.
func (s *Store) recover(ref *nn.ActRef, e *entry, err error) error {
	if s.Recovery.Policy == PolicyRecompute && s.Recovery.Recompute != nil {
		if rerr := s.Recovery.Recompute(ref); rerr != nil {
			return fmt.Errorf("offload: restore %q (%s): %w: recompute failed: %v (original: %v)",
				ref.Name, ref.Kind, ErrCorrupted, rerr, err)
		}
		s.counters.Recomputed.Add(1)
		// The hook may have rebuilt the store wholesale; drop this
		// ref's stale entry if it survived.
		s.dropIfCurrent(ref, e)
		return nil
	}
	// Entry retained: the only copy of the activation must not be
	// destroyed by a failed decode.
	return fmt.Errorf("offload: restore %q (%s): %w", ref.Name, ref.Kind, err)
}

// Restore decompresses the stored activation back into ref.T (no-op for
// BRC refs, whose mask is already attached) and frees the backend copy —
// but only after the frame's CRC is verified and the payload decodes, so
// a failed restore always leaves the compressed copy intact. On
// corruption the configured RecoveryPolicy is consulted: PolicyFail
// returns a typed error, PolicyRetry re-reads the transport, and
// PolicyRecompute invokes the Recovery.Recompute hook.
func (s *Store) Restore(ref *nn.ActRef) error {
	e, ok := s.lookup(ref)
	if !ok {
		return fmt.Errorf("offload: restore %q (%s): %w", ref.Name, ref.Kind, ErrNotStored)
	}
	t, pl, err := s.fetch(e, ref)
	if err != nil {
		return s.recover(ref, e, err)
	}
	s.finishRestore(ref, e, t, pl)
	return nil
}

// OffloadAll offloads every unique saved ref of a network (forward-pass
// end), returning the original and compressed byte totals.
func (s *Store) OffloadAll(refs []*nn.ActRef) (orig, comp int, err error) {
	seen := map[*nn.ActRef]bool{}
	for _, ref := range refs {
		if seen[ref] || ref.T == nil {
			continue
		}
		seen[ref] = true
		orig += ref.T.Bytes()
		if err := s.Offload(ref); err != nil {
			return orig, s.HostBytes(), err
		}
	}
	return orig, s.HostBytes(), nil
}

// RestoreAll restores every stored ref in deterministic reverse-offload
// order — the order the backward prefetcher would request them — so peak
// memory and error attribution are identical across runs regardless of
// Go map iteration.
func (s *Store) RestoreAll() error {
	// Always restore the highest-sequence resident entry next. Re-scanning
	// after every restore keeps the sweep correct even when a recompute
	// hook rebuilds the store with fresh refs mid-sweep.
	for {
		s.mu.Lock()
		var next *nn.ActRef
		bestSeq := -1
		for ref, e := range s.entries {
			if e.seq > bestSeq {
				bestSeq, next = e.seq, ref
			}
		}
		s.mu.Unlock()
		if next == nil {
			return nil
		}
		if err := s.Restore(next); err != nil {
			return err
		}
	}
}

// Reset drops every entry, releasing the backend copies (counters and
// the offload sequence are preserved). Used by the recompute path to
// discard a stale step before re-offloading freshly materialized
// activations.
func (s *Store) Reset() {
	s.mu.Lock()
	old := s.entries
	s.entries = map[*nn.ActRef]*entry{}
	s.hostBytes = 0
	s.mu.Unlock()
	for _, e := range old {
		s.deleteEntry(e)
	}
}

// Close releases the transport backend (the in-process backend's
// buffers, or a network client's connection) and the breaker's degraded
// fallback, when one was ever built.
func (s *Store) Close() error {
	err := s.transportOf().Close()
	s.mu.Lock()
	f := s.fallback
	s.mu.Unlock()
	if f != nil {
		f.Close()
	}
	return err
}

// Stored returns the number of resident entries.
func (s *Store) Stored() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// HostBytes returns the total framed footprint currently resident.
func (s *Store) HostBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hostBytes
}

// Seq returns the offload sequence number of ref, and whether it is
// currently stored (exposed for restore-order tests and tooling).
func (s *Store) Seq(ref *nn.ActRef) (int, bool) {
	e, ok := s.lookup(ref)
	if !ok {
		return 0, false
	}
	return e.seq, true
}

// BlockSize echoes the JPEG block constant for callers sizing buffers.
const BlockSize = dct.BlockSize
