// Package offload implements the host-memory side of the JPEG-ACT
// system: after the forward pass, saved activations are *actually*
// serialized into compressed byte buffers (the CPU DRAM of Fig. 7) and
// the float tensors are released; before a layer's backward pass its
// activation is restored by decompressing the stored bytes. Unlike the
// functional simulation in internal/train — which swaps in the recovered
// tensor immediately — this path realizes the memory saving for real:
// between offload and restore, only the compressed bytes are live.
//
// The store treats the GPU↔host transfer as a fault-prone physical
// channel: every activation crosses it inside a self-describing frame
// (internal/frame) whose CRC32C is verified before the host copy is
// released, and on corruption a configurable RecoveryPolicy decides
// whether to fail with a typed error, re-read the channel, or recompute
// the activation from scratch (gradient-checkpointing style, wired in by
// internal/train).
package offload

import (
	"errors"
	"fmt"
	"time"

	"jpegact/internal/coding"
	"jpegact/internal/compress"
	"jpegact/internal/dct"
	"jpegact/internal/frame"
	"jpegact/internal/nn"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// ErrNotStored is returned when restoring a ref that was never offloaded.
var ErrNotStored = errors.New("offload: activation not stored")

// ErrCorrupted wraps a frame decode failure that survived the recovery
// policy; the host entry is retained so the caller can still retry or
// recompute out of band.
var ErrCorrupted = errors.New("offload: corrupted beyond recovery")

// Channel abstracts the GPU↔host byte path. Send models the offload
// direction (what it returns is what lands in host memory — faults there
// are persistent); Recv models the restore direction (faults there are
// transient, so a retry re-reads the intact host copy). A nil return
// models a dropped transfer. internal/faults.Injector implements this
// interface; the zero-configuration default is a clean passthrough.
type Channel interface {
	Send(b []byte) []byte
	Recv(b []byte) []byte
}

// cleanChannel is the fault-free default.
type cleanChannel struct{}

func (cleanChannel) Send(b []byte) []byte { return b }
func (cleanChannel) Recv(b []byte) []byte { return b }

// RecoveryPolicy selects what Restore does when a frame fails its CRC.
type RecoveryPolicy int

const (
	// PolicyFail returns a typed error; the host entry is retained.
	PolicyFail RecoveryPolicy = iota
	// PolicyRetry re-reads through the channel up to MaxRetries times
	// (with optional exponential backoff) before failing.
	PolicyRetry
	// PolicyRecompute first exhausts the retries, then invokes the
	// Recovery.Recompute hook to re-materialize the activation from the
	// nearest intact upstream state (internal/train wires this to a
	// forward-pass replay).
	PolicyRecompute
)

// String implements fmt.Stringer.
func (p RecoveryPolicy) String() string {
	switch p {
	case PolicyFail:
		return "fail"
	case PolicyRetry:
		return "retry"
	case PolicyRecompute:
		return "recompute"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Recovery configures the corruption-recovery behaviour of a Store. The
// zero value is PolicyFail.
type Recovery struct {
	Policy RecoveryPolicy
	// MaxRetries bounds the channel re-reads under PolicyRetry and
	// PolicyRecompute (0 under PolicyRetry defaults to 3).
	MaxRetries int
	// Backoff is the initial delay between retries, doubled each attempt
	// (0 retries immediately — the right setting for simulated channels).
	Backoff time.Duration
	// Recompute re-materializes the corrupted ref's activation under
	// PolicyRecompute. The hook may rebuild the whole step — replay the
	// forward pass, Reset the store and re-offload fresh refs — in which
	// case the caller must refresh its ref list after Restore returns
	// (see train.ClassifierOffloaded).
	Recompute func(ref *nn.ActRef) error
}

// Stats counts the store's channel activity and recovery actions.
type Stats struct {
	Offloaded  uint64 // activations sent to host memory
	Restored   uint64 // activations brought back successfully
	Corrupted  uint64 // frame reads that failed validation
	Retried    uint64 // channel re-reads attempted
	Recomputed uint64 // corruptions resolved by the Recompute hook
	// BytesOffloaded / BytesVerified total the frame bytes written to,
	// and CRC-verified back from, host memory.
	BytesOffloaded int64
	BytesVerified  int64
}

// entry is one offloaded activation in host memory: the framed bytes as
// they landed after crossing the channel, plus the offload sequence
// number that fixes the deterministic reverse-restore order.
type entry struct {
	seq int
	buf []byte
}

// Store is a host-memory activation store using the JPEG-ACT pipeline
// with a fixed DQT.
type Store struct {
	DQT quant.DQT
	S   float64
	// Channel is the GPU↔host byte path (nil = clean passthrough).
	Channel Channel
	// Recovery selects the corruption policy (zero value = PolicyFail).
	Recovery Recovery
	// Stats accumulates channel and recovery counters for the lifetime
	// of the store.
	Stats Stats

	entries map[*nn.ActRef]*entry
	nextSeq int
	// HostBytes is the total framed footprint currently resident.
	HostBytes int
}

// NewStore builds a store with the given quantization table and a clean
// channel.
func NewStore(d quant.DQT) *Store {
	return &Store{DQT: d, S: sfpr.DefaultS, entries: map[*nn.ActRef]*entry{}}
}

func (s *Store) channel() Channel {
	if s.Channel == nil {
		return cleanChannel{}
	}
	return s.Channel
}

// Offload compresses the ref's activation into a framed host-memory
// buffer and releases the tensor (ref.T becomes nil, or a BRC mask
// replaces it). Refs are deduplicated by pointer; offloading the same
// ref twice is an error.
func (s *Store) Offload(ref *nn.ActRef) error {
	if _, dup := s.entries[ref]; dup {
		return fmt.Errorf("offload: offload %q (%s): already stored", ref.Name, ref.Kind)
	}
	if ref.T == nil {
		return fmt.Errorf("offload: offload %q (%s): %w", ref.Name, ref.Kind, ErrNotStored)
	}
	x := ref.T
	f := &frame.Frame{Kind: uint8(ref.Kind), Shape: x.Shape}

	switch ref.Kind {
	case compress.KindReLUToOther:
		f.Codec = frame.CodecBRC
		f.Payload = coding.EncodeBRC(x.Data)
		mask, err := coding.DecodeBRC(f.Payload, x.Elems())
		if err != nil {
			return fmt.Errorf("offload: offload %q (%s): %w", ref.Name, ref.Kind, err)
		}
		ref.Mask = mask
		ref.T = nil
	case compress.KindConv:
		if x.Shape.N*x.Shape.C*x.Shape.H >= 8 && x.Shape.W >= 8 {
			p := compress.JPEGAct(s.DQT)
			p.S = s.S
			blocks, scales, _ := p.QuantizeBlocks(x)
			f.Codec = frame.CodecJPEG
			f.Payload = coding.EncodeZVCBlocks(blocks)
			f.Scales = scales
			ref.T = nil
			break
		}
		fallthrough
	default:
		// Sparse kinds and small tensors: SFPR + ZVC.
		c := sfpr.Compress(x, s.S)
		f.Codec = frame.CodecZVC
		f.Payload = coding.EncodeZVC(c.Values)
		f.Scales = c.Scales
		ref.T = nil
	}

	// The framed buffer crosses the channel; what Send returns is what
	// actually landed in host memory (send-side faults are persistent).
	buf := s.channel().Send(frame.EncodeFrame(f))
	e := &entry{seq: s.nextSeq, buf: buf}
	s.nextSeq++
	s.entries[ref] = e
	s.HostBytes += len(buf)
	s.Stats.Offloaded++
	s.Stats.BytesOffloaded += int64(len(buf))
	return nil
}

// readFrame reads the entry back through the channel and validates the
// frame, applying the retry schedule of the recovery policy.
func (s *Store) readFrame(e *entry) (*frame.Frame, error) {
	retries := s.Recovery.MaxRetries
	if s.Recovery.Policy == PolicyRetry && retries == 0 {
		retries = 3
	}
	if s.Recovery.Policy == PolicyFail {
		retries = 0
	}
	backoff := s.Recovery.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		var f *frame.Frame
		f, err = frame.DecodeFrame(s.channel().Recv(e.buf))
		if err == nil {
			s.Stats.BytesVerified += int64(len(e.buf))
			return f, nil
		}
		s.Stats.Corrupted++
		if attempt >= retries {
			return nil, err
		}
		s.Stats.Retried++
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// Restore decompresses the stored activation back into ref.T (no-op for
// BRC refs, whose mask is already attached) and frees the host copy —
// but only after the frame's CRC is verified and the payload decodes, so
// a failed restore always leaves the compressed host copy intact. On
// corruption the configured RecoveryPolicy is consulted: PolicyFail
// returns a typed error, PolicyRetry re-reads the channel, and
// PolicyRecompute invokes the Recovery.Recompute hook.
func (s *Store) Restore(ref *nn.ActRef) error {
	e, ok := s.entries[ref]
	if !ok {
		return fmt.Errorf("offload: restore %q (%s): %w", ref.Name, ref.Kind, ErrNotStored)
	}

	f, err := s.readFrame(e)
	if err == nil {
		err = s.decodeInto(ref, f)
	}
	if err != nil {
		if s.Recovery.Policy == PolicyRecompute && s.Recovery.Recompute != nil {
			if rerr := s.Recovery.Recompute(ref); rerr != nil {
				return fmt.Errorf("offload: restore %q (%s): %w: recompute failed: %v (original: %v)",
					ref.Name, ref.Kind, ErrCorrupted, rerr, err)
			}
			s.Stats.Recomputed++
			// The hook may have rebuilt the store wholesale; drop this
			// ref's stale entry if it survived.
			if cur, still := s.entries[ref]; still && cur == e {
				delete(s.entries, ref)
				s.HostBytes -= len(e.buf)
			}
			return nil
		}
		// Entry retained: the only copy of the activation must not be
		// destroyed by a failed decode.
		return fmt.Errorf("offload: restore %q (%s): %w", ref.Name, ref.Kind, err)
	}

	delete(s.entries, ref)
	s.HostBytes -= len(e.buf)
	s.Stats.Restored++
	return nil
}

// decodeInto reconstructs the activation described by f onto ref. It
// does not mutate the store, so a failure leaves the entry untouched.
func (s *Store) decodeInto(ref *nn.ActRef, f *frame.Frame) error {
	switch f.Codec {
	case frame.CodecBRC:
		// The mask was attached to the ref at offload time and never
		// left the GPU; the host frame exists only for accounting.
		return nil
	case frame.CodecJPEG:
		info := tensor.BlockPadInfo(f.Shape, dct.BlockSize)
		nBlocks := info.PaddedElems() / 64
		blocks, err := coding.DecodeZVCBlocks(f.Payload, nBlocks)
		if err != nil {
			return err
		}
		if len(f.Scales) != f.Shape.C {
			return fmt.Errorf("%w: %d scales for %d channels", frame.ErrHeader, len(f.Scales), f.Shape.C)
		}
		p := compress.JPEGAct(s.DQT)
		p.S = s.S
		ref.T = p.ReconstructBlocks(blocks, f.Scales, info)
		return nil
	case frame.CodecZVC:
		vals, err := coding.DecodeZVC(f.Payload, f.Shape.Elems())
		if err != nil {
			return err
		}
		if len(f.Scales) != f.Shape.C {
			return fmt.Errorf("%w: %d scales for %d channels", frame.ErrHeader, len(f.Scales), f.Shape.C)
		}
		out := tensor.New(f.Shape.N, f.Shape.C, f.Shape.H, f.Shape.W)
		sfpr.DequantizeInto(vals, f.Scales, out)
		ref.T = out
		return nil
	}
	return fmt.Errorf("%w: codec %s", frame.ErrHeader, f.Codec)
}

// OffloadAll offloads every unique saved ref of a network (forward-pass
// end), returning the original and compressed byte totals.
func (s *Store) OffloadAll(refs []*nn.ActRef) (orig, comp int, err error) {
	seen := map[*nn.ActRef]bool{}
	for _, ref := range refs {
		if seen[ref] || ref.T == nil {
			continue
		}
		seen[ref] = true
		orig += ref.T.Bytes()
		if err := s.Offload(ref); err != nil {
			return orig, s.HostBytes, err
		}
	}
	return orig, s.HostBytes, nil
}

// RestoreAll restores every stored ref in deterministic reverse-offload
// order — the order the backward prefetcher would request them — so peak
// memory and error attribution are identical across runs regardless of
// Go map iteration.
func (s *Store) RestoreAll() error {
	// Always restore the highest-sequence resident entry next. Re-scanning
	// after every restore keeps the sweep correct even when a recompute
	// hook rebuilds the store with fresh refs mid-sweep.
	for len(s.entries) > 0 {
		var next *nn.ActRef
		bestSeq := -1
		for ref, e := range s.entries {
			if e.seq > bestSeq {
				bestSeq, next = e.seq, ref
			}
		}
		if err := s.Restore(next); err != nil {
			return err
		}
	}
	return nil
}

// Reset drops every host entry (counters and the offload sequence are
// preserved). Used by the recompute path to discard a stale step before
// re-offloading freshly materialized activations.
func (s *Store) Reset() {
	s.entries = map[*nn.ActRef]*entry{}
	s.HostBytes = 0
}

// Stored returns the number of resident host entries.
func (s *Store) Stored() int { return len(s.entries) }

// Seq returns the offload sequence number of ref, and whether it is
// currently stored (exposed for restore-order tests and tooling).
func (s *Store) Seq(ref *nn.ActRef) (int, bool) {
	e, ok := s.entries[ref]
	if !ok {
		return 0, false
	}
	return e.seq, true
}

// BlockSize echoes the JPEG block constant for callers sizing buffers.
const BlockSize = dct.BlockSize
