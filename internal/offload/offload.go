// Package offload implements the host-memory side of the JPEG-ACT
// system: after the forward pass, saved activations are *actually*
// serialized into compressed byte buffers (the CPU DRAM of Fig. 7) and
// the float tensors are released; before a layer's backward pass its
// activation is restored by decompressing the stored bytes. Unlike the
// functional simulation in internal/train — which swaps in the recovered
// tensor immediately — this path realizes the memory saving for real:
// between offload and restore, only the compressed bytes are live.
package offload

import (
	"errors"
	"fmt"

	"jpegact/internal/coding"
	"jpegact/internal/compress"
	"jpegact/internal/dct"
	"jpegact/internal/nn"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// ErrNotStored is returned when restoring a ref that was never offloaded.
var ErrNotStored = errors.New("offload: activation not stored")

// entry is one offloaded activation in host memory.
type entry struct {
	shape  tensor.Shape
	kind   compress.Kind
	scales []float32 // SFPR channel scales
	// Exactly one of the following payloads is set.
	jpegStream []byte // SH+ZVC coded blocks (dense conv/sum path)
	info       tensor.PadInfo
	zvcStream  []byte // SFPR+ZVC (sparse kinds)
	brcMask    []byte // BRC bit mask (ReLU to other)
}

// Store is a host-memory activation store using the JPEG-ACT pipeline
// with a fixed DQT.
type Store struct {
	DQT     quant.DQT
	S       float64
	entries map[*nn.ActRef]*entry
	// HostBytes is the total compressed footprint currently resident.
	HostBytes int
}

// NewStore builds a store with the given quantization table.
func NewStore(d quant.DQT) *Store {
	return &Store{DQT: d, S: sfpr.DefaultS, entries: map[*nn.ActRef]*entry{}}
}

// Offload compresses the ref's activation into host memory and releases
// the tensor (ref.T becomes nil, or a BRC mask replaces it). Refs are
// deduplicated by pointer; offloading the same ref twice is an error.
func (s *Store) Offload(ref *nn.ActRef) error {
	if _, dup := s.entries[ref]; dup {
		return fmt.Errorf("offload: ref %q already stored", ref.Name)
	}
	if ref.T == nil {
		return ErrNotStored
	}
	x := ref.T
	e := &entry{shape: x.Shape, kind: ref.Kind}

	switch ref.Kind {
	case compress.KindReLUToOther:
		e.brcMask = coding.EncodeBRC(x.Data)
		mask, err := coding.DecodeBRC(e.brcMask, x.Elems())
		if err != nil {
			return err
		}
		ref.Mask = mask
		ref.T = nil
	case compress.KindConv:
		if x.Shape.N*x.Shape.C*x.Shape.H >= 8 && x.Shape.W >= 8 {
			p := compress.JPEGAct(s.DQT)
			p.S = s.S
			blocks, scales, info := p.QuantizeBlocks(x)
			e.jpegStream = coding.EncodeZVCBlocks(blocks)
			e.scales = scales
			e.info = info
			ref.T = nil
			break
		}
		fallthrough
	default:
		// Sparse kinds and small tensors: SFPR + ZVC.
		c := sfpr.Compress(x, s.S)
		e.zvcStream = coding.EncodeZVC(c.Values)
		e.scales = c.Scales
		ref.T = nil
	}
	s.entries[ref] = e
	s.HostBytes += e.bytes()
	return nil
}

func (e *entry) bytes() int {
	return len(e.jpegStream) + len(e.zvcStream) + len(e.brcMask) + 4*len(e.scales)
}

// Restore decompresses the stored activation back into ref.T (no-op for
// BRC refs, whose mask is already attached) and frees the host copy.
func (s *Store) Restore(ref *nn.ActRef) error {
	e, ok := s.entries[ref]
	if !ok {
		return ErrNotStored
	}
	delete(s.entries, ref)
	s.HostBytes -= e.bytes()

	switch {
	case e.brcMask != nil:
		return nil // the mask already lives on the ref
	case e.jpegStream != nil:
		nBlocks := e.info.PaddedElems() / 64
		blocks, err := coding.DecodeZVCBlocks(e.jpegStream, nBlocks)
		if err != nil {
			return err
		}
		p := compress.JPEGAct(s.DQT)
		p.S = s.S
		ref.T = p.ReconstructBlocks(blocks, e.scales, e.info)
		return nil
	default:
		vals, err := coding.DecodeZVC(e.zvcStream, e.shape.Elems())
		if err != nil {
			return err
		}
		out := tensor.New(e.shape.N, e.shape.C, e.shape.H, e.shape.W)
		sfpr.DequantizeInto(vals, e.scales, out)
		ref.T = out
		return nil
	}
}

// OffloadAll offloads every unique saved ref of a network (forward-pass
// end), returning the original and compressed byte totals.
func (s *Store) OffloadAll(refs []*nn.ActRef) (orig, comp int, err error) {
	seen := map[*nn.ActRef]bool{}
	for _, ref := range refs {
		if seen[ref] || ref.T == nil {
			continue
		}
		seen[ref] = true
		orig += ref.T.Bytes()
		if err := s.Offload(ref); err != nil {
			return orig, s.HostBytes, err
		}
	}
	return orig, s.HostBytes, nil
}

// RestoreAll restores every stored ref (used before a monolithic backward
// pass; layer-at-a-time restoration uses Restore directly in reverse
// order, which is what bounds live memory).
func (s *Store) RestoreAll() error {
	for ref := range s.entries {
		if err := s.Restore(ref); err != nil {
			return err
		}
	}
	return nil
}

// Stored returns the number of resident host entries.
func (s *Store) Stored() int { return len(s.entries) }

// BlockSize echoes the JPEG block constant for callers sizing buffers.
const BlockSize = dct.BlockSize
