package codec

import (
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/frame"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// gradTensor builds a flattened (1,1,1,n) near-Gaussian gradient chunk
// with a sprinkle of exact zeros (the shape real weight gradients have
// after weight decay and ReLU masking).
func gradTensor(seed uint64, n int) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	x := tensor.New(1, 1, 1, n)
	for i := range x.Data {
		if r.Float64() < 0.2 {
			continue // exact zero
		}
		x.Data[i] = float32(r.Norm() * 1e-3)
	}
	return x
}

// TestGradRawRoundtripBitExact: the lossless gradient codec must give
// back every bit, including negative zeros and denormals, through a
// full frame encode/decode cycle.
func TestGradRawRoundtripBitExact(t *testing.T) {
	p := New(quant.OptL())
	x := gradTensor(1, 1000)
	x.Data[0] = float32(math.Copysign(0, -1))
	x.Data[1] = math.SmallestNonzeroFloat32
	x.Data[2] = -math.MaxFloat32

	enc, err := p.EncodeGradient(frame.CodecGradRaw, x)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Frame.Kind != uint8(compress.KindGradient) {
		t.Fatalf("frame kind %d, want %d", enc.Frame.Kind, compress.KindGradient)
	}
	fr, err := frame.DecodeFrame(frame.EncodeFrame(enc.Frame))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Decode(fr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(x.Data[i]) {
			t.Fatalf("element %d: %x, want %x", i, math.Float32bits(got.Data[i]), math.Float32bits(x.Data[i]))
		}
	}
}

// TestGradQuantErrorBound: every reconstructed element must sit within
// the advertised scale/2 bound, zeros must survive exactly (ZVC), and
// the frame must actually be smaller than raw float32.
func TestGradQuantErrorBound(t *testing.T) {
	p := New(quant.OptL())
	x := gradTensor(2, 4096)
	enc, err := p.EncodeGradient(frame.CodecGradQuant, x)
	if err != nil {
		t.Fatal(err)
	}
	if raw := 4 * x.Elems(); enc.Frame.EncodedSize() >= raw {
		t.Fatalf("quantized frame %dB >= raw %dB", enc.Frame.EncodedSize(), raw)
	}
	fr, err := frame.DecodeFrame(frame.EncodeFrame(enc.Frame))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Decode(fr)
	if err != nil {
		t.Fatal(err)
	}
	bound := GradQuantErrorBound(fr.Scales[0])
	for i := range x.Data {
		if diff := math.Abs(float64(got.Data[i] - x.Data[i])); diff > float64(bound) {
			t.Fatalf("element %d: error %v exceeds bound %v", i, diff, bound)
		}
		if x.Data[i] == 0 && got.Data[i] != 0 {
			t.Fatalf("element %d: exact zero became %v", i, got.Data[i])
		}
	}
}

// TestGradQuantAllZero: an all-zero gradient must round-trip exactly
// with a zero scale.
func TestGradQuantAllZero(t *testing.T) {
	p := New(quant.OptL())
	x := tensor.New(1, 1, 1, 256)
	enc, err := p.EncodeGradient(frame.CodecGradQuant, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Decode(enc.Frame)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("element %d: %v", i, v)
		}
	}
}

// TestGradQuantDeterministic: two encodes of the same chunk must be
// byte-identical — the property the K-independent all-reduce leans on.
func TestGradQuantDeterministic(t *testing.T) {
	p := New(quant.OptL())
	x := gradTensor(3, 2048)
	a, err := p.EncodeGradient(frame.CodecGradQuant, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.EncodeGradient(frame.CodecGradQuant, x)
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := frame.EncodeFrame(a.Frame), frame.EncodeFrame(b.Frame)
	if string(ab) != string(bb) {
		t.Fatal("two encodes of the same gradient differ")
	}
}

// TestEncodeGradientRejectsActivationCodecs: the explicit gradient
// entry point must refuse the Table II activation codecs.
func TestEncodeGradientRejectsActivationCodecs(t *testing.T) {
	p := New(quant.OptL())
	x := gradTensor(4, 64)
	for _, c := range []frame.Codec{frame.CodecBRC, frame.CodecJPEG, frame.CodecZVC} {
		if _, err := p.EncodeGradient(c, x); err == nil {
			t.Fatalf("EncodeGradient accepted %s", c)
		}
	}
}

// TestDecodeGradRawLengthMismatch: a raw gradient frame whose payload
// disagrees with its shape must fail typed, not slice out of range.
func TestDecodeGradRawLengthMismatch(t *testing.T) {
	p := New(quant.OptL())
	f := &frame.Frame{
		Codec:   frame.CodecGradRaw,
		Kind:    uint8(compress.KindGradient),
		Shape:   tensor.Shape{N: 1, C: 1, H: 1, W: 8},
		Payload: make([]byte, 12), // 8 elements declared, 3 shipped
	}
	if _, err := p.Decode(f); err == nil {
		t.Fatal("short raw gradient payload decoded")
	}
}
