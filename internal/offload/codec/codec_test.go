package codec

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func TestSelectPolicy(t *testing.T) {
	big := tensor.Shape{N: 2, C: 4, H: 16, W: 16}
	small := tensor.Shape{N: 1, C: 2, H: 4, W: 4}
	cases := []struct {
		kind compress.Kind
		sh   tensor.Shape
		want frame.Codec
	}{
		{compress.KindReLUToOther, big, frame.CodecBRC},
		{compress.KindConv, big, frame.CodecJPEG},
		{compress.KindConv, small, frame.CodecZVC},
		{compress.KindReLUToConv, big, frame.CodecZVC},
		{compress.KindPoolDropout, big, frame.CodecZVC},
	}
	for _, c := range cases {
		if got := Select(c.kind, c.sh); got != c.want {
			t.Fatalf("Select(%v, %v) = %v, want %v", c.kind, c.sh, got, c.want)
		}
	}
}

func TestRoundtripMatchesFunctionalMethod(t *testing.T) {
	// The codec layer must reconstruct exactly what the functional
	// JPEG-ACT method produces (same pipeline, same DQT) — the property
	// the recompute recovery path's bit-exactness rests on.
	r := tensor.NewRNG(2)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	m := compress.NewJPEGAct(quant.Fixed(quant.OptL()))
	want := m.Compress(x.Clone(), compress.KindConv, 0).Recovered

	p := New(quant.OptL())
	enc, err := p.Encode(compress.KindConv, x)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Frame.Codec != frame.CodecJPEG || enc.Mask != nil {
		t.Fatalf("dense conv must take the JPEG path: %+v", enc.Frame.Codec)
	}
	// Through a real frame encode/decode, as the transport would see it.
	f, err := frame.DecodeFrame(frame.EncodeFrame(enc.Frame))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MSE(want, got) != 0 {
		t.Fatal("codec and functional method disagree")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := tensor.NewRNG(3)
	x := data.ActivationTensor(r, 1, 3, 16, 16, 0.5, 1.0)
	p := New(quant.OptH())
	a, err := p.Encode(compress.KindConv, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Encode(compress.KindConv, x)
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := frame.EncodeFrame(a.Frame), frame.EncodeFrame(b.Frame)
	if string(ab) != string(bb) {
		t.Fatal("encode is not deterministic")
	}
}

func TestBRCMask(t *testing.T) {
	r := tensor.NewRNG(4)
	x := data.ActivationTensor(r, 1, 2, 8, 8, 0.5, 1.0)
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	p := New(quant.OptL())
	enc, err := p.Encode(compress.KindReLUToOther, x)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Mask == nil || enc.Frame.Codec != frame.CodecBRC {
		t.Fatal("BRC path must produce a mask")
	}
	for i, v := range x.Data {
		if enc.Mask[i] != (v > 0) {
			t.Fatalf("mask bit %d wrong", i)
		}
	}
	got, err := p.Decode(enc.Frame)
	if err != nil || got != nil {
		t.Fatalf("BRC decode must be a nil-tensor no-op, got %v, %v", got, err)
	}
}

func TestDecodeUnknownCodec(t *testing.T) {
	p := New(quant.OptL())
	_, err := p.Decode(&frame.Frame{Codec: frame.Codec(9)})
	if err == nil {
		t.Fatal("unknown codec must error")
	}
}
