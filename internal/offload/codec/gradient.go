package codec

// Gradient codecs for the data-parallel exchange: weight gradients are
// signed, near-Gaussian and carry no spatial structure, so the 8×8 DCT
// path is useless to them — what works is either shipping the raw
// float32 values (CodecGradRaw, lossless: the default, which is what
// lets the all-reduce stay bit-exact by construction) or an
// error-bounded int8 quantization with the ZVC coder reused over the
// quantized values (CodecGradQuant: one max-abs scale per chunk, so
// every element's reconstruction error is at most scale/2).
//
// Both codecs are registered like the activation codecs, but they are
// never chosen by Select — gradients are not activations, and the
// caller picks the codec explicitly through EncodeGradient.

import (
	"encoding/binary"
	"fmt"
	"math"

	"jpegact/internal/coding"
	"jpegact/internal/compress"
	"jpegact/internal/frame"
	"jpegact/internal/tensor"
)

func init() {
	Register(frame.CodecGradRaw, encodeGradRaw, decodeGradRaw)
	Register(frame.CodecGradQuant, encodeGradQuant, decodeGradQuant)
}

// EncodeGradient compresses a flattened gradient chunk with the given
// gradient codec (CodecGradRaw or CodecGradQuant), bypassing the
// Table II activation policy.
func (p Pipeline) EncodeGradient(c frame.Codec, x *tensor.Tensor) (Encoded, error) {
	if c != frame.CodecGradRaw && c != frame.CodecGradQuant {
		return Encoded{}, fmt.Errorf("codec: %s is not a gradient codec", c)
	}
	return registry[c].encode(p, compress.KindGradient, x)
}

// GradQuantErrorBound returns the per-element reconstruction error
// bound of a CodecGradQuant frame with the given scale.
func GradQuantErrorBound(scale float32) float32 {
	return scale / 2
}

func encodeGradRaw(_ Pipeline, kind compress.Kind, x *tensor.Tensor) (Encoded, error) {
	f := &frame.Frame{Codec: frame.CodecGradRaw, Kind: uint8(kind), Shape: x.Shape}
	f.Payload = make([]byte, 4*len(x.Data))
	for i, v := range x.Data {
		binary.LittleEndian.PutUint32(f.Payload[4*i:], math.Float32bits(v))
	}
	return Encoded{Frame: f}, nil
}

// DecodeGradientInto decodes a gradient frame directly into dst,
// bypassing the per-chunk tensor allocation of Decode — the exchange's
// hot path runs once per chunk per microbatch per step, so the caller
// pools dst. dst must hold exactly the frame's element count.
func (p Pipeline) DecodeGradientInto(f *frame.Frame, dst []float32) error {
	if n := f.Shape.Elems(); len(dst) != n {
		return fmt.Errorf("codec: %d-element buffer for a %d-value gradient frame", len(dst), n)
	}
	switch f.Codec {
	case frame.CodecGradRaw:
		return decodeGradRawInto(f, dst)
	case frame.CodecGradQuant:
		return decodeGradQuantInto(f, dst)
	}
	return fmt.Errorf("codec: %s is not a gradient codec", f.Codec)
}

func decodeGradRawInto(f *frame.Frame, dst []float32) error {
	n := f.Shape.Elems()
	if len(f.Payload) != 4*n {
		return fmt.Errorf("%w: %d payload bytes for %d gradient values", frame.ErrHeader, len(f.Payload), n)
	}
	if len(f.Scales) != 0 {
		return fmt.Errorf("%w: %d scales on a raw gradient frame", frame.ErrHeader, len(f.Scales))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(f.Payload[4*i:]))
	}
	return nil
}

func decodeGradRaw(_ Pipeline, f *frame.Frame) (*tensor.Tensor, error) {
	out := tensor.New(f.Shape.N, f.Shape.C, f.Shape.H, f.Shape.W)
	if err := decodeGradRawInto(f, out.Data); err != nil {
		return nil, err
	}
	return out, nil
}

func encodeGradQuant(_ Pipeline, kind compress.Kind, x *tensor.Tensor) (Encoded, error) {
	var maxAbs float32
	for _, v := range x.Data {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	codes := make([]int8, len(x.Data))
	if scale > 0 {
		inv := 1 / scale
		for i, v := range x.Data {
			q := math.RoundToEven(float64(v * inv))
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			codes[i] = int8(q)
		}
	}
	f := &frame.Frame{Codec: frame.CodecGradQuant, Kind: uint8(kind), Shape: x.Shape}
	f.Payload = coding.EncodeZVC(codes)
	f.Scales = []float32{scale}
	return Encoded{Frame: f}, nil
}

func decodeGradQuantInto(f *frame.Frame, dst []float32) error {
	if len(f.Scales) != 1 {
		return fmt.Errorf("%w: %d scales on a quantized gradient frame", frame.ErrHeader, len(f.Scales))
	}
	codes, err := coding.DecodeZVC(f.Payload, f.Shape.Elems())
	if err != nil {
		return err
	}
	scale := f.Scales[0]
	if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) || scale < 0 {
		return fmt.Errorf("%w: gradient scale %v", frame.ErrHeader, scale)
	}
	for i, c := range codes {
		dst[i] = float32(c) * scale
	}
	return nil
}

func decodeGradQuant(_ Pipeline, f *frame.Frame) (*tensor.Tensor, error) {
	out := tensor.New(f.Shape.N, f.Shape.C, f.Shape.H, f.Shape.W)
	if err := decodeGradQuantInto(f, out.Data); err != nil {
		return nil, err
	}
	return out, nil
}
