package codec

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// FuzzDecodeCoefficients feeds arbitrary container bytes through the
// frame decoder into the coefficient path. Malformed input must never
// panic and must never leak a pooled block slice: every error exit in
// DecodeCoefficients releases the borrowed blocks, and the success exit
// hands ownership to the plane, which we release here.
func FuzzDecodeCoefficients(f *testing.F) {
	r := tensor.NewRNG(9)
	x := data.ActivationTensor(r, 1, 2, 16, 16, 0.5, 1.0)
	p := New(quant.OptL())
	enc, err := p.Encode(compress.KindConv, x)
	if err != nil {
		f.Fatal(err)
	}
	valid := frame.EncodeFrame(enc.Frame)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := frame.DecodeFrame(raw)
		if err != nil {
			return
		}
		pl, err := p.DecodeCoefficients(fr)
		if err != nil {
			return
		}
		if pl.Shape() != fr.Shape {
			t.Fatalf("plane shape %v, frame shape %v", pl.Shape(), fr.Shape)
		}
		pl.Release()
	})
}

// FuzzDecodeGradient drives arbitrary container bytes through the
// gradient decode paths (CodecGradRaw and CodecGradQuant). Malformed
// frames — wrong payload length, bad scale counts, non-finite scales,
// corrupt ZVC bodies — must fail with an error, never a panic, and a
// successful decode must honour the frame's declared shape.
func FuzzDecodeGradient(f *testing.F) {
	r := tensor.NewRNG(11)
	x := tensor.New(1, 1, 1, 512)
	for i := range x.Data {
		if i%3 != 0 {
			x.Data[i] = float32(r.Norm() * 1e-3)
		}
	}
	p := New(quant.OptL())
	for _, c := range []frame.Codec{frame.CodecGradRaw, frame.CodecGradQuant} {
		enc, err := p.EncodeGradient(c, x)
		if err != nil {
			f.Fatal(err)
		}
		valid := frame.EncodeFrame(enc.Frame)
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := frame.DecodeFrame(raw)
		if err != nil {
			return
		}
		if fr.Codec != frame.CodecGradRaw && fr.Codec != frame.CodecGradQuant {
			return
		}
		out, err := p.Decode(fr)
		if err != nil {
			return
		}
		if out.Shape != fr.Shape {
			t.Fatalf("tensor shape %v, frame shape %v", out.Shape, fr.Shape)
		}
	})
}
