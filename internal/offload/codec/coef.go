package codec

import (
	"errors"
	"fmt"

	"jpegact/internal/coding"
	"jpegact/internal/compress"
	"jpegact/internal/dct"
	"jpegact/internal/frame"
	"jpegact/internal/freqdomain"
	"jpegact/internal/tensor"
)

// ErrNoCoefficients reports that a frame has no quantized-coefficient
// representation — only JPEG-ACT frames carry DCT blocks. Callers fall
// back to the full Decode path.
var ErrNoCoefficients = errors.New("codec: frame has no coefficient representation")

// DecodeCoefficients decodes a JPEG-ACT frame only as far as its
// quantized coefficient blocks, skipping the inverse DCT and the spatial
// tensor entirely. The blocks land in a pooled slice borrowed from the
// compress scratch pool; the returned plane owns it and Release hands it
// back. Frames of any other codec return ErrNoCoefficients. Like Decode,
// this is a pure deterministic function of (DQT, S, frame).
func (p Pipeline) DecodeCoefficients(f *frame.Frame) (*freqdomain.Plane, error) {
	if f.Codec != frame.CodecJPEG {
		return nil, ErrNoCoefficients
	}
	if len(f.Scales) != f.Shape.C {
		return nil, fmt.Errorf("%w: %d scales for %d channels", frame.ErrHeader, len(f.Scales), f.Shape.C)
	}
	info := tensor.BlockPadInfo(f.Shape, dct.BlockSize)
	blocks := compress.BorrowBlocks(info.PaddedElems() / 64)
	if err := coding.DecodeZVCBlocksInto(blocks, f.Payload); err != nil {
		compress.ReleaseBlocks(blocks)
		return nil, err
	}
	return freqdomain.NewPlane(blocks, f.Scales, info, p.DQT, true, p.S), nil
}
