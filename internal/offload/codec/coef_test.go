package codec

import (
	"errors"
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// TestDecodeCoefficientsRoundtrip pins the coefficient path against the
// full decode: reconstructing from the decoded plane must be
// bit-identical to Decode of the same frame.
func TestDecodeCoefficientsRoundtrip(t *testing.T) {
	r := tensor.NewRNG(6)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	p := New(quant.OptL())
	enc, err := p.Encode(compress.KindConv, x)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Frame.Codec != frame.CodecJPEG {
		t.Fatalf("expected a JPEG frame, got %v", enc.Frame.Codec)
	}
	f, err := frame.DecodeFrame(frame.EncodeFrame(enc.Frame))
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.DecodeCoefficients(f)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Release()
	if !pl.Aligned() {
		t.Fatal("16×16 plane must be aligned")
	}
	got := pl.Reconstruct()
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("elem %d: coefficient path %v, full decode %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestDecodeCoefficientsNonJPEG pins the fallback contract: frames
// without a DCT representation report ErrNoCoefficients, not a panic or
// a bogus plane.
func TestDecodeCoefficientsNonJPEG(t *testing.T) {
	r := tensor.NewRNG(7)
	x := tensor.New(1, 2, 4, 4)
	x.FillNormal(r, 0, 1)
	p := New(quant.OptL())
	for _, kind := range []compress.Kind{compress.KindPoolDropout, compress.KindReLUToOther} {
		enc, err := p.Encode(kind, x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.DecodeCoefficients(enc.Frame); !errors.Is(err, ErrNoCoefficients) {
			t.Fatalf("kind %v: want ErrNoCoefficients, got %v", kind, err)
		}
	}
}

// TestDecodeCoefficientsCorrupt checks header and payload validation.
func TestDecodeCoefficientsCorrupt(t *testing.T) {
	r := tensor.NewRNG(8)
	x := data.ActivationTensor(r, 1, 2, 8, 8, 0.5, 1.0)
	p := New(quant.OptL())
	enc, err := p.Encode(compress.KindConv, x)
	if err != nil {
		t.Fatal(err)
	}
	bad := *enc.Frame
	bad.Scales = bad.Scales[:1]
	if _, err := p.DecodeCoefficients(&bad); err == nil {
		t.Fatal("scale/channel mismatch must error")
	}
	bad = *enc.Frame
	bad.Payload = bad.Payload[:len(bad.Payload)/2]
	if _, err := p.DecodeCoefficients(&bad); err == nil {
		t.Fatal("truncated payload must error")
	}
}
