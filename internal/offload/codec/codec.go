// Package codec is the pure compression layer of the offload stack: it
// turns an activation tensor into a self-describing frame and back,
// reusing the internal/compress pipelines (JPEG-ACT SH+ZVC, SFPR+ZVC,
// BRC) behind a small registry keyed by frame codec. It performs no
// I/O, touches no channel and keeps no state — encode and decode are
// deterministic pure functions of (DQT, S, input), which is what lets
// the async scheduler run them on any worker at any time without
// changing a single output bit.
package codec

import (
	"fmt"

	"jpegact/internal/coding"
	"jpegact/internal/compress"
	"jpegact/internal/dct"
	"jpegact/internal/frame"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// Pipeline is one configured codec set: the quantization table and SFPR
// scale shared by every registered codec. It is a cheap value.
type Pipeline struct {
	DQT quant.DQT
	S   float64
}

// New builds a pipeline with the paper's default SFPR scale.
func New(d quant.DQT) Pipeline { return Pipeline{DQT: d, S: sfpr.DefaultS} }

// Encoded is the result of encoding one activation: the frame to ship,
// plus the BRC sign mask when the BRC codec was selected (the mask never
// leaves the GPU; the frame exists only for accounting).
type Encoded struct {
	Frame *frame.Frame
	Mask  []bool
}

// EncodeFunc produces a frame (and optional mask) from a tensor.
type EncodeFunc func(p Pipeline, kind compress.Kind, x *tensor.Tensor) (Encoded, error)

// DecodeFunc reconstructs a tensor from a validated frame. BRC returns
// a nil tensor: the mask was attached at encode time and never left.
type DecodeFunc func(p Pipeline, f *frame.Frame) (*tensor.Tensor, error)

type codecImpl struct {
	encode EncodeFunc
	decode DecodeFunc
}

var registry = map[frame.Codec]codecImpl{}

// Register installs a codec implementation. The built-in BRC, JPEG and
// ZVC codecs self-register; tests and extensions may override.
func Register(c frame.Codec, enc EncodeFunc, dec DecodeFunc) {
	registry[c] = codecImpl{encode: enc, decode: dec}
}

func init() {
	Register(frame.CodecBRC, encodeBRC, decodeBRC)
	Register(frame.CodecJPEG, encodeJPEG, decodeJPEG)
	Register(frame.CodecZVC, encodeZVC, decodeZVC)
}

// Select implements the Table II policy at the frame level: ReLU→other
// activations keep only the sign mask (BRC); dense conv inputs big
// enough to tile into 8×8 blocks go through the JPEG-ACT DCT path; all
// remaining kinds and small tensors fall back to SFPR+ZVC.
func Select(kind compress.Kind, sh tensor.Shape) frame.Codec {
	switch {
	case kind == compress.KindReLUToOther:
		return frame.CodecBRC
	case kind == compress.KindConv && sh.N*sh.C*sh.H >= dct.BlockSize && sh.W >= dct.BlockSize:
		return frame.CodecJPEG
	default:
		return frame.CodecZVC
	}
}

// Encode compresses x as an activation of the given kind into a frame,
// selecting the codec per the Table II policy.
func (p Pipeline) Encode(kind compress.Kind, x *tensor.Tensor) (Encoded, error) {
	c := Select(kind, x.Shape)
	impl, ok := registry[c]
	if !ok || impl.encode == nil {
		return Encoded{}, fmt.Errorf("codec: no encoder for %s", c)
	}
	return impl.encode(p, kind, x)
}

// Decode reconstructs the tensor a validated frame describes (nil for
// BRC frames, whose mask never crossed the channel).
func (p Pipeline) Decode(f *frame.Frame) (*tensor.Tensor, error) {
	impl, ok := registry[f.Codec]
	if !ok || impl.decode == nil {
		return nil, fmt.Errorf("%w: codec %s", frame.ErrHeader, f.Codec)
	}
	return impl.decode(p, f)
}

// --- built-in codecs --------------------------------------------------

func encodeBRC(_ Pipeline, kind compress.Kind, x *tensor.Tensor) (Encoded, error) {
	f := &frame.Frame{Codec: frame.CodecBRC, Kind: uint8(kind), Shape: x.Shape}
	f.Payload = coding.EncodeBRC(x.Data)
	mask, err := coding.DecodeBRC(f.Payload, x.Elems())
	if err != nil {
		return Encoded{}, err
	}
	return Encoded{Frame: f, Mask: mask}, nil
}

func decodeBRC(Pipeline, *frame.Frame) (*tensor.Tensor, error) {
	// The mask was attached to the ref at offload time and never left
	// the GPU; the host frame exists only for accounting.
	return nil, nil
}

func encodeJPEG(p Pipeline, kind compress.Kind, x *tensor.Tensor) (Encoded, error) {
	pl := compress.JPEGAct(p.DQT)
	pl.S = p.S
	blocks, scales, _ := pl.QuantizeBlocks(x)
	f := &frame.Frame{Codec: frame.CodecJPEG, Kind: uint8(kind), Shape: x.Shape}
	f.Payload = coding.EncodeZVCBlocks(blocks)
	compress.ReleaseBlocks(blocks)
	f.Scales = scales
	return Encoded{Frame: f}, nil
}

func decodeJPEG(p Pipeline, f *frame.Frame) (*tensor.Tensor, error) {
	info := tensor.BlockPadInfo(f.Shape, dct.BlockSize)
	nBlocks := info.PaddedElems() / 64
	blocks, err := coding.DecodeZVCBlocks(f.Payload, nBlocks)
	if err != nil {
		return nil, err
	}
	if len(f.Scales) != f.Shape.C {
		return nil, fmt.Errorf("%w: %d scales for %d channels", frame.ErrHeader, len(f.Scales), f.Shape.C)
	}
	pl := compress.JPEGAct(p.DQT)
	pl.S = p.S
	return pl.ReconstructBlocks(blocks, f.Scales, info), nil
}

func encodeZVC(p Pipeline, kind compress.Kind, x *tensor.Tensor) (Encoded, error) {
	c := sfpr.Compress(x, p.S)
	f := &frame.Frame{Codec: frame.CodecZVC, Kind: uint8(kind), Shape: x.Shape}
	f.Payload = coding.EncodeZVC(c.Values)
	f.Scales = c.Scales
	return Encoded{Frame: f}, nil
}

func decodeZVC(_ Pipeline, f *frame.Frame) (*tensor.Tensor, error) {
	vals, err := coding.DecodeZVC(f.Payload, f.Shape.Elems())
	if err != nil {
		return nil, err
	}
	if len(f.Scales) != f.Shape.C {
		return nil, fmt.Errorf("%w: %d scales for %d channels", frame.ErrHeader, len(f.Scales), f.Shape.C)
	}
	out := tensor.New(f.Shape.N, f.Shape.C, f.Shape.H, f.Shape.W)
	sfpr.DequantizeInto(vals, f.Scales, out)
	return out, nil
}
