package offload

import (
	"bytes"
	"errors"
	"testing"

	"jpegact/internal/faults"
	"jpegact/internal/nn"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// sendRecorder keeps a copy of every payload crossing Send, passthrough
// otherwise.
type sendRecorder struct{ sent [][]byte }

func (r *sendRecorder) Send(b []byte) []byte {
	r.sent = append(r.sent, append([]byte(nil), b...))
	return b
}
func (r *sendRecorder) Recv(b []byte) []byte { return b }

func engineRefs(n int) []*nn.ActRef {
	refs := make([]*nn.ActRef, n)
	for i := range refs {
		refs[i] = denseRef(uint64(100 + i))
	}
	return refs
}

// TestEngineAsyncCommitsInSubmissionOrder is the determinism keystone:
// whatever the worker pool does, the channel must see frames in exactly
// the sequence a synchronous run sends them — byte-identical, same
// order — so injected fault patterns are reproducible across modes.
func TestEngineAsyncCommitsInSubmissionOrder(t *testing.T) {
	const n = 8
	recSync := &sendRecorder{}
	sSync := NewStore(quant.OptL())
	sSync.Channel = recSync
	for _, ref := range engineRefs(n) {
		if err := sSync.Offload(ref); err != nil {
			t.Fatal(err)
		}
	}

	recAsync := &sendRecorder{}
	sAsync := NewStore(quant.OptL())
	sAsync.Channel = recAsync
	eng := NewEngine(sAsync, EngineConfig{Async: true, Workers: 4})
	defer eng.Close()
	eng.BeginStep()
	refs := engineRefs(n)
	for _, ref := range refs {
		eng.Offload(ref)
	}
	if _, _, err := eng.EndForward(nil); err != nil {
		t.Fatal(err)
	}
	if len(recAsync.sent) != n {
		t.Fatalf("%d sends, want %d", len(recAsync.sent), n)
	}
	for i := range refs {
		if seq, ok := sAsync.Seq(refs[i]); !ok || seq != i {
			t.Fatalf("ref %d has seq %d (ok=%v); commits out of submission order", i, seq, ok)
		}
		if !bytes.Equal(recSync.sent[i], recAsync.sent[i]) {
			t.Fatalf("send %d differs between sync and async", i)
		}
	}
	if err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineInFlightBudget bounds the encoded bytes parked between the
// workers and the channel. The commit head is exempt (progress
// guarantee), so the high-water mark may reach one frame above the
// budget but no further.
func TestEngineInFlightBudget(t *testing.T) {
	s := NewStore(quant.OptL())
	const budget = 4 << 10
	eng := NewEngine(s, EngineConfig{Async: true, Workers: 4, InFlightBytes: budget})
	defer eng.Close()
	eng.BeginStep()
	refs := engineRefs(10)
	for _, ref := range refs {
		eng.Offload(ref)
	}
	if _, _, err := eng.EndForward(nil); err != nil {
		t.Fatal(err)
	}
	maxFrame := 0
	s.mu.Lock()
	for _, e := range s.entries {
		if e.size > maxFrame {
			maxFrame = e.size
		}
	}
	s.mu.Unlock()
	if got := eng.Stats().MaxInFlight; got > budget+maxFrame {
		t.Fatalf("in-flight high-water %d exceeds budget %d + one frame %d", got, budget, maxFrame)
	}
	if s.Stored() != len(refs) {
		t.Fatalf("%d entries stored, want %d", s.Stored(), len(refs))
	}
	if err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePrefetchBitExact restores through the prefetcher and checks
// every tensor is bit-identical to a synchronous restore of the same
// offload.
func TestEnginePrefetchBitExact(t *testing.T) {
	const n = 6
	want := make([]*tensor.Tensor, n)
	sSync := NewStore(quant.OptL())
	for i, ref := range engineRefs(n) {
		if err := sSync.Offload(ref); err != nil {
			t.Fatal(err)
		}
		if err := sSync.Restore(ref); err != nil {
			t.Fatal(err)
		}
		want[i] = ref.T
	}

	s := NewStore(quant.OptL())
	eng := NewEngine(s, EngineConfig{Async: true, Workers: 2, Prefetch: 2})
	defer eng.Close()
	eng.BeginStep()
	refs := engineRefs(n)
	for _, ref := range refs {
		eng.Offload(ref)
	}
	if _, _, err := eng.EndForward(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.PrepareBackward(); err != nil {
		t.Fatal(err)
	}
	for i := n - 1; i >= 0; i-- {
		if err := eng.Restore(refs[i]); err != nil {
			t.Fatal(err)
		}
		for j := range refs[i].T.Data {
			if refs[i].T.Data[j] != want[i].Data[j] {
				t.Fatalf("ref %d elem %d: prefetched restore differs from sync", i, j)
			}
		}
	}
	if err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.PrefetchHits+st.PrefetchWaits != n {
		t.Fatalf("prefetch served %d+%d restores, want %d", st.PrefetchHits, st.PrefetchWaits, n)
	}
	if s.Stored() != 0 {
		t.Fatalf("%d entries left", s.Stored())
	}
}

// TestEngineOnDemandRestores covers Prefetch<=0: restores fall back to
// the synchronous path one by one.
func TestEngineOnDemandRestores(t *testing.T) {
	s := NewStore(quant.OptL())
	eng := NewEngine(s, EngineConfig{Async: true})
	defer eng.Close()
	eng.BeginStep()
	refs := engineRefs(3)
	for _, ref := range refs {
		eng.Offload(ref)
	}
	if _, _, err := eng.EndForward(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.PrepareBackward(); err != nil {
		t.Fatal(err)
	}
	for i := len(refs) - 1; i >= 0; i-- {
		if err := eng.Restore(refs[i]); err != nil {
			t.Fatal(err)
		}
		if refs[i].T == nil {
			t.Fatalf("ref %d not restored", i)
		}
	}
	if st := eng.Stats(); st.DemandFetches != 3 || st.PrefetchHits != 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAsyncRecompute corrupts one frame so the prefetcher stages
// an error; the consuming Restore must stop the prefetcher, run the
// recompute hook, and finish the step synchronously.
func TestEngineAsyncRecompute(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 21})
	s := NewStore(quant.OptL())
	s.Channel = inj
	recomputed := 0
	s.Recovery = Recovery{
		Policy: PolicyRecompute,
		Recompute: func(ref *nn.ActRef) error {
			recomputed++
			ref.T = tensor.New(2, 4, 16, 16)
			return nil
		},
	}
	eng := NewEngine(s, EngineConfig{Async: true, Workers: 2, Prefetch: 2})
	defer eng.Close()
	eng.BeginStep()
	refs := engineRefs(5)
	for _, ref := range refs {
		eng.Offload(ref)
	}
	if _, _, err := eng.EndForward(nil); err != nil {
		t.Fatal(err)
	}
	// The first Recv the prefetcher issues (the highest-seq entry) is
	// corrupted.
	inj.ForceNextRecv(1)
	if err := eng.PrepareBackward(); err != nil {
		t.Fatal(err)
	}
	for i := len(refs) - 1; i >= 0; i-- {
		if err := eng.Restore(refs[i]); err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
	}
	if err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	if recomputed != 1 {
		t.Fatalf("recompute ran %d times", recomputed)
	}
	st := s.Stats()
	if st.Recomputed != 1 || st.Corrupted == 0 {
		t.Fatalf("stats %+v", st)
	}
	for i, ref := range refs {
		if ref.T == nil {
			t.Fatalf("ref %d has no tensor after recovery", i)
		}
	}
	if s.Stored() != 0 {
		t.Fatalf("%d entries left", s.Stored())
	}
}

// dropOnce loses the first transfer entirely (nil Recv), then passes
// through.
type dropOnce struct{ fired bool }

func (c *dropOnce) Send(b []byte) []byte { return b }
func (c *dropOnce) Recv(b []byte) []byte {
	if c.fired {
		return b
	}
	c.fired = true
	return nil
}

// TestEngineDroppedTransferTyped: a dropped transfer discovered by the
// prefetcher surfaces as ErrDropped under PolicyFail and is counted
// distinctly from corruption retries.
func TestEngineDroppedTransferTyped(t *testing.T) {
	s := NewStore(quant.OptL())
	s.Channel = &dropOnce{}
	eng := NewEngine(s, EngineConfig{Async: true, Prefetch: 1})
	defer eng.Close()
	eng.BeginStep()
	refs := engineRefs(2)
	for _, ref := range refs {
		eng.Offload(ref)
	}
	if _, _, err := eng.EndForward(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.PrepareBackward(); err != nil {
		t.Fatal(err)
	}
	err := eng.Restore(refs[1])
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	eng.Abort()
	if st := s.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped count %d, stats %+v", st.Dropped, st)
	}
	// The host copy survived; a later sync restore succeeds.
	if err := s.RestoreAll(); err != nil {
		t.Fatal(err)
	}
}
