// Circuit breaker: the store's failure-domain boundary against a dying
// networked activation store. Whole-operation wire failures (the
// transport's typed ErrStoreUnavailable — the verdict of an exhausted
// retry schedule, never a single dropped connection) are counted; after
// FailureThreshold consecutive failures the breaker opens and offloads
// degrade to an in-process fallback backend holding the *identical
// encoded frame bytes* a healthy wire PUT would have carried. Because
// the lossy codec ran before the routing decision, a degraded step and
// a healthy step reconstruct bit-identical activations — the chaos
// soak test pins exactly this.
//
// While open, the wire is skipped entirely for ProbeAfter operations
// (probation is counted in ops, not wall time, so runs are reproducible
// under any timing), then one half-open probe re-tries the real
// transport: success closes the breaker and traffic returns to the
// wire; failure restarts probation. Frames stored degraded stay pinned
// to the fallback for their whole lifetime — restore and delete route
// by the entry's degraded flag — so a mid-step recovery never asks the
// wire for bytes it was never sent.
package offload

import (
	"sync"
)

// BreakerConfig tunes the store's circuit breaker. The zero value is an
// enabled breaker with default thresholds; it only ever engages on a
// wire transport (the in-process backend cannot report the store
// unavailable).
type BreakerConfig struct {
	// Disabled turns the breaker off: whole-op wire failures surface to
	// the caller as errors instead of degrading to the local fallback.
	Disabled bool
	// FailureThreshold is how many consecutive whole-op failures open
	// the breaker (<= 0 uses 3). Until it opens, every op still tries
	// the wire first — paying its retry budget — and only falls back
	// after that op's failure.
	FailureThreshold int
	// ProbeAfter is how many operations are served degraded before a
	// half-open probe re-tries the wire (<= 0 uses 32). Op-count
	// probation keeps degraded runs deterministic where a time-based
	// cooldown would not be.
	ProbeAfter int
}

// breaker is the closed/open/half-open state machine. It is shared by
// the synchronous store paths and the async engine's encode pool, so
// every transition holds the mutex.
type breaker struct {
	mu     sync.Mutex
	cfg    BreakerConfig
	fails  int  // consecutive whole-op wire failures
	open   bool // wire bypassed
	served int  // degraded ops since (re)opening — probation progress
}

// skipWire reports whether the next operation should bypass the wire
// entirely. While open it admits ops to the fallback until probation is
// served, then answers false once per probation round — the half-open
// probe that gives the wire a chance to win traffic back.
func (b *breaker) skipWire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return false
	}
	if b.served >= b.cfg.ProbeAfter {
		return false
	}
	b.served++
	return true
}

// onFailure records a whole-op wire failure; crossing the threshold (or
// failing a half-open probe) opens the breaker and restarts probation.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.cfg.FailureThreshold {
		b.open = true
		b.served = 0
	}
}

// onSuccess records a whole op completed on the wire; any success —
// including a half-open probe — closes the breaker fully.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.open = false
	b.served = 0
}

// tripped reports whether the breaker is currently open.
func (b *breaker) tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
