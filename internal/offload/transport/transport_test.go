package transport

import (
	"errors"
	"testing"
	"time"

	"jpegact/internal/frame"
	"jpegact/internal/tensor"
)

func testFrame(t *testing.T) []byte {
	t.Helper()
	f := &frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{1, 2, 3, 4},
	}
	return frame.EncodeFrame(f)
}

func TestCleanRead(t *testing.T) {
	buf := testFrame(t)
	var c Counters
	tr := NewLocal(nil, &c)
	if _, err := tr.Put(1, buf, Retry{}); err != nil {
		t.Fatal(err)
	}
	f, err := tr.Get(1, Retry{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Codec != frame.CodecZVC || len(f.Payload) != 4 {
		t.Fatalf("frame %+v", f)
	}
	if c.BytesVerified.Load() != int64(len(buf)) || c.Corrupted.Load() != 0 {
		t.Fatalf("stats %+v", c.Snapshot())
	}
}

func TestGetMissingKeyIsTyped(t *testing.T) {
	tr := NewLocal(nil, nil)
	if _, err := tr.Get(42, Retry{}, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := tr.Delete(42); err != nil {
		t.Fatalf("deleting an absent key must be a no-op: %v", err)
	}
}

// dropN returns nil for the first n Recvs, then passes through.
type dropN struct{ n int }

func (c *dropN) Send(b []byte) []byte { return b }
func (c *dropN) Recv(b []byte) []byte {
	if c.n > 0 {
		c.n--
		return nil
	}
	return b
}

func TestDroppedTransferIsTyped(t *testing.T) {
	buf := testFrame(t)
	var c Counters
	tr := NewLocal(&dropN{n: 1}, &c)
	if _, err := tr.Put(1, buf, Retry{}); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Get(1, Retry{}, false)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if errors.Is(err, frame.ErrTruncated) {
		t.Fatal("a drop must not fold into the truncation path")
	}
	s := c.Snapshot()
	if s.Dropped != 1 || s.Corrupted != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDropRecoveredByRetry(t *testing.T) {
	buf := testFrame(t)
	var c Counters
	tr := NewLocal(&dropN{n: 2}, &c)
	if _, err := tr.Put(1, buf, Retry{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get(1, Retry{Attempts: 3}, false); err != nil {
		t.Fatalf("retry should absorb transient drops: %v", err)
	}
	s := c.Snapshot()
	if s.Dropped != 2 || s.Retried != 2 {
		t.Fatalf("stats %+v", s)
	}
}

// truncate cuts every Recv to a prefix.
type truncate struct{}

func (truncate) Send(b []byte) []byte { return b }
func (truncate) Recv(b []byte) []byte { return b[:len(b)/2] }

func TestRetryExhaustionKeepsTypedError(t *testing.T) {
	buf := testFrame(t)
	var c Counters
	tr := NewLocal(truncate{}, &c)
	if _, err := tr.Put(1, buf, Retry{}); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Get(1, Retry{Attempts: 2}, false)
	if !errors.Is(err, frame.ErrTruncated) && !errors.Is(err, frame.ErrChecksum) {
		t.Fatalf("want truncation/checksum, got %v", err)
	}
	s := c.Snapshot()
	if s.Corrupted != 3 || s.Retried != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInjectedSleepSeesBackoffSchedule(t *testing.T) {
	buf := testFrame(t)
	var slept []time.Duration
	tr := NewLocal(truncate{}, nil)
	if _, err := tr.Put(1, buf, Retry{}); err != nil {
		t.Fatal(err)
	}
	r := Retry{
		Attempts: 3,
		Backoff:  40 * time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	start := time.Now()
	if _, err := tr.Get(1, r, false); err == nil {
		t.Fatal("persistent truncation must fail")
	}
	// The schedule is seen by the injected clock, not by the wall clock.
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("retry path real-slept %v despite injected clock", elapsed)
	}
	want := []time.Duration{40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}
