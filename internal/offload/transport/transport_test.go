package transport

import (
	"errors"
	"testing"
	"time"

	"jpegact/internal/frame"
	"jpegact/internal/tensor"
)

func testFrame(t *testing.T) []byte {
	t.Helper()
	f := &frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{1, 2, 3, 4},
	}
	return frame.EncodeFrame(f)
}

func TestCleanRead(t *testing.T) {
	buf := testFrame(t)
	var st Stats
	tr := Transport{Stats: &st}
	f, err := tr.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Codec != frame.CodecZVC || len(f.Payload) != 4 {
		t.Fatalf("frame %+v", f)
	}
	if st.BytesVerified.Load() != int64(len(buf)) || st.Corrupted.Load() != 0 {
		t.Fatalf("stats %+v", st.Snapshot())
	}
}

// dropN returns nil for the first n Recvs, then passes through.
type dropN struct{ n int }

func (c *dropN) Send(b []byte) []byte { return b }
func (c *dropN) Recv(b []byte) []byte {
	if c.n > 0 {
		c.n--
		return nil
	}
	return b
}

func TestDroppedTransferIsTyped(t *testing.T) {
	buf := testFrame(t)
	var st Stats
	tr := Transport{Channel: &dropN{n: 1}, Stats: &st}
	_, err := tr.Read(buf)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if errors.Is(err, frame.ErrTruncated) {
		t.Fatal("a drop must not fold into the truncation path")
	}
	s := st.Snapshot()
	if s.Dropped != 1 || s.Corrupted != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDropRecoveredByRetry(t *testing.T) {
	buf := testFrame(t)
	var st Stats
	tr := Transport{Channel: &dropN{n: 2}, Retries: 3, Stats: &st}
	if _, err := tr.Read(buf); err != nil {
		t.Fatalf("retry should absorb transient drops: %v", err)
	}
	s := st.Snapshot()
	if s.Dropped != 2 || s.Retried != 2 {
		t.Fatalf("stats %+v", s)
	}
}

// truncate cuts every Recv to a prefix.
type truncate struct{}

func (truncate) Send(b []byte) []byte { return b }
func (truncate) Recv(b []byte) []byte { return b[:len(b)/2] }

func TestRetryExhaustionKeepsTypedError(t *testing.T) {
	buf := testFrame(t)
	var st Stats
	tr := Transport{Channel: truncate{}, Retries: 2, Stats: &st}
	_, err := tr.Read(buf)
	if !errors.Is(err, frame.ErrTruncated) && !errors.Is(err, frame.ErrChecksum) {
		t.Fatalf("want truncation/checksum, got %v", err)
	}
	s := st.Snapshot()
	if s.Corrupted != 3 || s.Retried != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInjectedSleepSeesBackoffSchedule(t *testing.T) {
	buf := testFrame(t)
	var slept []time.Duration
	tr := Transport{
		Channel: truncate{},
		Retries: 3,
		Backoff: 40 * time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	start := time.Now()
	if _, err := tr.Read(buf); err == nil {
		t.Fatal("persistent truncation must fail")
	}
	// The schedule is seen by the injected clock, not by the wall clock.
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("retry path real-slept %v despite injected clock", elapsed)
	}
	want := []time.Duration{40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}
