package transport

import "testing"

// TestGradKeyLayout: fields land in their documented bit ranges and
// round-trip through the packed key.
func TestGradKeyLayout(t *testing.T) {
	tag, step, slot, chunk := uint64(0x5abc), uint64(0xfedcba), uint64(0xabc), uint64(0xdef)
	k := GradKey(tag, step, slot, chunk)
	if !IsGradKey(k) {
		t.Fatal("GradKey output not in grad namespace")
	}
	if got := k >> 48 & (1<<15 - 1); got != tag {
		t.Fatalf("tag field %#x, want %#x", got, tag)
	}
	if got := k >> 24 & (1<<24 - 1); got != step {
		t.Fatalf("step field %#x, want %#x", got, step)
	}
	if got := k >> 12 & (1<<12 - 1); got != slot {
		t.Fatalf("slot field %#x, want %#x", got, slot)
	}
	if got := k & (1<<12 - 1); got != chunk {
		t.Fatalf("chunk field %#x, want %#x", got, chunk)
	}
}

// TestGradKeyMasksOverflow: inputs wider than their fields are masked
// and must not smear into neighbouring fields.
func TestGradKeyMasksOverflow(t *testing.T) {
	if got, want := GradKey(1<<15, 0, 0, 0), GradKey(0, 0, 0, 0); got != want {
		t.Fatalf("overflowing tag leaked: %#x != %#x", got, want)
	}
	if got, want := GradKey(0, 1<<24|7, 0, 0), GradKey(0, 7, 0, 0); got != want {
		t.Fatalf("overflowing step leaked: %#x != %#x", got, want)
	}
	if got, want := GradKey(0, 0, 1<<12|3, 0), GradKey(0, 0, 3, 0); got != want {
		t.Fatalf("overflowing slot leaked: %#x != %#x", got, want)
	}
	if got, want := GradKey(0, 0, 0, 1<<12|5), GradKey(0, 0, 0, 5); got != want {
		t.Fatalf("overflowing chunk leaked: %#x != %#x", got, want)
	}
}

// TestGradKeyDistinct: distinct (step, slot, chunk) triples under one
// tag give distinct keys — the property the exchange's correctness
// rests on.
func TestGradKeyDistinct(t *testing.T) {
	tag := GradTag(42)
	seen := map[uint64]bool{}
	for step := uint64(0); step < 4; step++ {
		for slot := uint64(0); slot < 6; slot++ {
			for chunk := uint64(0); chunk < 8; chunk++ {
				k := GradKey(tag, step, slot, chunk)
				if seen[k] {
					t.Fatalf("key collision at step=%d slot=%d chunk=%d", step, slot, chunk)
				}
				seen[k] = true
			}
		}
	}
}

// TestIsGradKeyActivationRange: plain offload sequence numbers and
// KeyBase'd client keys (bits 62..48 in practice) never read as
// gradient keys.
func TestIsGradKeyActivationRange(t *testing.T) {
	for _, k := range []uint64{0, 1, 1 << 32, 0x7fff_ffff_ffff_ffff} {
		if IsGradKey(k) {
			t.Fatalf("activation key %#x read as gradient key", k)
		}
	}
}

// TestGradTagSpread: nearby seeds get different tags, and seed 0 is
// legal (nonzero tag not required, but it must not panic and must be
// stable).
func TestGradTagSpread(t *testing.T) {
	tags := map[uint64]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		tags[GradTag(seed)] = true
	}
	if len(tags) < 60 {
		t.Fatalf("only %d distinct tags over 64 consecutive seeds", len(tags))
	}
	if GradTag(0) != GradTag(0) {
		t.Fatal("GradTag not deterministic")
	}
}
