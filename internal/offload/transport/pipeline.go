package transport

// Pipelined wire transport: the windowed async face of NetClient.
//
// The wire protocol (wire.go) carries no request IDs — responses come
// back in request order — so a client may keep several requests in
// flight on one connection as long as it (a) writes them from a single
// goroutine, (b) matches responses to requests strictly FIFO, and
// (c) on any connection-level failure treats *every* in-flight request
// as lost, because a torn response desynchronizes the stream. The
// netstore server has served per-connection reader/writer goroutines
// since PR 5; this file adds the client half.
//
// Machinery: submitted ops queue on the client; a pump goroutine
// streams requests onto the wire while at most window() ops are in
// flight, and a per-connection reader goroutine drains responses in
// order, completing the in-flight FIFO head each time. Any dial, write,
// read or wire failure *poisons* the connection: it is closed, every
// in-flight op is charged one failed attempt through its own Retry
// schedule, and the survivors are resent in original submission order
// ahead of everything still queued — so the server observes the same
// logical op sequence a stop-and-wait client would, just denser. The
// sync Put/Get/Delete/ServerStats are the degenerate window-of-1 case:
// submit one op, wait for its handle.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"jpegact/internal/frame"
)

// Pipelined is the capability interface of transports that accept
// asynchronous operations with completion handles. NetClient implements
// it with a true wire window; Local implements it inline (the op runs
// synchronously at submit time and the handle comes back already
// resolved), so schedulers written against handles keep the in-process
// backend's deterministic op ordering for free.
type Pipelined interface {
	Transport
	// PutAsync submits one PUT and returns its completion handle. The
	// call blocks only for window backpressure, never for the wire.
	PutAsync(key uint64, data []byte, r Retry) *Pending
	// GetAsync submits one GET (or coefficient GET) likewise.
	GetAsync(key uint64, r Retry, coef bool) *Pending
}

// AsPipelined adapts any Transport to the Pipelined interface. Backends
// that implement it natively are returned as-is; anything else gets a
// shim that executes each op synchronously at submit time — the handle
// is already resolved when it comes back, which preserves the backend's
// op ordering exactly.
func AsPipelined(t Transport) Pipelined {
	if p, ok := t.(Pipelined); ok {
		return p
	}
	return syncPipelined{t}
}

type syncPipelined struct{ Transport }

func (s syncPipelined) PutAsync(key uint64, data []byte, r Retry) *Pending {
	n, err := s.Put(key, data, r)
	return resolvedPending(OpPut, key, func(p *Pending) { p.stored = n; p.err = err })
}

func (s syncPipelined) GetAsync(key uint64, r Retry, coef bool) *Pending {
	op := uint8(OpGet)
	if coef {
		op = OpGetCoef
	}
	f, err := s.Get(key, r, coef)
	return resolvedPending(op, key, func(p *Pending) { p.f = f; p.err = err })
}

// Pending is the completion handle of one asynchronous transport op. It
// is created by PutAsync/GetAsync (and internally by the sync wrappers)
// and completed exactly once by the client machinery; callers wait on
// Done or one of the typed result accessors.
type Pending struct {
	op   uint8
	key  uint64
	body []byte // request payload (PUT); retained for resends
	coef bool

	retry   Retry
	start   time.Time     // schedule wall budget anchor
	attempt int           // index of the try currently in flight
	backoff time.Duration // next backoff delay (doubles per retry)
	wait    time.Duration // sleep owed before the next send
	sentAt  time.Time     // when the current try hit the wire

	done   chan struct{}
	stored int          // PUT result
	f      *frame.Frame // GET result
	resp   []byte       // STATS body
	err    error
}

func newPending(op uint8, key uint64, body []byte, r Retry) *Pending {
	return &Pending{
		op: op, key: key, body: body, retry: r,
		start: time.Now(), backoff: r.Backoff,
		done: make(chan struct{}),
	}
}

func resolvedPending(op uint8, key uint64, fill func(*Pending)) *Pending {
	p := &Pending{op: op, key: key, done: make(chan struct{})}
	fill(p)
	close(p.done)
	return p
}

// complete resolves the handle. Must be called exactly once.
func (p *Pending) complete(err error) {
	p.err = err
	close(p.done)
}

// Done is closed when the op has resolved (successfully or not).
func (p *Pending) Done() <-chan struct{} { return p.done }

// Err waits for completion and returns the op's terminal error.
func (p *Pending) Err() error {
	<-p.done
	return p.err
}

// PutResult waits for completion of a PUT and returns the stored byte
// count, mirroring Transport.Put.
func (p *Pending) PutResult() (int, error) {
	<-p.done
	return p.stored, p.err
}

// GetResult waits for completion of a GET and returns the verified
// frame, mirroring Transport.Get.
func (p *Pending) GetResult() (*frame.Frame, error) {
	<-p.done
	return p.f, p.err
}

// opName maps a wire op code onto the label retry errors carry.
func opName(op uint8) string {
	switch op {
	case OpPut:
		return "put"
	case OpGet, OpGetCoef:
		return "get"
	case OpDelete:
		return "delete"
	case OpStats:
		return "stats"
	}
	return fmt.Sprintf("op%d", op)
}

// errPoisoned is the cause recorded when an op is resent not because
// its own exchange failed but because a neighbouring failure tore the
// shared response stream.
var errPoisoned = errors.New("transport: connection poisoned mid-window")

// window returns the effective in-flight bound (>= 1).
func (c *NetClient) window() int {
	if c.Window > 1 {
		return c.Window
	}
	return 1
}

// PutAsync implements Pipelined: the op joins the pipeline and its
// handle resolves when the server acknowledges the frame (with
// reconnect+resend on connection failures and a resend when the server
// reports the payload CRC-corrupt, exactly the sync Put schedule).
// Blocks while the window is full.
func (c *NetClient) PutAsync(key uint64, data []byte, r Retry) *Pending {
	return c.submit(newPending(OpPut, key, data, r))
}

// GetAsync implements Pipelined: the handle resolves with the
// CRC-verified frame, with the sync Get's retry and NotFound semantics.
// Blocks while the window is full.
func (c *NetClient) GetAsync(key uint64, r Retry, coef bool) *Pending {
	op := uint8(OpGet)
	if coef {
		op = OpGetCoef
	}
	p := newPending(op, key, nil, r)
	p.coef = coef
	return c.submit(p)
}

// submit enqueues p behind every earlier op, applying window
// backpressure: at most window() ops may be queued-or-in-flight, so a
// producer that outruns the wire blocks here rather than growing an
// unbounded buffer of retained PUT bodies.
func (c *NetClient) submit(p *Pending) *Pending {
	c.pmu.Lock()
	for len(c.queue)+len(c.inflight) >= c.window() && !c.closed {
		c.pcond.Wait()
	}
	if c.closed {
		// A Close raced the submit; reopen the pipeline (Close is a
		// quiesce, not a permanent seal — the sync client could always
		// be used again after Close).
		c.closed = false
	}
	c.queue = append(c.queue, p)
	if !c.pumping {
		c.pumping = true
		go c.pump()
	}
	c.pcond.Broadcast()
	c.pmu.Unlock()
	return p
}

// pump is the writer goroutine: it pops queued ops while the in-flight
// window has room, dials when no connection is live, and streams
// requests onto the wire. It parks on the cond when idle and exits on
// Close.
func (c *NetClient) pump() {
	for {
		c.pmu.Lock()
		for !c.closed && (len(c.queue) == 0 || len(c.inflight) >= c.window()) {
			c.pcond.Wait()
		}
		if c.closed {
			c.pumping = false
			c.pcond.Broadcast()
			c.pmu.Unlock()
			return
		}
		head := c.queue[0]
		if head.wait > 0 {
			// The backoff this op's schedule owes before its resend. Sleep
			// it off *before* the op enters the in-flight FIFO, so the
			// reader's per-attempt deadline does not start ticking against
			// a request that has not been written yet.
			owed := head.wait
			head.wait = 0
			c.pmu.Unlock()
			head.retry.sleep(owed)
			continue
		}
		if c.conn == nil {
			redial := c.needRedial
			timeout := c.effTimeout(head.retry.OpTimeout)
			c.pmu.Unlock()
			conn, err := dialConn(c.dial, timeout)
			c.pmu.Lock()
			if c.closed {
				if conn != nil {
					conn.Close()
				}
				c.pumping = false
				c.pcond.Broadcast()
				c.pmu.Unlock()
				return
			}
			if err != nil {
				// The dial served the head op; charge the failure to it
				// alone — nothing else was on this connection yet. Pop it
				// first: chargeFailureLocked requeues survivors itself.
				if len(c.queue) > 0 && c.queue[0] == head {
					c.queue = c.queue[1:]
				}
				c.chargeFailureLocked(head, fmt.Errorf("transport: dial activation store: %w", err), true)
				c.pmu.Unlock()
				continue
			}
			if redial {
				c.counters.Reconnects.Add(1)
				c.needRedial = false
			}
			c.conn = conn
			c.br = bufio.NewReader(conn)
			c.bw = bufio.NewWriter(conn)
			c.epoch++
			go c.readLoop(c.epoch, conn, c.br)
		}
		// Move head into the in-flight FIFO before writing, so a torn
		// write is resent by the same poison path as a torn read.
		c.queue = c.queue[1:]
		c.inflight = append(c.inflight, head)
		conn, bw, epoch := c.conn, c.bw, c.epoch
		head.sentAt = time.Now()
		c.pcond.Broadcast()
		c.pmu.Unlock()

		if t := c.effTimeout(head.retry.OpTimeout); t > 0 {
			conn.SetWriteDeadline(time.Now().Add(t))
		} else {
			conn.SetWriteDeadline(time.Time{})
		}
		err := WriteRequest(bw, head.op, head.key, head.body)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			c.pmu.Lock()
			c.poisonLocked(epoch, fmt.Errorf("transport: write %s %d: %w", opName(head.op), head.key, err))
			c.pmu.Unlock()
		}
	}
}

// readLoop is the reader goroutine of one connection epoch: it waits
// for ops to be in flight, reads responses in order and completes the
// FIFO head each time. It exits when the epoch is retired (poison or a
// fresh dial) or the client closes.
func (c *NetClient) readLoop(epoch uint64, conn net.Conn, br *bufio.Reader) {
	for {
		c.pmu.Lock()
		for c.epoch == epoch && !c.closed && len(c.inflight) == 0 {
			c.pcond.Wait()
		}
		if c.epoch != epoch || c.closed {
			c.pmu.Unlock()
			return
		}
		head := c.inflight[0]
		hedge := c.Hedge
		c.pmu.Unlock()

		if t := c.effTimeout(head.retry.OpTimeout); t > 0 {
			conn.SetReadDeadline(time.Now().Add(t))
		} else {
			conn.SetReadDeadline(time.Time{})
		}

		if hedge > 0 && (head.op == OpGet || head.op == OpGetCoef) {
			if c.readHedged(epoch, conn, br, head, hedge) {
				return // epoch retired by a hedge win or a poison
			}
			continue
		}

		status, body, err := ReadResponse(br)
		if c.settle(epoch, head, status, body, err) {
			return
		}
	}
}

// settle processes one primary-connection response (or read error) for
// the in-flight head. It reports whether the epoch was retired and the
// read loop must exit.
func (c *NetClient) settle(epoch uint64, head *Pending, status uint8, body []byte, err error) bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.epoch != epoch {
		// Poisoned while the read was in flight: the op was already
		// requeued (or failed) by the poison pass; this response — if it
		// even is one — belongs to a retired stream.
		return true
	}
	if err != nil {
		c.poisonLocked(epoch, fmt.Errorf("transport: read %s %d: %w", opName(head.op), head.key, err))
		return true
	}
	c.inflight = c.inflight[1:]
	c.finishResponseLocked(head, status, body)
	c.pcond.Broadcast()
	return false
}

// readHedged reads the head GET's response racing a tail-latency hedge:
// if the primary stays silent past the hedge delay, the same request
// runs on a fresh connection and the first answer wins. A hedge win
// abandons the primary exchange mid-flight, which poisons the whole
// connection — the head completes from the hedge response and every
// other in-flight op is resent. Reports whether the epoch was retired.
func (c *NetClient) readHedged(epoch uint64, conn net.Conn, br *bufio.Reader, head *Pending, hedge time.Duration) bool {
	prim := make(chan rtResult, 1)
	go func() {
		s, b, e := ReadResponse(br)
		prim <- rtResult{s, b, e}
	}()
	t := time.NewTimer(hedge)
	defer t.Stop()
	select {
	case res := <-prim:
		return c.settle(epoch, head, res.status, res.body, res.err)
	case <-t.C:
	}
	c.counters.Hedged.Add(1)
	hed := make(chan rtResult, 1)
	go func() {
		s, b, e := c.hedgeTrip(head.op, head.key, c.effTimeout(head.retry.OpTimeout))
		hed <- rtResult{s, b, e}
	}()
	select {
	case res := <-prim:
		// The primary answered after all; the hedge connection closes
		// itself and its answer is discarded.
		return c.settle(epoch, head, res.status, res.body, res.err)
	case res := <-hed:
		if res.err != nil {
			// The hedge lost too; fall back to whatever the primary does.
			r2 := <-prim
			return c.settle(epoch, head, r2.status, r2.body, r2.err)
		}
		// The hedge won. The primary's response would arrive unsolicited
		// and desynchronize the stream, so the connection is poisoned:
		// close it, wait for the abandoned read to notice, then resend
		// every *other* in-flight op in order. The head itself settles
		// from the hedge's answer.
		conn.Close()
		<-prim
		c.pmu.Lock()
		defer c.pmu.Unlock()
		if c.epoch != epoch {
			return true
		}
		c.inflight = c.inflight[1:]
		c.poisonLocked(epoch, errPoisoned)
		// The hedge's own round trip already fired the Latency hook; zero
		// sentAt so the completion below does not observe the op twice.
		head.sentAt = time.Time{}
		c.finishResponseLocked(head, res.status, res.body)
		c.pcond.Broadcast()
		return true
	}
}

// finishResponseLocked applies one well-formed response to its op:
// terminal statuses complete the handle; a payload-level failure
// (server-reported CRC refusal on PUT, client-side CRC failure on GET)
// charges the op's retry schedule and requeues it at the very front.
// Called with pmu held.
func (c *NetClient) finishResponseLocked(p *Pending, status uint8, body []byte) {
	switch p.op {
	case OpPut:
		switch status {
		case StatusOK:
			p.stored = len(p.body)
			c.observe(p)
			p.complete(nil)
		case StatusCorrupt:
			// The server CRC-checked the frame and refused it: the bytes
			// were damaged in flight. The local copy is intact, so a
			// resend recovers.
			c.chargeFailureLocked(p, fmt.Errorf("transport: put %d: server rejected frame: %w", p.key, frame.ErrChecksum), false)
		default:
			p.complete(fmt.Errorf("transport: put %d: server status %d", p.key, status))
		}
	case OpGet, OpGetCoef:
		switch status {
		case StatusOK:
			f, err := frame.DecodeFrame(body)
			if err != nil {
				// Damaged in flight; the server's copy is CRC-intact, so a
				// re-read recovers.
				c.chargeFailureLocked(p, err, false)
				return
			}
			c.counters.BytesVerified.Add(int64(len(body)))
			p.f = f
			c.observe(p)
			p.complete(nil)
		case StatusNotFound:
			p.complete(fmt.Errorf("%w: %d", ErrNotFound, p.key))
		default:
			p.complete(fmt.Errorf("transport: get %d: server status %d", p.key, status))
		}
	case OpDelete:
		if status == StatusOK || status == StatusNotFound {
			c.observe(p)
			p.complete(nil)
			return
		}
		p.complete(fmt.Errorf("transport: delete %d: server status %d", p.key, status))
	case OpStats:
		if status != StatusOK {
			p.complete(fmt.Errorf("transport: stats: server status %d", status))
			return
		}
		p.resp = body
		c.observe(p)
		p.complete(nil)
	default:
		p.complete(fmt.Errorf("transport: %s %d: unknown op", opName(p.op), p.key))
	}
}

// observe fires the Latency hook for a successful exchange, measured
// from the moment the request hit the wire.
func (c *NetClient) observe(p *Pending) {
	if c.Latency != nil && !p.sentAt.IsZero() {
		c.Latency(p.op, time.Since(p.sentAt))
	}
}

// chargeFailureLocked charges one failed attempt to p's retry schedule:
// an exhausted schedule completes the handle (with the typed
// ErrStoreUnavailable verdict when the failure was connection-level),
// otherwise the op is requeued at the front of the queue with its
// backoff owed. Called with pmu held.
func (c *NetClient) chargeFailureLocked(p *Pending, cause error, connFail bool) {
	c.counters.Corrupted.Add(1)
	if p.attempt >= p.retry.Attempts || budgetSpent(p.start, p.retry) {
		if connFail {
			p.complete(unavailable(opName(p.op), p.key, p.attempt+1, cause))
		} else {
			p.complete(cause)
		}
		c.pcond.Broadcast()
		return
	}
	p.attempt++
	c.counters.Retried.Add(1)
	if p.backoff > 0 {
		p.wait = p.backoff
		p.backoff *= 2
	}
	c.queue = append([]*Pending{p}, c.queue...)
	c.pcond.Broadcast()
}

// poisonLocked retires the current connection epoch after a
// connection-level failure: the conn is closed, the reader epoch is
// invalidated, and every in-flight op is charged one failed attempt —
// survivors are prepended to the queue *in their original submission
// order*, ahead of everything not yet sent, so the resend stream
// replays the exact op sequence the server would have seen. Called with
// pmu held; no-op if the epoch was already retired.
func (c *NetClient) poisonLocked(epoch uint64, cause error) {
	if c.epoch != epoch || c.conn == nil {
		return
	}
	c.conn.Close()
	c.conn, c.br, c.bw = nil, nil, nil
	c.needRedial = true
	c.epoch++
	victims := c.inflight
	c.inflight = nil
	// Walk in submission order, partitioning into survivors (requeued)
	// and exhausted schedules (completed with the typed verdict). The
	// survivors keep their relative order and precede the whole queue.
	var keep []*Pending
	for _, p := range victims {
		c.counters.Corrupted.Add(1)
		if p.attempt >= p.retry.Attempts || budgetSpent(p.start, p.retry) {
			p.complete(unavailable(opName(p.op), p.key, p.attempt+1, cause))
			continue
		}
		p.attempt++
		c.counters.Retried.Add(1)
		if p.backoff > 0 {
			p.wait = p.backoff
			p.backoff *= 2
		}
		keep = append(keep, p)
	}
	if len(keep) > 0 {
		c.queue = append(keep, c.queue...)
	}
	c.pcond.Broadcast()
}

var _ Pipelined = (*NetClient)(nil)
var _ Pipelined = (*Local)(nil)
