package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWireRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte{1, 2, 3, 4, 5}
	if err := WriteRequest(&buf, OpPut, 0xdeadbeefcafe, body); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpPut || req.Key != 0xdeadbeefcafe || !bytes.Equal(req.Body, body) {
		t.Fatalf("request %+v", req)
	}
	// A clean end-of-stream between requests is io.EOF, not a wire error.
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Fatalf("want io.EOF between requests, got %v", err)
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, StatusNotFound, nil); err != nil {
		t.Fatal(err)
	}
	status, body, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusNotFound || body != nil {
		t.Fatalf("status %d body %v", status, body)
	}
}

func TestWireTruncatedOpHeaderIsTyped(t *testing.T) {
	var full bytes.Buffer
	if err := WriteRequest(&full, OpGet, 7, nil); err != nil {
		t.Fatal(err)
	}
	// Every cut inside the header (after the first byte) is a typed
	// ErrWire, never a panic or a silent io error.
	for cut := 1; cut < reqHeaderSize; cut++ {
		_, err := ReadRequest(bytes.NewReader(full.Bytes()[:cut]))
		if !errors.Is(err, ErrWire) {
			t.Fatalf("cut at %d: want ErrWire, got %v", cut, err)
		}
	}
}

func TestWireBadMagicVersionOpAreTyped(t *testing.T) {
	mk := func(mut func(h []byte)) []byte {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, OpGet, 7, nil); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"magic":   mk(func(h []byte) { h[0] = 'X' }),
		"version": mk(func(h []byte) { h[2] = 99 }),
		"op-zero": mk(func(h []byte) { h[3] = 0 }),
		"op-high": mk(func(h []byte) { h[3] = 200 }),
	}
	for name, b := range cases {
		if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrWire) {
			t.Fatalf("%s: want ErrWire, got %v", name, err)
		}
	}
}

func TestWireOversizedLengthRefusedBeforeAllocation(t *testing.T) {
	// A corrupt length field far over MaxBody must be refused from the
	// header alone — no attempt to allocate or read the body.
	var buf bytes.Buffer
	if err := WriteRequest(&buf, OpPut, 1, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrWire) {
		t.Fatalf("want ErrWire, got %v", err)
	}

	var rbuf bytes.Buffer
	if err := WriteResponse(&rbuf, StatusOK, nil); err != nil {
		t.Fatal(err)
	}
	rb := rbuf.Bytes()
	rb[4], rb[5], rb[6], rb[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadResponse(bytes.NewReader(rb)); !errors.Is(err, ErrWire) {
		t.Fatalf("response: want ErrWire, got %v", err)
	}
}

func TestWireTruncatedBodySurfacesTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, OpPut, 3, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:reqHeaderSize+40] // connection died mid-frame
	if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrWire) {
		t.Fatalf("want ErrWire, got %v", err)
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in, network, addr string
		wantErr           bool
	}{
		{"unix:/tmp/store.sock", "unix", "/tmp/store.sock", false},
		{"tcp:localhost:7070", "tcp", "localhost:7070", false},
		{"127.0.0.1:7070", "tcp", "127.0.0.1:7070", false},
		{"nonsense", "", "", true},
	}
	for _, c := range cases {
		network, addr, err := ParseAddr(c.in)
		if c.wantErr != (err != nil) || network != c.network || addr != c.addr {
			t.Fatalf("ParseAddr(%q) = %q %q %v", c.in, network, addr, err)
		}
	}
}
