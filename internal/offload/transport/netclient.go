package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"jpegact/internal/frame"
)

// Dialer opens one connection to the activation store. The indirection
// is the fault-injection seam of the networked transport: tests wrap
// the returned net.Conn to drop connections mid-frame or flip bytes in
// flight, and the reconnect+resend schedule below must absorb it.
type Dialer func() (net.Conn, error)

// ParseAddr splits an activation-store address into (network, address)
// for net.Dial / net.Listen: "unix:/path/store.sock" selects a unix
// socket, "tcp:host:port" selects TCP, and a bare "host:port" defaults
// to TCP.
func ParseAddr(s string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", strings.TrimPrefix(s, "unix:"), nil
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", strings.TrimPrefix(s, "tcp:"), nil
	case strings.Contains(s, ":"):
		return "tcp", s, nil
	}
	return "", "", fmt.Errorf("transport: address %q: want unix:/path or tcp:host:port", s)
}

// DialAddr builds a Dialer for an address in ParseAddr's syntax.
func DialAddr(s string) (Dialer, error) {
	network, addr, err := ParseAddr(s)
	if err != nil {
		return nil, err
	}
	return func() (net.Conn, error) { return net.Dial(network, addr) }, nil
}

// dialConn runs dial under a watchdog so a blackholed TCP connect (the
// one I/O a conn deadline cannot cover, since there is no conn yet)
// still respects the per-op deadline. A dial that completes after the
// watchdog fires is reaped by a small goroutine that closes it.
func dialConn(dial Dialer, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		return dial()
	}
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := dial()
		ch <- res{conn, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-t.C:
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, fmt.Errorf("transport: dial activation store: timed out after %v", timeout)
	}
}

// NetClient is the wire-protocol Transport backend. Since PR 10 it is a
// *pipelined* client: operations are submitted to an internal queue, a
// pump goroutine streams up to Window requests onto one connection, and
// a reader goroutine matches responses to requests strictly FIFO (the
// wire protocol carries no request IDs; order is the contract). The
// synchronous Put/Get/Delete/ServerStats are the degenerate
// window-of-1 case — submit one op, wait for its handle — so their
// observable behaviour is unchanged from the stop-and-wait client.
//
// Failure handling is connection-granular: any dial, write, read or
// frame-validation failure closes the connection and *poisons* every
// op in flight on it — each is charged one failed attempt through its
// own Retry schedule and the survivors are resent in original
// submission order, ahead of anything not yet sent. Requests are
// idempotent (PUT overwrites, GET is a read, DELETE tolerates
// NotFound), so a resend after a mid-frame drop is always safe.
//
// Deadlines bound every attempt (Retry.OpTimeout, via conn deadlines,
// with the client-level OpTimeout as the fallback) and the schedule as
// a whole (Retry.Total): once the budget is spent the operation returns
// a typed ErrStoreUnavailable instead of spinning on a dead server.
type NetClient struct {
	// Latency, when set, observes every successful exchange (op code
	// and wall-clock duration from the request hitting the wire to its
	// response validating) — the hook offloadbench hangs its percentile
	// collector on. Set before first use. It is invoked from the
	// client's reader goroutine (and the hedge goroutine when hedging
	// is enabled), so it must be safe for concurrent use.
	Latency func(op uint8, d time.Duration)
	// OpTimeout is the client-level per-attempt deadline applied when
	// the operation's Retry schedule carries none — it also bounds
	// housekeeping ops (Delete, ServerStats) that take no schedule.
	// 0 = no deadline. Set before first use.
	OpTimeout time.Duration
	// Hedge, when > 0, arms tail-latency hedging on GETs: if the
	// oldest in-flight GET has not answered within the delay, the same
	// request is raced on a fresh connection and the first answer wins.
	// A hedge win abandons the primary exchange, which poisons the
	// connection (the late response would desynchronize the stream) and
	// resends every other in-flight op. Each hedge launched counts in
	// Counters.Hedged. Set before first use.
	Hedge time.Duration
	// Window bounds how many operations may be queued-or-in-flight on
	// the wire at once (<= 1 is the stop-and-wait default). Submitting
	// past the window blocks — backpressure, not buffering. Set before
	// first use.
	Window int

	dial     Dialer
	counters *Counters

	pmu        sync.Mutex
	pcond      *sync.Cond
	queue      []*Pending // submitted, not yet on the wire
	inflight   []*Pending // written, awaiting responses (FIFO)
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	epoch      uint64 // retired on every poison/redial; keys the reader
	needRedial bool   // next dial is a reconnect (counted)
	pumping    bool
	closed     bool
}

// NewNetClient builds a client over dial. Pass the owning store's
// Counters() so connection faults and verified bytes land in the same
// snapshot as the store's own counters; nil gets a private block.
func NewNetClient(dial Dialer, c *Counters) *NetClient {
	if c == nil {
		c = &Counters{}
	}
	n := &NetClient{dial: dial, counters: c}
	n.pcond = sync.NewCond(&n.pmu)
	return n
}

// effTimeout resolves an op's deadline: the schedule's, else the
// client-level default.
func (c *NetClient) effTimeout(d time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return c.OpTimeout
}

// budgetSpent reports whether the schedule's total wall budget is gone.
func budgetSpent(start time.Time, r Retry) bool {
	return r.Total > 0 && time.Since(start) >= r.Total
}

// roundTrip performs one request/response exchange on an explicit
// connection under an optional deadline. It touches no client state
// beyond the Latency hook; the hedge path runs it on a private
// connection concurrently with the pipelined stream.
func (c *NetClient) roundTrip(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, op uint8, key uint64, body []byte, timeout time.Duration) (uint8, []byte, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	} else {
		conn.SetDeadline(time.Time{})
	}
	start := time.Now()
	err := WriteRequest(bw, op, key, body)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		var status uint8
		var resp []byte
		if status, resp, err = ReadResponse(br); err == nil {
			if c.Latency != nil {
				c.Latency(op, time.Since(start))
			}
			return status, resp, nil
		}
	}
	return 0, nil, err
}

// unavailable wraps the terminal error of an exhausted schedule whose
// failures were all connection-level — the typed verdict the circuit
// breaker above keys on.
func unavailable(op string, key uint64, attempts int, err error) error {
	return fmt.Errorf("transport: %s %d: %w after %d attempts: %v", op, key, ErrStoreUnavailable, attempts, err)
}

// Put implements Transport: the synchronous window-of-1 form of
// PutAsync. The frame bytes are shipped under the key, with
// reconnect+resend on connection failures and a resend when the server
// reports the payload arrived CRC-corrupt. What the server acknowledged
// is what it stored, so stored == len(data) on success. An exhausted
// schedule (attempts or Total wall budget) against a dead server
// returns a typed ErrStoreUnavailable.
func (c *NetClient) Put(key uint64, data []byte, r Retry) (int, error) {
	return c.PutAsync(key, data, r).PutResult()
}

// rtResult carries one round trip's outcome between goroutines.
type rtResult struct {
	status uint8
	body   []byte
	err    error
}

// hedgeTrip runs the hedged copy of a GET: a fresh connection, one
// exchange, closed either way — it never touches the pipeline's state.
func (c *NetClient) hedgeTrip(op uint8, key uint64, timeout time.Duration) (uint8, []byte, error) {
	conn, err := dialConn(c.dial, timeout)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	return c.roundTrip(conn, bufio.NewReader(conn), bufio.NewWriter(conn), op, key, nil, timeout)
}

// Get implements Transport: the synchronous window-of-1 form of
// GetAsync. The stored frame is fetched and validated client-side (the
// CRC ran on this side of the wire, so a frame that decodes here is
// trustworthy no matter what the link did). Connection failures and CRC
// mismatches both retry on the schedule; a NotFound is terminal. An
// exhausted schedule of connection-level failures returns a typed
// ErrStoreUnavailable.
func (c *NetClient) Get(key uint64, r Retry, coef bool) (*frame.Frame, error) {
	return c.GetAsync(key, r, coef).GetResult()
}

// Delete implements Transport. Deletes are housekeeping after a
// successful restore, so they ride a small fixed reconnect schedule
// (under the client-level OpTimeout) and tolerate NotFound (another
// retry may already have landed it).
func (c *NetClient) Delete(key uint64) error {
	return c.submit(newPending(OpDelete, key, nil, Retry{Attempts: 2})).Err()
}

// ServerStats fetches the server's unified counter snapshot (the same
// Snapshot shape every layer of the stack reports).
func (c *NetClient) ServerStats() (Snapshot, error) {
	p := c.submit(newPending(OpStats, 0, nil, Retry{Attempts: 2}))
	if err := p.Err(); err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(p.resp, &s); err != nil {
		return Snapshot{}, fmt.Errorf("transport: stats: %w", err)
	}
	return s, nil
}

// Close implements Transport: the pipeline is quiesced — any
// outstanding ops fail with a typed ErrStoreUnavailable, the goroutines
// park and the connection drops. The client remains usable; a later
// operation reopens the pipeline (matching the old stop-and-wait
// client, which would simply redial).
func (c *NetClient) Close() error {
	c.pmu.Lock()
	c.closed = true
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br, c.bw = nil, nil, nil
	}
	c.epoch++
	outstanding := append(c.inflight, c.queue...)
	c.inflight, c.queue = nil, nil
	for _, p := range outstanding {
		p.complete(fmt.Errorf("transport: %s %d: %w: client closed", opName(p.op), p.key, ErrStoreUnavailable))
	}
	c.pcond.Broadcast()
	c.pmu.Unlock()
	return nil
}

var _ Transport = (*NetClient)(nil)
var _ Transport = (*Local)(nil)
