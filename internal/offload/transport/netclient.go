package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"jpegact/internal/frame"
)

// Dialer opens one connection to the activation store. The indirection
// is the fault-injection seam of the networked transport: tests wrap
// the returned net.Conn to drop connections mid-frame or flip bytes in
// flight, and the reconnect+resend schedule below must absorb it.
type Dialer func() (net.Conn, error)

// ParseAddr splits an activation-store address into (network, address)
// for net.Dial / net.Listen: "unix:/path/store.sock" selects a unix
// socket, "tcp:host:port" selects TCP, and a bare "host:port" defaults
// to TCP.
func ParseAddr(s string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", strings.TrimPrefix(s, "unix:"), nil
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", strings.TrimPrefix(s, "tcp:"), nil
	case strings.Contains(s, ":"):
		return "tcp", s, nil
	}
	return "", "", fmt.Errorf("transport: address %q: want unix:/path or tcp:host:port", s)
}

// DialAddr builds a Dialer for an address in ParseAddr's syntax.
func DialAddr(s string) (Dialer, error) {
	network, addr, err := ParseAddr(s)
	if err != nil {
		return nil, err
	}
	return func() (net.Conn, error) { return net.Dial(network, addr) }, nil
}

// dialConn runs dial under a watchdog so a blackholed TCP connect (the
// one I/O a conn deadline cannot cover, since there is no conn yet)
// still respects the per-op deadline. A dial that completes after the
// watchdog fires is reaped by a small goroutine that closes it.
func dialConn(dial Dialer, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		return dial()
	}
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := dial()
		ch <- res{conn, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-t.C:
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, fmt.Errorf("transport: dial activation store: timed out after %v", timeout)
	}
}

// NetClient is the wire-protocol Transport backend: every operation is
// one length-prefixed request/response round trip over a single
// connection, serialized by a mutex (the offload scheduler's committer
// and prefetcher are each single goroutines, so one connection is the
// natural width; run more clients for more parallelism).
//
// Failure handling is connection-granular: any dial, write, read or
// frame-validation failure closes the connection, and the Retry
// schedule re-dials and resends the request — the PR 2 retry policy
// with reconnection as the re-read. Requests are idempotent (PUT
// overwrites, GET is a read, DELETE tolerates NotFound), so a resend
// after a mid-frame drop is always safe.
//
// Deadlines bound every attempt (Retry.OpTimeout, via conn deadlines,
// with the client-level OpTimeout as the fallback) and the schedule as
// a whole (Retry.Total): once the budget is spent the operation returns
// a typed ErrStoreUnavailable instead of spinning on a dead server.
type NetClient struct {
	// Latency, when set, observes every successful round trip (op code
	// and wall-clock duration) — the hook offloadbench hangs its
	// percentile collector on. Set before first use. It may be invoked
	// concurrently when hedging is enabled.
	Latency func(op uint8, d time.Duration)
	// OpTimeout is the client-level per-attempt deadline applied when
	// the operation's Retry schedule carries none — it also bounds
	// housekeeping ops (Delete, ServerStats) that take no schedule.
	// 0 = no deadline. Set before first use.
	OpTimeout time.Duration
	// Hedge, when > 0, arms tail-latency hedging on GETs: if the
	// primary connection has not answered within the delay, the same
	// request is raced on a fresh connection and the first answer wins.
	// The abandoned primary is poisoned (its response would arrive
	// unsolicited) and dropped. Each hedge launched counts in
	// Counters.Hedged. Set before first use.
	Hedge time.Duration

	dial     Dialer
	counters *Counters

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewNetClient builds a client over dial. Pass the owning store's
// Counters() so connection faults and verified bytes land in the same
// snapshot as the store's own counters; nil gets a private block.
func NewNetClient(dial Dialer, c *Counters) *NetClient {
	if c == nil {
		c = &Counters{}
	}
	return &NetClient{dial: dial, counters: c}
}

// effTimeout resolves an op's deadline: the schedule's, else the
// client-level default.
func (c *NetClient) effTimeout(d time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return c.OpTimeout
}

// budgetSpent reports whether the schedule's total wall budget is gone.
func budgetSpent(start time.Time, r Retry) bool {
	return r.Total > 0 && time.Since(start) >= r.Total
}

// ensureConn dials if no connection is live. Called with mu held.
func (c *NetClient) ensureConn(redial bool, timeout time.Duration) error {
	if c.conn != nil {
		return nil
	}
	if redial {
		c.counters.Reconnects.Add(1)
	}
	conn, err := dialConn(c.dial, timeout)
	if err != nil {
		return fmt.Errorf("transport: dial activation store: %w", err)
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	return nil
}

// dropConn closes the (poisoned) connection. Called with mu held.
func (c *NetClient) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br, c.bw = nil, nil
	}
}

// roundTrip performs one request/response exchange on an explicit
// connection under an optional deadline. It touches no client state
// beyond the Latency hook, so a hedge can run it concurrently with the
// primary's exchange on a different connection.
func (c *NetClient) roundTrip(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, op uint8, key uint64, body []byte, timeout time.Duration) (uint8, []byte, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	} else {
		conn.SetDeadline(time.Time{})
	}
	start := time.Now()
	err := WriteRequest(bw, op, key, body)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		var status uint8
		var resp []byte
		if status, resp, err = ReadResponse(br); err == nil {
			if c.Latency != nil {
				c.Latency(op, time.Since(start))
			}
			return status, resp, nil
		}
	}
	return 0, nil, err
}

// once performs a single request/response round trip on the client's
// connection, dropping it on any transport-level failure so the next
// attempt redials. Called with mu held.
func (c *NetClient) once(op uint8, key uint64, body []byte, redial bool, timeout time.Duration) (uint8, []byte, error) {
	if err := c.ensureConn(redial, timeout); err != nil {
		return 0, nil, err
	}
	status, resp, err := c.roundTrip(c.conn, c.br, c.bw, op, key, body, timeout)
	if err != nil {
		c.dropConn()
	}
	return status, resp, err
}

// unavailable wraps the terminal error of an exhausted schedule whose
// failures were all connection-level — the typed verdict the circuit
// breaker above keys on.
func unavailable(op string, key uint64, attempts int, err error) error {
	return fmt.Errorf("transport: %s %d: %w after %d attempts: %v", op, key, ErrStoreUnavailable, attempts, err)
}

// Put implements Transport: the frame bytes are shipped under the key,
// with reconnect+resend on connection failures and a resend when the
// server reports the payload arrived CRC-corrupt. What the server
// acknowledged is what it stored, so stored == len(data) on success.
// An exhausted schedule (attempts or Total wall budget) against a dead
// server returns a typed ErrStoreUnavailable.
func (c *NetClient) Put(key uint64, data []byte, r Retry) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	backoff := r.Backoff
	start := time.Now()
	redial := false
	var err error
	for attempt := 0; ; attempt++ {
		var status uint8
		status, _, err = c.once(OpPut, key, data, redial, c.effTimeout(r.OpTimeout))
		connFail := err != nil
		if err == nil {
			switch status {
			case StatusOK:
				return len(data), nil
			case StatusCorrupt:
				// The server CRC-checked the frame and refused it: the
				// bytes were damaged in flight. The local copy is intact,
				// so a resend recovers.
				err = fmt.Errorf("transport: put %d: server rejected frame: %w", key, frame.ErrChecksum)
			default:
				return 0, fmt.Errorf("transport: put %d: server status %d", key, status)
			}
		}
		redial = c.conn == nil
		c.counters.Corrupted.Add(1)
		if attempt >= r.Attempts || budgetSpent(start, r) {
			if connFail {
				return 0, unavailable("put", key, attempt+1, err)
			}
			return 0, err
		}
		c.counters.Retried.Add(1)
		if backoff > 0 {
			r.sleep(backoff)
			backoff *= 2
		}
	}
}

// rtResult carries one round trip's outcome between goroutines.
type rtResult struct {
	status uint8
	body   []byte
	err    error
}

// hedgeTrip runs the hedged copy of a GET: a fresh connection, one
// exchange, closed either way — it never touches the primary's state.
func (c *NetClient) hedgeTrip(op uint8, key uint64, timeout time.Duration) (uint8, []byte, error) {
	conn, err := dialConn(c.dial, timeout)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	return c.roundTrip(conn, bufio.NewReader(conn), bufio.NewWriter(conn), op, key, nil, timeout)
}

// getAttempt is one attempt of a GET: the plain round trip, or — with
// hedging armed — the primary exchange raced against a second
// connection once the hedge delay passes. Called with mu held.
func (c *NetClient) getAttempt(op uint8, key uint64, redial bool, timeout time.Duration) (uint8, []byte, error) {
	if c.Hedge <= 0 {
		return c.once(op, key, nil, redial, timeout)
	}
	if err := c.ensureConn(redial, timeout); err != nil {
		return 0, nil, err
	}
	conn, br, bw := c.conn, c.br, c.bw
	prim := make(chan rtResult, 1)
	go func() {
		s, b, e := c.roundTrip(conn, br, bw, op, key, nil, timeout)
		prim <- rtResult{s, b, e}
	}()
	t := time.NewTimer(c.Hedge)
	defer t.Stop()
	select {
	case res := <-prim:
		if res.err != nil {
			c.dropConn()
		}
		return res.status, res.body, res.err
	case <-t.C:
	}
	c.counters.Hedged.Add(1)
	hed := make(chan rtResult, 1)
	go func() {
		s, b, e := c.hedgeTrip(op, key, timeout)
		hed <- rtResult{s, b, e}
	}()
	select {
	case res := <-prim:
		// The primary answered after all; the hedge connection closes
		// itself and its answer is discarded.
		if res.err != nil {
			c.dropConn()
		}
		return res.status, res.body, res.err
	case res := <-hed:
		if res.err != nil {
			// The hedge lost too; fall back to whatever the primary does.
			res2 := <-prim
			if res2.err != nil {
				c.dropConn()
			}
			return res2.status, res2.body, res2.err
		}
		// The hedge won. The primary exchange is abandoned mid-flight:
		// its response would arrive unsolicited and desynchronize the
		// stream, so the connection is poisoned — close it, wait for the
		// reader goroutine to notice, then release the state.
		conn.Close()
		<-prim
		c.dropConn()
		return res.status, res.body, res.err
	}
}

// Get implements Transport: the stored frame is fetched and validated
// client-side (the CRC ran on this side of the wire, so a frame that
// decodes here is trustworthy no matter what the link did). Connection
// failures and CRC mismatches both retry on the schedule; a NotFound is
// terminal. An exhausted schedule of connection-level failures returns
// a typed ErrStoreUnavailable.
func (c *NetClient) Get(key uint64, r Retry, coef bool) (*frame.Frame, error) {
	op := OpGet
	if coef {
		op = OpGetCoef
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	backoff := r.Backoff
	start := time.Now()
	redial := false
	var err error
	for attempt := 0; ; attempt++ {
		var status uint8
		var body []byte
		status, body, err = c.getAttempt(op, key, redial, c.effTimeout(r.OpTimeout))
		connFail := err != nil
		if err == nil {
			switch status {
			case StatusOK:
				var f *frame.Frame
				f, err = frame.DecodeFrame(body)
				if err == nil {
					c.counters.BytesVerified.Add(int64(len(body)))
					return f, nil
				}
			case StatusNotFound:
				return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
			default:
				return nil, fmt.Errorf("transport: get %d: server status %d", key, status)
			}
		}
		redial = c.conn == nil
		c.counters.Corrupted.Add(1)
		if attempt >= r.Attempts || budgetSpent(start, r) {
			if connFail {
				return nil, unavailable("get", key, attempt+1, err)
			}
			return nil, err
		}
		c.counters.Retried.Add(1)
		if backoff > 0 {
			r.sleep(backoff)
			backoff *= 2
		}
	}
}

// Delete implements Transport. Deletes are housekeeping after a
// successful restore, so they ride a small fixed reconnect schedule
// (under the client-level OpTimeout) and tolerate NotFound (another
// retry may already have landed it).
func (c *NetClient) Delete(key uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	redial := false
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var status uint8
		status, _, err = c.once(OpDelete, key, nil, redial, c.OpTimeout)
		if err == nil {
			if status == StatusOK || status == StatusNotFound {
				return nil
			}
			return fmt.Errorf("transport: delete %d: server status %d", key, status)
		}
		redial = c.conn == nil
		c.counters.Retried.Add(1)
	}
	return err
}

// ServerStats fetches the server's unified counter snapshot (the same
// Snapshot shape every layer of the stack reports).
func (c *NetClient) ServerStats() (Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	redial := false
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var status uint8
		var body []byte
		status, body, err = c.once(OpStats, 0, nil, redial, c.OpTimeout)
		if err == nil {
			if status != StatusOK {
				return Snapshot{}, fmt.Errorf("transport: stats: server status %d", status)
			}
			var s Snapshot
			if jerr := json.Unmarshal(body, &s); jerr != nil {
				return Snapshot{}, fmt.Errorf("transport: stats: %w", jerr)
			}
			return s, nil
		}
		redial = c.conn == nil
		c.counters.Retried.Add(1)
	}
	return Snapshot{}, err
}

// Close implements Transport.
func (c *NetClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropConn()
	return nil
}

var _ Transport = (*NetClient)(nil)
var _ Transport = (*Local)(nil)
