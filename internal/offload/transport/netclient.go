package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"jpegact/internal/frame"
)

// Dialer opens one connection to the activation store. The indirection
// is the fault-injection seam of the networked transport: tests wrap
// the returned net.Conn to drop connections mid-frame or flip bytes in
// flight, and the reconnect+resend schedule below must absorb it.
type Dialer func() (net.Conn, error)

// ParseAddr splits an activation-store address into (network, address)
// for net.Dial / net.Listen: "unix:/path/store.sock" selects a unix
// socket, "tcp:host:port" selects TCP, and a bare "host:port" defaults
// to TCP.
func ParseAddr(s string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", strings.TrimPrefix(s, "unix:"), nil
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", strings.TrimPrefix(s, "tcp:"), nil
	case strings.Contains(s, ":"):
		return "tcp", s, nil
	}
	return "", "", fmt.Errorf("transport: address %q: want unix:/path or tcp:host:port", s)
}

// DialAddr builds a Dialer for an address in ParseAddr's syntax.
func DialAddr(s string) (Dialer, error) {
	network, addr, err := ParseAddr(s)
	if err != nil {
		return nil, err
	}
	return func() (net.Conn, error) { return net.Dial(network, addr) }, nil
}

// NetClient is the wire-protocol Transport backend: every operation is
// one length-prefixed request/response round trip over a single
// connection, serialized by a mutex (the offload scheduler's committer
// and prefetcher are each single goroutines, so one connection is the
// natural width; run more clients for more parallelism).
//
// Failure handling is connection-granular: any dial, write, read or
// frame-validation failure closes the connection, and the Retry
// schedule re-dials and resends the request — the PR 2 retry policy
// with reconnection as the re-read. Requests are idempotent (PUT
// overwrites, GET is a read, DELETE tolerates NotFound), so a resend
// after a mid-frame drop is always safe.
type NetClient struct {
	// Latency, when set, observes every successful round trip (op code
	// and wall-clock duration) — the hook offloadbench hangs its
	// percentile collector on. Set before first use.
	Latency func(op uint8, d time.Duration)

	dial     Dialer
	counters *Counters

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewNetClient builds a client over dial. Pass the owning store's
// Counters() so connection faults and verified bytes land in the same
// snapshot as the store's own counters; nil gets a private block.
func NewNetClient(dial Dialer, c *Counters) *NetClient {
	if c == nil {
		c = &Counters{}
	}
	return &NetClient{dial: dial, counters: c}
}

// ensureConn dials if no connection is live. Called with mu held.
func (c *NetClient) ensureConn(redial bool) error {
	if c.conn != nil {
		return nil
	}
	if redial {
		c.counters.Reconnects.Add(1)
	}
	conn, err := c.dial()
	if err != nil {
		return fmt.Errorf("transport: dial activation store: %w", err)
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	return nil
}

// dropConn closes the (poisoned) connection. Called with mu held.
func (c *NetClient) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br, c.bw = nil, nil
	}
}

// once performs a single request/response round trip, dropping the
// connection on any transport-level failure so the next attempt
// redials. Called with mu held.
func (c *NetClient) once(op uint8, key uint64, body []byte, redial bool) (uint8, []byte, error) {
	if err := c.ensureConn(redial); err != nil {
		return 0, nil, err
	}
	start := time.Now()
	err := WriteRequest(c.bw, op, key, body)
	if err == nil {
		err = c.bw.Flush()
	}
	if err == nil {
		var status uint8
		var resp []byte
		if status, resp, err = ReadResponse(c.br); err == nil {
			if c.Latency != nil {
				c.Latency(op, time.Since(start))
			}
			return status, resp, nil
		}
	}
	c.dropConn()
	return 0, nil, err
}

// Put implements Transport: the frame bytes are shipped under the key,
// with reconnect+resend on connection failures and a resend when the
// server reports the payload arrived CRC-corrupt. What the server
// acknowledged is what it stored, so stored == len(data) on success.
func (c *NetClient) Put(key uint64, data []byte, r Retry) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	backoff := r.Backoff
	redial := false
	var err error
	for attempt := 0; ; attempt++ {
		var status uint8
		status, _, err = c.once(OpPut, key, data, redial)
		if err == nil {
			switch status {
			case StatusOK:
				return len(data), nil
			case StatusCorrupt:
				// The server CRC-checked the frame and refused it: the
				// bytes were damaged in flight. The local copy is intact,
				// so a resend recovers.
				err = fmt.Errorf("transport: put %d: server rejected frame: %w", key, frame.ErrChecksum)
			default:
				return 0, fmt.Errorf("transport: put %d: server status %d", key, status)
			}
		}
		redial = c.conn == nil
		c.counters.Corrupted.Add(1)
		if attempt >= r.Attempts {
			return 0, err
		}
		c.counters.Retried.Add(1)
		if backoff > 0 {
			r.sleep(backoff)
			backoff *= 2
		}
	}
}

// Get implements Transport: the stored frame is fetched and validated
// client-side (the CRC ran on this side of the wire, so a frame that
// decodes here is trustworthy no matter what the link did). Connection
// failures and CRC mismatches both retry on the schedule; a NotFound is
// terminal.
func (c *NetClient) Get(key uint64, r Retry, coef bool) (*frame.Frame, error) {
	op := OpGet
	if coef {
		op = OpGetCoef
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	backoff := r.Backoff
	redial := false
	var err error
	for attempt := 0; ; attempt++ {
		var status uint8
		var body []byte
		status, body, err = c.once(op, key, nil, redial)
		if err == nil {
			switch status {
			case StatusOK:
				var f *frame.Frame
				f, err = frame.DecodeFrame(body)
				if err == nil {
					c.counters.BytesVerified.Add(int64(len(body)))
					return f, nil
				}
			case StatusNotFound:
				return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
			default:
				return nil, fmt.Errorf("transport: get %d: server status %d", key, status)
			}
		}
		redial = c.conn == nil
		c.counters.Corrupted.Add(1)
		if attempt >= r.Attempts {
			return nil, err
		}
		c.counters.Retried.Add(1)
		if backoff > 0 {
			r.sleep(backoff)
			backoff *= 2
		}
	}
}

// Delete implements Transport. Deletes are housekeeping after a
// successful restore, so they ride a small fixed reconnect schedule and
// tolerate NotFound (another retry may already have landed it).
func (c *NetClient) Delete(key uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	redial := false
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var status uint8
		status, _, err = c.once(OpDelete, key, nil, redial)
		if err == nil {
			if status == StatusOK || status == StatusNotFound {
				return nil
			}
			return fmt.Errorf("transport: delete %d: server status %d", key, status)
		}
		redial = c.conn == nil
		c.counters.Retried.Add(1)
	}
	return err
}

// ServerStats fetches the server's unified counter snapshot (the same
// Snapshot shape every layer of the stack reports).
func (c *NetClient) ServerStats() (Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	redial := false
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var status uint8
		var body []byte
		status, body, err = c.once(OpStats, 0, nil, redial)
		if err == nil {
			if status != StatusOK {
				return Snapshot{}, fmt.Errorf("transport: stats: server status %d", status)
			}
			var s Snapshot
			if jerr := json.Unmarshal(body, &s); jerr != nil {
				return Snapshot{}, fmt.Errorf("transport: stats: %w", jerr)
			}
			return s, nil
		}
		redial = c.conn == nil
		c.counters.Retried.Add(1)
	}
	return Snapshot{}, err
}

// Close implements Transport.
func (c *NetClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropConn()
	return nil
}

var _ Transport = (*NetClient)(nil)
var _ Transport = (*Local)(nil)
