// Wire protocol of the networked activation store: a length-prefixed
// request/response exchange over any net.Conn. The payload of a PUT (and
// of a successful GET response) is an internal/frame container — already
// self-describing and CRC32C'd end to end — so the wire format is just
// the frame bytes plus a small fixed op header:
//
//	request  (16 bytes LE + body):
//	  off 0  magic   "JQ"
//	  off 2  version u8  (currently 1)
//	  off 3  op      u8  (OpPut | OpGet | OpGetCoef | OpDelete | OpStats)
//	  off 4  key     u64
//	  off 12 length  u32 (body bytes; frame bytes for OpPut, else 0)
//
//	response (8 bytes LE + body):
//	  off 0  magic   "JS"
//	  off 2  version u8
//	  off 3  status  u8  (StatusOK | StatusNotFound | ...)
//	  off 4  length  u32 (frame bytes for a GET hit, JSON for STATS)
//
// Integrity of the payload itself rides on the frame CRC (the server
// validates PUT bodies before storing; the client validates GET bodies
// before trusting them); the op header is protected by the magic,
// version and length caps below, and any malformed header poisons the
// stream, so both ends drop the connection and the client's
// reconnect+resend retry takes over. ReadRequest/ReadResponse are
// panic-free on arbitrary input and never allocate more than MaxBody.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Request/response op codes.
const (
	// OpPut stores the body under the key.
	OpPut uint8 = 1
	// OpGet returns the stored bytes for the key.
	OpGet uint8 = 2
	// OpGetCoef is OpGet for a consumer that will decode the frame as a
	// quantized DCT coefficient plane (same bytes, counted separately —
	// the compressed-domain serving path).
	OpGetCoef uint8 = 3
	// OpDelete releases the stored bytes for the key.
	OpDelete uint8 = 4
	// OpStats returns the server's unified Snapshot as JSON.
	OpStats uint8 = 5
)

// Response status codes.
const (
	// StatusOK: the operation succeeded; the body is the result.
	StatusOK uint8 = 0
	// StatusNotFound: no entry for the key (maps to ErrNotFound).
	StatusNotFound uint8 = 1
	// StatusCorrupt: a PUT body failed server-side frame validation —
	// the bytes were damaged in flight; the client resends.
	StatusCorrupt uint8 = 2
	// StatusBadRequest: malformed op header or unknown op; the server
	// closes the connection after answering (the stream is poisoned).
	StatusBadRequest uint8 = 3
)

// WireVersion is the current protocol version.
const WireVersion = 1

// MaxBody caps a declared body length so a corrupt or hostile header
// can never become an allocation bomb. 64 MiB is far above any frame
// this system produces (a 1 GiB float32 activation compresses well
// under it) and far below the frame container's own 1 GiB payload cap.
const MaxBody = 1 << 26

// Header sizes.
const (
	reqHeaderSize  = 16
	respHeaderSize = 8
)

var (
	reqMagic  = [2]byte{'J', 'Q'}
	respMagic = [2]byte{'J', 'S'}
)

// ErrWire reports a malformed wire message: bad magic, unknown version,
// an over-cap length, or a header cut short mid-stream. The connection
// that produced it cannot be resynchronized and must be dropped; the
// client's reconnect+resend schedule recovers from there. Match with
// errors.Is.
var ErrWire = fmt.Errorf("transport: wire protocol error")

// Request is one decoded client request.
type Request struct {
	Op   uint8
	Key  uint64
	Body []byte
}

// WriteRequest serializes one request to w.
func WriteRequest(w io.Writer, op uint8, key uint64, body []byte) error {
	var h [reqHeaderSize]byte
	h[0], h[1] = reqMagic[0], reqMagic[1]
	h[2] = WireVersion
	h[3] = op
	binary.LittleEndian.PutUint64(h[4:], key)
	binary.LittleEndian.PutUint32(h[12:], uint32(len(body)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// ReadRequest decodes one request from r. A clean end-of-stream between
// requests returns io.EOF; a header cut mid-way, bad magic, unknown
// version or an over-cap length return a typed ErrWire; an interrupted
// body surfaces the underlying read error. Panic-free on arbitrary
// bytes, allocation bounded by MaxBody.
func ReadRequest(r io.Reader) (Request, error) {
	var h [reqHeaderSize]byte
	if _, err := io.ReadFull(r, h[:1]); err != nil {
		return Request{}, err // io.EOF between requests is a clean close
	}
	if _, err := io.ReadFull(r, h[1:]); err != nil {
		return Request{}, fmt.Errorf("%w: truncated op header: %v", ErrWire, err)
	}
	if h[0] != reqMagic[0] || h[1] != reqMagic[1] {
		return Request{}, fmt.Errorf("%w: bad request magic %02x%02x", ErrWire, h[0], h[1])
	}
	if h[2] != WireVersion {
		return Request{}, fmt.Errorf("%w: unsupported version %d", ErrWire, h[2])
	}
	op := h[3]
	if op < OpPut || op > OpStats {
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrWire, op)
	}
	n := binary.LittleEndian.Uint32(h[12:])
	if n > MaxBody {
		return Request{}, fmt.Errorf("%w: %d-byte body exceeds cap %d", ErrWire, n, MaxBody)
	}
	req := Request{Op: op, Key: binary.LittleEndian.Uint64(h[4:])}
	if n > 0 {
		req.Body = make([]byte, n)
		if _, err := io.ReadFull(r, req.Body); err != nil {
			return Request{}, fmt.Errorf("%w: truncated %d-byte body: %v", ErrWire, n, err)
		}
	}
	return req, nil
}

// WriteResponse serializes one response to w.
func WriteResponse(w io.Writer, status uint8, body []byte) error {
	var h [respHeaderSize]byte
	h[0], h[1] = respMagic[0], respMagic[1]
	h[2] = WireVersion
	h[3] = status
	binary.LittleEndian.PutUint32(h[4:], uint32(len(body)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse decodes one response from r, with the same error
// contract as ReadRequest.
func ReadResponse(r io.Reader) (status uint8, body []byte, err error) {
	var h [respHeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return 0, nil, fmt.Errorf("%w: connection closed before response: %v", ErrWire, err)
		}
		return 0, nil, fmt.Errorf("%w: truncated response header: %v", ErrWire, err)
	}
	if h[0] != respMagic[0] || h[1] != respMagic[1] {
		return 0, nil, fmt.Errorf("%w: bad response magic %02x%02x", ErrWire, h[0], h[1])
	}
	if h[2] != WireVersion {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrWire, h[2])
	}
	n := binary.LittleEndian.Uint32(h[4:])
	if n > MaxBody {
		return 0, nil, fmt.Errorf("%w: %d-byte body exceeds cap %d", ErrWire, n, MaxBody)
	}
	if n > 0 {
		body = make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return 0, nil, fmt.Errorf("%w: truncated %d-byte body: %v", ErrWire, n, err)
		}
	}
	return h[3], body, nil
}
