package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"jpegact/internal/frame"
	"jpegact/internal/tensor"
)

// FuzzWireResponse feeds arbitrary bytes through the client-side
// response parser — the surface a damaged or hostile server can reach.
// Requests have been fuzzed since PR 7 (FuzzNetstoreRequest); this
// closes the other half of the wire. The parser must never panic, never
// allocate past MaxBody, and classify every malformed header as the
// typed ErrWire; bodies that parse must then survive frame validation
// without a panic (the client CRC-checks every GET payload before
// trusting it).
func FuzzWireResponse(f *testing.F) {
	fr := &frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{1, 2, 3, 4},
	}
	valid := frame.EncodeFrame(fr)

	var ok, notFound, corrupt, stats bytes.Buffer
	WriteResponse(&ok, StatusOK, valid)
	WriteResponse(&notFound, StatusNotFound, nil)
	WriteResponse(&corrupt, StatusCorrupt, nil)
	WriteResponse(&stats, StatusOK, []byte(`{"offloaded":3}`))
	f.Add(ok.Bytes())
	f.Add(append(ok.Bytes(), notFound.Bytes()...))
	f.Add(corrupt.Bytes())
	f.Add(stats.Bytes())
	f.Add(ok.Bytes()[:len(ok.Bytes())/2])     // cut mid-body
	f.Add(ok.Bytes()[:5])                     // truncated response header
	f.Add([]byte{'J', 'S', 99, 0})            // bad version
	f.Add([]byte{'J', 'Q', 1, 0, 0, 0, 0, 0}) // request magic where a response belongs
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		for {
			status, body, err := ReadResponse(r)
			if err != nil {
				// Unlike requests, a cut between responses is NOT clean —
				// the client is always mid-operation when it reads — so
				// every failure must carry the typed wire error.
				if !errors.Is(err, ErrWire) {
					t.Fatalf("untyped response decode error: %v", err)
				}
				break
			}
			if len(body) > MaxBody {
				t.Fatalf("%d-byte body escaped the %d cap", len(body), MaxBody)
			}
			if status == StatusOK && len(body) > 0 {
				// The client's next step on a GET hit: frame validation
				// must be panic-free on whatever the wire produced.
				frame.DecodeFrame(body)
			}
		}
		// Drained input must end exactly at a response boundary or a
		// typed error; either way nothing is left unaccounted.
		if r.Len() > 0 {
			if _, err := io.Copy(io.Discard, r); err != nil {
				t.Fatal(err)
			}
		}
	})
}
