package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"jpegact/internal/frame"
)

// wireServer is a minimal single-purpose wire peer for client tests:
// each accepted connection is handed to handle, which speaks the raw
// protocol however the test needs (answer, stall, die mid-frame).
func wireServer(t *testing.T, handle func(conn net.Conn, nth int)) Dialer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var n atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handle(conn, int(n.Add(1)-1))
		}
	}()
	addr := ln.Addr().String()
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// TestDeadServerReturnsStoreUnavailable: with a huge attempt count but a
// small total wall budget, a server nobody answers for must fail fast
// with the typed ErrStoreUnavailable — not spin through every attempt.
func TestDeadServerReturnsStoreUnavailable(t *testing.T) {
	dial := func() (net.Conn, error) { return nil, errors.New("connection refused") }
	c := NewNetClient(dial, nil)
	r := Retry{Attempts: 1 << 20, Total: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Put(7, testFrame(t), r)
	if !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("want ErrStoreUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-server put took %v; the total budget did not bound it", elapsed)
	}
	if _, err := c.Get(7, r, false); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("want ErrStoreUnavailable from get, got %v", err)
	}
}

// TestStalledServerBoundedByOpDeadline: a server that accepts the
// connection and reads the request but never answers must be cut off by
// the per-op deadline, and the exhausted schedule must report the store
// unavailable.
func TestStalledServerBoundedByOpDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	dial := wireServer(t, func(conn net.Conn, _ int) {
		defer conn.Close()
		ReadRequest(conn) // swallow the request, never respond
		<-block
	})
	c := NewNetClient(dial, nil)
	r := Retry{Attempts: 1, OpTimeout: 50 * time.Millisecond, Total: 300 * time.Millisecond}
	start := time.Now()
	_, err := c.Get(3, r, false)
	if !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("want ErrStoreUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled get took %v; the op deadline did not fire", elapsed)
	}
}

// TestClientLevelOpTimeoutCoversHousekeeping: Delete carries no Retry
// schedule, so the client-level OpTimeout must bound it against a
// stalled server.
func TestClientLevelOpTimeoutCoversHousekeeping(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	dial := wireServer(t, func(conn net.Conn, _ int) {
		defer conn.Close()
		ReadRequest(conn)
		<-block
	})
	c := NewNetClient(dial, nil)
	c.OpTimeout = 30 * time.Millisecond
	start := time.Now()
	if err := c.Delete(9); err == nil {
		t.Fatal("delete against a stalled server must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled delete took %v; OpTimeout did not bound it", elapsed)
	}
}

// TestHedgedGetBeatsStalledConnection: the first connection serves the
// PUT then stalls on the GET; the hedge must race a second connection,
// win, and poison the abandoned primary — with the Hedged counter
// recording the launch.
func TestHedgedGetBeatsStalledConnection(t *testing.T) {
	buf := testFrame(t)
	stalled := make(chan struct{})
	defer close(stalled)
	dial := wireServer(t, func(conn net.Conn, nth int) {
		defer conn.Close()
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			switch req.Op {
			case OpPut:
				WriteResponse(conn, StatusOK, nil)
			case OpGet:
				if nth == 0 {
					<-stalled // first connection stalls its GET forever
					return
				}
				WriteResponse(conn, StatusOK, buf)
			}
		}
	})
	var counters Counters
	c := NewNetClient(dial, &counters)
	c.Hedge = 20 * time.Millisecond
	if _, err := c.Put(5, buf, Retry{}); err != nil {
		t.Fatal(err)
	}
	f, err := c.Get(5, Retry{OpTimeout: 5 * time.Second}, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Codec != frame.CodecZVC {
		t.Fatalf("hedged get returned wrong frame: %+v", f)
	}
	if counters.Hedged.Load() == 0 {
		t.Fatal("hedge launch was not counted")
	}
}

// TestHedgeIdleWhenPrimaryIsFast: a healthy server answering immediately
// must never trigger hedges.
func TestHedgeIdleWhenPrimaryIsFast(t *testing.T) {
	buf := testFrame(t)
	dial := wireServer(t, func(conn net.Conn, _ int) {
		defer conn.Close()
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			if req.Op == OpPut {
				WriteResponse(conn, StatusOK, nil)
			} else {
				WriteResponse(conn, StatusOK, buf)
			}
		}
	})
	var counters Counters
	c := NewNetClient(dial, &counters)
	c.Hedge = 500 * time.Millisecond
	if _, err := c.Put(1, buf, Retry{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Get(1, Retry{}, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := counters.Hedged.Load(); got != 0 {
		t.Fatalf("%d hedges launched against a fast server", got)
	}
}

// TestCorruptResponseStaysTypedAfterBudget: when the schedule exhausts
// on payload corruption (the server answered, the frame is damaged),
// the error must stay the frame error — unavailability is only for
// connection-level failure.
func TestCorruptResponseStaysTypedAfterBudget(t *testing.T) {
	buf := testFrame(t)
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xff
	dial := wireServer(t, func(conn net.Conn, _ int) {
		defer conn.Close()
		for {
			if _, err := ReadRequest(conn); err != nil {
				return
			}
			WriteResponse(conn, StatusOK, bad)
		}
	})
	c := NewNetClient(dial, nil)
	_, err := c.Get(2, Retry{Attempts: 2, Total: time.Second}, false)
	if err == nil || errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("corrupt payload must not report unavailability: %v", err)
	}
	if !errors.Is(err, frame.ErrChecksum) && !errors.Is(err, frame.ErrTruncated) {
		t.Fatalf("want a typed frame error, got %v", err)
	}
}

// TestDialWatchdogBoundsHangingDialer: a Dialer that never returns must
// be cut off by the per-op deadline (the one I/O a conn deadline cannot
// cover).
func TestDialWatchdogBoundsHangingDialer(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	dial := func() (net.Conn, error) { <-hang; return nil, fmt.Errorf("late") }
	c := NewNetClient(dial, nil)
	r := Retry{OpTimeout: 50 * time.Millisecond, Total: 200 * time.Millisecond}
	start := time.Now()
	if _, err := c.Get(1, r, false); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("want ErrStoreUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hanging dial took %v", elapsed)
	}
}
