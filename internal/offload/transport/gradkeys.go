package transport

// Gradient key namespace for the data-parallel exchange. The store's
// activation keys are its offload sequence numbers (optionally OR'd
// with a per-client KeyBase), which never set bit 63 in practice — so
// the gradient exchange claims the top bit as a namespace flag and one
// actstore process can serve activations and gradients concurrently
// with zero wire-protocol changes: a gradient key is just another
// opaque uint64 to the protocol, and only the counters care.
//
// Layout (most to least significant):
//
//	bit  63     grad-namespace flag (1 = gradient key)
//	bits 62..48 run tag (15 bits, splitmix-derived from the training
//	            seed, so two runs sharing a store collide with
//	            probability 2^-15 instead of certainty)
//	bits 47..24 step number (24 bits — 16M steps)
//	bits 23..12 slot (12 bits: 0 = the reduced gradient, m+1 = the
//	            contribution of microbatch m)
//	bits 11..0  chunk index within the flattened gradient (12 bits)
//
// The layout is a private convention between the data-parallel trainer
// and the counters below; the store itself never parses it beyond
// IsGradKey.

import "jpegact/internal/splitmix"

const (
	gradFlagBit  = uint64(1) << 63
	gradTagBits  = 15
	gradStepBits = 24
	gradSlotBits = 12
	// gradChunkBits is implied: 64 - 1 - 15 - 24 - 12 = 12.
	gradChunkBits = 12
)

// GradTag derives the 15-bit run tag from a training seed. Seed 0 is
// legal: the tag is drawn one Gamma step into the stream, past the
// mixer's zero fixed point.
func GradTag(seed uint64) uint64 {
	return splitmix.Mix(seed+splitmix.Gamma) >> (64 - gradTagBits)
}

// GradKey builds the store key for one gradient chunk. slot 0 names the
// reduced gradient; slot m+1 names microbatch m's contribution. Inputs
// beyond their field widths are masked, not rejected — the trainer's
// step/slot/chunk counts are bounded far below the field sizes.
func GradKey(tag, step, slot, chunk uint64) uint64 {
	return gradFlagBit |
		(tag&(1<<gradTagBits-1))<<(gradStepBits+gradSlotBits+gradChunkBits) |
		(step&(1<<gradStepBits-1))<<(gradSlotBits+gradChunkBits) |
		(slot&(1<<gradSlotBits-1))<<gradChunkBits |
		chunk&(1<<gradChunkBits-1)
}

// IsGradKey reports whether key lies in the gradient namespace.
func IsGradKey(key uint64) bool {
	return key&gradFlagBit != 0
}
