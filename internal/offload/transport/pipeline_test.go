package transport

// Failure-domain tests for the pipelined client: the windowed async API
// must keep every PR-2 recovery invariant the stop-and-wait path has —
// a connection failure mid-window poisons every in-flight op and the
// tail is resent in its original issue order, the hedge rescues a
// stalled head without reordering the survivors, submissions past the
// window block instead of flooding, and the whole machine converges
// through the deterministic chaos injector.

import (
	"net"
	"sync"
	"testing"
	"time"

	"jpegact/internal/frame"
	"jpegact/internal/netfaults"
	"jpegact/internal/tensor"
)

// keyFrame builds a small valid frame whose payload carries the key, so
// a response can be matched to the request it answers.
func keyFrame(key uint64) []byte {
	b := byte(key)
	f := &frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{b, b, b, b},
	}
	return frame.EncodeFrame(f)
}

// TestPipelinedMidWindowResetResendsInOrder: 8 GETs in flight on a
// window-8 client; the server kills the connection after answering 3 of
// them. The poisoned tail must be resent on the next connection in its
// original issue order, every op must still land on the right frame,
// and the failure must show in the Reconnects/Retried counters.
func TestPipelinedMidWindowResetResendsInOrder(t *testing.T) {
	var mu sync.Mutex
	seq := map[int][]uint64{} // per-connection GET key sequence
	dial := wireServer(t, func(conn net.Conn, nth int) {
		defer conn.Close()
		answered := 0
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			if req.Op != OpGet {
				WriteResponse(conn, StatusOK, nil)
				continue
			}
			mu.Lock()
			seq[nth] = append(seq[nth], req.Key)
			mu.Unlock()
			if nth == 0 && answered == 3 {
				return // cut mid-window: the rest are in flight, unanswered
			}
			if WriteResponse(conn, StatusOK, keyFrame(req.Key)) != nil {
				return
			}
			answered++
		}
	})
	var counters Counters
	c := NewNetClient(dial, &counters)
	c.Window = 8
	defer c.Close()
	r := Retry{Attempts: 3, OpTimeout: 5 * time.Second}
	var pending []*Pending
	for k := uint64(1); k <= 8; k++ {
		pending = append(pending, c.GetAsync(k, r, false))
	}
	for i, p := range pending {
		f, err := p.GetResult()
		if err != nil {
			t.Fatalf("get %d: %v", i+1, err)
		}
		if want := byte(i + 1); f.Payload[0] != want {
			t.Fatalf("get %d returned frame %d — responses matched out of order", i+1, f.Payload[0])
		}
	}
	if counters.Reconnects.Load() == 0 || counters.Retried.Load() == 0 {
		t.Fatalf("mid-window cut not accounted: %+v", counters.Snapshot())
	}
	mu.Lock()
	defer mu.Unlock()
	replay := seq[1]
	if len(replay) == 0 {
		t.Fatal("no op was replayed on the second connection")
	}
	// The replay must be the contiguous ascending tail of the original
	// issue order, starting where the first connection stopped answering.
	first := replay[0]
	for i, k := range replay {
		if k != first+uint64(i) {
			t.Fatalf("replay out of order: %v", replay)
		}
	}
	if replay[len(replay)-1] != 8 {
		t.Fatalf("replay did not cover the tail: %v", replay)
	}
}

// TestPipelinedWindowBackpressure: a submission past a full window must
// block until a response frees a slot — the client never floods a slow
// server with an unbounded queue.
func TestPipelinedWindowBackpressure(t *testing.T) {
	release := make(chan struct{})
	dial := wireServer(t, func(conn net.Conn, nth int) {
		defer conn.Close()
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			<-release
			if WriteResponse(conn, StatusOK, keyFrame(req.Key)) != nil {
				return
			}
		}
	})
	c := NewNetClient(dial, nil)
	c.Window = 2
	defer c.Close()
	r := Retry{Attempts: 1, OpTimeout: 5 * time.Second}
	p1 := c.GetAsync(1, r, false)
	p2 := c.GetAsync(2, r, false)
	third := make(chan *Pending)
	go func() { third <- c.GetAsync(3, r, false) }()
	select {
	case <-third:
		t.Fatal("third submission was admitted past a full window of 2")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	p3 := <-third
	for i, p := range []*Pending{p1, p2, p3} {
		f, err := p.GetResult()
		if err != nil {
			t.Fatalf("get %d: %v", i+1, err)
		}
		if f.Payload[0] != byte(i+1) {
			t.Fatalf("get %d returned frame %d", i+1, f.Payload[0])
		}
	}
}

// TestPipelinedHedgeRescuesHead: with a window of GETs in flight and the
// whole connection stalled, the hedge must rescue the head op from a
// second connection; the poisoned survivors then replay in their
// original order on a fresh connection.
func TestPipelinedHedgeRescuesHead(t *testing.T) {
	var mu sync.Mutex
	var served []uint64 // GETs actually answered, across connections
	stall := make(chan struct{})
	defer close(stall)
	dial := wireServer(t, func(conn net.Conn, nth int) {
		defer conn.Close()
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			if req.Op != OpGet {
				WriteResponse(conn, StatusOK, nil)
				continue
			}
			if nth == 0 {
				<-stall // the primary never answers a GET
				return
			}
			mu.Lock()
			served = append(served, req.Key)
			mu.Unlock()
			if WriteResponse(conn, StatusOK, keyFrame(req.Key)) != nil {
				return
			}
		}
	})
	var counters Counters
	c := NewNetClient(dial, &counters)
	c.Window = 4
	c.Hedge = 20 * time.Millisecond
	defer c.Close()
	r := Retry{Attempts: 2, OpTimeout: 5 * time.Second}
	var pending []*Pending
	for k := uint64(1); k <= 4; k++ {
		pending = append(pending, c.GetAsync(k, r, false))
	}
	for i, p := range pending {
		f, err := p.GetResult()
		if err != nil {
			t.Fatalf("get %d: %v", i+1, err)
		}
		if f.Payload[0] != byte(i+1) {
			t.Fatalf("get %d returned frame %d", i+1, f.Payload[0])
		}
	}
	if counters.Hedged.Load() == 0 {
		t.Fatal("hedge launch was not counted")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, k := range served {
		if k != uint64(i+1) {
			t.Fatalf("hedge reordered the window: served %v", served)
		}
	}
}

// TestPipelinedClientUnderChaos: a window-8 client against a correct
// in-memory store reached through the deterministic fault injector.
// Every op must converge to the right bytes through resets and latency
// spikes, and the injected resets must be visible in the counters.
func TestPipelinedClientUnderChaos(t *testing.T) {
	var smu sync.Mutex
	store := map[uint64][]byte{}
	raw := wireServer(t, func(conn net.Conn, nth int) {
		defer conn.Close()
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			var werr error
			switch req.Op {
			case OpPut:
				smu.Lock()
				body := append([]byte(nil), req.Body...)
				store[req.Key] = body
				smu.Unlock()
				werr = WriteResponse(conn, StatusOK, nil)
			case OpGet:
				smu.Lock()
				b, ok := store[req.Key]
				smu.Unlock()
				if ok {
					werr = WriteResponse(conn, StatusOK, b)
				} else {
					werr = WriteResponse(conn, StatusNotFound, nil)
				}
			default:
				werr = WriteResponse(conn, StatusOK, nil)
			}
			if werr != nil {
				return
			}
		}
	})
	inj := netfaults.New(netfaults.Config{
		Seed:     7,
		PReset:   0.08,
		PLatency: 0.05, Latency: time.Millisecond,
	})
	var counters Counters
	c := NewNetClient(Dialer(inj.WrapDialer(raw)), &counters)
	c.Window = 8
	defer c.Close()
	r := Retry{Attempts: 32, OpTimeout: 2 * time.Second, Total: 60 * time.Second}
	const n = 64
	for k := uint64(1); k <= n; k++ {
		if _, err := c.Put(k, keyFrame(k), r); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	var pending []*Pending
	for k := uint64(1); k <= n; k++ {
		pending = append(pending, c.GetAsync(k, r, false))
	}
	for i, p := range pending {
		f, err := p.GetResult()
		if err != nil {
			t.Fatalf("get %d: %v", i+1, err)
		}
		if f.Payload[0] != byte(i+1) {
			t.Fatalf("get %d returned frame %d under chaos", i+1, f.Payload[0])
		}
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("chaos seed injected no resets; the test proved nothing")
	}
	if counters.Reconnects.Load() == 0 {
		t.Fatalf("resets occurred but no reconnects were counted: %+v", counters.Snapshot())
	}
}
