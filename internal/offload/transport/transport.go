// Package transport is the byte-moving layer of the offload stack: it
// owns the GPU↔host channel abstraction, the framed read path with its
// CRC validation, and the retry/backoff schedule that absorbs transient
// channel faults. It knows nothing about tensors or compression — it
// moves validated frames, nothing more.
//
// The layer split (codec / transport / scheduler) mirrors the paper's
// Fig. 7 datapath: the CDU compresses (codec), the DMA engine moves
// bytes over PCIe (this package), and the memory manager schedules the
// transfers against compute (internal/offload.Engine).
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"jpegact/internal/frame"
)

// Channel abstracts the GPU↔host byte path. Send models the offload
// direction (what it returns is what lands in host memory — faults there
// are persistent); Recv models the restore direction (faults there are
// transient, so a retry re-reads the intact host copy). A nil return
// models a dropped transfer. internal/faults.Injector implements this
// interface; Clean is the fault-free default.
type Channel interface {
	Send(b []byte) []byte
	Recv(b []byte) []byte
}

// Clean is the fault-free passthrough channel.
type Clean struct{}

// Send implements Channel.
func (Clean) Send(b []byte) []byte { return b }

// Recv implements Channel.
func (Clean) Recv(b []byte) []byte { return b }

// ErrDropped reports a transfer that yielded no bytes at all (the
// channel returned nil) — a lost DMA, distinct from a truncated or
// bit-flipped one. Reads that fail this way are retried on the same
// schedule as corrupted ones, since a drop on the Recv side is
// transient.
var ErrDropped = errors.New("transport: transfer dropped")

// Stats holds the transport layer's counters. All fields are atomic so
// the async scheduler's workers and prefetcher can update them
// concurrently; read a coherent copy with Snapshot.
type Stats struct {
	Corrupted     atomic.Uint64 // frame reads that failed validation (incl. drops)
	Retried       atomic.Uint64 // channel re-reads attempted
	Dropped       atomic.Uint64 // reads that yielded no bytes (nil transfer)
	BytesVerified atomic.Int64  // frame bytes CRC-verified back from host memory
}

// Snapshot is a plain-value copy of Stats.
type Snapshot struct {
	Corrupted     uint64
	Retried       uint64
	Dropped       uint64
	BytesVerified int64
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Corrupted:     s.Corrupted.Load(),
		Retried:       s.Retried.Load(),
		Dropped:       s.Dropped.Load(),
		BytesVerified: s.BytesVerified.Load(),
	}
}

// Transport is one configured view of the byte path: a channel plus the
// retry schedule applied to reads. It is a cheap value — the offload
// store builds one per operation from its current configuration.
type Transport struct {
	// Channel is the byte path (nil = Clean).
	Channel Channel
	// Retries bounds the re-reads after a failed frame validation.
	Retries int
	// Backoff is the initial delay between retries, doubled each attempt
	// (0 retries immediately — the right setting for simulated channels).
	Backoff time.Duration
	// Sleep is invoked for backoff delays; nil means time.Sleep. Tests
	// inject a recording clock here so recovery paths never real-sleep.
	Sleep func(time.Duration)
	// Stats, when non-nil, accumulates the read counters.
	Stats *Stats
}

func (t Transport) channel() Channel {
	if t.Channel == nil {
		return Clean{}
	}
	return t.Channel
}

func (t Transport) sleep(d time.Duration) {
	if t.Sleep != nil {
		t.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Send pushes b across the channel and returns what landed in host
// memory (send-side faults are persistent: the returned bytes are the
// only copy).
func (t Transport) Send(b []byte) []byte {
	return t.channel().Send(b)
}

// Read pulls the host copy b back through the channel and validates the
// frame, applying the retry schedule. A nil transfer is reported as
// ErrDropped (and counted separately from corruption); any other
// validation failure carries the typed frame error. The returned frame
// aliases the received bytes.
func (t Transport) Read(b []byte) (*frame.Frame, error) {
	backoff := t.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		var f *frame.Frame
		got := t.channel().Recv(b)
		if got == nil {
			err = fmt.Errorf("%w (%d-byte host copy)", ErrDropped, len(b))
			if t.Stats != nil {
				t.Stats.Dropped.Add(1)
			}
		} else {
			f, err = frame.DecodeFrame(got)
		}
		if err == nil {
			if t.Stats != nil {
				t.Stats.BytesVerified.Add(int64(len(got)))
			}
			return f, nil
		}
		if t.Stats != nil {
			t.Stats.Corrupted.Add(1)
		}
		if attempt >= t.Retries {
			return nil, err
		}
		if t.Stats != nil {
			t.Stats.Retried.Add(1)
		}
		if backoff > 0 {
			t.sleep(backoff)
			backoff *= 2
		}
	}
}
