// Package transport is the byte-moving layer of the offload stack: it
// owns the GPU↔host byte-path abstraction, the framed read path with its
// CRC validation, and the retry schedule that absorbs transient faults.
// It knows nothing about tensors or compression — it moves validated
// frames, nothing more.
//
// Since PR 7 the layer is pluggable: Transport is the interface the
// offload store and scheduler are written against, with three
// implementations —
//
//   - Local, the in-process host-memory backend over a Channel (the
//     default, and the substrate the internal/faults injector plugs
//     into);
//   - NetClient (netclient.go), a wire client speaking the length-
//     prefixed request/response protocol of wire.go over any net.Conn,
//     with reconnect+resend riding the same Retry schedule;
//   - the sharded server in internal/offload/netstore, which serves the
//     same protocol to many concurrent client processes.
//
// The layer split (codec / transport / scheduler) mirrors the paper's
// Fig. 7 datapath: the CDU compresses (codec), the DMA engine moves
// bytes over PCIe (this package), and the memory manager schedules the
// transfers against compute (internal/offload.Engine).
package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"jpegact/internal/frame"
)

// Channel abstracts the GPU↔host byte path of the Local backend. Send
// models the offload direction (what it returns is what lands in host
// memory — faults there are persistent); Recv models the restore
// direction (faults there are transient, so a retry re-reads the intact
// host copy). A nil return models a dropped transfer.
// internal/faults.Injector implements this interface; Clean is the
// fault-free default.
type Channel interface {
	Send(b []byte) []byte
	Recv(b []byte) []byte
}

// Clean is the fault-free passthrough channel.
type Clean struct{}

// Send implements Channel.
func (Clean) Send(b []byte) []byte { return b }

// Recv implements Channel.
func (Clean) Recv(b []byte) []byte { return b }

// ErrDropped reports a transfer that yielded no bytes at all (the
// channel returned nil) — a lost DMA, distinct from a truncated or
// bit-flipped one. Reads that fail this way are retried on the same
// schedule as corrupted ones, since a drop on the Recv side is
// transient.
var ErrDropped = errors.New("transport: transfer dropped")

// ErrNotFound reports a Get or Delete for a key the backend holds no
// entry for — on a networked store, typically a key another process
// deleted or a server that lost its state. Match with errors.Is.
var ErrNotFound = errors.New("transport: no entry for key")

// ErrStoreUnavailable reports that the backend could not be reached at
// all within the operation's deadline budget: every dial, write or read
// attempt of the schedule failed at the connection level (dead server,
// unreachable socket, per-op deadlines expiring on a stalled link). It
// is the terminal verdict of the retry loop, never a single-attempt
// error — callers that see it know the schedule is exhausted and the
// store is presumed down, which is what the offload layer's circuit
// breaker keys its trip decision on. Match with errors.Is.
var ErrStoreUnavailable = errors.New("transport: activation store unavailable")

// Retry is the per-operation retry schedule a backend applies to a
// failed transfer: Attempts bounds the re-reads (or reconnect+resend
// cycles, for a networked backend) after the first failure, Backoff is
// the initial delay between them, doubled each attempt (0 retries
// immediately — the right setting for simulated channels).
type Retry struct {
	Attempts int
	Backoff  time.Duration
	// Sleep is invoked for backoff delays; nil means time.Sleep. Tests
	// inject a recording clock here so recovery paths never real-sleep.
	Sleep func(time.Duration)
	// OpTimeout bounds one attempt of a networked operation (the write
	// plus the wait for its response) via connection deadlines, so a
	// stalled server or link surfaces as a retryable timeout instead of
	// hanging the training step forever. 0 = no per-attempt deadline.
	// The in-process backend ignores it (a map read cannot stall).
	OpTimeout time.Duration
	// Total bounds the wall-clock of the whole schedule — first attempt,
	// every reconnect+resend cycle and every backoff sleep included.
	// When the budget is exhausted the operation fails with a typed
	// ErrStoreUnavailable rather than starting another cycle, so a
	// permanently dead server costs a bounded stall, never a hang.
	// 0 = attempts alone bound the schedule.
	Total time.Duration
}

func (r Retry) sleep(d time.Duration) {
	if r.Sleep != nil {
		r.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Transport is the pluggable byte-path interface the offload store is
// written against. Keys are opaque 64-bit names the store assigns (its
// offload sequence number, optionally OR'd with a per-client KeyBase so
// processes sharing a networked backend stay disjoint).
//
// Put ships one encoded frame to the backend and reports how many bytes
// landed (a faulty send may persist fewer). Get brings the frame back,
// CRC-validated, applying the Retry schedule to transient failures; the
// coef flag marks a read the consumer will serve as a quantized DCT
// coefficient plane (same bytes — a networked backend counts it
// separately, since serving the compressed plane without the inverse
// transform is the cheap path the frequency-domain consumers ride).
// Delete releases the backend's copy after a successful restore.
type Transport interface {
	Put(key uint64, data []byte, r Retry) (stored int, err error)
	Get(key uint64, r Retry, coef bool) (*frame.Frame, error)
	Delete(key uint64) error
	Close() error
}

// Counters is the unified counter block shared by every layer of the
// offload stack: the store's offload/restore/recovery counters, the
// transport's corruption/retry counters, and the netstore server's
// serving counters are all fields of this one struct, so there is
// exactly one snapshot shape (Snapshot) everywhere — the store's
// Stats(), the wire STATS op and the server's /metrics endpoint all
// render it. All fields are atomic; read a coherent copy with Snapshot.
type Counters struct {
	Offloaded      atomic.Uint64 // activations put to the backend
	Restored       atomic.Uint64 // activations brought back successfully
	CoefRestores   atomic.Uint64 // restores served as coefficient planes
	Recomputed     atomic.Uint64 // corruptions resolved by the Recompute hook
	Corrupted      atomic.Uint64 // transfers that failed validation (incl. drops and broken connections)
	Retried        atomic.Uint64 // re-reads / reconnect+resend cycles attempted
	Dropped        atomic.Uint64 // reads that yielded no bytes (nil transfer)
	Reconnects     atomic.Uint64 // connections re-dialed by a networked backend
	Degraded       atomic.Uint64 // operations served by the degraded local fallback (breaker open)
	Hedged         atomic.Uint64 // hedge requests launched against a slow GET
	ReplicaReads   atomic.Uint64 // GETs served by a non-primary replica shard
	GradPuts       atomic.Uint64 // gradient frames put (keys in the grad namespace)
	GradGets       atomic.Uint64 // gradient frames fetched back
	BytesOffloaded atomic.Int64  // frame bytes written to the backend
	BytesVerified  atomic.Int64  // frame bytes CRC-verified back from it
	BytesGrad      atomic.Int64  // frame bytes moved under gradient keys (both directions)
}

// Snapshot is the plain-value copy of Counters — the one snapshot
// struct the whole stack shares (offload.Stats aliases it).
type Snapshot struct {
	Offloaded      uint64 `json:"offloaded"`
	Restored       uint64 `json:"restored"`
	CoefRestores   uint64 `json:"coef_restores"`
	Recomputed     uint64 `json:"recomputed"`
	Corrupted      uint64 `json:"corrupted"`
	Retried        uint64 `json:"retried"`
	Dropped        uint64 `json:"dropped"`
	Reconnects     uint64 `json:"reconnects"`
	Degraded       uint64 `json:"degraded"`
	Hedged         uint64 `json:"hedged"`
	ReplicaReads   uint64 `json:"replica_reads"`
	GradPuts       uint64 `json:"grad_puts"`
	GradGets       uint64 `json:"grad_gets"`
	BytesOffloaded int64  `json:"bytes_offloaded"`
	BytesVerified  int64  `json:"bytes_verified"`
	BytesGrad      int64  `json:"bytes_grad"`
}

// Snapshot returns a point-in-time copy of the counters.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Offloaded:      c.Offloaded.Load(),
		Restored:       c.Restored.Load(),
		CoefRestores:   c.CoefRestores.Load(),
		Recomputed:     c.Recomputed.Load(),
		Corrupted:      c.Corrupted.Load(),
		Retried:        c.Retried.Load(),
		Dropped:        c.Dropped.Load(),
		Reconnects:     c.Reconnects.Load(),
		Degraded:       c.Degraded.Load(),
		Hedged:         c.Hedged.Load(),
		ReplicaReads:   c.ReplicaReads.Load(),
		GradPuts:       c.GradPuts.Load(),
		GradGets:       c.GradGets.Load(),
		BytesOffloaded: c.BytesOffloaded.Load(),
		BytesVerified:  c.BytesVerified.Load(),
		BytesGrad:      c.BytesGrad.Load(),
	}
}

// WriteMetrics renders the snapshot in Prometheus text exposition
// format under the given namespace (e.g. "jpegact_store"). The netstore
// server's /metrics endpoint is this function over its live counters.
func (s Snapshot) WriteMetrics(w io.Writer, namespace string) error {
	rows := []struct {
		name string
		help string
		val  int64
	}{
		{"offloaded_total", "Activations put to the store", int64(s.Offloaded)},
		{"restored_total", "Activations restored from the store", int64(s.Restored)},
		{"coef_restores_total", "Restores served as DCT coefficient planes", int64(s.CoefRestores)},
		{"recomputed_total", "Corruptions resolved by forward-pass recompute", int64(s.Recomputed)},
		{"corrupted_total", "Transfers that failed validation", int64(s.Corrupted)},
		{"retried_total", "Transfer retries attempted", int64(s.Retried)},
		{"dropped_total", "Transfers that yielded no bytes", int64(s.Dropped)},
		{"reconnects_total", "Connections re-dialed", int64(s.Reconnects)},
		{"degraded_total", "Operations served by the degraded local fallback", int64(s.Degraded)},
		{"hedged_total", "Hedge requests launched against slow GETs", int64(s.Hedged)},
		{"replica_reads_total", "GETs served by a non-primary replica shard", int64(s.ReplicaReads)},
		{"grad_puts_total", "Gradient frames put to the store", int64(s.GradPuts)},
		{"grad_gets_total", "Gradient frames fetched from the store", int64(s.GradGets)},
		{"bytes_offloaded_total", "Frame bytes written to the store", s.BytesOffloaded},
		{"bytes_verified_total", "Frame bytes CRC-verified back", s.BytesVerified},
		{"bytes_grad_total", "Frame bytes moved under gradient keys", s.BytesGrad},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			namespace, r.name, r.help, namespace, r.name, namespace, r.name, r.val); err != nil {
			return err
		}
	}
	return nil
}

// Local is the in-process backend: framed bytes live in a map guarded
// by a mutex, every Put crosses the Channel's Send side once
// (persistently — what Send returns is the only copy) and every Get
// re-crosses Recv under the Retry schedule. It is the default backend
// and the substrate the internal/faults injector plugs into.
type Local struct {
	ch       Channel
	counters *Counters

	mu   sync.Mutex
	bufs map[uint64][]byte
}

// NewLocal builds the in-process backend over ch (nil = Clean). A nil
// counters gets a private block.
func NewLocal(ch Channel, c *Counters) *Local {
	if ch == nil {
		ch = Clean{}
	}
	if c == nil {
		c = &Counters{}
	}
	return &Local{ch: ch, counters: c, bufs: map[uint64][]byte{}}
}

// Put implements Transport. The Retry schedule is ignored: send-side
// faults are persistent by the fault model's fiat (the corrupted bytes
// are what landed in host memory), so there is nothing to retry against.
func (l *Local) Put(key uint64, data []byte, _ Retry) (int, error) {
	buf := l.ch.Send(data)
	l.mu.Lock()
	l.bufs[key] = buf
	l.mu.Unlock()
	return len(buf), nil
}

// Get implements Transport: the host copy is pulled back through the
// channel's Recv side and CRC-validated, applying the retry schedule. A
// nil transfer is reported as ErrDropped (and counted separately from
// corruption); any other validation failure carries the typed frame
// error. The returned frame aliases the received bytes.
func (l *Local) Get(key uint64, r Retry, _ bool) (*frame.Frame, error) {
	l.mu.Lock()
	b, ok := l.bufs[key]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	backoff := r.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		var f *frame.Frame
		got := l.ch.Recv(b)
		if got == nil {
			err = fmt.Errorf("%w (%d-byte host copy)", ErrDropped, len(b))
			l.counters.Dropped.Add(1)
		} else {
			f, err = frame.DecodeFrame(got)
		}
		if err == nil {
			l.counters.BytesVerified.Add(int64(len(got)))
			return f, nil
		}
		l.counters.Corrupted.Add(1)
		if attempt >= r.Attempts {
			return nil, err
		}
		l.counters.Retried.Add(1)
		if backoff > 0 {
			r.sleep(backoff)
			backoff *= 2
		}
	}
}

// PutAsync implements Pipelined. The in-process byte path has no
// latency to hide, so the op executes synchronously at submit time and
// the handle comes back resolved — schedulers written against handles
// keep this backend's deterministic op ordering (and its fault
// injection points) exactly.
func (l *Local) PutAsync(key uint64, data []byte, r Retry) *Pending {
	n, err := l.Put(key, data, r)
	return resolvedPending(OpPut, key, func(p *Pending) { p.stored = n; p.err = err })
}

// GetAsync implements Pipelined, inline like PutAsync.
func (l *Local) GetAsync(key uint64, r Retry, coef bool) *Pending {
	op := uint8(OpGet)
	if coef {
		op = OpGetCoef
	}
	f, err := l.Get(key, r, coef)
	return resolvedPending(op, key, func(p *Pending) { p.f = f; p.err = err })
}

// Delete implements Transport. Deleting an absent key is not an error —
// the store calls it best-effort after a successful restore.
func (l *Local) Delete(key uint64) error {
	l.mu.Lock()
	delete(l.bufs, key)
	l.mu.Unlock()
	return nil
}

// Close implements Transport.
func (l *Local) Close() error {
	l.mu.Lock()
	l.bufs = map[uint64][]byte{}
	l.mu.Unlock()
	return nil
}

// Stored returns the number of resident entries (for tests and tools).
func (l *Local) Stored() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.bufs)
}
