package offload

import (
	"errors"
	"strings"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/faults"
	"jpegact/internal/frame"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func denseRef(seed uint64) *nn.ActRef {
	r := tensor.NewRNG(seed)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	return &nn.ActRef{Name: "act", Kind: compress.KindConv, T: x}
}

func TestOffloadRestoreDense(t *testing.T) {
	s := NewStore(quant.OptL())
	ref := denseRef(1)
	orig := ref.T.Clone()
	origBytes := ref.T.Bytes()

	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if ref.T != nil {
		t.Fatal("tensor not released after offload")
	}
	if s.HostBytes() <= 0 || s.HostBytes() >= origBytes {
		t.Fatalf("host bytes %d vs original %d", s.HostBytes(), origBytes)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	if ref.T == nil || ref.T.Shape != orig.Shape {
		t.Fatal("restore failed")
	}
	if s.HostBytes() != 0 || s.Stored() != 0 {
		t.Fatalf("store not drained: %d bytes, %d entries", s.HostBytes(), s.Stored())
	}
	if e := tensor.L2Error(orig, ref.T); e > 0.01 {
		t.Fatalf("restored error %v", e)
	}
	st := s.Stats()
	if st.Offloaded != 1 || st.Restored != 1 || st.Corrupted != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesVerified <= 0 || st.BytesVerified != st.BytesOffloaded {
		t.Fatalf("verified %d vs offloaded %d bytes", st.BytesVerified, st.BytesOffloaded)
	}
}

func TestOffloadRestoreMatchesFunctionalMethod(t *testing.T) {
	// The store must reconstruct exactly what the functional JPEG-ACT
	// method produces (same pipeline, same DQT) — the property the
	// recompute recovery path's bit-exactness rests on.
	ref := denseRef(2)
	orig := ref.T.Clone()
	m := compress.NewJPEGAct(quant.Fixed(quant.OptL()))
	want := m.Compress(orig, compress.KindConv, 0).Recovered

	s := NewStore(quant.OptL())
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	if tensor.MSE(want, ref.T) != 0 {
		t.Fatal("store and functional method disagree")
	}
}

func TestOffloadBRC(t *testing.T) {
	r := tensor.NewRNG(3)
	x := data.ActivationTensor(r, 1, 2, 16, 16, 0.5, 1.0)
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	wantMask := make([]bool, x.Elems())
	for i, v := range x.Data {
		wantMask[i] = v > 0
	}
	ref := &nn.ActRef{Name: "relu", Kind: compress.KindReLUToOther, T: x}
	s := NewStore(quant.OptH())
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if ref.T != nil || ref.Mask == nil {
		t.Fatal("BRC path must keep only the mask")
	}
	for i := range wantMask {
		if ref.Mask[i] != wantMask[i] {
			t.Fatalf("mask bit %d wrong", i)
		}
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadSparseAndSmall(t *testing.T) {
	r := tensor.NewRNG(4)
	// Small tensor (W < 8) falls to SFPR+ZVC even for the conv kind.
	x := tensor.New(1, 2, 4, 4)
	x.FillNormal(r, 0, 1)
	ref := &nn.ActRef{Name: "small", Kind: compress.KindConv, T: x}
	orig := x.Clone()
	s := NewStore(quant.OptH())
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	if e := tensor.L2Error(orig, ref.T); e > 0.05 {
		t.Fatalf("small tensor error %v", e)
	}
}

func TestOffloadErrors(t *testing.T) {
	s := NewStore(quant.OptL())
	ref := denseRef(5)
	if err := s.Restore(ref); !errors.Is(err, ErrNotStored) {
		t.Fatalf("restore before offload: %v", err)
	}
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Offload(ref); err == nil {
		t.Fatal("double offload accepted")
	}
	empty := &nn.ActRef{Name: "nil"}
	if err := s.Offload(empty); !errors.Is(err, ErrNotStored) {
		t.Fatalf("nil tensor offload: %v", err)
	}
}

// truncateOnce cuts the first Recv to a prefix, then passes through.
type truncateOnce struct{ fired bool }

func (c *truncateOnce) Send(b []byte) []byte { return b }
func (c *truncateOnce) Recv(b []byte) []byte {
	if c.fired {
		return b
	}
	c.fired = true
	return b[:len(b)/2]
}

func TestRestoreRetainsEntryOnError(t *testing.T) {
	// Regression for the lose-on-error bug: a failed restore (here, a
	// truncated transfer under PolicyFail) must leave the compressed host
	// copy intact, so the activation is not permanently destroyed.
	s := NewStore(quant.OptL())
	s.Channel = &truncateOnce{}
	ref := denseRef(6)
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	hostBytes := s.HostBytes()

	err := s.Restore(ref)
	if !errors.Is(err, frame.ErrTruncated) && !errors.Is(err, frame.ErrChecksum) {
		t.Fatalf("want truncation/checksum error, got %v", err)
	}
	if !strings.Contains(err.Error(), `restore "act"`) {
		t.Fatalf("error does not name the ref: %v", err)
	}
	if s.Stored() != 1 || s.HostBytes() != hostBytes {
		t.Fatalf("entry lost after failed restore: %d entries, %d bytes", s.Stored(), s.HostBytes())
	}
	if ref.T != nil {
		t.Fatal("failed restore must not attach a tensor")
	}
	if st := s.Stats(); st.Corrupted != 1 {
		t.Fatalf("corrupted count %d", st.Corrupted)
	}

	// The channel fault was transient; a second restore succeeds.
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	if ref.T == nil || s.Stored() != 0 {
		t.Fatal("second restore failed")
	}
}

func TestRestoreRetryPolicy(t *testing.T) {
	s := NewStore(quant.OptL())
	inj := faults.New(faults.Config{Seed: 7})
	s.Channel = inj
	s.Recovery = Recovery{Policy: PolicyRetry, MaxRetries: 3}
	ref := denseRef(7)
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	// One forced transient fault: the first re-read succeeds.
	inj.ForceNextRecv(1)
	if err := s.Restore(ref); err != nil {
		t.Fatalf("retry should have recovered: %v", err)
	}
	if st := s.Stats(); st.Corrupted != 1 || st.Retried != 1 || st.Restored != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRestoreRetryExhaustsOnPersistentFault(t *testing.T) {
	s := NewStore(quant.OptL())
	inj := faults.New(faults.Config{Seed: 8, OnSend: true})
	s.Channel = inj
	s.Recovery = Recovery{Policy: PolicyRetry, MaxRetries: 2}
	ref := denseRef(8)
	inj.ForceNextSend(1) // corrupt the host copy itself
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	err := s.Restore(ref)
	if !errors.Is(err, frame.ErrChecksum) {
		t.Fatalf("want checksum error, got %v", err)
	}
	if st := s.Stats(); st.Retried != 2 || st.Corrupted != 3 {
		t.Fatalf("stats %+v", st)
	}
	if s.Stored() != 1 {
		t.Fatal("entry lost after exhausted retries")
	}
}

func TestRestoreRecomputeHook(t *testing.T) {
	s := NewStore(quant.OptL())
	inj := faults.New(faults.Config{Seed: 9, OnSend: true})
	s.Channel = inj
	recomputed := 0
	s.Recovery = Recovery{
		Policy: PolicyRecompute,
		Recompute: func(ref *nn.ActRef) error {
			recomputed++
			ref.T = tensor.New(2, 4, 16, 16) // stand-in for a replayed forward
			return nil
		},
	}
	ref := denseRef(9)
	inj.ForceNextSend(1)
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatalf("recompute should have recovered: %v", err)
	}
	if recomputed != 1 {
		t.Fatalf("recompute hook ran %d times", recomputed)
	}
	if st := s.Stats(); st.Recomputed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if ref.T == nil || s.Stored() != 0 || s.HostBytes() != 0 {
		t.Fatal("store not drained after recompute")
	}
}

// recorder tags every Send and Recv with the buffer identity, in the
// order the transport touched it.
type recorder struct {
	sent  []*byte
	order []*byte
}

func (r *recorder) Send(b []byte) []byte {
	r.sent = append(r.sent, &b[0])
	return b
}
func (r *recorder) Recv(b []byte) []byte {
	r.order = append(r.order, &b[0])
	return b
}

func TestRestoreAllReverseOffloadOrder(t *testing.T) {
	rec := &recorder{}
	s := NewStore(quant.OptL())
	s.Channel = rec
	const n = 6
	refs := make([]*nn.ActRef, n)
	for i := range refs {
		refs[i] = denseRef(uint64(10 + i))
		if err := s.Offload(refs[i]); err != nil {
			t.Fatal(err)
		}
		seq, ok := s.Seq(refs[i])
		if !ok || seq != i {
			t.Fatalf("ref %d has seq %d (ok=%v)", i, seq, ok)
		}
	}
	// The Send side saw each entry's host buffer in offload order.
	sent := rec.sent
	if len(sent) != n {
		t.Fatalf("%d sends, want %d", len(sent), n)
	}
	if err := s.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	if len(rec.order) != n {
		t.Fatalf("%d transfers, want %d", len(rec.order), n)
	}
	for i := 0; i < n; i++ {
		if rec.order[i] != sent[n-1-i] {
			t.Fatalf("restore %d read offload %d's buffer; want reverse-offload order", i, n-1-i)
		}
	}
}

func TestEndToEndTrainingStepWithRealOffload(t *testing.T) {
	// Forward → offload all saved refs (float tensors freed) → restore
	// in reverse order → backward. The gradient flow must work on the
	// restored (lossy) activations exactly like the functional trainer.
	m := models.ResNet18(models.Scale{Width: 6, Blocks: 1}, 2, tensor.NewRNG(6))
	ds := data.NewClassification(data.ClassificationConfig{Classes: 2, Channels: 3, H: 16, W: 16, Seed: 7})
	x, labels := ds.Batch(4)

	out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
	loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}

	s := NewStore(quant.OptL())
	orig, comp, err := s.OffloadAll(m.Net.SavedRefs())
	if err != nil {
		t.Fatal(err)
	}
	if comp <= 0 || comp >= orig {
		t.Fatalf("offload footprint %d vs %d", comp, orig)
	}
	// Every dense saved ref must have released its tensor.
	for _, ref := range m.Net.SavedRefs() {
		if ref.T != nil && ref.Mask == nil {
			t.Fatalf("ref %q still resident", ref.Name)
		}
	}
	// Restore in reverse order, as the backward prefetcher would.
	refs := m.Net.SavedRefs()
	seen := map[*nn.ActRef]bool{}
	for i := len(refs) - 1; i >= 0; i-- {
		if seen[refs[i]] || refs[i].Mask != nil {
			continue
		}
		seen[refs[i]] = true
		if err := s.Restore(refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stored() != 0 {
		// BRC entries may remain; drain them.
		if err := s.RestoreAll(); err != nil {
			t.Fatal(err)
		}
	}
	dx := m.Net.Backward(grad)
	if nn.NaNGuard(dx) {
		t.Fatal("backward on restored activations produced NaN")
	}
	gotGrad := false
	for _, p := range m.Net.Params() {
		if p.Grad.MaxAbs() > 0 {
			gotGrad = true
		}
	}
	if !gotGrad {
		t.Fatal("no gradients after offloaded step")
	}
}
