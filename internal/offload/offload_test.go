package offload

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func denseRef(seed uint64) *nn.ActRef {
	r := tensor.NewRNG(seed)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	return &nn.ActRef{Name: "act", Kind: compress.KindConv, T: x}
}

func TestOffloadRestoreDense(t *testing.T) {
	s := NewStore(quant.OptL())
	ref := denseRef(1)
	orig := ref.T.Clone()
	origBytes := ref.T.Bytes()

	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if ref.T != nil {
		t.Fatal("tensor not released after offload")
	}
	if s.HostBytes <= 0 || s.HostBytes >= origBytes {
		t.Fatalf("host bytes %d vs original %d", s.HostBytes, origBytes)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	if ref.T == nil || ref.T.Shape != orig.Shape {
		t.Fatal("restore failed")
	}
	if s.HostBytes != 0 || s.Stored() != 0 {
		t.Fatalf("store not drained: %d bytes, %d entries", s.HostBytes, s.Stored())
	}
	if e := tensor.L2Error(orig, ref.T); e > 0.01 {
		t.Fatalf("restored error %v", e)
	}
}

func TestOffloadRestoreMatchesFunctionalMethod(t *testing.T) {
	// The store must reconstruct exactly what the functional JPEG-ACT
	// method produces (same pipeline, same DQT).
	ref := denseRef(2)
	orig := ref.T.Clone()
	m := compress.NewJPEGAct(quant.Fixed(quant.OptL()))
	want := m.Compress(orig, compress.KindConv, 0).Recovered

	s := NewStore(quant.OptL())
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	if tensor.MSE(want, ref.T) != 0 {
		t.Fatal("store and functional method disagree")
	}
}

func TestOffloadBRC(t *testing.T) {
	r := tensor.NewRNG(3)
	x := data.ActivationTensor(r, 1, 2, 16, 16, 0.5, 1.0)
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	wantMask := make([]bool, x.Elems())
	for i, v := range x.Data {
		wantMask[i] = v > 0
	}
	ref := &nn.ActRef{Name: "relu", Kind: compress.KindReLUToOther, T: x}
	s := NewStore(quant.OptH())
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if ref.T != nil || ref.Mask == nil {
		t.Fatal("BRC path must keep only the mask")
	}
	for i := range wantMask {
		if ref.Mask[i] != wantMask[i] {
			t.Fatalf("mask bit %d wrong", i)
		}
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadSparseAndSmall(t *testing.T) {
	r := tensor.NewRNG(4)
	// Small tensor (W < 8) falls to SFPR+ZVC even for the conv kind.
	x := tensor.New(1, 2, 4, 4)
	x.FillNormal(r, 0, 1)
	ref := &nn.ActRef{Name: "small", Kind: compress.KindConv, T: x}
	orig := x.Clone()
	s := NewStore(quant.OptH())
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	if e := tensor.L2Error(orig, ref.T); e > 0.05 {
		t.Fatalf("small tensor error %v", e)
	}
}

func TestOffloadErrors(t *testing.T) {
	s := NewStore(quant.OptL())
	ref := denseRef(5)
	if err := s.Restore(ref); err != ErrNotStored {
		t.Fatalf("restore before offload: %v", err)
	}
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Offload(ref); err == nil {
		t.Fatal("double offload accepted")
	}
	empty := &nn.ActRef{Name: "nil"}
	if err := s.Offload(empty); err != ErrNotStored {
		t.Fatalf("nil tensor offload: %v", err)
	}
}

func TestEndToEndTrainingStepWithRealOffload(t *testing.T) {
	// Forward → offload all saved refs (float tensors freed) → restore
	// in reverse order → backward. The gradient flow must work on the
	// restored (lossy) activations exactly like the functional trainer.
	m := models.ResNet18(models.Scale{Width: 6, Blocks: 1}, 2, tensor.NewRNG(6))
	ds := data.NewClassification(data.ClassificationConfig{Classes: 2, Channels: 3, H: 16, W: 16, Seed: 7})
	x, labels := ds.Batch(4)

	out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
	loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}

	s := NewStore(quant.OptL())
	orig, comp, err := s.OffloadAll(m.Net.SavedRefs())
	if err != nil {
		t.Fatal(err)
	}
	if comp <= 0 || comp >= orig {
		t.Fatalf("offload footprint %d vs %d", comp, orig)
	}
	// Every dense saved ref must have released its tensor.
	for _, ref := range m.Net.SavedRefs() {
		if ref.T != nil && ref.Mask == nil {
			t.Fatalf("ref %q still resident", ref.Name)
		}
	}
	// Restore in reverse order, as the backward prefetcher would.
	refs := m.Net.SavedRefs()
	seen := map[*nn.ActRef]bool{}
	for i := len(refs) - 1; i >= 0; i-- {
		if seen[refs[i]] || refs[i].Mask != nil {
			continue
		}
		seen[refs[i]] = true
		if err := s.Restore(refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stored() != 0 {
		// BRC entries may remain; drain them.
		if err := s.RestoreAll(); err != nil {
			t.Fatal(err)
		}
	}
	dx := m.Net.Backward(grad)
	if nn.NaNGuard(dx) {
		t.Fatal("backward on restored activations produced NaN")
	}
	gotGrad := false
	for _, p := range m.Net.Params() {
		if p.Grad.MaxAbs() > 0 {
			gotGrad = true
		}
	}
	if !gotGrad {
		t.Fatal("no gradients after offloaded step")
	}
}
