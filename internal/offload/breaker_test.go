package offload

import (
	"errors"
	"sync"
	"testing"

	"jpegact/internal/frame"
	"jpegact/internal/nn"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// flakyWire is a Transport whose wire can be declared dead or alive:
// while dead every op fails with ErrStoreUnavailable (the whole-op
// verdict a real NetClient reports after its retry schedule); while
// alive it is a plain in-memory store. It stands in for a NetClient so
// breaker tests need no sockets.
type flakyWire struct {
	mu   sync.Mutex
	dead bool
	bufs map[uint64][]byte
	puts int // wire puts attempted (dead or alive)
}

func newFlakyWire() *flakyWire { return &flakyWire{bufs: map[uint64][]byte{}} }

func (w *flakyWire) setDead(d bool) {
	w.mu.Lock()
	w.dead = d
	w.mu.Unlock()
}

func (w *flakyWire) wirePuts() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.puts
}

func (w *flakyWire) Put(key uint64, data []byte, _ transport.Retry) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.puts++
	if w.dead {
		return 0, transport.ErrStoreUnavailable
	}
	w.bufs[key] = append([]byte(nil), data...)
	return len(data), nil
}

func (w *flakyWire) Get(key uint64, _ transport.Retry, _ bool) (*frame.Frame, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return nil, transport.ErrStoreUnavailable
	}
	b, ok := w.bufs[key]
	if !ok {
		return nil, transport.ErrNotFound
	}
	return frame.DecodeFrame(b)
}

func (w *flakyWire) Delete(key uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.bufs, key)
	return nil
}

func (w *flakyWire) Close() error { return nil }

func breakerStore(wire *flakyWire, cfg BreakerConfig) *Store {
	s := NewStore(quant.OptL())
	s.Transport = wire
	s.Breaker = cfg
	return s
}

// healthyReconstruction runs seed's tensor through a default in-process
// store — the reference a degraded reconstruction must match bit-for-bit.
func healthyReconstruction(t *testing.T, seed uint64) *tensor.Tensor {
	t.Helper()
	ref := denseRef(seed)
	s := NewStore(quant.OptL())
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(ref); err != nil {
		t.Fatal(err)
	}
	return ref.T
}

// TestBreakerTripsAndDegrades: with the wire dead, the first
// FailureThreshold-1 offloads fail outright (the recovery policy's
// domain); the one that crosses the threshold — and everything after —
// degrades to the local fallback and succeeds. Restores of degraded
// frames reconstruct the exact tensor a healthy run would, and never
// touch the wire.
func TestBreakerTripsAndDegrades(t *testing.T) {
	wire := newFlakyWire()
	s := breakerStore(wire, BreakerConfig{FailureThreshold: 3, ProbeAfter: 100})
	wire.setDead(true)

	for i := 0; i < 2; i++ {
		err := s.Offload(denseRef(uint64(10 + i)))
		if !errors.Is(err, ErrStoreUnavailable) {
			t.Fatalf("pre-threshold offload %d: want ErrStoreUnavailable, got %v", i, err)
		}
	}
	if s.Tripped() {
		t.Fatal("breaker open before the threshold")
	}

	// Third failure crosses the threshold: this op itself degrades.
	ref := denseRef(42)
	want := healthyReconstruction(t, 42)
	if err := s.Offload(ref); err != nil {
		t.Fatalf("threshold-crossing offload should degrade, not fail: %v", err)
	}
	if !s.Tripped() {
		t.Fatal("breaker not open after threshold failures")
	}
	if got := s.Stats().Degraded; got != 1 {
		t.Fatalf("Degraded = %d, want 1", got)
	}

	// Further offloads skip the wire entirely.
	before := wire.wirePuts()
	ref2 := denseRef(43)
	if err := s.Offload(ref2); err != nil {
		t.Fatal(err)
	}
	if wire.wirePuts() != before {
		t.Fatal("open breaker still touched the wire")
	}

	// Degraded restore: bit-identical to the healthy-path reconstruction.
	if err := s.Restore(ref); err != nil {
		t.Fatalf("restore of degraded frame: %v", err)
	}
	if tensor.MSE(want, ref.T) != 0 {
		t.Fatal("degraded path reconstruction differs from healthy path")
	}
	if err := s.Restore(ref2); err != nil {
		t.Fatal(err)
	}
	if s.Stored() != 0 || s.HostBytes() != 0 {
		t.Fatalf("store not drained: %d entries, %d bytes", s.Stored(), s.HostBytes())
	}
}

// TestBreakerProbesAndRecovers: after ProbeAfter degraded ops the
// breaker half-opens and re-tries the wire; once the store is back the
// probe succeeds, the breaker closes, and traffic returns to the wire.
// Frames stored degraded remain readable (they are pinned to the
// fallback).
func TestBreakerProbesAndRecovers(t *testing.T) {
	wire := newFlakyWire()
	s := breakerStore(wire, BreakerConfig{FailureThreshold: 1, ProbeAfter: 2})
	wire.setDead(true)

	// First failure trips immediately (threshold 1) and degrades.
	r1 := denseRef(1)
	if err := s.Offload(r1); err != nil {
		t.Fatal(err)
	}
	if !s.Tripped() {
		t.Fatal("threshold 1 should trip on the first failure")
	}
	// Two more ops serve probation (still degraded, wire untouched).
	r2, r3 := denseRef(2), denseRef(3)
	before := wire.wirePuts()
	if err := s.Offload(r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Offload(r3); err != nil {
		t.Fatal(err)
	}
	if wire.wirePuts() != before {
		t.Fatal("probation ops touched the wire")
	}

	// Server comes back; the next op is the half-open probe and wins.
	wire.setDead(false)
	r4 := denseRef(4)
	if err := s.Offload(r4); err != nil {
		t.Fatal(err)
	}
	if s.Tripped() {
		t.Fatal("breaker still open after a successful probe")
	}
	if wire.wirePuts() != before+1 {
		t.Fatalf("probe did not reach the wire: %d puts", wire.wirePuts())
	}

	// Every frame restores from wherever it lives: r1..r3 from the
	// fallback, r4 from the wire.
	for _, ref := range []*nn.ActRef{r1, r2, r3, r4} {
		if err := s.Restore(ref); err != nil {
			t.Fatalf("restore: %v", err)
		}
		if ref.T == nil {
			t.Fatal("restore left no tensor")
		}
	}
	if s.Stored() != 0 {
		t.Fatalf("%d entries left", s.Stored())
	}
	if got := s.Stats().Degraded; got < 3 {
		t.Fatalf("Degraded = %d, want >= 3", got)
	}
}

// TestBreakerFailedProbeRestartsProbation: a probe against a
// still-dead store re-opens the breaker and degrades the probing op.
func TestBreakerFailedProbeRestartsProbation(t *testing.T) {
	wire := newFlakyWire()
	s := breakerStore(wire, BreakerConfig{FailureThreshold: 1, ProbeAfter: 1})
	wire.setDead(true)

	if err := s.Offload(denseRef(1)); err != nil { // trips, degrades
		t.Fatal(err)
	}
	if err := s.Offload(denseRef(2)); err != nil { // probation op
		t.Fatal(err)
	}
	before := wire.wirePuts()
	if err := s.Offload(denseRef(3)); err != nil { // probe: fails, degrades
		t.Fatalf("failed probe must degrade, not error: %v", err)
	}
	if wire.wirePuts() != before+1 {
		t.Fatal("probe did not reach the wire")
	}
	if !s.Tripped() {
		t.Fatal("breaker closed after a failed probe")
	}
	if got := s.Stats().Degraded; got != 3 {
		t.Fatalf("Degraded = %d, want 3", got)
	}
}

// TestBreakerDisabled: with the breaker off, wire failures surface on
// every op and nothing degrades.
func TestBreakerDisabled(t *testing.T) {
	wire := newFlakyWire()
	s := breakerStore(wire, BreakerConfig{Disabled: true})
	wire.setDead(true)
	for i := 0; i < 5; i++ {
		if err := s.Offload(denseRef(uint64(i))); !errors.Is(err, ErrStoreUnavailable) {
			t.Fatalf("op %d: want ErrStoreUnavailable, got %v", i, err)
		}
	}
	if got := s.Stats().Degraded; got != 0 {
		t.Fatalf("Degraded = %d with breaker disabled", got)
	}
	if s.Tripped() {
		t.Fatal("disabled breaker reports tripped")
	}
}

// TestBreakerGetFailureAdvancesBreaker: a GET that finds the store dead
// surfaces its error (only recompute can rebuild those bytes) but
// counts toward the threshold, so the re-offloads that follow degrade.
func TestBreakerGetFailureAdvancesBreaker(t *testing.T) {
	wire := newFlakyWire()
	s := breakerStore(wire, BreakerConfig{FailureThreshold: 1, ProbeAfter: 100})
	ref := denseRef(7)
	if err := s.Offload(ref); err != nil {
		t.Fatal(err)
	}
	wire.setDead(true)
	if err := s.Restore(ref); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("want ErrStoreUnavailable from restore, got %v", err)
	}
	if !s.Tripped() {
		t.Fatal("get failure did not advance the breaker")
	}
	// The entry is retained (recovery contract) and the next offload
	// degrades instead of failing.
	if s.Stored() != 1 {
		t.Fatalf("entry not retained after failed restore: %d", s.Stored())
	}
	if err := s.Offload(denseRef(8)); err != nil {
		t.Fatalf("offload after tripped-by-get: %v", err)
	}
	if got := s.Stats().Degraded; got == 0 {
		t.Fatal("no degraded ops after trip")
	}
}
