package netstore

import (
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"jpegact/internal/frame"
	"jpegact/internal/offload/transport"
	"jpegact/internal/tensor"
)

// startServer brings up a server on a unix socket in a test temp dir and
// returns it with a dialer for clients.
func startServer(t *testing.T, cfg Config) (*Server, transport.Dialer) {
	t.Helper()
	srv := New(cfg)
	addr := "unix:" + filepath.Join(t.TempDir(), "store.sock")
	ln, err := srv.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	dial, err := transport.DialAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	return srv, dial
}

func testFrame(t *testing.T, fill byte) []byte {
	t.Helper()
	f := &frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{fill, fill, fill, fill},
	}
	return frame.EncodeFrame(f)
}

func TestServerRoundTrips(t *testing.T) {
	srv, dial := startServer(t, Config{})
	c := transport.NewNetClient(dial, nil)
	defer c.Close()

	buf := testFrame(t, 7)
	if n, err := c.Put(42, buf, transport.Retry{}); err != nil || n != len(buf) {
		t.Fatalf("put: n=%d err=%v", n, err)
	}
	f, err := c.Get(42, transport.Retry{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Codec != frame.CodecZVC || len(f.Payload) != 4 || f.Payload[0] != 7 {
		t.Fatalf("frame %+v", f)
	}
	// Same bytes via the coefficient-serving op, counted separately.
	if _, err := c.Get(42, transport.Retry{}, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(42); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(42, transport.Retry{}, false); !errors.Is(err, transport.ErrNotFound) {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
	// Deleting again is tolerated (NotFound maps to success).
	if err := c.Delete(42); err != nil {
		t.Fatal(err)
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Offloaded != 1 || st.Restored != 2 || st.CoefRestores != 1 {
		t.Fatalf("server stats %+v", st)
	}
	if got := srv.Entries(); got != 0 {
		t.Fatalf("%d entries resident after delete", got)
	}
}

func TestServerShardsBalance(t *testing.T) {
	srv, dial := startServer(t, Config{Shards: 4})
	c := transport.NewNetClient(dial, nil)
	defer c.Close()
	buf := testFrame(t, 1)
	const n = 64
	for i := 0; i < n; i++ {
		// Sequence-number keys with a client base in the high bits — the
		// exact key shape the offload store produces.
		key := uint64(3)<<32 | uint64(i)
		if _, err := c.Put(key, buf, transport.Retry{}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Entries() != n {
		t.Fatalf("%d entries, want %d", srv.Entries(), n)
	}
	for i, cnt := range srv.ShardEntries() {
		if cnt == 0 {
			t.Fatalf("shard %d empty: %v — key mixing is not spreading sequential keys", i, srv.ShardEntries())
		}
	}
	if srv.HostBytes() != int64(n*len(buf)) {
		t.Fatalf("resident bytes %d, want %d", srv.HostBytes(), n*len(buf))
	}
}

// cutConn closes the connection after writing half of the first frame —
// a connection drop mid-frame.
type cutConn struct {
	net.Conn
	remaining int
}

func (c *cutConn) Write(b []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, fmt.Errorf("connection reset mid-frame")
	}
	if len(b) > c.remaining {
		n, _ := c.Conn.Write(b[:c.remaining])
		c.remaining = 0
		c.Conn.Close()
		return n, fmt.Errorf("connection reset mid-frame")
	}
	c.remaining -= len(b)
	return c.Conn.Write(b)
}

func TestConnectionDropMidFrameRecoversByReconnect(t *testing.T) {
	_, dial := startServer(t, Config{})
	buf := testFrame(t, 9)
	first := true
	var counters transport.Counters
	faulty := transport.Dialer(func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			// Die halfway through the first PUT's frame body.
			return &cutConn{Conn: conn, remaining: 16 + len(buf)/2}, nil
		}
		return conn, nil
	})
	c := transport.NewNetClient(faulty, &counters)
	defer c.Close()
	if _, err := c.Put(5, buf, transport.Retry{Attempts: 3}); err != nil {
		t.Fatalf("reconnect+resend should absorb a mid-frame drop: %v", err)
	}
	f, err := c.Get(5, transport.Retry{}, false)
	if err != nil || f.Payload[0] != 9 {
		t.Fatalf("get after recovery: %v %+v", err, f)
	}
	s := counters.Snapshot()
	if s.Reconnects != 1 || s.Retried != 1 || s.Corrupted != 1 {
		t.Fatalf("counters %+v", s)
	}
}

// flipConn corrupts one byte of the first frame body it carries.
type flipConn struct {
	net.Conn
	skip    int // bytes to pass through before the flip
	flipped bool
}

func (c *flipConn) Write(b []byte) (int, error) {
	if !c.flipped {
		if len(b) > c.skip {
			mut := append([]byte(nil), b...)
			mut[c.skip] ^= 0x40
			c.flipped = true
			return c.Conn.Write(mut)
		}
		c.skip -= len(b)
	}
	return c.Conn.Write(b)
}

func TestCorruptPayloadRefusedAndResent(t *testing.T) {
	srv, dial := startServer(t, Config{})
	buf := testFrame(t, 3)
	var counters transport.Counters
	once := true
	faulty := transport.Dialer(func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		if once {
			once = false
			// Flip a byte inside the frame payload (past the 16-byte op
			// header and the frame's own 36-byte header).
			return &flipConn{Conn: conn, skip: 16 + len(buf) - 2}, nil
		}
		return conn, nil
	})
	c := transport.NewNetClient(faulty, &counters)
	defer c.Close()
	if _, err := c.Put(8, buf, transport.Retry{Attempts: 2}); err != nil {
		t.Fatalf("resend should recover a CRC-corrupt payload: %v", err)
	}
	// The refused frame never became store state; the resent one did.
	if srv.Entries() != 1 {
		t.Fatalf("%d entries", srv.Entries())
	}
	if got := srv.Snapshot(); got.Corrupted != 1 {
		t.Fatalf("server should have counted the refused frame: %+v", got)
	}
	f, err := c.Get(8, transport.Retry{}, false)
	if err != nil || f.Payload[0] != 3 {
		t.Fatalf("get after resend: %v %+v", err, f)
	}
	s := counters.Snapshot()
	if s.Corrupted != 1 || s.Retried != 1 {
		t.Fatalf("client counters %+v", s)
	}
}

func TestTruncatedOpHeaderPoisonsConnection(t *testing.T) {
	_, dial := startServer(t, Config{})
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half an op header, then half-close: the server must answer
	// StatusBadRequest and drop the connection, never hang or panic.
	if _, err := conn.Write([]byte{'J', 'Q', 1, 2, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.(*net.UnixConn).CloseWrite()
	status, _, err := transport.ReadResponse(conn)
	if err != nil {
		t.Fatalf("want a BadRequest response before close, got %v", err)
	}
	if status != transport.StatusBadRequest {
		t.Fatalf("status %d", status)
	}
	// The stream is poisoned: the server closes after answering.
	if _, _, err := transport.ReadResponse(conn); !errors.Is(err, transport.ErrWire) {
		t.Fatalf("want closed connection, got %v", err)
	}
}

func TestConcurrentClientsDisjointKeySpaces(t *testing.T) {
	srv, dial := startServer(t, Config{Shards: 8})
	const clients, perClient = 4, 16
	errc := make(chan error, clients)
	for id := 0; id < clients; id++ {
		go func(id int) {
			c := transport.NewNetClient(dial, nil)
			defer c.Close()
			buf := testFrame(t, byte(id))
			base := uint64(id) << 32
			for i := 0; i < perClient; i++ {
				if _, err := c.Put(base|uint64(i), buf, transport.Retry{}); err != nil {
					errc <- err
					return
				}
			}
			for i := perClient - 1; i >= 0; i-- {
				f, err := c.Get(base|uint64(i), transport.Retry{}, false)
				if err != nil {
					errc <- err
					return
				}
				if f.Payload[0] != byte(id) {
					errc <- fmt.Errorf("client %d read another client's frame", id)
					return
				}
				if err := c.Delete(base | uint64(i)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(id)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Entries() != 0 {
		t.Fatalf("%d entries left resident", srv.Entries())
	}
	st := srv.Snapshot()
	if st.Offloaded != clients*perClient || st.Restored != clients*perClient {
		t.Fatalf("server stats %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, dial := startServer(t, Config{Shards: 2})
	c := transport.NewNetClient(dial, nil)
	defer c.Close()
	buf := testFrame(t, 1)
	if _, err := c.Put(1, buf, transport.Retry{}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"jpegact_actstore_offloaded_total 1",
		fmt.Sprintf("jpegact_actstore_resident_bytes %d", len(buf)),
		"jpegact_actstore_entries 1",
		"jpegact_actstore_shards 2",
		"# TYPE jpegact_actstore_offloaded_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}
