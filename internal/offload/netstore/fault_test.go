package netstore

import (
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jpegact/internal/frame"
	"jpegact/internal/offload/transport"
	"jpegact/internal/splitmix"
)

// killPrimaries wipes shards until some key in [0, n) has lost its
// primary copy, and returns such a key. With Replicas > 1 the replica
// chain still holds the frame.
func killPrimary(t *testing.T, srv *Server, n int) uint64 {
	t.Helper()
	k := uint64(len(srv.shards))
	for key := uint64(0); key < uint64(n); key++ {
		shardIdx := int(splitmix.Mix(key) % k)
		srv.KillShard(shardIdx)
		sh := srv.shards[shardIdx]
		sh.mu.Lock()
		_, still := sh.entries[key]
		sh.mu.Unlock()
		if !still {
			return key
		}
	}
	t.Fatal("no key lost its primary")
	return 0
}

// TestReplicatedPutSurvivesKilledShard: with 2 replicas across 4
// shards, wiping the primary shard of a key must not lose the frame —
// the GET fails over to the replica, counts a ReplicaRead, and
// read-repair restores the killed shard's copy.
func TestReplicatedPutSurvivesKilledShard(t *testing.T) {
	srv, dial := startServer(t, Config{Shards: 4, Replicas: 2})
	c := transport.NewNetClient(dial, nil)
	defer c.Close()

	const n = 16
	buf := testFrame(t, 5)
	for i := 0; i < n; i++ {
		if _, err := c.Put(uint64(i), buf, transport.Retry{}); err != nil {
			t.Fatal(err)
		}
	}
	// Every frame is resident twice.
	if got := srv.Entries(); got != 2*n {
		t.Fatalf("%d resident entries, want %d (2 replicas x %d keys)", got, 2*n, n)
	}

	key := killPrimary(t, srv, n)
	f, err := c.Get(key, transport.Retry{}, false)
	if err != nil {
		t.Fatalf("get after killed primary: %v", err)
	}
	if f.Codec != frame.CodecZVC || f.Payload[0] != 5 {
		t.Fatalf("failover returned wrong frame: %+v", f)
	}
	if got := srv.Snapshot().ReplicaReads; got == 0 {
		t.Fatal("failover read was not counted in ReplicaReads")
	}

	// Read-repair re-installed the primary copy: a second GET for the
	// same key is served by the primary again.
	before := srv.Snapshot().ReplicaReads
	if _, err := c.Get(key, transport.Retry{}, false); err != nil {
		t.Fatal(err)
	}
	if got := srv.Snapshot().ReplicaReads; got != before {
		t.Fatalf("read-repair did not restore the primary: ReplicaReads went %d -> %d", before, got)
	}
}

// TestSingleReplicaLosesKilledShard pins the contrast: without
// replication, killing a shard loses its frames for real.
func TestSingleReplicaLosesKilledShard(t *testing.T) {
	srv, dial := startServer(t, Config{Shards: 4, Replicas: 1})
	c := transport.NewNetClient(dial, nil)
	defer c.Close()
	buf := testFrame(t, 2)
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := c.Put(uint64(i), buf, transport.Retry{}); err != nil {
			t.Fatal(err)
		}
	}
	key := killPrimary(t, srv, n)
	if _, err := c.Get(key, transport.Retry{}, false); !errors.Is(err, transport.ErrNotFound) {
		t.Fatalf("want ErrNotFound after unreplicated shard kill, got %v", err)
	}
}

// TestReplicatedDeleteRemovesAllCopies: delete must clear the whole
// replica set, or a later GET would resurrect stale bytes.
func TestReplicatedDeleteRemovesAllCopies(t *testing.T) {
	srv, dial := startServer(t, Config{Shards: 4, Replicas: 3})
	c := transport.NewNetClient(dial, nil)
	defer c.Close()
	buf := testFrame(t, 4)
	if _, err := c.Put(9, buf, transport.Retry{}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Entries(); got != 3 {
		t.Fatalf("%d copies resident, want 3", got)
	}
	if err := c.Delete(9); err != nil {
		t.Fatal(err)
	}
	if got := srv.Entries(); got != 0 {
		t.Fatalf("%d copies survived delete", got)
	}
	if got := srv.HostBytes(); got != 0 {
		t.Fatalf("%d resident bytes after delete", got)
	}
	if _, err := c.Get(9, transport.Retry{}, false); !errors.Is(err, transport.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

// TestReplicasClampedToShards: asking for more copies than shards must
// degrade to shard-count copies, not duplicate within a shard or panic.
func TestReplicasClampedToShards(t *testing.T) {
	srv, dial := startServer(t, Config{Shards: 2, Replicas: 8})
	c := transport.NewNetClient(dial, nil)
	defer c.Close()
	if _, err := c.Put(1, testFrame(t, 1), transport.Retry{}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Entries(); got != 2 {
		t.Fatalf("%d copies, want 2 (clamped to shard count)", got)
	}
}

// TestShutdownDrainsInFlightResponses: a Shutdown issued while requests
// are streaming must (a) refuse new connections immediately, and (b)
// let every already-submitted request complete with a real response or
// a clean wire error — never a hang and never a torn response.
func TestShutdownDrainsInFlightResponses(t *testing.T) {
	srv := New(Config{Shards: 2})
	addr := "unix:" + filepath.Join(t.TempDir(), "store.sock")
	ln, err := srv.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	dial, err := transport.DialAddr(addr)
	if err != nil {
		t.Fatal(err)
	}

	buf := testFrame(t, 6)
	const workers = 4
	var completed sync.WaitGroup
	done := make(chan struct{})
	var mu sync.Mutex
	oks := 0
	for w := 0; w < workers; w++ {
		completed.Add(1)
		go func(w int) {
			defer completed.Done()
			c := transport.NewNetClient(dial, nil)
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := uint64(w)<<32 | uint64(i)
				_, err := c.Put(key, buf, transport.Retry{})
				if err == nil {
					_, err = c.Get(key, transport.Retry{}, false)
				}
				if err != nil {
					// During/after drain the only acceptable failures are
					// clean connection-level ones, which the client types
					// as wire errors (or a refused dial).
					if errors.Is(err, transport.ErrWire) {
						return
					}
					var ne net.Error
					if errors.As(err, &ne) || errors.Is(err, transport.ErrStoreUnavailable) {
						return
					}
					t.Errorf("worker %d: unclean failure during drain: %v", w, err)
					return
				}
				mu.Lock()
				oks++
				mu.Unlock()
			}
		}(w)
	}

	// Let traffic flow, then pull the plug.
	for {
		mu.Lock()
		n := oks
		mu.Unlock()
		if n >= 8 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	close(done)
	completed.Wait()

	// New connections must be refused once draining began.
	if conn, err := dial(); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after shutdown")
	}
	mu.Lock()
	n := oks
	mu.Unlock()
	if n == 0 {
		t.Fatal("no operations completed before drain — test proved nothing")
	}
}

// TestShutdownIdempotentAndServeReturnsNil: Serve must return nil (not
// an accept error) when the listener dies because of a drain, and a
// second Shutdown/Close is a no-op.
func TestShutdownIdempotentAndServeReturnsNil(t *testing.T) {
	srv := New(Config{})
	addr := "unix:" + filepath.Join(t.TempDir(), "store.sock")
	ln, err := srv.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleUnixSocketCleanedUp: a socket file left behind by a killed
// process must not block a restarted server from binding the same
// address — the restart-in-place move the chaos harness depends on.
func TestStaleUnixSocketCleanedUp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.sock")
	addr := "unix:" + path

	first := New(Config{})
	ln, err := first.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate SIGKILL: close the raw listener without unlinking the
	// socket file (Go's net package unlinks on Close, so suppress it).
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close()

	second := New(Config{})
	ln2, err := second.Listen(addr)
	if err != nil {
		t.Fatalf("restart over stale socket failed: %v", err)
	}
	go second.Serve(ln2)
	defer second.Close()

	dial, err := transport.DialAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := transport.NewNetClient(dial, nil)
	defer c.Close()
	if _, err := c.Put(1, testFrame(t, 1), transport.Retry{}); err != nil {
		t.Fatalf("restarted server not serving: %v", err)
	}
}
