package netstore

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"jpegact/internal/frame"
	"jpegact/internal/offload/transport"
	"jpegact/internal/tensor"
)

// FuzzNetstoreRequest feeds arbitrary bytes through the server's request
// decode and dispatch path — the exact surface a hostile or damaged
// client can reach. The decoder must never panic, never allocate past
// the wire cap, and every decoded request must produce a well-formed
// response; PUT bodies that fail frame validation must never become
// store state.
func FuzzNetstoreRequest(f *testing.F) {
	fr := &frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{1, 2, 3, 4},
	}
	valid := frame.EncodeFrame(fr)

	var put, get, del, stats bytes.Buffer
	transport.WriteRequest(&put, transport.OpPut, 7, valid)
	transport.WriteRequest(&get, transport.OpGetCoef, 7, nil)
	transport.WriteRequest(&del, transport.OpDelete, 7, nil)
	transport.WriteRequest(&stats, transport.OpStats, 0, nil)
	f.Add(put.Bytes())
	f.Add(append(put.Bytes(), get.Bytes()...))
	f.Add(del.Bytes())
	f.Add(stats.Bytes())
	f.Add(put.Bytes()[:len(put.Bytes())/2]) // cut mid-frame
	f.Add(put.Bytes()[:9])                  // truncated op header
	f.Add([]byte{'J', 'Q', 99, 1})          // bad version
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		srv := New(Config{Shards: 2})
		r := bytes.NewReader(raw)
		for {
			req, err := transport.ReadRequest(r)
			if err != nil {
				// io.EOF is a clean end-of-stream; anything else must be
				// the typed wire error, which poisons the stream.
				if err != io.EOF && !errors.Is(err, transport.ErrWire) {
					t.Fatalf("untyped decode error: %v", err)
				}
				break
			}
			status, body := srv.handleRequest(req)
			if status == transport.StatusOK && (req.Op == transport.OpGet || req.Op == transport.OpGetCoef) {
				if _, err := frame.DecodeFrame(body); err != nil {
					t.Fatalf("server served an invalid frame: %v", err)
				}
			}
		}
		// Whatever got stored must decode: corrupt PUTs are refused at the
		// door, so resident state is valid frames only.
		for _, sh := range srv.shards {
			for _, b := range sh.entries {
				if _, err := frame.DecodeFrame(b); err != nil {
					t.Fatalf("corrupt bytes became store state: %v", err)
				}
			}
		}
	})
}
