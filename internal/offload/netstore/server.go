// Package netstore is the server side of the networked activation
// store: a TCP/unix-socket service that N training or inference client
// processes share concurrently. It speaks the length-prefixed wire
// protocol of internal/offload/transport (frame bytes plus a small op
// header), shards entries across K in-memory backends by key hash, and
// serves PR 6's quantized-coefficient frames to compressed-domain
// consumers without ever inverse-transforming — the store is the
// serving boundary the ROADMAP's "one compressed-activation cache,
// heavy concurrent traffic" north star asks for.
//
// Responsibilities per connection are split across two goroutines: a
// reader that decodes requests and executes the (cheap, sharded) store
// operation, and a writer that streams responses back, decoupled by a
// bounded queue whose byte budget reuses the offload engine's
// InFlightBytes notion — when a slow client stops draining responses,
// the reader stops reading and TCP backpressure does the rest.
//
// Integrity: PUT bodies are CRC-validated before they are stored (a
// frame damaged in flight is refused with StatusCorrupt and the client
// resends), and GET responses are re-validated client-side, so a bad
// link can delay traffic but never corrupt the store or a consumer.
package netstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jpegact/internal/frame"
	"jpegact/internal/offload/transport"
	"jpegact/internal/splitmix"
)

func newBufReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, 64<<10) }
func newBufWriter(c net.Conn) *bufio.Writer { return bufio.NewWriterSize(c, 64<<10) }

// Config sizes the server.
type Config struct {
	// Shards is the number of independent in-memory store backends keys
	// are hashed across (<= 0 uses DefaultShards). More shards means
	// less lock contention between concurrent clients.
	Shards int
	// Replicas is how many distinct shards every PUT lands on (<= 1
	// stores a single copy). Reads try the primary shard first and fail
	// over to the replicas — counted in ReplicaReads, with read-repair
	// re-installing the frame into any shard that lost it — so a killed
	// shard loses no frames as long as one replica survives. Clamped to
	// Shards.
	Replicas int
	// InFlightBytes bounds the response bytes queued to any one
	// connection's writer (<= 0 uses DefaultInFlightBytes). The head
	// response is always admitted so one oversized frame cannot
	// deadlock a connection — the same progress rule as the offload
	// engine's encode budget.
	InFlightBytes int
	// RespDelay, when positive, injects a fixed service latency into
	// every response: the due time is stamped when the request is
	// *executed*, and the connection's writer holds each response until
	// its due time passes. Pipelined requests therefore overlap their
	// delays (k requests in flight cost ~one delay), while a
	// stop-and-wait client pays the delay once per op — exactly the
	// round-trip structure the pipelining benchmarks need to measure
	// deterministically, without a real network.
	RespDelay time.Duration
	// Logf, when set, receives connection-lifecycle and error lines.
	Logf func(format string, args ...any)
}

// DefaultShards is the shard count when Config leaves it zero.
const DefaultShards = 4

// DefaultInFlightBytes is the per-connection response budget when
// Config leaves it zero.
const DefaultInFlightBytes = 4 << 20

// shard is one independent backend: a mutex-guarded key→frame-bytes map.
type shard struct {
	mu      sync.Mutex
	entries map[uint64][]byte
	bytes   int64
}

// Server is the sharded activation-store service.
type Server struct {
	cfg      Config
	shards   []*shard
	counters transport.Counters

	conns   atomic.Int64  // currently open connections
	accepts atomic.Uint64 // connections accepted over the lifetime
	badReqs atomic.Uint64 // requests refused with StatusBadRequest

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	open      map[net.Conn]struct{}
	closed    bool
	draining  bool
	wg        sync.WaitGroup
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Shards {
		cfg.Replicas = cfg.Shards
	}
	if cfg.InFlightBytes <= 0 {
		cfg.InFlightBytes = DefaultInFlightBytes
	}
	s := &Server{
		cfg:       cfg,
		shards:    make([]*shard, cfg.Shards),
		listeners: map[net.Listener]struct{}{},
		open:      map[net.Conn]struct{}{},
	}
	for i := range s.shards {
		s.shards[i] = &shard{entries: map[uint64][]byte{}}
	}
	return s
}

// replicaSet returns the cfg.Replicas distinct shards responsible for
// key, primary first. Replicas are the next shards in ring order, so
// any two keys sharing a primary also share their whole set — losing
// one shard leaves every key at least Replicas-1 surviving copies.
// Keys are small sequence numbers with a per-client base in the high
// bits, so the shared splitmix mixer spreads them: without it,
// consecutive keys from one client would land on neighbouring shards
// in lockstep.
func (s *Server) replicaSet(key uint64) []*shard {
	k := uint64(len(s.shards))
	primary := splitmix.Mix(key) % k
	set := make([]*shard, s.cfg.Replicas)
	for i := range set {
		set[i] = s.shards[(primary+uint64(i))%k]
	}
	return set
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Listen opens a listener for an address in transport.ParseAddr syntax
// ("unix:/path" or "tcp:host:port") and registers it for Close.
func (s *Server) Listen(addr string) (net.Listener, error) {
	network, address, err := transport.ParseAddr(addr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, address)
	if err != nil && network == "unix" && strings.Contains(err.Error(), "address already in use") {
		// A previous server killed with SIGKILL leaves its socket file
		// behind. If nobody answers a probe dial, the socket is stale:
		// unlink it and bind again — required for restart-in-place under
		// the chaos harness and CI's kill -9 smoke.
		if probe, perr := net.DialTimeout(network, address, 250*time.Millisecond); perr != nil {
			if rmErr := os.Remove(address); rmErr == nil {
				ln, err = net.Listen(network, address)
			}
		} else {
			probe.Close()
		}
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("netstore: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	return ln, nil
}

// Serve accepts connections on ln until the listener fails or the
// server is closed (which returns nil).
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.open[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepts.Add(1)
		s.conns.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.open, conn)
				s.mu.Unlock()
				s.conns.Add(-1)
				s.wg.Done()
			}()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := s.Listen(addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the server gracefully: new connections are refused
// immediately, but every request already read gets its response flushed
// before the connection closes. Readers blocked waiting for the next
// request are woken with an immediate read deadline, which the drain
// path treats as a clean end-of-stream rather than an error — so an
// in-flight PUT or GET either completes normally or the client sees a
// plain connection close (a resendable wire error), never a torn
// response. After grace expires any straggler connections are cut hard
// via Close.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.open {
		// Wake the reader without touching writes: queued responses
		// still stream out, only the next ReadRequest fails fast.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var late error
	select {
	case <-done:
	case <-time.After(grace):
		late = errors.New("netstore: shutdown grace expired with connections still open")
	}
	s.Close()
	return late
}

// Close stops the listeners, closes every live connection and waits for
// the connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.open {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// handleRequest executes one decoded request against the sharded store
// and returns the response. It performs no I/O — the fuzz target drives
// it directly with arbitrary decoded requests.
func (s *Server) handleRequest(req transport.Request) (status uint8, body []byte) {
	switch req.Op {
	case transport.OpPut:
		// Validate before storing: the frame is self-describing and
		// CRC'd, so damage in flight is refused here and the client
		// resends. Only verified bytes ever become store state.
		if _, err := frame.DecodeFrame(req.Body); err != nil {
			s.counters.Corrupted.Add(1)
			return transport.StatusCorrupt, nil
		}
		// One wire request, R shard writes: replication costs memcopies
		// only, never extra round trips. Offload counters record the
		// logical PUT once; resident-byte accounting is per shard.
		for _, sh := range s.replicaSet(req.Key) {
			sh.mu.Lock()
			if old, ok := sh.entries[req.Key]; ok {
				sh.bytes -= int64(len(old))
			}
			sh.entries[req.Key] = req.Body
			sh.bytes += int64(len(req.Body))
			sh.mu.Unlock()
		}
		s.counters.Offloaded.Add(1)
		s.counters.BytesOffloaded.Add(int64(len(req.Body)))
		if transport.IsGradKey(req.Key) {
			s.counters.GradPuts.Add(1)
			s.counters.BytesGrad.Add(int64(len(req.Body)))
		}
		return transport.StatusOK, nil

	case transport.OpGet, transport.OpGetCoef:
		set := s.replicaSet(req.Key)
		var b []byte
		hit := -1
		for i, sh := range set {
			sh.mu.Lock()
			v, ok := sh.entries[req.Key]
			sh.mu.Unlock()
			if ok {
				b, hit = v, i
				break
			}
		}
		if hit < 0 {
			return transport.StatusNotFound, nil
		}
		if hit > 0 {
			// The primary lost this frame (killed shard): serve it from
			// the surviving replica and read-repair every shard in the
			// set that lacks it, so a second failure still finds copies.
			s.counters.ReplicaReads.Add(1)
			for _, sh := range set {
				sh.mu.Lock()
				if _, ok := sh.entries[req.Key]; !ok {
					sh.entries[req.Key] = b
					sh.bytes += int64(len(b))
				}
				sh.mu.Unlock()
			}
		}
		s.counters.Restored.Add(1)
		if req.Op == transport.OpGetCoef {
			// Compressed-domain serving: same bytes, but the consumer
			// will decode them straight to a quantized DCT coefficient
			// plane — the store never pays an inverse transform on any
			// path, and this counter tracks how much traffic rides the
			// cheap lane.
			s.counters.CoefRestores.Add(1)
		}
		s.counters.BytesVerified.Add(int64(len(b)))
		if transport.IsGradKey(req.Key) {
			s.counters.GradGets.Add(1)
			s.counters.BytesGrad.Add(int64(len(b)))
		}
		return transport.StatusOK, b

	case transport.OpDelete:
		found := false
		for _, sh := range s.replicaSet(req.Key) {
			sh.mu.Lock()
			if b, ok := sh.entries[req.Key]; ok {
				delete(sh.entries, req.Key)
				sh.bytes -= int64(len(b))
				found = true
			}
			sh.mu.Unlock()
		}
		if !found {
			return transport.StatusNotFound, nil
		}
		return transport.StatusOK, nil

	case transport.OpStats:
		js, err := json.Marshal(s.Snapshot())
		if err != nil {
			return transport.StatusBadRequest, nil
		}
		return transport.StatusOK, js
	}
	s.badReqs.Add(1)
	return transport.StatusBadRequest, nil
}

// response is one writer-queue element.
type response struct {
	status uint8
	body   []byte
	due    time.Time // earliest write time (RespDelay injection)
}

// handleConn runs one connection: the calling goroutine reads and
// executes requests, a second goroutine writes responses. The queue
// between them is bounded by the InFlightBytes budget — when the writer
// falls behind (slow client, big frames), the reader blocks before
// decoding the next request, which stops the TCP window and pushes the
// backpressure all the way to the producer.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	out := make(chan response, 128)
	var qmu sync.Mutex
	qcond := sync.NewCond(&qmu)
	queued := 0

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bw := newBufWriter(conn)
		for resp := range out {
			if !resp.due.IsZero() {
				if d := time.Until(resp.due); d > 0 {
					// Flush what's already written before holding the
					// next response, so earlier replies are not pinned
					// behind this one's delay.
					bw.Flush()
					time.Sleep(d)
				}
			}
			err := transport.WriteResponse(bw, resp.status, resp.body)
			if err == nil && len(out) == 0 {
				err = bw.Flush()
			}
			qmu.Lock()
			queued -= len(resp.body)
			qcond.Broadcast()
			qmu.Unlock()
			if err != nil {
				// The connection is gone; drain the queue so the reader
				// never blocks on a dead writer, then bail.
				conn.Close()
				for resp := range out {
					qmu.Lock()
					queued -= len(resp.body)
					qcond.Broadcast()
					qmu.Unlock()
					_ = resp
				}
				return
			}
		}
		bw.Flush()
	}()

	br := newBufReader(conn)
	for {
		req, err := transport.ReadRequest(br)
		if err != nil {
			if s.drainingNow() && isTimeout(err) {
				// Shutdown woke us between requests: stop reading cleanly
				// so close(out) lets the writer flush what's queued.
				break
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				if errors.Is(err, transport.ErrWire) {
					// The stream is poisoned — answer once, then drop the
					// connection; the client's reconnect+resend recovers.
					s.badReqs.Add(1)
					s.enqueue(out, &qmu, qcond, &queued, response{status: transport.StatusBadRequest})
					s.logf("netstore: %s: %v (closing)", conn.RemoteAddr(), err)
				} else {
					s.logf("netstore: %s: read: %v", conn.RemoteAddr(), err)
				}
			}
			break
		}
		status, body := s.handleRequest(req)
		resp := response{status: status, body: body}
		if s.cfg.RespDelay > 0 {
			resp.due = time.Now().Add(s.cfg.RespDelay)
		}
		s.enqueue(out, &qmu, qcond, &queued, resp)
	}
	close(out)
	wg.Wait()
}

func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// isTimeout reports whether err is a network timeout (the deadline poke
// Shutdown uses to wake blocked readers).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// KillShard wipes every entry in shard i and returns how many frames it
// dropped — a fault-injection hook for the chaos harness, standing in
// for a storage node dying. With Replicas > 1 the surviving shards keep
// a copy of every frame, so subsequent GETs fail over (and read-repair
// repopulates the killed shard).
func (s *Server) KillShard(i int) int {
	if i < 0 || i >= len(s.shards) {
		return 0
	}
	sh := s.shards[i]
	sh.mu.Lock()
	n := len(sh.entries)
	sh.entries = map[uint64][]byte{}
	sh.bytes = 0
	sh.mu.Unlock()
	return n
}

// enqueue admits one response to the writer queue under the byte
// budget. The head response is always admitted (progress guarantee).
func (s *Server) enqueue(out chan response, qmu *sync.Mutex, qcond *sync.Cond, queued *int, resp response) {
	n := len(resp.body)
	qmu.Lock()
	for *queued > 0 && *queued+n > s.cfg.InFlightBytes {
		qcond.Wait()
	}
	*queued += n
	qmu.Unlock()
	out <- resp
}

// Snapshot returns the unified counter snapshot — the same struct the
// offload store's Stats() and the wire STATS op report.
func (s *Server) Snapshot() transport.Snapshot {
	return s.counters.Snapshot()
}

// Entries returns the number of resident entries across all shards.
func (s *Server) Entries() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// HostBytes returns the total framed footprint resident across shards.
func (s *Server) HostBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// ShardEntries returns per-shard entry counts (for balance checks).
func (s *Server) ShardEntries() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = len(sh.entries)
		sh.mu.Unlock()
	}
	return out
}

// Conns returns the number of currently open connections.
func (s *Server) Conns() int64 { return s.conns.Load() }

// MetricsHandler serves the unified snapshot in Prometheus text
// exposition format, plus server-level gauges (connections, entries,
// resident bytes, bad requests) — mount it on /metrics.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.Snapshot().WriteMetrics(w, "jpegact_actstore")
		fmt.Fprintf(w, "# HELP jpegact_actstore_connections Currently open client connections\n# TYPE jpegact_actstore_connections gauge\njpegact_actstore_connections %d\n", s.conns.Load())
		fmt.Fprintf(w, "# HELP jpegact_actstore_accepts_total Connections accepted\n# TYPE jpegact_actstore_accepts_total counter\njpegact_actstore_accepts_total %d\n", s.accepts.Load())
		fmt.Fprintf(w, "# HELP jpegact_actstore_entries Resident activation entries\n# TYPE jpegact_actstore_entries gauge\njpegact_actstore_entries %d\n", s.Entries())
		fmt.Fprintf(w, "# HELP jpegact_actstore_resident_bytes Resident framed bytes\n# TYPE jpegact_actstore_resident_bytes gauge\njpegact_actstore_resident_bytes %d\n", s.HostBytes())
		fmt.Fprintf(w, "# HELP jpegact_actstore_bad_requests_total Requests refused as malformed\n# TYPE jpegact_actstore_bad_requests_total counter\njpegact_actstore_bad_requests_total %d\n", s.badReqs.Load())
		fmt.Fprintf(w, "# HELP jpegact_actstore_shards Configured shard count\n# TYPE jpegact_actstore_shards gauge\njpegact_actstore_shards %d\n", len(s.shards))
		fmt.Fprintf(w, "# HELP jpegact_actstore_replicas Copies stored per PUT\n# TYPE jpegact_actstore_replicas gauge\njpegact_actstore_replicas %d\n", s.cfg.Replicas)
	})
}
