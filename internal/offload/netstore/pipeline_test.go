package netstore

// Deterministic pipelining smoke: the server injects a fixed per-op
// response latency (Config.RespDelay), so a stop-and-wait client pays
// it once per GET while a windowed client overlaps the delays of every
// request in flight. The wall-clock ratio is the pipelining win — no
// real network, no flaky timing floor, reproducible in CI.

import (
	"testing"
	"time"

	"jpegact/internal/offload/transport"
)

// timeGets fetches keys 1..n through a client with the given window and
// returns the wall clock. All n handles are issued before any result is
// awaited, so the window alone decides how many ops overlap.
func timeGets(t *testing.T, dial transport.Dialer, window, n int) time.Duration {
	t.Helper()
	c := transport.NewNetClient(dial, nil)
	c.Window = window
	defer c.Close()
	r := transport.Retry{Attempts: 2, OpTimeout: 10 * time.Second}
	start := time.Now()
	pending := make([]*transport.Pending, 0, n)
	for k := 1; k <= n; k++ {
		pending = append(pending, c.GetAsync(uint64(k), r, false))
	}
	for i, p := range pending {
		f, err := p.GetResult()
		if err != nil {
			t.Fatalf("window %d get %d: %v", window, i+1, err)
		}
		if f.Payload[0] != byte(i+1) {
			t.Fatalf("window %d get %d returned frame %d", window, i+1, f.Payload[0])
		}
	}
	return time.Since(start)
}

// TestPipelinedGetsOverlapInjectedLatency: with 2ms of injected per-op
// latency and 64 GETs, a window-8 client must finish in well under the
// stop-and-wait wall clock. The 0.6× bound is loose — the ideal ratio
// at window 8 is ~1/8 — so scheduler noise cannot flake it, but a
// client that secretly serializes cannot pass it.
func TestPipelinedGetsOverlapInjectedLatency(t *testing.T) {
	const n = 64
	_, dial := startServer(t, Config{RespDelay: 2 * time.Millisecond})
	c := transport.NewNetClient(dial, nil)
	r := transport.Retry{Attempts: 2, OpTimeout: 10 * time.Second}
	for k := 1; k <= n; k++ {
		if _, err := c.Put(uint64(k), testFrame(t, byte(k)), r); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	c.Close()

	serial := timeGets(t, dial, 1, n)
	piped := timeGets(t, dial, 8, n)
	ratio := float64(piped) / float64(serial)
	t.Logf("serial=%v pipelined=%v ratio=%.2f", serial, piped, ratio)
	if ratio > 0.6 {
		t.Fatalf("pipelined GETs did not overlap the injected latency: serial=%v pipelined=%v (ratio %.2f > 0.6)",
			serial, piped, ratio)
	}
}
