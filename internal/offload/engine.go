package offload

import (
	"fmt"
	"sort"
	"sync"

	"jpegact/internal/frame"
	"jpegact/internal/nn"
	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// EngineConfig selects how the scheduler layer overlaps offload traffic
// with compute.
type EngineConfig struct {
	// Async enables the pipelined engine. When false every Engine call
	// degenerates to the synchronous Store operation — the two paths
	// produce bit-identical channel traffic by construction.
	Async bool
	// Workers sizes the encode pool (<= 0 uses parallel.Workers()).
	Workers int
	// Prefetch is the restore lookahead during the backward pass: how
	// many verified frames may sit staged ahead of demand. <= 0
	// restores strictly on demand.
	Prefetch int
	// InFlightBytes bounds the encoded-but-not-yet-committed bytes held
	// by workers (0 = unlimited). The commit head is always admitted so
	// the pipeline cannot deadlock on a single oversized frame.
	InFlightBytes int
	// PipelineWindow bounds the issued-but-unacknowledged wire operations
	// the engine keeps in flight at once: commit PUTs during the forward
	// pass and staging GETs in the backward prefetcher. <= 1 is
	// stop-and-wait (each op completes before the next is issued — the
	// pre-pipelining behaviour); larger windows overlap the transport
	// round trips of consecutive ops. Ordering is unaffected: ops are
	// issued and completed in the same strict sequence at every window,
	// so injected fault patterns stay deterministic.
	PipelineWindow int
}

// EngineStats counts scheduler-level events (channel/recovery counters
// live in Store.Stats; these describe only overlap quality).
type EngineStats struct {
	PrefetchHits  uint64 // restores whose tensor was already staged
	PrefetchWaits uint64 // restores that had to wait on the prefetcher
	MaxInFlight   int    // high-water mark of encoded bytes awaiting commit
	DemandFetches uint64 // on-demand fetches issued past the lookahead window
}

// encResult is one encoded activation waiting in the reorder buffer for
// its turn on the channel.
type encResult struct {
	ref  *nn.ActRef
	data []byte
	mask []bool
	err  error
}

// fetchTask is one prefetched restore: the prefetcher stages the
// verified frame (or the terminal read error) and closes done. Decoding
// happens in the consumer, so the channel never idles behind codec work.
type fetchTask struct {
	ref     *nn.ActRef
	ent     *entry
	done    chan struct{}
	staged  *frame.Frame
	err     error
	counted bool // holds a lookahead slot until consumed
}

// prefetchState is one backward pass's restore plan: every resident
// entry at PrepareBackward time, in reverse-offload order.
type prefetchState struct {
	tasks  []*fetchTask
	byRef  map[*nn.ActRef]*fetchTask
	next   int        // index the prefetcher will fetch next
	ready  int        // staged-but-unconsumed tasks (lookahead budget)
	demand *fetchTask // consumer-requested task past the window
	flush  bool       // finish every remaining read, ignoring the window
	active bool
}

// Engine is the scheduler layer of the offload stack: it accepts
// non-blocking offload requests as the forward pass produces
// activations, encodes them on a worker pool under an in-flight byte
// budget, and commits the encoded frames to the transport in strict
// submission order — so the channel (and any fault injector attached to
// it) sees exactly the sequence a synchronous run would. During the
// backward pass it prefetches restores in reverse-offload order,
// double-buffered ahead of demand.
//
// A zero Prefetch falls back to on-demand restores; Async=false makes
// every call the degenerate synchronous Store operation. One engine
// serves one training loop; it is not safe for concurrent steps.
type Engine struct {
	store *Store
	cfg   EngineConfig
	pool  *parallel.Pool

	mu   sync.Mutex
	cond *sync.Cond

	// Offload pipeline (reset each step).
	seen       map[*nn.ActRef]bool
	submitted  int
	nextCommit int // next sequence to *issue* (wire order)
	finished   int // sequences fully committed (acknowledged)
	committing bool
	results    map[int]encResult
	inflight   int
	origBytes  int
	firstErr   error

	// Restore pipeline (reset each step).
	pf       *prefetchState
	pfGen    int
	repaired bool // a recompute rebuilt the step; stale refs tolerated

	maxInflight   int
	hits, waits   uint64
	demandFetches uint64
}

// NewEngine wraps a store in a scheduler. The encode pool is started
// lazily on the first async step; Close releases it.
func NewEngine(s *Store, cfg EngineConfig) *Engine {
	e := &Engine{store: s, cfg: cfg}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Store returns the underlying store.
func (e *Engine) Store() *Store { return e.store }

// Async reports whether the engine runs the pipelined path.
func (e *Engine) Async() bool { return e.cfg.Async }

// Stats returns a snapshot of the scheduler counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		PrefetchHits:  e.hits,
		PrefetchWaits: e.waits,
		MaxInFlight:   e.maxInflight,
		DemandFetches: e.demandFetches,
	}
}

// BeginStep resets the per-step pipeline state. The previous step must
// have been finished with EndStep or Abort.
func (e *Engine) BeginStep() {
	if e.cfg.Async && e.pool == nil {
		e.pool = parallel.NewPool(e.cfg.Workers)
	}
	e.mu.Lock()
	e.seen = map[*nn.ActRef]bool{}
	e.submitted, e.nextCommit, e.finished = 0, 0, 0
	e.results = map[int]encResult{}
	e.inflight = 0
	e.firstErr = nil
	e.origBytes = 0
	e.repaired = false
	e.pf = nil
	e.mu.Unlock()
}

// Offload submits one activation for offload. In async mode it returns
// immediately — encoding happens on the pool, and the frame is committed
// to the channel in submission order once its predecessors have landed.
// Duplicate refs and refs without a live tensor are skipped, matching
// Store.OffloadAll. Errors surface at EndForward.
func (e *Engine) Offload(ref *nn.ActRef) {
	if ref == nil {
		return
	}
	e.mu.Lock()
	if e.seen == nil {
		e.seen = map[*nn.ActRef]bool{}
	}
	if e.seen[ref] || ref.T == nil {
		e.mu.Unlock()
		return
	}
	e.seen[ref] = true
	e.origBytes += ref.T.Bytes()
	if !e.cfg.Async {
		e.mu.Unlock()
		if err := e.store.Offload(ref); err != nil {
			e.mu.Lock()
			if e.firstErr == nil {
				e.firstErr = err
			}
			e.mu.Unlock()
		}
		return
	}
	x := ref.T
	seq := e.submitted
	e.submitted++
	e.mu.Unlock()
	e.pool.Submit(func() { e.encodeAndCommit(seq, ref, x) })
}

// encodeAndCommit runs on a pool worker: pure codec work first, then the
// result enters the reorder buffer and is committed once it is the head.
func (e *Engine) encodeAndCommit(seq int, ref *nn.ActRef, x *tensor.Tensor) {
	res := encResult{ref: ref}
	enc, err := e.store.pipeline().Encode(ref.Kind, x)
	if err != nil {
		res.err = fmt.Errorf("offload: offload %q (%s): %w", ref.Name, ref.Kind, err)
	} else {
		res.data = frame.EncodeFrame(enc.Frame)
		res.mask = enc.Mask
	}
	n := len(res.data)
	e.mu.Lock()
	// In-flight budget: the commit head is always admitted (progress
	// guarantee); everyone else waits for space.
	for e.cfg.InFlightBytes > 0 && seq != e.nextCommit && e.inflight+n > e.cfg.InFlightBytes {
		e.cond.Wait()
	}
	e.inflight += n
	if e.inflight > e.maxInflight {
		e.maxInflight = e.inflight
	}
	e.results[seq] = res
	if !e.committing {
		if _, head := e.results[e.nextCommit]; head {
			// Hand the in-order drain to a dedicated goroutine: the
			// channel Send may be slow (a real DMA), and stalling an
			// encode worker on it would back the pool queue up into the
			// forward pass.
			e.committing = true
			go e.drainCommits()
		}
	}
	e.mu.Unlock()
}

// pipelineWindow returns the effective wire window (>= 1).
func (e *Engine) pipelineWindow() int {
	if e.cfg.PipelineWindow < 1 {
		return 1
	}
	return e.cfg.PipelineWindow
}

// drainCommits empties the reorder buffer from nextCommit while
// consecutive results are present, keeping up to PipelineWindow commit
// PUTs issued-but-unacknowledged on the transport at once. Issue takes
// priority over completion — a ready head result goes on the wire
// before the oldest outstanding ticket is waited on — so consecutive
// frames' round trips overlap; both the issues and the completions
// happen in strict sequence order, so the backend sees exactly the Put
// sequence a stop-and-wait drain would. Exactly one drainer runs at a
// time (the committing flag); the transport calls happen outside the
// engine lock so workers keep encoding while the wire sleeps.
func (e *Engine) drainCommits() {
	window := e.pipelineWindow()
	var fifo []*commitTicket
	e.mu.Lock()
	for {
		if res, ok := e.results[e.nextCommit]; ok && len(fifo) < window {
			delete(e.results, e.nextCommit)
			e.nextCommit++
			if res.err != nil {
				// Encode failure: nothing to issue for this sequence.
				if e.firstErr == nil {
					e.firstErr = res.err
				}
				e.inflight -= len(res.data)
				e.finished++
				e.cond.Broadcast()
				continue
			}
			e.mu.Unlock()
			t := e.store.commitIssue(res.ref, res.data, res.mask)
			e.mu.Lock()
			fifo = append(fifo, t)
			e.cond.Broadcast()
			continue
		}
		if len(fifo) > 0 {
			t := fifo[0]
			fifo = fifo[1:]
			e.mu.Unlock()
			_, cerr := e.store.commitWait(t)
			e.mu.Lock()
			if cerr != nil && e.firstErr == nil {
				e.firstErr = cerr
			}
			e.inflight -= t.size
			e.finished++
			e.cond.Broadcast()
			continue
		}
		break
	}
	e.committing = false
	e.cond.Broadcast()
	e.mu.Unlock()
}

// EndForward offloads any refs the streaming hooks missed (or, in sync
// mode, all of them), then barriers until every submitted frame has been
// committed to the channel. It returns the original and compressed byte
// totals for the step.
func (e *Engine) EndForward(refs []*nn.ActRef) (orig, comp int, err error) {
	for _, ref := range refs {
		e.Offload(ref)
	}
	e.mu.Lock()
	for e.cfg.Async && e.finished < e.submitted {
		e.cond.Wait()
	}
	orig = e.origBytes
	err = e.firstErr
	e.mu.Unlock()
	return orig, e.store.HostBytes(), err
}

// PrepareBackward readies the restore side. Sync mode restores
// everything eagerly (the degenerate case); async mode with Prefetch > 0
// snapshots the resident entries and starts the prefetcher in
// reverse-offload order; Prefetch <= 0 leaves restores on demand.
func (e *Engine) PrepareBackward() error {
	if !e.cfg.Async {
		return e.store.RestoreAll()
	}
	if e.cfg.Prefetch <= 0 {
		return nil
	}
	s := e.store
	s.mu.Lock()
	tasks := make([]*fetchTask, 0, len(s.entries))
	for ref, ent := range s.entries {
		tasks = append(tasks, &fetchTask{ref: ref, ent: ent, done: make(chan struct{})})
	}
	s.mu.Unlock()
	// Reverse-offload order: the last activation saved is the first the
	// backward pass needs.
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].ent.seq > tasks[j].ent.seq })
	byRef := make(map[*nn.ActRef]*fetchTask, len(tasks))
	for _, t := range tasks {
		byRef[t.ref] = t
	}
	e.mu.Lock()
	pf := &prefetchState{tasks: tasks, byRef: byRef, active: true}
	e.pf = pf
	gen := e.pfGen
	e.mu.Unlock()
	go e.prefetchLoop(pf, gen)
	return nil
}

// prefetchLoop is the single fetch goroutine: it walks the snapshot in
// order, staging up to Prefetch verified frames ahead of consumption
// and keeping up to PipelineWindow staging GETs issued on the wire at
// once (responses complete in issue order — the transport is FIFO — so
// batching issues overlaps round trips without reordering anything).
// Being alone on the transport's read side keeps the request sequence —
// and therefore any injected fault pattern — deterministic. A consumer
// blocked on a task past the window sets demand, which lets the loop
// run ahead of the budget without changing the order. Only the wire
// read and CRC check run here; decode is left to the consumer so the
// next read can start immediately.
func (e *Engine) prefetchLoop(pf *prefetchState, gen int) {
	window := e.pipelineWindow()
	type issuedRead struct {
		ft *fetchTask
		tk *readTicket
	}
	var fifo []issuedRead
	completeHead := func() {
		in := fifo[0]
		fifo = fifo[1:]
		f, err := e.store.readWait(in.tk)
		e.mu.Lock()
		in.ft.staged, in.ft.err = f, err
		in.ft.counted = true
		pf.ready++
		if pf.demand == in.ft {
			pf.demand = nil
		}
		close(in.ft.done)
		e.cond.Broadcast()
		e.mu.Unlock()
	}
	defer func() {
		// Responses for issued reads are already on the wire; consume
		// them even on cancellation so every started task's done closes
		// and the transport stream stays position-deterministic.
		for len(fifo) > 0 {
			completeHead()
		}
		e.mu.Lock()
		pf.active = false
		e.cond.Broadcast()
		e.mu.Unlock()
	}()
	for {
		e.mu.Lock()
		issuable := func() bool {
			return pf.next < len(pf.tasks) && len(fifo) < window &&
				(pf.flush || pf.demand != nil || pf.ready+len(fifo) < e.cfg.Prefetch)
		}
		for gen == e.pfGen && !issuable() && len(fifo) == 0 && pf.next < len(pf.tasks) {
			e.cond.Wait()
		}
		if gen != e.pfGen {
			e.mu.Unlock()
			return
		}
		if !issuable() {
			e.mu.Unlock()
			if len(fifo) > 0 {
				// Window or lookahead budget full (or plan exhausted):
				// retire the oldest outstanding read.
				completeHead()
				continue
			}
			return // plan exhausted and wire drained
		}
		ft := pf.tasks[pf.next]
		pf.next++
		e.mu.Unlock()

		// Skip entries no longer resident (consumed inline, or replaced
		// by a recompute rebuild); they hold no lookahead slot.
		s := e.store
		s.mu.Lock()
		cur, still := s.entries[ft.ref]
		s.mu.Unlock()
		if !still || cur != ft.ent {
			e.mu.Lock()
			if pf.demand == ft {
				pf.demand = nil
			}
			close(ft.done)
			e.cond.Broadcast()
			e.mu.Unlock()
			continue
		}
		fifo = append(fifo, issuedRead{ft: ft, tk: s.readIssue(ft.ent, ft.ref)})
	}
}

// release returns ft's lookahead slot to the prefetcher.
func (e *Engine) release(pf *prefetchState, ft *fetchTask) {
	e.mu.Lock()
	if ft.counted {
		ft.counted = false
		pf.ready--
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Restore brings one activation back. With the prefetcher running it
// consumes the staged tensor (waiting for it if the fetch is still in
// flight); otherwise it falls back to the synchronous path. A ref made
// stale by a recompute rebuild resolves to nil once the step is marked
// repaired.
func (e *Engine) Restore(ref *nn.ActRef) error {
	if !e.cfg.Async {
		return e.store.Restore(ref)
	}
	s := e.store
	s.mu.Lock()
	ent, ok := s.entries[ref]
	s.mu.Unlock()

	e.mu.Lock()
	repaired := e.repaired
	pf := e.pf
	var ft *fetchTask
	if pf != nil {
		ft = pf.byRef[ref]
	}
	if !ok {
		e.mu.Unlock()
		// Already restored (shared ref), or replaced by a rebuild.
		if ref.T != nil || ref.Mask != nil || ref.Coef != nil || repaired {
			return nil
		}
		return fmt.Errorf("offload: restore %q (%s): %w", ref.Name, ref.Kind, ErrNotStored)
	}
	if ft == nil || ft.ent != ent {
		// No prefetch plan covers this entry (on-demand mode, or an
		// entry re-offloaded after the snapshot): synchronous restore
		// with the full recovery policy.
		e.demandFetches++
		e.mu.Unlock()
		return e.store.Restore(ref)
	}
	select {
	case <-ft.done:
		e.hits++
	default:
		e.waits++
		pf.demand = ft
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	<-ft.done

	// Re-check residency: the prefetcher may have skipped a stale task,
	// or a recompute (triggered by an earlier restore) rebuilt the step
	// while we waited.
	s.mu.Lock()
	cur, still := s.entries[ref]
	s.mu.Unlock()
	if !still || cur != ft.ent {
		e.release(pf, ft)
		e.mu.Lock()
		repaired = e.repaired
		e.mu.Unlock()
		if !still {
			if ref.T != nil || ref.Mask != nil || ref.Coef != nil || repaired {
				return nil
			}
			return fmt.Errorf("offload: restore %q (%s): %w", ref.Name, ref.Kind, ErrNotStored)
		}
		return e.store.Restore(ref)
	}
	if ft.err != nil {
		e.release(pf, ft)
		return e.escalate(ref, ft.ent, ft.err)
	}
	t, pl, derr := s.decodeFrame(ref, ft.staged)
	if derr != nil {
		e.release(pf, ft)
		return e.escalate(ref, ft.ent, derr)
	}
	s.finishRestore(ref, ft.ent, t, pl)
	e.release(pf, ft)
	return nil
}

// escalate handles a corruption the prefetcher discovered
// asynchronously: the prefetch plan is flushed first — the prefetcher
// completes every remaining read, not just the one in flight — so the
// channel has seen a run-independent sequence of transfers before the
// recovery policy's own traffic starts (a stop at the in-flight read
// would cut at a scheduling-dependent point and make the fault
// counters irreproducible). The flushed results are discarded. Under
// PolicyRecompute the hook then rebuilds the step, the engine marks it
// repaired, and the remaining activations are restored synchronously —
// the refs in flight before the rebuild are stale and resolve to nil.
func (e *Engine) escalate(ref *nn.ActRef, ent *entry, err error) error {
	e.flushPrefetch()
	s := e.store
	if s.Recovery.Policy == PolicyRecompute && s.Recovery.Recompute != nil {
		if rerr := s.Recovery.Recompute(ref); rerr != nil {
			return fmt.Errorf("offload: restore %q (%s): %w: recompute failed: %v (original: %v)",
				ref.Name, ref.Kind, ErrCorrupted, rerr, err)
		}
		s.counters.Recomputed.Add(1)
		s.dropIfCurrent(ref, ent)
		e.mu.Lock()
		e.repaired = true
		e.mu.Unlock()
		return s.RestoreAll()
	}
	return fmt.Errorf("offload: restore %q (%s): %w", ref.Name, ref.Kind, err)
}

// flushPrefetch drives the prefetch plan to completion: the loop reads
// every remaining resident entry in plan order, ignoring the lookahead
// window, and the drained plan is returned (nil if none was running).
// Because the whole plan is read exactly once, the channel's transfer
// sequence — and any seeded fault pattern riding on it — is identical
// across runs no matter where the prefetcher happened to be.
func (e *Engine) flushPrefetch() *prefetchState {
	e.mu.Lock()
	pf := e.pf
	if pf == nil {
		e.mu.Unlock()
		return nil
	}
	e.pf = nil
	pf.flush = true
	e.cond.Broadcast()
	for pf.active {
		e.cond.Wait()
	}
	e.mu.Unlock()
	return pf
}

// consumeLeftover finishes one flushed task the backward pass never
// asked for: still-resident, cleanly-read entries are decoded and
// restored (exactly what RestoreAll would have done, minus the second
// channel read); stale or failed tasks are left for the synchronous
// sweep so the recovery policy applies.
func (e *Engine) consumeLeftover(ft *fetchTask) {
	<-ft.done
	if ft.err != nil || ft.staged == nil {
		return
	}
	s := e.store
	s.mu.Lock()
	cur, still := s.entries[ft.ref]
	s.mu.Unlock()
	if !still || cur != ft.ent {
		return
	}
	if t, pl, err := s.decodeFrame(ft.ref, ft.staged); err == nil {
		s.finishRestore(ft.ref, ft.ent, t, pl)
	}
}

// stopPrefetch cancels the prefetch plan and waits for the loop to exit,
// so no channel read races whatever the caller does next. Staged frames
// whose entries are still resident are discarded unconsumed — their
// entries remain in the store for a later synchronous restore. Only
// Abort uses this (a failed step must not keep touching the channel);
// the healthy paths flush instead, for reproducible transfer counts.
func (e *Engine) stopPrefetch() {
	e.mu.Lock()
	pf := e.pf
	if pf == nil {
		e.mu.Unlock()
		return
	}
	e.pf = nil
	e.pfGen++
	e.cond.Broadcast()
	for pf.active {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// EndStep finishes the restore side: the prefetch plan is flushed and
// its unconsumed reads restored in plan order, then any entries still
// resident (post-rebuild strays, or tasks the flush left for the
// recovery policy) are drained synchronously. In the common case the
// backward pass consumed the whole plan and both phases are no-ops.
func (e *Engine) EndStep() error {
	if !e.cfg.Async {
		return nil
	}
	if pf := e.flushPrefetch(); pf != nil {
		for _, ft := range pf.tasks {
			e.consumeLeftover(ft)
		}
	}
	return e.store.RestoreAll()
}

// Abort tears down the step's pipelines without draining the store —
// the path for a failed step, where the remaining entries may be
// corrupt and must stay resident for the caller to inspect.
func (e *Engine) Abort() {
	if !e.cfg.Async {
		return
	}
	e.mu.Lock()
	for e.finished < e.submitted {
		e.cond.Wait()
	}
	e.mu.Unlock()
	e.stopPrefetch()
}

// Close releases the encode pool. The engine must be between steps.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}
