package offload

import (
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/nn"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func freqRefs(t *testing.T) (planned, spatial, small *nn.ActRef) {
	t.Helper()
	r := tensor.NewRNG(51)
	planned = &nn.ActRef{Name: "planned", Kind: compress.KindConv,
		T: data.ActivationTensor(r, 1, 4, 16, 16, 0.5, 1.0)}
	spatial = &nn.ActRef{Name: "spatial", Kind: compress.KindConv,
		T: data.ActivationTensor(r, 1, 4, 16, 16, 0.5, 1.0)}
	// Small enough that the codec routes it to ZVC even though the plan
	// covers it — the fallback-within-the-plan case.
	sm := tensor.New(1, 2, 4, 4)
	sm.FillNormal(r, 0, 1)
	small = &nn.ActRef{Name: "small", Kind: compress.KindPoolDropout, T: sm}
	return planned, spatial, small
}

// TestStoreCoefRestore pins the synchronous coefficient restore: a
// planned ref comes back as a plane whose reconstruction matches the
// full decode bit for bit; unplanned refs and non-JPEG frames take the
// spatial path; the stats count exactly the coefficient restores.
func TestStoreCoefRestore(t *testing.T) {
	planned, spatial, small := freqRefs(t)
	want := planned.T.Clone()

	s := NewStore(quant.OptL())
	s.CoefPlan = func(ref *nn.ActRef) bool { return ref == planned || ref == small }
	for _, ref := range []*nn.ActRef{planned, spatial, small} {
		if err := s.Offload(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RestoreAll(); err != nil {
		t.Fatal(err)
	}

	if planned.Coef == nil || planned.T != nil {
		t.Fatalf("planned ref must restore as a plane (Coef=%v, T=%v)", planned.Coef, planned.T)
	}
	if spatial.Coef != nil || spatial.T == nil {
		t.Fatal("unplanned ref must restore spatially")
	}
	if small.Coef != nil || small.T == nil {
		t.Fatal("planned non-JPEG frame must fall back to the spatial decode")
	}
	st := s.Stats()
	if st.CoefRestores != 1 {
		t.Fatalf("CoefRestores = %d, want 1", st.CoefRestores)
	}
	if st.Restored != 3 {
		t.Fatalf("Restored = %d, want 3", st.Restored)
	}

	// The plane's spatial fallback must match what a plain store decode
	// of the identical tensor produces.
	s2 := NewStore(quant.OptL())
	ref2 := &nn.ActRef{Name: "ref2", Kind: compress.KindConv, T: want}
	if err := s2.Offload(ref2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(ref2); err != nil {
		t.Fatal(err)
	}
	got := planned.Coef.Reconstruct()
	for i := range ref2.T.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(ref2.T.Data[i]) {
			t.Fatalf("elem %d: plane %v, spatial decode %v", i, got.Data[i], ref2.T.Data[i])
		}
	}
	nn.ReleaseCoefficients([]*nn.ActRef{planned})
}

// TestEngineCoefRestore pins the async path: the prefetcher stages the
// frame and the consumer decode attaches a plane; a second Restore of
// the ref (shared-consumer pattern) is a no-op.
func TestEngineCoefRestore(t *testing.T) {
	planned, spatial, small := freqRefs(t)

	s := NewStore(quant.OptL())
	s.CoefPlan = func(ref *nn.ActRef) bool { return ref == planned }
	e := NewEngine(s, EngineConfig{Async: true, Prefetch: 2})
	defer e.Close()

	e.BeginStep()
	if _, _, err := e.EndForward([]*nn.ActRef{planned, spatial, small}); err != nil {
		t.Fatal(err)
	}
	if err := e.PrepareBackward(); err != nil {
		t.Fatal(err)
	}
	for _, ref := range []*nn.ActRef{small, spatial, planned} {
		if err := e.Restore(ref); err != nil {
			t.Fatal(err)
		}
	}
	if planned.Coef == nil || planned.T != nil {
		t.Fatal("planned ref must restore as a plane through the engine")
	}
	if spatial.T == nil || spatial.Coef != nil {
		t.Fatal("unplanned ref must restore spatially through the engine")
	}
	// Second restore of an already-plane-restored ref must resolve clean.
	if err := e.Restore(planned); err != nil {
		t.Fatalf("re-restore of plane-restored ref: %v", err)
	}
	if err := e.EndStep(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CoefRestores != 1 {
		t.Fatalf("CoefRestores = %d, want 1", st.CoefRestores)
	}
	nn.ReleaseCoefficients([]*nn.ActRef{planned})
}

// TestEngineCoefLeftover pins EndStep's flush path: a planned ref the
// backward pass never asked for is still restored as a plane.
func TestEngineCoefLeftover(t *testing.T) {
	planned, spatial, _ := freqRefs(t)

	s := NewStore(quant.OptL())
	s.CoefPlan = func(ref *nn.ActRef) bool { return ref == planned }
	e := NewEngine(s, EngineConfig{Async: true, Prefetch: 2})
	defer e.Close()

	e.BeginStep()
	if _, _, err := e.EndForward([]*nn.ActRef{planned, spatial}); err != nil {
		t.Fatal(err)
	}
	if err := e.PrepareBackward(); err != nil {
		t.Fatal(err)
	}
	// Consume nothing; EndStep must drain both, honouring the plan.
	if err := e.EndStep(); err != nil {
		t.Fatal(err)
	}
	if planned.Coef == nil || spatial.T == nil {
		t.Fatal("EndStep drain must honour the coefficient plan")
	}
	if st := s.Stats(); st.CoefRestores != 1 {
		t.Fatalf("CoefRestores = %d, want 1", st.CoefRestores)
	}
	nn.ReleaseCoefficients([]*nn.ActRef{planned})
}
