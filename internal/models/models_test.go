package models

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/nn"
	"jpegact/internal/tensor"
)

func forward(t *testing.T, m *Model, train bool) *nn.ActRef {
	t.Helper()
	r := tensor.NewRNG(99)
	x := tensor.New(2, m.InC, m.H, m.W)
	x.FillNormal(r, 0, 1)
	return m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, train)
}

func TestAllModelsForwardShapes(t *testing.T) {
	for _, m := range All(Scale{}, 4, 1) {
		out := forward(t, m, false)
		switch m.Task {
		case Classify:
			want := tensor.Shape{N: 2, C: 4, H: 1, W: 1}
			if out.T.Shape != want {
				t.Fatalf("%s output %v, want %v", m.Name, out.T.Shape, want)
			}
		case SuperRes:
			want := tensor.Shape{N: 2, C: 1, H: m.H, W: m.W}
			if out.T.Shape != want {
				t.Fatalf("%s output %v, want %v", m.Name, out.T.Shape, want)
			}
		}
		if nn.NaNGuard(out.T) {
			t.Fatalf("%s produced NaN at init", m.Name)
		}
	}
}

func TestAllModelsBackward(t *testing.T) {
	for _, m := range All(Scale{}, 4, 2) {
		out := forward(t, m, true)
		g := tensor.NewLike(out.T)
		g.FillNormal(tensor.NewRNG(5), 0, 0.1)
		dx := m.Net.Backward(g)
		if dx.Shape.C != m.InC || dx.Shape.H != m.H {
			t.Fatalf("%s input grad shape %v", m.Name, dx.Shape)
		}
		if nn.NaNGuard(dx) {
			t.Fatalf("%s backward produced NaN", m.Name)
		}
		// Every parameter must have received some gradient signal.
		gotGrad := false
		for _, p := range m.Net.Params() {
			if p.Grad.MaxAbs() > 0 {
				gotGrad = true
				break
			}
		}
		if !gotGrad {
			t.Fatalf("%s: no parameter gradients", m.Name)
		}
	}
}

func TestDropoutFlags(t *testing.T) {
	ms := All(Scale{}, 4, 3)
	byName := map[string]*Model{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if !byName["VGG"].HasDropout || !byName["WRN"].HasDropout {
		t.Fatal("VGG and WRN must have dropout")
	}
	for _, n := range []string{"ResNet18", "ResNet50", "ResNet101", "VDSR"} {
		if byName[n].HasDropout {
			t.Fatalf("%s must not have dropout", n)
		}
	}
}

func TestDepthOrdering(t *testing.T) {
	ms := All(Scale{}, 4, 4)
	byName := map[string]*Model{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if byName["ResNet101"].ParamCount() <= byName["ResNet50"].ParamCount() {
		t.Fatal("ResNet101 must be larger than ResNet50")
	}
	if byName["WRN"].ParamCount() <= byName["ResNet18"].ParamCount() {
		t.Fatal("WRN must be wider than ResNet18")
	}
}

func TestSavedRefsIncludeAllKinds(t *testing.T) {
	// VGG (pool+dropout) and ResNet (sums) must jointly expose every
	// activation kind of Table II.
	kinds := map[compress.Kind]bool{}
	for _, m := range []*Model{VGG(Scale{}, 4, tensor.NewRNG(7)), ResNet50(Scale{}, 4, tensor.NewRNG(8))} {
		forward(t, m, true)
		seen := map[*nn.ActRef]bool{}
		for _, ref := range m.Net.SavedRefs() {
			if !seen[ref] {
				seen[ref] = true
				kinds[ref.Kind] = true
			}
		}
	}
	for _, k := range []compress.Kind{compress.KindConv, compress.KindReLUToConv, compress.KindPoolDropout} {
		if !kinds[k] {
			t.Fatalf("kind %v never produced", k)
		}
	}
}

func TestVDSRGlobalSkip(t *testing.T) {
	// Zeroing the final conv makes the body contribute nothing, so the
	// global residual skip must pass the input through exactly.
	m := VDSR(Scale{}, tensor.NewRNG(9))
	for _, p := range m.Net.Params() {
		if p.Name == "VDSR.out.W" || p.Name == "VDSR.out.b" {
			p.W.Zero()
		}
	}
	r := tensor.NewRNG(10)
	x := tensor.New(1, 1, m.H, m.W)
	x.FillNormal(r, 0, 1)
	out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, false)
	if e := tensor.MSE(x, out.T); e != 0 {
		t.Fatalf("VDSR skip not identity with zero body: MSE %v", e)
	}
}

func TestMobileNetForwardBackward(t *testing.T) {
	m := MobileNet(Scale{Width: 8, Blocks: 1}, 4, tensor.NewRNG(30))
	out := forward(t, m, true)
	if out.T.Shape != (tensor.Shape{N: 2, C: 4, H: 1, W: 1}) {
		t.Fatalf("MobileNet output %v", out.T.Shape)
	}
	g := tensor.NewLike(out.T)
	g.FillNormal(tensor.NewRNG(31), 0, 0.1)
	dx := m.Net.Backward(g)
	if nn.NaNGuard(dx) {
		t.Fatal("MobileNet backward NaN")
	}
	// Depthwise-separable blocks have far fewer params than a same-width
	// ResNet basic-block model.
	r18 := ResNet18(Scale{Width: 8, Blocks: 1}, 4, tensor.NewRNG(32))
	if m.ParamCount() >= r18.ParamCount() {
		t.Fatalf("MobileNet %d params should be below ResNet18 %d", m.ParamCount(), r18.ParamCount())
	}
}
