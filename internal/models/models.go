// Package models builds scaled-down versions of the six networks the
// paper evaluates (Table I) — VGG-16, ResNet18/50/101, Wide ResNet and
// VDSR — plus a MobileNet-style depthwise-separable classifier from the
// CNR-block family the paper cites. The topologies keep the structural features that drive the
// compression results — CNR (conv/norm/ReLU) blocks everywhere, residual
// sums in the ResNets, bottleneck 1×1 convolutions in ResNet50/101,
// dropout in VGG and WRN (which enables GIST's CSR and BRC), and the
// all-convolutional no-pool body of VDSR — while shrinking width/depth so
// training runs on one CPU core (DESIGN.md substitution 3).
package models

import (
	"fmt"

	"jpegact/internal/nn"
	"jpegact/internal/tensor"
)

// Task distinguishes classification models from super-resolution.
type Task int

const (
	// Classify is image classification (accuracy metric).
	Classify Task = iota
	// SuperRes is single-image super-resolution (PSNR metric).
	SuperRes
)

// Model couples a network with its dataset geometry and metadata.
type Model struct {
	Name       string
	Net        nn.Layer
	Task       Task
	InC        int
	H, W       int
	Classes    int // Classify only
	HasDropout bool
}

// Scale controls the size of every mini model. The zero value selects the
// default test-friendly scale.
type Scale struct {
	Width  int // base channel count (default 8)
	Blocks int // residual blocks per stage (default 2)
	H, W   int // input spatial size (default 16)
}

func (s Scale) orDefault() Scale {
	if s.Width == 0 {
		s.Width = 8
	}
	if s.Blocks == 0 {
		s.Blocks = 2
	}
	if s.H == 0 {
		s.H = 16
	}
	if s.W == 0 {
		s.W = 16
	}
	return s
}

// cnr appends a conv/norm/ReLU block — the repeating unit of Fig. 3.
func cnr(seq *nn.Sequential, name string, inC, outC, kernel int, opts nn.ConvOpts, rng *tensor.RNG) {
	seq.Add(
		nn.NewConv2D(name+".conv", inC, outC, kernel, opts, rng),
		nn.NewBatchNorm(name+".bn", outC),
		nn.NewReLU(name+".relu"),
	)
}

// basicBlock is the ResNet18/WRN unit: two 3×3 CNRs with a residual sum.
func basicBlock(name string, inC, outC, stride int, dropout float64, rng *tensor.RNG) nn.Layer {
	body := nn.NewSequential(name + ".body")
	body.Add(
		nn.NewConv2D(name+".conv1", inC, outC, 3, nn.ConvOpts{Stride: stride, Pad: 1}, rng),
		nn.NewBatchNorm(name+".bn1", outC),
		nn.NewReLU(name+".relu1"),
	)
	if dropout > 0 {
		body.Add(nn.NewDropout(name+".drop", dropout, rng))
	}
	body.Add(
		nn.NewConv2D(name+".conv2", outC, outC, 3, nn.ConvOpts{Pad: 1}, rng),
		nn.NewBatchNorm(name+".bn2", outC),
	)
	var shortcut nn.Layer
	if stride != 1 || inC != outC {
		shortcut = nn.NewSequential(name+".proj",
			nn.NewConv2D(name+".projconv", inC, outC, 1, nn.ConvOpts{Stride: stride}, rng),
			nn.NewBatchNorm(name+".projbn", outC),
		)
	}
	return nn.NewSequential(name,
		nn.NewResidual(name+".res", body, shortcut),
		nn.NewReLU(name+".relu2"),
	)
}

// bottleneckBlock is the ResNet50/101 unit: 1×1 reduce, 3×3, 1×1 expand.
// The 1×1 convolutions are what create the large-activation/low-FLOP
// layers that hurt GIST's CSR conversion (§VI-D).
func bottleneckBlock(name string, inC, outC, stride int, rng *tensor.RNG) nn.Layer {
	mid := outC / 2
	if mid < 1 {
		mid = 1
	}
	body := nn.NewSequential(name+".body",
		nn.NewConv2D(name+".conv1", inC, mid, 1, nn.ConvOpts{}, rng),
		nn.NewBatchNorm(name+".bn1", mid),
		nn.NewReLU(name+".relu1"),
		nn.NewConv2D(name+".conv2", mid, mid, 3, nn.ConvOpts{Stride: stride, Pad: 1}, rng),
		nn.NewBatchNorm(name+".bn2", mid),
		nn.NewReLU(name+".relu2"),
		nn.NewConv2D(name+".conv3", mid, outC, 1, nn.ConvOpts{}, rng),
		nn.NewBatchNorm(name+".bn3", outC),
	)
	var shortcut nn.Layer
	if stride != 1 || inC != outC {
		shortcut = nn.NewSequential(name+".proj",
			nn.NewConv2D(name+".projconv", inC, outC, 1, nn.ConvOpts{Stride: stride}, rng),
			nn.NewBatchNorm(name+".projbn", outC),
		)
	}
	return nn.NewSequential(name,
		nn.NewResidual(name+".res", body, shortcut),
		nn.NewReLU(name+".relu3"),
	)
}

func resnet(name string, bottleneck bool, stages []int, sc Scale, classes int, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	w := sc.Width
	net := nn.NewSequential(name)
	cnr(net, name+".stem", 3, w, 3, nn.ConvOpts{Pad: 1}, rng)
	inC := w
	for si, blocks := range stages {
		outC := w << si
		for b := 0; b < blocks; b++ {
			stride := 1
			if si > 0 && b == 0 {
				stride = 2
			}
			bname := fmt.Sprintf("%s.s%db%d", name, si, b)
			if bottleneck {
				net.Add(bottleneckBlock(bname, inC, outC, stride, rng))
			} else {
				net.Add(basicBlock(bname, inC, outC, stride, 0, rng))
			}
			inC = outC
		}
	}
	net.Add(nn.NewGlobalAvgPool(name+".gap"), nn.NewLinear(name+".fc", inC, classes, rng))
	return &Model{Name: name, Net: net, Task: Classify, InC: 3, H: sc.H, W: sc.W, Classes: classes}
}

// ResNet18 builds the basic-block mini ResNet.
func ResNet18(sc Scale, classes int, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	return resnet("ResNet18", false, []int{sc.Blocks, sc.Blocks}, sc, classes, rng)
}

// ResNet50 builds the bottleneck mini ResNet.
func ResNet50(sc Scale, classes int, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	return resnet("ResNet50", true, []int{sc.Blocks, sc.Blocks}, sc, classes, rng)
}

// ResNet101 builds the deeper bottleneck mini ResNet.
func ResNet101(sc Scale, classes int, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	return resnet("ResNet101", true, []int{sc.Blocks, sc.Blocks + 1, sc.Blocks}, sc, classes, rng)
}

// WRN builds the Wide ResNet: basic blocks at double width with dropout
// inside each block (Zagoruyko & Komodakis).
func WRN(sc Scale, classes int, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	w := sc.Width * 2
	net := nn.NewSequential("WRN")
	cnr(net, "WRN.stem", 3, w, 3, nn.ConvOpts{Pad: 1}, rng)
	inC := w
	for si := 0; si < 2; si++ {
		outC := w << si
		for b := 0; b < sc.Blocks; b++ {
			stride := 1
			if si > 0 && b == 0 {
				stride = 2
			}
			bname := fmt.Sprintf("WRN.s%db%d", si, b)
			net.Add(basicBlock(bname, inC, outC, stride, 0.3, rng))
			inC = outC
		}
	}
	net.Add(nn.NewGlobalAvgPool("WRN.gap"), nn.NewLinear("WRN.fc", inC, classes, rng))
	return &Model{Name: "WRN", Net: net, Task: Classify, InC: 3, H: sc.H, W: sc.W, Classes: classes, HasDropout: true}
}

// VGG builds the mini VGG-16: plain CNR stacks with max-pool and dropout
// between stages, no residual connections.
func VGG(sc Scale, classes int, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	w := sc.Width
	net := nn.NewSequential("VGG")
	inC := 3
	for si := 0; si < 2; si++ {
		outC := w << si
		for b := 0; b < 2; b++ {
			cnr(net, fmt.Sprintf("VGG.s%dc%d", si, b), inC, outC, 3, nn.ConvOpts{Pad: 1}, rng)
			inC = outC
		}
		net.Add(
			nn.NewMaxPool2(fmt.Sprintf("VGG.pool%d", si)),
			nn.NewDropout(fmt.Sprintf("VGG.drop%d", si), 0.4, rng),
		)
	}
	net.Add(nn.NewGlobalAvgPool("VGG.gap"), nn.NewLinear("VGG.fc", inC, classes, rng))
	return &Model{Name: "VGG", Net: net, Task: Classify, InC: 3, H: sc.H, W: sc.W, Classes: classes, HasDropout: true}
}

// VDSR builds the mini super-resolution network: an all-convolutional
// CNR body with a global residual skip (the network predicts the
// high-frequency residual added back to the interpolated input). All
// activations have few channels and large spatial dims — the property
// behind VDSR's distinctive offload behaviour in Fig. 20.
func VDSR(sc Scale, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	w := sc.Width
	body := nn.NewSequential("VDSR.body")
	cnr(body, "VDSR.in", 1, w, 3, nn.ConvOpts{Pad: 1}, rng)
	for i := 0; i < sc.Blocks+1; i++ {
		cnr(body, fmt.Sprintf("VDSR.mid%d", i), w, w, 3, nn.ConvOpts{Pad: 1}, rng)
	}
	body.Add(nn.NewConv2D("VDSR.out", w, 1, 3, nn.ConvOpts{Pad: 1, Bias: true}, rng))
	net := nn.NewSequential("VDSR", nn.NewResidual("VDSR.skip", body, nil))
	return &Model{Name: "VDSR", Net: net, Task: SuperRes, InC: 1, H: sc.H, W: sc.W}
}

// All returns every classification model at the given scale, in Table I
// order, plus VDSR.
func All(sc Scale, classes int, seed uint64) []*Model {
	rng := tensor.NewRNG(seed)
	return []*Model{
		VGG(sc, classes, rng),
		ResNet50(sc, classes, rng),
		ResNet101(sc, classes, rng),
		WRN(sc, classes, rng),
		ResNet18(sc, classes, rng),
		VDSR(sc, rng),
	}
}

// ParamCount returns the number of learnable scalars in the model.
func (m *Model) ParamCount() int {
	total := 0
	for _, p := range m.Net.Params() {
		total += p.W.Elems()
	}
	return total
}

// separableBlock is a MobileNet-style depthwise-separable unit: a
// depthwise 3×3 CNR followed by a pointwise 1×1 CNR.
func separableBlock(name string, inC, outC, stride int, rng *tensor.RNG) nn.Layer {
	return nn.NewSequential(name,
		nn.NewDepthwiseConv2D(name+".dw", inC, 3, nn.ConvOpts{Stride: stride, Pad: 1}, rng),
		nn.NewBatchNorm(name+".dwbn", inC),
		nn.NewReLU(name+".dwrelu"),
		nn.NewConv2D(name+".pw", inC, outC, 1, nn.ConvOpts{}, rng),
		nn.NewBatchNorm(name+".pwbn", outC),
		nn.NewReLU(name+".pwrelu"),
	)
}

// MobileNet builds a mini depthwise-separable classifier — the paper's
// "flexible enough for other … activations" claim exercised on the
// MobileNet family it cites.
func MobileNet(sc Scale, classes int, rng *tensor.RNG) *Model {
	sc = sc.orDefault()
	w := sc.Width
	net := nn.NewSequential("MobileNet")
	cnr(net, "MobileNet.stem", 3, w, 3, nn.ConvOpts{Pad: 1}, rng)
	inC := w
	for si := 0; si < 2; si++ {
		outC := w << si
		for b := 0; b < sc.Blocks; b++ {
			stride := 1
			if si > 0 && b == 0 {
				stride = 2
			}
			net.Add(separableBlock(fmt.Sprintf("MobileNet.s%db%d", si, b), inC, outC, stride, rng))
			inC = outC
		}
	}
	net.Add(nn.NewGlobalAvgPool("MobileNet.gap"), nn.NewLinear("MobileNet.fc", inC, classes, rng))
	return &Model{Name: "MobileNet", Net: net, Task: Classify, InC: 3, H: sc.H, W: sc.W, Classes: classes}
}
