package models

import (
	"reflect"
	"testing"

	"jpegact/internal/nn"
	"jpegact/internal/tensor"
)

// allWithMobileNet is every bundled model, including the MobileNet
// variant that All omits.
func allWithMobileNet(sc Scale, classes int, seed uint64) []*Model {
	out := All(sc, classes, seed)
	return append(out, MobileNet(sc, classes, tensor.NewRNG(seed)))
}

// TestNetStateRoundTrip: for every bundled model, CaptureNetState /
// RestoreNetState must rewind ALL forward side effects — BatchNorm
// running stats and dropout RNG position — so a replayed training
// forward is bit-identical to the original. This is the property the
// recompute recovery path and the data-parallel microbatch replay both
// rest on.
func TestNetStateRoundTrip(t *testing.T) {
	for _, m := range allWithMobileNet(Scale{}, 4, 3) {
		st0 := nn.CaptureNetState(m.Net)
		if len(st0) == 0 {
			t.Fatalf("%s: no Stateful layers captured", m.Name)
		}

		out1 := forward(t, m, true)
		st1 := nn.CaptureNetState(m.Net)
		if len(st1) != len(st0) {
			t.Fatalf("%s: snapshot length changed %d -> %d", m.Name, len(st0), len(st1))
		}

		// The training forward must actually have moved state: BN running
		// stats always, the dropout RNG position when the model has one.
		bnMoved, rngMoved := false, false
		for i := range st1 {
			if _, isRNG := st1[i].(uint64); isRNG {
				if st1[i] != st0[i] {
					rngMoved = true
				}
			} else if !reflect.DeepEqual(st1[i], st0[i]) {
				bnMoved = true
			}
		}
		if !bnMoved {
			t.Fatalf("%s: training forward left every BatchNorm running stat untouched", m.Name)
		}
		if m.HasDropout && !rngMoved {
			t.Fatalf("%s: training forward did not advance the dropout RNG", m.Name)
		}
		if !m.HasDropout && rngMoved {
			t.Fatalf("%s: dropout RNG entry present in a dropout-free model", m.Name)
		}

		// Rewind and verify the restore is lossless.
		nn.RestoreNetState(m.Net, st0)
		if back := nn.CaptureNetState(m.Net); !reflect.DeepEqual(back, st0) {
			t.Fatalf("%s: restore(st0) then capture differs from st0", m.Name)
		}

		// A replayed forward from the rewound state must be bit-identical,
		// in both its output and its side effects.
		out2 := forward(t, m, true)
		if out1.T.Shape != out2.T.Shape {
			t.Fatalf("%s: replay shape %v vs %v", m.Name, out2.T.Shape, out1.T.Shape)
		}
		for i, v := range out2.T.Data {
			if v != out1.T.Data[i] {
				t.Fatalf("%s: replay output diverges at %d: %v vs %v", m.Name, i, v, out1.T.Data[i])
			}
		}
		if st2 := nn.CaptureNetState(m.Net); !reflect.DeepEqual(st2, st1) {
			t.Fatalf("%s: replay side effects differ from the original forward", m.Name)
		}
	}
}

// TestNetStateEvalForwardIsStateless: an eval forward (train=false) must
// not move any captured state — BN uses the running stats without
// updating them, and eval dropout draws nothing from the RNG. The
// data-parallel trainer's validation pass depends on this.
func TestNetStateEvalForwardIsStateless(t *testing.T) {
	for _, m := range allWithMobileNet(Scale{}, 4, 4) {
		st0 := nn.CaptureNetState(m.Net)
		forward(t, m, false)
		if st1 := nn.CaptureNetState(m.Net); !reflect.DeepEqual(st1, st0) {
			t.Fatalf("%s: eval forward mutated captured state", m.Name)
		}
	}
}

// TestNetStateSaltedRestoreDiverges: restoring a salted snapshot must
// change what a dropout model's forward computes (the per-microbatch
// decorrelation the data-parallel trainer uses), while salting a
// dropout-free model's snapshot is a no-op on the forward output.
func TestNetStateSaltedRestoreDiverges(t *testing.T) {
	for _, m := range allWithMobileNet(Scale{}, 4, 5) {
		st0 := nn.CaptureNetState(m.Net)
		out1 := forward(t, m, true)

		nn.RestoreNetState(m.Net, nn.SaltNetState(st0, 7))
		out2 := forward(t, m, true)

		same := true
		for i, v := range out2.T.Data {
			if v != out1.T.Data[i] {
				same = false
				break
			}
		}
		if m.HasDropout && same {
			t.Fatalf("%s: salted dropout RNG produced an identical forward", m.Name)
		}
		if !m.HasDropout && !same {
			t.Fatalf("%s: salt changed the forward of a dropout-free model", m.Name)
		}
	}
}
