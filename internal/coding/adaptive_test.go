package coding

import (
	"testing"
	"testing/quick"

	"jpegact/internal/tensor"
)

func TestAdaptiveRoundtrip(t *testing.T) {
	r := tensor.NewRNG(1)
	for _, sp := range []float64{0, 0.3, 0.7, 0.95, 1.0} {
		blocks := randomBlocks(r, 23, sp, 90)
		enc := EncodeJPEGBlocksAdaptive(blocks)
		dec, err := DecodeJPEGBlocksAdaptive(enc)
		if err != nil {
			t.Fatalf("sparsity %v: %v", sp, err)
		}
		if len(dec) != len(blocks) {
			t.Fatalf("count %d", len(dec))
		}
		for i := range blocks {
			if blocks[i] != dec[i] {
				t.Fatalf("sparsity %v block %d mismatch", sp, i)
			}
		}
	}
}

func TestAdaptiveEmptyAndCorrupt(t *testing.T) {
	enc := EncodeJPEGBlocksAdaptive(nil)
	dec, err := DecodeJPEGBlocksAdaptive(enc)
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty: %v %d", err, len(dec))
	}
	if _, err := DecodeJPEGBlocksAdaptive([]byte{1, 0}); err != ErrCorrupt {
		t.Fatalf("short stream: %v", err)
	}
	if _, err := DecodeJPEGBlocksAdaptive(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated table accepted")
	}
}

func TestAdaptiveBeatsStaticOnSkewedData(t *testing.T) {
	// Data with a tiny symbol alphabet (constant small values at fixed
	// positions) should benefit from a fitted table despite the header.
	blocks := make([][64]int8, 256)
	r := tensor.NewRNG(2)
	for i := range blocks {
		for j := 0; j < 64; j += 2 {
			blocks[i][j] = int8(1 + r.Intn(2)) // values 1..2 only
		}
	}
	static := len(EncodeJPEGBlocks(blocks))
	adaptive := len(EncodeJPEGBlocksAdaptive(blocks))
	if adaptive >= static {
		t.Fatalf("adaptive %dB should beat static %dB on skewed symbols", adaptive, static)
	}
}

func TestAdaptiveHeaderCostVisibleOnTinyInputs(t *testing.T) {
	// One block: the shipped tables dominate and static wins — the
	// rate-area tradeoff that justifies fixed tables in hardware.
	r := tensor.NewRNG(3)
	blocks := randomBlocks(r, 1, 0.5, 60)
	static := len(EncodeJPEGBlocks(blocks))
	adaptive := len(EncodeJPEGBlocksAdaptive(blocks))
	if adaptive <= static {
		t.Fatalf("adaptive %dB should pay a header vs static %dB on one block", adaptive, static)
	}
}

func TestAdaptivePropertyRoundtrip(t *testing.T) {
	r := tensor.NewRNG(4)
	f := func(nBlocks uint8, sp uint8, amp uint8) bool {
		n := int(nBlocks%12) + 1
		a := int(amp%126) + 1
		blocks := randomBlocks(r, n, float64(sp%101)/100, a)
		dec, err := DecodeJPEGBlocksAdaptive(EncodeJPEGBlocksAdaptive(blocks))
		if err != nil || len(dec) != n {
			return false
		}
		for i := range blocks {
			if blocks[i] != dec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCanonicalKraft(t *testing.T) {
	// The generated code must satisfy Kraft equality/inequality and
	// decode every symbol.
	r := tensor.NewRNG(5)
	var hist [256]int
	for i := 0; i < 256; i++ {
		if r.Float64() < 0.4 {
			hist[i] = 1 + r.Intn(10000)
		}
	}
	spec := buildCanonical(&hist)
	var kraft float64
	for l := 1; l <= 16; l++ {
		kraft += float64(spec.counts[l-1]) / float64(int(1)<<uint(l))
	}
	if kraft > 1.0000001 {
		t.Fatalf("Kraft sum %v > 1", kraft)
	}
	tbl := buildHuffTable(spec)
	for _, sym := range spec.values {
		var w BitWriter
		tbl.encode(&w, sym)
		got, err := tbl.decode(NewBitReader(w.Bytes()))
		if err != nil || got != sym {
			t.Fatalf("symbol %#x roundtrip: %v %#x", sym, err, got)
		}
	}
}

func TestBuildCanonicalSingleSymbol(t *testing.T) {
	var hist [256]int
	hist[7] = 42
	spec := buildCanonical(&hist)
	if spec.counts[0] != 1 || len(spec.values) != 1 || spec.values[0] != 7 {
		t.Fatalf("single-symbol spec %+v", spec)
	}
}
