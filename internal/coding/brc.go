package coding

// Binary ReLU Compression (BRC, §II-B1): a ReLU activation that is not
// consumed by a following conv layer only needs its sign in the backward
// pass, because ∇x = (x > 0) ? ∇r : 0 (Eqn. 3). BRC therefore stores one
// bit per element — a fixed 32× compression over float32.

// EncodeBRC packs the (x > 0) mask of vals, one bit per element, LSB
// first within each byte.
func EncodeBRC(vals []float32) []byte {
	out := make([]byte, (len(vals)+7)/8)
	for i, v := range vals {
		if v > 0 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// DecodeBRC expands the mask back to booleans; n is the element count.
func DecodeBRC(data []byte, n int) ([]bool, error) {
	if len(data) < (n+7)/8 {
		return nil, ErrCorrupt
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = data[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}

// ApplyBRCMask implements the BRC backward pass: grad elements whose mask
// bit is clear are zeroed in place.
func ApplyBRCMask(mask []bool, grad []float32) {
	if len(mask) != len(grad) {
		panic("coding: BRC mask/grad length mismatch")
	}
	for i, m := range mask {
		if !m {
			grad[i] = 0
		}
	}
}
