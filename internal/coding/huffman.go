package coding

// JPEG Annex-K Huffman tables for the luminance component, used by the
// JPEG-BASE RLE coder. A table is specified as in the JPEG standard: a
// count of codes per length (1..16) and the symbol values in code order.

type huffSpec struct {
	counts [16]byte // number of codes of each length 1..16
	values []byte   // symbols in increasing code order
}

// huffTable holds the generated canonical codes for encoding and a
// length-indexed structure for decoding.
type huffTable struct {
	code map[byte]huffCode // symbol -> code
	// Decoding: for each code length L (1..16), minCode/maxCode and the
	// index of the first value of that length (the standard JPEG decode
	// procedure).
	minCode [17]int32
	maxCode [17]int32
	valPtr  [17]int32
	values  []byte
}

type huffCode struct {
	bits uint32
	len  uint
}

func buildHuffTable(spec huffSpec) *huffTable {
	t := &huffTable{code: make(map[byte]huffCode, len(spec.values)), values: spec.values}
	code := int32(0)
	k := int32(0)
	for l := 1; l <= 16; l++ {
		t.valPtr[l] = k
		t.minCode[l] = code
		n := int32(spec.counts[l-1])
		for i := int32(0); i < n; i++ {
			t.code[spec.values[k]] = huffCode{bits: uint32(code), len: uint(l)}
			code++
			k++
		}
		t.maxCode[l] = code - 1
		if n == 0 {
			t.maxCode[l] = -1
		}
		code <<= 1
	}
	return t
}

// encode writes the code for symbol s.
func (t *huffTable) encode(w *BitWriter, s byte) {
	c, ok := t.code[s]
	if !ok {
		panic("coding: symbol not in Huffman table")
	}
	w.WriteBits(c.bits, c.len)
}

// decode reads one symbol.
func (t *huffTable) decode(r *BitReader) (byte, error) {
	code := int32(0)
	for l := 1; l <= 16; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(b)
		if t.maxCode[l] >= 0 && code <= t.maxCode[l] && code >= t.minCode[l] {
			return t.values[t.valPtr[l]+code-t.minCode[l]], nil
		}
	}
	return 0, ErrCorrupt
}

// Standard luminance DC table (JPEG Annex K.3.3.1).
var dcLuminanceSpec = huffSpec{
	counts: [16]byte{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
	values: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
}

// Standard luminance AC table (JPEG Annex K.3.3.2).
var acLuminanceSpec = huffSpec{
	counts: [16]byte{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125},
	values: []byte{
		0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
		0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
		0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
		0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0,
		0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16,
		0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
		0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
		0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
		0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
		0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
		0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
		0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
		0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
		0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
		0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
		0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
		0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4,
		0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
		0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea,
		0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
		0xf9, 0xfa,
	},
}

var (
	dcTable = buildHuffTable(dcLuminanceSpec)
	acTable = buildHuffTable(acLuminanceSpec)
)
