// Package coding implements the lossless back-end coders used by the
// JPEG-ACT paper and its baselines:
//
//   - the JPEG run-length + Huffman entropy codec (RLE, §II-B5/III-E),
//   - Zero Value Compression (ZVC, §II-B4),
//   - Binary ReLU Compression (BRC, §II-B1),
//   - Compressed Sparse Row storage (CSR, as used by GIST),
//   - simple zero run-length encoding (§II-B3).
//
// All coders consume/produce byte slices; compression ratios are computed
// against the original 32-bit float activation storage by the compress
// package.
package coding

import "errors"

// ErrCorrupt is returned when a compressed stream cannot be decoded.
var ErrCorrupt = errors.New("coding: corrupt stream")

// BitWriter accumulates an MSB-first bit stream.
type BitWriter struct {
	buf  []byte
	cur  uint32
	nCur uint // bits currently held in cur (< 8)
}

// WriteBits appends the low n bits of v, MSB first. n must be ≤ 24.
func (w *BitWriter) WriteBits(v uint32, n uint) {
	if n == 0 {
		return
	}
	v &= (1 << n) - 1
	w.cur = w.cur<<n | v
	w.nCur += n
	for w.nCur >= 8 {
		w.nCur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nCur))
	}
	w.cur &= (1 << w.nCur) - 1
}

// Bytes flushes any partial byte (padded with 1s, as JPEG does) and
// returns the encoded stream.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		pad := 8 - w.nCur
		w.cur = w.cur<<pad | ((1 << pad) - 1)
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// BitReader reads an MSB-first bit stream produced by BitWriter.
type BitReader struct {
	buf  []byte
	pos  int // next byte index
	cur  uint32
	nCur uint
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits reads n bits (n ≤ 24), returning them in the low bits.
func (r *BitReader) ReadBits(n uint) (uint32, error) {
	for r.nCur < n {
		if r.pos >= len(r.buf) {
			return 0, ErrCorrupt
		}
		r.cur = r.cur<<8 | uint32(r.buf[r.pos])
		r.pos++
		r.nCur += 8
	}
	r.nCur -= n
	v := (r.cur >> r.nCur) & ((1 << n) - 1)
	r.cur &= (1 << r.nCur) - 1
	return v, nil
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() (uint32, error) { return r.ReadBits(1) }
