package coding

import "jpegact/internal/dct"

// The JPEG entropy coder (the RLE unit of JPEG-BASE): quantized 8×8 blocks
// are zigzag-scanned, zero runs are folded into (run, size) symbols coded
// with the standard Huffman tables, and the DC coefficient of each block is
// coded as a difference from the previous block's DC.

// magnitudeCategory returns the JPEG size category of v: the number of
// bits needed for |v| (0 for v==0).
func magnitudeCategory(v int32) uint {
	if v < 0 {
		v = -v
	}
	n := uint(0)
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// vliBits returns the JPEG variable-length-integer bit pattern for v in a
// field of the given size: positive values as-is, negative values
// one's-complement style (v - 1 in two's complement truncated to size).
func vliBits(v int32, size uint) uint32 {
	if v >= 0 {
		return uint32(v)
	}
	return uint32(v-1) & ((1 << size) - 1)
}

// vliDecode reverses vliBits.
func vliDecode(bits uint32, size uint) int32 {
	if size == 0 {
		return 0
	}
	if bits>>(size-1) != 0 { // leading 1 → non-negative
		return int32(bits)
	}
	return int32(bits) - int32(uint32(1)<<size) + 1
}

// EncodeJPEGBlocks entropy-codes a sequence of quantized 8×8 blocks
// (each a [64]int8 in row-major order). The first two bytes of the output
// hold the block count (little endian).
func EncodeJPEGBlocks(blocks [][64]int8) []byte {
	var w BitWriter
	prevDC := int32(0)
	for bi := range blocks {
		b := &blocks[bi]
		// DC: difference from previous block.
		dc := int32(b[0])
		diff := dc - prevDC
		prevDC = dc
		size := magnitudeCategory(diff)
		dcTable.encode(&w, byte(size))
		w.WriteBits(vliBits(diff, size), size)

		// AC: zigzag scan with (run, size) symbols.
		run := 0
		for i := 1; i < 64; i++ {
			v := int32(b[dct.Zigzag[i]])
			if v == 0 {
				run++
				continue
			}
			for run >= 16 {
				acTable.encode(&w, 0xf0) // ZRL: 16 zeros
				run -= 16
			}
			s := magnitudeCategory(v)
			acTable.encode(&w, byte(uint(run)<<4|s))
			w.WriteBits(vliBits(v, s), s)
			run = 0
		}
		if run > 0 {
			acTable.encode(&w, 0x00) // EOB
		}
	}
	body := w.Bytes()
	n := len(blocks)
	out := make([]byte, 0, len(body)+4)
	out = append(out, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(out, body...)
}

// DecodeJPEGBlocks reverses EncodeJPEGBlocks.
func DecodeJPEGBlocks(data []byte) ([][64]int8, error) {
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	n := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	// Sanity cap: every block needs at least one coded bit, so a count
	// wildly beyond the stream length is corruption (and would otherwise
	// be an allocation bomb).
	if n < 0 || n > 8*len(data) {
		return nil, ErrCorrupt
	}
	r := NewBitReader(data[4:])
	blocks := make([][64]int8, n)
	prevDC := int32(0)
	for bi := 0; bi < n; bi++ {
		b := &blocks[bi]
		size, err := dcTable.decode(r)
		if err != nil {
			return nil, err
		}
		bits, err := r.ReadBits(uint(size))
		if err != nil {
			return nil, err
		}
		diff := vliDecode(bits, uint(size))
		dc := prevDC + diff
		prevDC = dc
		b[0] = int8(dc)

		for i := 1; i < 64; {
			sym, err := acTable.decode(r)
			if err != nil {
				return nil, err
			}
			if sym == 0x00 { // EOB
				break
			}
			if sym == 0xf0 { // ZRL
				i += 16
				if i > 64 {
					return nil, ErrCorrupt
				}
				continue
			}
			run := int(sym >> 4)
			s := uint(sym & 0x0f)
			i += run
			if i >= 64 {
				return nil, ErrCorrupt
			}
			bits, err := r.ReadBits(s)
			if err != nil {
				return nil, err
			}
			b[dct.Zigzag[i]] = int8(vliDecode(bits, s))
			i++
		}
	}
	return blocks, nil
}
