package coding

import (
	"bytes"
	"testing"

	"jpegact/internal/frame"
	"jpegact/internal/tensor"
)

// Native fuzz targets: every decoder must return an error (or garbage
// values) on arbitrary input — never panic, never over-allocate. The
// seed corpus runs as part of the normal test suite; `go test -fuzz`
// explores further.

func FuzzDecodeJPEGBlocks(f *testing.F) {
	var blk [64]int8
	blk[0] = 5
	blk[9] = -3
	f.Add(EncodeJPEGBlocks([][64]int8{blk}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := DecodeJPEGBlocks(data)
		if err == nil && len(blocks) > 8*len(data) {
			t.Fatalf("decoded %d blocks from %d bytes", len(blocks), len(data))
		}
	})
}

func FuzzDecodeJPEGBlocksAdaptive(f *testing.F) {
	var blk [64]int8
	blk[0] = 5
	blk[13] = 11
	f.Add(EncodeJPEGBlocksAdaptive([][64]int8{blk}))
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeJPEGBlocksAdaptive(data)
	})
}

func FuzzDecodeZVC(f *testing.F) {
	f.Add(EncodeZVC([]int8{1, 0, 2, 0, 0, 0, 0, 3, 4}), 9)
	f.Add([]byte{0xff}, 8)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		out, err := DecodeZVC(data, n)
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d values, want %d", len(out), n)
		}
	})
}

func FuzzDecodeRLE(f *testing.F) {
	f.Add(EncodeRLE([]int8{0, 0, 5, 0, -1}), 5)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		_, _ = DecodeRLE(data, n)
	})
}

func FuzzDecodeBRC(f *testing.F) {
	f.Add(EncodeBRC([]float32{1, -2, 0, 3, 0, 0, -1, 4, 5}), 9)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xAA}, 8)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		mask, err := DecodeBRC(data, n)
		if err == nil && len(mask) != n {
			t.Fatalf("decoded %d mask bits, want %d", len(mask), n)
		}
	})
}

// FuzzDecodeFrame drives the offload container decoder with arbitrary
// bytes: it must return a typed error or a frame that re-encodes
// byte-identically — and never panic or over-allocate.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(frame.EncodeFrame(&frame.Frame{
		Codec:   frame.CodecJPEG,
		Kind:    2,
		Shape:   tensor.Shape{N: 1, C: 3, H: 8, W: 8},
		Scales:  []float32{0.5, 1.25, -3},
		Payload: []byte{1, 2, 3, 0, 0, 7},
	}))
	f.Add(frame.EncodeFrame(&frame.Frame{
		Codec:   frame.CodecBRC,
		Kind:    1,
		Shape:   tensor.Shape{N: 1, C: 1, H: 4, W: 4},
		Payload: []byte{0xff, 0x0f},
	}))
	f.Add([]byte("JAFR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := frame.DecodeFrame(data)
		if err != nil {
			return
		}
		if re := frame.EncodeFrame(fr); !bytes.Equal(re, data) {
			t.Fatalf("decoded frame does not re-encode byte-identically")
		}
	})
}

func FuzzDecodeCSR(f *testing.F) {
	f.Add(EncodeCSR([]int8{0, 1, 0, 2, 0, 0, 3, 0}, 4), 8)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		_, _ = DecodeCSR(data, n)
	})
}
