package coding

import "testing"

// Native fuzz targets: every decoder must return an error (or garbage
// values) on arbitrary input — never panic, never over-allocate. The
// seed corpus runs as part of the normal test suite; `go test -fuzz`
// explores further.

func FuzzDecodeJPEGBlocks(f *testing.F) {
	var blk [64]int8
	blk[0] = 5
	blk[9] = -3
	f.Add(EncodeJPEGBlocks([][64]int8{blk}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := DecodeJPEGBlocks(data)
		if err == nil && len(blocks) > 8*len(data) {
			t.Fatalf("decoded %d blocks from %d bytes", len(blocks), len(data))
		}
	})
}

func FuzzDecodeJPEGBlocksAdaptive(f *testing.F) {
	var blk [64]int8
	blk[0] = 5
	blk[13] = 11
	f.Add(EncodeJPEGBlocksAdaptive([][64]int8{blk}))
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeJPEGBlocksAdaptive(data)
	})
}

func FuzzDecodeZVC(f *testing.F) {
	f.Add(EncodeZVC([]int8{1, 0, 2, 0, 0, 0, 0, 3, 4}), 9)
	f.Add([]byte{0xff}, 8)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		out, err := DecodeZVC(data, n)
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d values, want %d", len(out), n)
		}
	})
}

func FuzzDecodeRLE(f *testing.F) {
	f.Add(EncodeRLE([]int8{0, 0, 5, 0, -1}), 5)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		_, _ = DecodeRLE(data, n)
	})
}

func FuzzDecodeCSR(f *testing.F) {
	f.Add(EncodeCSR([]int8{0, 1, 0, 2, 0, 0, 3, 0}, 4), 8)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		_, _ = DecodeCSR(data, n)
	})
}
