package coding

import (
	"bytes"
	"runtime"
	"testing"

	"jpegact/internal/parallel"
)

func makeTestBlocks(n int) [][64]int8 {
	blocks := make([][64]int8, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range blocks {
		for j := 0; j < 64; j++ {
			state = state*6364136223846793005 + 1442695040888963407
			// ~70% zeros, like shift-quantized DCT coefficients.
			if state>>61 < 3 {
				blocks[i][j] = int8(state >> 33)
			}
		}
	}
	return blocks
}

// The block encoder must produce the exact stream of the flat encoder —
// that is what makes pooled block encoding a drop-in replacement — and
// it must do so at every worker count.
func TestEncodeZVCBlocksMatchesFlat(t *testing.T) {
	for _, nb := range []int{0, 1, 7, 64, 65, 1000} {
		blocks := makeTestBlocks(nb)
		flat := make([]int8, 0, nb*64)
		for i := range blocks {
			flat = append(flat, blocks[i][:]...)
		}
		want := EncodeZVC(flat)
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			old := parallel.SetWorkers(w)
			got := EncodeZVCBlocks(blocks)
			if !bytes.Equal(got, want) {
				t.Fatalf("nb=%d workers=%d: block stream differs from flat stream", nb, w)
			}
			if sz := ZVCSizeBlocks(blocks); sz != len(want) {
				t.Fatalf("nb=%d workers=%d: ZVCSizeBlocks=%d want %d", nb, w, sz, len(want))
			}
			parallel.SetWorkers(old)
		}
	}
}

func TestDecodeZVCBlocksRoundtrip(t *testing.T) {
	for _, nb := range []int{0, 1, 7, 64, 65, 1000} {
		blocks := makeTestBlocks(nb)
		enc := EncodeZVCBlocks(blocks)
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			old := parallel.SetWorkers(w)
			dec, err := DecodeZVCBlocks(enc, nb)
			if err != nil {
				t.Fatalf("nb=%d workers=%d: decode error: %v", nb, w, err)
			}
			for i := range blocks {
				if dec[i] != blocks[i] {
					t.Fatalf("nb=%d workers=%d: block %d differs", nb, w, i)
				}
			}
			parallel.SetWorkers(old)
		}
	}
}

// DecodeZVCBlocksInto must fully overwrite dirty destination blocks.
func TestDecodeZVCBlocksIntoOverwritesDst(t *testing.T) {
	blocks := makeTestBlocks(10)
	enc := EncodeZVCBlocks(blocks)
	dst := make([][64]int8, 10)
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] = -1
		}
	}
	if err := DecodeZVCBlocksInto(dst, enc); err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if dst[i] != blocks[i] {
			t.Fatalf("block %d not fully overwritten", i)
		}
	}
}

func TestDecodeZVCBlocksCorrupt(t *testing.T) {
	blocks := makeTestBlocks(4)
	enc := EncodeZVCBlocks(blocks)
	if _, err := DecodeZVCBlocks(enc[:len(enc)-1], 4); err != ErrCorrupt {
		t.Fatalf("truncated payload: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodeZVCBlocks(nil, 4); err != ErrCorrupt {
		t.Fatalf("empty stream: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodeZVCBlocks([]byte{0xFF}, 1); err != ErrCorrupt {
		t.Fatalf("missing mask payload: got %v, want ErrCorrupt", err)
	}
}

func BenchmarkEncodeZVCBlocks(b *testing.B) {
	blocks := makeTestBlocks(1024)
	b.SetBytes(int64(len(blocks) * 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeZVCBlocks(blocks)
	}
}

func BenchmarkDecodeZVCBlocks(b *testing.B) {
	blocks := makeTestBlocks(1024)
	enc := EncodeZVCBlocks(blocks)
	dst := make([][64]int8, len(blocks))
	b.SetBytes(int64(len(blocks) * 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeZVCBlocksInto(dst, enc); err != nil {
			b.Fatal(err)
		}
	}
}
