package coding

import (
	"math/bits"

	"jpegact/internal/parallel"
)

// Zero Value Compression (ZVC, §II-B4, Fig. 4): for every group of eight
// 8-bit values a one-byte non-zero mask is emitted followed by the packed
// non-zero bytes. Compression is insensitive to the *distribution* of
// zeros, which is why JPEG-ACT prefers it over run-length coding for
// frequency-domain activations whose zeros are randomly spread (§VI-C).
// The mask bounds the maximum compression at 8× for 8-bit values.
//
// The block variants below operate directly on [][64]int8 quantized
// blocks. A 64-value block spans exactly eight mask groups, so
// per-block encodings concatenate into the same stream EncodeZVC
// produces for the flattened values — which is what lets blocks shard
// over the worker pool (each shard encodes into its own precomputed
// stream window, mirroring the paper's multi-CDU round-robin) while the
// output stays byte-identical at any worker count.

// EncodeZVC compresses vals (any length; the tail group may be short).
func EncodeZVC(vals []int8) []byte {
	out := make([]byte, 0, len(vals)/4+8)
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		var mask byte
		for j := i; j < end; j++ {
			if vals[j] != 0 {
				mask |= 1 << uint(j-i)
			}
		}
		out = append(out, mask)
		for j := i; j < end; j++ {
			if vals[j] != 0 {
				out = append(out, byte(vals[j]))
			}
		}
	}
	return out
}

// DecodeZVC reverses EncodeZVC; n is the original value count.
func DecodeZVC(data []byte, n int) ([]int8, error) {
	out := make([]int8, n)
	p := 0
	for i := 0; i < n; i += 8 {
		if p >= len(data) {
			return nil, ErrCorrupt
		}
		mask := data[p]
		p++
		end := i + 8
		if end > n {
			end = n
		}
		for j := i; j < end; j++ {
			if mask&(1<<uint(j-i)) != 0 {
				if p >= len(data) {
					return nil, ErrCorrupt
				}
				out[j] = int8(data[p])
				p++
			}
		}
	}
	return out, nil
}

// ZVCSize returns the encoded size in bytes without materializing the
// stream, for fast compression-ratio accounting. The non-zero scan
// shards over the worker pool for large inputs (integer partial sums,
// so the total is exact regardless of the split).
func ZVCSize(vals []int8) int {
	groups := (len(vals) + 7) / 8
	const grain = 1 << 14
	if len(vals) <= grain {
		return groups + countNonzero(vals)
	}
	chunks := (len(vals) + grain - 1) / grain
	partial := make([]int, chunks)
	parallel.For(chunks, 1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			end := (ci + 1) * grain
			if end > len(vals) {
				end = len(vals)
			}
			partial[ci] = countNonzero(vals[ci*grain : end])
		}
	})
	nz := 0
	for _, p := range partial {
		nz += p
	}
	return groups + nz
}

func countNonzero(vals []int8) int {
	nz := 0
	for _, v := range vals {
		if v != 0 {
			nz++
		}
	}
	return nz
}

// zvcBlockGrain is the number of 8×8 blocks per parallel shard; one
// block is ~128 byte operations, so 64 blocks keep goroutine overhead
// well under 1%.
const zvcBlockGrain = 64

// encodeZVCInto encodes vals into dst, which must have room for exactly
// the encoded size, and returns the bytes written. Mask and payload for a
// group are produced in one pass: payload bytes land past the reserved
// mask slot as they are found, then the mask is patched in.
func encodeZVCInto(dst []byte, vals []int8) int {
	p := 0
	n := len(vals)
	i := 0
	for ; i+8 <= n; i += 8 {
		g := vals[i : i+8 : i+8]
		mp := p
		p++
		var mask byte
		for j, v := range g {
			if v != 0 {
				mask |= 1 << uint(j)
				dst[p] = byte(v)
				p++
			}
		}
		dst[mp] = mask
	}
	if i < n {
		mp := p
		p++
		var mask byte
		for j, v := range vals[i:] {
			if v != 0 {
				mask |= 1 << uint(j)
				dst[p] = byte(v)
				p++
			}
		}
		dst[mp] = mask
	}
	return p
}

// EncodeZVCBlocks encodes the concatenation of the blocks, producing a
// stream byte-identical to EncodeZVC over the flattened values but
// without materializing the flat copy: per-block sizes are prefix-summed
// into stream offsets and shards of blocks encode in parallel, each into
// its own window of the output.
func EncodeZVCBlocks(blocks [][64]int8) []byte {
	nb := len(blocks)
	offs := make([]int, nb+1)
	parallel.For(nb, zvcBlockGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			offs[i+1] = 8 + countNonzero(blocks[i][:])
		}
	})
	for i := 0; i < nb; i++ {
		offs[i+1] += offs[i]
	}
	out := make([]byte, offs[nb])
	parallel.For(nb, zvcBlockGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			encodeZVCInto(out[offs[i]:offs[i+1]], blocks[i][:])
		}
	})
	return out
}

// decodeZVCBlocksRange decodes blocks [lo,hi) from data starting at
// byte offset p (which must point at the first mask of block lo).
func decodeZVCBlocksRange(dst [][64]int8, lo, hi, p int, data []byte) error {
	for bi := lo; bi < hi; bi++ {
		blk := &dst[bi]
		*blk = [64]int8{}
		for g := 0; g < 64; g += 8 {
			if p >= len(data) {
				return ErrCorrupt
			}
			mask := data[p]
			p++
			// All-zero and all-dense groups dominate real streams (zeroed
			// high frequencies, dense DC neighborhoods); both skip the
			// per-bit walk.
			if mask == 0 {
				continue
			}
			nz := bits.OnesCount8(mask)
			if p+nz > len(data) {
				return ErrCorrupt
			}
			if mask == 0xFF {
				src := data[p : p+8 : p+8]
				for j, b := range src {
					blk[g+j] = int8(b)
				}
				p += 8
				continue
			}
			for j := 0; j < 8; j++ {
				if mask&(1<<uint(j)) != 0 {
					blk[g+j] = int8(data[p])
					p++
				}
			}
		}
	}
	return nil
}

// DecodeZVCBlocksInto decodes a stream produced by EncodeZVCBlocks (or
// EncodeZVC over flattened blocks) into dst, whose length fixes the
// expected block count. A cheap serial mask walk locates each shard's
// stream offset, then shards decode in parallel.
func DecodeZVCBlocksInto(dst [][64]int8, data []byte) error {
	nb := len(dst)
	chunks := (nb + zvcBlockGrain - 1) / zvcBlockGrain
	if chunks == 0 {
		return nil
	}
	// offs[c] is the stream offset of chunk c's first block: advance one
	// mask group at a time, skipping popcount payload bytes.
	offs := make([]int, chunks)
	p := 0
	for c := 0; c < chunks; c++ {
		offs[c] = p
		end := (c + 1) * zvcBlockGrain
		if end > nb {
			end = nb
		}
		groups := (end - c*zvcBlockGrain) * 8
		for g := 0; g < groups; g++ {
			if p >= len(data) {
				return ErrCorrupt
			}
			p += 1 + bits.OnesCount8(data[p])
		}
	}
	if p > len(data) {
		return ErrCorrupt
	}
	// The scan above validated every group, so per-chunk decode errors
	// are unreachable in practice; collect them race-free regardless.
	errs := make([]error, chunks)
	parallel.For(chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			blo := c * zvcBlockGrain
			bhi := blo + zvcBlockGrain
			if bhi > nb {
				bhi = nb
			}
			errs[c] = decodeZVCBlocksRange(dst, blo, bhi, offs[c], data)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ZVCSizeBlocks returns the ZVC-coded size of the concatenated blocks
// without materializing the stream, sharding the non-zero scan over the
// worker pool (integer partial sums — exact at any worker count).
func ZVCSizeBlocks(blocks [][64]int8) int {
	nb := len(blocks)
	chunks := (nb + zvcBlockGrain - 1) / zvcBlockGrain
	partial := make([]int, chunks)
	parallel.For(chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			end := (c + 1) * zvcBlockGrain
			if end > nb {
				end = nb
			}
			n := 0
			for i := c * zvcBlockGrain; i < end; i++ {
				n += 8 + countNonzero(blocks[i][:])
			}
			partial[c] = n
		}
	})
	total := 0
	for _, p := range partial {
		total += p
	}
	return total
}

// DecodeZVCBlocks allocates and decodes nb blocks from data.
func DecodeZVCBlocks(data []byte, nb int) ([][64]int8, error) {
	out := make([][64]int8, nb)
	if err := DecodeZVCBlocksInto(out, data); err != nil {
		return nil, err
	}
	return out, nil
}
