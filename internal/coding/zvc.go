package coding

// Zero Value Compression (ZVC, §II-B4, Fig. 4): for every group of eight
// 8-bit values a one-byte non-zero mask is emitted followed by the packed
// non-zero bytes. Compression is insensitive to the *distribution* of
// zeros, which is why JPEG-ACT prefers it over run-length coding for
// frequency-domain activations whose zeros are randomly spread (§VI-C).
// The mask bounds the maximum compression at 8× for 8-bit values.

// EncodeZVC compresses vals (any length; the tail group may be short).
func EncodeZVC(vals []int8) []byte {
	out := make([]byte, 0, len(vals)/4+8)
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		var mask byte
		for j := i; j < end; j++ {
			if vals[j] != 0 {
				mask |= 1 << uint(j-i)
			}
		}
		out = append(out, mask)
		for j := i; j < end; j++ {
			if vals[j] != 0 {
				out = append(out, byte(vals[j]))
			}
		}
	}
	return out
}

// DecodeZVC reverses EncodeZVC; n is the original value count.
func DecodeZVC(data []byte, n int) ([]int8, error) {
	out := make([]int8, n)
	p := 0
	for i := 0; i < n; i += 8 {
		if p >= len(data) {
			return nil, ErrCorrupt
		}
		mask := data[p]
		p++
		end := i + 8
		if end > n {
			end = n
		}
		for j := i; j < end; j++ {
			if mask&(1<<uint(j-i)) != 0 {
				if p >= len(data) {
					return nil, ErrCorrupt
				}
				out[j] = int8(data[p])
				p++
			}
		}
	}
	return out, nil
}

// ZVCSize returns the encoded size in bytes without materializing the
// stream, for fast compression-ratio accounting.
func ZVCSize(vals []int8) int {
	groups := (len(vals) + 7) / 8
	nz := 0
	for _, v := range vals {
		if v != 0 {
			nz++
		}
	}
	return groups + nz
}
