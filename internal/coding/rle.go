package coding

// Simple zero run-length encoding (§II-B3): the stream is a sequence of
// (zeroRun, value) pairs where zeroRun is the number of zeros preceding
// value. Runs longer than 255 emit (255, 0) continuation pairs. The paper
// notes this performs poorly on randomly-distributed zeros — reproduced
// here as a baseline coder.

// EncodeRLE compresses vals with zero run-length coding.
func EncodeRLE(vals []int8) []byte {
	out := make([]byte, 0, len(vals)/2+8)
	run := 0
	for _, v := range vals {
		if v == 0 {
			run++
			continue
		}
		for run > 255 {
			out = append(out, 255, 0)
			run -= 255
		}
		out = append(out, byte(run), byte(v))
		run = 0
	}
	// Trailing zeros: encode as continuation pairs plus a final marker.
	for run > 255 {
		out = append(out, 255, 0)
		run -= 255
	}
	if run > 0 {
		out = append(out, byte(run-1), 0)
	}
	return out
}

// DecodeRLE reverses EncodeRLE; n is the original value count.
func DecodeRLE(data []byte, n int) ([]int8, error) {
	if len(data)%2 != 0 {
		return nil, ErrCorrupt
	}
	out := make([]int8, 0, n)
	for p := 0; p < len(data); p += 2 {
		run := int(data[p])
		v := int8(data[p+1])
		if v == 0 {
			// Continuation pair (255 zeros) or trailing marker (run-1 zeros).
			if run == 255 && p+2 < len(data) {
				for i := 0; i < 255; i++ {
					out = append(out, 0)
				}
				continue
			}
			for i := 0; i <= run; i++ {
				out = append(out, 0)
			}
			continue
		}
		for i := 0; i < run; i++ {
			out = append(out, 0)
		}
		out = append(out, v)
	}
	if len(out) != n {
		return nil, ErrCorrupt
	}
	return out, nil
}
