package coding

// Adaptive entropy coding — an extension beyond the paper's static JPEG
// tables. The paper notes the standard Huffman tables were tuned for
// image statistics; here a canonical Huffman code is built from the
// actual (run, size) symbol histogram of the activation being coded and
// shipped as a compact header. This is what a software offload library
// would do where the hardware constraint on fixed tables does not apply,
// and it quantifies how much the static tables leave on the table.

import (
	"sort"

	"jpegact/internal/dct"
)

// symbolHistogram collects DC-size and AC-(run,size) symbol counts from
// quantized blocks, exactly as the static encoder would emit them.
func symbolHistogram(blocks [][64]int8) (dc, ac [256]int) {
	prevDC := int32(0)
	for bi := range blocks {
		b := &blocks[bi]
		d := int32(b[0])
		dc[magnitudeCategory(d-prevDC)]++
		prevDC = d
		run := 0
		for i := 1; i < 64; i++ {
			v := int32(b[dct.Zigzag[i]])
			if v == 0 {
				run++
				continue
			}
			for run >= 16 {
				ac[0xf0]++
				run -= 16
			}
			ac[byte(uint(run)<<4|magnitudeCategory(v))]++
			run = 0
		}
		if run > 0 {
			ac[0x00]++
		}
	}
	return dc, ac
}

// buildCanonical constructs canonical Huffman code lengths (≤ 16 bits)
// for the non-zero-count symbols. Length limiting uses weight damping:
// if any code exceeds 16 bits, weights are halved (floored at 1) and the
// tree rebuilt — convergence is guaranteed because equal weights yield
// ≤ 8-bit codes for ≤ 256 symbols.
func buildCanonical(hist *[256]int) huffSpec {
	weights := map[int]int{}
	for s, c := range hist {
		if c > 0 {
			weights[s] = c
		}
	}
	if len(weights) == 0 {
		return huffSpec{}
	}
	if len(weights) == 1 {
		var spec huffSpec
		spec.counts[0] = 1
		for s := range weights {
			spec.values = []byte{byte(s)}
		}
		return spec
	}
	var lengths map[int]int
	for {
		lengths = huffmanLengths(weights)
		maxLen := 0
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= 16 {
			break
		}
		for s, w := range weights {
			weights[s] = 1 + w/2
		}
	}
	// Canonical assignment: symbols sorted by (length, symbol value).
	type ls struct{ sym, l int }
	all := make([]ls, 0, len(lengths))
	for s, l := range lengths {
		all = append(all, ls{s, l})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].l != all[j].l {
			return all[i].l < all[j].l
		}
		return all[i].sym < all[j].sym
	})
	var spec huffSpec
	for _, e := range all {
		spec.counts[e.l-1]++
		spec.values = append(spec.values, byte(e.sym))
	}
	return spec
}

// huffmanLengths returns code lengths from a weight map via the standard
// two-queue Huffman construction.
func huffmanLengths(weights map[int]int) map[int]int {
	type node struct {
		weight int
		sym    int
		l, r   *node
	}
	heap := make([]*node, 0, len(weights))
	for s, w := range weights {
		heap = append(heap, &node{weight: w, sym: s})
	}
	sort.Slice(heap, func(i, j int) bool {
		if heap[i].weight != heap[j].weight {
			return heap[i].weight < heap[j].weight
		}
		return heap[i].sym < heap[j].sym
	})
	for len(heap) > 1 {
		a, b := heap[0], heap[1]
		heap = heap[2:]
		n := &node{weight: a.weight + b.weight, sym: -1, l: a, r: b}
		idx := sort.Search(len(heap), func(i int) bool { return heap[i].weight >= n.weight })
		heap = append(heap, nil)
		copy(heap[idx+1:], heap[idx:])
		heap[idx] = n
	}
	lengths := map[int]int{}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.l, depth+1)
		walk(n.r, depth+1)
	}
	walk(heap[0], 0)
	return lengths
}

// EncodeJPEGBlocksAdaptive entropy-codes blocks with histograms-derived
// canonical tables, prepending the table specs (17 + 17 bytes of counts
// plus the value lists) to the stream.
func EncodeJPEGBlocksAdaptive(blocks [][64]int8) []byte {
	dcHist, acHist := symbolHistogram(blocks)
	dcSpec := buildCanonical(&dcHist)
	acSpec := buildCanonical(&acHist)
	dcT := buildHuffTable(dcSpec)
	acT := buildHuffTable(acSpec)

	var w BitWriter
	prevDC := int32(0)
	for bi := range blocks {
		b := &blocks[bi]
		d := int32(b[0])
		diff := d - prevDC
		prevDC = d
		size := magnitudeCategory(diff)
		dcT.encode(&w, byte(size))
		w.WriteBits(vliBits(diff, size), size)
		run := 0
		for i := 1; i < 64; i++ {
			v := int32(b[dct.Zigzag[i]])
			if v == 0 {
				run++
				continue
			}
			for run >= 16 {
				acT.encode(&w, 0xf0)
				run -= 16
			}
			s := magnitudeCategory(v)
			acT.encode(&w, byte(uint(run)<<4|s))
			w.WriteBits(vliBits(v, s), s)
			run = 0
		}
		if run > 0 {
			acT.encode(&w, 0x00)
		}
	}
	body := w.Bytes()

	out := make([]byte, 0, len(body)+64)
	n := len(blocks)
	out = append(out, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	out = appendSpec(out, dcSpec)
	out = appendSpec(out, acSpec)
	return append(out, body...)
}

func appendSpec(out []byte, s huffSpec) []byte {
	out = append(out, s.counts[:]...)
	out = append(out, byte(len(s.values)))
	return append(out, s.values...)
}

func readSpec(data []byte) (huffSpec, []byte, error) {
	var s huffSpec
	if len(data) < 17 {
		return s, nil, ErrCorrupt
	}
	copy(s.counts[:], data[:16])
	n := int(data[16])
	data = data[17:]
	if len(data) < n {
		return s, nil, ErrCorrupt
	}
	s.values = append([]byte(nil), data[:n]...)
	total := 0
	for _, c := range s.counts {
		total += int(c)
	}
	if total != n {
		return s, nil, ErrCorrupt
	}
	return s, data[n:], nil
}

// DecodeJPEGBlocksAdaptive reverses EncodeJPEGBlocksAdaptive.
func DecodeJPEGBlocksAdaptive(data []byte) ([][64]int8, error) {
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	n := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	// Sanity cap: every block needs at least one coded bit, so a count
	// wildly beyond the stream length is corruption (and would otherwise
	// be an allocation bomb).
	if n < 0 || n > 8*len(data) {
		return nil, ErrCorrupt
	}
	rest := data[4:]
	dcSpec, rest, err := readSpec(rest)
	if err != nil {
		return nil, err
	}
	acSpec, rest, err := readSpec(rest)
	if err != nil {
		return nil, err
	}
	dcT := buildHuffTable(dcSpec)
	acT := buildHuffTable(acSpec)

	r := NewBitReader(rest)
	blocks := make([][64]int8, n)
	prevDC := int32(0)
	for bi := 0; bi < n; bi++ {
		b := &blocks[bi]
		size, err := dcT.decode(r)
		if err != nil {
			return nil, err
		}
		bits, err := r.ReadBits(uint(size))
		if err != nil {
			return nil, err
		}
		d := prevDC + vliDecode(bits, uint(size))
		prevDC = d
		b[0] = int8(d)
		for i := 1; i < 64; {
			sym, err := acT.decode(r)
			if err != nil {
				return nil, err
			}
			if sym == 0x00 {
				break
			}
			if sym == 0xf0 {
				i += 16
				if i > 64 {
					return nil, ErrCorrupt
				}
				continue
			}
			run := int(sym >> 4)
			s := uint(sym & 0x0f)
			i += run
			if i >= 64 {
				return nil, ErrCorrupt
			}
			bits, err := r.ReadBits(s)
			if err != nil {
				return nil, err
			}
			b[dct.Zigzag[i]] = int8(vliDecode(bits, s))
			i++
		}
	}
	return blocks, nil
}
