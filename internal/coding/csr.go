package coding

// Compressed Sparse Row storage as used by GIST's "Sparse Storage Dense
// Compute" (§II-B2, §VI-B): after 8-bit precision reduction, non-zero
// values are stored together with an 8-bit column index, plus a per-row
// element count. When sparsity is below 50% this is *larger* than the
// dense 8-bit form, which is exactly the pathology Table I shows for
// ResNets on ImageNet; EncodeCSR reproduces that faithfully.

// EncodeCSR compresses vals viewed as rows of the given width. Rows must
// divide len(vals) evenly and width must be ≤ 256 so column indices fit
// in a byte (wider activations are split by the caller).
func EncodeCSR(vals []int8, width int) []byte {
	if width <= 0 || width > 256 || len(vals)%width != 0 {
		panic("coding: CSR width must be in (0,256] and divide the value count")
	}
	rows := len(vals) / width
	out := make([]byte, 0, len(vals)/2+2*rows+8)
	out = append(out, byte(width-1)) // width-1 so 256 fits a byte
	for r := 0; r < rows; r++ {
		row := vals[r*width : (r+1)*width]
		nz := 0
		for _, v := range row {
			if v != 0 {
				nz++
			}
		}
		out = append(out, byte(nz), byte(nz>>8))
		for c, v := range row {
			if v != 0 {
				out = append(out, byte(c), byte(v))
			}
		}
	}
	return out
}

// DecodeCSR reverses EncodeCSR; n is the original value count.
func DecodeCSR(data []byte, n int) ([]int8, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	width := int(data[0]) + 1
	if n%width != 0 {
		return nil, ErrCorrupt
	}
	rows := n / width
	out := make([]int8, n)
	p := 1
	for r := 0; r < rows; r++ {
		if p+2 > len(data) {
			return nil, ErrCorrupt
		}
		nz := int(data[p]) | int(data[p+1])<<8
		p += 2
		if p+2*nz > len(data) || nz > width {
			return nil, ErrCorrupt
		}
		for k := 0; k < nz; k++ {
			c := int(data[p])
			v := int8(data[p+1])
			p += 2
			if c >= width {
				return nil, ErrCorrupt
			}
			out[r*width+c] = v
		}
	}
	return out, nil
}

// CSRSize returns the encoded size in bytes for ratio accounting.
func CSRSize(vals []int8, width int) int {
	rows := len(vals) / width
	nz := 0
	for _, v := range vals {
		if v != 0 {
			nz++
		}
	}
	return 1 + 2*rows + 2*nz
}
