package coding

import (
	"testing"
	"testing/quick"

	"jpegact/internal/dct"
	"jpegact/internal/tensor"
)

func TestBitWriterReaderRoundtrip(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b101, 3)
	w.WriteBits(0b1, 1)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(0b0110, 4)
	buf := w.Bytes()
	r := NewBitReader(buf)
	checks := []struct {
		n    uint
		want uint32
	}{{3, 0b101}, {1, 1}, {16, 0xABCD}, {4, 0b0110}}
	for i, c := range checks {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("read %d: got %x want %x", i, got, c.want)
		}
	}
}

func TestBitReaderPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrCorrupt {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestBitWriterPropertyRoundtrip(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var w BitWriter
		type item struct {
			v uint32
			n uint
		}
		var items []item
		for i, v := range vals {
			n := uint(1)
			if i < len(widths) {
				n = uint(widths[i]%16) + 1
			}
			vv := uint32(v) & ((1 << n) - 1)
			items = append(items, item{vv, n})
			w.WriteBits(vv, n)
		}
		r := NewBitReader(w.Bytes())
		for _, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMagnitudeCategory(t *testing.T) {
	cases := map[int32]uint{0: 0, 1: 1, -1: 1, 2: 2, 3: 2, -3: 2, 4: 3, 127: 7, -128: 8, 255: 8}
	for v, want := range cases {
		if got := magnitudeCategory(v); got != want {
			t.Fatalf("magnitudeCategory(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestVLIRoundtrip(t *testing.T) {
	for v := int32(-255); v <= 255; v++ {
		s := magnitudeCategory(v)
		if got := vliDecode(vliBits(v, s), s); got != v {
			t.Fatalf("VLI roundtrip %d -> %d (size %d)", v, got, s)
		}
	}
}

func TestHuffmanTableRoundtrip(t *testing.T) {
	// Every symbol in both tables must encode/decode to itself.
	for _, tbl := range []*huffTable{dcTable, acTable} {
		for _, sym := range tbl.values {
			var w BitWriter
			tbl.encode(&w, sym)
			got, err := tbl.decode(NewBitReader(w.Bytes()))
			if err != nil {
				t.Fatalf("decode symbol %#x: %v", sym, err)
			}
			if got != sym {
				t.Fatalf("symbol %#x decoded as %#x", sym, got)
			}
		}
	}
}

func TestHuffmanCodesArePrefixFree(t *testing.T) {
	for _, tbl := range []*huffTable{dcTable, acTable} {
		type code struct {
			bits uint32
			len  uint
		}
		var codes []code
		for _, c := range tbl.code {
			codes = append(codes, code{c.bits, c.len})
		}
		for i := range codes {
			for j := range codes {
				if i == j {
					continue
				}
				a, b := codes[i], codes[j]
				if a.len <= b.len && b.bits>>(b.len-a.len) == a.bits {
					t.Fatalf("code %b/%d is a prefix of %b/%d", a.bits, a.len, b.bits, b.len)
				}
			}
		}
	}
}

func randomBlocks(r *tensor.RNG, n int, sparsity float64, amp int) [][64]int8 {
	blocks := make([][64]int8, n)
	for b := range blocks {
		for i := 0; i < 64; i++ {
			if r.Float64() < sparsity {
				continue
			}
			v := r.Intn(2*amp+1) - amp
			blocks[b][i] = int8(v)
		}
	}
	return blocks
}

func TestJPEGCodecRoundtrip(t *testing.T) {
	r := tensor.NewRNG(1)
	for _, sp := range []float64{0, 0.3, 0.7, 0.95, 1.0} {
		blocks := randomBlocks(r, 17, sp, 90)
		enc := EncodeJPEGBlocks(blocks)
		dec, err := DecodeJPEGBlocks(enc)
		if err != nil {
			t.Fatalf("sparsity %v: %v", sp, err)
		}
		if len(dec) != len(blocks) {
			t.Fatalf("block count %d != %d", len(dec), len(blocks))
		}
		for i := range blocks {
			if blocks[i] != dec[i] {
				t.Fatalf("sparsity %v block %d mismatch", sp, i)
			}
		}
	}
}

func TestJPEGCodecEmpty(t *testing.T) {
	enc := EncodeJPEGBlocks(nil)
	dec, err := DecodeJPEGBlocks(enc)
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty roundtrip: %v %d", err, len(dec))
	}
	if _, err := DecodeJPEGBlocks([]byte{1}); err != ErrCorrupt {
		t.Fatalf("short stream should be corrupt, got %v", err)
	}
}

func TestJPEGCodecCompressesSparseBlocks(t *testing.T) {
	r := tensor.NewRNG(2)
	sparse := randomBlocks(r, 64, 0.95, 10)
	dense := randomBlocks(r, 64, 0.0, 90)
	if se, de := len(EncodeJPEGBlocks(sparse)), len(EncodeJPEGBlocks(dense)); se >= de {
		t.Fatalf("sparse (%dB) should be smaller than dense (%dB)", se, de)
	}
}

func TestJPEGCodecProperty(t *testing.T) {
	r := tensor.NewRNG(3)
	f := func(nBlocks uint8, sp uint8) bool {
		n := int(nBlocks%8) + 1
		blocks := randomBlocks(r, n, float64(sp%100)/100, 127)
		dec, err := DecodeJPEGBlocks(EncodeJPEGBlocks(blocks))
		if err != nil || len(dec) != n {
			return false
		}
		for i := range blocks {
			if blocks[i] != dec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randVals(r *tensor.RNG, n int, sparsity float64) []int8 {
	out := make([]int8, n)
	for i := range out {
		if r.Float64() >= sparsity {
			v := r.Intn(255) - 127
			if v == 0 {
				v = 1
			}
			out[i] = int8(v)
		}
	}
	return out
}

func TestZVCRoundtrip(t *testing.T) {
	r := tensor.NewRNG(4)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		for _, sp := range []float64{0, 0.5, 1} {
			vals := randVals(r, n, sp)
			enc := EncodeZVC(vals)
			if len(enc) != ZVCSize(vals) {
				t.Fatalf("ZVCSize mismatch: %d vs %d", len(enc), ZVCSize(vals))
			}
			dec, err := DecodeZVC(enc, n)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInt8(vals, dec) {
				t.Fatalf("n=%d sp=%v roundtrip mismatch", n, sp)
			}
		}
	}
}

func TestZVCAllZeroCompression(t *testing.T) {
	vals := make([]int8, 800)
	if got := len(EncodeZVC(vals)); got != 100 {
		t.Fatalf("all-zero: %d bytes, want 100 (8x limit)", got)
	}
}

func TestZVCCorrupt(t *testing.T) {
	if _, err := DecodeZVC([]byte{0xFF}, 8); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, err := DecodeZVC(nil, 8); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestBRCRoundtrip(t *testing.T) {
	vals := []float32{-1, 0, 0.5, 2, -3, 0, 0, 7, 1}
	enc := EncodeBRC(vals)
	if len(enc) != 2 {
		t.Fatalf("encoded size %d, want 2", len(enc))
	}
	mask, err := DecodeBRC(enc, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, true, false, false, false, true, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask[%d] = %v", i, mask[i])
		}
	}
	grad := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	ApplyBRCMask(mask, grad)
	wantGrad := []float32{0, 0, 3, 4, 0, 0, 0, 8, 9}
	for i := range wantGrad {
		if grad[i] != wantGrad[i] {
			t.Fatalf("grad[%d] = %v", i, grad[i])
		}
	}
}

func TestBRCShortBuffer(t *testing.T) {
	if _, err := DecodeBRC([]byte{0}, 9); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestCSRRoundtrip(t *testing.T) {
	r := tensor.NewRNG(5)
	for _, width := range []int{4, 16, 256} {
		for _, sp := range []float64{0, 0.6, 1} {
			vals := randVals(r, width*5, sp)
			enc := EncodeCSR(vals, width)
			if len(enc) != CSRSize(vals, width) {
				t.Fatalf("CSRSize mismatch")
			}
			dec, err := DecodeCSR(enc, len(vals))
			if err != nil {
				t.Fatal(err)
			}
			if !equalInt8(vals, dec) {
				t.Fatalf("width=%d sp=%v mismatch", width, sp)
			}
		}
	}
}

func TestCSRDenseExpands(t *testing.T) {
	// Dense data must be ~2x larger than the 8-bit original: the GIST
	// pathology on low-sparsity nets (§VI-B).
	r := tensor.NewRNG(6)
	vals := randVals(r, 1024, 0)
	if got := CSRSize(vals, 32); got < 2*len(vals) {
		t.Fatalf("dense CSR size %d, want >= %d", got, 2*len(vals))
	}
}

func TestCSRBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeCSR(make([]int8, 10), 300)
}

func TestRLERoundtrip(t *testing.T) {
	r := tensor.NewRNG(7)
	cases := [][]int8{
		{},
		{0, 0, 0},
		{1, 2, 3},
		{0, 5, 0, 0, -3, 0},
		append(make([]int8, 300), 7),            // long leading run
		append([]int8{7}, make([]int8, 300)...), // long trailing run
		append([]int8{}, make([]int8, 255)...),  // exactly 255 zeros
		append([]int8{}, make([]int8, 256)...),  // exactly 256 zeros
		append([]int8{}, make([]int8, 510)...),  // two continuation runs
		randVals(r, 777, 0.8),
	}
	for ci, vals := range cases {
		enc := EncodeRLE(vals)
		dec, err := DecodeRLE(enc, len(vals))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !equalInt8(vals, dec) {
			t.Fatalf("case %d mismatch", ci)
		}
	}
}

func TestRLESensitiveToPattern(t *testing.T) {
	// RLE is highly sensitive to the sparsity pattern (§II-B3): a single
	// long run of zeros compresses far better under RLE than under ZVC,
	// but at moderate random sparsity RLE pays two bytes per non-zero and
	// loses (see TestZVCBeatsRLEOnScatteredZeros).
	n := 1024
	clustered := make([]int8, n)
	for i := 0; i < 8; i++ {
		clustered[i] = 3 // 8 values then one long zero run
	}
	rl, zv := len(EncodeRLE(clustered)), ZVCSize(clustered)
	if rl >= zv {
		t.Fatalf("RLE %dB should beat ZVC %dB on one long zero run", rl, zv)
	}
}

func TestRLEPropertyRoundtrip(t *testing.T) {
	r := tensor.NewRNG(8)
	f := func(n uint16, sp uint8) bool {
		vals := randVals(r, int(n%2000), float64(sp%101)/100)
		dec, err := DecodeRLE(EncodeRLE(vals), len(vals))
		return err == nil && equalInt8(vals, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func equalInt8(a, b []int8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestZVCBeatsRLEOnScatteredZeros(t *testing.T) {
	// The §VI-C claim: randomly distributed zeros favor ZVC over RLE.
	r := tensor.NewRNG(9)
	vals := randVals(r, 4096, 0.5)
	zv, rl := ZVCSize(vals), len(EncodeRLE(vals))
	if zv >= rl {
		t.Fatalf("ZVC %dB should beat RLE %dB on random 50%% sparsity", zv, rl)
	}
}

func BenchmarkEncodeZVC(b *testing.B) {
	r := tensor.NewRNG(10)
	vals := randVals(r, 1<<16, 0.5)
	b.SetBytes(int64(len(vals)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeZVC(vals)
	}
}

func BenchmarkEncodeJPEGBlocks(b *testing.B) {
	r := tensor.NewRNG(11)
	blocks := randomBlocks(r, 1024, 0.6, 40)
	b.SetBytes(int64(len(blocks) * 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeJPEGBlocks(blocks)
	}
}

func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	// Arbitrary byte streams must produce errors (or garbage blocks), not
	// panics or allocation bombs.
	r := tensor.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		_, _ = DecodeJPEGBlocks(buf)
		_, _ = DecodeJPEGBlocksAdaptive(buf)
		_, _ = DecodeZVC(buf, n*2)
		_, _ = DecodeRLE(buf, n)
		_, _ = DecodeCSR(buf, n*4)
		_, _ = DecodeBRC(buf, n*8)
	}
}

func TestDecodeBlockCountBomb(t *testing.T) {
	// A header claiming 2^30 blocks in a 4-byte stream must be rejected
	// before allocation.
	if _, err := DecodeJPEGBlocks([]byte{0, 0, 0, 64}); err != ErrCorrupt {
		t.Fatalf("block-count bomb accepted: %v", err)
	}
	if _, err := DecodeJPEGBlocksAdaptive([]byte{0, 0, 0, 64}); err != ErrCorrupt {
		t.Fatalf("adaptive block-count bomb accepted: %v", err)
	}
}

func TestJPEGCodecGolden(t *testing.T) {
	// Pin the exact encoding of a fixed block so silent codec changes
	// (table, zigzag, VLI or framing regressions) are caught.
	var blk [64]int8
	blk[0] = 12             // DC
	blk[dct.Zigzag[1]] = -3 // first AC in scan order
	blk[dct.Zigzag[5]] = 7
	blk[dct.Zigzag[20]] = 1
	enc := EncodeJPEGBlocks([][64]int8{blk})
	want := []byte{0x01, 0x00, 0x00, 0x00, 0xb8, 0x9f, 0xeb, 0xff, 0xfa, 0xf5}
	if len(enc) != len(want) {
		t.Fatalf("encoded %d bytes (% x), want %d (% x)", len(enc), enc, len(want), want)
	}
	for i := range want {
		if enc[i] != want[i] {
			t.Fatalf("byte %d: %#x want %#x (full: % x)", i, enc[i], want[i], enc)
		}
	}
	dec, err := DecodeJPEGBlocks(enc)
	if err != nil || dec[0] != blk {
		t.Fatalf("golden decode failed: %v", err)
	}
}
