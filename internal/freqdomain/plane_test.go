package freqdomain

import (
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/dct"
	"jpegact/internal/parallel"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func testPlane(t *testing.T, n, c, h, w int) (*Plane, *tensor.Tensor) {
	t.Helper()
	r := tensor.NewRNG(7)
	x := data.ActivationTensor(r, n, c, h, w, 0.4, 1.0)
	p := Quantize(x, quant.OptL(), DefaultS)
	t.Cleanup(p.Release)
	return p, x
}

// idealValues synthesizes the unclamped dequantized reconstruction in
// float64 straight from the basis — the reference the Parseval kernels
// are pinned against.
func idealValues(p *Plane) []float64 {
	sh := p.Info.Orig
	hw := sh.H * sh.W
	out := make([]float64, sh.N*sh.C*hw)
	bw, bh := p.blocksWide(), p.blocksHigh()
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			inv := float64(p.InvScale(c))
			first, _ := p.planeBlocks(n, c)
			base := (n*sh.C + c) * hw
			for br := 0; br < bh; br++ {
				for bc := 0; bc < bw; bc++ {
					q := &p.Blocks[first+br*bw+bc]
					for r := 0; r < 8; r++ {
						for cc := 0; cc < 8; cc++ {
							var v float64
							for i := 0; i < 64; i++ {
								if q[i] != 0 {
									v += float64(float32(q[i])*p.dqNorm[i]) * float64(dct.NormBasis2D[i][r*8+cc])
								}
							}
							out[base+(br*8+r)*sh.W+bc*8+cc] = v * inv
						}
					}
				}
			}
		}
	}
	return out
}

// TestReconstructMatchesCompress pins the fallback path: Reconstruct
// must be bit-identical to the compress pipeline's spatial restore of
// the same blocks.
func TestReconstructMatchesCompress(t *testing.T) {
	r := tensor.NewRNG(3)
	x := data.ActivationTensor(r, 2, 3, 16, 16, 0.4, 1.0)
	pl := compress.JPEGAct(quant.OptL())
	blocks, scales, info := pl.QuantizeBlocks(x)
	want := pl.ReconstructBlocks(blocks, scales, info)

	p := Quantize(x, quant.OptL(), DefaultS)
	defer p.Release()
	got := p.Reconstruct()
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("elem %d: freq fallback %v, spatial %v", i, got.Data[i], want.Data[i])
		}
	}
	compress.ReleaseBlocks(blocks)
}

// TestSumPlaneDCIdentity pins the DC-sum statistics against the ideal
// reconstruction's plane sums.
func TestSumPlaneDCIdentity(t *testing.T) {
	p, _ := testPlane(t, 2, 3, 16, 8)
	ideal := idealValues(p)
	sh := p.Info.Orig
	hw := sh.H * sh.W
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			var want float64
			for i := 0; i < hw; i++ {
				want += ideal[(n*sh.C+c)*hw+i]
			}
			got := p.SumPlane(n, c)
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("plane (%d,%d): SumPlane %g, ideal %g", n, c, got, want)
			}
		}
	}
}

// TestDotPlaneParseval pins the selective Parseval dot against the
// spatial inner product with the ideal reconstruction, covering both
// the selective and the full-DCT branches.
func TestDotPlaneParseval(t *testing.T) {
	p, _ := testPlane(t, 2, 4, 16, 16)
	sh := p.Info.Orig
	hw := sh.H * sh.W
	r := tensor.NewRNG(11)
	dy := tensor.New(sh.N, sh.C, sh.H, sh.W)
	dy.FillNormal(r, 0, 1)
	ideal := idealValues(p)
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			var want float64
			base := (n*sh.C + c) * hw
			for i := 0; i < hw; i++ {
				want += float64(dy.Data[base+i]) * ideal[base+i]
			}
			got := p.DotPlane(dy.Data, n, c)
			if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
				t.Fatalf("plane (%d,%d): DotPlane %g, spatial ideal %g", n, c, got, want)
			}
		}
	}
}

// TestDotPlaneDenseBranch forces blocks past the selective threshold so
// the full-AAN branch is exercised and agrees with the same reference.
func TestDotPlaneDenseBranch(t *testing.T) {
	r := tensor.NewRNG(5)
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(r, 0, 1) // dense noise → many surviving coefficients
	p := Quantize(x, quant.OptL(), DefaultS)
	defer p.Release()
	nnz := 0
	for i := range p.Blocks[0] {
		if p.Blocks[0][i] != 0 {
			nnz++
		}
	}
	if nnz <= selectiveNNZ {
		t.Skipf("block only has %d nonzeros; dense branch not reachable", nnz)
	}
	dy := tensor.New(1, 1, 8, 8)
	dy.FillNormal(r, 0, 1)
	ideal := idealValues(p)
	var want float64
	for i := range ideal {
		want += float64(dy.Data[i]) * ideal[i]
	}
	got := p.DotPlane(dy.Data, 0, 0)
	if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
		t.Fatalf("dense branch: DotPlane %g, spatial ideal %g", got, want)
	}
}

// TestAffineRestoreExactX pins the x term of the fused scale/add kernel
// bit-identically to the spatial restore: with a=0, cx=1, bb=0 the
// kernel must reproduce Reconstruct exactly (same clamp, same scale,
// same multiply).
func TestAffineRestoreExactX(t *testing.T) {
	p, _ := testPlane(t, 2, 3, 16, 16)
	sh := p.Info.Orig
	want := p.Reconstruct()
	dy := tensor.New(sh.N, sh.C, sh.H, sh.W)
	dx := tensor.New(sh.N, sh.C, sh.H, sh.W)
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			p.AffineRestorePlane(dy.Data, dx.Data, n, c, 0, 1, 0)
		}
	}
	for i := range want.Data {
		if math.Float32bits(dx.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("elem %d: AffineRestore x %v, Reconstruct %v", i, dx.Data[i], want.Data[i])
		}
	}
}

// TestAffineRestoreFull checks the general a·dy + cx·x + bb form.
func TestAffineRestoreFull(t *testing.T) {
	p, _ := testPlane(t, 1, 2, 8, 16)
	sh := p.Info.Orig
	x := p.Reconstruct()
	r := tensor.NewRNG(13)
	dy := tensor.New(sh.N, sh.C, sh.H, sh.W)
	dy.FillNormal(r, 0, 1)
	dx := tensor.New(sh.N, sh.C, sh.H, sh.W)
	const a, cx, bb = 1.5, -0.25, 0.125
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			p.AffineRestorePlane(dy.Data, dx.Data, n, c, a, cx, bb)
		}
	}
	for i := range dx.Data {
		want := a*float64(dy.Data[i]) + cx*float64(x.Data[i]) + bb
		if math.Abs(float64(dx.Data[i])-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("elem %d: got %v, want %v", i, dx.Data[i], want)
		}
	}
}

// TestCoefficientGEMMLayout checks that CoefficientRows paired with
// GradCoefColumns computes the same plane correlations DotPlane does —
// the contract the 1×1-conv ∇W GEMM rests on.
func TestCoefficientGEMMLayout(t *testing.T) {
	p, _ := testPlane(t, 2, 3, 8, 16)
	sh := p.Info.Orig
	hw := sh.H * sh.W
	r := tensor.NewRNG(17)
	dy := tensor.New(sh.N, sh.C, sh.H, sh.W)
	dy.FillNormal(r, 0, 1)
	xf := make([]float32, sh.C*hw)
	gf := make([]float32, hw*sh.C)
	for n := 0; n < sh.N; n++ {
		p.CoefficientRows(n, xf)
		GradCoefColumns(dy, n, gf)
		for c := 0; c < sh.C; c++ {
			var dot float64
			for k := 0; k < hw; k++ {
				dot += float64(xf[c*hw+k]) * float64(gf[k*sh.C+c])
			}
			want := p.DotPlane(dy.Data, n, c)
			if math.Abs(dot-want) > 1e-2*(1+math.Abs(want)) {
				t.Fatalf("plane (%d,%d): GEMM-layout dot %g, DotPlane %g", n, c, dot, want)
			}
		}
	}
}

// TestKernelsDeterministicAcrossWorkers pins bit-exact outputs of the
// parallel kernels at worker counts 1, 2 and GOMAXPROCS.
func TestKernelsDeterministicAcrossWorkers(t *testing.T) {
	p, _ := testPlane(t, 2, 8, 16, 16)
	sh := p.Info.Orig
	hw := sh.H * sh.W
	r := tensor.NewRNG(19)
	dy := tensor.New(sh.N, sh.C, sh.H, sh.W)
	dy.FillNormal(r, 0, 1)

	run := func() ([]float32, []float32) {
		xf := make([]float32, sh.C*hw)
		gf := make([]float32, hw*sh.C)
		p.CoefficientRows(0, xf)
		GradCoefColumns(dy, 0, gf)
		return xf, gf
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	refXF, refGF := run()
	for _, w := range []int{2, prev} {
		parallel.SetWorkers(w)
		xf, gf := run()
		for i := range refXF {
			if math.Float32bits(xf[i]) != math.Float32bits(refXF[i]) {
				t.Fatalf("workers=%d: CoefficientRows[%d] differs", w, i)
			}
		}
		for i := range refGF {
			if math.Float32bits(gf[i]) != math.Float32bits(refGF[i]) {
				t.Fatalf("workers=%d: GradCoefColumns[%d] differs", w, i)
			}
		}
	}
}

// TestAligned pins the alignment predicate, including the trap where
// PadRows is zero but blocks still straddle planes.
func TestAligned(t *testing.T) {
	cases := []struct {
		sh   tensor.Shape
		want bool
	}{
		{tensor.Shape{N: 1, C: 2, H: 16, W: 16}, true},
		{tensor.Shape{N: 1, C: 2, H: 8, W: 8}, true},
		{tensor.Shape{N: 1, C: 2, H: 4, W: 8}, false}, // PadRows == 0, still misaligned
		{tensor.Shape{N: 1, C: 2, H: 16, W: 12}, false},
	}
	for _, tc := range cases {
		x := tensor.New(tc.sh.N, tc.sh.C, tc.sh.H, tc.sh.W)
		p := Quantize(x, quant.OptL(), DefaultS)
		if got := p.Aligned(); got != tc.want {
			t.Errorf("Aligned(%v) = %v, want %v", tc.sh, got, tc.want)
		}
		p.Release()
	}
}
