// Package freqdomain implements the frequency-domain restore path: an
// offloaded JPEG-ACT frame is decoded only as far as its quantized 8×8
// DCT coefficient blocks, and layers whose backward pass is linear in
// the saved activation consume the coefficients directly — no inverse
// DCT, no materialized spatial tensor.
//
// The math rests on two properties of the JPEG-normalized DCT
// (dct.NormBasis2D): orthonormality, so inner products against the
// saved activation move to the coefficient domain (Parseval) where the
// post-quantization zeros can be skipped; and the DC sum identity, so
// per-channel sums need only each block's DC term. The kernels here
// supply exactly the views BatchNorm, 1×1-conv/GEMM and elementwise
// scale/add backward need (see internal/nn's CoefficientConsumer
// implementations and DESIGN.md "Frequency-domain restore").
//
// Validity requires every 8×8 block to lie within one (n,c) plane of
// the tensor's (NCH)×W blocking, i.e. H and W both multiples of 8
// (Aligned). Consumers must fall back to a full spatial decode
// otherwise; Reconstruct provides that fallback bit-identically to the
// spatial codec path.
package freqdomain

import (
	"jpegact/internal/compress"
	"jpegact/internal/dct"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// Plane is one decoded coefficient plane: the quantized 8×8 DCT blocks
// of a saved activation plus everything needed to interpret them — the
// per-channel SFPR scales, the block geometry, and the folded
// dequantizer tables of the frame's quantization backend. The block
// slice is pooled (compress's scratch pool); Release returns it.
type Plane struct {
	// Blocks are the quantized coefficient blocks in (NCH)×W block
	// row-major order, exactly as compress.QuantizeBlocks produces them.
	Blocks [][64]int8
	// Scales are the per-channel SFPR quantization scales.
	Scales []float32
	// Info is the 8×8 blocking geometry of the original shape.
	Info tensor.PadInfo

	dqt   quant.DQT
	shift bool
	s     float64

	// dqNorm maps a quantized value to the JPEG-normalized coefficient
	// (for Parseval dots); dqAAN maps it to the AANInverse8x8-ready
	// prescaled coefficient (for the fused scale/add restore).
	dqNorm [64]float32
	dqAAN  [64]float32
}

// NewPlane wraps decoded blocks into a Plane. blocks is owned by the
// plane from here on (Release hands it back to the compress pool).
// shift selects the SH quantization backend tables (true for JPEG-ACT
// frames); s is the SFPR global scale the frame was encoded with.
func NewPlane(blocks [][64]int8, scales []float32, info tensor.PadInfo, d quant.DQT, shift bool, s float64) *Plane {
	p := &Plane{Blocks: blocks, Scales: scales, Info: info, dqt: d, shift: shift, s: s}
	p.dqNorm = p.dqt.FoldedInverse(shift, &dct.UnitScale2D)
	p.dqAAN = p.dqt.FoldedInverse(shift, &dct.AANPrescale2D)
	return p
}

// Quantize builds a plane straight from a tensor through the JPEG-ACT
// pipeline (SFPR → AAN DCT → folded SH quantization) — the test and
// benchmark entry point; production planes come from the offload
// codec's DecodeCoefficients.
func Quantize(x *tensor.Tensor, d quant.DQT, s float64) *Plane {
	pl := compress.JPEGAct(d)
	pl.S = s
	blocks, scales, info := pl.QuantizeBlocks(x)
	return NewPlane(blocks, scales, info, d, true, s)
}

// Release returns the pooled block slice. The plane must not be used
// afterwards. Safe to call twice.
func (p *Plane) Release() {
	compress.ReleaseBlocks(p.Blocks)
	p.Blocks = nil
}

// Shape returns the original (unpadded) activation shape.
func (p *Plane) Shape() tensor.Shape { return p.Info.Orig }

// Aligned reports whether every 8×8 block lies within a single (n,c)
// plane — the precondition for all per-channel coefficient kernels.
// Both spatial dims must be block multiples; PadRows == 0 alone is not
// enough (an H%8 != 0 tensor with an even plane count pads to zero rows
// but its blocks still straddle channel boundaries).
func (p *Plane) Aligned() bool {
	sh := p.Info.Orig
	return sh.H%dct.BlockSize == 0 && sh.W%dct.BlockSize == 0
}

// InvScale returns channel c's inverse SFPR scale (0 for an all-zero
// channel), the factor from clamped spatial codes back to activation
// units.
func (p *Plane) InvScale(c int) float32 {
	if sc := p.Scales[c]; sc != 0 {
		return 1 / (sc * 128)
	}
	return 0
}

// pipeline reconstitutes the compress pipeline the blocks came from.
func (p *Plane) pipeline() compress.Pipeline {
	return compress.Pipeline{DQT: p.dqt, UseShift: p.shift, UseZVC: true, S: p.s}
}

// Reconstruct materializes the full spatial tensor — bit-identical to
// the codec's spatial decode of the same frame, so a consumer that
// cannot use the coefficient view (or a plane that fails Aligned) loses
// nothing by falling back through here. The plane's blocks remain
// valid; call Release separately.
func (p *Plane) Reconstruct() *tensor.Tensor {
	pl := p.pipeline()
	return pl.ReconstructBlocks(p.Blocks, p.Scales, p.Info)
}

// DefaultS mirrors the SFPR default for callers constructing planes
// without a configured scale.
const DefaultS = sfpr.DefaultS
