package freqdomain

import (
	"jpegact/internal/dct"
	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// Coefficient-domain kernels. All of them require Aligned() — each 8×8
// block inside one (n,c) plane — and all keep the repo's determinism
// contract: within one output element (or one accumulated sum) the
// float op order is fixed and serial; parallelism only shards BETWEEN
// independent channels/columns, so results are bit-identical at any
// worker count. Branches (the selective-vs-full DCT switch, the DC-only
// fast path) depend only on stored coefficient data, never on timing.

// selectiveNNZ is the nonzero-count threshold at which the Parseval dot
// switches from per-nonzero basis dots (64 MACs each, four-way split so
// the adds pipeline instead of serializing on one accumulator) to one
// full AAN forward DCT of the dy tile plus a sparse pairing. The AAN
// butterfly amortizes far better than independent basis dots — its adds
// overlap across lanes — so the crossover sits at just a handful of
// nonzeros; only near-empty blocks win by dotting bases directly.
const selectiveNNZ = 6

// blocksWide / blocksHigh give the per-plane block grid.
func (p *Plane) blocksWide() int { return p.Info.Orig.W / dct.BlockSize }
func (p *Plane) blocksHigh() int { return p.Info.Orig.H / dct.BlockSize }

// planeBlocks returns the index of plane (n,c)'s first block and the
// per-plane block count.
func (p *Plane) planeBlocks(n, c int) (first, count int) {
	sh := p.Info.Orig
	per := p.blocksHigh() * p.blocksWide()
	return (n*sh.C + c) * per, per
}

// clampCode rounds a reconstructed spatial value to the int8 SFPR code
// grid, mirroring compress's reconstruction exactly so restored values
// match the spatial path bit for bit.
func clampCode(v float32) float32 {
	r := v
	if r >= 0 {
		r += 0.5
	} else {
		r -= 0.5
	}
	q := int32(r)
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return float32(q)
}

// SumPlane returns Σ x̃ over the (n,c) plane using only the DC terms:
// each block's spatial sum is DCToSum·DC (dct coefficient-layout
// identity), so the whole sum costs one multiply-add per block. x̃ is
// the ideal dequantized reconstruction (no code-grid clamp).
func (p *Plane) SumPlane(n, c int) float64 {
	inv := p.InvScale(c)
	if inv == 0 {
		return 0
	}
	first, count := p.planeBlocks(n, c)
	var sum float64
	for b := first; b < first+count; b++ {
		if q := p.Blocks[b][0]; q != 0 {
			sum += float64(float32(q) * p.dqNorm[0])
		}
	}
	return sum * dct.DCToSum * float64(inv)
}

// DotPlane returns ⟨dy, x̃⟩ over the (n,c) plane, where dy is the full
// gradient tensor's data (same shape as the saved activation) and x̃ is
// the ideal dequantized reconstruction in activation units (no code
// clamp — the one place the frequency path departs from the spatial
// restore, bounded by half a code unit per element). Parseval moves the
// dot to the coefficient domain, where all-zero blocks are skipped
// outright and sparse blocks pay one 64-MAC basis dot per nonzero
// coefficient.
func (p *Plane) DotPlane(dy []float32, n, c int) float64 {
	inv := p.InvScale(c)
	if inv == 0 {
		return 0
	}
	sh := p.Info.Orig
	bw, bh := p.blocksWide(), p.blocksHigh()
	first, _ := p.planeBlocks(n, c)
	dyBase := (n*sh.C + c) * sh.H * sh.W
	var total float64
	var tile dct.Block
	for br := 0; br < bh; br++ {
		for bc := 0; bc < bw; bc++ {
			q := &p.Blocks[first+br*bw+bc]
			nnz := 0
			for i := 0; i < 64 && nnz <= selectiveNNZ; i++ {
				if q[i] != 0 {
					nnz++
				}
			}
			if nnz == 0 {
				continue
			}
			for r := 0; r < 8; r++ {
				off := dyBase + (br*8+r)*sh.W + bc*8
				// Array-pointer assignment: an 8-float copy() is a memmove
				// call, and the call overhead dwarfs the 32-byte move.
				*(*[8]float32)(tile[r*8 : r*8+8]) = *(*[8]float32)(dy[off : off+8])
			}
			var dot float32
			if nnz <= selectiveNNZ {
				for i := 0; i < 64; i++ {
					qi := q[i]
					if qi == 0 {
						continue
					}
					// Four independent partial sums: a single accumulator
					// would serialize 64 adds on the FP latency chain.
					basis := &dct.NormBasis2D[i]
					var s0, s1, s2, s3 float32
					for j := 0; j < 64; j += 4 {
						s0 += tile[j] * basis[j]
						s1 += tile[j+1] * basis[j+1]
						s2 += tile[j+2] * basis[j+2]
						s3 += tile[j+3] * basis[j+3]
					}
					dot += ((s0 + s1) + (s2 + s3)) * (float32(qi) * p.dqNorm[i])
				}
			} else {
				dct.AANForward8x8(&tile)
				for i := 0; i < 64; i++ {
					qi := q[i]
					if qi == 0 {
						continue
					}
					dot += (tile[i] * dct.AANDescale2D32[i]) * (float32(qi) * p.dqNorm[i])
				}
			}
			total += float64(dot)
		}
	}
	return total * float64(inv)
}

// AffineRestorePlane is the coefficient-domain elementwise scale/add
// kernel: dx[j] = a·dy[j] + cx·x[j] + bb over the (n,c) plane, with x
// the EXACT restored activation (dequantize → inverse AAN DCT → code
// clamp → inverse SFPR scale, bit-identical to the spatial restore) —
// but produced one block at a time inside the fused loop, never
// materialized as a tensor. Blocks whose AC coefficients are all zero
// skip the inverse transform entirely: their spatial value is the
// (prescaled) DC constant. dy and dx are full-tensor data slices.
func (p *Plane) AffineRestorePlane(dy, dx []float32, n, c int, a, cx, bb float32) {
	sh := p.Info.Orig
	bw, bh := p.blocksWide(), p.blocksHigh()
	first, _ := p.planeBlocks(n, c)
	inv := p.InvScale(c)
	cs := cx * inv // code units → the cx·x term
	base := (n*sh.C + c) * sh.H * sh.W
	var blk dct.Block
	for br := 0; br < bh; br++ {
		for bc := 0; bc < bw; bc++ {
			q := &p.Blocks[first+br*bw+bc]
			acZero := true
			for i := 1; i < 64; i++ {
				if q[i] != 0 {
					acZero = false
					break
				}
			}
			if acZero {
				// Inverse of a DC-only prescaled block is flat: every
				// spatial sample equals the prescaled DC value.
				xc := cs*clampCode(float32(q[0])*p.dqAAN[0]) + bb
				for r := 0; r < 8; r++ {
					off := base + (br*8+r)*sh.W + bc*8
					dyRow := dy[off : off+8]
					dxRow := dx[off : off+8]
					for j := 0; j < 8; j++ {
						dxRow[j] = a*dyRow[j] + xc
					}
				}
				continue
			}
			for i := 0; i < 64; i++ {
				blk[i] = float32(q[i]) * p.dqAAN[i]
			}
			dct.AANInverse8x8(&blk)
			for r := 0; r < 8; r++ {
				off := base + (br*8+r)*sh.W + bc*8
				dyRow := dy[off : off+8]
				dxRow := dx[off : off+8]
				for j := 0; j < 8; j++ {
					dxRow[j] = a*dyRow[j] + cs*clampCode(blk[r*8+j]) + bb
				}
			}
		}
	}
}

// DecodeDot inverse-transforms plane (n,c) into dst — the ideal
// reconstruction in pre-clamp CODE units, spatial layout, exactly the
// values AffineRestorePlane sees before its code-grid rounding — and
// returns ⟨dy, x̃⟩ over the plane in activation units, fused into the
// same block pass. Pairing it with AffineCodes gives a backward that
// inverse-transforms each block ONCE even though the affine
// coefficients depend on the dot: the caller holds the decoded codes in
// a scratch plane (hw floats per (n,c)) between the two passes. Blocks
// with no AC term skip the transform (flat DC), all-zero blocks skip
// the dot too.
func (p *Plane) DecodeDot(dy []float32, n, c int, dst []float32) float64 {
	sh := p.Info.Orig
	hw := sh.H * sh.W
	if len(dst) < hw {
		panic("freqdomain: DecodeDot dst too small")
	}
	inv := p.InvScale(c)
	bw, bh := p.blocksWide(), p.blocksHigh()
	first, _ := p.planeBlocks(n, c)
	dyBase := (n*sh.C + c) * hw
	var total float64
	var blk dct.Block
	for br := 0; br < bh; br++ {
		for bc := 0; bc < bw; bc++ {
			q := &p.Blocks[first+br*bw+bc]
			acZero := true
			for i := 1; i < 64; i++ {
				if q[i] != 0 {
					acZero = false
					break
				}
			}
			if acZero {
				xc := float32(q[0]) * p.dqAAN[0]
				var s0, s1, s2, s3 float32
				for r := 0; r < 8; r++ {
					off := (br*8+r)*sh.W + bc*8
					*(*[8]float32)(dst[off : off+8]) = [8]float32{xc, xc, xc, xc, xc, xc, xc, xc}
					if q[0] != 0 {
						dyRow := dy[dyBase+off : dyBase+off+8]
						s0 += dyRow[0] + dyRow[4]
						s1 += dyRow[1] + dyRow[5]
						s2 += dyRow[2] + dyRow[6]
						s3 += dyRow[3] + dyRow[7]
					}
				}
				total += float64(((s0 + s1) + (s2 + s3)) * xc)
				continue
			}
			for i := 0; i < 64; i++ {
				blk[i] = float32(q[i]) * p.dqAAN[i]
			}
			dct.AANInverse8x8(&blk)
			var s0, s1, s2, s3 float32
			for r := 0; r < 8; r++ {
				off := (br*8+r)*sh.W + bc*8
				row := (*[8]float32)(blk[r*8 : r*8+8])
				*(*[8]float32)(dst[off : off+8]) = *row
				dyRow := (*[8]float32)(dy[dyBase+off : dyBase+off+8])
				s0 += dyRow[0]*row[0] + dyRow[4]*row[4]
				s1 += dyRow[1]*row[1] + dyRow[5]*row[5]
				s2 += dyRow[2]*row[2] + dyRow[6]*row[6]
				s3 += dyRow[3]*row[3] + dyRow[7]*row[7]
			}
			total += float64((s0 + s1) + (s2 + s3))
		}
	}
	return total * float64(inv)
}

// AffineCodes is AffineRestorePlane over pre-decoded codes: dx[j] =
// a·dy[j] + cx·x[j] + bb, with x[j] recovered from codes[j] (DecodeDot
// output for the same plane) by the spatial restore's exact code-grid
// rounding — so the x term is bit-identical to AffineRestorePlane's,
// with the inverse transform already paid.
func (p *Plane) AffineCodes(dy, dx []float32, n, c int, codes []float32, a, cx, bb float32) {
	sh := p.Info.Orig
	hw := sh.H * sh.W
	cs := cx * p.InvScale(c)
	base := (n*sh.C + c) * hw
	dyP := dy[base : base+hw]
	dxP := dx[base : base+hw]
	codes = codes[:hw]
	for j := range codes {
		dxP[j] = a*dyP[j] + cs*clampCode(codes[j]) + bb
	}
}

// CoefficientRows fills dst (C rows × H·W columns) with the frequency-
// layout view of batch element n: row ic is plane (n,ic)'s blocks in
// order, 64 JPEG-normalized dequantized coefficients per block, scaled
// by the channel's inverse SFPR scale. The rows pair index-for-index
// with GradCoefColumns' rows under Parseval, so a GEMM between them is
// the spatial correlation ⟨dy_oc, x̃_ic⟩ summed over the plane — and the
// post-quantization zeros stay zero, which is what the guarded GEMM
// micro-kernels' zero-skip exploits. Parallel over channels (each row
// is written by one worker).
func (p *Plane) CoefficientRows(n int, dst []float32) {
	sh := p.Info.Orig
	rowLen := sh.H * sh.W
	if len(dst) < sh.C*rowLen {
		panic("freqdomain: CoefficientRows dst too small")
	}
	parallel.For(sh.C, parallel.Grain(rowLen, 4096), func(clo, chi int) {
		for ic := clo; ic < chi; ic++ {
			row := dst[ic*rowLen : (ic+1)*rowLen]
			for j := range row {
				row[j] = 0
			}
			inv := p.InvScale(ic)
			if inv == 0 {
				continue
			}
			first, count := p.planeBlocks(n, ic)
			for b := 0; b < count; b++ {
				q := &p.Blocks[first+b]
				out := row[b*64 : (b+1)*64]
				for i := 0; i < 64; i++ {
					if qi := q[i]; qi != 0 {
						out[i] = float32(qi) * p.dqNorm[i] * inv
					}
				}
			}
		}
	})
}

// GradCoefColumns fills dst (H·W rows × C columns) with the JPEG-
// normalized forward DCT of batch element n of g, transposed: entry
// [b·64+i][oc] is coefficient i of block b of plane (n,oc). Column oc's
// k index matches CoefficientRows' row layout, so C += X̃·G computes
// every ⟨x̃_ic, dy_oc⟩ plane correlation in one GEMM. g must be aligned
// (H, W multiples of 8). Parallel over blocks, channels inner: block b
// owns dst rows [b·64, (b+1)·64) — a slab that stays cache-resident
// while all C channels of the block transform into it, where the
// channel-outer order would stride every store across the full matrix.
// Each dst element is written exactly once, by one worker.
func GradCoefColumns(g *tensor.Tensor, n int, dst []float32) {
	sh := g.Shape
	if sh.H%dct.BlockSize != 0 || sh.W%dct.BlockSize != 0 {
		panic("freqdomain: GradCoefColumns requires 8-aligned H and W")
	}
	hw := sh.H * sh.W
	if len(dst) < hw*sh.C {
		panic("freqdomain: GradCoefColumns dst too small")
	}
	bw, bh := sh.W/dct.BlockSize, sh.H/dct.BlockSize
	parallel.For(bh*bw, parallel.Grain(2*64*sh.C, 4096), func(blo, bhi int) {
		var tile dct.Block
		for b := blo; b < bhi; b++ {
			br, bc := b/bw, b%bw
			kBase := b * 64
			for oc := 0; oc < sh.C; oc++ {
				base := (n*sh.C + oc) * hw
				for r := 0; r < 8; r++ {
					off := base + (br*8+r)*sh.W + bc*8
					*(*[8]float32)(tile[r*8 : r*8+8]) = *(*[8]float32)(g.Data[off : off+8])
				}
				dct.AANForward8x8(&tile)
				for i := 0; i < 64; i++ {
					dst[(kBase+i)*sh.C+oc] = tile[i] * dct.AANDescale2D32[i]
				}
			}
		}
	})
}

// CoefGemm accumulates wgT (C rows × outC columns) += X̃f·Gf for batch
// element n, where X̃f is the CoefficientRows view of the plane and Gf
// the GradCoefColumns view of the gradient — without materializing X̃f.
// The guarded GEMM micro-kernels skip zero A elements one branch at a
// time but still scan the full k range per panel; here the plane's
// quantized blocks ARE the sparsity structure, so the kernel walks only
// the stored nonzeros and issues one outC-wide saxpy per surviving
// coefficient. Row ic of wgT is owned by channel ic and accumulates in
// ascending-k order, serial per row — bit-identical at any worker count.
func (p *Plane) CoefGemm(n, outC int, gf, wgT []float32) {
	sh := p.Info.Orig
	hw := sh.H * sh.W
	if len(gf) < hw*outC {
		panic("freqdomain: CoefGemm gf too small")
	}
	if len(wgT) < sh.C*outC {
		panic("freqdomain: CoefGemm wgT too small")
	}
	parallel.For(sh.C, parallel.Grain(hw*outC/16, 1<<14), func(clo, chi int) {
		for ic := clo; ic < chi; ic++ {
			inv := p.InvScale(ic)
			if inv == 0 {
				continue
			}
			crow := wgT[ic*outC : (ic+1)*outC]
			first, count := p.planeBlocks(n, ic)
			// Nonzeros are batched four at a time so each quad costs one
			// pass of crow loads and stores instead of four; k stays
			// ascending (quads fill in coefficient order, the tail runs
			// last), so the grouping depends only on stored data.
			var avs [4]float32
			var rows [4][]float32
			cnt := 0
			for b := 0; b < count; b++ {
				q := &p.Blocks[first+b]
				kBase := b * 64
				for i := 0; i < 64; i++ {
					qi := q[i]
					if qi == 0 {
						continue
					}
					avs[cnt] = float32(qi) * p.dqNorm[i] * inv
					rows[cnt] = gf[(kBase+i)*outC : (kBase+i+1)*outC]
					cnt++
					if cnt < 4 {
						continue
					}
					cnt = 0
					a0, a1, a2, a3 := avs[0], avs[1], avs[2], avs[3]
					g0, g1, g2, g3 := rows[0], rows[1], rows[2], rows[3]
					for j := range crow {
						crow[j] += (a0*g0[j] + a1*g1[j]) + (a2*g2[j] + a3*g3[j])
					}
				}
			}
			for t := 0; t < cnt; t++ {
				av, grow := avs[t], rows[t]
				for j := range crow {
					crow[j] += av * grow[j]
				}
			}
		}
	})
}
