package nn

import (
	"math"
	"testing"
)

// quadratic sets grad = 2(w - target) for a scalar parameter, the convex
// test problem every optimizer must solve.
func quadStep(p *Param, target float32) {
	p.Grad.Data[0] = 2 * (p.W.Data[0] - target)
}

func optimizeQuad(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	p := NewParam("w", 1, 1, 1, 1)
	p.W.Data[0] = 5
	for i := 0; i < steps; i++ {
		quadStep(p, 1)
		opt.Step([]*Param{p})
	}
	return math.Abs(float64(p.W.Data[0]) - 1)
}

func TestAllOptimizersConvergeOnQuadratic(t *testing.T) {
	cases := []struct {
		name  string
		opt   Optimizer
		steps int
	}{
		{"sgd", NewSGD(0.1, 0, 0), 100},
		{"sgd+momentum", NewSGD(0.05, 0.9, 0), 200},
		{"nesterov", NewNesterov(0.05, 0.9, 0), 200},
		{"adam", NewAdam(0.2), 300},
	}
	for _, c := range cases {
		if err := optimizeQuad(t, c.opt, c.steps); err > 1e-2 {
			t.Fatalf("%s: distance to optimum %v", c.name, err)
		}
	}
}

func TestNesterovFasterThanPlainMomentumEarly(t *testing.T) {
	// On the quadratic with matched hyperparameters, Nesterov's
	// look-ahead damps oscillation: after few steps it should be at
	// least as close to the optimum.
	sgdErr := optimizeQuad(t, NewSGD(0.05, 0.9, 0), 25)
	nagErr := optimizeQuad(t, NewNesterov(0.05, 0.9, 0), 25)
	if nagErr > sgdErr*1.5 {
		t.Fatalf("nesterov %v much worse than momentum %v", nagErr, sgdErr)
	}
}

func TestAdamScaleInvariance(t *testing.T) {
	// Adam's per-parameter normalization makes the first update ≈ LR
	// regardless of gradient magnitude.
	for _, scale := range []float32{1e-3, 1, 1e3} {
		p := NewParam("w", 1, 1, 1, 1)
		p.W.Data[0] = 0
		p.Grad.Data[0] = scale
		opt := NewAdam(0.1)
		opt.Step([]*Param{p})
		if d := math.Abs(float64(p.W.Data[0]) + 0.1); d > 1e-3 {
			t.Fatalf("scale %v: first update %v, want ≈ -0.1", scale, p.W.Data[0])
		}
	}
}

func TestAdamWeightDecay(t *testing.T) {
	p := NewParam("w", 1, 1, 1, 1)
	p.W.Data[0] = 10
	opt := NewAdam(0.01)
	opt.WeightDecay = 0.1
	for i := 0; i < 50; i++ {
		opt.Step([]*Param{p}) // zero gradient: only decay acts
	}
	if p.W.Data[0] >= 10 {
		t.Fatal("weight decay did not shrink the weight")
	}
}

func TestOptimizersZeroGrad(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1, 0.9, 0), NewNesterov(0.1, 0.9, 0), NewAdam(0.1)} {
		p := NewParam("w", 1, 1, 1, 2)
		p.Grad.Fill(1)
		opt.Step([]*Param{p})
		if p.Grad.MaxAbs() != 0 {
			t.Fatalf("%T left gradients set", opt)
		}
	}
}
