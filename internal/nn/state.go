package nn

// Forward-replay support for the recompute-on-corruption recovery path:
// when a corrupted offload frame cannot be re-read, the trainer re-runs
// the forward pass from the batch input (the nearest activation that is
// guaranteed intact) to re-materialize the lost activations. For the
// replay to be bit-identical to the original forward — the property the
// whole recovery story rests on — every forward side effect beyond the
// saved ActRefs must be rewound first. Exactly two layer kinds have such
// state: BatchNorm (running mean/var updates) and Dropout (RNG draws).

// Container is implemented by layers that hold child layers; Walk uses
// it to reach every layer in a network.
type Container interface {
	Children() []Layer
}

// Children implements Container.
func (s *Sequential) Children() []Layer { return s.Layers }

// Children implements Container.
func (r *Residual) Children() []Layer {
	out := []Layer{r.Body}
	if r.Shortcut != nil {
		out = append(out, r.Shortcut)
	}
	return out
}

// Walk visits l and every descendant layer in deterministic order.
func Walk(l Layer, fn func(Layer)) {
	fn(l)
	if c, ok := l.(Container); ok {
		for _, ch := range c.Children() {
			Walk(ch, fn)
		}
	}
}

// Stateful is implemented by layers whose training-mode Forward mutates
// state beyond the saved activation refs, and which must therefore be
// rewound before a forward replay.
type Stateful interface {
	// CaptureState returns an opaque snapshot of the mutable state.
	CaptureState() any
	// RestoreState rewinds to a snapshot from CaptureState.
	RestoreState(st any)
}

// NetState is an ordered snapshot of every Stateful layer in a network.
type NetState []any

// CaptureNetState snapshots all forward side-effect state under root
// (call it immediately before Forward to enable an exact replay).
func CaptureNetState(root Layer) NetState {
	var out NetState
	Walk(root, func(l Layer) {
		if s, ok := l.(Stateful); ok {
			out = append(out, s.CaptureState())
		}
	})
	return out
}

// RestoreNetState rewinds all Stateful layers under root to a snapshot
// taken by CaptureNetState on the same network.
func RestoreNetState(root Layer, st NetState) {
	i := 0
	Walk(root, func(l Layer) {
		if s, ok := l.(Stateful); ok {
			if i >= len(st) {
				panic("nn: RestoreNetState snapshot does not match network")
			}
			s.RestoreState(st[i])
			i++
		}
	})
	if i != len(st) {
		panic("nn: RestoreNetState snapshot does not match network")
	}
}

// bnState is BatchNorm's Stateful snapshot.
type bnState struct {
	runningMean []float32
	runningVar  []float32
}

// CaptureState implements Stateful (running stats only: the per-batch
// mean/invStd are recomputed identically by the replay).
func (b *BatchNorm) CaptureState() any {
	return bnState{
		runningMean: append([]float32(nil), b.RunningMean...),
		runningVar:  append([]float32(nil), b.RunningVar...),
	}
}

// RestoreState implements Stateful.
func (b *BatchNorm) RestoreState(st any) {
	s := st.(bnState)
	copy(b.RunningMean, s.runningMean)
	copy(b.RunningVar, s.runningVar)
}

// CaptureState implements Stateful: dropout's only mutable state is its
// RNG position. Layers sharing one RNG capture the same value and are
// rewound idempotently.
func (d *Dropout) CaptureState() any { return d.rng.State() }

// RestoreState implements Stateful.
func (d *Dropout) RestoreState(st any) { d.rng.SetState(st.(uint64)) }
