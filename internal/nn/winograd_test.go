package nn

import (
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

func TestWinogradMatchesIm2col(t *testing.T) {
	rng := tensor.NewRNG(60)
	for _, cfg := range []struct {
		n, inC, outC, h, w, pad int
		bias                    bool
	}{
		{1, 1, 1, 4, 4, 1, false},
		{2, 3, 5, 8, 8, 1, true},
		{1, 2, 2, 7, 9, 1, false}, // odd spatial dims exercise edge tiles
		{1, 2, 4, 6, 6, 0, true},  // no padding
	} {
		ref := NewConv2D("ref", cfg.inC, cfg.outC, 3, ConvOpts{Pad: cfg.pad, Bias: cfg.bias}, tensor.NewRNG(61))
		win := NewConv2D("win", cfg.inC, cfg.outC, 3, ConvOpts{Pad: cfg.pad, Bias: cfg.bias, Winograd: true}, tensor.NewRNG(61))
		win.Weight.W.CopyFrom(ref.Weight.W)
		if cfg.bias {
			win.Bias.W.CopyFrom(ref.Bias.W)
		}
		x := tensor.New(cfg.n, cfg.inC, cfg.h, cfg.w)
		x.FillNormal(rng, 0, 1)
		a := ref.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
		b := win.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
		if a.T.Shape != b.T.Shape {
			t.Fatalf("%+v: shapes %v vs %v", cfg, a.T.Shape, b.T.Shape)
		}
		for i := range a.T.Data {
			if math.Abs(float64(a.T.Data[i]-b.T.Data[i])) > 1e-4 {
				t.Fatalf("%+v: output %d differs: %v vs %v", cfg, i, a.T.Data[i], b.T.Data[i])
			}
		}
	}
}

func TestWinogradFallsBackForNon3x3(t *testing.T) {
	rng := tensor.NewRNG(62)
	c := NewConv2D("c", 2, 2, 1, ConvOpts{Winograd: true}, rng)
	if c.winogradApplicable() {
		t.Fatal("1x1 must not claim Winograd")
	}
	s := NewConv2D("s", 2, 2, 3, ConvOpts{Stride: 2, Pad: 1, Winograd: true}, rng)
	if s.winogradApplicable() {
		t.Fatal("stride-2 must not claim Winograd")
	}
	// And the layers still compute (via im2col).
	x := tensor.New(1, 2, 8, 8)
	x.FillNormal(rng, 0, 1)
	if out := s.Forward(&ActRef{Kind: compress.KindConv, T: x}, false); out.T.Shape.H != 4 {
		t.Fatalf("fallback shape %v", out.T.Shape)
	}
}

func TestWinogradTrainingEndToEnd(t *testing.T) {
	// A Winograd-forward conv must still train (backward uses im2col on
	// the saved input).
	rng := tensor.NewRNG(63)
	net := NewSequential("net",
		NewConv2D("c1", 1, 4, 3, ConvOpts{Pad: 1, Winograd: true}, rng),
		NewBatchNorm("bn", 4),
		NewReLU("r"),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 4, 2, rng),
	)
	opt := NewSGD(0.1, 0.9, 0)
	dataRng := tensor.NewRNG(64)
	var first, last float64
	for step := 0; step < 25; step++ {
		x := tensor.New(8, 1, 8, 8)
		labels := make([]int, 8)
		for i := 0; i < 8; i++ {
			cl := i % 2
			labels[i] = cl
			for j := 0; j < 64; j++ {
				x.Data[i*64+j] = float32(float64(cl)*2 - 1 + 0.5*dataRng.Norm())
			}
		}
		out := net.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
		loss, grad := SoftmaxCrossEntropy(out.T, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if last > first*0.5 {
		t.Fatalf("winograd training did not converge: %v -> %v", first, last)
	}
}

func BenchmarkConvIm2col(b *testing.B) {
	benchConv(b, false)
}

func BenchmarkConvWinograd(b *testing.B) {
	benchConv(b, true)
}

func benchConv(b *testing.B, winograd bool) {
	rng := tensor.NewRNG(65)
	c := NewConv2D("c", 16, 16, 3, ConvOpts{Pad: 1, Winograd: winograd}, rng)
	x := tensor.New(4, 16, 32, 32)
	x.FillNormal(rng, 0, 1)
	ref := &ActRef{Kind: compress.KindConv, T: x}
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Forward(ref, false)
	}
}
