package nn

import (
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

func TestAvgPoolForwardBackward(t *testing.T) {
	p := NewAvgPool2("ap")
	x := tensor.FromSlice([]float32{
		1, 2, 5, 7,
		3, 4, 9, 3,
		0, 0, 4, 4,
		0, 8, 4, 4,
	}, 1, 1, 4, 4)
	out := p.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	want := []float32{2.5, 6, 2, 4}
	for i := range want {
		if out.T.Data[i] != want[i] {
			t.Fatalf("avg forward %v", out.T.Data)
		}
	}
	dx := p.Backward(tensor.FromSlice([]float32{4, 8, 12, 16}, 1, 1, 2, 2))
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 2, 1) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("avg backward %v", dx.Data)
	}
}

func TestAvgPoolGrad(t *testing.T) {
	p := NewAvgPool2("ap")
	x := randT(100, 1, 2, 4, 4)
	r := randT(101, 1, 2, 2, 2)
	got := analyticGradInput(p, x, r)
	want := numGradInput(p, x, r)
	if d := maxRelDiff(got, want); d > 1e-2 {
		t.Fatalf("avgpool grad rel diff %v", d)
	}
}

func TestSmoothActivationGrads(t *testing.T) {
	for _, c := range []struct {
		name string
		l    Layer
	}{
		{"sigmoid", NewSigmoid("s")},
		{"tanh", NewTanh("t")},
		{"leaky", NewLeakyReLU("l", 0.1)},
	} {
		x := randT(102, 1, 2, 3, 3)
		r := randT(103, 1, 2, 3, 3)
		got := analyticGradInput(c.l, x, r)
		want := numGradInput(c.l, x, r)
		if d := maxRelDiff(got, want); d > 2e-2 {
			t.Fatalf("%s grad rel diff %v", c.name, d)
		}
	}
}

func TestSigmoidTanhKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float32{0, 100, -100}, 1, 1, 1, 3)
	s := NewSigmoid("s").Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if math.Abs(float64(s.T.Data[0])-0.5) > 1e-6 || s.T.Data[1] < 0.999 || s.T.Data[2] > 0.001 {
		t.Fatalf("sigmoid %v", s.T.Data)
	}
	th := NewTanh("t").Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if th.T.Data[0] != 0 || th.T.Data[1] < 0.999 || th.T.Data[2] > -0.999 {
		t.Fatalf("tanh %v", th.T.Data)
	}
}

func TestLeakyReLUDefaults(t *testing.T) {
	l := NewLeakyReLU("l", 0)
	if l.Alpha != 0.01 {
		t.Fatalf("default alpha %v", l.Alpha)
	}
	x := tensor.FromSlice([]float32{-2, 3}, 1, 1, 1, 2)
	out := l.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	if out.T.Data[0] != -0.02 || out.T.Data[1] != 3 {
		t.Fatalf("leaky forward %v", out.T.Data)
	}
	dx := l.Backward(tensor.FromSlice([]float32{1, 1}, 1, 1, 1, 2))
	if math.Abs(float64(dx.Data[0])-0.01) > 1e-7 || dx.Data[1] != 1 {
		t.Fatalf("leaky backward %v", dx.Data)
	}
}

func TestSmoothActivationsUnderCompression(t *testing.T) {
	// Their saved outputs are ActRefs, so the compression hook applies;
	// a recovered (lossy) output must still drive a finite backward pass.
	l := NewSigmoid("s")
	x := randT(104, 1, 2, 8, 8)
	out := l.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	m := compress.SFPROnly{}
	res := m.Compress(out.T, compress.KindConv, 0)
	out.T = res.Recovered
	g := randT(105, 1, 2, 8, 8)
	dx := l.Backward(g)
	if NaNGuard(dx) {
		t.Fatal("compressed sigmoid backward NaN")
	}
}
