package nn

import (
	"fmt"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

// DepthwiseConv2D convolves each channel with its own k×k filter (the
// depthwise half of the depthwise-separable blocks in MobileNets, which
// the paper lists among the CNR-block networks its compression applies
// to). Combined with a 1×1 Conv2D it forms the separable unit.
type DepthwiseConv2D struct {
	LayerName   string
	C           int
	Kernel      int
	Stride, Pad int
	Weight      *Param // (C, 1, K, K)
	in          *ActRef
	outShape    tensor.Shape
}

// NewDepthwiseConv2D builds the layer with He initialization.
func NewDepthwiseConv2D(name string, c, kernel int, opts ConvOpts, rng *tensor.RNG) *DepthwiseConv2D {
	if opts.Stride == 0 {
		opts.Stride = 1
	}
	d := &DepthwiseConv2D{
		LayerName: name,
		C:         c,
		Kernel:    kernel,
		Stride:    opts.Stride,
		Pad:       opts.Pad,
		Weight:    NewParam(name+".W", c, 1, kernel, kernel),
	}
	d.Weight.W.FillHe(rng, kernel*kernel)
	return d
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string { return d.LayerName }

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []*Param { return []*Param{d.Weight} }

// SavedRefs implements Layer.
func (d *DepthwiseConv2D) SavedRefs() []*ActRef {
	if d.in == nil {
		return nil
	}
	return []*ActRef{d.in}
}

func (d *DepthwiseConv2D) outDims(in tensor.Shape) (int, int) {
	ho := (in.H+2*d.Pad-d.Kernel)/d.Stride + 1
	wo := (in.W+2*d.Pad-d.Kernel)/d.Stride + 1
	return ho, wo
}

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	if x.Shape.C != d.C {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %v", d.LayerName, d.C, x.Shape))
	}
	if in.Kind == compress.KindReLUToOther {
		in.Kind = compress.KindReLUToConv
	}
	if train {
		d.in = in
	}
	ho, wo := d.outDims(x.Shape)
	d.outShape = tensor.Shape{N: x.Shape.N, C: d.C, H: ho, W: wo}
	out := tensor.New(x.Shape.N, d.C, ho, wo)
	h, w := x.Shape.H, x.Shape.W
	for n := 0; n < x.Shape.N; n++ {
		for c := 0; c < d.C; c++ {
			inBase := (n*d.C + c) * h * w
			outBase := (n*d.C + c) * ho * wo
			ker := d.Weight.W.Data[c*d.Kernel*d.Kernel : (c+1)*d.Kernel*d.Kernel]
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					var sum float32
					for ky := 0; ky < d.Kernel; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < d.Kernel; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if ix < 0 || ix >= w {
								continue
							}
							sum += ker[ky*d.Kernel+kx] * x.Data[inBase+iy*w+ix]
						}
					}
					out.Data[outBase+oy*wo+ox] = sum
				}
			}
		}
	}
	return &ActRef{Name: d.LayerName + ".out", Kind: compress.KindConv, T: out}
}

// Backward implements Layer.
func (d *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := d.in.T
	if x == nil {
		panic("nn: depthwise backward needs saved input values")
	}
	h, w := x.Shape.H, x.Shape.W
	ho, wo := d.outShape.H, d.outShape.W
	dx := tensor.NewLike(x)
	for n := 0; n < x.Shape.N; n++ {
		for c := 0; c < d.C; c++ {
			inBase := (n*d.C + c) * h * w
			outBase := (n*d.C + c) * ho * wo
			ker := d.Weight.W.Data[c*d.Kernel*d.Kernel : (c+1)*d.Kernel*d.Kernel]
			kgrad := d.Weight.Grad.Data[c*d.Kernel*d.Kernel : (c+1)*d.Kernel*d.Kernel]
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					g := grad.Data[outBase+oy*wo+ox]
					if g == 0 {
						continue
					}
					for ky := 0; ky < d.Kernel; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < d.Kernel; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if ix < 0 || ix >= w {
								continue
							}
							kgrad[ky*d.Kernel+kx] += g * x.Data[inBase+iy*w+ix]
							dx.Data[inBase+iy*w+ix] += g * ker[ky*d.Kernel+kx]
						}
					}
				}
			}
		}
	}
	return dx
}
