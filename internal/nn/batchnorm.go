package nn

import (
	"math"

	"jpegact/internal/compress"
	"jpegact/internal/dct"
	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// BatchNorm normalizes per channel over (N, H, W) with learnable scale
// gamma and shift beta (Ioffe & Szegedy). It saves its input — the dense
// "norm input c" of Fig. 3, the activation whose mandatory storage
// motivates JPEG-ACT — plus the small per-channel batch statistics (which
// stay on-GPU and are never offloaded).
type BatchNorm struct {
	LayerName string
	C         int
	Gamma     *Param
	Beta      *Param
	Eps       float64
	Momentum  float64 // running-stat update rate

	RunningMean []float32
	RunningVar  []float32

	in      *ActRef
	inShape tensor.Shape // shape of the saved input (survives offload nil-ing T)
	mean    []float32    // batch stats from the last training forward
	invStd  []float32
}

// NewBatchNorm builds a batch-norm layer for C channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	bn := &BatchNorm{
		LayerName:   name,
		C:           c,
		Gamma:       NewParam(name+".gamma", 1, c, 1, 1),
		Beta:        NewParam(name+".beta", 1, c, 1, 1),
		Eps:         1e-5,
		Momentum:    0.1,
		RunningMean: make([]float32, c),
		RunningVar:  make([]float32, c),
		mean:        make([]float32, c),
		invStd:      make([]float32, c),
	}
	bn.Gamma.W.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.LayerName }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// SavedRefs implements Layer.
func (b *BatchNorm) SavedRefs() []*ActRef {
	if b.in == nil {
		return nil
	}
	return []*ActRef{b.in}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	sh := x.Shape
	hw := sh.H * sh.W
	m := float64(sh.N * hw)
	out := tensor.NewLike(x)

	// Channels are independent — stats, running-stat updates and the
	// normalized writes all stay within channel c — so the channel loop
	// shards over the worker pool with the per-channel float accumulation
	// order unchanged (deterministic at any worker count).
	parallel.For(b.C, parallel.Grain(3*sh.N*hw, elemGrain), func(clo, chi int) {
		for c := clo; c < chi; c++ {
			var mean, invStd float64
			if train {
				var sum float64
				for n := 0; n < sh.N; n++ {
					base := (n*sh.C + c) * hw
					for i := 0; i < hw; i++ {
						sum += float64(x.Data[base+i])
					}
				}
				mean = sum / m
				var sq float64
				for n := 0; n < sh.N; n++ {
					base := (n*sh.C + c) * hw
					for i := 0; i < hw; i++ {
						d := float64(x.Data[base+i]) - mean
						sq += d * d
					}
				}
				variance := sq / m
				invStd = 1 / math.Sqrt(variance+b.Eps)
				b.mean[c] = float32(mean)
				b.invStd[c] = float32(invStd)
				b.RunningMean[c] = float32((1-b.Momentum)*float64(b.RunningMean[c]) + b.Momentum*mean)
				b.RunningVar[c] = float32((1-b.Momentum)*float64(b.RunningVar[c]) + b.Momentum*variance)
			} else {
				mean = float64(b.RunningMean[c])
				invStd = 1 / math.Sqrt(float64(b.RunningVar[c])+b.Eps)
			}
			g := float64(b.Gamma.W.Data[c])
			bt := float64(b.Beta.W.Data[c])
			for n := 0; n < sh.N; n++ {
				base := (n*sh.C + c) * hw
				for i := 0; i < hw; i++ {
					out.Data[base+i] = float32((float64(x.Data[base+i])-mean)*invStd*g + bt)
				}
			}
		}
	})
	if train {
		b.in = in
		b.inShape = sh
	}
	return &ActRef{Name: b.LayerName + ".out", Kind: compress.KindConv, T: out}
}

// WantsCoefficients implements CoefficientConsumer: batch-norm backward
// is linear in the saved input (sums, one inner product against dy, one
// elementwise scale/add), so any 8-aligned input the codec routes
// through the DCT path qualifies. The shape test uses the recorded
// forward shape — by plan time the offload hook has already nil'd ref.T.
func (b *BatchNorm) WantsCoefficients(ref *ActRef) bool {
	return ref == b.in && ref.Kind == compress.KindConv &&
		b.inShape.H%dct.BlockSize == 0 && b.inShape.W%dct.BlockSize == 0
}

// Backward implements Layer (standard batch-norm backward, recomputing
// x̂ from the saved — possibly lossy — input and the exact batch stats).
// When the restore left a coefficient plane on the ref, the statistics
// and the dx map are computed straight in the frequency domain.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.in.Coef != nil {
		if b.in.Coef.Aligned() && b.in.T == nil {
			return b.backwardFreq(grad)
		}
		spatialFromPlane(b.in)
	}
	x := b.in.T
	sh := x.Shape
	hw := sh.H * sh.W
	m := float64(sh.N * hw)
	dx := tensor.NewLike(x)

	// Same channel sharding as Forward: ∂β/∂γ accumulate into their own
	// channel slot and dx writes stay within channel c.
	parallel.For(b.C, parallel.Grain(4*sh.N*hw, elemGrain), func(clo, chi int) {
		for c := clo; c < chi; c++ {
			mean := float64(b.mean[c])
			invStd := float64(b.invStd[c])
			g := float64(b.Gamma.W.Data[c])

			var sumDy, sumDyXhat float64
			for n := 0; n < sh.N; n++ {
				base := (n*sh.C + c) * hw
				for i := 0; i < hw; i++ {
					dy := float64(grad.Data[base+i])
					xh := (float64(x.Data[base+i]) - mean) * invStd
					sumDy += dy
					sumDyXhat += dy * xh
				}
			}
			b.Beta.Grad.Data[c] += float32(sumDy)
			b.Gamma.Grad.Data[c] += float32(sumDyXhat)

			for n := 0; n < sh.N; n++ {
				base := (n*sh.C + c) * hw
				for i := 0; i < hw; i++ {
					dy := float64(grad.Data[base+i])
					xh := (float64(x.Data[base+i]) - mean) * invStd
					dx.Data[base+i] = float32(g * invStd * (dy - sumDy/m - xh*sumDyXhat/m))
				}
			}
		}
	})
	return dx
}

// backwardFreq is the coefficient-domain backward: per channel it needs
// Σdy (from the spatial gradient, same accumulation order as the spatial
// path — so ∂β is bit-identical), Σdy·x fused into a single decode of
// the plane's blocks, and one a·dy + cx·x + bb sweep for dx over the
// decoded codes — one inverse transform per block total (the spatial
// path pays the same transform inside its restore, then two more full
// recompute-x̂ passes), and no materialized input tensor beyond a
// per-worker channel scratch. The x in the dot is the ideal (unclamped)
// dequantized reconstruction, which departs from the spatial restore by
// at most half a code unit per element; that bound is the path's
// documented tolerance. The dx map itself recovers x through the exact
// code-grid rounding, bit-identical to a spatial restore.
func (b *BatchNorm) backwardFreq(grad *tensor.Tensor) *tensor.Tensor {
	pl := b.in.Coef
	sh := pl.Shape()
	hw := sh.H * sh.W
	m := float64(sh.N * hw)
	dx := tensor.New(sh.N, sh.C, sh.H, sh.W)

	// Same channel sharding as the spatial backward: every accumulation
	// and every dx write stays within channel c, and within a channel the
	// block/element order is serial — bit-identical at any worker count.
	parallel.For(b.C, parallel.Grain(2*sh.N*hw, elemGrain), func(clo, chi int) {
		// Decoded pre-clamp codes for one channel at a time; per-worker,
		// so its lifetime never crosses a shard boundary.
		codes := make([]float32, sh.N*hw)
		for c := clo; c < chi; c++ {
			mean := float64(b.mean[c])
			invStd := float64(b.invStd[c])
			g := float64(b.Gamma.W.Data[c])

			var sumDy float64
			for n := 0; n < sh.N; n++ {
				base := (n*sh.C + c) * hw
				for i := 0; i < hw; i++ {
					sumDy += float64(grad.Data[base+i])
				}
			}
			var dotDyX float64
			for n := 0; n < sh.N; n++ {
				dotDyX += pl.DecodeDot(grad.Data, n, c, codes[n*hw:(n+1)*hw])
			}
			// Σ dy·x̂ = invStd · (Σ dy·x − mean·Σ dy)
			sumDyXhat := invStd * (dotDyX - mean*sumDy)
			b.Beta.Grad.Data[c] += float32(sumDy)
			b.Gamma.Grad.Data[c] += float32(sumDyXhat)

			// dx = g·invStd·dy − g·invStd²·(ΣdyX̂)/m · x
			//      − g·invStd·(Σdy)/m + g·invStd²·(ΣdyX̂)·mean/m
			a := float32(g * invStd)
			cx := float32(-g * invStd * invStd * sumDyXhat / m)
			bb := float32(-g*invStd*sumDy/m + g*invStd*invStd*sumDyXhat*mean/m)
			for n := 0; n < sh.N; n++ {
				pl.AffineCodes(grad.Data, dx.Data, n, c, codes[n*hw:(n+1)*hw], a, cx, bb)
			}
		}
	})
	return dx
}
