package nn

import "jpegact/internal/tensor"

// Winograd F(2×2, 3×3) convolution — the fast algorithm behind the
// WINOGRAD kernels the paper's microbenchmarks run for 3×3 convolutions
// (§VI-D). The output is computed per 2×2 tile from a 4×4 input tile:
//
//	Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//
// with the standard transforms
//
//	Bᵀ = ⎡1  0 −1  0⎤   G = ⎡ 1    0   0 ⎤   Aᵀ = ⎡1 1  1  0⎤
//	     ⎢0  1  1  0⎥       ⎢ ½    ½   ½ ⎥        ⎣0 1 −1 −1⎦
//	     ⎢0 −1  1  0⎥       ⎢ ½   −½   ½ ⎥
//	     ⎣0  1  0 −1⎦       ⎣ 0    0   1 ⎦
//
// using 16 multiplies per 4 outputs instead of 36 — the 2.25× arithmetic
// reduction that gives the Winograd kernel class its higher utilization
// in the gpusim roofline. Applicable to 3×3, stride-1 convolutions; the
// layer falls back to im2col otherwise (and always for backward, which
// recomputes from the saved — possibly lossy — input).

// winogradApplicable reports whether the fast path can serve the conv.
func (c *Conv2D) winogradApplicable() bool {
	return c.Kernel == 3 && c.Stride == 1
}

// transformFilter computes U = G g Gᵀ for one 3×3 filter into a 16-slot
// tile.
func transformFilter(g []float32, u *[16]float32) {
	// t = G g (4×3)
	var t [12]float32
	for col := 0; col < 3; col++ {
		g0, g1, g2 := g[col], g[3+col], g[6+col]
		t[col] = g0
		t[3+col] = 0.5 * (g0 + g1 + g2)
		t[6+col] = 0.5 * (g0 - g1 + g2)
		t[9+col] = g2
	}
	// U = t Gᵀ (4×4)
	for row := 0; row < 4; row++ {
		t0, t1, t2 := t[row*3], t[row*3+1], t[row*3+2]
		u[row*4] = t0
		u[row*4+1] = 0.5 * (t0 + t1 + t2)
		u[row*4+2] = 0.5 * (t0 - t1 + t2)
		u[row*4+3] = t2
	}
}

// transformInput computes V = Bᵀ d B for one 4×4 input tile in place.
func transformInput(d *[16]float32) {
	var t [16]float32
	// t = Bᵀ d
	for col := 0; col < 4; col++ {
		d0, d1, d2, d3 := d[col], d[4+col], d[8+col], d[12+col]
		t[col] = d0 - d2
		t[4+col] = d1 + d2
		t[8+col] = d2 - d1
		t[12+col] = d1 - d3
	}
	// V = t B
	for row := 0; row < 4; row++ {
		t0, t1, t2, t3 := t[row*4], t[row*4+1], t[row*4+2], t[row*4+3]
		d[row*4] = t0 - t2
		d[row*4+1] = t1 + t2
		d[row*4+2] = t2 - t1
		d[row*4+3] = t1 - t3
	}
}

// transformOutput computes Y = Aᵀ m A, reducing a 4×4 product tile to the
// 2×2 output.
func transformOutput(m *[16]float32, y *[4]float32) {
	// t = Aᵀ m (2×4)
	var t [8]float32
	for col := 0; col < 4; col++ {
		m0, m1, m2, m3 := m[col], m[4+col], m[8+col], m[12+col]
		t[col] = m0 + m1 + m2
		t[4+col] = m1 - m2 - m3
	}
	// Y = t A (2×2)
	for row := 0; row < 2; row++ {
		t0, t1, t2, t3 := t[row*4], t[row*4+1], t[row*4+2], t[row*4+3]
		y[row*2] = t0 + t1 + t2
		y[row*2+1] = t1 - t2 - t3
	}
}

// forwardWinograd computes the convolution output for all batches with
// the F(2×2, 3×3) algorithm. Shapes and padding follow the layer config.
func (c *Conv2D) forwardWinograd(x *tensor.Tensor) *tensor.Tensor {
	ho, wo := c.outDims(x.Shape)
	out := tensor.New(x.Shape.N, c.OutC, ho, wo)
	h, w := x.Shape.H, x.Shape.W

	// Pre-transform all filters: U[oc][ic] is a 16-wide tile.
	u := make([][16]float32, c.OutC*c.InC)
	for oc := 0; oc < c.OutC; oc++ {
		for ic := 0; ic < c.InC; ic++ {
			g := c.Weight.W.Data[(oc*c.InC+ic)*9 : (oc*c.InC+ic)*9+9]
			transformFilter(g, &u[oc*c.InC+ic])
		}
	}

	tilesY := (ho + 1) / 2
	tilesX := (wo + 1) / 2
	var d [16]float32
	var acc [16]float32
	var y [4]float32
	for n := 0; n < x.Shape.N; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				iy0 := ty*2 - c.Pad
				ix0 := tx*2 - c.Pad
				for oc := 0; oc < c.OutC; oc++ {
					for i := range acc {
						acc[i] = 0
					}
					for ic := 0; ic < c.InC; ic++ {
						// Gather the 4×4 input tile with zero padding.
						base := (n*x.Shape.C + ic) * h * w
						for r := 0; r < 4; r++ {
							iy := iy0 + r
							for cc := 0; cc < 4; cc++ {
								ix := ix0 + cc
								if iy >= 0 && iy < h && ix >= 0 && ix < w {
									d[r*4+cc] = x.Data[base+iy*w+ix]
								} else {
									d[r*4+cc] = 0
								}
							}
						}
						transformInput(&d)
						ut := &u[oc*c.InC+ic]
						for i := 0; i < 16; i++ {
							acc[i] += ut[i] * d[i]
						}
					}
					transformOutput(&acc, &y)
					outBase := (n*c.OutC + oc) * ho * wo
					for r := 0; r < 2; r++ {
						oy := ty*2 + r
						if oy >= ho {
							continue
						}
						for cc := 0; cc < 2; cc++ {
							ox := tx*2 + cc
							if ox >= wo {
								continue
							}
							v := y[r*2+cc]
							if c.Bias != nil {
								v += c.Bias.W.Data[oc]
							}
							out.Data[outBase+oy*wo+ox] = v
						}
					}
				}
			}
		}
	}
	return out
}
