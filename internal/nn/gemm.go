package nn

import (
	"math"
	"sync"
	"sync/atomic"

	"jpegact/internal/parallel"
)

// Cache-blocked GEMM with packed B panels and register-tiled
// micro-kernels.
//
// The saxpy kernels in gemm_ref.go load and store a C element for every
// multiply-add. The kernels here instead hold a 2×4 tile of C in
// registers for the whole k loop: per k step they issue 6 loads for 8
// multiply-adds and no stores, roughly halving the instruction count per
// flop — the win register blocking buys on a scalar ISA. B is packed
// once per call into 4-column panels laid out k-major, so the
// micro-kernel's B loads are a single contiguous stream instead of an
// n-strided column walk; edge panels are zero-padded to width 4.
//
// Determinism contract (the repo-wide invariant): every C element must
// accumulate in exactly the order the reference kernel uses, at any
// worker count. The micro-kernels seed each accumulator with the
// incoming C value, run the FULL k range ascending with no partial sums,
// and replicate the reference zero-skip on A (Gemm/GemmTA skip av == 0,
// which matters for ±0 signs; GemmTB sums from zero with no skip and
// adds into C once). Row blocking, column paneling, and worker sharding
// only reorder work BETWEEN C elements, never the float32 op sequence
// WITHIN one, so the output is bit-identical to gemm_ref.go and to
// itself at any worker count. Tests in gemm_equiv_test.go pin this.

// gemmMinWork is the minimum number of multiply-adds one parallel chunk
// should carry; below it the goroutine overhead dominates and the
// kernels fall back to the serial path.
const gemmMinWork = 1 << 15

// gemmNR is the packed panel width and micro-tile width: 4 C columns.
const gemmNR = 4

// gemmMR is the micro-tile height: 2 C rows. 2×4 accumulators plus the
// per-step A and B temporaries fit the 16 scalar float registers of
// amd64 without spilling; anything larger spills the accumulators and
// loses the whole point of the tile.
const gemmMR = 2

// packPool recycles packed-B buffers across calls (one buffer per
// in-flight GEMM; workers share the read-only packed panels). New
// buffers are allocated at the high-water mark of requested sizes:
// GEMM calls of different shapes interleave, and a popped buffer that
// is too small for the current call would otherwise be discarded and
// re-allocated forever. At the high-water capacity every pooled buffer
// serves every request, so steady state allocates nothing.
var (
	packPool sync.Pool
	packMax  atomic.Int64
)

func getPack(n int) *[]float32 {
	if p, ok := packPool.Get().(*[]float32); ok && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	hw := int(packMax.Load())
	for hw < n {
		if packMax.CompareAndSwap(int64(hw), int64(n)) {
			hw = n
			break
		}
		hw = int(packMax.Load())
	}
	buf := make([]float32, n, hw)
	return &buf
}

func putPack(p *[]float32) { packPool.Put(p) }

// packB lays B (row-major K×N) out as ceil(n/4) panels of K rows × 4
// columns, k-major within a panel; edge panels are zero-padded. Packing
// is a serial O(k·n) copy: parallelizing it would cost a closure
// allocation and a pool barrier per GEMM call to speed up ~1/m of the
// O(m·k·n) total work.
func packB(k, n int, b, packed []float32) {
	np := (n + gemmNR - 1) / gemmNR
	for p := 0; p < np; p++ {
		j0 := p * gemmNR
		nr := n - j0
		dst := packed[p*k*gemmNR:]
		if nr >= gemmNR {
			for kk := 0; kk < k; kk++ {
				src := b[kk*n+j0 : kk*n+j0+gemmNR]
				d := dst[kk*gemmNR : kk*gemmNR+gemmNR]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		for kk := 0; kk < k; kk++ {
			d := dst[kk*gemmNR : kk*gemmNR+gemmNR]
			d[0], d[1], d[2], d[3] = 0, 0, 0, 0
			copy(d, b[kk*n+j0:kk*n+j0+nr])
		}
	}
}

// gemmMicro2x4 updates the 2×4 C tile (c0[0:4], c1[0:4]) against a
// packed panel: accumulators seeded from C, full-k ascending, per-row
// zero-skip, one store per element at the end. B values are consumed as
// indexed loads rather than hoisted temporaries — eight accumulators
// plus four B temps spill on amd64's sixteen scalar float registers,
// and a spilled accumulator costs more than a reloaded L1-hot operand.
// nonZero reports whether v is neither +0 nor -0 — exactly the
// reference kernels' `av == 0 { continue }` guard (NaN counts as
// non-zero there too, since NaN == 0 is false). The bit test compiles
// to one integer branch instead of ucomiss plus a parity branch.
func nonZero(v float32) bool {
	return math.Float32bits(v)<<1 != 0
}

func gemmMicro2x4(k int, a0, a1, pb []float32, c0, c1 []float32) {
	a0 = a0[:k]
	a1 = a1[:k]
	s00, s01, s02, s03 := c0[0], c0[1], c0[2], c0[3]
	s10, s11, s12, s13 := c1[0], c1[1], c1[2], c1[3]
	for kk := 0; kk < k; kk++ {
		bp := (*[gemmNR]float32)(pb[kk*gemmNR:])
		if av := a0[kk]; nonZero(av) {
			s00 += av * bp[0]
			s01 += av * bp[1]
			s02 += av * bp[2]
			s03 += av * bp[3]
		}
		if av := a1[kk]; nonZero(av) {
			s10 += av * bp[0]
			s11 += av * bp[1]
			s12 += av * bp[2]
			s13 += av * bp[3]
		}
	}
	c0[0], c0[1], c0[2], c0[3] = s00, s01, s02, s03
	c1[0], c1[1], c1[2], c1[3] = s10, s11, s12, s13
}

func gemmMicro1x4(k int, a0, pb []float32, c0 []float32) {
	a0 = a0[:k]
	s00, s01, s02, s03 := c0[0], c0[1], c0[2], c0[3]
	for kk := 0; kk < k; kk++ {
		if av := a0[kk]; nonZero(av) {
			bp := (*[gemmNR]float32)(pb[kk*gemmNR:])
			s00 += av * bp[0]
			s01 += av * bp[1]
			s02 += av * bp[2]
			s03 += av * bp[3]
		}
	}
	c0[0], c0[1], c0[2], c0[3] = s00, s01, s02, s03
}

// gemmEdgePanel handles the zero-padded last panel (nr < 4 real
// columns) for rows [i0, i1): same ascending-k skip-zero order, scalar
// stores restricted to the real columns.
func gemmEdgePanel(k, n, nr, i0, i1, j0 int, a, pb, c []float32) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n+j0 : i*n+j0+nr]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			b := pb[kk*gemmNR : kk*gemmNR+gemmNR][:nr]
			for j := range b {
				crow[j] += av * b[j]
			}
		}
	}
}

// gemmMicroDense2x4 is gemmMicro2x4 without the zero guards, for A rows
// the caller has verified contain no ±0 value: on such rows the guards
// can never fire, so dropping them changes nothing — it only removes two
// branches per k step from the hottest loop in the package. Weight
// matrices (the A of every forward conv/linear lowering) are dense in
// practice; the guarded kernel earns its keep on ReLU-sparse gradients.
func gemmMicroDense2x4(k int, a0, a1, pb []float32, c0, c1 []float32) {
	a0 = a0[:k]
	a1 = a1[:k]
	s00, s01, s02, s03 := c0[0], c0[1], c0[2], c0[3]
	s10, s11, s12, s13 := c1[0], c1[1], c1[2], c1[3]
	for kk := 0; kk < k; kk++ {
		bp := (*[gemmNR]float32)(pb[kk*gemmNR:])
		av0, av1 := a0[kk], a1[kk]
		s00 += av0 * bp[0]
		s01 += av0 * bp[1]
		s02 += av0 * bp[2]
		s03 += av0 * bp[3]
		s10 += av1 * bp[0]
		s11 += av1 * bp[1]
		s12 += av1 * bp[2]
		s13 += av1 * bp[3]
	}
	c0[0], c0[1], c0[2], c0[3] = s00, s01, s02, s03
	c1[0], c1[1], c1[2], c1[3] = s10, s11, s12, s13
}

func gemmMicroDense1x4(k int, a0, pb []float32, c0 []float32) {
	a0 = a0[:k]
	s00, s01, s02, s03 := c0[0], c0[1], c0[2], c0[3]
	for kk := 0; kk < k; kk++ {
		bp := (*[gemmNR]float32)(pb[kk*gemmNR:])
		av := a0[kk]
		s00 += av * bp[0]
		s01 += av * bp[1]
		s02 += av * bp[2]
		s03 += av * bp[3]
	}
	c0[0], c0[1], c0[2], c0[3] = s00, s01, s02, s03
}

// rowDensePool recycles the per-call row density flags.
var rowDensePool sync.Pool

func getDense(n int) *[]bool {
	if p, ok := rowDensePool.Get().(*[]bool); ok && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	buf := make([]bool, n)
	return &buf
}

func putDense(p *[]bool) { rowDensePool.Put(p) }

// scanDense marks which rows of row-major A contain no ±0 element, the
// precondition for the unguarded micro-kernels. Serial like packB: a
// single O(m·k) read pass, typically exiting each sparse row early.
func scanDense(m, k int, a []float32, dense []bool) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		d := true
		for _, v := range arow {
			if !nonZero(v) {
				d = false
				break
			}
		}
		dense[i] = d
	}
}

// gemmPackedBody runs the packed register-tiled kernels for C += A·B
// with row-major A and pre-packed B panels, picking the dense or guarded
// micro-kernel per row pair.
func gemmPackedBody(m, k, n, np int, a, pk, c []float32, dense []bool) {
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		for p := 0; p < np; p++ {
			j0 := p * gemmNR
			pb := pk[p*k*gemmNR : (p+1)*k*gemmNR]
			if n-j0 < gemmNR {
				gemmEdgePanel(k, n, n-j0, lo, hi, j0, a, pb, c)
				continue
			}
			i := lo
			for ; i+gemmMR <= hi; i += gemmMR {
				a0 := a[i*k : (i+1)*k]
				a1 := a[(i+1)*k : (i+2)*k]
				c0 := c[i*n+j0 : i*n+j0+gemmNR]
				c1 := c[(i+1)*n+j0 : (i+1)*n+j0+gemmNR]
				if dense[i] && dense[i+1] {
					gemmMicroDense2x4(k, a0, a1, pb, c0, c1)
				} else {
					gemmMicro2x4(k, a0, a1, pb, c0, c1)
				}
			}
			if i < hi {
				a0 := a[i*k : (i+1)*k]
				c0 := c[i*n+j0 : i*n+j0+gemmNR]
				if dense[i] {
					gemmMicroDense1x4(k, a0, pb, c0)
				} else {
					gemmMicro1x4(k, a0, pb, c0)
				}
			}
		}
	})
}

// Gemm computes C += A·B for row-major matrices: A is M×K, B is K×N,
// C is M×N. Large shapes run the packed register-tiled kernels; small
// ones fall back to the (bit-identical) saxpy reference.
func Gemm(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: gemm size mismatch")
	}
	if m < gemmMR || n < gemmNR || k < 8 {
		gemmSaxpy(m, k, n, a, b, c)
		return
	}
	np := (n + gemmNR - 1) / gemmNR
	packed := getPack(np * k * gemmNR)
	packB(k, n, b, *packed)
	dense := getDense(m)
	scanDense(m, k, a, *dense)
	gemmPackedBody(m, k, n, np, a, *packed, c, *dense)
	putDense(dense)
	putPack(packed)
}

// packAT transposes A (stored K×M) into row-major M×K, in 32×32 tiles so
// both sides stay within a few cache lines per step. One transpose pass
// replaces the m/2 strided column walks the micro-kernels would
// otherwise do, and lets GemmTA share Gemm's entire packed body.
func packAT(k, m int, a, at []float32) {
	const tile = 32
	for i0 := 0; i0 < m; i0 += tile {
		i1 := i0 + tile
		if i1 > m {
			i1 = m
		}
		for k0 := 0; k0 < k; k0 += tile {
			k1 := k0 + tile
			if k1 > k {
				k1 = k
			}
			for i := i0; i < i1; i++ {
				row := at[i*k:]
				for kk := k0; kk < k1; kk++ {
					row[kk] = a[kk*m+i]
				}
			}
		}
	}
}

// GemmTA computes C += Aᵀ·B where A is K×M (so Aᵀ is M×K), B is K×N,
// C is M×N. A is transposed once into a pooled buffer and the call runs
// Gemm's packed body; the reference accumulation order per C element
// (ascending k, skip zero) is unchanged by either packing.
func GemmTA(m, k, n int, a, b, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("nn: gemmTA size mismatch")
	}
	if m < gemmMR || n < gemmNR || k < 8 {
		gemmTASaxpy(m, k, n, a, b, c)
		return
	}
	np := (n + gemmNR - 1) / gemmNR
	packed := getPack(np * k * gemmNR)
	packB(k, n, b, *packed)
	atp := getPack(m * k)
	packAT(k, m, a, *atp)
	dense := getDense(m)
	scanDense(m, k, *atp, *dense)
	gemmPackedBody(m, k, n, np, *atp, *packed, c, *dense)
	putDense(dense)
	putPack(atp)
	putPack(packed)
}

// gemmTBMicro2x4 computes the 2×4 tile of A·Bᵀ dot products: eight
// independent full-k sums from zero sharing six loads per k step, then
// one add into C per element — the reference per-element sequence
// (GemmTB has no zero-skip).
func gemmTBMicro2x4(k int, a0, a1, b0, b1, b2, b3, c0, c1 []float32) {
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	for kk := 0; kk < k; kk++ {
		av0, av1 := a0[kk], a1[kk]
		bv0, bv1, bv2, bv3 := b0[kk], b1[kk], b2[kk], b3[kk]
		s00 += av0 * bv0
		s01 += av0 * bv1
		s02 += av0 * bv2
		s03 += av0 * bv3
		s10 += av1 * bv0
		s11 += av1 * bv1
		s12 += av1 * bv2
		s13 += av1 * bv3
	}
	c0[0] += s00
	c0[1] += s01
	c0[2] += s02
	c0[3] += s03
	c1[0] += s10
	c1[1] += s11
	c1[2] += s12
	c1[3] += s13
}

func gemmTBDot(k int, arow, brow []float32) float32 {
	var sum float32
	for kk := 0; kk < k; kk++ {
		sum += arow[kk] * brow[kk]
	}
	return sum
}

// GemmTB computes C += A·Bᵀ where A is M×K, B is N×K (so Bᵀ is K×N),
// C is M×N. Both operands are row-contiguous in k, so no packing is
// needed; the 2×4 dot tile reuses every load where the one-dot-at-a-time
// reference cannot.
func GemmTB(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("nn: gemmTB size mismatch")
	}
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		i := lo
		for ; i+2 <= hi; i += 2 {
			a0 := a[i*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			c0 := c[i*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				gemmTBMicro2x4(k, a0, a1,
					b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k], b[(j+2)*k:(j+3)*k], b[(j+3)*k:(j+4)*k],
					c0[j:j+4], c1[j:j+4])
			}
			for ; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				c0[j] += gemmTBDot(k, a0, brow)
				c1[j] += gemmTBDot(k, a1, brow)
			}
		}
		for ; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += gemmTBDot(k, arow, b[j*k:(j+1)*k])
			}
		}
	})
}
