package nn

// Gemm computes C += A·B for row-major matrices: A is M×K, B is K×N,
// C is M×N. The k-outer loop with a row broadcast keeps the inner loop a
// contiguous saxpy, which the Go compiler vectorizes reasonably well —
// the workhorse behind im2col convolution and the linear layer.
func Gemm(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: gemm size mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// GemmTA computes C += Aᵀ·B where A is K×M (so Aᵀ is M×K), B is K×N,
// C is M×N.
func GemmTA(m, k, n int, a, b, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("nn: gemmTA size mismatch")
	}
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		brow := b[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			crow := c[i*n : (i+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// GemmTB computes C += A·Bᵀ where A is M×K, B is N×K (so Bᵀ is K×N),
// C is M×N.
func GemmTB(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("nn: gemmTB size mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var sum float32
			for kk := range arow {
				sum += arow[kk] * brow[kk]
			}
			crow[j] += sum
		}
	}
}
