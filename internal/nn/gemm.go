package nn

import "jpegact/internal/parallel"

// gemmMinWork is the minimum number of multiply-adds one parallel chunk
// should carry; below it the goroutine overhead dominates and the
// kernels fall back to the serial path.
const gemmMinWork = 1 << 15

// Gemm computes C += A·B for row-major matrices: A is M×K, B is K×N,
// C is M×N. The k-outer loop with a row broadcast keeps the inner loop a
// contiguous saxpy, which the Go compiler vectorizes reasonably well —
// the workhorse behind im2col convolution and the linear layer.
//
// Rows of C are distributed over the worker pool; each row is computed
// entirely by one worker in the serial summation order, so the result is
// bit-identical to the single-threaded kernel at any worker count.
func Gemm(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: gemm size mismatch")
	}
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b[kk*n : (kk+1)*n]
				for j := range brow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
}

// GemmTA computes C += Aᵀ·B where A is K×M (so Aᵀ is M×K), B is K×N,
// C is M×N.
//
// Workers own disjoint row ranges of C; within a range the k loop stays
// outermost, so every C element accumulates in ascending-k order exactly
// as the serial kernel does — no per-worker partials, no reduction, and
// bit-identical output at any worker count.
func GemmTA(m, k, n int, a, b, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("nn: gemmTA size mismatch")
	}
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m : (kk+1)*m]
			brow := b[kk*n : (kk+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := c[i*n : (i+1)*n]
				for j := range brow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
}

// GemmTB computes C += A·Bᵀ where A is M×K, B is N×K (so Bᵀ is K×N),
// C is M×N. Parallel over row blocks of C, same determinism argument as
// Gemm.
func GemmTB(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("nn: gemmTB size mismatch")
	}
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				var sum float32
				for kk := range arow {
					sum += arow[kk] * brow[kk]
				}
				crow[j] += sum
			}
		}
	})
}
