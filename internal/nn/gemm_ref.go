package nn

import "jpegact/internal/parallel"

// Reference saxpy GEMM kernels: the original k-outer implementations,
// kept verbatim for two jobs. They are the bit-identity oracle for the
// packed kernels in gemm.go (per C element both run the same ascending-k
// float32 add sequence, so equality is exact, not approximate), and the
// fallback for matrices too small to amortize packing — safe to swap in
// at any size threshold precisely because the results are identical.

// gemmSaxpy computes C += A·B with the k-outer row-broadcast kernel.
// Rows of C are distributed over the worker pool; each row is computed
// entirely by one worker in the serial summation order, so the result is
// bit-identical to the single-threaded kernel at any worker count.
func gemmSaxpy(m, k, n int, a, b, c []float32) {
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b[kk*n : (kk+1)*n]
				for j := range brow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
}

// gemmTASaxpy computes C += Aᵀ·B where A is stored K×M. Workers own
// disjoint row ranges of C; within a range the k loop stays outermost,
// so every C element accumulates in ascending-k order exactly as the
// serial kernel does.
func gemmTASaxpy(m, k, n int, a, b, c []float32) {
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m : (kk+1)*m]
			brow := b[kk*n : (kk+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := c[i*n : (i+1)*n]
				for j := range brow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
}

// gemmTBSaxpy computes C += A·Bᵀ where B is stored N×K: one dot product
// per C element, full-k ascending sum from zero, one add into C.
func gemmTBSaxpy(m, k, n int, a, b, c []float32) {
	parallel.For(m, parallel.Grain(k*n, gemmMinWork), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				var sum float32
				for kk := range arow {
					sum += arow[kk] * brow[kk]
				}
				crow[j] += sum
			}
		}
	})
}
