package nn

import (
	"fmt"

	"jpegact/internal/compress"
	"jpegact/internal/dct"
	"jpegact/internal/freqdomain"
	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// Conv2D is a 2D convolution with square kernels, implemented as im2col
// followed by GEMM (the same lowering cuDNN's IMPLICIT_GEMM uses). The
// layer saves its input activation — the "conv input r" of Fig. 3 — and
// recomputes the im2col lowering from the (possibly lossy) recovered
// input during backward, so compression error propagates into ∇w exactly
// as Eqn. 9 describes.
type Conv2D struct {
	LayerName   string
	InC, OutC   int
	Kernel      int
	Stride, Pad int
	Winograd    bool   // use the F(2×2,3×3) fast forward when applicable
	Weight      *Param // (OutC, InC, K, K)
	Bias        *Param // (1, OutC, 1, 1); nil when disabled
	in          *ActRef
	inShape     tensor.Shape // shape of the saved input (survives offload nil-ing T)
	outShape    tensor.Shape
	colBuf      []float32
	dcolBuf     []float32
	freqGF      []float32 // transposed grad coefficients (HW × OutC)
	freqWG      []float32 // ∇Wᵀ accumulator (InC × OutC)
}

// ConvOpts configures optional conv features.
type ConvOpts struct {
	Stride int
	Pad    int
	Bias   bool
	// Winograd selects the F(2×2, 3×3) fast forward path (3×3 stride-1
	// only; backward always uses the im2col reference).
	Winograd bool
}

// NewConv2D builds a conv layer with He initialization.
func NewConv2D(name string, inC, outC, kernel int, opts ConvOpts, rng *tensor.RNG) *Conv2D {
	if opts.Stride == 0 {
		opts.Stride = 1
	}
	c := &Conv2D{
		LayerName: name,
		InC:       inC,
		OutC:      outC,
		Kernel:    kernel,
		Stride:    opts.Stride,
		Pad:       opts.Pad,
		Winograd:  opts.Winograd,
		Weight:    NewParam(name+".W", outC, inC, kernel, kernel),
	}
	c.Weight.W.FillHe(rng, inC*kernel*kernel)
	if opts.Bias {
		c.Bias = NewParam(name+".b", 1, outC, 1, 1)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// SavedRefs implements Layer.
func (c *Conv2D) SavedRefs() []*ActRef {
	if c.in == nil {
		return nil
	}
	return []*ActRef{c.in}
}

func (c *Conv2D) outDims(in tensor.Shape) (int, int) {
	ho := (in.H+2*c.Pad-c.Kernel)/c.Stride + 1
	wo := (in.W+2*c.Pad-c.Kernel)/c.Stride + 1
	return ho, wo
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	if x.Shape.C != c.InC {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %v", c.LayerName, c.InC, x.Shape))
	}
	// A conv consumer upgrades a ReLU-produced ref: its values are needed.
	if in.Kind == compress.KindReLUToOther {
		in.Kind = compress.KindReLUToConv
	}
	if train {
		c.in = in
		c.inShape = x.Shape
	}
	ho, wo := c.outDims(x.Shape)
	c.outShape = tensor.Shape{N: x.Shape.N, C: c.OutC, H: ho, W: wo}
	if c.Winograd && c.winogradApplicable() {
		return &ActRef{Name: c.LayerName + ".out", Kind: compress.KindConv, T: c.forwardWinograd(x)}
	}
	out := tensor.New(x.Shape.N, c.OutC, ho, wo)

	k2 := c.InC * c.Kernel * c.Kernel
	spatial := ho * wo
	if cap(c.colBuf) < k2*spatial {
		c.colBuf = make([]float32, k2*spatial)
	}
	cols := c.colBuf[:k2*spatial]
	for n := 0; n < x.Shape.N; n++ {
		c.im2col(x, n, cols)
		// out[n] (OutC × spatial) = W (OutC × k2) · cols (k2 × spatial)
		dst := out.Data[n*c.OutC*spatial : (n+1)*c.OutC*spatial]
		Gemm(c.OutC, k2, spatial, c.Weight.W.Data, cols, dst)
	}
	if c.Bias != nil {
		for n := 0; n < out.Shape.N; n++ {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				base := (n*c.OutC + oc) * spatial
				for i := 0; i < spatial; i++ {
					out.Data[base+i] += b
				}
			}
		}
	}
	return &ActRef{Name: c.LayerName + ".out", Kind: compress.KindConv, T: out}
}

// WantsCoefficients implements CoefficientConsumer. Only the 1×1,
// stride-1, unpadded configuration qualifies: there im2col is the
// identity, so ∇W is a plain GEMM against the saved input and moves to
// the coefficient domain by DCT linearity (Parseval per plane). The kind
// must be one the codec routes through the DCT path, and both spatial
// dims must be 8-aligned.
func (c *Conv2D) WantsCoefficients(ref *ActRef) bool {
	return ref == c.in && ref.Kind == compress.KindConv &&
		c.Kernel == 1 && c.Stride == 1 && c.Pad == 0 &&
		c.inShape.H%dct.BlockSize == 0 && c.inShape.W%dct.BlockSize == 0
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.in == nil {
		panic("nn: conv backward before forward")
	}
	if c.in.Coef != nil {
		if c.in.T == nil && c.in.Coef.Aligned() &&
			c.Kernel == 1 && c.Stride == 1 && c.Pad == 0 {
			return c.backwardFreq(grad)
		}
		spatialFromPlane(c.in)
	}
	x := c.in.T
	if x == nil {
		panic("nn: conv backward needs saved input values (BRC mask is not enough)")
	}
	ho, wo := c.outShape.H, c.outShape.W
	spatial := ho * wo
	k2 := c.InC * c.Kernel * c.Kernel

	dx := tensor.NewLike(x)
	// The Winograd forward skips the im2col buffer; backward always needs it.
	if cap(c.colBuf) < k2*spatial {
		c.colBuf = make([]float32, k2*spatial)
	}
	cols := c.colBuf[:k2*spatial]
	if cap(c.dcolBuf) < k2*spatial {
		c.dcolBuf = make([]float32, k2*spatial)
	}
	dcols := c.dcolBuf[:k2*spatial]
	for n := 0; n < x.Shape.N; n++ {
		gout := grad.Data[n*c.OutC*spatial : (n+1)*c.OutC*spatial]
		// ∇W += ∇y[n] · colsᵀ  (OutC×spatial · spatial×k2)
		c.im2col(x, n, cols)
		GemmTB(c.OutC, spatial, k2, gout, cols, c.Weight.Grad.Data)
		// ∇cols = Wᵀ · ∇y[n]  (k2×OutC · OutC×spatial)
		for i := range dcols {
			dcols[i] = 0
		}
		GemmTA(k2, c.OutC, spatial, c.Weight.W.Data, gout, dcols)
		c.col2im(dcols, dx, n)
	}
	if c.Bias != nil {
		for n := 0; n < grad.Shape.N; n++ {
			for oc := 0; oc < c.OutC; oc++ {
				base := (n*c.OutC + oc) * spatial
				var sum float32
				for i := 0; i < spatial; i++ {
					sum += grad.Data[base+i]
				}
				c.Bias.Grad.Data[oc] += sum
			}
		}
	}
	return dx
}

// backwardFreq is the coefficient-domain backward for the 1×1/stride-1/
// unpadded configuration. ∇W moves to the frequency domain by Parseval:
// per batch element, the saved input's sparse quantized blocks multiply
// the gradient's transposed forward-DCT columns through CoefGemm, which
// walks only the stored nonzero coefficients — every post-quantization
// zero is skipped at the source rather than re-scanned per GEMM panel.
// ∇x never needed the saved input at all — it is Wᵀ·∇y through the
// guarded GEMM micro-kernels exactly as in the spatial path (col2im is
// the identity here), so the input gradient is bit-identical to a
// spatial-restore run; only ∇W carries the frequency path's documented
// half-code-unit tolerance.
func (c *Conv2D) backwardFreq(grad *tensor.Tensor) *tensor.Tensor {
	pl := c.in.Coef
	sh := pl.Shape()
	spatial := sh.H * sh.W
	dx := tensor.New(sh.N, c.InC, sh.H, sh.W)

	if cap(c.freqGF) < spatial*c.OutC {
		c.freqGF = make([]float32, spatial*c.OutC)
	}
	gf := c.freqGF[:spatial*c.OutC]
	if cap(c.freqWG) < c.InC*c.OutC {
		c.freqWG = make([]float32, c.InC*c.OutC)
	}
	wgT := c.freqWG[:c.InC*c.OutC]
	for i := range wgT {
		wgT[i] = 0
	}
	for n := 0; n < sh.N; n++ {
		gout := grad.Data[n*c.OutC*spatial : (n+1)*c.OutC*spatial]
		// ∇Wᵀ += X̃f (InC×HW, sparse) · Gf (HW×OutC)
		freqdomain.GradCoefColumns(grad, n, gf)
		pl.CoefGemm(n, c.OutC, gf, wgT)
		// ∇x[n] = Wᵀ·∇y[n]
		GemmTA(c.InC, c.OutC, spatial, c.Weight.W.Data, gout,
			dx.Data[n*c.InC*spatial:(n+1)*c.InC*spatial])
	}
	for oc := 0; oc < c.OutC; oc++ {
		for ic := 0; ic < c.InC; ic++ {
			c.Weight.Grad.Data[oc*c.InC+ic] += wgT[ic*c.OutC+oc]
		}
	}
	if c.Bias != nil {
		for n := 0; n < grad.Shape.N; n++ {
			for oc := 0; oc < c.OutC; oc++ {
				base := (n*c.OutC + oc) * spatial
				var sum float32
				for i := 0; i < spatial; i++ {
					sum += grad.Data[base+i]
				}
				c.Bias.Grad.Data[oc] += sum
			}
		}
	}
	return dx
}

// colRange returns the half-open output range [lo, hi) whose input
// coordinate ox·stride + k - pad falls inside [0, extent), clamped to
// [0, out). Everything outside the range is pad.
func colRange(out, extent, stride, k, pad int) (int, int) {
	lo := 0
	if k < pad {
		lo = (pad - k + stride - 1) / stride
	}
	top := extent - 1 - k + pad
	if top < 0 {
		// Go's / truncates toward zero, so top/stride would round a
		// negative numerator up to 0 — return an explicitly empty range.
		return 0, 0
	}
	hi := top/stride + 1
	if hi > out {
		hi = out
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// im2col lowers batch element n of x into cols (k2 × ho*wo). Input
// channels are distributed over the worker pool: channel ic fills the
// contiguous cols slab [ic·K²·spatial, (ic+1)·K²·spatial), so workers
// never share an output index. The pad test is hoisted out of the inner
// loop: per output row only the in-bounds ox range is gathered (a copy
// for stride 1), the fringe is zero-filled.
func (c *Conv2D) im2col(x *tensor.Tensor, n int, cols []float32) {
	ho, wo := c.outDims(x.Shape)
	h, w := x.Shape.H, x.Shape.W
	perC := c.Kernel * c.Kernel * ho * wo
	parallel.For(c.InC, parallel.Grain(perC, 1<<14), func(lo, hi int) {
		for ic := lo; ic < hi; ic++ {
			idx := ic * perC
			chBase := (n*x.Shape.C + ic) * h * w
			for ky := 0; ky < c.Kernel; ky++ {
				for kx := 0; kx < c.Kernel; kx++ {
					oxLo, oxHi := colRange(wo, w, c.Stride, kx, c.Pad)
					for oy := 0; oy < ho; oy++ {
						iy := oy*c.Stride + ky - c.Pad
						dst := cols[idx : idx+wo]
						idx += wo
						if iy < 0 || iy >= h {
							for i := range dst {
								dst[i] = 0
							}
							continue
						}
						for i := 0; i < oxLo; i++ {
							dst[i] = 0
						}
						src := x.Data[chBase+iy*w:]
						if c.Stride == 1 {
							off := kx - c.Pad
							copy(dst[oxLo:oxHi], src[oxLo+off:])
						} else {
							ix := oxLo*c.Stride + kx - c.Pad
							for ox := oxLo; ox < oxHi; ox++ {
								dst[ox] = src[ix]
								ix += c.Stride
							}
						}
						for i := oxHi; i < wo; i++ {
							dst[i] = 0
						}
					}
				}
			}
		}
	})
}

// col2im scatters dcols back into batch element n of dx (accumulating).
// Parallel over input channels: channel ic only accumulates into its own
// dx plane, and reads its own dcols slab, so ranges stay disjoint and
// the per-element accumulation order matches the serial loop. Pad
// handling is hoisted like im2col's; out-of-range columns are skipped.
func (c *Conv2D) col2im(dcols []float32, dx *tensor.Tensor, n int) {
	ho, wo := c.outDims(dx.Shape)
	h, w := dx.Shape.H, dx.Shape.W
	perC := c.Kernel * c.Kernel * ho * wo
	parallel.For(c.InC, parallel.Grain(perC, 1<<14), func(lo, hi int) {
		for ic := lo; ic < hi; ic++ {
			idx := ic * perC
			chBase := (n*dx.Shape.C + ic) * h * w
			for ky := 0; ky < c.Kernel; ky++ {
				for kx := 0; kx < c.Kernel; kx++ {
					oxLo, oxHi := colRange(wo, w, c.Stride, kx, c.Pad)
					for oy := 0; oy < ho; oy++ {
						iy := oy*c.Stride + ky - c.Pad
						row := dcols[idx : idx+wo]
						idx += wo
						if iy < 0 || iy >= h {
							continue
						}
						dst := dx.Data[chBase+iy*w:]
						if c.Stride == 1 {
							off := kx - c.Pad
							for ox := oxLo; ox < oxHi; ox++ {
								dst[ox+off] += row[ox]
							}
						} else {
							ix := oxLo*c.Stride + kx - c.Pad
							for ox := oxLo; ox < oxHi; ox++ {
								dst[ix] += row[ox]
								ix += c.Stride
							}
						}
					}
				}
			}
		}
	})
}
