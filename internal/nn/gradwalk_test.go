package nn

import (
	"testing"

	"jpegact/internal/tensor"
)

func gradwalkNet(seed uint64) (*Sequential, *tensor.RNG) {
	rng := tensor.NewRNG(seed)
	net := NewSequential("net",
		NewConv2D("c1", 3, 4, 3, ConvOpts{Pad: 1}, rng),
		NewBatchNorm("bn1", 4),
		NewReLU("r1"),
		NewDropout("drop", 0.3, rng),
		NewResidual("res",
			NewSequential("body",
				NewConv2D("c2", 4, 4, 3, ConvOpts{Pad: 1}, rng),
				NewBatchNorm("bn2", 4),
			),
			nil,
		),
	)
	return net, rng
}

// TestFlattenImportRoundtrip: flatten → import(scale 1) must restore
// every gradient bit-exactly, in Params() order, across two replicas
// of the same architecture.
func TestFlattenImportRoundtrip(t *testing.T) {
	net, rng := gradwalkNet(21)
	for _, p := range net.Params() {
		p.Grad.FillNormal(rng, 0, 1)
	}
	n := GradSize(net)
	if n == 0 {
		t.Fatal("GradSize = 0")
	}
	flat := make([]float32, n)
	if got := FlattenGrads(net, flat); got != n {
		t.Fatalf("FlattenGrads wrote %d elements, GradSize says %d", got, n)
	}

	// A second replica of the same architecture must accept the vector
	// and end with element-wise identical gradients.
	other, _ := gradwalkNet(21)
	if GradSize(other) != n {
		t.Fatal("replicas of one constructor disagree on GradSize")
	}
	ImportGrads(other, flat, 1)
	pa, pb := net.Params(), other.Params()
	for i := range pa {
		for j := range pa[i].Grad.Data {
			if pa[i].Grad.Data[j] != pb[i].Grad.Data[j] {
				t.Fatalf("param %d (%s) grad element %d differs after import", i, pa[i].Name, j)
			}
		}
	}
}

// TestImportGradsScale: the scale is applied as exactly one float32
// multiply per element.
func TestImportGradsScale(t *testing.T) {
	net, rng := gradwalkNet(22)
	for _, p := range net.Params() {
		p.Grad.FillNormal(rng, 0, 1)
	}
	flat := make([]float32, GradSize(net))
	FlattenGrads(net, flat)
	scale := float32(1) / 3
	ImportGrads(net, flat, scale)
	off := 0
	for _, p := range net.Params() {
		for i := range p.Grad.Data {
			if want := flat[off+i] * scale; p.Grad.Data[i] != want {
				t.Fatalf("param %s element %d: %v, want %v", p.Name, i, p.Grad.Data[i], want)
			}
		}
		off += p.Grad.Elems()
	}
}

// TestImportGradsSizeMismatchPanics: a vector from a different
// architecture must be refused loudly.
func TestImportGradsSizeMismatchPanics(t *testing.T) {
	net, _ := gradwalkNet(23)
	for _, bad := range []int{GradSize(net) - 1, GradSize(net) + 1} {
		func(n int) {
			defer func() {
				if recover() == nil {
					t.Fatalf("ImportGrads accepted a %d-element vector for a %d-element network", n, GradSize(net))
				}
			}()
			ImportGrads(net, make([]float32, n), 1)
		}(bad)
	}
}

// TestSaltNetState: salting perturbs only the dropout RNG positions,
// deterministically; salt 0 is the identity; equal positions (shared
// RNGs) salt equally.
func TestSaltNetState(t *testing.T) {
	net, _ := gradwalkNet(24)
	st := CaptureNetState(net)

	id := SaltNetState(st, 0)
	for i := range st {
		if pos, ok := st[i].(uint64); ok && id[i].(uint64) != pos {
			t.Fatalf("salt 0 changed RNG entry %d", i)
		}
	}

	s1, s1b, s2 := SaltNetState(st, 1), SaltNetState(st, 1), SaltNetState(st, 2)
	sawRNG := false
	for i := range st {
		pos, ok := st[i].(uint64)
		if !ok {
			// Non-RNG entries (BN running stats) must pass through as
			// the same snapshot value, not get rewritten.
			if _, isBN := s1[i].(bnState); !isBN {
				t.Fatalf("salting changed the type of entry %d (%T → %T)", i, st[i], s1[i])
			}
			continue
		}
		sawRNG = true
		if s1[i] != s1b[i] {
			t.Fatalf("salting entry %d is not deterministic", i)
		}
		if s1[i].(uint64) == pos {
			t.Fatalf("salt 1 left RNG entry %d unchanged", i)
		}
		if s1[i] == s2[i] {
			t.Fatalf("salts 1 and 2 collide on entry %d", i)
		}
	}
	if !sawRNG {
		t.Fatal("test network has no dropout RNG entry")
	}

	// Restoring a salted state then the original must be lossless.
	RestoreNetState(net, s1)
	RestoreNetState(net, st)
	back := CaptureNetState(net)
	for i := range st {
		switch a := st[i].(type) {
		case uint64:
			if back[i].(uint64) != a {
				t.Fatalf("RNG entry %d not restored", i)
			}
		}
	}
}
