package nn

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

// TestForwardReplayBitExact is the property the recompute recovery path
// rests on: capture the side-effect state, run a training forward, rewind,
// run it again — both passes must produce bit-identical activations and
// leave bit-identical BatchNorm/Dropout state.
func TestForwardReplayBitExact(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := NewSequential("net",
		NewConv2D("c1", 3, 8, 3, ConvOpts{Pad: 1}, rng),
		NewBatchNorm("bn1", 8),
		NewReLU("r1"),
		NewDropout("drop", 0.3, rng),
		NewResidual("res",
			NewSequential("body",
				NewConv2D("c2", 8, 8, 3, ConvOpts{Pad: 1}, rng),
				NewBatchNorm("bn2", 8),
			),
			nil,
		),
	)
	x := tensor.New(2, 3, 8, 8)
	x.FillNormal(rng, 0, 1)

	pre := CaptureNetState(net)
	out1 := net.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	post := CaptureNetState(net)
	first := out1.T.Clone()

	RestoreNetState(net, pre)
	out2 := net.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)

	if tensor.MSE(first, out2.T) != 0 {
		t.Fatal("replayed forward is not bit-identical")
	}
	// The replay must also re-apply the side effects identically.
	replayPost := CaptureNetState(net)
	if len(post) != len(replayPost) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(post), len(replayPost))
	}
	for i := range post {
		switch a := post[i].(type) {
		case bnState:
			b := replayPost[i].(bnState)
			for j := range a.runningMean {
				if a.runningMean[j] != b.runningMean[j] || a.runningVar[j] != b.runningVar[j] {
					t.Fatalf("BN state %d diverged after replay", i)
				}
			}
		case uint64:
			if a != replayPost[i].(uint64) {
				t.Fatalf("dropout RNG position diverged after replay")
			}
		default:
			t.Fatalf("unexpected snapshot type %T", a)
		}
	}
}

func TestWalkReachesAllLayers(t *testing.T) {
	rng := tensor.NewRNG(12)
	body := NewSequential("body", NewBatchNorm("bn", 4))
	short := NewSequential("short", NewConv2D("cs", 4, 4, 1, ConvOpts{}, rng))
	net := NewSequential("net", NewResidual("res", body, short), NewDropout("d", 0.1, rng))

	var names []string
	Walk(net, func(l Layer) { names = append(names, l.Name()) })
	want := []string{"net", "res", "body", "bn", "short", "cs", "d"}
	if len(names) != len(want) {
		t.Fatalf("walked %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk order %v, want %v", names, want)
		}
	}
}
