package nn

import (
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/freqdomain"
	"jpegact/internal/parallel"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// attachPlane simulates a coefficient restore: the ref's tensor is
// quantized through the JPEG-ACT pipeline and replaced by its plane.
func attachPlane(ref *ActRef) {
	ref.Coef = freqdomain.Quantize(ref.T, quant.OptL(), freqdomain.DefaultS)
	ref.T = nil
}

// attachSpatial simulates the matching full-decode restore of the same
// frame (bit-identical to the codec's spatial decode).
func attachSpatial(ref *ActRef) {
	pl := freqdomain.Quantize(ref.T, quant.OptL(), freqdomain.DefaultS)
	ref.T = pl.Reconstruct()
	pl.Release()
}

// maxAbs is the tolerance scale: the frequency path's deviation from the
// spatial path is an absolute quantity (≤ half a code unit per element,
// accumulated across a plane), so each element is compared against 5% of
// the largest spatial-path magnitude in the same tensor — not its own
// magnitude, which for near-zero entries would demand the impossible.
func maxAbs(a []float32) float64 {
	var m float64
	for _, v := range a {
		if x := math.Abs(float64(v)); x > m {
			m = x
		}
	}
	return m
}

func relTol(got, want, scale float64) bool {
	return math.Abs(got-want) <= 5e-2*(1+scale)
}

// TestCoefficientPlan pins the veto semantics: only refs whose every
// leaf reader opted in qualify; a ReLU sharing a conv's input vetoes it.
func TestCoefficientPlan(t *testing.T) {
	r := tensor.NewRNG(21)
	bn := NewBatchNorm("bn", 4)
	c1 := NewConv2D("c1", 4, 8, 1, ConvOpts{}, r)
	relu := NewReLU("relu")
	c3 := NewConv2D("c3", 8, 8, 3, ConvOpts{Pad: 1}, r)
	net := NewSequential("net", bn, c1, relu, c3)

	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	net.Forward(&ActRef{Name: "in", Kind: compress.KindConv, T: x}, true)

	plan := CoefficientPlan(net)
	if !plan[bn.in] {
		t.Error("BN input must be in the plan")
	}
	if !plan[c1.in] {
		t.Error("1×1 conv input must be in the plan")
	}
	if plan[c3.in] {
		t.Error("3×3 conv input (shared with ReLU) must be vetoed")
	}
	if len(plan) != 2 {
		t.Errorf("plan has %d refs, want 2", len(plan))
	}

	// Misaligned input: nothing qualifies.
	bn2 := NewBatchNorm("bn2", 4)
	net2 := NewSequential("net2", bn2)
	x2 := tensor.New(2, 4, 12, 12)
	x2.FillNormal(r, 0, 1)
	net2.Forward(&ActRef{Name: "in2", Kind: compress.KindConv, T: x2}, true)
	if plan2 := CoefficientPlan(net2); len(plan2) != 0 {
		t.Errorf("misaligned plan has %d refs, want 0", len(plan2))
	}
}

// TestBatchNormFreqBackward pins the frequency-domain BN backward
// against the spatial path on the same restored frame: ∂β bit-identical,
// ∂γ and dx within the stated 5% relative tolerance (the unclamped
// Parseval dot accumulates up to half a code unit per element).
func TestBatchNormFreqBackward(t *testing.T) {
	r := tensor.NewRNG(23)
	x := data.ActivationTensor(r, 2, 6, 16, 16, 0.5, 1.0)
	dy := tensor.New(2, 6, 16, 16)
	dy.FillNormal(r, 0, 1)

	run := func(freq bool) (dx *tensor.Tensor, beta, gamma []float32) {
		b := NewBatchNorm("bn", 6)
		out := b.Forward(&ActRef{Name: "x", Kind: compress.KindConv, T: x.Clone()}, true)
		_ = out
		if freq {
			attachPlane(b.in)
			defer ReleaseCoefficients([]*ActRef{b.in})
		} else {
			attachSpatial(b.in)
		}
		dx = b.Backward(dy)
		return dx, b.Beta.Grad.Data, b.Gamma.Grad.Data
	}
	sdx, sbeta, sgamma := run(false)
	fdx, fbeta, fgamma := run(true)

	for c := range sbeta {
		if math.Float32bits(fbeta[c]) != math.Float32bits(sbeta[c]) {
			t.Fatalf("∂β[%d]: freq %v, spatial %v (must be bit-identical)", c, fbeta[c], sbeta[c])
		}
		if !relTol(float64(fgamma[c]), float64(sgamma[c]), maxAbs(sgamma)) {
			t.Fatalf("∂γ[%d]: freq %v, spatial %v", c, fgamma[c], sgamma[c])
		}
	}
	dxScale := maxAbs(sdx.Data)
	for i := range sdx.Data {
		if !relTol(float64(fdx.Data[i]), float64(sdx.Data[i]), dxScale) {
			t.Fatalf("dx[%d]: freq %v, spatial %v", i, fdx.Data[i], sdx.Data[i])
		}
	}
}

// TestConvFreqBackward pins the 1×1-conv frequency backward: ∇x and ∂b
// bit-identical to the spatial path (neither reads the saved input), ∇W
// within tolerance.
func TestConvFreqBackward(t *testing.T) {
	r := tensor.NewRNG(29)
	x := data.ActivationTensor(r, 2, 8, 16, 16, 0.5, 1.0)
	dy := tensor.New(2, 12, 16, 16)
	dy.FillNormal(r, 0, 1)

	run := func(freq bool) (dx *tensor.Tensor, wg, bg []float32) {
		rw := tensor.NewRNG(31) // same weights both runs
		c := NewConv2D("c", 8, 12, 1, ConvOpts{Bias: true}, rw)
		c.Forward(&ActRef{Name: "x", Kind: compress.KindConv, T: x.Clone()}, true)
		if freq {
			attachPlane(c.in)
			defer ReleaseCoefficients([]*ActRef{c.in})
		} else {
			attachSpatial(c.in)
		}
		dx = c.Backward(dy)
		return dx, c.Weight.Grad.Data, c.Bias.Grad.Data
	}
	sdx, swg, sbg := run(false)
	fdx, fwg, fbg := run(true)

	for i := range sdx.Data {
		if math.Float32bits(fdx.Data[i]) != math.Float32bits(sdx.Data[i]) {
			t.Fatalf("∇x[%d]: freq %v, spatial %v (must be bit-identical)", i, fdx.Data[i], sdx.Data[i])
		}
	}
	for i := range sbg {
		if math.Float32bits(fbg[i]) != math.Float32bits(sbg[i]) {
			t.Fatalf("∂b[%d]: freq %v, spatial %v (must be bit-identical)", i, fbg[i], sbg[i])
		}
	}
	wgScale := maxAbs(swg)
	for i := range swg {
		if !relTol(float64(fwg[i]), float64(swg[i]), wgScale) {
			t.Fatalf("∇W[%d]: freq %v, spatial %v", i, fwg[i], swg[i])
		}
	}
}

// TestFreqBackwardDeterministicAcrossWorkers pins bit-exact freq-domain
// backward outputs at worker counts 1, 2 and GOMAXPROCS.
func TestFreqBackwardDeterministicAcrossWorkers(t *testing.T) {
	r := tensor.NewRNG(37)
	x := data.ActivationTensor(r, 2, 8, 16, 16, 0.5, 1.0)
	dyBN := tensor.New(2, 8, 16, 16)
	dyBN.FillNormal(r, 0, 1)
	dyCV := tensor.New(2, 12, 16, 16)
	dyCV.FillNormal(r, 0, 1)

	run := func() []float32 {
		var out []float32
		b := NewBatchNorm("bn", 8)
		b.Forward(&ActRef{Name: "x", Kind: compress.KindConv, T: x.Clone()}, true)
		attachPlane(b.in)
		dx := b.Backward(dyBN)
		out = append(out, dx.Data...)
		out = append(out, b.Beta.Grad.Data...)
		out = append(out, b.Gamma.Grad.Data...)
		ReleaseCoefficients([]*ActRef{b.in})

		rw := tensor.NewRNG(41)
		c := NewConv2D("c", 8, 12, 1, ConvOpts{}, rw)
		c.Forward(&ActRef{Name: "x", Kind: compress.KindConv, T: x.Clone()}, true)
		attachPlane(c.in)
		dxc := c.Backward(dyCV)
		out = append(out, dxc.Data...)
		out = append(out, c.Weight.Grad.Data...)
		ReleaseCoefficients([]*ActRef{c.in})
		return out
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	ref := run()
	for _, w := range []int{2, prev} {
		parallel.SetWorkers(w)
		got := run()
		for i := range ref {
			if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("workers=%d: output %d differs (%v vs %v)", w, i, got[i], ref[i])
			}
		}
	}
}

// TestSpatialFallbackFromPlane pins the defensive path: a consumer that
// cannot use an attached plane materializes the spatial tensor and
// produces exactly what a spatial restore would have.
func TestSpatialFallbackFromPlane(t *testing.T) {
	r := tensor.NewRNG(43)
	x := data.ActivationTensor(r, 1, 4, 16, 16, 0.5, 1.0)
	dy := tensor.New(1, 6, 16, 16)
	dy.FillNormal(r, 0, 1)

	run := func(plane bool) []float32 {
		rw := tensor.NewRNG(47)
		// 3×3 conv: never a coefficient consumer, must fall back.
		c := NewConv2D("c", 4, 6, 3, ConvOpts{Pad: 1}, rw)
		c.Forward(&ActRef{Name: "x", Kind: compress.KindConv, T: x.Clone()}, true)
		if plane {
			attachPlane(c.in)
		} else {
			attachSpatial(c.in)
		}
		dx := c.Backward(dy)
		if c.in.Coef != nil {
			t.Fatal("fallback must consume and release the plane")
		}
		return append(append([]float32{}, dx.Data...), c.Weight.Grad.Data...)
	}
	want := run(false)
	got := run(true)
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("elem %d: fallback %v, spatial %v", i, got[i], want[i])
		}
	}
}
