package nn

import (
	"math"

	"jpegact/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (N, classes, 1, 1) against integer labels, returning the loss and the
// gradient with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n := logits.Shape.N
	classes := logits.Elems() / n
	if len(labels) != n {
		panic("nn: label count mismatch")
	}
	grad := tensor.NewLike(logits)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*classes : (i+1)*classes]
		grow := grad.Data[i*classes : (i+1)*classes]
		// Stable softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			grow[j] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for j := range grow {
			grow[j] = float32(float64(grow[j]) * inv)
		}
		p := float64(grow[labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grow[labels[i]] -= 1
	}
	grad.Scale(1 / float32(n))
	return loss / float64(n), grad
}

// Accuracy returns the top-1 accuracy of logits against labels.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Shape.N
	classes := logits.Elems() / n
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*classes : (i+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// MSELoss computes the mean squared error loss and its gradient with
// respect to pred (the VDSR regression loss).
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if pred.Elems() != target.Elems() {
		panic("nn: MSE size mismatch")
	}
	grad := tensor.NewLike(pred)
	var loss float64
	n := float64(pred.Elems())
	for i := range pred.Data {
		d := float64(pred.Data[i] - target.Data[i])
		loss += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return loss / n, grad
}

// SGD is stochastic gradient descent with momentum and weight decay
// (Eqn. 1 plus the standard momentum extension).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param]*tensor.Tensor
}

// NewSGD builds an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param]*tensor.Tensor{}}
}

// Step applies one update to every parameter and zeroes the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = tensor.NewLike(p.W)
			s.velocity[p] = v
		}
		lr := float32(s.LR)
		mom := float32(s.Momentum)
		wd := float32(s.WeightDecay)
		for i := range p.W.Data {
			g := p.Grad.Data[i] + wd*p.W.Data[i]
			v.Data[i] = mom*v.Data[i] - lr*g
			p.W.Data[i] += v.Data[i]
		}
		p.ZeroGrad()
	}
}
