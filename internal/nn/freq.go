package nn

// Frequency-domain restore support: layers whose backward pass is linear
// in the saved activation can consume an offloaded activation's quantized
// DCT coefficients directly (freqdomain.Plane) instead of a fully
// inverse-transformed tensor. The capability is opt-in per (layer, ref)
// pair through CoefficientConsumer, and a ref qualifies only when EVERY
// layer that saved it opted in — a single spatial reader vetoes the ref,
// because the plane replaces ref.T for all of them. See DESIGN.md
// "Frequency-domain restore".

// CoefficientConsumer is implemented by layers whose Backward can read a
// saved ref as a coefficient plane. WantsCoefficients must be
// conservative: return true only for refs the layer will actually accept
// in Backward (right layer config, 8-aligned spatial dims, a kind the
// codec routes through the JPEG-ACT DCT path).
type CoefficientConsumer interface {
	WantsCoefficients(ref *ActRef) bool
}

// CoefficientPlan walks the network and returns the set of saved refs
// every reader of which can consume the coefficient view. Container
// layers aggregate their children's refs and are skipped; each leaf
// layer votes per ref, and any leaf that is not a capable consumer of a
// ref vetoes it. The result is what the offload scheduler consults when
// deciding between DecodeCoefficients and a full decode.
func CoefficientPlan(root Layer) map[*ActRef]bool {
	want := map[*ActRef]bool{}
	veto := map[*ActRef]bool{}
	Walk(root, func(l Layer) {
		if _, isContainer := l.(Container); isContainer {
			return
		}
		cc, capable := l.(CoefficientConsumer)
		for _, ref := range l.SavedRefs() {
			if capable && cc.WantsCoefficients(ref) {
				want[ref] = true
			} else {
				veto[ref] = true
			}
		}
	})
	plan := make(map[*ActRef]bool, len(want))
	for ref := range want {
		if !veto[ref] {
			plan[ref] = true
		}
	}
	return plan
}

// ReleaseCoefficients returns every listed ref's coefficient plane (if
// any) to the block pool. The trainer calls this at step end; consumers
// leave planes attached through Backward so a ref shared by several
// capable readers stays readable for all of them.
func ReleaseCoefficients(refs []*ActRef) {
	for _, ref := range refs {
		if ref.Coef != nil {
			ref.Coef.Release()
			ref.Coef = nil
		}
	}
}

// spatialFromPlane materializes ref.T from an attached coefficient plane
// — the defensive fallback a consumer takes when it finds a plane it
// cannot use (a recompute rebuilt the layer's config mid-step, say). The
// reconstruction is bit-identical to the codec's full decode, so falling
// back costs nothing but the inverse transform it skipped.
func spatialFromPlane(ref *ActRef) {
	if ref.Coef == nil || ref.T != nil {
		return
	}
	ref.T = ref.Coef.Reconstruct()
	ref.Coef.Release()
	ref.Coef = nil
}
