package nn

import (
	"math"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

// ReLU is the rectified linear unit. It saves its *output* ref (the
// framework convention of §II-A: (r > 0) = (x > 0), so the output works
// for the backward mask, and the same tensor doubles as the next layer's
// input). If the compression hook replaced the ref with a BRC mask, the
// backward pass uses the mask directly (Eqn. 3).
type ReLU struct {
	LayerName string
	out       *ActRef
}

// NewReLU builds a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// SavedRefs implements Layer.
func (r *ReLU) SavedRefs() []*ActRef {
	if r.out == nil {
		return nil
	}
	return []*ActRef{r.out}
}

// Forward implements Layer.
func (r *ReLU) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	out := tensor.NewLike(x)
	dst := out.Data
	// Branchless integer select: activations are ~half negative, so the
	// naive `if v > 0` mispredicts constantly. `bits-1 < 0x7F800000`
	// (unsigned) is exactly `v > 0` over every input class: +0 wraps to
	// 0xFFFFFFFF (drop), negatives and -0 have the sign bit (drop), NaNs
	// sit above 0x7F800000 after the decrement (drop, as NaN > 0 is
	// false), positives through +Inf land below it (keep).
	for i, v := range x.Data {
		bits := math.Float32bits(v)
		z := uint32(0)
		if bits-1 < 0x7F800000 {
			z = bits
		}
		dst[i] = math.Float32frombits(z)
	}
	// Provisional kind: a consuming conv upgrades this to KindReLUToConv.
	ref := &ActRef{Name: r.LayerName + ".out", Kind: compress.KindReLUToOther, T: out}
	if train {
		r.out = ref
	}
	return ref
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	if r.out.Mask != nil {
		for i, m := range r.out.Mask {
			if !m {
				dx.Data[i] = 0
			}
		}
		return dx
	}
	saved := r.out.T
	for i := range dx.Data {
		if saved.Data[i] <= 0 {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Dropout zeroes a fraction of activations during training, rescaling the
// rest by 1/keep. Its output is a sparse activation of kind pool/dropout
// (Table II). The backward mask is recovered from the saved output's
// non-zero pattern, so BRC-style compression of the mask is implicit.
type Dropout struct {
	LayerName string
	Rate      float64
	rng       *tensor.RNG
	out       *ActRef
}

// NewDropout builds a dropout layer with the given drop rate.
func NewDropout(name string, rate float64, rng *tensor.RNG) *Dropout {
	return &Dropout{LayerName: name, Rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// SavedRefs implements Layer.
func (d *Dropout) SavedRefs() []*ActRef {
	if d.out == nil {
		return nil
	}
	return []*ActRef{d.out}
}

// Forward implements Layer.
func (d *Dropout) Forward(in *ActRef, train bool) *ActRef {
	if !train {
		return in
	}
	x := in.T
	out := tensor.NewLike(x)
	keep := float32(1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.Rate {
			out.Data[i] = v / keep
		}
	}
	ref := &ActRef{Name: d.LayerName + ".out", Kind: compress.KindPoolDropout, T: out}
	d.out = ref
	return ref
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	keep := float32(1 - d.Rate)
	saved := d.out.T
	for i := range dx.Data {
		if saved.Data[i] == 0 {
			dx.Data[i] = 0
		} else {
			dx.Data[i] /= keep
		}
	}
	return dx
}
