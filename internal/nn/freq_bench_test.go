package nn

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/freqdomain"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// benchRestoredBackward measures restore + backward over a BN → 1×1-conv
// stack from the same offloaded quantized-coefficient state: the spatial
// variant pays the inverse transform (dequant → IDCT → clamp → scale,
// bit-identical to the codec's full decode) before the classic backward;
// the frequency variant consumes the plane directly. The encode side is
// common to both paths and stays outside the timer.
func benchRestoredBackward(b *testing.B, freq bool) {
	r := tensor.NewRNG(61)
	const n, c, h, w = 4, 32, 32, 32
	x := data.ActivationTensor(r, n, c, h, w, 0.5, 1.0)
	dyBN := tensor.New(n, c, h, w)
	dyBN.FillNormal(r, 0, 1)
	dyCV := tensor.New(n, c, h, w)
	dyCV.FillNormal(r, 0, 1)

	bn := NewBatchNorm("bn", c)
	cv := NewConv2D("cv", c, c, 1, ConvOpts{}, r)
	bn.Forward(&ActRef{Name: "x", Kind: compress.KindConv, T: x.Clone()}, true)
	cv.Forward(&ActRef{Name: "x", Kind: compress.KindConv, T: x.Clone()}, true)

	plBN := freqdomain.Quantize(x, quant.OptL(), freqdomain.DefaultS)
	defer plBN.Release()
	plCV := freqdomain.Quantize(x, quant.OptL(), freqdomain.DefaultS)
	defer plCV.Release()

	b.SetBytes(int64(2 * x.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if freq {
			bn.in.T, bn.in.Coef = nil, plBN
			cv.in.T, cv.in.Coef = nil, plCV
		} else {
			bn.in.T, bn.in.Coef = plBN.Reconstruct(), nil
			cv.in.T, cv.in.Coef = plCV.Reconstruct(), nil
		}
		_ = bn.Backward(dyBN)
		_ = cv.Backward(dyCV)
		// Detach without releasing so the planes are reusable next round.
		bn.in.Coef, cv.in.Coef = nil, nil
	}
}

func BenchmarkBackwardSpatial(b *testing.B)    { benchRestoredBackward(b, false) }
func BenchmarkBackwardFreqDomain(b *testing.B) { benchRestoredBackward(b, true) }
