package nn

import (
	"math"

	"jpegact/internal/compress"
	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// elemGrain is the per-chunk element count for the pointwise loops:
// large enough that goroutine overhead stays invisible, small enough to
// split typical activation planes across the pool.
const elemGrain = 4096

// Additional layers beyond the paper's CNR vocabulary, completing the
// training library for downstream users: average pooling and the common
// smooth activations. Each saves its output ref like ReLU does — for
// these functions the backward pass can be expressed through the output
// alone, so a lossy recovered output gives the same compression-aware
// gradient semantics as the paper's layers.

// AvgPool2 is 2×2 average pooling with stride 2; it needs only shapes in
// backward.
type AvgPool2 struct {
	LayerName string
	inShape   tensor.Shape
}

// NewAvgPool2 builds the layer.
func NewAvgPool2(name string) *AvgPool2 { return &AvgPool2{LayerName: name} }

// Name implements Layer.
func (p *AvgPool2) Name() string { return p.LayerName }

// Params implements Layer.
func (p *AvgPool2) Params() []*Param { return nil }

// SavedRefs implements Layer.
func (p *AvgPool2) SavedRefs() []*ActRef { return nil }

// Forward implements Layer.
func (p *AvgPool2) Forward(in *ActRef, _ bool) *ActRef {
	x := in.T
	sh := x.Shape
	p.inShape = sh
	ho, wo := sh.H/2, sh.W/2
	out := tensor.New(sh.N, sh.C, ho, wo)
	parallel.For(sh.N*sh.C, parallel.Grain(sh.H*sh.W, elemGrain), func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			inBase := nc * sh.H * sh.W
			outBase := nc * ho * wo
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					iy, ix := oy*2, ox*2
					sum := x.Data[inBase+iy*sh.W+ix] + x.Data[inBase+iy*sh.W+ix+1] +
						x.Data[inBase+(iy+1)*sh.W+ix] + x.Data[inBase+(iy+1)*sh.W+ix+1]
					out.Data[outBase+oy*wo+ox] = sum / 4
				}
			}
		}
	})
	return &ActRef{Name: p.LayerName + ".out", Kind: compress.KindPoolDropout, T: out}
}

// Backward implements Layer.
func (p *AvgPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	sh := p.inShape
	ho, wo := sh.H/2, sh.W/2
	dx := tensor.New(sh.N, sh.C, sh.H, sh.W)
	parallel.For(sh.N*sh.C, parallel.Grain(sh.H*sh.W, elemGrain), func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			inBase := nc * sh.H * sh.W
			outBase := nc * ho * wo
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					g := grad.Data[outBase+oy*wo+ox] / 4
					iy, ix := oy*2, ox*2
					dx.Data[inBase+iy*sh.W+ix] += g
					dx.Data[inBase+iy*sh.W+ix+1] += g
					dx.Data[inBase+(iy+1)*sh.W+ix] += g
					dx.Data[inBase+(iy+1)*sh.W+ix+1] += g
				}
			}
		}
	})
	return dx
}

// elementwiseLayer implements an activation function whose derivative is
// expressible from the *output* value: f'(x) = dFromOut(f(x)).
type elementwiseLayer struct {
	LayerName string
	fn        func(float32) float32
	dFromOut  func(float32) float32
	out       *ActRef
}

// Name implements Layer.
func (e *elementwiseLayer) Name() string { return e.LayerName }

// Params implements Layer.
func (e *elementwiseLayer) Params() []*Param { return nil }

// SavedRefs implements Layer.
func (e *elementwiseLayer) SavedRefs() []*ActRef {
	if e.out == nil {
		return nil
	}
	return []*ActRef{e.out}
}

// Forward implements Layer.
func (e *elementwiseLayer) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	out := tensor.NewLike(x)
	parallel.For(len(x.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = e.fn(x.Data[i])
		}
	})
	ref := &ActRef{Name: e.LayerName + ".out", Kind: compress.KindConv, T: out}
	if train {
		e.out = ref
	}
	return ref
}

// Backward implements Layer.
func (e *elementwiseLayer) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	saved := e.out.T
	parallel.For(len(dx.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dx.Data[i] *= e.dFromOut(saved.Data[i])
		}
	})
	return dx
}

// NewSigmoid builds a logistic activation layer: σ'(x) = y(1−y).
func NewSigmoid(name string) Layer {
	return &elementwiseLayer{
		LayerName: name,
		fn: func(v float32) float32 {
			return float32(1 / (1 + math.Exp(-float64(v))))
		},
		dFromOut: func(y float32) float32 { return y * (1 - y) },
	}
}

// NewTanh builds a tanh activation layer: tanh'(x) = 1 − y².
func NewTanh(name string) Layer {
	return &elementwiseLayer{
		LayerName: name,
		fn:        func(v float32) float32 { return float32(math.Tanh(float64(v))) },
		dFromOut:  func(y float32) float32 { return 1 - y*y },
	}
}

// LeakyReLU applies max(x, αx). Unlike the smooth activations its
// derivative needs the input sign, recoverable from the output sign
// (both share it for α > 0), so the output ref suffices here too.
type LeakyReLU struct {
	LayerName string
	Alpha     float32
	out       *ActRef
}

// NewLeakyReLU builds the layer (α = 0.01 when zero).
func NewLeakyReLU(name string, alpha float32) *LeakyReLU {
	if alpha == 0 {
		alpha = 0.01
	}
	return &LeakyReLU{LayerName: name, Alpha: alpha}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return l.LayerName }

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// SavedRefs implements Layer.
func (l *LeakyReLU) SavedRefs() []*ActRef {
	if l.out == nil {
		return nil
	}
	return []*ActRef{l.out}
}

// Forward implements Layer.
func (l *LeakyReLU) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	out := tensor.NewLike(x)
	parallel.For(len(x.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := x.Data[i]; v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = l.Alpha * v
			}
		}
	})
	ref := &ActRef{Name: l.LayerName + ".out", Kind: compress.KindConv, T: out}
	if train {
		l.out = ref
	}
	return ref
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	saved := l.out.T
	parallel.For(len(dx.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if saved.Data[i] <= 0 {
				dx.Data[i] *= l.Alpha
			}
		}
	})
	return dx
}
