package nn

import (
	"bytes"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

func buildNet(seed uint64) *Sequential {
	rng := tensor.NewRNG(seed)
	return NewSequential("net",
		NewConv2D("c1", 1, 4, 3, ConvOpts{Pad: 1, Bias: true}, rng),
		NewBatchNorm("bn1", 4),
		NewReLU("r1"),
		NewResidual("res", NewSequential("body",
			NewConv2D("c2", 4, 4, 3, ConvOpts{Pad: 1}, rng),
			NewBatchNorm("bn2", 4),
		), nil),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 4, 2, rng),
	)
}

func TestCheckpointRoundtrip(t *testing.T) {
	src := buildNet(1)
	// Perturb state: train-forward once so BN running stats move.
	x := tensor.New(2, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(2), 0, 1)
	src.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := buildNet(99) // different init
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	// All state vectors must match exactly.
	srcNames, srcVecs := collectState(src)
	dstNames, dstVecs := collectState(dst)
	if len(srcNames) != len(dstNames) {
		t.Fatalf("state count %d vs %d", len(srcNames), len(dstNames))
	}
	for i := range srcNames {
		if srcNames[i] != dstNames[i] {
			t.Fatalf("name %q vs %q", srcNames[i], dstNames[i])
		}
		for j := range srcVecs[i] {
			if srcVecs[i][j] != dstVecs[i][j] {
				t.Fatalf("state %q differs at %d", srcNames[i], j)
			}
		}
	}
	// And forward outputs must agree in eval mode.
	a := src.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	b := dst.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if tensor.MSE(a.T, b.T) != 0 {
		t.Fatal("restored network computes different outputs")
	}
}

func TestCheckpointIncludesRunningStats(t *testing.T) {
	names, _ := collectState(buildNet(3))
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"bn1.running_mean", "bn1.running_var", "c1.W", "c1.b", "fc.W"} {
		if !found[want] {
			t.Fatalf("state %q missing from %v", want, names)
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	dst := buildNet(4)
	if err := LoadCheckpoint(bytes.NewReader([]byte("nope")), dst); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, buildNet(5)); err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()[:len(buf.Bytes())/2]), dst); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestCheckpointRejectsArchitectureMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, buildNet(6)); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	other := NewSequential("other", NewConv2D("weird", 1, 2, 3, ConvOpts{}, rng))
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
}
