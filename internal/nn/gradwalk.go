package nn

// Parameter/gradient walk for the data-parallel exchange: the trainer
// needs every replica to see the network's gradient as one flat vector
// in one deterministic order, so that the fixed-order all-reduce over
// the activation-store transport is well-defined. The order is the
// order of root.Params() — a pure function of the architecture, so two
// replicas built by the same constructor walk identically.

import "jpegact/internal/splitmix"

// GradSize returns the total element count of all parameter gradients
// under root — the length FlattenGrads fills and ImportGrads consumes.
func GradSize(root Layer) int {
	n := 0
	for _, p := range root.Params() {
		n += p.Grad.Elems()
	}
	return n
}

// FlattenGrads copies every parameter gradient under root into dst in
// Params() order and returns the number of elements written. dst must
// hold at least GradSize(root) elements.
func FlattenGrads(root Layer, dst []float32) int {
	off := 0
	for _, p := range root.Params() {
		off += copy(dst[off:], p.Grad.Data)
	}
	return off
}

// ImportGrads overwrites every parameter gradient under root from the
// flat vector src, scaling each element by scale on the way in (the
// 1/M microbatch average is applied here, exactly once, as one
// deterministic float32 multiply per element). src must hold exactly
// GradSize(root) elements; a mismatch panics — it means the vector
// came from a different architecture, which no error return can make
// safe to continue from.
func ImportGrads(root Layer, src []float32, scale float32) {
	off := 0
	for _, p := range root.Params() {
		n := p.Grad.Elems()
		if off+n > len(src) {
			panic("nn: ImportGrads vector shorter than the network's gradient")
		}
		for i := 0; i < n; i++ {
			p.Grad.Data[i] = src[off+i] * scale
		}
		off += n
	}
	if off != len(src) {
		panic("nn: ImportGrads vector longer than the network's gradient")
	}
}

// SaltNetState returns a copy of st with every RNG-position entry (the
// Dropout snapshots — the only uint64 entries a NetState holds)
// deterministically perturbed by salt, leaving BatchNorm running-stat
// snapshots untouched. The data-parallel trainer restores each
// microbatch's forward from the same step-start snapshot salted with
// the microbatch index, so every microbatch draws a distinct, replica-
// independent dropout mask while BN statistics stay anchored to the
// step start. salt 0 returns an unperturbed copy, so microbatch 0 —
// the one whose post-forward state the step adopts — replays exactly
// the single-replica schedule. Entries holding equal RNG positions
// (layers sharing one RNG) salt to equal positions, preserving the
// sharing structure.
func SaltNetState(st NetState, salt uint64) NetState {
	out := make(NetState, len(st))
	for i, e := range st {
		if pos, ok := e.(uint64); ok && salt != 0 {
			out[i] = splitmix.Mix(pos ^ salt*splitmix.Gamma)
			continue
		}
		out[i] = e
	}
	return out
}
