package nn

// Parameter/gradient walk for the data-parallel exchange: the trainer
// needs every replica to see the network's gradient as one flat vector
// in one deterministic order, so that the fixed-order all-reduce over
// the activation-store transport is well-defined. The order is the
// order of root.Params() — a pure function of the architecture, so two
// replicas built by the same constructor walk identically.

import "jpegact/internal/splitmix"

// GradSize returns the total element count of all parameter gradients
// under root — the length FlattenGrads fills and ImportGrads consumes.
func GradSize(root Layer) int {
	n := 0
	for _, p := range root.Params() {
		n += p.Grad.Elems()
	}
	return n
}

// FlattenGrads copies every parameter gradient under root into dst in
// Params() order and returns the number of elements written. dst must
// hold at least GradSize(root) elements.
func FlattenGrads(root Layer, dst []float32) int {
	off := 0
	for _, p := range root.Params() {
		off += copy(dst[off:], p.Grad.Data)
	}
	return off
}

// ImportGrads overwrites every parameter gradient under root from the
// flat vector src, scaling each element by scale on the way in (the
// 1/M microbatch average is applied here, exactly once, as one
// deterministic float32 multiply per element). src must hold exactly
// GradSize(root) elements; a mismatch panics — it means the vector
// came from a different architecture, which no error return can make
// safe to continue from.
func ImportGrads(root Layer, src []float32, scale float32) {
	off := 0
	for _, p := range root.Params() {
		n := p.Grad.Elems()
		if off+n > len(src) {
			panic("nn: ImportGrads vector shorter than the network's gradient")
		}
		for i := 0; i < n; i++ {
			p.Grad.Data[i] = src[off+i] * scale
		}
		off += n
	}
	if off != len(src) {
		panic("nn: ImportGrads vector longer than the network's gradient")
	}
}

// BucketPlan partitions a network's flat gradient vector (the
// FlattenGrads layout: Params() order) into fixed-size element buckets
// and tracks, during one backward pass, which buckets have been fully
// produced. The data-parallel trainer hangs its overlapped exchange on
// it: the OnGrad hook reports each finalized parameter, Produce answers
// "which buckets just became complete and may ship now", and because
// backward finalizes parameters in reverse network order the *tail*
// buckets complete first — exactly the order a reducer draining
// reverse-order GETs wants.
//
// The plan is a pure function of the architecture and the bucket size,
// so two replicas built by the same constructor carry identical plans
// (same bucket boundaries, same offsets). It is not safe for concurrent
// use; each worker owns one.
type BucketPlan struct {
	bucketElems int
	total       int
	params      []*Param
	offset      map[*Param]int
	produced    map[*Param]bool
	remaining   []int // per-bucket outstanding element counts
	fresh       []int // pristine remaining counts, restored by Reset
}

// NewBucketPlan builds the plan for root with the given bucket capacity
// in elements (values < 1 collapse to one bucket spanning everything).
func NewBucketPlan(root Layer, bucketElems int) *BucketPlan {
	total := GradSize(root)
	if bucketElems < 1 {
		bucketElems = total
		if bucketElems < 1 {
			bucketElems = 1
		}
	}
	bp := &BucketPlan{
		bucketElems: bucketElems,
		total:       total,
		offset:      map[*Param]int{},
		produced:    map[*Param]bool{},
	}
	off := 0
	for _, p := range root.Params() {
		bp.params = append(bp.params, p)
		bp.offset[p] = off
		off += p.Grad.Elems()
	}
	bp.fresh = make([]int, bp.Buckets())
	for b := range bp.fresh {
		lo, hi := bp.BucketRange(b)
		bp.fresh[b] = hi - lo
	}
	bp.remaining = make([]int, len(bp.fresh))
	bp.Reset()
	return bp
}

// Buckets returns the bucket count (0 for a parameterless network).
func (bp *BucketPlan) Buckets() int {
	return (bp.total + bp.bucketElems - 1) / bp.bucketElems
}

// Total returns the flat gradient length the plan covers.
func (bp *BucketPlan) Total() int { return bp.total }

// BucketRange returns bucket b's half-open element range [lo, hi) in
// the flat vector.
func (bp *BucketPlan) BucketRange(b int) (lo, hi int) {
	lo = b * bp.bucketElems
	hi = lo + bp.bucketElems
	if hi > bp.total {
		hi = bp.total
	}
	return lo, hi
}

// Reset clears the pass state; call once per backward pass.
func (bp *BucketPlan) Reset() {
	copy(bp.remaining, bp.fresh)
	for p := range bp.produced {
		delete(bp.produced, p)
	}
}

// Offset returns p's element offset in the flat vector, and whether p
// belongs to the plan at all (a foreign parameter reports false — the
// caller simply ignores it).
func (bp *BucketPlan) Offset(p *Param) (int, bool) {
	off, ok := bp.offset[p]
	return off, ok
}

// Produce marks p's gradient finalized and returns the indices of the
// buckets that just became complete, in ascending order (usually zero
// or one; a parameter spanning a boundary can complete two). Unknown or
// already-produced parameters return nil.
func (bp *BucketPlan) Produce(p *Param) []int {
	off, ok := bp.offset[p]
	if !ok || bp.produced[p] {
		return nil
	}
	bp.produced[p] = true
	n := p.Grad.Elems()
	var done []int
	for b := off / bp.bucketElems; b*bp.bucketElems < off+n; b++ {
		lo, hi := bp.BucketRange(b)
		if off > lo {
			lo = off
		}
		if off+n < hi {
			hi = off + n
		}
		bp.remaining[b] -= hi - lo
		if bp.remaining[b] == 0 {
			done = append(done, b)
		}
	}
	return done
}

// Unproduced returns the parameters not yet reported this pass, in
// Params() order — the safety sweep the trainer runs after backward so
// a topology the OnGrad hook does not fully cover still ships every
// bucket.
func (bp *BucketPlan) Unproduced() []*Param {
	var out []*Param
	for _, p := range bp.params {
		if !bp.produced[p] {
			out = append(out, p)
		}
	}
	return out
}

// SaltNetState returns a copy of st with every RNG-position entry (the
// Dropout snapshots — the only uint64 entries a NetState holds)
// deterministically perturbed by salt, leaving BatchNorm running-stat
// snapshots untouched. The data-parallel trainer restores each
// microbatch's forward from the same step-start snapshot salted with
// the microbatch index, so every microbatch draws a distinct, replica-
// independent dropout mask while BN statistics stay anchored to the
// step start. salt 0 returns an unperturbed copy, so microbatch 0 —
// the one whose post-forward state the step adopts — replays exactly
// the single-replica schedule. Entries holding equal RNG positions
// (layers sharing one RNG) salt to equal positions, preserving the
// sharing structure.
func SaltNetState(st NetState, salt uint64) NetState {
	out := make(NetState, len(st))
	for i, e := range st {
		if pos, ok := e.(uint64); ok && salt != 0 {
			out[i] = splitmix.Mix(pos ^ salt*splitmix.Gamma)
			continue
		}
		out[i] = e
	}
	return out
}
