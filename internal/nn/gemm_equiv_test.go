package nn

import (
	"math"
	"runtime"
	"testing"

	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// The packed register-tiled kernels must be bit-identical to the saxpy
// references in gemm_ref.go — per C element both run the same ascending-k
// float32 op sequence — at every worker count. Equality below is on the
// float bit pattern (Float32bits), so ±0 sign differences count as
// failures too.

func bitsEqual(t *testing.T, name string, w int, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s workers=%d: element %d = %v (bits %#x), reference %v (bits %#x)",
				name, w, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// gemmEquivOperands builds operands that exercise the special cases the
// packed kernels treat specially: plain values, scattered +0 and -0
// (the zero-skip guard and the dense-row scan), an all-zero row (fully
// skipped row), and an all-dense row region.
func gemmEquivOperands(m, k, n int, seed uint64) (a, b, c []float32) {
	r := tensor.NewRNG(seed)
	a = make([]float32, m*k)
	b = make([]float32, k*n)
	c = make([]float32, m*n)
	for i := range a {
		switch i % 11 {
		case 0:
			a[i] = 0
		case 5:
			a[i] = float32(math.Copysign(0, -1)) // -0: skipped, like +0
		default:
			a[i] = float32(r.Norm())
		}
	}
	if m > 2 {
		// One fully-zero A row: every k step skipped.
		row := a[2*k : 3*k]
		for i := range row {
			row[i] = 0
		}
	}
	if m > 1 {
		// One fully-dense A row: the unguarded micro-kernel path.
		row := a[k : 2*k]
		for i := range row {
			if row[i] == 0 {
				row[i] = 0.25
			}
		}
	}
	for i := range b {
		b[i] = float32(r.Norm())
	}
	for i := range c {
		c[i] = float32(r.Norm()) // C += : incoming values must survive
	}
	return
}

func equivSizes() [][3]int {
	return [][3]int{
		{2, 8, 4},    // exactly the fallback thresholds
		{3, 9, 5},    // odd everything: 1-row tail + edge panel
		{16, 32, 16}, // aligned
		{33, 47, 29}, // odd, large enough for several panels
		{64, 128, 64},
		{1, 4, 3}, // below thresholds: fallback must also agree (trivially, it IS the reference)
	}
}

func runAtWorkers(w int, f func()) {
	old := parallel.SetWorkers(w)
	defer parallel.SetWorkers(old)
	f()
}

func TestGemmPackedBitIdenticalToSaxpy(t *testing.T) {
	for _, sz := range equivSizes() {
		m, k, n := sz[0], sz[1], sz[2]
		a, b, c0 := gemmEquivOperands(m, k, n, 77)
		want := append([]float32(nil), c0...)
		gemmSaxpy(m, k, n, a, b, want)
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			got := append([]float32(nil), c0...)
			runAtWorkers(w, func() { Gemm(m, k, n, a, b, got) })
			bitsEqual(t, "Gemm", w, got, want)
		}
	}
}

func TestGemmTAPackedBitIdenticalToSaxpy(t *testing.T) {
	for _, sz := range equivSizes() {
		m, k, n := sz[0], sz[1], sz[2]
		// B (k×n) and C (m×n) as usual; A is stored K×M, with the zero /
		// -0 / dense special cases laid out per Aᵀ row (stored column).
		_, b, c0 := gemmEquivOperands(m, k, n, 78)
		r := tensor.NewRNG(82)
		a := make([]float32, k*m)
		for i := range a {
			switch i % 11 {
			case 0:
				a[i] = 0
			case 5:
				a[i] = float32(math.Copysign(0, -1))
			default:
				a[i] = float32(r.Norm())
			}
		}
		for kk := 0; kk < k; kk++ {
			if m > 2 {
				a[kk*m+2] = 0 // Aᵀ row 2 all-zero
			}
			if m > 1 && a[kk*m+1] == 0 {
				a[kk*m+1] = 0.25 // Aᵀ row 1 fully dense
			}
		}
		want := append([]float32(nil), c0...)
		gemmTASaxpy(m, k, n, a, b, want)
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			got := append([]float32(nil), c0...)
			runAtWorkers(w, func() { GemmTA(m, k, n, a, b, got) })
			bitsEqual(t, "GemmTA", w, got, want)
		}
	}
}

func TestGemmTBPackedBitIdenticalToSaxpy(t *testing.T) {
	for _, sz := range equivSizes() {
		m, k, n := sz[0], sz[1], sz[2]
		// B is stored N×K for the TB kernel.
		a, _, c0 := gemmEquivOperands(m, k, n, 79)
		bt := make([]float32, n*k)
		r := tensor.NewRNG(80)
		for i := range bt {
			bt[i] = float32(r.Norm())
		}
		want := append([]float32(nil), c0...)
		gemmTBSaxpy(m, k, n, a, bt, want)
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			got := append([]float32(nil), c0...)
			runAtWorkers(w, func() { GemmTB(m, k, n, a, bt, got) })
			bitsEqual(t, "GemmTB", w, got, want)
		}
	}
}

// TestGemmNaNAndInfPropagation pins the zero-skip edge semantics: the
// packed guard (integer bit test) must treat NaN and ±Inf exactly as the
// reference's `av == 0` comparison does — NaN and Inf are "non-zero" and
// enter the accumulation, poisoning C identically in both kernels.
func TestGemmNaNAndInfPropagation(t *testing.T) {
	const m, k, n = 4, 16, 8
	a, b, c0 := gemmEquivOperands(m, k, n, 81)
	a[3] = float32(math.NaN())
	a[k+5] = float32(math.Inf(1))
	a[2*k+7] = float32(math.Inf(-1))
	want := append([]float32(nil), c0...)
	gemmSaxpy(m, k, n, a, b, want)
	got := append([]float32(nil), c0...)
	Gemm(m, k, n, a, b, got)
	bitsEqual(t, "Gemm/nan-inf", parallel.Workers(), got, want)
}
