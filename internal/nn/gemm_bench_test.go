package nn

import (
	"testing"
)

// Conv-shaped GEMM benchmarks: the forward lowering of a 64-channel 3×3
// conv on a 16×16 feature map (m=OutC, k=InC·K², n=H·W). These seed the
// perf trajectory for the parallel execution layer — record ns/op into
// BENCH_parallel.json via scripts/bench.sh.

const (
	benchM = 64
	benchK = 576
	benchN = 256
)

func gemmBenchOperands(b *testing.B, am, an int) (a, bb, c []float32) {
	b.Helper()
	a = make([]float32, am*an)
	bb = make([]float32, benchK*benchN)
	c = make([]float32, benchM*benchN)
	for i := range a {
		a[i] = float32(i%17) * 0.25
	}
	for i := range bb {
		bb[i] = float32(i%13) * 0.5
	}
	return a, bb, c
}

func BenchmarkGemm(b *testing.B) {
	a, bb, c := gemmBenchOperands(b, benchM, benchK)
	b.SetBytes(int64(4 * (benchM*benchK + benchK*benchN)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Gemm(benchM, benchK, benchN, a, bb, c)
	}
}

func BenchmarkGemmTA(b *testing.B) {
	a, bb, c := gemmBenchOperands(b, benchK, benchM)
	b.SetBytes(int64(4 * (benchM*benchK + benchK*benchN)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GemmTA(benchM, benchK, benchN, a, bb, c)
	}
}

func BenchmarkGemmTB(b *testing.B) {
	a, bb, c := gemmBenchOperands(b, benchM, benchK)
	bt := make([]float32, benchN*benchK)
	for i := range bt {
		bt[i] = float32(i%13) * 0.5
	}
	_ = bb
	b.SetBytes(int64(4 * (benchM*benchK + benchK*benchN)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GemmTB(benchM, benchK, benchN, a, bt, c)
	}
}

// Saxpy reference benchmarks: the pre-packing kernels from gemm_ref.go
// on the same shapes, so BENCH_kernels.json records a same-machine
// before/after pair for the packed rewrite.

func BenchmarkGemmSaxpyRef(b *testing.B) {
	a, bb, c := gemmBenchOperands(b, benchM, benchK)
	b.SetBytes(int64(4 * (benchM*benchK + benchK*benchN)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gemmSaxpy(benchM, benchK, benchN, a, bb, c)
	}
}

func BenchmarkGemmTASaxpyRef(b *testing.B) {
	a, bb, c := gemmBenchOperands(b, benchK, benchM)
	b.SetBytes(int64(4 * (benchM*benchK + benchK*benchN)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gemmTASaxpy(benchM, benchK, benchN, a, bb, c)
	}
}

func BenchmarkGemmTBSaxpyRef(b *testing.B) {
	a, _, c := gemmBenchOperands(b, benchM, benchK)
	bt := make([]float32, benchN*benchK)
	for i := range bt {
		bt[i] = float32(i%13) * 0.5
	}
	b.SetBytes(int64(4 * (benchM*benchK + benchK*benchN)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gemmTBSaxpy(benchM, benchK, benchN, a, bt, c)
	}
}
