package nn

import (
	"math"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

// MaxPool2 is 2×2 max pooling with stride 2. It saves its input and
// recomputes the argmax in the backward pass from the (possibly lossy)
// recovered input — so compression error can reroute gradients exactly as
// it would on hardware that stores the compressed input.
type MaxPool2 struct {
	LayerName string
	in        *ActRef
}

// NewMaxPool2 builds a 2×2/2 max-pool layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{LayerName: name} }

// Name implements Layer.
func (p *MaxPool2) Name() string { return p.LayerName }

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// SavedRefs implements Layer.
func (p *MaxPool2) SavedRefs() []*ActRef {
	if p.in == nil {
		return nil
	}
	return []*ActRef{p.in}
}

// Forward implements Layer.
func (p *MaxPool2) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	sh := x.Shape
	ho, wo := sh.H/2, sh.W/2
	out := tensor.New(sh.N, sh.C, ho, wo)
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			inBase := (n*sh.C + c) * sh.H * sh.W
			outBase := (n*sh.C + c) * ho * wo
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					iy, ix := oy*2, ox*2
					m := x.Data[inBase+iy*sh.W+ix]
					if v := x.Data[inBase+iy*sh.W+ix+1]; v > m {
						m = v
					}
					if v := x.Data[inBase+(iy+1)*sh.W+ix]; v > m {
						m = v
					}
					if v := x.Data[inBase+(iy+1)*sh.W+ix+1]; v > m {
						m = v
					}
					out.Data[outBase+oy*wo+ox] = m
				}
			}
		}
	}
	if train {
		// Max-pool needs the input *values* to recompute argmax in the
		// backward pass, so a ReLU-produced ref may not degrade to a BRC
		// mask: upgrade it to the sparse pool/dropout kind (SFPR+ZVC or
		// DPR+CSR under Table II).
		if in.Kind == compress.KindReLUToOther || in.Kind == compress.KindConv {
			in.Kind = compress.KindPoolDropout
		}
		p.in = in
	}
	return &ActRef{Name: p.LayerName + ".out", Kind: compress.KindPoolDropout, T: out}
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := p.in.T
	sh := x.Shape
	ho, wo := sh.H/2, sh.W/2
	dx := tensor.NewLike(x)
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			inBase := (n*sh.C + c) * sh.H * sh.W
			outBase := (n*sh.C + c) * ho * wo
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					iy, ix := oy*2, ox*2
					bi := inBase + iy*sh.W + ix
					best, bestIdx := x.Data[bi], bi
					for _, idx := range [3]int{bi + 1, bi + sh.W, bi + sh.W + 1} {
						if x.Data[idx] > best {
							best, bestIdx = x.Data[idx], idx
						}
					}
					dx.Data[bestIdx] += grad.Data[outBase+oy*wo+ox]
				}
			}
		}
	}
	return dx
}

// GlobalAvgPool averages each channel plane to a single value — the
// classification head reducer. It needs only shapes in backward, so it
// saves nothing.
type GlobalAvgPool struct {
	LayerName string
	inShape   tensor.Shape
}

// NewGlobalAvgPool builds the layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{LayerName: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.LayerName }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// SavedRefs implements Layer.
func (p *GlobalAvgPool) SavedRefs() []*ActRef { return nil }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(in *ActRef, _ bool) *ActRef {
	x := in.T
	sh := x.Shape
	p.inShape = sh
	out := tensor.New(sh.N, sh.C, 1, 1)
	hw := sh.H * sh.W
	inv := 1 / float32(hw)
	for nc := 0; nc < sh.N*sh.C; nc++ {
		var sum float32
		for i := 0; i < hw; i++ {
			sum += x.Data[nc*hw+i]
		}
		out.Data[nc] = sum * inv
	}
	return &ActRef{Name: p.LayerName + ".out", Kind: compress.KindConv, T: out}
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	sh := p.inShape
	dx := tensor.New(sh.N, sh.C, sh.H, sh.W)
	hw := sh.H * sh.W
	inv := 1 / float32(hw)
	for nc := 0; nc < sh.N*sh.C; nc++ {
		g := grad.Data[nc] * inv
		for i := 0; i < hw; i++ {
			dx.Data[nc*hw+i] = g
		}
	}
	return dx
}

// Linear is a fully-connected layer over flattened (C·H·W) features.
// Its saved input is a small dense activation (excluded from JPEG by the
// paper due to size; the policy engine falls back to SFPR).
type Linear struct {
	LayerName string
	InF, OutF int
	Weight    *Param // (1, 1, OutF, InF)
	Bias      *Param // (1, OutF, 1, 1)
	in        *ActRef
	inShape   tensor.Shape
}

// NewLinear builds a linear layer with He initialization.
func NewLinear(name string, inF, outF int, rng *tensor.RNG) *Linear {
	l := &Linear{
		LayerName: name,
		InF:       inF,
		OutF:      outF,
		Weight:    NewParam(name+".W", 1, 1, outF, inF),
		Bias:      NewParam(name+".b", 1, outF, 1, 1),
	}
	l.Weight.W.FillHe(rng, inF)
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// SavedRefs implements Layer.
func (l *Linear) SavedRefs() []*ActRef {
	if l.in == nil {
		return nil
	}
	return []*ActRef{l.in}
}

// Forward implements Layer.
func (l *Linear) Forward(in *ActRef, train bool) *ActRef {
	x := in.T
	n := x.Shape.N
	if x.Elems()/n != l.InF {
		panic("nn: linear input feature mismatch")
	}
	if train {
		if in.Kind == compress.KindReLUToOther {
			in.Kind = compress.KindReLUToConv // values needed, like conv
		}
		l.in = in
		l.inShape = x.Shape
	}
	out := tensor.New(n, l.OutF, 1, 1)
	// out (n × OutF) = x (n × InF) · Wᵀ (InF × OutF)
	GemmTB(n, l.InF, l.OutF, x.Data, l.Weight.W.Data, out.Data)
	for i := 0; i < n; i++ {
		for o := 0; o < l.OutF; o++ {
			out.Data[i*l.OutF+o] += l.Bias.W.Data[o]
		}
	}
	return &ActRef{Name: l.LayerName + ".out", Kind: compress.KindConv, T: out}
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.in.T
	n := grad.Shape.N
	// ∇W += ∇yᵀ · x  (OutF×n · n×InF)
	GemmTA(l.OutF, n, l.InF, grad.Data, x.Data, l.Weight.Grad.Data)
	for i := 0; i < n; i++ {
		for o := 0; o < l.OutF; o++ {
			l.Bias.Grad.Data[o] += grad.Data[i*l.OutF+o]
		}
	}
	// ∇x = ∇y · W  (n×OutF · OutF×InF)
	dx := tensor.New(l.inShape.N, l.inShape.C, l.inShape.H, l.inShape.W)
	Gemm(n, l.OutF, l.InF, grad.Data, l.Weight.W.Data, dx.Data)
	return dx
}

// NaNGuard reports whether any value in t is NaN or Inf — the divergence
// detector the trainer uses (§VI-B observes divergence as a sudden
// accuracy collapse; activation/gradient NaNs are its proximate signal).
func NaNGuard(t *tensor.Tensor) bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}
