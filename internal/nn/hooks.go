package nn

// Hooks connect a network to an activation offload scheduler without the
// layers knowing anything about compression or channels.
//
// OnSave fires during a training-mode forward pass the moment a saved
// activation becomes *emission-safe*: no remaining forward computation
// will read its tensor, so the scheduler may compress it and release the
// float data immediately — this is what lets offload traffic overlap the
// rest of the forward pass instead of bursting at its end. A container
// never emits its own input (an enclosing block — a residual shortcut,
// the sum — may still read it) and never emits the current frontier (the
// next layer's input); whatever those rules hold back is swept by the
// trainer after the forward pass completes.
//
// OnNeed fires during the backward pass just before a layer reads one of
// its saved refs, giving the scheduler the precise demand order for
// restores (and prefetch lookahead).
//
// OnGrad fires during the backward pass the moment a parameter's
// gradient is *final*: the owning layer's Backward has returned, and no
// remaining backward computation will touch p.Grad (each layer
// accumulates only into its own parameters, exactly once per pass). It
// is the gradient-side mirror of OnSave — backward produces parameters
// in reverse network order, so a data-parallel exchange can start
// shipping tail-of-network gradient buckets while the head of the
// network is still differentiating. All hooks may be nil.
type Hooks struct {
	OnSave func(*ActRef)
	OnNeed func(*ActRef)
	OnGrad func(*Param)
}

// hookHost is implemented by containers that propagate hooks and emit
// save/need events for their children.
type hookHost interface {
	setHooks(*Hooks)
	hooked() bool
}

// SetHooks installs h on every hook-aware container reachable from l
// (pass nil to detach). Leaf layers are unaffected; their events are
// emitted by the enclosing container.
func SetHooks(l Layer, h *Hooks) {
	if hh, ok := l.(hookHost); ok {
		hh.setHooks(h)
	}
}

// emitSaved fires OnSave for each of l's saved refs except the excluded
// live ones (the container's input and the current frontier). Refs an
// inner container already emitted are deduplicated downstream by the
// scheduler.
func emitSaved(h *Hooks, l Layer, exclude ...*ActRef) {
	if h == nil || h.OnSave == nil {
		return
	}
refs:
	for _, ref := range l.SavedRefs() {
		for _, ex := range exclude {
			if ref == ex {
				continue refs
			}
		}
		h.OnSave(ref)
	}
}

// emitGrads fires OnGrad for each of a child's parameters once that
// child's Backward has finished accumulating into them. Hooked
// containers emit internally at finer grain (their own Backward walks
// their children), so they are skipped here.
func emitGrads(h *Hooks, l Layer) {
	if h == nil || h.OnGrad == nil {
		return
	}
	if hh, ok := l.(hookHost); ok && hh.hooked() {
		return
	}
	for _, p := range l.Params() {
		h.OnGrad(p)
	}
}

// announceNeeds fires OnNeed for each ref a leaf child is about to read
// in Backward. Hooked containers announce internally at finer grain, so
// they are skipped here.
func announceNeeds(h *Hooks, l Layer) {
	if h == nil || h.OnNeed == nil {
		return
	}
	if hh, ok := l.(hookHost); ok && hh.hooked() {
		return
	}
	for _, ref := range l.SavedRefs() {
		h.OnNeed(ref)
	}
}
