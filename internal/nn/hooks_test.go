package nn_test

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/tensor"
)

// TestHooksStreamingMatchesUnhooked drives the save/need hooks as a
// scheduler would, but with a brutal twist that proves emission safety:
// the moment OnSave fires, the ref's tensor is taken away (stashed and
// nilled). If a container ever emitted a ref some later forward
// computation still reads — the residual-shortcut aliasing case — the
// forward pass nil-panics. The tensors come back only at OnNeed, so the
// backward announcements must also be complete and timely. The whole
// run must match an un-hooked run bit-exactly.
func TestHooksStreamingMatchesUnhooked(t *testing.T) {
	run := func(hooked bool) (float64, []*nn.Param, int) {
		m := models.ResNet18(models.Scale{Width: 6, Blocks: 1}, 2, tensor.NewRNG(11))
		ds := data.NewClassification(data.ClassificationConfig{Classes: 2, Channels: 3, H: 16, W: 16, Seed: 12})
		x, labels := ds.Batch(4)

		stash := map[*nn.ActRef]*tensor.Tensor{}
		emitted := 0
		if hooked {
			nn.SetHooks(m.Net, &nn.Hooks{
				OnSave: func(ref *nn.ActRef) {
					if ref.T == nil {
						return
					}
					if _, ok := stash[ref]; ok {
						return
					}
					emitted++
					stash[ref] = ref.T
					ref.T = nil
				},
				OnNeed: func(ref *nn.ActRef) {
					if saved, ok := stash[ref]; ok {
						ref.T = saved
						delete(stash, ref)
					}
				},
			})
		}
		out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
		loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)
		m.Net.Backward(grad)
		return loss, m.Net.Params(), emitted
	}

	lossA, paramsA, _ := run(false)
	lossB, paramsB, emitted := run(true)
	if emitted == 0 {
		t.Fatal("no refs streamed during forward")
	}
	if lossA != lossB {
		t.Fatalf("loss diverged: %v vs %v", lossA, lossB)
	}
	if len(paramsA) != len(paramsB) {
		t.Fatalf("param count %d vs %d", len(paramsA), len(paramsB))
	}
	for i := range paramsA {
		a, b := paramsA[i], paramsB[i]
		if a.Name != b.Name {
			t.Fatalf("param %d name %q vs %q", i, a.Name, b.Name)
		}
		for j := range a.Grad.Data {
			if a.Grad.Data[j] != b.Grad.Data[j] {
				t.Fatalf("grad %q[%d] diverged: %v vs %v", a.Name, j, a.Grad.Data[j], b.Grad.Data[j])
			}
		}
	}
}

// TestSetHooksDetach verifies nil detaches cleanly.
func TestSetHooksDetach(t *testing.T) {
	m := models.ResNet18(models.Scale{Width: 6, Blocks: 1}, 2, tensor.NewRNG(13))
	calls := 0
	nn.SetHooks(m.Net, &nn.Hooks{OnSave: func(*nn.ActRef) { calls++ }})
	nn.SetHooks(m.Net, nil)
	ds := data.NewClassification(data.ClassificationConfig{Classes: 2, Channels: 3, H: 16, W: 16, Seed: 14})
	x, _ := ds.Batch(2)
	m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
	if calls != 0 {
		t.Fatalf("detached hooks still fired %d times", calls)
	}
}
