package nn

import (
	"math"

	"jpegact/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and
// zeroes the gradients. SGD (loss.go) is the paper's optimizer; Nesterov
// and Adam are provided for downstream users of the training library.
type Optimizer interface {
	Step(params []*Param)
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Nesterov)(nil)
	_ Optimizer = (*Adam)(nil)
)

// Nesterov is SGD with Nesterov momentum: the gradient is evaluated at
// the look-ahead point, implemented in the standard rewritten form
// v ← μv − ηg;  w ← w + μv − ηg.
type Nesterov struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param]*tensor.Tensor
}

// NewNesterov builds the optimizer.
func NewNesterov(lr, momentum, weightDecay float64) *Nesterov {
	return &Nesterov{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: map[*Param]*tensor.Tensor{}}
}

// Step implements Optimizer.
func (n *Nesterov) Step(params []*Param) {
	lr := float32(n.LR)
	mom := float32(n.Momentum)
	wd := float32(n.WeightDecay)
	for _, p := range params {
		v := n.velocity[p]
		if v == nil {
			v = tensor.NewLike(p.W)
			n.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + wd*p.W.Data[i]
			v.Data[i] = mom*v.Data[i] - lr*g
			p.W.Data[i] += mom*v.Data[i] - lr*g
		}
		p.ZeroGrad()
	}
}

// Adam is the Kingma–Ba adaptive optimizer with bias correction.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	step         int
	m, v         map[*Param]*tensor.Tensor
}

// NewAdam builds the optimizer with the canonical β defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Tensor{}, v: map[*Param]*tensor.Tensor{},
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.NewLike(p.W)
			v = tensor.NewLike(p.W)
			a.m[p] = m
			a.v[p] = v
		}
		for i := range p.W.Data {
			g := float64(p.Grad.Data[i]) + a.WeightDecay*float64(p.W.Data[i])
			mi := a.Beta1*float64(m.Data[i]) + (1-a.Beta1)*g
			vi := a.Beta2*float64(v.Data[i]) + (1-a.Beta2)*g*g
			m.Data[i] = float32(mi)
			v.Data[i] = float32(vi)
			p.W.Data[i] -= float32(a.LR * (mi / bc1) / (math.Sqrt(vi/bc2) + a.Eps))
		}
		p.ZeroGrad()
	}
}
