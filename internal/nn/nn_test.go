package nn

import (
	"math"
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/tensor"
)

// numGradInput estimates d(sum(out*R))/dx by central differences.
func numGradInput(l Layer, x *tensor.Tensor, r *tensor.Tensor) *tensor.Tensor {
	eps := float32(1e-3)
	out := tensor.NewLike(x)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		fp := objective(l, x, r)
		x.Data[i] = orig - eps
		fm := objective(l, x, r)
		x.Data[i] = orig
		out.Data[i] = float32((fp - fm) / float64(2*eps))
	}
	return out
}

func objective(l Layer, x, r *tensor.Tensor) float64 {
	ref := &ActRef{Kind: compress.KindConv, T: x}
	out := l.Forward(ref, true)
	var sum float64
	for i := range out.T.Data {
		sum += float64(out.T.Data[i]) * float64(r.Data[i])
	}
	return sum
}

// analyticGradInput runs one forward and backward with upstream grad r.
func analyticGradInput(l Layer, x, r *tensor.Tensor) *tensor.Tensor {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	ref := &ActRef{Kind: compress.KindConv, T: x}
	l.Forward(ref, true)
	return l.Backward(r.Clone())
}

func maxRelDiff(a, b *tensor.Tensor) float64 {
	var worst float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		scale := math.Max(1, math.Max(math.Abs(float64(a.Data[i])), math.Abs(float64(b.Data[i]))))
		if d/scale > worst {
			worst = d / scale
		}
	}
	return worst
}

func randT(seed uint64, n, c, h, w int) *tensor.Tensor {
	t := tensor.New(n, c, h, w)
	t.FillNormal(tensor.NewRNG(seed), 0, 1)
	return t
}

func TestConvGradInput(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := NewConv2D("c", 2, 3, 3, ConvOpts{Pad: 1, Bias: true}, rng)
	x := randT(2, 2, 2, 5, 5)
	r := randT(3, 2, 3, 5, 5)
	got := analyticGradInput(conv, x, r)
	want := numGradInput(conv, x, r)
	if d := maxRelDiff(got, want); d > 2e-2 {
		t.Fatalf("conv input grad rel diff %v", d)
	}
}

func TestConvGradWeights(t *testing.T) {
	rng := tensor.NewRNG(4)
	conv := NewConv2D("c", 2, 2, 3, ConvOpts{Pad: 1, Bias: true}, rng)
	x := randT(5, 1, 2, 4, 4)
	r := randT(6, 1, 2, 4, 4)
	analyticGradInput(conv, x, r)
	analytic := conv.Weight.Grad.Clone()
	analyticBias := conv.Bias.Grad.Clone()

	eps := float32(1e-3)
	for i := range conv.Weight.W.Data {
		orig := conv.Weight.W.Data[i]
		conv.Weight.W.Data[i] = orig + eps
		fp := objective(conv, x, r)
		conv.Weight.W.Data[i] = orig - eps
		fm := objective(conv, x, r)
		conv.Weight.W.Data[i] = orig
		num := (fp - fm) / float64(2*eps)
		if math.Abs(num-float64(analytic.Data[i])) > 2e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("weight grad %d: analytic %v num %v", i, analytic.Data[i], num)
		}
	}
	for i := range conv.Bias.W.Data {
		orig := conv.Bias.W.Data[i]
		conv.Bias.W.Data[i] = orig + eps
		fp := objective(conv, x, r)
		conv.Bias.W.Data[i] = orig - eps
		fm := objective(conv, x, r)
		conv.Bias.W.Data[i] = orig
		num := (fp - fm) / float64(2*eps)
		if math.Abs(num-float64(analyticBias.Data[i])) > 2e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("bias grad %d: analytic %v num %v", i, analyticBias.Data[i], num)
		}
	}
}

func TestConvStride(t *testing.T) {
	rng := tensor.NewRNG(7)
	conv := NewConv2D("c", 1, 1, 3, ConvOpts{Stride: 2, Pad: 1}, rng)
	x := randT(8, 1, 1, 8, 8)
	out := conv.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if out.T.Shape.H != 4 || out.T.Shape.W != 4 {
		t.Fatalf("stride-2 output %v", out.T.Shape)
	}
	got := analyticGradInput(conv, x, randT(9, 1, 1, 4, 4))
	want := numGradInput(conv, x, randT(9, 1, 1, 4, 4))
	if d := maxRelDiff(got, want); d > 2e-2 {
		t.Fatalf("strided conv grad rel diff %v", d)
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1x1 input, 1x1 kernel: out = w*x (+b).
	rng := tensor.NewRNG(10)
	conv := NewConv2D("c", 1, 1, 1, ConvOpts{Bias: true}, rng)
	conv.Weight.W.Data[0] = 3
	conv.Bias.W.Data[0] = 0.5
	x := tensor.FromSlice([]float32{2}, 1, 1, 1, 1)
	out := conv.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if out.T.Data[0] != 6.5 {
		t.Fatalf("got %v, want 6.5", out.T.Data[0])
	}
}

func TestBatchNormForwardNormalizes(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	x := randT(11, 4, 3, 6, 6)
	x.Scale(5)
	out := bn.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	// Per-channel mean ~0, std ~1.
	sh := out.T.Shape
	hw := sh.H * sh.W
	for c := 0; c < 3; c++ {
		var sum, sq float64
		for n := 0; n < sh.N; n++ {
			base := (n*sh.C + c) * hw
			for i := 0; i < hw; i++ {
				v := float64(out.T.Data[base+i])
				sum += v
				sq += v * v
			}
		}
		m := float64(sh.N * hw)
		mean := sum / m
		std := math.Sqrt(sq/m - mean*mean)
		if math.Abs(mean) > 1e-5 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("channel %d: mean %v std %v", c, mean, std)
		}
	}
}

func TestBatchNormGrad(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	bn.Gamma.W.Data[0] = 1.3
	bn.Gamma.W.Data[1] = 0.7
	bn.Beta.W.Data[0] = 0.2
	x := randT(12, 2, 2, 3, 3)
	r := randT(13, 2, 2, 3, 3)
	got := analyticGradInput(bn, x, r)
	want := numGradInput(bn, x, r)
	if d := maxRelDiff(got, want); d > 2e-2 {
		t.Fatalf("batchnorm grad rel diff %v", d)
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	x := randT(14, 8, 1, 4, 4)
	for i := 0; i < 20; i++ {
		bn.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	}
	out := bn.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	// After training on the same batch repeatedly, inference output should
	// be close to train-mode output.
	trainOut := bn.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	if d := maxRelDiff(out.T, trainOut.T); d > 0.15 {
		t.Fatalf("inference/train mismatch %v", d)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	relu := NewReLU("r")
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 1, 1, 1, 4)
	out := relu.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if out.T.Data[i] != want[i] {
			t.Fatalf("forward %v", out.T.Data)
		}
	}
	grad := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 1, 4)
	dx := relu.Backward(grad)
	wantG := []float32{0, 0, 1, 0}
	for i := range wantG {
		if dx.Data[i] != wantG[i] {
			t.Fatalf("backward %v", dx.Data)
		}
	}
}

func TestReLUBackwardWithBRCMask(t *testing.T) {
	relu := NewReLU("r")
	x := tensor.FromSlice([]float32{-1, 5, 2, -3}, 1, 1, 1, 4)
	out := relu.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	// Simulate the compression hook replacing the tensor with a mask.
	mask := make([]bool, 4)
	for i, v := range out.T.Data {
		mask[i] = v > 0
	}
	out.Mask = mask
	out.T = nil
	dx := relu.Backward(tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 1, 4))
	want := []float32{0, 1, 1, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("BRC backward %v", dx.Data)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2("p")
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		1, 1, 0, 0,
		1, 9, 0, -1,
	}, 1, 1, 4, 4)
	out := p.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	want := []float32{4, 8, 9, 0}
	for i := range want {
		if out.T.Data[i] != want[i] {
			t.Fatalf("pool forward %v", out.T.Data)
		}
	}
	dx := p.Backward(tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2))
	// Gradient lands on the argmax positions.
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 3, 1) != 3 || dx.At(0, 0, 2, 2) != 4 {
		t.Fatalf("pool backward %v", dx.Data)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	p := NewGlobalAvgPool("g")
	x := randT(15, 2, 3, 4, 4)
	r := tensor.New(2, 3, 1, 1)
	r.FillNormal(tensor.NewRNG(16), 0, 1)
	got := analyticGradInput(p, x, r)
	want := numGradInput(p, x, r)
	if d := maxRelDiff(got, want); d > 1e-2 {
		t.Fatalf("gap grad rel diff %v", d)
	}
}

func TestLinearGrad(t *testing.T) {
	rng := tensor.NewRNG(17)
	l := NewLinear("fc", 12, 5, rng)
	x := randT(18, 3, 3, 2, 2)
	r := tensor.New(3, 5, 1, 1)
	r.FillNormal(tensor.NewRNG(19), 0, 1)
	got := analyticGradInput(l, x, r)
	want := numGradInput(l, x, r)
	if d := maxRelDiff(got, want); d > 2e-2 {
		t.Fatalf("linear grad rel diff %v", d)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(20)
	d := NewDropout("d", 0.5, rng)
	x := tensor.New(1, 1, 32, 32)
	x.Fill(2)
	out := d.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	zeros := 0
	for _, v := range out.T.Data {
		if v == 0 {
			zeros++
		} else if v != 4 { // 2 / keep(0.5)
			t.Fatalf("kept value %v, want 4", v)
		}
	}
	if zeros < 400 || zeros > 620 {
		t.Fatalf("dropout zeros %d out of 1024", zeros)
	}
	// Eval mode: identity.
	evalOut := d.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if evalOut.T.Data[0] != 2 {
		t.Fatal("eval mode must be identity")
	}
	// Backward routes through the kept mask.
	g := tensor.New(1, 1, 32, 32)
	g.Fill(1)
	dx := d.Backward(g)
	for i, v := range out.T.Data {
		want := float32(0)
		if v != 0 {
			want = 2
		}
		if dx.Data[i] != want {
			t.Fatalf("dropout backward at %d: %v want %v", i, dx.Data[i], want)
		}
	}
}

func TestResidualForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(21)
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, ConvOpts{Pad: 1}, rng),
		NewBatchNorm("bn1", 2),
	)
	res := NewResidual("res", body, nil)
	x := randT(22, 1, 2, 4, 4)
	r := randT(23, 1, 2, 4, 4)
	got := analyticGradInput(res, x, r)
	want := numGradInput(res, x, r)
	if d := maxRelDiff(got, want); d > 3e-2 {
		t.Fatalf("residual grad rel diff %v", d)
	}
}

func TestResidualWithProjection(t *testing.T) {
	rng := tensor.NewRNG(24)
	body := NewSequential("body",
		NewConv2D("c1", 2, 4, 3, ConvOpts{Stride: 2, Pad: 1}, rng),
	)
	proj := NewConv2D("proj", 2, 4, 1, ConvOpts{Stride: 2}, rng)
	res := NewResidual("res", body, proj)
	x := randT(25, 1, 2, 4, 4)
	out := res.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	if out.T.Shape != (tensor.Shape{N: 1, C: 4, H: 2, W: 2}) {
		t.Fatalf("projection shape %v", out.T.Shape)
	}
	if out.Kind != compress.KindConv {
		t.Fatal("sum output must be a dense conv/sum kind")
	}
}

func TestSequentialCollectsRefsAndParams(t *testing.T) {
	rng := tensor.NewRNG(26)
	seq := NewSequential("net",
		NewConv2D("c1", 1, 2, 3, ConvOpts{Pad: 1}, rng),
		NewBatchNorm("bn1", 2),
		NewReLU("r1"),
		NewConv2D("c2", 2, 2, 3, ConvOpts{Pad: 1}, rng),
	)
	x := randT(27, 1, 1, 8, 8)
	seq.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
	refs := seq.SavedRefs()
	// c1 saves input, bn1 saves conv out, r1 saves relu out, c2 saves its
	// input which IS r1's output ref (shared).
	if len(refs) != 4 {
		t.Fatalf("got %d refs", len(refs))
	}
	if refs[2] != refs[3] {
		t.Fatal("ReLU output and next conv input must share one ActRef")
	}
	if refs[2].Kind != compress.KindReLUToConv {
		t.Fatalf("shared ref kind = %v, want ReLU(to conv)", refs[2].Kind)
	}
	if len(seq.Params()) != 2+2 { // two conv weights (no bias), gamma+beta
		t.Fatalf("params %d", len(seq.Params()))
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, 0, -1, 0, 3, 0}, 2, 3, 1, 1)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 1})
	if loss < 0 || loss > 1 {
		t.Fatalf("loss %v out of expected band", loss)
	}
	// Gradient rows sum to 0.
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += float64(grad.Data[i*3+j])
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", i, sum)
		}
	}
	// Numerical check.
	eps := float32(1e-3)
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, []int{0, 1})
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, []int{0, 1})
		logits.Data[i] = orig
		num := (lp - lm) / float64(2*eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("CE grad %d: %v vs %v", i, grad.Data[i], num)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, 0, 0, 1, 0, 3}, 2, 3, 1, 1)
	if got := Accuracy(logits, []int{0, 2}); got != 1 {
		t.Fatalf("accuracy %v", got)
	}
	if got := Accuracy(logits, []int{1, 2}); got != 0.5 {
		t.Fatalf("accuracy %v", got)
	}
}

func TestMSELossGrad(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 1, 1, 1, 2)
	target := tensor.FromSlice([]float32{0, 4}, 1, 1, 1, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-2.5) > 1e-9 { // (1 + 4)/2
		t.Fatalf("loss %v", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != -2 {
		t.Fatalf("grad %v", grad.Data)
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", 1, 1, 1, 2)
	p.W.Data[0] = 1
	p.W.Data[1] = -1
	p.Grad.Data[0] = 0.5
	p.Grad.Data[1] = -0.5
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.W.Data[0]-0.95)) > 1e-6 || math.Abs(float64(p.W.Data[1]+0.95)) > 1e-6 {
		t.Fatalf("weights %v", p.W.Data)
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("grad must be zeroed")
	}
	// Momentum accumulates.
	p.Grad.Data[0] = 1
	opt2 := NewSGD(0.1, 0.9, 0)
	opt2.Step([]*Param{p})
	w1 := p.W.Data[0]
	p.Grad.Data[0] = 0 // no new gradient; momentum should still move it
	opt2.Step([]*Param{p})
	if p.W.Data[0] >= w1 {
		t.Fatal("momentum must continue moving the weight")
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := NewParam("w", 1, 1, 1, 1)
	p.W.Data[0] = 10
	opt := NewSGD(0.1, 0, 0.1)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.W.Data[0]-9.9)) > 1e-5 {
		t.Fatalf("weight decay: %v", p.W.Data[0])
	}
}

func TestNaNGuard(t *testing.T) {
	x := tensor.New(1, 1, 1, 3)
	if NaNGuard(x) {
		t.Fatal("clean tensor flagged")
	}
	x.Data[1] = float32(math.NaN())
	if !NaNGuard(x) {
		t.Fatal("NaN not detected")
	}
	x.Data[1] = float32(math.Inf(1))
	if !NaNGuard(x) {
		t.Fatal("Inf not detected")
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := tensor.NewRNG(30)
	m, k, n := 4, 5, 6
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(rng.Norm())
	}
	for i := range b {
		b[i] = float32(rng.Norm())
	}
	want := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a[i*k+kk] * b[kk*n+j]
			}
			want[i*n+j] = s
		}
	}
	got := make([]float32, m*n)
	Gemm(m, k, n, a, b, got)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("Gemm[%d] = %v want %v", i, got[i], want[i])
		}
	}
	// GemmTA: Aᵀ stored as K×M.
	at := make([]float32, k*m)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			at[kk*m+i] = a[i*k+kk]
		}
	}
	got2 := make([]float32, m*n)
	GemmTA(m, k, n, at, b, got2)
	for i := range want {
		if math.Abs(float64(got2[i]-want[i])) > 1e-4 {
			t.Fatalf("GemmTA[%d] = %v want %v", i, got2[i], want[i])
		}
	}
	// GemmTB: Bᵀ stored as N×K.
	bt := make([]float32, n*k)
	for kk := 0; kk < k; kk++ {
		for j := 0; j < n; j++ {
			bt[j*k+kk] = b[kk*n+j]
		}
	}
	got3 := make([]float32, m*n)
	GemmTB(m, k, n, a, bt, got3)
	for i := range want {
		if math.Abs(float64(got3[i]-want[i])) > 1e-4 {
			t.Fatalf("GemmTB[%d] = %v want %v", i, got3[i], want[i])
		}
	}
}

func TestTrainingReducesLossOnToyProblem(t *testing.T) {
	// A 2-class toy problem must be learnable by a tiny CNR network.
	rng := tensor.NewRNG(31)
	net := NewSequential("toy",
		NewConv2D("c1", 1, 4, 3, ConvOpts{Pad: 1}, rng),
		NewBatchNorm("bn1", 4),
		NewReLU("r1"),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 4, 2, rng),
	)
	opt := NewSGD(0.1, 0.9, 1e-4)
	dataRng := tensor.NewRNG(32)
	mkBatch := func() (*tensor.Tensor, []int) {
		x := tensor.New(8, 1, 8, 8)
		labels := make([]int, 8)
		for i := 0; i < 8; i++ {
			cl := i % 2
			labels[i] = cl
			mean := float64(cl)*2 - 1
			for j := 0; j < 64; j++ {
				x.Data[i*64+j] = float32(mean + 0.5*dataRng.Norm())
			}
		}
		return x, labels
	}
	var first, last float64
	for step := 0; step < 30; step++ {
		x, labels := mkBatch()
		out := net.Forward(&ActRef{Kind: compress.KindConv, T: x}, true)
		loss, grad := SoftmaxCrossEntropy(out.T, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if last > first*0.5 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
	x, labels := mkBatch()
	out := net.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if acc := Accuracy(out.T, labels); acc < 0.9 {
		t.Fatalf("toy accuracy %v", acc)
	}
}

func TestDepthwiseGradInput(t *testing.T) {
	rng := tensor.NewRNG(80)
	dw := NewDepthwiseConv2D("dw", 3, 3, ConvOpts{Pad: 1}, rng)
	x := randT(81, 1, 3, 5, 5)
	r := randT(82, 1, 3, 5, 5)
	got := analyticGradInput(dw, x, r)
	want := numGradInput(dw, x, r)
	if d := maxRelDiff(got, want); d > 2e-2 {
		t.Fatalf("depthwise input grad rel diff %v", d)
	}
}

func TestDepthwiseGradWeights(t *testing.T) {
	rng := tensor.NewRNG(83)
	dw := NewDepthwiseConv2D("dw", 2, 3, ConvOpts{Pad: 1}, rng)
	x := randT(84, 1, 2, 4, 4)
	r := randT(85, 1, 2, 4, 4)
	analyticGradInput(dw, x, r)
	analytic := dw.Weight.Grad.Clone()
	eps := float32(1e-3)
	for i := range dw.Weight.W.Data {
		orig := dw.Weight.W.Data[i]
		dw.Weight.W.Data[i] = orig + eps
		fp := objective(dw, x, r)
		dw.Weight.W.Data[i] = orig - eps
		fm := objective(dw, x, r)
		dw.Weight.W.Data[i] = orig
		num := (fp - fm) / float64(2*eps)
		if math.Abs(num-float64(analytic.Data[i])) > 2e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("depthwise weight grad %d: analytic %v num %v", i, analytic.Data[i], num)
		}
	}
}

func TestDepthwiseEqualsGroupedDirectConv(t *testing.T) {
	// A depthwise conv must match a full conv whose cross-channel weights
	// are zero.
	rng := tensor.NewRNG(86)
	dw := NewDepthwiseConv2D("dw", 2, 3, ConvOpts{Pad: 1}, rng)
	full := NewConv2D("full", 2, 2, 3, ConvOpts{Pad: 1}, rng)
	full.Weight.W.Zero()
	for c := 0; c < 2; c++ {
		for k := 0; k < 9; k++ {
			// full weight layout: (out=c, in=c, ky, kx)
			full.Weight.W.Data[(c*2+c)*9+k] = dw.Weight.W.Data[c*9+k]
		}
	}
	x := randT(87, 2, 2, 6, 6)
	a := dw.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	b := full.Forward(&ActRef{Kind: compress.KindConv, T: x}, false)
	if d := maxRelDiff(a.T, b.T); d > 1e-4 {
		t.Fatalf("depthwise vs zero-padded full conv: %v", d)
	}
}

func TestConvIsLinearInInput(t *testing.T) {
	// Property: conv(a + b) = conv(a) + conv(b) for bias-free convs.
	rng := tensor.NewRNG(88)
	c := NewConv2D("c", 2, 3, 3, ConvOpts{Pad: 1}, rng)
	a := randT(89, 1, 2, 6, 6)
	b := randT(90, 1, 2, 6, 6)
	sum := a.Clone()
	sum.Add(b)
	ya := c.Forward(&ActRef{Kind: compress.KindConv, T: a}, false)
	yb := c.Forward(&ActRef{Kind: compress.KindConv, T: b}, false)
	ys := c.Forward(&ActRef{Kind: compress.KindConv, T: sum}, false)
	want := ya.T.Clone()
	want.Add(yb.T)
	if d := maxRelDiff(ys.T, want); d > 1e-4 {
		t.Fatalf("conv not linear: %v", d)
	}
}
