package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Model checkpointing: parameters (and batch-norm running statistics) are
// written as a simple length-prefixed binary stream, keyed by parameter
// name so a checkpoint can be restored into a freshly-built network of
// the same architecture.

var (
	// ErrBadCheckpoint is returned when a stream cannot be parsed.
	ErrBadCheckpoint = errors.New("nn: bad checkpoint")
	checkpointMagic  = [4]byte{'J', 'A', 'C', '1'}
)

// collectState returns every named float32 vector of the network:
// learnable parameters plus batch-norm running statistics.
func collectState(root Layer) ([]string, [][]float32) {
	var names []string
	var vecs [][]float32
	var walk func(Layer)
	walk = func(l Layer) {
		switch t := l.(type) {
		case *Sequential:
			for _, c := range t.Layers {
				walk(c)
			}
			return
		case *Residual:
			walk(t.Body)
			if t.Shortcut != nil {
				walk(t.Shortcut)
			}
			return
		case *BatchNorm:
			names = append(names, t.LayerName+".running_mean", t.LayerName+".running_var")
			vecs = append(vecs, t.RunningMean, t.RunningVar)
		}
		for _, p := range l.Params() {
			names = append(names, p.Name)
			vecs = append(vecs, p.W.Data)
		}
	}
	walk(root)
	return names, vecs
}

// SaveCheckpoint writes the network state to w.
func SaveCheckpoint(w io.Writer, root Layer) error {
	names, vecs := collectState(root)
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for i, name := range names {
		if err := writeString(w, name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(vecs[i]))); err != nil {
			return err
		}
		buf := make([]byte, 4*len(vecs[i]))
		for j, v := range vecs[i] {
			binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint restores state saved by SaveCheckpoint into root, which
// must have the same architecture (same parameter names and sizes).
func LoadCheckpoint(r io.Reader, root Layer) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	if magic != checkpointMagic {
		return ErrBadCheckpoint
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	names, vecs := collectState(root)
	byName := make(map[string][]float32, len(names))
	for i, n := range names {
		byName[n] = vecs[i]
	}
	for i := uint32(0); i < count; i++ {
		name, err := readString(r)
		if err != nil {
			return err
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		dst, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint has unknown state %q: %w", name, ErrBadCheckpoint)
		}
		if len(dst) != int(n) {
			return fmt.Errorf("nn: state %q has %d values, model wants %d: %w",
				name, n, len(dst), ErrBadCheckpoint)
		}
		for j := range dst {
			dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
