package nn

import (
	"runtime"
	"testing"

	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// The parallel GEMMs partition output rows so each element is still
// accumulated in the serial k-order; the result must therefore be
// exactly (bit-for-bit) equal to the single-worker result, not merely
// close. These tests pin that for all three kernels.

func gemmTestOperands(m, k, n int, seed uint64) (a, b, c []float32) {
	r := tensor.NewRNG(seed)
	a = make([]float32, m*k)
	b = make([]float32, k*n)
	c = make([]float32, m*n)
	for i := range a {
		a[i] = float32(r.Norm())
	}
	for i := range b {
		b[i] = float32(r.Norm())
	}
	return
}

func TestGemmDeterministicAcrossWorkers(t *testing.T) {
	const m, k, n = 33, 47, 29
	kernels := []struct {
		name string
		run  func(a, b, c []float32)
	}{
		// Gemm/GemmTB index (m,k)×(k,n); GemmTA reads a as (k,m) and
		// GemmTB reads b as (n,k) — same element counts, reinterpreted.
		{"Gemm", func(a, b, c []float32) { Gemm(m, k, n, a, b, c) }},
		{"GemmTA", func(a, b, c []float32) { GemmTA(m, k, n, a, b, c) }},
		{"GemmTB", func(a, b, c []float32) { GemmTB(m, k, n, a, b, c) }},
	}
	for _, kr := range kernels {
		a, b, ref := gemmTestOperands(m, k, n, 42)
		old := parallel.SetWorkers(1)
		kr.run(a, b, ref)
		parallel.SetWorkers(old)
		for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
			got := make([]float32, m*n)
			old := parallel.SetWorkers(w)
			kr.run(a, b, got)
			parallel.SetWorkers(old)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s workers=%d: element %d = %v, serial %v (must be bit-identical)",
						kr.name, w, i, got[i], ref[i])
				}
			}
		}
	}
}
