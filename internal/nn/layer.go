// Package nn is a from-scratch CPU CNN training library: NCHW tensors,
// im2col convolution, batch normalization, ReLU, pooling, dropout,
// residual blocks, linear heads, losses and SGD. It substitutes for the
// GPU framework (Chainer) the paper evaluates on (DESIGN.md substitution
// 1) while keeping the property JPEG-ACT needs: every activation that
// must be *saved* for the backward pass is exposed through an ActRef so
// the training loop can replace it with its lossy compressed-recovered
// version, exactly like the paper's functional simulation.
package nn

import (
	"fmt"

	"jpegact/internal/compress"
	"jpegact/internal/freqdomain"
	"jpegact/internal/tensor"
)

// ActRef is one saved activation: the tensor a layer will consult during
// its backward pass. Layers that share an activation (a ReLU output that
// is also the next conv's input) share the same ActRef, so compression is
// applied once and seen by all consumers, as in a real framework's
// memory pool.
type ActRef struct {
	Name string
	Kind compress.Kind
	// T is the saved tensor. The compression hook may replace it with the
	// lossy recovered version (or nil it when only Mask is kept).
	T *tensor.Tensor
	// Mask is the BRC sign mask; when non-nil, backward passes use the
	// mask and T may be nil.
	Mask []bool
	// Coef is the decoded quantized-coefficient plane when the restore
	// was served by the frequency-domain path; T stays nil and capable
	// consumers (see CoefficientConsumer) read the plane directly. Other
	// consumers never see one: the trainer only plans coefficient
	// restores for refs whose every reader opted in.
	Coef *freqdomain.Plane
	// CompressedBytes/OriginalBytes are filled by the compression hook
	// for footprint accounting; zero until compressed.
	CompressedBytes int
	OriginalBytes   int
}

// Param is one learnable parameter with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, n, c, h, w int) *Param {
	return &Param{Name: name, W: tensor.New(n, c, h, w), Grad: tensor.New(n, c, h, w)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable network stage. Forward consumes the
// producer's ActRef (layers that need the input for backward keep the
// ref) and returns a new ActRef for its output. Backward consumes the
// output gradient and returns the input gradient, reading any saved
// activations through the (possibly compressed) refs.
type Layer interface {
	Name() string
	Forward(in *ActRef, train bool) *ActRef
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	// SavedRefs lists the activation refs this layer will read in
	// Backward. The trainer dedups shared refs before compressing.
	SavedRefs() []*ActRef
}

// Sequential chains layers.
type Sequential struct {
	LayerName string
	Layers    []Layer
	hooks     *Hooks
}

// NewSequential builds a sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{LayerName: name, Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.LayerName }

// Forward runs all layers in order. With save hooks installed (training
// mode) each child's saved refs are emitted as soon as the child has
// run, excluding the two still-live tensors: the chain's own input
// (an enclosing block may read it again) and the child's output, which
// is the next layer's input.
func (s *Sequential) Forward(in *ActRef, train bool) *ActRef {
	cur := in
	for _, l := range s.Layers {
		out := l.Forward(cur, train)
		if train && s.hooks != nil {
			emitSaved(s.hooks, l, out, in)
		}
		cur = out
	}
	return cur
}

// Backward runs all layers in reverse, announcing each leaf child's
// saved refs just before that child reads them.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		if s.hooks != nil {
			announceNeeds(s.hooks, s.Layers[i])
		}
		grad = s.Layers[i].Backward(grad)
		if s.hooks != nil {
			emitGrads(s.hooks, s.Layers[i])
		}
	}
	return grad
}

func (s *Sequential) setHooks(h *Hooks) {
	s.hooks = h
	for _, l := range s.Layers {
		SetHooks(l, h)
	}
}

func (s *Sequential) hooked() bool { return s.hooks != nil }

// Params collects all parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SavedRefs collects all saved refs.
func (s *Sequential) SavedRefs() []*ActRef {
	var out []*ActRef
	for _, l := range s.Layers {
		out = append(out, l.SavedRefs()...)
	}
	return out
}

// Add appends layers.
func (s *Sequential) Add(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// Residual computes body(x) + shortcut(x); shortcut is identity when nil
// (the ResNet basic/bottleneck block glue). The sum output is a dense
// "sum" activation in the paper's taxonomy.
type Residual struct {
	LayerName string
	Body      Layer
	Shortcut  Layer // nil = identity
	hooks     *Hooks
}

// NewResidual builds a residual block.
func NewResidual(name string, body, shortcut Layer) *Residual {
	return &Residual{LayerName: name, Body: body, Shortcut: shortcut}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.LayerName }

// Forward implements Layer.
func (r *Residual) Forward(in *ActRef, train bool) *ActRef {
	bodyOut := r.Body.Forward(in, train)
	short := in
	if r.Shortcut != nil {
		short = r.Shortcut.Forward(in, train)
	}
	if bodyOut.T.Shape != short.T.Shape {
		panic(fmt.Sprintf("nn: residual shape mismatch %v vs %v", bodyOut.T.Shape, short.T.Shape))
	}
	sum := bodyOut.T.Clone()
	sum.Add(short.T)
	return &ActRef{Name: r.LayerName + ".sum", Kind: compress.KindConv, T: sum}
}

// Backward implements Layer: the gradient flows unchanged into both the
// body and the shortcut, and the input gradients add.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.hooks != nil {
		announceNeeds(r.hooks, r.Body)
	}
	gBody := r.Body.Backward(grad.Clone())
	if r.hooks != nil {
		emitGrads(r.hooks, r.Body)
	}
	gShort := grad
	if r.Shortcut != nil {
		if r.hooks != nil {
			announceNeeds(r.hooks, r.Shortcut)
		}
		gShort = r.Shortcut.Backward(grad.Clone())
		if r.hooks != nil {
			emitGrads(r.hooks, r.Shortcut)
		}
	}
	out := gBody.Clone()
	out.Add(gShort)
	return out
}

func (r *Residual) setHooks(h *Hooks) {
	r.hooks = h
	SetHooks(r.Body, h)
	if r.Shortcut != nil {
		SetHooks(r.Shortcut, h)
	}
}

func (r *Residual) hooked() bool { return r.hooks != nil }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	out := r.Body.Params()
	if r.Shortcut != nil {
		out = append(out, r.Shortcut.Params()...)
	}
	return out
}

// SavedRefs implements Layer.
func (r *Residual) SavedRefs() []*ActRef {
	out := r.Body.SavedRefs()
	if r.Shortcut != nil {
		out = append(out, r.Shortcut.SavedRefs()...)
	}
	return out
}
