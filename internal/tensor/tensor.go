// Package tensor provides the dense NCHW float32 tensor type used
// throughout the JPEG-ACT reproduction: activations, weights, and
// gradients are all Tensors.
//
// The layout is always batch-major NCHW (batch, channel, height, width),
// the layout the paper assumes for activation offload (§III-C). A Tensor
// of lower rank is represented by setting the leading dimensions to 1,
// e.g. a bias vector of C elements is (1, C, 1, 1).
package tensor

import (
	"fmt"
	"math"
)

// Shape describes the four NCHW dimensions of a Tensor.
type Shape struct {
	N, C, H, W int
}

// Elems returns the total number of elements implied by the shape.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

func (s Shape) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", s.N, s.C, s.H, s.W)
}

// Tensor is a dense float32 tensor in NCHW layout. The zero value is an
// empty tensor; use New or FromSlice to create a usable one.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(n, c, h, w int) *Tensor {
	s := Shape{n, c, h, w}
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{Shape: s, Data: make([]float32, s.Elems())}
}

// NewLike allocates a zero-filled tensor with the same shape as t.
func NewLike(t *Tensor) *Tensor {
	return New(t.Shape.N, t.Shape.C, t.Shape.H, t.Shape.W)
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape.
func FromSlice(data []float32, n, c, h, w int) *Tensor {
	s := Shape{n, c, h, w}
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{Shape: s, Data: data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: t.Shape, Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float32 {
	return t.Data[t.Index(n, c, h, w)]
}

// Set stores v at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.Data[t.Index(n, c, h, w)] = v
}

// Index returns the flat offset of element (n, c, h, w).
func (t *Tensor) Index(n, c, h, w int) int {
	s := t.Shape
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// Elems returns the number of elements in t.
func (t *Tensor) Elems() int { return len(t.Data) }

// Bytes returns the uncompressed size of t in bytes (float32 storage).
func (t *Tensor) Bytes() int { return 4 * len(t.Data) }

// Reshape returns a view of t with a new shape holding the same number of
// elements. The underlying data is shared, mirroring the zero-copy
// NCH×W reshape the paper uses for padding (§III-C).
func (t *Tensor) Reshape(n, c, h, w int) *Tensor {
	s := Shape{n, c, h, w}
	if s.Elems() != t.Elems() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.Shape, s))
	}
	return &Tensor{Shape: s, Data: t.Data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// CopyFrom copies src's data into t. Shapes must have equal element count.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, src.Data)
}

// Add accumulates other into t elementwise.
func (t *Tensor) Add(other *Tensor) {
	if len(other.Data) != len(t.Data) {
		panic("tensor: Add size mismatch")
	}
	for i, v := range other.Data {
		t.Data[i] += v
	}
}

// AddScaled accumulates alpha*other into t elementwise.
func (t *Tensor) AddScaled(alpha float32, other *Tensor) {
	if len(other.Data) != len(t.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range other.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// MaxAbs returns the maximum absolute value over all elements.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ChannelMaxAbs returns, for each channel c, max over n,h,w of |x[n,c,h,w]|.
// This is the per-channel maximum used by SFPR's scaling factor (Eqn. 4).
//
// The reduction runs four independent accumulators per plane with the
// sign bit masked off in the integer domain; both |·| and max are exact
// operations, so the split changes no result bit relative to a serial
// scan, it only breaks the loop-carried compare dependency.
func (t *Tensor) ChannelMaxAbs() []float32 {
	const signMask = 0x7FFFFFFF
	s := t.Shape
	out := make([]float32, s.C)
	hw := s.H * s.W
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			base := (n*s.C + c) * hw
			plane := t.Data[base : base+hw]
			var m0, m1, m2, m3 float32
			i := 0
			for ; i+4 <= hw; i += 4 {
				v0 := math.Float32frombits(math.Float32bits(plane[i]) & signMask)
				v1 := math.Float32frombits(math.Float32bits(plane[i+1]) & signMask)
				v2 := math.Float32frombits(math.Float32bits(plane[i+2]) & signMask)
				v3 := math.Float32frombits(math.Float32bits(plane[i+3]) & signMask)
				if v0 > m0 {
					m0 = v0
				}
				if v1 > m1 {
					m1 = v1
				}
				if v2 > m2 {
					m2 = v2
				}
				if v3 > m3 {
					m3 = v3
				}
			}
			for ; i < hw; i++ {
				v := math.Float32frombits(math.Float32bits(plane[i]) & signMask)
				if v > m0 {
					m0 = v
				}
			}
			if m1 > m0 {
				m0 = m1
			}
			if m2 > m0 {
				m0 = m2
			}
			if m3 > m0 {
				m0 = m3
			}
			if m0 > out[c] {
				out[c] = m0
			}
		}
	}
	return out
}

// Sparsity returns the fraction of exactly-zero elements.
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(t.Data))
}

// L2Error returns the average per-element L2 error between a and b:
// |a-b|_2 / numElements, the metric of Eqn. 10.
func L2Error(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: L2Error size mismatch")
	}
	var sum float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		sum += d * d
	}
	return math.Sqrt(sum) / float64(len(a.Data))
}

// MSE returns the mean squared error between a and b.
func MSE(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: MSE size mismatch")
	}
	var sum float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		sum += d * d
	}
	return sum / float64(len(a.Data))
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	var sum float64
	for _, v := range t.Data {
		sum += float64(v)
	}
	return sum / float64(len(t.Data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	m := t.Mean()
	var sum float64
	for _, v := range t.Data {
		d := float64(v) - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(t.Data)))
}
