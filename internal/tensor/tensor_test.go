package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	s := Shape{2, 3, 4, 5}
	if got := s.Elems(); got != 120 {
		t.Fatalf("Elems = %d, want 120", got)
	}
	if !s.Valid() {
		t.Fatal("shape should be valid")
	}
	if (Shape{0, 1, 1, 1}).Valid() {
		t.Fatal("zero dim should be invalid")
	}
}

func TestNewAndIndex(t *testing.T) {
	x := New(2, 3, 4, 5)
	if x.Elems() != 120 {
		t.Fatalf("Elems = %d", x.Elems())
	}
	if x.Bytes() != 480 {
		t.Fatalf("Bytes = %d", x.Bytes())
	}
	x.Set(1, 2, 3, 4, 7)
	if x.At(1, 2, 3, 4) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	// Last element index must be Elems-1.
	if x.Index(1, 2, 3, 4) != 119 {
		t.Fatalf("Index = %d, want 119", x.Index(1, 2, 3, 4))
	}
}

func TestIndexIsRowMajorNCHW(t *testing.T) {
	x := New(2, 2, 2, 2)
	want := 0
	for n := 0; n < 2; n++ {
		for c := 0; c < 2; c++ {
			for h := 0; h < 2; h++ {
				for w := 0; w < 2; w++ {
					if got := x.Index(n, c, h, w); got != want {
						t.Fatalf("Index(%d,%d,%d,%d)=%d, want %d", n, c, h, w, got, want)
					}
					want++
				}
			}
		}
	}
}

func TestInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid shape")
		}
	}()
	New(0, 1, 1, 1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice(make([]float32, 3), 1, 1, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Fill(3)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 3, 4, 4)
	y := x.Reshape(1, 1, 24, 4)
	y.Data[5] = 42
	if x.Data[5] != 42 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(1, 1, 1, 7)
}

func TestArithmetic(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := FromSlice([]float32{10, 20, 30, 40}, 1, 1, 2, 2)
	x.Add(y)
	if x.Data[3] != 44 {
		t.Fatalf("Add: got %v", x.Data)
	}
	x.AddScaled(0.5, y)
	if x.Data[0] != 16 {
		t.Fatalf("AddScaled: got %v", x.Data)
	}
	x.Scale(2)
	if x.Data[0] != 32 {
		t.Fatalf("Scale: got %v", x.Data)
	}
}

func TestMaxAbsAndChannelMaxAbs(t *testing.T) {
	x := New(2, 2, 1, 2)
	// n0c0: {1,-5}, n0c1: {2,0}, n1c0: {0,3}, n1c1: {-7,1}
	copy(x.Data, []float32{1, -5, 2, 0, 0, 3, -7, 1})
	if x.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	cm := x.ChannelMaxAbs()
	if cm[0] != 5 || cm[1] != 7 {
		t.Fatalf("ChannelMaxAbs = %v, want [5 7]", cm)
	}
}

func TestSparsity(t *testing.T) {
	x := FromSlice([]float32{0, 1, 0, 2}, 1, 1, 1, 4)
	if got := x.Sparsity(); got != 0.5 {
		t.Fatalf("Sparsity = %v", got)
	}
}

func TestErrorsAndStats(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 1, 4)
	b := FromSlice([]float32{1, 2, 3, 8}, 1, 1, 1, 4)
	if got := MSE(a, b); got != 4 {
		t.Fatalf("MSE = %v", got)
	}
	if got := L2Error(a, b); got != 1 {
		t.Fatalf("L2Error = %v", got)
	}
	if got := a.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := a.Std(); math.Abs(got-math.Sqrt(1.25)) > 1e-9 {
		t.Fatalf("Std = %v", got)
	}
}

func TestPadForBlocksAligned(t *testing.T) {
	x := New(1, 2, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	padded, info := PadForBlocks(x, 8)
	if info.PadRows != 0 || info.PadCols != 0 {
		t.Fatalf("aligned tensor should need no padding, got %+v", info)
	}
	if info.Overhead() != 0 {
		t.Fatalf("Overhead = %v", info.Overhead())
	}
	y := UnpadFromBlocks(padded, info)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestPadForBlocksUnaligned(t *testing.T) {
	// 5x1x6x6 example from Fig. 12a: rows=30 -> pad 2, cols=6 -> pad 2.
	x := New(5, 1, 6, 6)
	r := NewRNG(1)
	x.FillNormal(r, 0, 1)
	padded, info := PadForBlocks(x, 8)
	if info.BlockRows != 32 || info.BlockCols != 8 {
		t.Fatalf("got %dx%d, want 32x8", info.BlockRows, info.BlockCols)
	}
	if len(padded) != 256 {
		t.Fatalf("padded len = %d", len(padded))
	}
	// Padding elements must be zero.
	for r := 0; r < info.BlockRows; r++ {
		for c := 6; c < 8; c++ {
			if padded[r*8+c] != 0 {
				t.Fatalf("pad col not zero at (%d,%d)", r, c)
			}
		}
	}
	y := UnpadFromBlocks(padded, info)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	if info.Overhead() <= 0 {
		t.Fatalf("expected positive overhead, got %v", info.Overhead())
	}
}

func TestPadRoundtripProperty(t *testing.T) {
	r := NewRNG(7)
	f := func(n, c, h, w uint8) bool {
		sh := Shape{int(n%4) + 1, int(c%4) + 1, int(h%12) + 1, int(w%12) + 1}
		x := New(sh.N, sh.C, sh.H, sh.W)
		x.FillNormal(r, 0, 2)
		padded, info := PadForBlocks(x, 8)
		if info.BlockRows%8 != 0 || info.BlockCols%8 != 0 {
			return false
		}
		y := UnpadFromBlocks(padded, info)
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(3)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.08 {
		t.Fatalf("norm variance = %v", variance)
	}
}

func TestFillHe(t *testing.T) {
	x := New(1, 1, 100, 100)
	x.FillHe(NewRNG(5), 50)
	std := x.Std()
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("He std = %v, want ~%v", std, want)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
