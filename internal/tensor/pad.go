package tensor

// PadInfo records how a tensor was padded for 8×8 JPEG block alignment so
// that the padding can be stripped after decompression (§III-C).
type PadInfo struct {
	Orig      Shape // shape before padding
	PadRows   int   // zero rows appended to the reshaped NCH dimension
	PadCols   int   // zero columns appended to W
	BlockRows int   // padded height in elements (NCH + PadRows)
	BlockCols int   // padded width in elements (W + PadCols)
}

// PaddedElems returns the element count after padding.
func (p PadInfo) PaddedElems() int { return p.BlockRows * p.BlockCols }

// Overhead returns the fractional storage increase caused by padding,
// e.g. 0.03 for a 3% overhead.
func (p PadInfo) Overhead() float64 {
	return float64(p.PaddedElems())/float64(p.Orig.Elems()) - 1
}

// BlockPadInfo computes the padding geometry for shape s at the given
// block size without touching any data — the paper's NCH,W padding
// scheme (Fig. 12) reduced to arithmetic. Callers that only need the
// geometry (container decode, pooled pipeline scratch) use this instead
// of materializing a tensor.
func BlockPadInfo(s Shape, block int) PadInfo {
	rows := s.N * s.C * s.H
	cols := s.W
	pr := (block - rows%block) % block
	pc := (block - cols%block) % block
	return PadInfo{
		Orig:      s,
		PadRows:   pr,
		PadCols:   pc,
		BlockRows: rows + pr,
		BlockCols: cols + pc,
	}
}

// PadForBlocks reshapes t to a 2D (NCH)×W matrix and zero-pads both
// dimensions up to a multiple of block (8 for JPEG). This follows the
// paper's NCH,W padding scheme: the 4D tensor R^{N×C×H×W} is viewed as
// R^{NCH×W} with no data movement, then padded along both reshaped
// dimensions (Fig. 12). The returned slice is row-major
// BlockRows×BlockCols.
func PadForBlocks(t *Tensor, block int) ([]float32, PadInfo) {
	s := t.Shape
	rows := s.N * s.C * s.H
	cols := s.W
	info := BlockPadInfo(s, block)
	pr, pc := info.PadRows, info.PadCols
	if pr == 0 && pc == 0 {
		// Already aligned: the reshape is free, reuse the data.
		return t.Data, info
	}
	out := make([]float32, info.BlockRows*info.BlockCols)
	for r := 0; r < rows; r++ {
		copy(out[r*info.BlockCols:r*info.BlockCols+cols], t.Data[r*cols:(r+1)*cols])
	}
	return out, info
}

// UnpadFromBlocks reverses PadForBlocks, producing a tensor with the
// original shape from the padded row-major matrix.
func UnpadFromBlocks(padded []float32, info PadInfo) *Tensor {
	s := info.Orig
	out := New(s.N, s.C, s.H, s.W)
	rows := s.N * s.C * s.H
	cols := s.W
	if info.PadRows == 0 && info.PadCols == 0 {
		copy(out.Data, padded[:rows*cols])
		return out
	}
	for r := 0; r < rows; r++ {
		copy(out.Data[r*cols:(r+1)*cols], padded[r*info.BlockCols:r*info.BlockCols+cols])
	}
	return out
}
