package tensor

import "math"

// RNG is a small deterministic PRNG (xorshift64*) used for reproducible
// weight initialization and synthetic data. It avoids math/rand so that
// streams are stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed (zero is remapped to a fixed
// non-zero constant, since xorshift requires non-zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// State returns the RNG's position in its stream, for checkpoint/replay
// (pair with SetState to rewind a dropout layer before a forward replay).
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds the RNG to a position captured by State (zero is
// remapped exactly as in NewRNG).
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// FillNormal fills t with N(mean, std²) samples.
func (t *Tensor) FillNormal(r *RNG, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(mean + std*r.Norm())
	}
}

// FillUniform fills t with uniform samples in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// FillHe applies He (Kaiming) initialization for a conv/linear weight with
// the given fan-in, the standard initialization for ReLU networks.
func (t *Tensor) FillHe(r *RNG, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	t.FillNormal(r, 0, std)
}
