// Package hw is a structural area/power cost model of the JPEG-ACT CDU
// (DESIGN.md substitution 5): each pipeline component is costed as
// primitive-circuit counts (multipliers, adders, shifters, registers,
// SRAM) times per-primitive area/power at a 15 nm-class node with the 50%
// wire overhead the paper applies, calibrated against the Synopsys
// numbers of Table IV. Design totals (Table V) compose four CDUs plus
// the shared collector/splitter and buffers.
package hw

// Primitive circuit costs (15 nm-scaled, 50% wire overhead folded in).
// Area in µm², power in mW at the interconnect clock.
const (
	areaMult16   = 1050.0 // 16-bit fixed-point multiplier (DCT datapath)
	powerMult16  = 1.30
	areaMultFP32 = 4200.0 // 2-stage fp32 multiplier (SFPR SPE)
	powerFP32    = 3.30
	areaMult8    = 180.0 // 8-bit multiplier (DIV quantizer)
	powerMult8   = 0.21
	areaAdd16    = 42.0
	powerAdd16   = 0.052
	areaShift8   = 24.0 // 8-bit 3-position barrel shifter (SH)
	powerShift8  = 0.037
	areaRegByte  = 28.0 // pipeline register, per byte
	powerRegByte = 0.024
	areaSRAMByte = 95.0 // small dual-ported SRAM, per byte
	powerSRAM    = 0.055
	areaCtl      = 9000.0 // per-component control FSM
	powerCtl     = 4.0
)

// Component is one synthesized block of the accelerator.
type Component struct {
	Name    string
	AreaUM2 float64
	PowerMW float64
}

// SFPRUnit costs the 8-SPE SFPR stage (Fig. 11): one fp32 multiplier and
// int/float converters per SPE plus staging registers.
func SFPRUnit() Component {
	const spes = 8
	conv := 2 * areaAdd16 * 4 // float_to_int + int_to_float datapaths
	area := spes*(areaMultFP32+conv) + 2*32*areaRegByte + areaCtl
	power := spes*(powerFP32+8*powerAdd16) + 2*32*powerRegByte + powerCtl
	return Component{"SFPR", area, power}
}

// DCTUnit costs the combined DCT + iDCT: eight 8-point LLM units per
// direction (11 multipliers, 29 adders each), two-pass transpose
// registers, and pipeline staging (§III-D: 88 multipliers per direction).
func DCTUnit() Component {
	const dirs = 2 // DCT and iDCT
	mults := 11 * 8 * dirs
	adds := 29 * 8 * dirs
	transposeBytes := 64 * 2 * dirs // 8×8 of 16-bit, per direction
	area := float64(mults)*areaMult16 + float64(adds)*areaAdd16 +
		float64(transposeBytes)*areaRegByte + 2*areaCtl
	power := float64(mults)*powerMult16 + float64(adds)*powerAdd16 +
		float64(transposeBytes)*powerRegByte + 2*powerCtl
	return Component{"DCT+iDCT", area, power}
}

// DIVUnit costs the JPEG-BASE division quantizer: 64 parallel 8-bit
// multipliers (divide via reciprocal) for each direction.
func DIVUnit() Component {
	area := 64*areaMult8 + 64*areaRegByte/4
	power := 64*powerMult8 + 64*powerRegByte/4
	return Component{"Quantize (DIV)", area, power}
}

// SHUnit costs the JPEG-ACT shift quantizer: 64 parallel 3-bit barrel
// shifters (Fig. 14) — the 88% area reduction over DIV.
func SHUnit() Component {
	area := 64 * areaShift8
	power := 64 * powerShift8
	return Component{"Quantize (SH)", area, power}
}

// RLEUnit costs the JPEG entropy coder and decoder: Huffman code tables
// in SRAM, barrel shifters for bit packing, and run-length state.
func RLEUnit() Component {
	const tableBytes = 2 * (12 + 162) * 2 // DC+AC code tables, enc+dec
	const barrel = 24                     // 32-bit barrel shifters
	area := tableBytes*areaSRAMByte + barrel*16*areaAdd16 + 4*areaCtl +
		64*areaRegByte
	// The entropy coder is bit-serial with near-100% toggle activity on
	// its shift network; the variable-length datapath dominates dynamic
	// power well beyond its gate count.
	const serialActivityMW = 100.0
	power := tableBytes*powerSRAM + barrel*16*powerAdd16 + 4*powerCtl +
		64*powerRegByte + serialActivityMW
	return Component{"Coding (RLE+RLD)", area, power}
}

// ZVCUnit costs the zero-value coder/decoder: mask reduction tree and a
// 64-byte packing crossbar — far simpler than the Huffman machinery.
func ZVCUnit() Component {
	area := 64*areaAdd16 + 64*areaRegByte*4 + areaCtl
	power := 64*powerAdd16 + 64*powerRegByte*4 + powerCtl
	return Component{"Coding (ZVC+ZVD)", area, power}
}

// CollectorSplitter costs the stream aggregation units (Fig. 15): the
// 256 B IFIFO and OFIFO, variable-shift alignment networks, and the
// round-robin mux across four CDUs.
func CollectorSplitter() Component {
	const fifoBytes = 2 * 256
	const alignNet = 72 * 8 // byte-steering muxes ≈ adder-equivalents
	area := fifoBytes*areaSRAMByte + alignNet*areaAdd16 + 8*areaCtl +
		2*128*areaRegByte
	// The FIFOs shift up to 72 B per cycle through the alignment network
	// at full activity; add the measured-style dynamic term.
	const fifoActivityMW = 70.0
	power := fifoBytes*powerSRAM + alignNet*powerAdd16 + 8*powerCtl +
		2*128*powerRegByte + fifoActivityMW
	return Component{"Collector+Splitter", area, power}
}

// AlignmentBuffer costs one CDU's 256 B alignment buffer plus the 64 B
// DQT store (§III-C).
func AlignmentBuffer() Component {
	bytes := 256.0 + 64
	return Component{"Alignment buffer", bytes * areaSRAMByte, bytes * powerSRAM}
}

// TableIV returns the per-component synthesis table in paper order.
func TableIV() []Component {
	return []Component{
		SFPRUnit(),
		DCTUnit(),
		DIVUnit(),
		SHUnit(),
		RLEUnit(),
		ZVCUnit(),
		CollectorSplitter(),
	}
}

// Design is a full accelerator configuration (Table V): 4 CDUs of the
// given per-CDU components plus the shared collector/splitter, buffers
// included, crossbar excluded.
type Design struct {
	Name        string
	AreaMM2     float64
	PowerW      float64
	Compression float64 // average ratio
	OffloadGBs  float64 // effective offload rate
}

const numCDU = 4

func design(name string, perCDU []Component, ratio, offloadGBs float64) Design {
	var area, power float64
	for _, c := range perCDU {
		area += c.AreaUM2 * numCDU
		power += c.PowerMW * numCDU
	}
	buf := AlignmentBuffer()
	area += buf.AreaUM2 * numCDU
	power += buf.PowerMW * numCDU
	cs := CollectorSplitter()
	area += cs.AreaUM2
	power += cs.PowerMW
	return Design{
		Name:        name,
		AreaMM2:     area / 1e6,
		PowerW:      power / 1e3,
		Compression: ratio,
		OffloadGBs:  offloadGBs,
	}
}

// TableV returns the four design points compared in Table V. Compression
// ratios and offload rates follow the paper's measured averages (offload
// = 12.8 GB/s PCIe × ratio).
func TableV() []Design {
	return []Design{
		design("cDMA+", []Component{ZVCUnit()}, 1.3, 12.8*1.3),
		design("SFPR", []Component{SFPRUnit()}, 4.0, 12.8*4.0),
		design("JPEG-BASE (jpeg80)", []Component{SFPRUnit(), DCTUnit(), DIVUnit(), RLEUnit()}, 5.8, 12.8*5.8),
		design("JPEG-ACT (optL5H)", []Component{SFPRUnit(), DCTUnit(), SHUnit(), ZVCUnit()}, 8.5, 12.8*8.5),
	}
}

// Titan V reference envelope for the <1% claims.
const (
	TitanVAreaMM2 = 815.0
	TitanVPowerW  = 250.0
)

// GPUFraction returns the design's share of the Titan V area and power.
func (d Design) GPUFraction() (areaFrac, powerFrac float64) {
	return d.AreaMM2 / TitanVAreaMM2, d.PowerW / TitanVPowerW
}
