package hw

import "testing"

// paper holds the Table IV reference values for band checks.
var paperTableIV = map[string]struct{ area, power float64 }{
	"SFPR":               {44924, 34.3},
	"DCT+iDCT":           {229118, 273.4},
	"Quantize (DIV)":     {12507, 14.4},
	"Quantize (SH)":      {1593, 2.5},
	"Coding (RLE+RLD)":   {125890, 176.0},
	"Coding (ZVC+ZVD)":   {21519, 17.1},
	"Collector+Splitter": {173445, 170.3},
}

func TestTableIVWithinBands(t *testing.T) {
	for _, c := range TableIV() {
		ref, ok := paperTableIV[c.Name]
		if !ok {
			t.Fatalf("unexpected component %q", c.Name)
		}
		if c.AreaUM2 < ref.area*0.5 || c.AreaUM2 > ref.area*2.0 {
			t.Fatalf("%s area %v outside 2x band of %v", c.Name, c.AreaUM2, ref.area)
		}
		if c.PowerMW < ref.power*0.5 || c.PowerMW > ref.power*2.0 {
			t.Fatalf("%s power %v outside 2x band of %v", c.Name, c.PowerMW, ref.power)
		}
	}
}

func TestDCTDominates(t *testing.T) {
	comps := TableIV()
	dct := comps[1]
	for _, c := range comps {
		if c.Name == dct.Name {
			continue
		}
		if c.AreaUM2 >= dct.AreaUM2 {
			t.Fatalf("%s area %v exceeds DCT %v", c.Name, c.AreaUM2, dct.AreaUM2)
		}
	}
}

func TestSHIsMuchSmallerThanDIV(t *testing.T) {
	div, sh := DIVUnit(), SHUnit()
	// Paper: SH reduces the quantizer area by 88%.
	if sh.AreaUM2 > div.AreaUM2*0.2 {
		t.Fatalf("SH area %v not ≲ 12%% of DIV %v", sh.AreaUM2, div.AreaUM2)
	}
	if sh.PowerMW >= div.PowerMW {
		t.Fatal("SH power must be below DIV")
	}
}

func TestZVCIsMuchSmallerThanRLE(t *testing.T) {
	rle, zvc := RLEUnit(), ZVCUnit()
	if zvc.AreaUM2 > rle.AreaUM2*0.35 {
		t.Fatalf("ZVC area %v not far below RLE %v", zvc.AreaUM2, rle.AreaUM2)
	}
	if zvc.PowerMW > rle.PowerMW*0.35 {
		t.Fatalf("ZVC power %v not far below RLE %v", zvc.PowerMW, rle.PowerMW)
	}
}

func TestTableVShape(t *testing.T) {
	ds := TableV()
	if len(ds) != 4 {
		t.Fatalf("designs %d", len(ds))
	}
	byName := map[string]Design{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	base := byName["JPEG-BASE (jpeg80)"]
	act := byName["JPEG-ACT (optL5H)"]
	// The CNN back-end modifications shrink area (paper: 1.3×) and power
	// (paper: 1.5×) while raising offload bandwidth.
	if r := base.AreaMM2 / act.AreaMM2; r < 1.1 || r > 2.0 {
		t.Fatalf("area reduction %v outside band", r)
	}
	if r := base.PowerW / act.PowerW; r < 1.1 || r > 2.2 {
		t.Fatalf("power reduction %v outside band", r)
	}
	if act.OffloadGBs <= base.OffloadGBs {
		t.Fatal("JPEG-ACT must offload faster")
	}
	// Compression ordering.
	if !(byName["cDMA+"].Compression < byName["SFPR"].Compression &&
		byName["SFPR"].Compression < base.Compression &&
		base.Compression < act.Compression) {
		t.Fatal("compression ordering broken")
	}
	// cDMA+ and SFPR are far cheaper than the JPEG designs.
	if byName["cDMA+"].AreaMM2 > 0.6 || byName["SFPR"].AreaMM2 > 0.6 {
		t.Fatalf("light designs too big: %v %v", byName["cDMA+"].AreaMM2, byName["SFPR"].AreaMM2)
	}
}

func TestTableVWithinBands(t *testing.T) {
	ref := map[string]struct{ power, area float64 }{
		"cDMA+":              {0.26, 0.35},
		"SFPR":               {0.35, 0.31},
		"JPEG-BASE (jpeg80)": {1.82, 2.16},
		"JPEG-ACT (optL5H)":  {1.36, 1.48},
	}
	for _, d := range TableV() {
		r := ref[d.Name]
		if d.AreaMM2 < r.area*0.4 || d.AreaMM2 > r.area*2.5 {
			t.Fatalf("%s area %v outside band of %v", d.Name, d.AreaMM2, r.area)
		}
		if d.PowerW < r.power*0.4 || d.PowerW > r.power*2.5 {
			t.Fatalf("%s power %v outside band of %v", d.Name, d.PowerW, r.power)
		}
	}
}

func TestUnderOnePercentOfGPU(t *testing.T) {
	for _, d := range TableV() {
		a, p := d.GPUFraction()
		if a >= 0.01 {
			t.Fatalf("%s area fraction %v >= 1%%", d.Name, a)
		}
		if p >= 0.01 {
			t.Fatalf("%s power fraction %v >= 1%%", d.Name, p)
		}
	}
}
