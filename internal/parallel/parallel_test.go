package parallel

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		old := SetWorkers(w)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 5000} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: bad range [%d,%d)", w, n, grain, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d hit %d times", w, n, grain, i, h)
					}
				}
			}
		}
		SetWorkers(old)
	}
}

func TestForSerialFallbackRunsInline(t *testing.T) {
	old := SetWorkers(4)
	defer SetWorkers(old)
	// A single chunk must run as one inline fn(0, n) call.
	calls := 0
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected one [0,10) call, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 inline call, got %d", calls)
	}
}

func TestSetWorkers(t *testing.T) {
	orig := Workers()
	if prev := SetWorkers(3); prev != orig {
		t.Fatalf("SetWorkers returned %d, want %d", prev, orig)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0) // restore default
	if w := Workers(); w < 1 {
		t.Fatalf("default workers = %d, want >= 1", w)
	}
	SetWorkers(orig)
}

func TestEnvOverride(t *testing.T) {
	os.Setenv(EnvWorkers, "5")
	defer os.Unsetenv(EnvWorkers)
	if got := defaultWorkers(); got != 5 {
		t.Fatalf("defaultWorkers with %s=5 = %d", EnvWorkers, got)
	}
	os.Setenv(EnvWorkers, "bogus")
	if got := defaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("defaultWorkers with bogus env = %d, want GOMAXPROCS", got)
	}
}

func TestGrain(t *testing.T) {
	if g := Grain(100, 1000); g != 10 {
		t.Fatalf("Grain(100,1000) = %d, want 10", g)
	}
	if g := Grain(10000, 100); g != 1 {
		t.Fatalf("Grain(10000,100) = %d, want 1", g)
	}
	if g := Grain(0, 100); g != 100 {
		t.Fatalf("Grain(0,100) = %d, want 100", g)
	}
}
