package parallel

import "sync"

// Pool is a persistent worker pool for pipelined work — unlike For,
// which fans one loop out and joins, a Pool keeps its goroutines alive
// across many submissions so a producer (the forward pass handing
// activations to the offload engine) never pays goroutine startup on
// the hot path. The task queue is bounded: Submit blocks when the pool
// is saturated, giving natural backpressure.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	size  int
}

// NewPool starts a pool of n workers (n <= 0 uses Workers()).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = Workers()
	}
	p := &Pool{tasks: make(chan func(), 2*n), size: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

// Submit enqueues f, blocking while the queue is full. It must not be
// called after Close.
func (p *Pool) Submit(f func()) { p.tasks <- f }

// Close stops accepting work, runs everything already queued, and waits
// for the workers to exit.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
