package parallel

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(3)
	var sum atomic.Int64
	for i := 1; i <= 100; i++ {
		i := i
		p.Submit(func() { sum.Add(int64(i)) })
	}
	p.Close()
	if got := sum.Load(); got != 5050 {
		t.Fatalf("sum %d, want 5050", got)
	}
}

func TestPoolDefaultsToWorkers(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	p := NewPool(0)
	defer p.Close()
	if p.Size() != 5 {
		t.Fatalf("size %d, want 5", p.Size())
	}
}

func TestPoolSingleWorkerIsSequential(t *testing.T) {
	p := NewPool(1)
	var order []int
	done := make(chan struct{})
	for i := 0; i < 10; i++ {
		i := i
		p.Submit(func() { order = append(order, i) })
	}
	p.Submit(func() { close(done) })
	<-done
	p.Close()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}
