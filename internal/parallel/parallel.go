// Package parallel is the repo's shared worker-pool layer: a chunked
// parallel-for over index ranges, mirroring in software the paper's
// multi-CDU hardware that processes independent 8×8 blocks round-robin
// (§V). Every hot loop in internal/nn and the compression pipeline runs
// through For, so one knob — SetWorkers or the JPEGACT_WORKERS
// environment variable — tunes the whole system.
//
// Determinism contract: For only controls *which goroutine* executes a
// chunk, never the per-index work order inside a chunk. Callers that
// write disjoint output regions per index therefore produce byte- and
// bit-identical results at any worker count, which the compression
// codec requires (a stream encoded with 8 workers must decode against
// one encoded with 1).
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides the default
// worker count (GOMAXPROCS).
const EnvWorkers = "JPEGACT_WORKERS"

var workers atomic.Int64

func init() {
	workers.Store(int64(defaultWorkers()))
}

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	return n
}

// Workers returns the current worker count.
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the global worker count and returns the previous
// value. n <= 0 restores the default (JPEGACT_WORKERS or GOMAXPROCS).
func SetWorkers(n int) int {
	if n <= 0 {
		n = defaultWorkers()
	}
	return int(workers.Swap(int64(n)))
}

// Grain returns the number of items per chunk so that one chunk carries
// at least minWork units of work, given perItem units per item. Use it
// to keep goroutine overhead negligible against the loop body.
func Grain(perItem, minWork int) int {
	if perItem <= 0 {
		perItem = 1
	}
	g := minWork / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// For splits [0, n) into chunks of grain indices (the last chunk may be
// short) and runs fn over every chunk, using up to Workers() goroutines
// (the caller's goroutine is one of them). It returns when all chunks
// are done. fn must be safe to run concurrently on disjoint ranges.
//
// Chunk boundaries depend only on n and grain — never on the worker
// count — and with a single worker (or a single chunk) fn runs inline
// as fn(0, n), so the serial and parallel paths execute the same code.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	chunks := (n + grain - 1) / grain
	if w <= 1 || chunks <= 1 {
		fn(0, n)
		return
	}
	if w > chunks {
		w = chunks
	}
	var next atomic.Int64
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 0; i < w-1; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
