package data

import (
	"errors"
	"io"

	"jpegact/internal/tensor"
)

// CIFAR-10 binary on-disk format support: one record per image, a label
// byte followed by 3072 channel-major pixel bytes (3×32×32). The offline
// reproduction cannot download the real dataset, but it can write its
// synthetic images in the real format — so downstream tooling that
// expects data_batch_*.bin files works unchanged, and a user with the
// real dataset can load it straight into the training substrate.

// ErrBadCIFAR is returned for malformed record streams.
var ErrBadCIFAR = errors.New("data: bad CIFAR record stream")

const (
	cifarChannels = 3
	cifarEdge     = 32
	cifarRecord   = 1 + cifarChannels*cifarEdge*cifarEdge
)

// pixelScale maps roughly ±3σ of the unit-variance synthetic images onto
// the byte range; the inverse restores zero-mean unit-ish floats.
const pixelScale = 42.0

func floatToPixel(v float32) byte {
	f := float64(v)*pixelScale + 128
	if f < 0 {
		f = 0
	}
	if f > 255 {
		f = 255
	}
	return byte(f + 0.5)
}

func pixelToFloat(b byte) float32 {
	return float32((float64(b) - 128) / pixelScale)
}

// SaveCIFAR writes images (N,3,32,32) and labels as CIFAR-10 binary
// records.
func SaveCIFAR(w io.Writer, images *tensor.Tensor, labels []int) error {
	sh := images.Shape
	if sh.C != cifarChannels || sh.H != cifarEdge || sh.W != cifarEdge {
		return ErrBadCIFAR
	}
	if len(labels) != sh.N {
		return ErrBadCIFAR
	}
	rec := make([]byte, cifarRecord)
	plane := cifarEdge * cifarEdge
	for n := 0; n < sh.N; n++ {
		if labels[n] < 0 || labels[n] > 255 {
			return ErrBadCIFAR
		}
		rec[0] = byte(labels[n])
		for c := 0; c < cifarChannels; c++ {
			base := (n*cifarChannels + c) * plane
			for i := 0; i < plane; i++ {
				rec[1+c*plane+i] = floatToPixel(images.Data[base+i])
			}
		}
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// LoadCIFAR reads all records from r, returning images and labels.
func LoadCIFAR(r io.Reader) (*tensor.Tensor, []int, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	if len(raw) == 0 || len(raw)%cifarRecord != 0 {
		return nil, nil, ErrBadCIFAR
	}
	n := len(raw) / cifarRecord
	images := tensor.New(n, cifarChannels, cifarEdge, cifarEdge)
	labels := make([]int, n)
	plane := cifarEdge * cifarEdge
	for i := 0; i < n; i++ {
		rec := raw[i*cifarRecord : (i+1)*cifarRecord]
		labels[i] = int(rec[0])
		for c := 0; c < cifarChannels; c++ {
			base := (i*cifarChannels + c) * plane
			for p := 0; p < plane; p++ {
				images.Data[base+p] = pixelToFloat(rec[1+c*plane+p])
			}
		}
	}
	return images, labels, nil
}

// WriteSyntheticCIFAR generates n CIFAR-sized synthetic samples from the
// classification generator and writes them in the binary format — a
// drop-in data_batch file for offline pipelines.
func WriteSyntheticCIFAR(w io.Writer, n int, classes int, seed uint64) error {
	gen := NewClassification(ClassificationConfig{
		Classes: classes, Channels: cifarChannels, H: cifarEdge, W: cifarEdge, Seed: seed,
	})
	images, labels := gen.Batch(n)
	return SaveCIFAR(w, images, labels)
}
