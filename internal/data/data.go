// Package data provides the synthetic datasets that substitute for
// CIFAR10, ImageNet and Div2k in this offline reproduction (see DESIGN.md,
// substitution 2). The generators are built to preserve the property the
// paper exploits: natural-image-like spatial correlation (a falling 1/f
// spectrum), so that DCT energy compaction — and hence JPEG-ACT's
// compression advantage — actually appears in the activations.
package data

import (
	"math"

	"jpegact/internal/tensor"
)

// Texture fills a (1,1,h,w) plane with a smoothed Gaussian random field:
// white noise convolved `passes` times with the separable binomial kernel
// [1 2 1]/4, then renormalized to zero mean and unit variance. More passes
// mean stronger spatial correlation.
func Texture(r *tensor.RNG, h, w, passes int) []float32 {
	plane := make([]float32, h*w)
	for i := range plane {
		plane[i] = float32(r.Norm())
	}
	Smooth(plane, h, w, passes)
	normalize(plane)
	return plane
}

// Smooth applies `passes` rounds of the separable [1 2 1]/4 binomial blur
// in place (replicated borders).
func Smooth(plane []float32, h, w, passes int) {
	tmp := make([]float32, h*w)
	for p := 0; p < passes; p++ {
		// Horizontal.
		for y := 0; y < h; y++ {
			row := plane[y*w : (y+1)*w]
			out := tmp[y*w : (y+1)*w]
			for x := 0; x < w; x++ {
				l, rr := x-1, x+1
				if l < 0 {
					l = 0
				}
				if rr >= w {
					rr = w - 1
				}
				out[x] = 0.25*row[l] + 0.5*row[x] + 0.25*row[rr]
			}
		}
		// Vertical.
		for y := 0; y < h; y++ {
			u, d := y-1, y+1
			if u < 0 {
				u = 0
			}
			if d >= h {
				d = h - 1
			}
			for x := 0; x < w; x++ {
				plane[y*w+x] = 0.25*tmp[u*w+x] + 0.5*tmp[y*w+x] + 0.25*tmp[d*w+x]
			}
		}
	}
}

func normalize(plane []float32) {
	var sum, sq float64
	for _, v := range plane {
		sum += float64(v)
	}
	mean := sum / float64(len(plane))
	for _, v := range plane {
		d := float64(v) - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(plane)))
	if std == 0 {
		return
	}
	for i := range plane {
		plane[i] = float32((float64(plane[i]) - mean) / std)
	}
}

// Classification is a synthetic image-classification dataset in the style
// of CIFAR10: each class has a fixed smooth template; samples are the
// template plus smooth instance noise and a random circular shift.
type Classification struct {
	Classes   int
	Channels  int
	H, W      int
	templates [][]float32 // per class per channel planes
	rng       *tensor.RNG
	noise     float64
	smooth    int
}

// ClassificationConfig parameterizes NewClassification.
type ClassificationConfig struct {
	Classes  int
	Channels int
	H, W     int
	Noise    float64 // instance noise amplitude relative to template (default 0.6)
	Smooth   int     // blur passes (default 4)
	Seed     uint64
}

// NewClassification builds the dataset generator.
func NewClassification(cfg ClassificationConfig) *Classification {
	if cfg.Noise == 0 {
		cfg.Noise = 0.6
	}
	if cfg.Smooth == 0 {
		cfg.Smooth = 4
	}
	r := tensor.NewRNG(cfg.Seed + 1)
	d := &Classification{
		Classes:  cfg.Classes,
		Channels: cfg.Channels,
		H:        cfg.H,
		W:        cfg.W,
		rng:      r,
		noise:    cfg.Noise,
		smooth:   cfg.Smooth,
	}
	for cl := 0; cl < cfg.Classes; cl++ {
		planes := make([]float32, 0, cfg.Channels*cfg.H*cfg.W)
		for ch := 0; ch < cfg.Channels; ch++ {
			planes = append(planes, Texture(r, cfg.H, cfg.W, cfg.Smooth)...)
		}
		d.templates = append(d.templates, planes)
	}
	return d
}

// Batch generates a batch of n samples, returning the images and labels.
// Labels cycle through the classes so every batch is balanced.
func (d *Classification) Batch(n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, d.Channels, d.H, d.W)
	labels := make([]int, n)
	plane := d.H * d.W
	for i := 0; i < n; i++ {
		cl := i % d.Classes
		labels[i] = cl
		dy, dx := d.rng.Intn(d.H), d.rng.Intn(d.W)
		for ch := 0; ch < d.Channels; ch++ {
			tpl := d.templates[cl][ch*plane : (ch+1)*plane]
			noise := Texture(d.rng, d.H, d.W, d.smooth)
			dst := x.Data[(i*d.Channels+ch)*plane : (i*d.Channels+ch+1)*plane]
			for y := 0; y < d.H; y++ {
				sy := (y + dy) % d.H
				for xx := 0; xx < d.W; xx++ {
					sx := (xx + dx) % d.W
					dst[y*d.W+xx] = tpl[sy*d.W+sx] + float32(d.noise)*noise[y*d.W+xx]
				}
			}
		}
	}
	return x, labels
}

// SuperRes generates Div2k-style super-resolution training pairs: the
// input is a bicubic-like blurred version of a smooth high-resolution
// texture and the target is the original (the VDSR setting with 2×
// degradation applied at the same resolution, as the paper's 64×64 random
// crops).
type SuperRes struct {
	H, W int
	rng  *tensor.RNG
}

// NewSuperRes builds the generator.
func NewSuperRes(h, w int, seed uint64) *SuperRes {
	return &SuperRes{H: h, W: w, rng: tensor.NewRNG(seed + 2)}
}

// Pair returns (input, target) batches of n single-channel patches.
func (s *SuperRes) Pair(n int) (*tensor.Tensor, *tensor.Tensor) {
	in := tensor.New(n, 1, s.H, s.W)
	out := tensor.New(n, 1, s.H, s.W)
	plane := s.H * s.W
	for i := 0; i < n; i++ {
		hr := Texture(s.rng, s.H, s.W, 3)
		lr := make([]float32, plane)
		copy(lr, hr)
		// Degrade: downsample 2× by averaging and upsample by replication,
		// then blur — the classic bicubic-LR stand-in.
		downUp(lr, s.H, s.W)
		Smooth(lr, s.H, s.W, 1)
		copy(out.Data[i*plane:(i+1)*plane], hr)
		copy(in.Data[i*plane:(i+1)*plane], lr)
	}
	return in, out
}

func downUp(plane []float32, h, w int) {
	for y := 0; y < h; y += 2 {
		for x := 0; x < w; x += 2 {
			y1, x1 := y+1, x+1
			if y1 >= h {
				y1 = y
			}
			if x1 >= w {
				x1 = x
			}
			avg := (plane[y*w+x] + plane[y*w+x1] + plane[y1*w+x] + plane[y1*w+x1]) / 4
			plane[y*w+x] = avg
			plane[y*w+x1] = avg
			plane[y1*w+x] = avg
			plane[y1*w+x1] = avg
		}
	}
}

// PSNR computes the peak signal-to-noise ratio in dB between prediction
// and target, with the peak taken as the target's dynamic range (the
// super-resolution quality metric of Table I).
func PSNR(pred, target *tensor.Tensor) float64 {
	mse := tensor.MSE(pred, target)
	if mse == 0 {
		return math.Inf(1)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range target.Data {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	peak := hi - lo
	if peak == 0 {
		peak = 1
	}
	return 10 * math.Log10(peak*peak/mse)
}
