package data

import (
	"bytes"
	"math"
	"testing"

	"jpegact/internal/tensor"
)

func TestCIFARRoundtrip(t *testing.T) {
	gen := NewClassification(ClassificationConfig{Classes: 10, Channels: 3, H: 32, W: 32, Seed: 1})
	images, labels := gen.Batch(20)
	var buf bytes.Buffer
	if err := SaveCIFAR(&buf, images, labels); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 20*3073 {
		t.Fatalf("stream length %d, want %d (CIFAR record format)", buf.Len(), 20*3073)
	}
	back, backLabels, err := LoadCIFAR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shape != images.Shape {
		t.Fatalf("shape %v", back.Shape)
	}
	for i := range labels {
		if backLabels[i] != labels[i] {
			t.Fatalf("label %d: %d vs %d", i, backLabels[i], labels[i])
		}
	}
	// Pixel quantization bounds the value error to half a pixel step.
	maxErr := 0.0
	for i := range images.Data {
		if d := math.Abs(float64(back.Data[i] - images.Data[i])); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 0.5/42+1e-6 {
		// Values beyond ±3σ clip; allow those but they must be rare.
		clipped := 0
		for i := range images.Data {
			if math.Abs(float64(back.Data[i]-images.Data[i])) > 0.5/42+1e-6 {
				clipped++
			}
		}
		if frac := float64(clipped) / float64(len(images.Data)); frac > 0.05 {
			t.Fatalf("%.1f%% of pixels clipped", frac*100)
		}
	}
}

func TestCIFARRejectsBadInputs(t *testing.T) {
	x := tensor.New(1, 1, 32, 32) // wrong channels
	var buf bytes.Buffer
	if err := SaveCIFAR(&buf, x, []int{0}); err != ErrBadCIFAR {
		t.Fatalf("want ErrBadCIFAR, got %v", err)
	}
	ok := tensor.New(1, 3, 32, 32)
	if err := SaveCIFAR(&buf, ok, []int{}); err != ErrBadCIFAR {
		t.Fatal("label count mismatch accepted")
	}
	if err := SaveCIFAR(&buf, ok, []int{999}); err != ErrBadCIFAR {
		t.Fatal("out-of-range label accepted")
	}
	if _, _, err := LoadCIFAR(bytes.NewReader([]byte{1, 2, 3})); err != ErrBadCIFAR {
		t.Fatal("partial record accepted")
	}
	if _, _, err := LoadCIFAR(bytes.NewReader(nil)); err != ErrBadCIFAR {
		t.Fatal("empty stream accepted")
	}
}

func TestWriteSyntheticCIFAR(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSyntheticCIFAR(&buf, 10, 10, 7); err != nil {
		t.Fatal(err)
	}
	images, labels, err := LoadCIFAR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if images.Shape.N != 10 || len(labels) != 10 {
		t.Fatalf("loaded %v / %d labels", images.Shape, len(labels))
	}
	// Labels must cover multiple classes (the generator cycles).
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) < 5 {
		t.Fatalf("labels cover only %d classes", len(seen))
	}
}
