package data

import (
	"jpegact/internal/dct"
	"jpegact/internal/tensor"
)

// ActivationLike generates a plane whose DCT statistics match what the
// paper measures for dense CNN activations (Fig. 2): a flat frequency
// profile with non-zero energy scattered across mid and high frequencies,
// rather than the steeply falling spectrum of natural images. It samples
// coefficients directly in the frequency domain per 8×8 block — each
// frequency is non-zero with probability density and Laplacian-ish
// amplitude amp — and inverse-transforms to the spatial domain.
//
// h and w must be multiples of 8.
func ActivationLike(r *tensor.RNG, h, w int, density, amp float64) []float32 {
	if h%8 != 0 || w%8 != 0 {
		panic("data: ActivationLike requires h, w multiples of 8")
	}
	plane := make([]float32, h*w)
	var blk dct.Block
	for by := 0; by < h/8; by++ {
		for bx := 0; bx < w/8; bx++ {
			for i := 0; i < 64; i++ {
				blk[i] = 0
				if r.Float64() < density {
					// Gaussian amplitudes: post-batch-norm conv outputs are
					// close to Gaussian, so their DCT coefficients are too.
					blk[i] = float32(amp * r.Norm())
				}
			}
			// Give DC extra weight so the block has a plausible mean.
			blk[0] = float32(amp * r.Norm() * 3)
			dct.Inverse8x8(&blk)
			for rr := 0; rr < 8; rr++ {
				for cc := 0; cc < 8; cc++ {
					plane[(by*8+rr)*w+bx*8+cc] = blk[rr*8+cc]
				}
			}
		}
	}
	return plane
}

// ActivationTensor fills an NCHW tensor with ActivationLike planes.
func ActivationTensor(r *tensor.RNG, n, c, h, w int, density, amp float64) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	plane := h * w
	for i := 0; i < n*c; i++ {
		copy(x.Data[i*plane:(i+1)*plane], ActivationLike(r, h, w, density, amp))
	}
	return x
}
