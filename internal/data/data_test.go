package data

import (
	"math"
	"testing"

	"jpegact/internal/tensor"
)

func TestTextureNormalized(t *testing.T) {
	r := tensor.NewRNG(1)
	p := Texture(r, 32, 32, 4)
	var sum, sq float64
	for _, v := range p {
		sum += float64(v)
	}
	mean := sum / float64(len(p))
	for _, v := range p {
		d := float64(v) - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(p)))
	if math.Abs(mean) > 1e-5 || math.Abs(std-1) > 1e-5 {
		t.Fatalf("mean %v std %v", mean, std)
	}
}

func TestTextureIsSpatiallyCorrelated(t *testing.T) {
	// Lag-1 autocorrelation of a smoothed field must be high; of raw
	// noise, near zero.
	r := tensor.NewRNG(2)
	smooth := Texture(r, 64, 64, 6)
	rough := Texture(r, 64, 64, 0)
	if cs, cr := lag1(smooth, 64, 64), lag1(rough, 64, 64); cs < 0.6 || math.Abs(cr) > 0.15 {
		t.Fatalf("autocorr smooth %v rough %v", cs, cr)
	}
}

func lag1(p []float32, h, w int) float64 {
	var num, den float64
	for y := 0; y < h; y++ {
		for x := 0; x+1 < w; x++ {
			num += float64(p[y*w+x]) * float64(p[y*w+x+1])
			den += float64(p[y*w+x]) * float64(p[y*w+x])
		}
	}
	return num / den
}

func TestClassificationBatch(t *testing.T) {
	d := NewClassification(ClassificationConfig{Classes: 4, Channels: 3, H: 16, W: 16, Seed: 3})
	x, labels := d.Batch(8)
	if x.Shape != (tensor.Shape{N: 8, C: 3, H: 16, W: 16}) {
		t.Fatalf("shape %v", x.Shape)
	}
	if len(labels) != 8 {
		t.Fatalf("labels %d", len(labels))
	}
	// Balanced labels.
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	for cl := 0; cl < 4; cl++ {
		if counts[cl] != 2 {
			t.Fatalf("class %d count %d", cl, counts[cl])
		}
	}
}

func TestClassificationClassesAreSeparable(t *testing.T) {
	// Same-class samples must correlate with their template more than
	// cross-class: a nearest-template classifier should beat chance well.
	d := NewClassification(ClassificationConfig{Classes: 4, Channels: 1, H: 16, W: 16, Noise: 0.4, Seed: 4})
	x, labels := d.Batch(40)
	correct := 0
	plane := 16 * 16
	for i := 0; i < 40; i++ {
		best, bestCl := math.Inf(-1), -1
		for cl := 0; cl < 4; cl++ {
			// Max correlation over circular shifts is expensive; templates
			// plus shift mean we compare energy of best alignment. Use the
			// max absolute correlation over all shifts of row 0 only as a
			// cheap proxy: instead correlate full image over all shifts.
			c := maxShiftCorr(x.Data[i*plane:(i+1)*plane], d.templates[cl], 16, 16)
			if c > best {
				best, bestCl = c, cl
			}
		}
		if bestCl == labels[i] {
			correct++
		}
	}
	if correct < 24 { // chance = 10
		t.Fatalf("nearest-template classifier got %d/40", correct)
	}
}

func maxShiftCorr(a, b []float32, h, w int) float64 {
	best := math.Inf(-1)
	for dy := 0; dy < h; dy += 2 {
		for dx := 0; dx < w; dx += 2 {
			var c float64
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					c += float64(a[y*w+x]) * float64(b[((y+dy)%h)*w+(x+dx)%w])
				}
			}
			if c > best {
				best = c
			}
		}
	}
	return best
}

func TestSuperResPair(t *testing.T) {
	s := NewSuperRes(16, 16, 5)
	in, out := s.Pair(4)
	if in.Shape != out.Shape {
		t.Fatal("shapes differ")
	}
	// The degraded input must differ from but correlate with the target.
	if tensor.MSE(in, out) == 0 {
		t.Fatal("input identical to target")
	}
	var corr, e1, e2 float64
	for i := range in.Data {
		corr += float64(in.Data[i]) * float64(out.Data[i])
		e1 += float64(in.Data[i]) * float64(in.Data[i])
		e2 += float64(out.Data[i]) * float64(out.Data[i])
	}
	if corr/math.Sqrt(e1*e2) < 0.7 {
		t.Fatalf("input/target correlation too low: %v", corr/math.Sqrt(e1*e2))
	}
}

func TestPSNR(t *testing.T) {
	a := tensor.New(1, 1, 4, 4)
	b := tensor.New(1, 1, 4, 4)
	for i := range a.Data {
		a.Data[i] = float32(i)
		b.Data[i] = float32(i)
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("identical tensors must have infinite PSNR")
	}
	b.Data[0] += 1
	p1 := PSNR(a, b)
	b.Data[0] += 9
	p2 := PSNR(a, b)
	if p1 <= p2 {
		t.Fatalf("PSNR must fall with error: %v then %v", p1, p2)
	}
}

func TestDeterminism(t *testing.T) {
	d1 := NewClassification(ClassificationConfig{Classes: 2, Channels: 1, H: 8, W: 8, Seed: 9})
	d2 := NewClassification(ClassificationConfig{Classes: 2, Channels: 1, H: 8, W: 8, Seed: 9})
	x1, _ := d1.Batch(4)
	x2, _ := d2.Batch(4)
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
}
