package train

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func tinyDataset(seed uint64) *data.Classification {
	return data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, H: 16, W: 16, Noise: 0.4, Seed: seed,
	})
}

func tinyConfig(m compress.Method) Config {
	return Config{
		Method: m, Epochs: 3, BatchesPerEpoch: 8, BatchSize: 8,
		LR: 0.05, MeasureError: true,
	}
}

func TestBaselineTrainingLearns(t *testing.T) {
	m := models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(1))
	rep := Classifier(m, tinyDataset(2), tinyConfig(compress.Baseline{}))
	if rep.Diverged {
		t.Fatal("baseline diverged")
	}
	if rep.BestScore < 0.6 {
		t.Fatalf("baseline best accuracy %v", rep.BestScore)
	}
	if rep.FinalRatio != 1 {
		t.Fatalf("baseline ratio %v", rep.FinalRatio)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("epochs %d", len(rep.Epochs))
	}
}

func TestJPEGActTrainingMatchesBaseline(t *testing.T) {
	// The headline claim: training under JPEG-ACT/optL5H converges with
	// accuracy close to uncompressed, at a much higher compression ratio.
	mkModel := func(seed uint64) *models.Model {
		return models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(seed))
	}
	base := Classifier(mkModel(3), tinyDataset(4), tinyConfig(compress.Baseline{}))
	act := Classifier(mkModel(3), tinyDataset(4), tinyConfig(compress.NewJPEGAct(quant.OptL5H())))
	if act.Diverged {
		t.Fatal("JPEG-ACT diverged")
	}
	if act.BestScore < base.BestScore-0.25 {
		t.Fatalf("JPEG-ACT accuracy %v too far below baseline %v", act.BestScore, base.BestScore)
	}
	if act.FinalRatio < 3 {
		t.Fatalf("JPEG-ACT ratio %v, want > 3", act.FinalRatio)
	}
}

func TestFootprintBreakdown(t *testing.T) {
	m := models.VGG(models.Scale{Width: 8}, 2, tensor.NewRNG(5))
	rep := Classifier(m, tinyDataset(6), tinyConfig(compress.NewJPEGAct(quant.Fixed(quant.OptL()))))
	if len(rep.Footprint) < 2 {
		t.Fatalf("footprint entries %d", len(rep.Footprint))
	}
	kinds := map[compress.Kind]bool{}
	total := 0
	for _, fe := range rep.Footprint {
		kinds[fe.Kind] = true
		total += fe.OriginalBytes
		if fe.CompressedBytes <= 0 || fe.OriginalBytes <= 0 {
			t.Fatalf("empty footprint entry %+v", fe)
		}
	}
	if !kinds[compress.KindConv] || !kinds[compress.KindPoolDropout] {
		t.Fatal("VGG must produce conv and pool/dropout footprints")
	}
	if total == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestMethodsRatioOrdering(t *testing.T) {
	// cDMA+ < SFPR ≈ 4 < JPEG-ACT on the ResNet workload (Table I shape).
	ratios := map[string]float64{}
	for _, meth := range []compress.Method{
		compress.CDMAPlus{}, compress.SFPROnly{}, compress.NewJPEGAct(quant.Fixed(quant.OptH())),
	} {
		m := models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(7))
		rep := Classifier(m, tinyDataset(8), tinyConfig(meth))
		ratios[meth.Name()] = rep.FinalRatio
	}
	if !(ratios["cDMA+"] < ratios["SFPR"] && ratios["SFPR"] < ratios["JPEG-ACT/optH"]) {
		t.Fatalf("ratio ordering violated: %v", ratios)
	}
}

func TestErrorMeasurement(t *testing.T) {
	m := models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(9))
	rep := Classifier(m, tinyDataset(10), tinyConfig(compress.NewJPEGAct(quant.Fixed(quant.OptH()))))
	if rep.Epochs[0].ActL2Error <= 0 {
		t.Fatal("error measurement missing")
	}
	base := Classifier(models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(9)),
		tinyDataset(10), tinyConfig(compress.Baseline{}))
	if base.Epochs[0].ActL2Error != 0 {
		t.Fatal("baseline must have zero activation error")
	}
}

func TestSuperResolutionTraining(t *testing.T) {
	m := models.VDSR(models.Scale{Width: 6, Blocks: 1, H: 16, W: 16}, tensor.NewRNG(11))
	ds := data.NewSuperRes(16, 16, 12)
	cfg := Config{Method: compress.NewJPEGAct(quant.OptL5H()), Epochs: 2, BatchesPerEpoch: 4, BatchSize: 2, LR: 0.01, MeasureError: true}
	rep := SuperResolution(m, ds, cfg)
	if rep.Diverged {
		t.Fatal("VDSR diverged")
	}
	if rep.BestScore < 5 {
		t.Fatalf("VDSR PSNR %v unreasonably low", rep.BestScore)
	}
	if rep.FinalRatio < 2 {
		t.Fatalf("VDSR ratio %v", rep.FinalRatio)
	}
}

func TestRunDispatch(t *testing.T) {
	cls := tinyDataset(13)
	sr := data.NewSuperRes(16, 16, 14)
	cfg := Config{Method: compress.Baseline{}, Epochs: 1, BatchesPerEpoch: 2, BatchSize: 2}
	rc := Run(models.ResNet18(models.Scale{Width: 4, Blocks: 1}, 2, tensor.NewRNG(15)), cls, sr, cfg)
	if rc.ModelName != "ResNet18" {
		t.Fatal("classifier dispatch failed")
	}
	rs := Run(models.VDSR(models.Scale{Width: 4, Blocks: 1}, tensor.NewRNG(16)), cls, sr, cfg)
	if rs.ModelName != "VDSR" {
		t.Fatal("superres dispatch failed")
	}
}

func TestAggressiveQuantizationHurtsMore(t *testing.T) {
	// A pathologically strong DQT must produce higher activation error
	// than optL — the basic rate/distortion sanity of the whole loop.
	mk := func() *models.Model {
		return models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(17))
	}
	gentle := Classifier(mk(), tinyDataset(18), tinyConfig(compress.NewJPEGAct(quant.Fixed(quant.OptL()))))
	harsh := Classifier(mk(), tinyDataset(18), tinyConfig(compress.NewJPEGAct(quant.Fixed(quant.Uniform("crush", 64, 255)))))
	if gentle.Epochs[0].ActL2Error >= harsh.Epochs[0].ActL2Error {
		t.Fatalf("gentle err %v should be below harsh err %v",
			gentle.Epochs[0].ActL2Error, harsh.Epochs[0].ActL2Error)
	}
}

func TestLRDecaySchedule(t *testing.T) {
	// A decayed run must end with smaller updates: compare final-epoch
	// loss variance proxy via the optimizer's LR state — simplest check:
	// the schedule hook fires and training still converges.
	m := models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(40))
	cfg := tinyConfig(compress.Baseline{})
	cfg.LRDecayEpochs = []int{1, 2}
	cfg.LRDecayFactor = 0.5
	rep := Classifier(m, tinyDataset(41), cfg)
	if rep.Diverged {
		t.Fatal("decayed run diverged")
	}
	if len(rep.Epochs) != cfg.Epochs {
		t.Fatalf("epochs %d", len(rep.Epochs))
	}
}

func TestHardwareMethodTrainsLikeFunctional(t *testing.T) {
	// Training under the cycle-level hardware datapath must track the
	// functional JPEG-ACT pipeline.
	mk := func() *models.Model {
		return models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(42))
	}
	sw := Classifier(mk(), tinyDataset(43), tinyConfig(compress.NewJPEGAct(quant.Fixed(quant.OptL()))))
	hwm := compress.NewHardwareJPEGACT(quant.Fixed(quant.OptL()), 4)
	hw := Classifier(mk(), tinyDataset(43), tinyConfig(hwm))
	if hw.Diverged {
		t.Fatal("hardware-path training diverged")
	}
	if hw.BestScore < sw.BestScore-0.2 {
		t.Fatalf("hardware score %v too far below functional %v", hw.BestScore, sw.BestScore)
	}
	if hwm.TotalCycles <= 0 {
		t.Fatal("no CDU cycles accounted during training")
	}
}

func TestAnnealingRescuesStrongQuantization(t *testing.T) {
	// The optL5H mechanism (§IV/§VI-B): training with a crushing DQT from
	// epoch 0 degrades accuracy; annealing the first epochs with optL
	// before switching to the same crushing table largely rescues it.
	mk := func() *models.Model {
		return models.ResNet18(models.Scale{Width: 8, Blocks: 1}, 2, tensor.NewRNG(50))
	}
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, H: 16, W: 16, Noise: 0.6, Seed: 51,
	})
	cfg := train6(compress.NewJPEGAct(quant.Fixed(quant.Uniform("crush", 64, 255))))
	fixed := Classifier(mk(), ds, cfg)
	cfg.Method = compress.NewJPEGAct(quant.Schedule{
		Name: "anneal", Early: quant.OptL(), Late: quant.Uniform("crush", 64, 255), SwitchAt: 4,
	})
	annealed := Classifier(mk(), ds, cfg)
	if annealed.BestScore < fixed.BestScore {
		t.Fatalf("annealed %v should not trail fixed-crush %v",
			annealed.BestScore, fixed.BestScore)
	}
}

func train6(m compress.Method) Config {
	return Config{Method: m, Epochs: 6, BatchesPerEpoch: 8, BatchSize: 8, LR: 0.05}
}

func TestOptimizerSelection(t *testing.T) {
	for _, name := range []string{"", "sgd", "nesterov", "adam"} {
		cfg := Config{Method: compress.Baseline{}, Epochs: 1, BatchesPerEpoch: 2, BatchSize: 4, LR: 0.01, Optimizer: name}
		m := models.ResNet18(models.Scale{Width: 4, Blocks: 1}, 2, tensor.NewRNG(70))
		rep := Classifier(m, tinyDataset(71), cfg)
		if rep.Diverged {
			t.Fatalf("optimizer %q diverged", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown optimizer accepted")
		}
	}()
	Config{Optimizer: "adagrad"}.newOptimizer()
}
