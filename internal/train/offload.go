package train

// Fault-tolerant offloaded training: instead of the functional
// compress-and-swap simulation of Classifier, every saved activation
// really crosses the (possibly faulty) GPU↔host channel as a framed
// byte buffer between forward and backward. Corrupted frames are
// detected by CRC and recovered per the configured policy; under
// PolicyRecompute the whole step's activations are re-materialized by
// replaying the forward pass from the batch input — the nearest
// activation guaranteed intact — exactly as gradient checkpointing
// would, after rewinding BatchNorm/Dropout side effects so the replay
// is bit-identical.

import (
	"fmt"
	"math"
	"time"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// OffloadOptions configures the offloaded (host-memory) training path.
type OffloadOptions struct {
	// DQT is the quantization table for the store's JPEG-ACT pipeline.
	DQT quant.DQT
	// Channel is the GPU↔host byte path (nil = clean). Pass a
	// faults.Injector to exercise the recovery machinery.
	Channel offload.Channel
	// Policy selects the corruption response (fail / retry / recompute).
	Policy offload.RecoveryPolicy
	// MaxRetries and Backoff configure the channel re-read schedule.
	MaxRetries int
	Backoff    time.Duration
	// MaxRecompute caps whole-step forward replays per batch under
	// PolicyRecompute (default 4); beyond it the step fails.
	MaxRecompute int
	// Verbose prints per-epoch fault counters from the training loop.
	Verbose bool
}

// ClassifierOffloaded trains a classification model with real host-memory
// offload through a fault-prone channel. The returned Stats hold the
// store's corruption/recovery counters; a non-nil error means a
// corruption survived the recovery policy (the Report covers the epochs
// completed up to that point).
func ClassifierOffloaded(m *models.Model, ds *data.Classification, cfg Config, oc OffloadOptions) (Report, offload.Stats, error) {
	cfg = cfg.withDefaults()
	defer cfg.applyWorkers()()
	if oc.MaxRecompute == 0 {
		oc.MaxRecompute = 4
	}
	rep := Report{ModelName: m.Name, MethodName: "JPEG-ACT/offload(" + oc.Policy.String() + ")"}
	opt := cfg.newOptimizer()

	store := offload.NewStore(oc.DQT)
	store.Channel = oc.Channel
	store.Recovery = offload.Recovery{
		Policy:     oc.Policy,
		MaxRetries: oc.MaxRetries,
		Backoff:    oc.Backoff,
	}

	valX, valY := ds.Batch(cfg.BatchSize * 8)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		maybeDecay(cfg, opt, epoch)
		var epochLoss float64
		var origSum, compSum int
		for b := 0; b < cfg.BatchesPerEpoch; b++ {
			x, labels := ds.Batch(cfg.BatchSize)
			loss, o, c, err := offloadedStep(m, store, x, labels, oc.MaxRecompute)
			if err != nil {
				return rep, store.Stats, err
			}
			epochLoss += loss
			origSum += o
			compSum += c
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				rep.Diverged = true
				return rep, store.Stats, nil
			}
			opt.Step(m.Net.Params())
		}
		stats := EpochStats{Epoch: epoch, Loss: epochLoss / float64(cfg.BatchesPerEpoch)}
		if compSum > 0 {
			stats.CompressionRatio = float64(origSum) / float64(compSum)
		}
		valOut := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: valX}, false)
		stats.Score = nn.Accuracy(valOut.T, valY)
		if nn.NaNGuard(valOut.T) {
			rep.Diverged = true
			rep.Epochs = append(rep.Epochs, stats)
			return rep, store.Stats, nil
		}
		rep.Epochs = append(rep.Epochs, stats)
		if stats.Score > rep.BestScore {
			rep.BestScore = stats.Score
		}
		rep.FinalRatio = stats.CompressionRatio
		if oc.Verbose {
			s := store.Stats
			fmt.Printf("epoch %d: offloaded=%d restored=%d corrupted=%d retried=%d recomputed=%d verified=%dB\n",
				epoch, s.Offloaded, s.Restored, s.Corrupted, s.Retried, s.Recomputed, s.BytesVerified)
		}
	}
	return rep, store.Stats, nil
}

// offloadedStep runs one training batch through the real offload path:
// forward → offload all saved refs over the channel → restore them in
// reverse-offload order (recovering per policy) → backward.
func offloadedStep(m *models.Model, store *offload.Store, x *tensor.Tensor, labels []int, maxRecompute int) (loss float64, orig, comp int, err error) {
	// Snapshot forward side effects (BN running stats, dropout RNG)
	// before the pass, so a corruption-triggered replay is bit-exact.
	pre := nn.CaptureNetState(m.Net)

	out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
	loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)

	recomputes := 0
	if store.Recovery.Policy == offload.PolicyRecompute {
		store.Recovery.Recompute = func(corrupt *nn.ActRef) error {
			if recomputes >= maxRecompute {
				return fmt.Errorf("recompute budget (%d) exhausted", maxRecompute)
			}
			recomputes++
			// Rewind side effects and replay the forward pass from the
			// batch input; the replay re-applies them identically, so
			// the network state after the replay matches post-forward.
			nn.RestoreNetState(m.Net, pre)
			m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
			// Discard the stale step and re-offload the fresh refs —
			// through the same channel, so a new fault can strike (and
			// recover) again.
			store.Reset()
			_, _, oerr := store.OffloadAll(m.Net.SavedRefs())
			return oerr
		}
		defer func() { store.Recovery.Recompute = nil }()
	}

	orig, comp, err = store.OffloadAll(m.Net.SavedRefs())
	if err != nil {
		return loss, orig, comp, err
	}
	// RestoreAll walks resident entries in reverse-offload order and
	// survives a mid-sweep recompute rebuild.
	if err := store.RestoreAll(); err != nil {
		return loss, orig, comp, err
	}

	m.Net.Backward(grad)
	return loss, orig, comp, nil
}
