package train

// Fault-tolerant offloaded training: instead of the functional
// compress-and-swap simulation of Classifier, every saved activation
// really crosses the (possibly faulty) GPU↔host channel as a framed
// byte buffer between forward and backward. Corrupted frames are
// detected by CRC and recovered per the configured policy; under
// PolicyRecompute the whole step's activations are re-materialized by
// replaying the forward pass from the batch input — the nearest
// activation guaranteed intact — exactly as gradient checkpointing
// would, after rewinding BatchNorm/Dropout side effects so the replay
// is bit-identical.
//
// With Async set, the offload engine overlaps the traffic with compute:
// save hooks stream each activation to the encode pool the moment the
// forward pass is done with it, frames are committed to the channel in
// submission order (so fault patterns match the sync path), and the
// backward pass consumes restores staged by a reverse-order prefetcher.
// Sync mode is the degenerate case of the same engine; both paths
// produce bit-identical training trajectories.

import (
	"fmt"
	"math"
	"time"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// OffloadOptions configures the offloaded (host-memory) training path.
type OffloadOptions struct {
	// DQT is the quantization table for the store's JPEG-ACT pipeline.
	DQT quant.DQT
	// Channel is the GPU↔host byte path (nil = clean). Pass a
	// faults.Injector to exercise the recovery machinery.
	Channel offload.Channel
	// Policy selects the corruption response (fail / retry / recompute).
	Policy offload.RecoveryPolicy
	// MaxRetries and Backoff configure the channel re-read schedule.
	MaxRetries int
	Backoff    time.Duration
	// MaxRecompute caps whole-step forward replays per batch under
	// PolicyRecompute (default 4); beyond it the step fails.
	MaxRecompute int
	// Async enables the pipelined engine: activations stream to the
	// host as the forward pass produces them and restores are
	// prefetched during backward. The trajectory is bit-identical to
	// sync mode.
	Async bool
	// Prefetch is the backward restore lookahead in async mode:
	// 0 = default (4), negative = strictly on-demand. The staged
	// objects are verified compressed frames, so a window a little
	// deeper than a residual block's burst of refs costs almost
	// nothing and keeps the channel busy through the bursts.
	Prefetch int
	// InFlightBytes bounds the encoded-but-uncommitted bytes held by
	// the async encode workers (0 = unlimited).
	InFlightBytes int
	// StoreAddr, when non-empty, sends the offload traffic to a shared
	// networked activation store (cmd/actstore) at this address —
	// "unix:/path/store.sock" or "tcp:host:port" — instead of the
	// in-process channel. The trajectory is bit-identical to the
	// in-process path: compression is deterministic and restores are
	// content-addressed, so only the transport differs.
	StoreAddr string
	// StoreDial overrides the store connection factory (implies
	// networked mode even with an empty StoreAddr). This is the fault
	// seam for network-transport tests: wrap the returned net.Conn to
	// drop connections mid-frame and the reconnect+resend schedule must
	// absorb it.
	StoreDial transport.Dialer
	// StoreKeyBase namespaces this trainer's keys on a shared store
	// (e.g. clientID<<32); processes with disjoint bases cannot collide.
	StoreKeyBase uint64
	// StoreTimeout bounds the total wall time one wire operation may
	// spend across its whole reconnect+resend schedule; on expiry the
	// op fails with the typed offload.ErrStoreUnavailable, which feeds
	// the circuit breaker. Each individual attempt is bounded by a
	// quarter of the budget (at least 50ms) so one stalled connection
	// cannot eat it all. 0 = unbounded (the pre-deadline behaviour).
	StoreTimeout time.Duration
	// StoreHedge arms tail-latency hedging on store GETs: a restore
	// slower than this races a second connection and the first answer
	// wins (0 = off). Purely a latency shield — the winning bytes are
	// CRC-identical either way.
	StoreHedge time.Duration
	// Breaker tunes the store's circuit breaker (zero value = enabled
	// with defaults; set Disabled to surface wire failures instead of
	// degrading). Only meaningful in networked mode.
	Breaker offload.BreakerConfig
	// StoreClient, when set, receives the built wire client before the
	// first operation — the seam chaos tests use to install op-count
	// triggers (kill a shard on the Nth PUT) via the Latency hook.
	StoreClient func(*transport.NetClient)
	// EpochEnd, when set, runs after each epoch's batches (before
	// validation) — the deterministic point where a chaos harness kills
	// or restarts the server between steps, when the store is empty.
	EpochEnd func(epoch int)
	// FreqDomain enables the frequency-domain restore path: saved
	// activations whose every consumer can read quantized DCT
	// coefficients directly (nn.CoefficientPlan) are restored as
	// coefficient planes, skipping the inverse transform. Layers outside
	// the plan restore spatially, unchanged; gradients differ from the
	// spatial path only within the documented tolerance (DESIGN.md
	// "Frequency-domain restore").
	FreqDomain bool
	// Verbose prints per-epoch fault counters from the training loop.
	Verbose bool
}

// engineConfig maps the options onto the scheduler layer.
func (oc OffloadOptions) engineConfig() offload.EngineConfig {
	prefetch := oc.Prefetch
	switch {
	case prefetch == 0:
		prefetch = 4
	case prefetch < 0:
		prefetch = 0
	}
	return offload.EngineConfig{
		Async:         oc.Async,
		Prefetch:      prefetch,
		InFlightBytes: oc.InFlightBytes,
	}
}

// ClassifierOffloaded trains a classification model with real host-memory
// offload through a fault-prone channel. The returned Stats hold the
// store's corruption/recovery counters; a non-nil error means a
// corruption survived the recovery policy (the Report covers the epochs
// completed up to that point).
func ClassifierOffloaded(m *models.Model, ds *data.Classification, cfg Config, oc OffloadOptions) (Report, offload.Stats, error) {
	cfg = cfg.withDefaults()
	defer cfg.applyWorkers()()
	if oc.MaxRecompute == 0 {
		oc.MaxRecompute = 4
	}
	rep := Report{ModelName: m.Name, MethodName: "JPEG-ACT/offload(" + oc.Policy.String() + ")"}
	if oc.Async {
		rep.MethodName = "JPEG-ACT/offload-async(" + oc.Policy.String() + ")"
	}
	opt := cfg.newOptimizer()

	store := offload.NewStore(oc.DQT)
	store.Channel = oc.Channel
	store.Recovery = offload.Recovery{
		Policy:     oc.Policy,
		MaxRetries: oc.MaxRetries,
		Backoff:    oc.Backoff,
	}
	if oc.StoreTimeout > 0 {
		store.Recovery.Deadline = oc.StoreTimeout
		opTimeout := oc.StoreTimeout / 4
		if opTimeout < 50*time.Millisecond {
			opTimeout = 50 * time.Millisecond
		}
		store.Recovery.OpTimeout = opTimeout
	}
	if oc.StoreAddr != "" || oc.StoreDial != nil {
		dial := oc.StoreDial
		if dial == nil {
			d, err := transport.DialAddr(oc.StoreAddr)
			if err != nil {
				return rep, offload.Stats{}, err
			}
			dial = d
		}
		// The client shares the store's counter block, so network faults
		// and verified bytes land in the same Stats() the caller reads.
		client := transport.NewNetClient(dial, store.Counters())
		client.OpTimeout = store.Recovery.OpTimeout
		client.Hedge = oc.StoreHedge
		if oc.StoreClient != nil {
			oc.StoreClient(client)
		}
		store.Transport = client
		store.KeyBase = oc.StoreKeyBase
		store.Breaker = oc.Breaker
		rep.MethodName += "+netstore"
	}
	defer store.Close()
	eng := offload.NewEngine(store, oc.engineConfig())
	defer eng.Close()

	valX, valY := ds.Batch(cfg.BatchSize * 8)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		maybeDecay(cfg, opt, epoch)
		var epochLoss float64
		var origSum, compSum int
		for b := 0; b < cfg.BatchesPerEpoch; b++ {
			x, labels := ds.Batch(cfg.BatchSize)
			loss, o, c, err := offloadedStep(m, eng, x, labels, oc.MaxRecompute, oc.FreqDomain)
			if err != nil {
				return rep, store.Stats(), err
			}
			epochLoss += loss
			origSum += o
			compSum += c
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				rep.Diverged = true
				return rep, store.Stats(), nil
			}
			opt.Step(m.Net.Params())
		}
		if oc.EpochEnd != nil {
			// Between steps the store is drained (every restore deletes
			// its entry), so this is the safe, reproducible point for a
			// harness to kill or restart the server.
			oc.EpochEnd(epoch)
		}
		stats := EpochStats{Epoch: epoch, Loss: epochLoss / float64(cfg.BatchesPerEpoch)}
		if compSum > 0 {
			stats.CompressionRatio = float64(origSum) / float64(compSum)
		}
		valOut := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: valX}, false)
		stats.Score = nn.Accuracy(valOut.T, valY)
		if nn.NaNGuard(valOut.T) {
			rep.Diverged = true
			rep.Epochs = append(rep.Epochs, stats)
			return rep, store.Stats(), nil
		}
		rep.Epochs = append(rep.Epochs, stats)
		if stats.Score > rep.BestScore {
			rep.BestScore = stats.Score
		}
		rep.FinalRatio = stats.CompressionRatio
		if oc.Verbose {
			s := store.Stats()
			fmt.Printf("epoch %d: offloaded=%d restored=%d corrupted=%d retried=%d recomputed=%d dropped=%d verified=%dB\n",
				epoch, s.Offloaded, s.Restored, s.Corrupted, s.Retried, s.Recomputed, s.Dropped, s.BytesVerified)
		}
	}
	return rep, store.Stats(), nil
}

// restoreAbort carries a restore failure out of the backward pass; the
// hook has no error return, so the step unwinds via panic/recover.
type restoreAbort struct{ err error }

// offloadedStep runs one training batch through the real offload path:
// forward (streaming saved refs to the engine in async mode) → barrier
// on the offload traffic → backward, restoring activations on demand or
// ahead of it via the prefetcher.
func offloadedStep(m *models.Model, eng *offload.Engine, x *tensor.Tensor, labels []int, maxRecompute int, freq bool) (loss float64, orig, comp int, err error) {
	store := eng.Store()
	// Snapshot forward side effects (BN running stats, dropout RNG)
	// before the pass, so a corruption-triggered replay is bit-exact.
	pre := nn.CaptureNetState(m.Net)
	eng.BeginStep()

	if eng.Async() {
		nn.SetHooks(m.Net, &nn.Hooks{OnSave: eng.Offload})
		defer nn.SetHooks(m.Net, nil)
	}

	out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
	var grad *tensor.Tensor
	loss, grad = nn.SoftmaxCrossEntropy(out.T, labels)

	if freq {
		// The coefficient plan is computed once per step from the refs
		// this forward produced; refs a recompute rebuild creates later
		// are absent from it and safely restore spatially. The plan and
		// any planes still attached at step end (error exits included)
		// are torn down before the next step.
		plan := nn.CoefficientPlan(m.Net)
		store.CoefPlan = func(ref *nn.ActRef) bool { return plan[ref] }
		defer func() {
			store.CoefPlan = nil
			nn.ReleaseCoefficients(m.Net.SavedRefs())
		}()
	}

	recomputes := 0
	if store.Recovery.Policy == offload.PolicyRecompute {
		store.Recovery.Recompute = func(corrupt *nn.ActRef) error {
			if recomputes >= maxRecompute {
				return fmt.Errorf("recompute budget (%d) exhausted", maxRecompute)
			}
			recomputes++
			// Rewind side effects and replay the forward pass from the
			// batch input; the replay re-applies them identically, so
			// the network state after the replay matches post-forward.
			// Hooks stay detached: the rebuilt step offloads and
			// restores synchronously (the engine has already stopped
			// its prefetcher before escalating here).
			nn.SetHooks(m.Net, nil)
			nn.RestoreNetState(m.Net, pre)
			m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
			// Discard the stale step and re-offload the fresh refs —
			// through the same channel, so a new fault can strike (and
			// recover) again.
			store.Reset()
			_, _, oerr := store.OffloadAll(m.Net.SavedRefs())
			return oerr
		}
		defer func() { store.Recovery.Recompute = nil }()
	}

	// Sweep whatever the streaming hooks had to hold back (the batch
	// input, frontier-adjacent refs), then barrier until every frame has
	// been committed to the channel.
	orig, comp, err = eng.EndForward(m.Net.SavedRefs())
	if err != nil {
		eng.Abort()
		return loss, orig, comp, err
	}
	// Sync mode restores everything here (the degenerate case); async
	// mode starts the reverse-offload-order prefetcher.
	if err := eng.PrepareBackward(); err != nil {
		eng.Abort()
		return loss, orig, comp, err
	}

	if eng.Async() {
		nn.SetHooks(m.Net, &nn.Hooks{OnNeed: func(ref *nn.ActRef) {
			if rerr := eng.Restore(ref); rerr != nil {
				panic(restoreAbort{rerr})
			}
		}})
		if err := runBackward(m, grad); err != nil {
			eng.Abort()
			return loss, orig, comp, err
		}
	} else {
		m.Net.Backward(grad)
	}
	if err := eng.EndStep(); err != nil {
		return loss, orig, comp, err
	}
	return loss, orig, comp, nil
}

// runBackward runs the backward pass, converting a restoreAbort panic
// from the OnNeed hook back into an error.
func runBackward(m *models.Model, grad *tensor.Tensor) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ra, ok := r.(restoreAbort)
			if !ok {
				panic(r)
			}
			err = ra.err
		}
	}()
	m.Net.Backward(grad)
	return nil
}
