package train

import (
	"math"
	"testing"

	"jpegact/internal/offload"
	"jpegact/internal/quant"
)

// freqRun trains the fault_test model with the frequency-domain restore
// path toggled; worker count and async mode are the axes the
// determinism tests sweep.
func freqRun(t *testing.T, freq, async bool, workers int) (Report, offload.Stats) {
	t.Helper()
	m, ds := faultModel(700)
	cfg := faultCfg()
	cfg.Workers = workers
	rep, stats, err := ClassifierOffloaded(m, ds, cfg, OffloadOptions{
		DQT: quant.OptL(), FreqDomain: freq, Async: async,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged {
		t.Fatal("diverged")
	}
	return rep, stats
}

// TestOffloadedFreqDomain pins the opt-in end to end: with FreqDomain
// set, part of the restores are served as coefficient planes (and part
// spatially — the fallback must keep covering non-capable layers), and
// the training trajectory stays within the documented 5% tolerance of
// the spatial-path run.
func TestOffloadedFreqDomain(t *testing.T) {
	spat, sstats := freqRun(t, false, false, 2)
	freq, fstats := freqRun(t, true, false, 2)

	if sstats.CoefRestores != 0 {
		t.Fatalf("spatial run served %d coefficient restores", sstats.CoefRestores)
	}
	if fstats.CoefRestores == 0 {
		t.Fatal("freq run served no coefficient restores; the plan is empty")
	}
	if fstats.CoefRestores >= fstats.Restored {
		t.Fatalf("every restore took the coefficient path (%d of %d); the spatial fallback is not exercised",
			fstats.CoefRestores, fstats.Restored)
	}
	if len(freq.Epochs) != len(spat.Epochs) {
		t.Fatalf("%d vs %d epochs", len(freq.Epochs), len(spat.Epochs))
	}
	for i := range freq.Epochs {
		fl, sl := freq.Epochs[i].Loss, spat.Epochs[i].Loss
		if math.Abs(fl-sl) > 5e-2*(1+math.Abs(sl)) {
			t.Fatalf("epoch %d loss: freq %v, spatial %v", i, fl, sl)
		}
	}
}

// TestOffloadedFreqDomainDeterministic pins run-to-run and worker-count
// bit-exactness of the freq path itself: identical losses/scores and
// identical fault counters across a re-run, across worker counts 1, 2
// and GOMAXPROCS, and between sync and async engines.
func TestOffloadedFreqDomainDeterministic(t *testing.T) {
	ref, refStats := freqRun(t, true, false, workerSet()[0])

	again, againStats := freqRun(t, true, false, workerSet()[0])
	sameEpochs(t, ref, again, "freq re-run")
	if refStats != againStats {
		t.Fatalf("stats differ across re-runs: %+v vs %+v", refStats, againStats)
	}

	for _, w := range workerSet()[1:] {
		rep, stats := freqRun(t, true, false, w)
		sameEpochs(t, ref, rep, "freq workers")
		if stats.CoefRestores != refStats.CoefRestores {
			t.Fatalf("workers=%d: CoefRestores %d vs %d", w, stats.CoefRestores, refStats.CoefRestores)
		}
	}

	asyncRep, asyncStats := freqRun(t, true, true, workerSet()[0])
	sameEpochs(t, ref, asyncRep, "freq async vs sync")
	if asyncStats.CoefRestores != refStats.CoefRestores {
		t.Fatalf("async CoefRestores %d vs sync %d", asyncStats.CoefRestores, refStats.CoefRestores)
	}
}
