// Package train runs CNN training with activation compression injected
// exactly as the paper's functional simulation does: after each forward
// pass, every saved activation is replaced by its compressed-recovered
// version (or by a BRC mask) before the backward pass reads it, so the
// approximate weight gradient of Eqn. 8 — and any resulting accuracy
// change or divergence — emerges naturally.
package train

import (
	"math"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/parallel"
	"jpegact/internal/tensor"
)

// Config parameterizes a training run.
type Config struct {
	Method          compress.Method
	Epochs          int
	BatchesPerEpoch int
	BatchSize       int
	LR              float64
	Momentum        float64
	WeightDecay     float64
	Seed            uint64
	// MeasureError also records the mean recovered-activation L2 error
	// per epoch (costs one clone per saved activation).
	MeasureError bool
	// LRDecayEpochs lists epochs at whose start the learning rate is
	// multiplied by LRDecayFactor (default 0.1) — the standard step
	// schedule the paper's training recipes use.
	LRDecayEpochs []int
	LRDecayFactor float64
	// Optimizer selects the update rule: "sgd" (default), "nesterov" or
	// "adam".
	Optimizer string
	// Workers overrides the parallel worker count for the duration of
	// the run (0 keeps the global setting: JPEGACT_WORKERS or
	// GOMAXPROCS). Results are bit-identical at any worker count.
	Workers int
}

// applyWorkers installs cfg.Workers and returns a restore func.
func (c Config) applyWorkers() func() {
	if c.Workers <= 0 {
		return func() {}
	}
	prev := parallel.SetWorkers(c.Workers)
	return func() { parallel.SetWorkers(prev) }
}

// newOptimizer builds the configured optimizer. The step-decay schedule
// only applies to the SGD variants (Adam adapts its own step sizes).
func (c Config) newOptimizer() nn.Optimizer {
	switch c.Optimizer {
	case "", "sgd":
		return nn.NewSGD(c.LR, c.Momentum, c.WeightDecay)
	case "nesterov":
		return nn.NewNesterov(c.LR, c.Momentum, c.WeightDecay)
	case "adam":
		a := nn.NewAdam(c.LR)
		a.WeightDecay = c.WeightDecay
		return a
	}
	panic("train: unknown optimizer " + c.Optimizer)
}

func (c Config) withDefaults() Config {
	if c.Method == nil {
		c.Method = compress.Baseline{}
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.BatchesPerEpoch == 0 {
		c.BatchesPerEpoch = 8
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 1e-4
	}
	return c
}

// EpochStats records one epoch of training under compression.
type EpochStats struct {
	Epoch            int
	Loss             float64
	Score            float64 // validation accuracy (Classify) or PSNR (SuperRes)
	CompressionRatio float64 // weighted over all saved activations
	ActL2Error       float64 // mean recovered-activation error (if measured)
}

// FootprintEntry aggregates offload bytes for one activation kind.
type FootprintEntry struct {
	Kind            compress.Kind
	OriginalBytes   int
	CompressedBytes int
}

// Report summarizes a full training run.
type Report struct {
	ModelName  string
	MethodName string
	Epochs     []EpochStats
	BestScore  float64
	FinalRatio float64
	Diverged   bool
	// Footprint is the per-kind byte breakdown from the final epoch
	// (the Fig. 19 data).
	Footprint []FootprintEntry
}

// compressRefs applies the method to every unique saved activation and
// returns (origBytes, compBytes, sumL2, countL2, footprint).
func compressRefs(refs []*nn.ActRef, m compress.Method, epoch int, measure bool) (int, int, float64, int, map[compress.Kind]*FootprintEntry) {
	seen := map[*nn.ActRef]bool{}
	orig, comp := 0, 0
	var sumErr float64
	nErr := 0
	foot := map[compress.Kind]*FootprintEntry{}
	for _, ref := range refs {
		if seen[ref] || ref.T == nil {
			continue
		}
		seen[ref] = true
		var before *tensor.Tensor
		if measure {
			before = ref.T.Clone()
		}
		res := m.Compress(ref.T, ref.Kind, epoch)
		ref.OriginalBytes = res.OriginalBytes
		ref.CompressedBytes = res.CompressedBytes
		orig += res.OriginalBytes
		comp += res.CompressedBytes
		fe := foot[ref.Kind]
		if fe == nil {
			fe = &FootprintEntry{Kind: ref.Kind}
			foot[ref.Kind] = fe
		}
		fe.OriginalBytes += res.OriginalBytes
		fe.CompressedBytes += res.CompressedBytes
		if res.Mask != nil {
			ref.Mask = res.Mask
			ref.T = nil
		} else {
			if measure && res.Recovered != nil {
				sumErr += tensor.L2Error(before, res.Recovered)
				nErr++
			}
			ref.T = res.Recovered
		}
	}
	return orig, comp, sumErr, nErr, foot
}

// maybeDecay applies the step LR schedule at the start of an epoch (SGD
// and Nesterov only).
func maybeDecay(cfg Config, opt nn.Optimizer, epoch int) {
	factor := cfg.LRDecayFactor
	if factor == 0 {
		factor = 0.1
	}
	for _, e := range cfg.LRDecayEpochs {
		if e != epoch {
			continue
		}
		switch o := opt.(type) {
		case *nn.SGD:
			o.LR *= factor
		case *nn.Nesterov:
			o.LR *= factor
		}
	}
}

// Classifier trains a classification model on the synthetic dataset and
// returns the per-epoch statistics.
func Classifier(m *models.Model, ds *data.Classification, cfg Config) Report {
	cfg = cfg.withDefaults()
	defer cfg.applyWorkers()()
	rep := Report{ModelName: m.Name, MethodName: cfg.Method.Name()}
	opt := cfg.newOptimizer()

	valX, valY := ds.Batch(cfg.BatchSize * 8)

	var footprint map[compress.Kind]*FootprintEntry
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		maybeDecay(cfg, opt, epoch)
		var epochLoss, errSum float64
		var origSum, compSum, errN int
		for b := 0; b < cfg.BatchesPerEpoch; b++ {
			x, labels := ds.Batch(cfg.BatchSize)
			out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
			loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)
			epochLoss += loss
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				rep.Diverged = true
				return rep
			}
			o, c, es, en, foot := compressRefs(m.Net.SavedRefs(), cfg.Method, epoch, cfg.MeasureError)
			origSum += o
			compSum += c
			errSum += es
			errN += en
			footprint = foot
			m.Net.Backward(grad)
			opt.Step(m.Net.Params())
		}
		stats := EpochStats{
			Epoch: epoch,
			Loss:  epochLoss / float64(cfg.BatchesPerEpoch),
		}
		if compSum > 0 {
			stats.CompressionRatio = float64(origSum) / float64(compSum)
		}
		if errN > 0 {
			stats.ActL2Error = errSum / float64(errN)
		}
		valOut := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: valX}, false)
		stats.Score = nn.Accuracy(valOut.T, valY)
		if nn.NaNGuard(valOut.T) {
			rep.Diverged = true
			rep.Epochs = append(rep.Epochs, stats)
			return rep
		}
		rep.Epochs = append(rep.Epochs, stats)
		if stats.Score > rep.BestScore {
			rep.BestScore = stats.Score
		}
		rep.FinalRatio = stats.CompressionRatio
	}
	rep.Footprint = sortedFootprint(footprint)
	return rep
}

// SuperResolution trains the VDSR model on synthetic pairs, scoring PSNR.
func SuperResolution(m *models.Model, ds *data.SuperRes, cfg Config) Report {
	cfg = cfg.withDefaults()
	defer cfg.applyWorkers()()
	rep := Report{ModelName: m.Name, MethodName: cfg.Method.Name()}
	opt := cfg.newOptimizer()

	valIn, valTgt := ds.Pair(cfg.BatchSize * 2)

	var footprint map[compress.Kind]*FootprintEntry
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		maybeDecay(cfg, opt, epoch)
		var epochLoss, errSum float64
		var origSum, compSum, errN int
		for b := 0; b < cfg.BatchesPerEpoch; b++ {
			in, tgt := ds.Pair(cfg.BatchSize)
			out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: in}, true)
			loss, grad := nn.MSELoss(out.T, tgt)
			epochLoss += loss
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				rep.Diverged = true
				return rep
			}
			o, c, es, en, foot := compressRefs(m.Net.SavedRefs(), cfg.Method, epoch, cfg.MeasureError)
			origSum += o
			compSum += c
			errSum += es
			errN += en
			footprint = foot
			m.Net.Backward(grad)
			opt.Step(m.Net.Params())
		}
		stats := EpochStats{Epoch: epoch, Loss: epochLoss / float64(cfg.BatchesPerEpoch)}
		if compSum > 0 {
			stats.CompressionRatio = float64(origSum) / float64(compSum)
		}
		if errN > 0 {
			stats.ActL2Error = errSum / float64(errN)
		}
		valOut := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: valIn}, false)
		stats.Score = data.PSNR(valOut.T, valTgt)
		if nn.NaNGuard(valOut.T) {
			rep.Diverged = true
			rep.Epochs = append(rep.Epochs, stats)
			return rep
		}
		rep.Epochs = append(rep.Epochs, stats)
		if stats.Score > rep.BestScore {
			rep.BestScore = stats.Score
		}
		rep.FinalRatio = stats.CompressionRatio
	}
	rep.Footprint = sortedFootprint(footprint)
	return rep
}

func sortedFootprint(m map[compress.Kind]*FootprintEntry) []FootprintEntry {
	var out []FootprintEntry
	for _, k := range []compress.Kind{compress.KindConv, compress.KindReLUToConv, compress.KindReLUToOther, compress.KindPoolDropout} {
		if fe, ok := m[k]; ok {
			out = append(out, *fe)
		}
	}
	return out
}

// Run dispatches on the model's task.
func Run(m *models.Model, cls *data.Classification, sr *data.SuperRes, cfg Config) Report {
	if m.Task == models.SuperRes {
		return SuperResolution(m, sr, cfg)
	}
	return Classifier(m, cls, cfg)
}
