package train

// Deterministic data-parallel training: K replica workers each run
// forward/backward on a disjoint share of a step's microbatches and
// exchange compressed gradients through the activation-store transport
// (in-process Local or the networked store), with a fixed-order exact
// all-reduce that makes the final weights bit-identical for any K.
//
// The determinism contract, piece by piece:
//
//   - A step is always the same M microbatches, drawn centrally by the
//     driver from the sequential data stream. K only controls which
//     worker runs which microbatch (round-robin, m % K), never what
//     the microbatches are.
//   - Every microbatch forward starts from the step-start side-effect
//     snapshot, with the dropout RNG positions salted by the
//     microbatch index (nn.SaltNetState) — so microbatch m draws the
//     same dropout masks no matter which worker runs it, and BN
//     statistics are anchored to the step start for all of them.
//   - Per-microbatch gradients cross the transport as framed chunks
//     under the gradient key namespace (transport.GradKey). The
//     reducer fetches them back in microbatch order 0..M-1 and
//     accumulates in that fixed order — float32 addition is
//     deterministic, only its order varies, and here it doesn't.
//   - The reduced gradient is published once (slot 0) and every
//     replica imports the same bytes, scales by 1/M exactly once, and
//     steps its own optimizer. Identical weights + identical gradients
//     + identical optimizer state stay identical forever.
//   - The step's canonical post-forward state is microbatch 0's (the
//     "lead" microbatch, always worker 0's first), adopted by every
//     replica before the import — so BN running stats and RNG
//     positions also evolve identically for any K.
//
// The default gradient codec is lossless (frame.CodecGradRaw), making
// the bit-exactness hold by construction; the error-bounded quantized
// codec (frame.CodecGradQuant) is opt-in and keeps the K-invariance
// (quantization is deterministic) while trading gradient precision for
// wire bytes.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload/codec"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// DPOptions configures the data-parallel trainer.
type DPOptions struct {
	// Replicas is K, the worker count (default 1). Each worker is a
	// goroutine holding its own full model replica and optimizer.
	Replicas int
	// Microbatches is M, the fixed number of microbatches per step
	// (default 4). Each draws cfg.BatchSize examples. The trajectory
	// depends on M but never on Replicas; Replicas must not exceed M.
	Microbatches int
	// GradCodec selects the gradient wire codec: frame.CodecGradRaw
	// (default, lossless) or frame.CodecGradQuant (error-bounded int8).
	GradCodec frame.Codec
	// StoreDial, when set, exchanges gradients through a networked
	// activation store instead of the in-process transport. Every
	// worker and the reducer gets its own connection.
	StoreDial transport.Dialer
	// StoreTimeout bounds one exchange operation's whole retry
	// schedule (0 = unbounded); StoreHedge arms tail-latency hedging
	// on gradient fetches.
	StoreTimeout time.Duration
	StoreHedge   time.Duration
	// ClientHook observes every wire client built (chaos harnesses
	// install op-count kill triggers here).
	ClientHook func(*transport.NetClient)
	// Verbose prints per-epoch exchange counters.
	Verbose bool
}

func (dp DPOptions) withDefaults() DPOptions {
	if dp.Replicas <= 0 {
		dp.Replicas = 1
	}
	if dp.Microbatches <= 0 {
		dp.Microbatches = 4
	}
	if dp.GradCodec == 0 {
		dp.GradCodec = frame.CodecGradRaw
	}
	return dp
}

// gradChunkElems bounds one gradient frame to 2^16 float32 values
// (256 KiB raw) — far under the frame caps and, with 12 chunk bits,
// enough for 268M-parameter networks.
const gradChunkElems = 1 << 16

// gradExchange moves one goroutine's gradient vectors through a
// transport as framed chunks. Not safe for concurrent use — each
// worker and the reducer owns one.
type gradExchange struct {
	tr       transport.Transport
	pipe     codec.Pipeline
	codec    frame.Codec
	tag      uint64
	retry    transport.Retry
	counters *transport.Counters
}

func chunkCount(n int) int { return (n + gradChunkElems - 1) / gradChunkElems }

// put ships flat as chunked frames under (step, slot).
func (g *gradExchange) put(step, slot uint64, flat []float32) error {
	for c := 0; c*gradChunkElems < len(flat); c++ {
		lo := c * gradChunkElems
		hi := lo + gradChunkElems
		if hi > len(flat) {
			hi = len(flat)
		}
		x := tensor.New(1, 1, 1, hi-lo)
		copy(x.Data, flat[lo:hi])
		enc, err := g.pipe.EncodeGradient(g.codec, x)
		if err != nil {
			return err
		}
		b := frame.EncodeFrame(enc.Frame)
		if _, err := g.tr.Put(transport.GradKey(g.tag, step, slot, uint64(c)), b, g.retry); err != nil {
			return fmt.Errorf("grad put step=%d slot=%d chunk=%d: %w", step, slot, c, err)
		}
		g.counters.GradPuts.Add(1)
		g.counters.BytesGrad.Add(int64(len(b)))
	}
	return nil
}

// get fetches the n-element vector stored under (step, slot) back into
// dst (len n).
func (g *gradExchange) get(step, slot uint64, dst []float32) error {
	off := 0
	for c := 0; off < len(dst); c++ {
		f, err := g.tr.Get(transport.GradKey(g.tag, step, slot, uint64(c)), g.retry, false)
		if err != nil {
			return fmt.Errorf("grad get step=%d slot=%d chunk=%d: %w", step, slot, c, err)
		}
		x, err := g.pipe.Decode(f)
		if err != nil {
			return fmt.Errorf("grad decode step=%d slot=%d chunk=%d: %w", step, slot, c, err)
		}
		if off+x.Elems() > len(dst) {
			return fmt.Errorf("grad get step=%d slot=%d: chunks exceed %d elements", step, slot, len(dst))
		}
		copy(dst[off:], x.Data)
		off += x.Elems()
		g.counters.GradGets.Add(1)
		g.counters.BytesGrad.Add(int64(f.EncodedSize()))
	}
	return nil
}

// del releases (step, slot)'s chunks, best-effort.
func (g *gradExchange) del(step, slot uint64, n int) {
	for c := 0; c < chunkCount(n); c++ {
		g.tr.Delete(transport.GradKey(g.tag, step, slot, uint64(c)))
	}
}

// dpReplica is one worker's private world: model, optimizer, exchange.
type dpReplica struct {
	model *models.Model
	opt   nn.Optimizer
	gx    *gradExchange
	flat  []float32 // scratch: this replica's flattened gradient
}

// ClassifierDataParallel trains a classification model across
// dp.Replicas workers with compressed gradient exchange over the
// activation-store transport. newModel must build identical replicas
// on every call (seed the weight RNG inside it); it is called K times.
// The returned snapshot aggregates the exchange counters of every
// client. Final weights are bit-identical for any Replicas value.
func ClassifierDataParallel(newModel func() *models.Model, ds *data.Classification, cfg Config, dp DPOptions) (Report, transport.Snapshot, error) {
	cfg = cfg.withDefaults()
	dp = dp.withDefaults()
	defer cfg.applyWorkers()()
	if dp.Replicas > dp.Microbatches {
		return Report{}, transport.Snapshot{}, fmt.Errorf("train: %d replicas exceed %d microbatches", dp.Replicas, dp.Microbatches)
	}
	K, M := dp.Replicas, dp.Microbatches

	counters := &transport.Counters{}
	retry := transport.Retry{Attempts: 8, Backoff: time.Millisecond, Total: dp.StoreTimeout}
	if dp.StoreTimeout > 0 {
		opTimeout := dp.StoreTimeout / 4
		if opTimeout < 50*time.Millisecond {
			opTimeout = 50 * time.Millisecond
		}
		retry.OpTimeout = opTimeout
	}
	var shared transport.Transport
	if dp.StoreDial == nil {
		// One in-process backend shared by every worker (it is
		// mutex-guarded); closing it once at the end suffices.
		shared = transport.NewLocal(nil, counters)
		defer shared.Close()
	}
	newTransport := func() transport.Transport {
		if shared != nil {
			return shared
		}
		c := transport.NewNetClient(dp.StoreDial, counters)
		c.OpTimeout = retry.OpTimeout
		c.Hedge = dp.StoreHedge
		if dp.ClientHook != nil {
			dp.ClientHook(c)
		}
		return c
	}
	tag := transport.GradTag(cfg.Seed)
	pipe := codec.New(quant.OptL()) // DQT unused by gradient codecs
	newExchange := func() *gradExchange {
		return &gradExchange{tr: newTransport(), pipe: pipe, codec: dp.GradCodec, tag: tag, retry: retry, counters: counters}
	}

	reps := make([]*dpReplica, K)
	for k := range reps {
		reps[k] = &dpReplica{model: newModel(), opt: cfg.newOptimizer(), gx: newExchange()}
	}
	gradSize := nn.GradSize(reps[0].model.Net)
	for k, r := range reps {
		if nn.GradSize(r.model.Net) != gradSize {
			return Report{}, counters.Snapshot(), fmt.Errorf("train: replica %d gradient size differs — newModel is not deterministic", k)
		}
		r.flat = make([]float32, gradSize)
	}
	if shared == nil {
		for _, r := range reps {
			defer r.gx.tr.Close()
		}
	}
	reducer := newExchange()
	if shared == nil {
		defer reducer.tr.Close()
	}

	rep := Report{
		ModelName:  reps[0].model.Name,
		MethodName: fmt.Sprintf("dp(K=%d,M=%d,%s)", K, M, dp.GradCodec),
	}
	if dp.StoreDial != nil {
		rep.MethodName += "+netstore"
	}

	valX, valY := ds.Batch(cfg.BatchSize * 8)

	microX := make([]*tensor.Tensor, M)
	microY := make([][]int, M)
	losses := make([]float64, M)
	reduced := make([]float32, gradSize)
	mbVec := make([]float32, gradSize)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, r := range reps {
			maybeDecay(cfg, r.opt, epoch)
		}
		var epochLoss float64
		for b := 0; b < cfg.BatchesPerEpoch; b++ {
			step := uint64(epoch*cfg.BatchesPerEpoch + b)
			// The driver draws all M microbatches in order — the data
			// stream is sequential, so this is what pins the trajectory
			// to M rather than K.
			for m := 0; m < M; m++ {
				microX[m], microY[m] = ds.Batch(cfg.BatchSize)
			}

			// Phase 1: every worker runs its share of microbatches and
			// publishes each microbatch gradient.
			var lead nn.NetState // microbatch 0's post-forward state
			errs := make([]error, K)
			var wg sync.WaitGroup
			for k := 0; k < K; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					r := reps[k]
					pre := nn.CaptureNetState(r.model.Net)
					for m := k; m < M; m += K {
						nn.RestoreNetState(r.model.Net, nn.SaltNetState(pre, uint64(m)))
						for _, p := range r.model.Net.Params() {
							p.ZeroGrad()
						}
						out := r.model.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: microX[m]}, true)
						loss, grad := nn.SoftmaxCrossEntropy(out.T, microY[m])
						losses[m] = loss
						r.model.Net.Backward(grad)
						nn.FlattenGrads(r.model.Net, r.flat)
						if err := r.gx.put(step, uint64(m+1), r.flat); err != nil {
							errs[k] = err
							return
						}
						if m == 0 {
							lead = nn.CaptureNetState(r.model.Net)
						}
					}
				}(k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return rep, counters.Snapshot(), err
				}
			}

			// Phase 2: fixed-order exact reduction. Microbatch order
			// 0..M-1, element-wise float32 accumulation — the one order
			// every K produces.
			for i := range reduced {
				reduced[i] = 0
			}
			for m := 0; m < M; m++ {
				if err := reducer.get(step, uint64(m+1), mbVec); err != nil {
					return rep, counters.Snapshot(), err
				}
				for i, v := range mbVec {
					reduced[i] += v
				}
			}
			if err := reducer.put(step, 0, reduced); err != nil {
				return rep, counters.Snapshot(), err
			}
			for m := 0; m < M; m++ {
				reducer.del(step, uint64(m+1), gradSize)
			}

			// Phase 3: every replica adopts the lead state, imports the
			// reduced gradient (scaled 1/M exactly once) and steps.
			scale := 1 / float32(M)
			for k := 0; k < K; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					r := reps[k]
					nn.RestoreNetState(r.model.Net, lead)
					if err := r.gx.get(step, 0, r.flat); err != nil {
						errs[k] = err
						return
					}
					nn.ImportGrads(r.model.Net, r.flat, scale)
					r.opt.Step(r.model.Net.Params())
				}(k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return rep, counters.Snapshot(), err
				}
			}
			reducer.del(step, 0, gradSize)

			stepLoss := 0.0
			for _, l := range losses {
				stepLoss += l
			}
			stepLoss /= float64(M)
			epochLoss += stepLoss
			if math.IsNaN(stepLoss) || math.IsInf(stepLoss, 0) {
				rep.Diverged = true
				return rep, counters.Snapshot(), nil
			}
		}

		stats := EpochStats{Epoch: epoch, Loss: epochLoss / float64(cfg.BatchesPerEpoch)}
		valOut := reps[0].model.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: valX}, false)
		stats.Score = nn.Accuracy(valOut.T, valY)
		if nn.NaNGuard(valOut.T) {
			rep.Diverged = true
			rep.Epochs = append(rep.Epochs, stats)
			return rep, counters.Snapshot(), nil
		}
		rep.Epochs = append(rep.Epochs, stats)
		if stats.Score > rep.BestScore {
			rep.BestScore = stats.Score
		}
		if dp.Verbose {
			s := counters.Snapshot()
			fmt.Printf("epoch %d: loss=%.4f acc=%.3f grad_puts=%d grad_gets=%d grad_bytes=%d retried=%d reconnects=%d\n",
				epoch, stats.Loss, stats.Score, s.GradPuts, s.GradGets, s.BytesGrad, s.Retried, s.Reconnects)
		}
	}
	return rep, counters.Snapshot(), nil
}

// DPFinalWeights flattens a trained model's parameters for element-wise
// comparison across runs — the bit-exactness check the drivers and
// tests share. Callers keep a reference to replica 0's model by
// recording the first value their newModel factory returns.
func DPFinalWeights(m *models.Model) []float32 {
	var out []float32
	for _, p := range m.Net.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}
