package train

// Deterministic data-parallel training: K replica workers each run
// forward/backward on a disjoint share of a step's microbatches and
// exchange compressed gradients through the activation-store transport
// (in-process Local or the networked store), with a fixed-order exact
// all-reduce that makes the final weights bit-identical for any K.
//
// Since PR 10 the exchange is *backward-overlapped and bucketed*,
// DDP-style: each worker partitions its flat gradient into fixed-size
// buckets (nn.BucketPlan — bucket == wire chunk) and ships each bucket
// with an asynchronous pipelined PUT the moment backward has finalized
// every parameter inside it, which — backward running in reverse
// network order — means tail-of-network buckets are on the wire while
// the head of the network is still differentiating. The reducer runs
// concurrently with the workers from the start of the step: it issues
// pipelined GETs in one fixed global order (chunk descending to follow
// the production order, microbatch ascending within a chunk), gated on
// an in-process readiness board that publishes each PUT's server
// acknowledgment, and drains completions through a FIFO reorder buffer
// in exactly the issue order. Overlap therefore changes wall time only:
// every gradient element is still accumulated microbatch 0..M-1, the
// same float32 op order the serial exchange used, for any K and any
// bucket size.
//
// The rest of the determinism contract, piece by piece:
//
//   - A step is always the same M microbatches, drawn centrally by the
//     driver from the sequential data stream. K only controls which
//     worker runs which microbatch (round-robin, m % K), never what
//     the microbatches are.
//   - Every microbatch forward starts from the step-start side-effect
//     snapshot, with the dropout RNG positions salted by the
//     microbatch index (nn.SaltNetState) — so microbatch m draws the
//     same dropout masks no matter which worker runs it, and BN
//     statistics are anchored to the step start for all of them.
//   - Per-microbatch gradients cross the transport as framed chunks
//     under the gradient key namespace (transport.GradKey), one chunk
//     per bucket, so the wire format is the PR-9 one unchanged.
//   - The reduced gradient is published once (slot 0) and every
//     replica imports the same bytes, scales by 1/M exactly once, and
//     steps its own optimizer. Identical weights + identical gradients
//     + identical optimizer state stay identical forever.
//   - The step's canonical post-forward state is microbatch 0's (the
//     "lead" microbatch, always worker 0's first), adopted by every
//     replica before the import — so BN running stats and RNG
//     positions also evolve identically for any K.
//
// The default gradient codec is lossless (frame.CodecGradRaw), making
// the bit-exactness hold by construction; the error-bounded quantized
// codec (frame.CodecGradQuant) is opt-in and keeps the K-invariance
// (quantization is deterministic) while trading gradient precision for
// wire bytes.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload/codec"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// DPOptions configures the data-parallel trainer.
type DPOptions struct {
	// Replicas is K, the worker count (default 1). Each worker is a
	// goroutine holding its own full model replica and optimizer.
	Replicas int
	// Microbatches is M, the fixed number of microbatches per step
	// (default 4). Each draws cfg.BatchSize examples. The trajectory
	// depends on M but never on Replicas; Replicas must not exceed M.
	Microbatches int
	// GradCodec selects the gradient wire codec: frame.CodecGradRaw
	// (default, lossless) or frame.CodecGradQuant (error-bounded int8).
	GradCodec frame.Codec
	// BucketBytes sets the gradient bucket size in raw float32 bytes
	// (default 256 KiB). A bucket is one wire chunk: smaller buckets
	// leave backward earlier (finer overlap) but cost more frames.
	// The value never affects the result, only the schedule.
	BucketBytes int
	// Window bounds each networked exchange client's asynchronous
	// in-flight window (default 8; 1 degenerates to stop-and-wait).
	Window int
	// SerialExchange disables the backward-overlapped bucketed
	// exchange and replays the PR-9 serial schedule — flatten, put
	// every chunk stop-and-wait after backward completes, reduce only
	// once every worker has finished — as the baseline the bench
	// driver measures overlap against. The float32 accumulation order
	// is identical either way, so the trained weights match exactly.
	SerialExchange bool
	// StoreDial, when set, exchanges gradients through a networked
	// activation store instead of the in-process transport. Every
	// worker and the reducer gets its own connection.
	StoreDial transport.Dialer
	// StoreTimeout bounds one exchange operation's whole retry
	// schedule (0 = unbounded); StoreHedge arms tail-latency hedging
	// on gradient fetches.
	StoreTimeout time.Duration
	StoreHedge   time.Duration
	// ClientHook observes every wire client built (chaos harnesses
	// install op-count kill triggers here).
	ClientHook func(*transport.NetClient)
	// Verbose prints per-epoch exchange counters.
	Verbose bool
}

func (dp DPOptions) withDefaults() DPOptions {
	if dp.Replicas <= 0 {
		dp.Replicas = 1
	}
	if dp.Microbatches <= 0 {
		dp.Microbatches = 4
	}
	if dp.GradCodec == 0 {
		dp.GradCodec = frame.CodecGradRaw
	}
	if dp.BucketBytes <= 0 {
		dp.BucketBytes = 4 * gradChunkElems
	}
	if dp.Window <= 0 {
		dp.Window = 8
	}
	if dp.SerialExchange {
		// The baseline schedule is PR 9 verbatim: stop-and-wait wire ops.
		dp.Window = 1
	}
	return dp
}

// gradChunkElems is the default bucket/chunk capacity: 2^16 float32
// values (256 KiB raw) — far under the frame caps and, with 12 chunk
// bits, enough for 268M-parameter networks.
const gradChunkElems = 1 << 16

// gradExchange moves one goroutine's gradient vectors through a
// transport as framed chunks. Not safe for concurrent use — each
// worker and the reducer owns one. Encode and decode go through pooled
// per-chunk scratch buffers: the exchange runs once per chunk per
// microbatch per step, so fresh allocations here were measurable churn.
type gradExchange struct {
	tr       transport.Pipelined
	pipe     codec.Pipeline
	codec    frame.Codec
	tag      uint64
	retry    transport.Retry
	window   int
	chunk    int // bucket capacity in elements
	counters *transport.Counters

	encBuf []float32 // pooled encode staging (chunk elems)
	decBuf []float32 // pooled decode staging (chunk elems)
}

func (g *gradExchange) chunkCount(n int) int { return (n + g.chunk - 1) / g.chunk }

// chunkSpan returns chunk c's half-open element range in an n-element
// vector.
func (g *gradExchange) chunkSpan(c, n int) (lo, hi int) {
	lo = c * g.chunk
	hi = lo + g.chunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// encodeChunk frames flat's chunk c through the pooled staging tensor.
// The returned bytes are freshly allocated (the wire retains them for
// resends); the staging buffer is reusable as soon as this returns.
func (g *gradExchange) encodeChunk(flat []float32, c int) ([]byte, error) {
	lo, hi := g.chunkSpan(c, len(flat))
	n := hi - lo
	if cap(g.encBuf) < n {
		g.encBuf = make([]float32, n)
	}
	x := &tensor.Tensor{Shape: tensor.Shape{N: 1, C: 1, H: 1, W: n}, Data: g.encBuf[:n]}
	copy(x.Data, flat[lo:hi])
	enc, err := g.pipe.EncodeGradient(g.codec, x)
	if err != nil {
		return nil, err
	}
	return frame.EncodeFrame(enc.Frame), nil
}

// putTicket tracks one async chunk PUT until its acknowledgment.
type putTicket struct {
	c    int
	size int
	h    *transport.Pending
}

// awaitPut settles one PUT ticket, counting the landed chunk.
func (g *gradExchange) awaitPut(step, slot uint64, t putTicket) error {
	if _, err := t.h.PutResult(); err != nil {
		return fmt.Errorf("grad put step=%d slot=%d chunk=%d: %w", step, slot, t.c, err)
	}
	g.counters.GradPuts.Add(1)
	g.counters.BytesGrad.Add(int64(t.size))
	return nil
}

// put ships flat as chunked frames under (step, slot), keeping up to
// window chunk PUTs in flight.
func (g *gradExchange) put(step, slot uint64, flat []float32) error {
	var fifo []putTicket
	abandon := func(err error) error {
		for _, t := range fifo {
			t.h.Err() // drain so no handle outlives the call
		}
		return err
	}
	for c := 0; c*g.chunk < len(flat); c++ {
		b, err := g.encodeChunk(flat, c)
		if err != nil {
			return abandon(err)
		}
		for len(fifo) >= g.window {
			t := fifo[0]
			fifo = fifo[1:]
			if err := g.awaitPut(step, slot, t); err != nil {
				return abandon(err)
			}
		}
		h := g.tr.PutAsync(transport.GradKey(g.tag, step, slot, uint64(c)), b, g.retry)
		fifo = append(fifo, putTicket{c, len(b), h})
	}
	for len(fifo) > 0 {
		t := fifo[0]
		fifo = fifo[1:]
		if err := g.awaitPut(step, slot, t); err != nil {
			return abandon(err)
		}
	}
	return nil
}

// decodeChunkInto settles one GET handle and decodes the chunk into
// dst, reporting the encoded byte count.
func (g *gradExchange) decodeChunkInto(step, slot uint64, c int, h *transport.Pending, dst []float32) error {
	f, err := h.GetResult()
	if err != nil {
		return fmt.Errorf("grad get step=%d slot=%d chunk=%d: %w", step, slot, c, err)
	}
	if f.Shape.Elems() != len(dst) {
		return fmt.Errorf("grad get step=%d slot=%d chunk=%d: %d values, want %d", step, slot, c, f.Shape.Elems(), len(dst))
	}
	if err := g.pipe.DecodeGradientInto(f, dst); err != nil {
		return fmt.Errorf("grad decode step=%d slot=%d chunk=%d: %w", step, slot, c, err)
	}
	g.counters.GradGets.Add(1)
	g.counters.BytesGrad.Add(int64(f.EncodedSize()))
	return nil
}

// getTicket tracks one async chunk GET until its frame arrives.
type getTicket struct {
	m, c int
	h    *transport.Pending
}

// get fetches the vector stored under (step, slot) back into dst,
// keeping up to window chunk GETs in flight and decoding straight into
// dst's chunk spans.
func (g *gradExchange) get(step, slot uint64, dst []float32) error {
	var fifo []getTicket
	abandon := func(err error) error {
		for _, t := range fifo {
			t.h.Err()
		}
		return err
	}
	drain := func() error {
		t := fifo[0]
		fifo = fifo[1:]
		lo, hi := g.chunkSpan(t.c, len(dst))
		return g.decodeChunkInto(step, slot, t.c, t.h, dst[lo:hi])
	}
	for c := 0; c*g.chunk < len(dst); c++ {
		for len(fifo) >= g.window {
			if err := drain(); err != nil {
				return abandon(err)
			}
		}
		h := g.tr.GetAsync(transport.GradKey(g.tag, step, slot, uint64(c)), g.retry, false)
		fifo = append(fifo, getTicket{0, c, h})
	}
	for len(fifo) > 0 {
		if err := drain(); err != nil {
			return abandon(err)
		}
	}
	return nil
}

// del releases (step, slot)'s chunks, best-effort.
func (g *gradExchange) del(step, slot uint64, n int) {
	for c := 0; c < g.chunkCount(n); c++ {
		g.tr.Delete(transport.GradKey(g.tag, step, slot, uint64(c)))
	}
}

// gradBoard publishes worker PUT acknowledgments to the streaming
// reducer: a GET for (microbatch, chunk) issued before the server
// acknowledged the worker's PUT would race a terminal NotFound, so the
// reducer gates each issue on the board. fail wakes every waiter with
// the first error so neither side can deadlock on a dead peer.
type gradBoard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready map[[2]int]bool
	err   error
}

func newGradBoard() *gradBoard {
	b := &gradBoard{ready: map[[2]int]bool{}}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *gradBoard) reset() {
	b.mu.Lock()
	for k := range b.ready {
		delete(b.ready, k)
	}
	b.err = nil
	b.mu.Unlock()
}

func (b *gradBoard) publish(m, c int) {
	b.mu.Lock()
	b.ready[[2]int{m, c}] = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *gradBoard) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *gradBoard) wait(m, c int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.ready[[2]int{m, c}] && b.err == nil {
		b.cond.Wait()
	}
	return b.err
}

// reduceStreaming zeroes reduced and accumulates all M microbatch
// vectors of step into it, running concurrently with the workers that
// produce them. GETs are issued in one fixed global order — chunk
// descending (tail buckets are published first, since backward runs in
// reverse network order), microbatch ascending within a chunk — each
// gated on the board, and completions drain through the FIFO reorder
// buffer in exactly the issue order. Per gradient element the float32
// adds therefore happen microbatch 0..M-1, the same order the serial
// reduction used, regardless of K, bucket size or wire timing.
func (g *gradExchange) reduceStreaming(board *gradBoard, step uint64, M int, reduced []float32) error {
	for i := range reduced {
		reduced[i] = 0
	}
	if cap(g.decBuf) < g.chunk {
		g.decBuf = make([]float32, g.chunk)
	}
	var fifo []getTicket
	abandon := func(err error) error {
		for _, t := range fifo {
			t.h.Err()
		}
		return err
	}
	drain := func() error {
		t := fifo[0]
		fifo = fifo[1:]
		lo, hi := g.chunkSpan(t.c, len(reduced))
		buf := g.decBuf[:hi-lo]
		if err := g.decodeChunkInto(step, uint64(t.m+1), t.c, t.h, buf); err != nil {
			return err
		}
		acc := reduced[lo:hi]
		for i, v := range buf {
			acc[i] += v
		}
		return nil
	}
	for c := g.chunkCount(len(reduced)) - 1; c >= 0; c-- {
		for m := 0; m < M; m++ {
			if err := board.wait(m, c); err != nil {
				return abandon(err)
			}
			for len(fifo) >= g.window {
				if err := drain(); err != nil {
					return abandon(err)
				}
			}
			h := g.tr.GetAsync(transport.GradKey(g.tag, step, uint64(m+1), uint64(c)), g.retry, false)
			fifo = append(fifo, getTicket{m, c, h})
		}
	}
	for len(fifo) > 0 {
		if err := drain(); err != nil {
			return abandon(err)
		}
	}
	return nil
}

// dpReplica is one worker's private world: model, optimizer, exchange,
// bucket plan.
type dpReplica struct {
	model *models.Model
	opt   nn.Optimizer
	gx    *gradExchange
	plan  *nn.BucketPlan
	flat  []float32 // scratch: this replica's flattened gradient
}

// runMicrobatchOverlapped differentiates microbatch m and ships its
// gradient buckets as backward produces them: the OnGrad hook copies
// each finalized parameter into the flat vector and launches an async
// PUT for every bucket that just completed; a waiter goroutine settles
// the acknowledgments in issue order and publishes them to the board.
// A post-backward sweep covers any parameters the hook did not see
// (topologies outside the container walk), so every bucket always
// ships exactly once.
func (r *dpReplica) runMicrobatchOverlapped(step uint64, m int, board *gradBoard, putWG *sync.WaitGroup, grad *tensor.Tensor) error {
	slot := uint64(m + 1)
	tickets := make(chan putTicket, r.plan.Buckets())
	gx := r.gx
	putWG.Add(1)
	go func() {
		for t := range tickets {
			if err := gx.awaitPut(step, slot, t); err != nil {
				board.fail(err)
				for rest := range tickets {
					rest.h.Err()
				}
				break
			}
			board.publish(m, t.c)
		}
		putWG.Done()
	}()
	var hookErr error
	flush := func(buckets []int) {
		for _, c := range buckets {
			if hookErr != nil {
				return
			}
			b, err := r.gx.encodeChunk(r.flat, c)
			if err != nil {
				hookErr = err
				return
			}
			h := r.gx.tr.PutAsync(transport.GradKey(r.gx.tag, step, slot, uint64(c)), b, r.gx.retry)
			tickets <- putTicket{c, len(b), h}
		}
	}
	hooks := &nn.Hooks{OnGrad: func(p *nn.Param) {
		off, ok := r.plan.Offset(p)
		if !ok {
			return
		}
		copy(r.flat[off:off+p.Grad.Elems()], p.Grad.Data)
		flush(r.plan.Produce(p))
	}}
	r.plan.Reset()
	nn.SetHooks(r.model.Net, hooks)
	r.model.Net.Backward(grad)
	nn.SetHooks(r.model.Net, nil)
	// Safety sweep: anything backward finalized without an OnGrad event.
	for _, p := range r.plan.Unproduced() {
		off, _ := r.plan.Offset(p)
		copy(r.flat[off:off+p.Grad.Elems()], p.Grad.Data)
		flush(r.plan.Produce(p))
	}
	close(tickets)
	if hookErr != nil {
		board.fail(hookErr)
		return hookErr
	}
	return nil
}

// ClassifierDataParallel trains a classification model across
// dp.Replicas workers with compressed gradient exchange over the
// activation-store transport. newModel must build identical replicas
// on every call (seed the weight RNG inside it); it is called K times.
// The returned snapshot aggregates the exchange counters of every
// client. Final weights are bit-identical for any Replicas value, any
// BucketBytes, and with SerialExchange on or off.
func ClassifierDataParallel(newModel func() *models.Model, ds *data.Classification, cfg Config, dp DPOptions) (Report, transport.Snapshot, error) {
	cfg = cfg.withDefaults()
	dp = dp.withDefaults()
	defer cfg.applyWorkers()()
	if dp.Replicas > dp.Microbatches {
		return Report{}, transport.Snapshot{}, fmt.Errorf("train: %d replicas exceed %d microbatches", dp.Replicas, dp.Microbatches)
	}
	K, M := dp.Replicas, dp.Microbatches
	chunkElems := dp.BucketBytes / 4
	if chunkElems < 1 {
		chunkElems = 1
	}

	counters := &transport.Counters{}
	retry := transport.Retry{Attempts: 8, Backoff: time.Millisecond, Total: dp.StoreTimeout}
	if dp.StoreTimeout > 0 {
		opTimeout := dp.StoreTimeout / 4
		if opTimeout < 50*time.Millisecond {
			opTimeout = 50 * time.Millisecond
		}
		retry.OpTimeout = opTimeout
	}
	var shared transport.Transport
	if dp.StoreDial == nil {
		// One in-process backend shared by every worker (it is
		// mutex-guarded); closing it once at the end suffices.
		shared = transport.NewLocal(nil, counters)
		defer shared.Close()
	}
	newTransport := func() transport.Transport {
		if shared != nil {
			return shared
		}
		c := transport.NewNetClient(dp.StoreDial, counters)
		c.OpTimeout = retry.OpTimeout
		c.Hedge = dp.StoreHedge
		c.Window = dp.Window
		if dp.ClientHook != nil {
			dp.ClientHook(c)
		}
		return c
	}
	tag := transport.GradTag(cfg.Seed)
	pipe := codec.New(quant.OptL()) // DQT unused by gradient codecs
	newExchange := func() *gradExchange {
		return &gradExchange{
			tr: transport.AsPipelined(newTransport()), pipe: pipe, codec: dp.GradCodec,
			tag: tag, retry: retry, window: dp.Window, chunk: chunkElems, counters: counters,
		}
	}

	reps := make([]*dpReplica, K)
	for k := range reps {
		reps[k] = &dpReplica{model: newModel(), opt: cfg.newOptimizer(), gx: newExchange()}
	}
	gradSize := nn.GradSize(reps[0].model.Net)
	for k, r := range reps {
		if nn.GradSize(r.model.Net) != gradSize {
			return Report{}, counters.Snapshot(), fmt.Errorf("train: replica %d gradient size differs — newModel is not deterministic", k)
		}
		r.flat = make([]float32, gradSize)
		r.plan = nn.NewBucketPlan(r.model.Net, chunkElems)
	}
	if shared == nil {
		for _, r := range reps {
			defer r.gx.tr.Close()
		}
	}
	reducer := newExchange()
	if shared == nil {
		defer reducer.tr.Close()
	}
	board := newGradBoard()

	rep := Report{
		ModelName:  reps[0].model.Name,
		MethodName: fmt.Sprintf("dp(K=%d,M=%d,%s)", K, M, dp.GradCodec),
	}
	if dp.StoreDial != nil {
		rep.MethodName += "+netstore"
	}

	valX, valY := ds.Batch(cfg.BatchSize * 8)

	microX := make([]*tensor.Tensor, M)
	microY := make([][]int, M)
	losses := make([]float64, M)
	reduced := make([]float32, gradSize)
	mbVec := make([]float32, gradSize)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, r := range reps {
			maybeDecay(cfg, r.opt, epoch)
		}
		var epochLoss float64
		for b := 0; b < cfg.BatchesPerEpoch; b++ {
			step := uint64(epoch*cfg.BatchesPerEpoch + b)
			// The driver draws all M microbatches in order — the data
			// stream is sequential, so this is what pins the trajectory
			// to M rather than K.
			for m := 0; m < M; m++ {
				microX[m], microY[m] = ds.Batch(cfg.BatchSize)
			}

			// Phases 1+2: every worker runs its share of microbatches,
			// shipping gradient buckets as backward produces them, while
			// the reducer streams them into the fixed-order accumulation
			// concurrently. (SerialExchange replays the PR-9 schedule:
			// publish after backward, reduce after all workers finish.)
			var lead nn.NetState // microbatch 0's post-forward state
			errs := make([]error, K)
			redErr := make(chan error, 1)
			board.reset()
			if !dp.SerialExchange {
				go func() { redErr <- reducer.reduceStreaming(board, step, M, reduced) }()
			}
			var wg, putWG sync.WaitGroup
			for k := 0; k < K; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					r := reps[k]
					pre := nn.CaptureNetState(r.model.Net)
					for m := k; m < M; m += K {
						nn.RestoreNetState(r.model.Net, nn.SaltNetState(pre, uint64(m)))
						for _, p := range r.model.Net.Params() {
							p.ZeroGrad()
						}
						out := r.model.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: microX[m]}, true)
						loss, grad := nn.SoftmaxCrossEntropy(out.T, microY[m])
						losses[m] = loss
						if dp.SerialExchange {
							r.model.Net.Backward(grad)
							nn.FlattenGrads(r.model.Net, r.flat)
							if err := r.gx.put(step, uint64(m+1), r.flat); err != nil {
								errs[k] = err
								return
							}
						} else if err := r.runMicrobatchOverlapped(step, m, board, &putWG, grad); err != nil {
							errs[k] = err
							return
						}
						if m == 0 {
							lead = nn.CaptureNetState(r.model.Net)
						}
					}
				}(k)
			}
			wg.Wait()
			putWG.Wait()
			for _, err := range errs {
				if err != nil {
					board.fail(err)
					if !dp.SerialExchange {
						<-redErr // the reducer observes the failure and exits
					}
					return rep, counters.Snapshot(), err
				}
			}
			if dp.SerialExchange {
				// Fixed-order exact reduction after the fact: microbatch
				// order 0..M-1, element-wise float32 accumulation — the
				// same per-element op order the streaming reducer uses.
				for i := range reduced {
					reduced[i] = 0
				}
				for m := 0; m < M; m++ {
					if err := reducer.get(step, uint64(m+1), mbVec); err != nil {
						return rep, counters.Snapshot(), err
					}
					for i, v := range mbVec {
						reduced[i] += v
					}
				}
			} else if err := <-redErr; err != nil {
				return rep, counters.Snapshot(), err
			}
			if err := reducer.put(step, 0, reduced); err != nil {
				return rep, counters.Snapshot(), err
			}
			for m := 0; m < M; m++ {
				reducer.del(step, uint64(m+1), gradSize)
			}

			// Phase 3: every replica adopts the lead state, imports the
			// reduced gradient (scaled 1/M exactly once) and steps.
			scale := 1 / float32(M)
			for k := 0; k < K; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					r := reps[k]
					nn.RestoreNetState(r.model.Net, lead)
					if err := r.gx.get(step, 0, r.flat); err != nil {
						errs[k] = err
						return
					}
					nn.ImportGrads(r.model.Net, r.flat, scale)
					r.opt.Step(r.model.Net.Params())
				}(k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return rep, counters.Snapshot(), err
				}
			}
			reducer.del(step, 0, gradSize)

			stepLoss := 0.0
			for _, l := range losses {
				stepLoss += l
			}
			stepLoss /= float64(M)
			epochLoss += stepLoss
			if math.IsNaN(stepLoss) || math.IsInf(stepLoss, 0) {
				rep.Diverged = true
				return rep, counters.Snapshot(), nil
			}
		}

		stats := EpochStats{Epoch: epoch, Loss: epochLoss / float64(cfg.BatchesPerEpoch)}
		valOut := reps[0].model.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: valX}, false)
		stats.Score = nn.Accuracy(valOut.T, valY)
		if nn.NaNGuard(valOut.T) {
			rep.Diverged = true
			rep.Epochs = append(rep.Epochs, stats)
			return rep, counters.Snapshot(), nil
		}
		rep.Epochs = append(rep.Epochs, stats)
		if stats.Score > rep.BestScore {
			rep.BestScore = stats.Score
		}
		if dp.Verbose {
			s := counters.Snapshot()
			fmt.Printf("epoch %d: loss=%.4f acc=%.3f grad_puts=%d grad_gets=%d grad_bytes=%d retried=%d reconnects=%d\n",
				epoch, stats.Loss, stats.Score, s.GradPuts, s.GradGets, s.BytesGrad, s.Retried, s.Reconnects)
		}
	}
	return rep, counters.Snapshot(), nil
}

// DPFinalWeights flattens a trained model's parameters for element-wise
// comparison across runs — the bit-exactness check the drivers and
// tests share. Callers keep a reference to replica 0's model by
// recording the first value their newModel factory returns.
func DPFinalWeights(m *models.Model) []float32 {
	var out []float32
	for _, p := range m.Net.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}
