package train

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jpegact/internal/models"
	"jpegact/internal/netfaults"
	"jpegact/internal/offload"
	"jpegact/internal/offload/netstore"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
)

// chaosStore is a killable, restartable activation store pinned to one
// socket path, accumulating server counters across incarnations so the
// test can assert over the whole run.
type chaosStore struct {
	t    *testing.T
	addr string
	cfg  netstore.Config

	mu           sync.Mutex
	srv          *netstore.Server
	replicaReads uint64
}

func newChaosStore(t *testing.T, cfg netstore.Config) *chaosStore {
	cs := &chaosStore{
		t:    t,
		addr: "unix:" + filepath.Join(t.TempDir(), "store.sock"),
		cfg:  cfg,
	}
	cs.start()
	t.Cleanup(cs.stop)
	return cs
}

func (cs *chaosStore) start() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.srv != nil {
		return
	}
	srv := netstore.New(cs.cfg)
	ln, err := srv.Listen(cs.addr)
	if err != nil {
		cs.t.Fatal(err)
	}
	go srv.Serve(ln)
	cs.srv = srv
}

// stop hard-kills the current incarnation (folding its counters into
// the running totals); the socket address becomes a dead endpoint.
func (cs *chaosStore) stop() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.srv == nil {
		return
	}
	cs.replicaReads += cs.srv.Snapshot().ReplicaReads
	cs.srv.Close()
	cs.srv = nil
}

func (cs *chaosStore) killShard(i int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.srv != nil {
		cs.srv.KillShard(i)
	}
}

func (cs *chaosStore) totalReplicaReads() uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := cs.replicaReads
	if cs.srv != nil {
		n += cs.srv.Snapshot().ReplicaReads
	}
	return n
}

// TestChaosSoakBitExact is the failure-domain acceptance test: training
// over a replicated networked store under seeded connection chaos
// (resets mid-frame, latency spikes, stalls), with a storage shard
// killed mid-step twice and the whole server killed for a full epoch
// and then restarted, must converge to final weights bit-identical to a
// fault-free in-process run. Every recovery mechanism is
// content-transparent — reconnect+resend, replica failover with
// read-repair, hedged GETs, breaker degradation to the local fallback,
// recompute replay — so no amount of injected failure may change a
// single weight bit. The run must also actually exercise the machinery:
// degraded ops, hedges, replica reads and reconnects all nonzero.
func TestChaosSoakBitExact(t *testing.T) {
	cfg := Config{Epochs: 3, BatchesPerEpoch: 2, BatchSize: 4, LR: 0.05, Workers: 2}
	run := func(oc OffloadOptions) (Report, offload.Stats, *models.Model) {
		m, ds := faultModel(901)
		oc.DQT = quant.OptL()
		oc.Async = true
		oc.FreqDomain = true
		oc.Policy = offload.PolicyRecompute
		oc.MaxRetries = 3
		rep, stats, err := ClassifierOffloaded(m, ds, cfg, oc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Diverged {
			t.Fatal("diverged")
		}
		return rep, stats, m
	}

	// Fault-free in-process reference.
	refRep, _, refModel := run(OffloadOptions{})

	// Chaos-ridden networked run.
	cs := newChaosStore(t, netstore.Config{Shards: 4, Replicas: 2})
	dial, err := transport.DialAddr(cs.addr)
	if err != nil {
		t.Fatal(err)
	}
	inj := netfaults.New(netfaults.Config{
		Seed:     42,
		PReset:   0.02,
		PLatency: 0.05, Latency: 2 * time.Millisecond,
		PStall: 0.05, Stall: 50 * time.Millisecond,
	})

	// Deterministic mid-step shard kills: when the wire has carried the
	// Nth PUT, wipe a shard while its entries are still resident, so the
	// restores that follow must fail over to the replicas. Keys are the
	// store's sequence numbers, so the shard map is known: at put 8
	// (seqs 0-7 resident, forward of epoch 0's first step) shard 0
	// holds six of them; at put 21 (seqs 13-20, second step) shard 1
	// holds five. One shard dies per step, so no key ever loses both
	// replicas to these kills.
	var wirePuts atomic.Uint64
	chaosRep, stats, chaosModel := run(OffloadOptions{
		StoreDial:    transport.Dialer(inj.WrapDialer(dial)),
		StoreTimeout: time.Second,
		StoreHedge:   10 * time.Millisecond,
		Breaker:      offload.BreakerConfig{FailureThreshold: 1, ProbeAfter: 16},
		StoreClient: func(c *transport.NetClient) {
			c.Latency = func(op uint8, _ time.Duration) {
				if op != transport.OpPut {
					return
				}
				switch wirePuts.Add(1) {
				case 8:
					cs.killShard(0)
				case 21:
					cs.killShard(1)
				}
			}
		},
		EpochEnd: func(epoch int) {
			switch epoch {
			case 0:
				// The server dies outright: epoch 1 trains entirely
				// degraded through the breaker's local fallback.
				cs.stop()
			case 1:
				// It comes back: the breaker's half-open probe finds it
				// and traffic returns to the wire for epoch 2.
				cs.start()
			}
		},
	})

	sameWeights(t, refModel, chaosModel, "chaos vs fault-free")
	for i := range refRep.Epochs {
		if refRep.Epochs[i].Loss != chaosRep.Epochs[i].Loss {
			t.Fatalf("epoch %d loss diverged: %v vs %v", i, refRep.Epochs[i].Loss, chaosRep.Epochs[i].Loss)
		}
	}

	// The run must have actually lived through the failure modes.
	if stats.Degraded == 0 {
		t.Fatal("no degraded ops — the breaker never engaged")
	}
	if stats.Hedged == 0 {
		t.Fatal("no hedged GETs — stalls never raced a second connection")
	}
	if stats.Reconnects == 0 {
		t.Fatal("no reconnects — resets never bit")
	}
	if got := cs.totalReplicaReads(); got == 0 {
		t.Fatal("no replica failover reads — the shard kills went unnoticed")
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("the chaos injector never reset a connection")
	}
}
