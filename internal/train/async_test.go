package train

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"jpegact/internal/faults"
	"jpegact/internal/models"
	"jpegact/internal/offload"
	"jpegact/internal/quant"
)

// captureChannel records a copy of every Send payload, passthrough
// otherwise. Commits are serialized by the engine, but the mutex makes
// the recorder safe regardless.
type captureChannel struct {
	mu   sync.Mutex
	sent []string
}

func (c *captureChannel) Send(b []byte) []byte {
	c.mu.Lock()
	c.sent = append(c.sent, string(b))
	c.mu.Unlock()
	return b
}
func (c *captureChannel) Recv(b []byte) []byte { return b }

func (c *captureChannel) sorted() []string {
	c.mu.Lock()
	out := append([]string(nil), c.sent...)
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

func workerSet() []int {
	set := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 {
		set = append(set, p)
	}
	return set
}

// TestAsyncSyncEquivalence is the acceptance matrix: the same short
// training run must be bit-identical — losses, validation scores, final
// weights, and the multiset of compressed frames crossing the channel —
// across sync, async+prefetch and async on-demand modes at every worker
// count. The async emission order may differ from the sync sweep (the
// hooks stream refs as they become safe), so frames are compared as a
// sorted multiset.
func TestAsyncSyncEquivalence(t *testing.T) {
	run := func(oc OffloadOptions, workers int) (Report, *models.Model, []string) {
		m, ds := faultModel(600)
		cfg := faultCfg()
		cfg.Workers = workers
		ch := &captureChannel{}
		oc.DQT = quant.OptL()
		oc.Channel = ch
		rep, _, err := ClassifierOffloaded(m, ds, cfg, oc)
		if err != nil {
			t.Fatal(err)
		}
		return rep, m, ch.sorted()
	}

	refRep, refModel, refFrames := run(OffloadOptions{}, 2)

	type variant struct {
		name    string
		oc      OffloadOptions
		workers int
	}
	var variants []variant
	for _, w := range workerSet() {
		variants = append(variants,
			variant{fmt.Sprintf("async-prefetch-w%d", w), OffloadOptions{Async: true}, w},
			variant{fmt.Sprintf("async-ondemand-w%d", w), OffloadOptions{Async: true, Prefetch: -1}, w},
			variant{fmt.Sprintf("async-budget-w%d", w), OffloadOptions{Async: true, InFlightBytes: 8 << 10}, w},
		)
	}
	variants = append(variants, variant{"sync-w1", OffloadOptions{}, 1})

	for _, v := range variants {
		rep, m, frames := run(v.oc, v.workers)
		sameEpochs(t, refRep, rep, v.name)
		if len(frames) != len(refFrames) {
			t.Fatalf("%s: %d frames vs %d", v.name, len(frames), len(refFrames))
		}
		for i := range frames {
			if frames[i] != refFrames[i] {
				t.Fatalf("%s: compressed frame multiset differs at %d", v.name, i)
			}
		}
		pa, pb := refModel.Net.Params(), m.Net.Params()
		if len(pa) != len(pb) {
			t.Fatalf("%s: param count %d vs %d", v.name, len(pa), len(pb))
		}
		for i := range pa {
			for j := range pa[i].W.Data {
				if pa[i].W.Data[j] != pb[i].W.Data[j] {
					t.Fatalf("%s: weight %q[%d] diverged", v.name, pa[i].Name, j)
				}
			}
		}
	}
}

// TestAsyncRecomputeBitExact extends the recompute acceptance test to
// the pipelined path: corruption discovered asynchronously (by the
// prefetcher, mid-backward) must still recover into exactly the
// trajectory of a fault-free synchronous run, and two faulty async runs
// must agree with each other counter-for-counter.
func TestAsyncRecomputeBitExact(t *testing.T) {
	run := func(faulty bool, async bool) (Report, offload.Stats) {
		m, ds := faultModel(200)
		oc := OffloadOptions{DQT: quant.OptL(), Policy: offload.PolicyRecompute, Async: async}
		if faulty {
			inj := faults.New(faults.Config{Seed: 77, BitFlipPerByte: 1e-5})
			inj.ForceNextRecv(1)
			oc.Channel = inj
		}
		rep, stats, err := ClassifierOffloaded(m, ds, faultCfg(), oc)
		if err != nil {
			t.Fatal(err)
		}
		return rep, stats
	}

	cleanSync, _ := run(false, false)
	faultyA, statsA := run(true, true)
	faultyB, statsB := run(true, true)

	if statsA.Recomputed == 0 {
		t.Fatal("no recompute happened; the async fault path was not exercised")
	}
	if statsA.Corrupted == 0 {
		t.Fatal("no corruption detected")
	}
	if statsA != statsB {
		t.Fatalf("async fault runs not deterministic: %+v vs %+v", statsA, statsB)
	}
	sameEpochs(t, faultyA, faultyB, "faulty async re-run")
	sameEpochs(t, faultyA, cleanSync, "faulty async vs fault-free sync")
}

// TestAsyncFailPolicy: an async restore failure under PolicyFail aborts
// the step cleanly with the typed error, not a panic escaping the
// backward pass.
func TestAsyncFailPolicy(t *testing.T) {
	m, ds := faultModel(300)
	inj := faults.New(faults.Config{Seed: 78})
	inj.ForceNextRecv(1)
	_, stats, err := ClassifierOffloaded(m, ds, faultCfg(), OffloadOptions{
		DQT: quant.OptL(), Channel: inj, Policy: offload.PolicyFail, Async: true,
	})
	if err == nil {
		t.Fatal("forced corruption under PolicyFail must error")
	}
	if stats.Corrupted == 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestAsyncDropRecovery: lost transfers discovered by the prefetcher
// recover through recompute, with drops counted distinctly.
func TestAsyncDropRecovery(t *testing.T) {
	m, ds := faultModel(500)
	inj := faults.New(faults.Config{Seed: 81, DropRate: 0.03})
	rep, stats, err := ClassifierOffloaded(m, ds, faultCfg(), OffloadOptions{
		DQT: quant.OptL(), Channel: inj, Policy: offload.PolicyRecompute, MaxRecompute: 16, Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged {
		t.Fatal("diverged")
	}
	if stats.Dropped == 0 || stats.Recomputed == 0 {
		t.Fatalf("drop faults not exercised: %+v (injector %+v)", stats, inj.Stats())
	}
}
