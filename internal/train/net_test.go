package train

import (
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"jpegact/internal/models"
	"jpegact/internal/offload"
	"jpegact/internal/offload/netstore"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
)

// startStore brings up a netstore server on a unix socket for the
// duration of the test and returns its dialer and the server handle.
func startStore(t *testing.T) (*netstore.Server, transport.Dialer) {
	t.Helper()
	srv := netstore.New(netstore.Config{Shards: 4})
	addr := "unix:" + filepath.Join(t.TempDir(), "store.sock")
	ln, err := srv.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	dial, err := transport.DialAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	return srv, dial
}

// dyingConn closes the connection after carrying a byte budget of
// writes — a connection drop mid-stream, usually mid-frame.
type dyingConn struct {
	net.Conn
	left int
}

func (c *dyingConn) Write(b []byte) (int, error) {
	if c.left <= 0 {
		c.Conn.Close()
		return 0, errors.New("injected connection drop")
	}
	if len(b) > c.left {
		n, _ := c.Conn.Write(b[:c.left])
		c.left = 0
		c.Conn.Close()
		return n, errors.New("injected connection drop mid-frame")
	}
	c.left -= len(b)
	return c.Conn.Write(b)
}

// droppingDialer gives every connection a finite write budget, so the
// link keeps dying under sustained traffic and the client must keep
// reconnecting and resending to make progress.
func droppingDialer(dial transport.Dialer, budget int) transport.Dialer {
	var mu sync.Mutex
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		return &dyingConn{Conn: conn, left: budget}, nil
	}
}

// sameWeights asserts two trained models are bit-identical parameter by
// parameter.
func sameWeights(t *testing.T, a, b *models.Model, label string) {
	t.Helper()
	pa, pb := a.Net.Params(), b.Net.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: param count %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("%s: weight %q[%d] diverged", label, pa[i].Name, j)
			}
		}
	}
}

// TestNetstoreTrainingBitExact is the acceptance test of the networked
// transport: training over a unix-socket activation store — async with
// prefetch, frequency-domain restores on — must produce bit-identical
// final weights and epoch losses to the in-process transport, including
// when every connection keeps dying mid-frame and the client has to
// reconnect and resend its way through. Fault recovery may change how
// many transfers happen, never their content.
func TestNetstoreTrainingBitExact(t *testing.T) {
	run := func(oc OffloadOptions) (Report, offload.Stats, *models.Model) {
		m, ds := faultModel(700)
		oc.DQT = quant.OptL()
		oc.Async = true
		oc.FreqDomain = true
		rep, stats, err := ClassifierOffloaded(m, ds, faultCfg(), oc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Diverged {
			t.Fatal("diverged")
		}
		return rep, stats, m
	}

	refRep, refStats, refModel := run(OffloadOptions{})
	if refStats.CoefRestores == 0 {
		t.Fatal("reference run never took the frequency-domain path")
	}

	// Clean network transport: only the byte path differs.
	srv, dial := startStore(t)
	netRep, netStats, netModel := run(OffloadOptions{
		StoreDial: dial, StoreKeyBase: 1 << 32,
	})
	sameEpochs(t, refRep, netRep, "netstore clean")
	sameWeights(t, refModel, netModel, "netstore clean")
	if netStats.CoefRestores != refStats.CoefRestores {
		t.Fatalf("coef restores %d over the network vs %d in-process",
			netStats.CoefRestores, refStats.CoefRestores)
	}
	if got := srv.Snapshot(); got.CoefRestores == 0 {
		t.Fatalf("server never served the coefficient lane: %+v", got)
	}
	if srv.Entries() != 0 {
		t.Fatalf("%d entries leaked on the server after training", srv.Entries())
	}

	// Drop-injected network transport: every connection dies after 64 KiB
	// of writes, so puts and gets keep failing mid-frame and recovery is
	// reconnect+resend on the retry schedule.
	_, dial2 := startStore(t)
	dropRep, dropStats, dropModel := run(OffloadOptions{
		StoreDial:    droppingDialer(dial2, 64<<10),
		StoreKeyBase: 2 << 32,
		Policy:       offload.PolicyRetry,
		MaxRetries:   6,
	})
	if dropStats.Reconnects == 0 || dropStats.Retried == 0 {
		t.Fatalf("drop injection never fired: %+v", dropStats)
	}
	sameEpochs(t, refRep, dropRep, "netstore with connection drops")
	sameWeights(t, refModel, dropModel, "netstore with connection drops")
}
