package train

import (
	"errors"
	"strings"
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/faults"
	"jpegact/internal/frame"
	"jpegact/internal/models"
	"jpegact/internal/offload"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func faultModel(seed uint64) (*models.Model, *data.Classification) {
	m := models.ResNet18(models.Scale{Width: 6, Blocks: 1}, 2, tensor.NewRNG(seed))
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, H: 16, W: 16, Seed: seed + 1,
	})
	return m, ds
}

func faultCfg() Config {
	return Config{Epochs: 2, BatchesPerEpoch: 3, BatchSize: 4, LR: 0.05, Workers: 2}
}

func sameEpochs(t *testing.T, a, b Report, label string) {
	t.Helper()
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("%s: %d vs %d epochs", label, len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if a.Epochs[i].Loss != b.Epochs[i].Loss {
			t.Fatalf("%s: epoch %d loss %v vs %v", label, i, a.Epochs[i].Loss, b.Epochs[i].Loss)
		}
		if a.Epochs[i].Score != b.Epochs[i].Score {
			t.Fatalf("%s: epoch %d score %v vs %v", label, i, a.Epochs[i].Score, b.Epochs[i].Score)
		}
	}
}

// TestOffloadedTrainingCleanChannel: the offloaded trainer over a clean
// channel must converge and report a real compression ratio.
func TestOffloadedTrainingCleanChannel(t *testing.T) {
	m, ds := faultModel(100)
	rep, stats, err := ClassifierOffloaded(m, ds, faultCfg(), OffloadOptions{DQT: quant.OptL()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged {
		t.Fatal("diverged on a clean channel")
	}
	if rep.FinalRatio <= 1 {
		t.Fatalf("compression ratio %v", rep.FinalRatio)
	}
	if stats.Corrupted != 0 || stats.Recomputed != 0 {
		t.Fatalf("clean channel produced faults: %+v", stats)
	}
	if stats.Offloaded == 0 || stats.Offloaded != stats.Restored {
		t.Fatalf("offload/restore imbalance: %+v", stats)
	}
	if stats.BytesVerified != stats.BytesOffloaded {
		t.Fatalf("verified %d of %d offloaded bytes", stats.BytesVerified, stats.BytesOffloaded)
	}
}

// TestOffloadedTrainingRecomputeBitExact is the end-to-end fault test of
// the acceptance criteria: with the injector flipping bits at 1e-5/byte
// (plus one forced corruption so the recompute path is guaranteed to
// fire), training under PolicyRecompute completes and produces exactly
// the losses of (a) a bit-exact re-run with the same seeds and (b) a
// fault-free run — corruption recovery is invisible to the training
// trajectory.
func TestOffloadedTrainingRecomputeBitExact(t *testing.T) {
	run := func(faulty bool) (Report, offload.Stats) {
		m, ds := faultModel(200)
		oc := OffloadOptions{DQT: quant.OptL(), Policy: offload.PolicyRecompute}
		if faulty {
			inj := faults.New(faults.Config{Seed: 77, BitFlipPerByte: 1e-5})
			inj.ForceNextRecv(1)
			oc.Channel = inj
		}
		rep, stats, err := ClassifierOffloaded(m, ds, faultCfg(), oc)
		if err != nil {
			t.Fatal(err)
		}
		return rep, stats
	}

	clean, _ := run(false)
	faultyA, statsA := run(true)
	faultyB, statsB := run(true)

	if statsA.Recomputed == 0 {
		t.Fatal("no recompute happened; the fault path was not exercised")
	}
	if statsA.Corrupted == 0 {
		t.Fatal("no corruption detected")
	}
	if statsA != statsB {
		t.Fatalf("fault runs not deterministic: %+v vs %+v", statsA, statsB)
	}
	sameEpochs(t, faultyA, faultyB, "faulty re-run")
	sameEpochs(t, faultyA, clean, "faulty vs fault-free")
}

// TestOffloadedTrainingFailPolicy: under PolicyFail a corrupted frame
// surfaces as a typed ErrChecksum naming the corrupted ref, and training
// stops.
func TestOffloadedTrainingFailPolicy(t *testing.T) {
	m, ds := faultModel(300)
	inj := faults.New(faults.Config{Seed: 78})
	inj.ForceNextRecv(1)
	_, stats, err := ClassifierOffloaded(m, ds, faultCfg(), OffloadOptions{
		DQT: quant.OptL(), Channel: inj, Policy: offload.PolicyFail,
	})
	if err == nil {
		t.Fatal("forced corruption under PolicyFail must error")
	}
	if !errors.Is(err, frame.ErrChecksum) {
		t.Fatalf("want frame.ErrChecksum, got %v", err)
	}
	if !strings.Contains(err.Error(), `restore "`) {
		t.Fatalf("error does not name the corrupted ref: %v", err)
	}
	if stats.Corrupted == 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestOffloadedTrainingRetryPolicy: a transient forced fault under
// PolicyRetry is absorbed by a channel re-read; training completes with
// no recompute.
func TestOffloadedTrainingRetryPolicy(t *testing.T) {
	m, ds := faultModel(400)
	inj := faults.New(faults.Config{Seed: 79})
	inj.ForceNextRecv(1)
	rep, stats, err := ClassifierOffloaded(m, ds, faultCfg(), OffloadOptions{
		DQT: quant.OptL(), Channel: inj, Policy: offload.PolicyRetry, MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged {
		t.Fatal("diverged")
	}
	if stats.Retried == 0 || stats.Corrupted == 0 {
		t.Fatalf("retry path not exercised: %+v", stats)
	}
	if stats.Recomputed != 0 {
		t.Fatalf("retry policy must not recompute: %+v", stats)
	}
}

// TestOffloadedTrainingDropRecovery: a dropped buffer (nil transfer) is
// detected as truncation and recovered by recompute.
func TestOffloadedTrainingDropRecovery(t *testing.T) {
	m, ds := faultModel(500)
	inj := faults.New(faults.Config{Seed: 81, DropRate: 0.03})
	rep, stats, err := ClassifierOffloaded(m, ds, faultCfg(), OffloadOptions{
		DQT: quant.OptL(), Channel: inj, Policy: offload.PolicyRecompute, MaxRecompute: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged {
		t.Fatal("diverged")
	}
	if stats.Corrupted == 0 || stats.Recomputed == 0 {
		t.Fatalf("drop faults not exercised: %+v (injector %+v)", stats, inj.Stats())
	}
	if stats.Dropped == 0 || stats.Dropped > stats.Corrupted {
		t.Fatalf("drops not counted distinctly: %+v", stats)
	}
}
