package train

import (
	"sync"
	"testing"
	"time"

	"jpegact/internal/data"
	"jpegact/internal/frame"
	"jpegact/internal/models"
	"jpegact/internal/netfaults"
	"jpegact/internal/offload/transport"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// dpFixture returns a deterministic replica factory (recording the
// first replica so the test can inspect its final weights) and a fresh
// dataset for one data-parallel run.
func dpFixture(seed uint64) (func() *models.Model, func() *models.Model, *data.Classification) {
	var first *models.Model
	newModel := func() *models.Model {
		m := models.ResNet18(models.Scale{Width: 6, Blocks: 1}, 2, tensor.NewRNG(seed))
		if first == nil {
			first = m
		}
		return m
	}
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, H: 16, W: 16, Seed: seed + 1,
	})
	return newModel, func() *models.Model { return first }, ds
}

func dpCfg() Config {
	return Config{Epochs: 2, BatchesPerEpoch: 2, BatchSize: 4, LR: 0.05, Workers: 2, Seed: 77}
}

// dpRun trains one data-parallel run and returns the report, counters
// and replica 0's trained model.
func dpRun(t *testing.T, seed uint64, dp DPOptions) (Report, transport.Snapshot, *models.Model) {
	t.Helper()
	newModel, lead, ds := dpFixture(seed)
	rep, snap, err := ClassifierDataParallel(newModel, ds, dpCfg(), dp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged {
		t.Fatal("diverged")
	}
	return rep, snap, lead()
}

// TestDataParallelBitExact is the tentpole acceptance test: the final
// weights must be element-wise identical for K=1, 2 and 4 replicas —
// over the in-process transport, over a networked activation store
// (serving activation offload traffic concurrently), and under seeded
// connection chaos — with the gradient-exchange counters proving the
// traffic really happened.
func TestDataParallelBitExact(t *testing.T) {
	const M = 4

	// In-process transport: K=1 is the reference trajectory.
	ref, refSnap, refModel := dpRun(t, 1500, DPOptions{Replicas: 1, Microbatches: M})
	if refSnap.GradPuts == 0 || refSnap.GradGets == 0 || refSnap.BytesGrad == 0 {
		t.Fatalf("gradient exchange counters empty on K=1: %+v", refSnap)
	}
	// Per step: M microbatch puts + 1 reduced put; M reducer gets + K
	// replica gets.
	steps := uint64(dpCfg().Epochs * dpCfg().BatchesPerEpoch)
	if want := steps * (M + 1); refSnap.GradPuts != want {
		t.Fatalf("grad puts %d, want %d", refSnap.GradPuts, want)
	}

	for _, K := range []int{2, 4} {
		rep, snap, m := dpRun(t, 1500, DPOptions{Replicas: K, Microbatches: M})
		sameEpochs(t, ref, rep, "local K")
		sameWeights(t, refModel, m, "local K")
		if snap.GradPuts != refSnap.GradPuts {
			t.Fatalf("K=%d grad puts %d, want %d (K must not change the exchange volume of puts)", K, snap.GradPuts, refSnap.GradPuts)
		}
	}

	// Networked store, with activation offload traffic from a second
	// trainer hitting the same server concurrently: one actstore serves
	// both key namespaces at once.
	srv, dial := startStore(t)
	var wg sync.WaitGroup
	wg.Add(1)
	var actErr error
	go func() {
		defer wg.Done()
		m, ds := faultModel(700)
		_, _, actErr = ClassifierOffloaded(m, ds, faultCfg(), OffloadOptions{
			DQT: quant.OptL(), StoreDial: dial, StoreKeyBase: 1 << 32,
		})
	}()
	netRep, netSnap, netModel := dpRun(t, 1500, DPOptions{
		Replicas: 2, Microbatches: M, StoreDial: dial,
	})
	wg.Wait()
	if actErr != nil {
		t.Fatalf("concurrent offloaded trainer failed: %v", actErr)
	}
	sameEpochs(t, ref, netRep, "netstore")
	sameWeights(t, refModel, netModel, "netstore")
	if netSnap.GradPuts != refSnap.GradPuts {
		t.Fatalf("netstore grad puts %d, want %d", netSnap.GradPuts, refSnap.GradPuts)
	}
	ss := srv.Snapshot()
	if ss.GradPuts == 0 || ss.GradGets == 0 || ss.BytesGrad == 0 {
		t.Fatalf("server-side gradient counters empty: %+v", ss)
	}
	if ss.Offloaded <= ss.GradPuts {
		t.Fatalf("server saw no activation traffic beyond gradients: %+v", ss)
	}
	if srv.Entries() != 0 {
		t.Fatalf("%d entries leaked on the server", srv.Entries())
	}

	// Seeded connection chaos on the gradient path: resets mid-frame,
	// latency spikes, stalls. Reconnect+resend must absorb everything —
	// same weights, and the counters must prove the chaos bit.
	_, dial2 := startStore(t)
	inj := netfaults.New(netfaults.Config{
		Seed:     42,
		PReset:   0.02,
		PLatency: 0.05, Latency: time.Millisecond,
		PStall: 0.02, Stall: 20 * time.Millisecond,
	})
	chaosRep, chaosSnap, chaosModel := dpRun(t, 1500, DPOptions{
		Replicas:     4,
		Microbatches: M,
		StoreDial:    transport.Dialer(inj.WrapDialer(dial2)),
		StoreTimeout: 5 * time.Second,
		StoreHedge:   10 * time.Millisecond,
	})
	sameEpochs(t, ref, chaosRep, "chaos")
	sameWeights(t, refModel, chaosModel, "chaos")
	if chaosSnap.GradPuts == 0 || chaosSnap.GradGets == 0 {
		t.Fatalf("chaos run exchanged no gradients: %+v", chaosSnap)
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("the chaos injector never reset a connection")
	}
	if chaosSnap.Reconnects == 0 {
		t.Fatal("no reconnects — resets never bit the gradient path")
	}
}

// TestDataParallelQuantizedCodec: the lossy gradient codec changes the
// trajectory (it may) but must preserve the K-invariance — K=1 and K=2
// under CodecGradQuant are still bit-identical to each other.
func TestDataParallelQuantizedCodec(t *testing.T) {
	a, _, ma := dpRun(t, 1600, DPOptions{Replicas: 1, Microbatches: 2, GradCodec: frame.CodecGradQuant})
	b, _, mb := dpRun(t, 1600, DPOptions{Replicas: 2, Microbatches: 2, GradCodec: frame.CodecGradQuant})
	sameEpochs(t, a, b, "quantized codec")
	sameWeights(t, ma, mb, "quantized codec")
}

// TestDataParallelRejectsTooManyReplicas: K > M is a configuration
// error, not a silent truncation.
func TestDataParallelRejectsTooManyReplicas(t *testing.T) {
	newModel, _, ds := dpFixture(1700)
	if _, _, err := ClassifierDataParallel(newModel, ds, dpCfg(), DPOptions{Replicas: 8, Microbatches: 4}); err == nil {
		t.Fatal("8 replicas over 4 microbatches accepted")
	}
}
