package gpusim

// Memory-capacity-constrained scheduling: the forward pass holds every
// produced activation in GPU memory until its offload completes (vDNN's
// memory-release discipline), so a small GPU memory forces compute to
// stall behind the offload queue. GIST, which compresses *into* GPU
// memory instead of offloading, keeps its compressed activations resident
// for the whole pass — the "still limited by the amount of GPU memory"
// property the paper calls out (§I).

// MemResult extends Result with residency accounting.
type MemResult struct {
	Result
	StallSeconds float64 // compute time lost waiting for memory
	PeakResident float64 // bytes resident at the worst moment
	FitsInMemory bool    // residency never exceeded capacity
}

// SimulateWithCapacity runs the forward schedule under a GPU memory
// capacity (bytes). Backward is taken from the unconstrained model (the
// backward pass frees as it consumes, so capacity binds far less there).
func SimulateWithCapacity(w Workload, s Scheme, cfg Config, capacity float64) MemResult {
	type pending struct {
		done  float64 // offload completion time
		bytes float64 // resident bytes freed at completion
	}
	var queue []pending
	var resident, peak float64
	var tCompute, offEnd, stall float64
	hbm := cfg.HBMBandwidthGBs * 1e9 * 0.8
	fits := true

	free := func(now float64) {
		i := 0
		for _, p := range queue {
			if p.done <= now {
				resident -= p.bytes
				continue
			}
			queue[i] = p
			i++
		}
		queue = queue[:i]
	}

	for _, l := range w.Layers {
		tCompute += cfg.ComputeSeconds(l.FLOPs, l.MemBytes, l.Class)
		if l.ActBytes <= 0 {
			continue
		}
		if s.Offload {
			kept := l.ActBytes // resident until offloaded
			free(tCompute)
			// Stall until there is room for the new activation.
			for resident+kept > capacity && len(queue) > 0 {
				next := queue[0].done
				for _, p := range queue {
					if p.done < next {
						next = p.done
					}
				}
				if next > tCompute {
					stall += next - tCompute
					tCompute = next
				}
				free(tCompute)
			}
			if resident+kept > capacity {
				fits = false // nothing left to free: the model cannot run
			}
			resident += kept
			if resident > peak {
				peak = resident
			}
			start := tCompute
			if offEnd > start {
				start = offEnd
			}
			offEnd = start + l.ActBytes/effRate(cfg, s, l.Kind)
			queue = append(queue, pending{done: offEnd, bytes: kept})
		} else {
			// GPU-resident compression (GIST): compressed bytes stay for
			// the whole forward pass.
			tCompute += s.CompressPasses(l.Kind) * l.ActBytes / hbm
			resident += l.ActBytes / s.Ratio(l.Kind)
			if resident > peak {
				peak = resident
			}
			if resident > capacity {
				fits = false
			}
		}
	}
	fwd := tCompute
	if s.Offload && offEnd > fwd {
		fwd = offEnd
	}
	base := Simulate(w, s, cfg)
	return MemResult{
		Result:       Result{Forward: fwd, Backward: base.Backward},
		StallSeconds: stall,
		PeakResident: peak,
		FitsInMemory: fits,
	}
}

// MinCapacity returns the smallest GPU memory (bytes) at which the
// forward pass of w under s incurs no memory stalls, found by bisection.
func MinCapacity(w Workload, s Scheme, cfg Config) float64 {
	lo, hi := 0.0, w.TotalActBytes()+1
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		r := SimulateWithCapacity(w, s, cfg, mid)
		if r.StallSeconds > 0 || !r.FitsInMemory {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
