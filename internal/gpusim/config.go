// Package gpusim is an analytic/discrete-event performance model of the
// paper's evaluation platform (DESIGN.md substitution 4): an NVIDIA
// Titan V-class GPU with HBM, a crossbar interconnect, a PCIe 3.0 DMA
// engine to CPU DRAM, and optional Compression/Decompression Units at the
// DMA (Fig. 7). It executes forward/backward offload schedules for vDNN,
// cDMA+, GIST and JPEG-ACT over CNR-block microbenchmarks (Fig. 1a) and
// reports runtimes relative to vDNN (Figs. 18, 20, 21).
package gpusim

// Config describes the simulated platform. The defaults model the
// paper's setup (§V): Titan V boost clocks, 40 SMs, 32 B/cycle crossbar
// links, 850 MHz HBM, PCIe 3.0 at 12.8 GB/s effective.
type Config struct {
	NumSM           int
	SMClockGHz      float64
	PeakTFLOPS      float64 // fp32 peak across all SMs
	HBMBandwidthGBs float64
	PCIeGBs         float64 // effective host-transfer rate
	ICClockGHz      float64 // interconnect/crossbar clock
	CrossbarBytes   float64 // bytes per cycle per crossbar link
	NumCDU          int     // compression units at the DMA
	CDUBlockCycles  float64 // cycles per 8×8 block load/store per CDU (8)
	// CacheSideSFPR models the combined cache-/DMA-side design of §VI-E:
	// SFPR at every L2 partition compresses traffic 4× before it crosses
	// the interconnect, quadrupling the effective CDU ingest rate.
	CacheSideSFPR bool
}

// TitanV returns the paper's platform configuration with n CDUs.
func TitanV(n int) Config {
	return Config{
		NumSM:           40,
		SMClockGHz:      1.455,
		PeakTFLOPS:      14.9,
		HBMBandwidthGBs: 650,
		PCIeGBs:         12.8,
		ICClockGHz:      1.455,
		CrossbarBytes:   32,
		NumCDU:          n,
		CDUBlockCycles:  8,
	}
}

// CDUIngestGBs returns the rate at which uncompressed activation bytes
// can be pulled from GPU memory into the CDUs: one 256 B block (64 fp32
// values) per CDUBlockCycles per CDU, i.e. 32 B/cycle/CDU at the
// interconnect clock — the crossbar-link bound of §III-G.
func (c Config) CDUIngestGBs() float64 {
	if c.NumCDU <= 0 {
		return 0
	}
	rate := float64(c.NumCDU) * c.CrossbarBytes * c.ICClockGHz // GB/s
	if c.CacheSideSFPR {
		// Traffic already 4× compressed when it crosses the interconnect.
		rate *= 4
	}
	return rate
}

// KernelClass captures the efficiency of a kernel type on the SMs.
type KernelClass int

const (
	// KernelWinograd is a 3×3 convolution via Winograd (high efficiency).
	KernelWinograd KernelClass = iota
	// KernelGEMM is a 1×1 convolution via implicit GEMM.
	KernelGEMM
	// KernelElementwise is a memory-bound elementwise op (BN, ReLU, sum).
	KernelElementwise
	// KernelLowDensity models VDSR's few-channel large-plane convolutions
	// that cuDNN serves with low-compute-density kernels (§VI-D).
	KernelLowDensity
)

// utilization is the fraction of peak FLOPS each class achieves.
func (k KernelClass) utilization() float64 {
	switch k {
	case KernelWinograd:
		return 0.55
	case KernelGEMM:
		return 0.35
	case KernelLowDensity:
		return 0.12
	default:
		return 0 // elementwise is memory-bound, not FLOP-bound
	}
}

// ComputeSeconds returns the SM time of a layer with the given FLOPs and
// HBM traffic, taking the max of the compute-bound and memory-bound
// estimates (simple roofline).
func (c Config) ComputeSeconds(flops, memBytes float64, class KernelClass) float64 {
	var tc float64
	if u := class.utilization(); u > 0 {
		tc = flops / (c.PeakTFLOPS * 1e12 * u)
	}
	tm := memBytes / (c.HBMBandwidthGBs * 1e9 * 0.8)
	if tm > tc {
		return tm
	}
	return tc
}
