package gpusim

import (
	"fmt"
	"strings"
)

// Schedule tracing: the same two-stream model as Simulate, but recording
// every kernel and offload interval so the Fig. 1a schedule pictures can
// be rendered (compute stream c, memcpy stream m, with the arrows from
// each kernel to its activation offload).

// StreamID distinguishes the two GPU streams of Fig. 1a.
type StreamID int

const (
	// StreamCompute is the kernel stream.
	StreamCompute StreamID = iota
	// StreamMemcpy is the DMA/offload stream.
	StreamMemcpy
)

// Event is one interval on a stream.
type Event struct {
	Stream StreamID
	Name   string
	Start  float64
	End    float64
}

// Trace is the recorded forward-pass schedule.
type Trace struct {
	Scheme   string
	Events   []Event
	Makespan float64
}

// TraceForward records the forward-pass schedule of w under s.
func TraceForward(w Workload, s Scheme, cfg Config) Trace {
	hbm := cfg.HBMBandwidthGBs * 1e9 * 0.8
	tr := Trace{Scheme: s.Name}
	var tCompute, offEnd float64
	for _, l := range w.Layers {
		dur := cfg.ComputeSeconds(l.FLOPs, l.MemBytes, l.Class)
		tr.Events = append(tr.Events, Event{StreamCompute, l.Name, tCompute, tCompute + dur})
		tCompute += dur
		if l.ActBytes <= 0 {
			continue
		}
		if passes := s.CompressPasses(l.Kind); passes > 0 {
			cdur := passes * l.ActBytes / hbm
			tr.Events = append(tr.Events, Event{StreamCompute, l.Name + ".compress", tCompute, tCompute + cdur})
			tCompute += cdur
		}
		if s.Offload {
			start := tCompute
			if offEnd > start {
				start = offEnd
			}
			offEnd = start + l.ActBytes/effRate(cfg, s, l.Kind)
			tr.Events = append(tr.Events, Event{StreamMemcpy, l.Name + ".offload", start, offEnd})
		}
	}
	tr.Makespan = tCompute
	if offEnd > tr.Makespan {
		tr.Makespan = offEnd
	}
	return tr
}

// Render draws the trace as a two-row ASCII Gantt chart of the given
// width, the textual equivalent of Fig. 1a: '#' marks compute kernels,
// '=' marks offloads, '.' marks idle time.
func (t Trace) Render(width int) string {
	if width < 10 {
		width = 10
	}
	rows := map[StreamID][]byte{
		StreamCompute: bytesOf('.', width),
		StreamMemcpy:  bytesOf('.', width),
	}
	mark := map[StreamID]byte{StreamCompute: '#', StreamMemcpy: '='}
	for _, e := range t.Events {
		a := int(e.Start / t.Makespan * float64(width))
		b := int(e.End / t.Makespan * float64(width))
		if b <= a {
			b = a + 1
		}
		if b > width {
			b = width
		}
		for i := a; i < b; i++ {
			rows[e.Stream][i] = mark[e.Stream]
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s c %s\n", t.Scheme, rows[StreamCompute])
	fmt.Fprintf(&sb, "%-10s m %s\n", "", rows[StreamMemcpy])
	return sb.String()
}

func bytesOf(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Utilization returns the busy fraction of each stream over the makespan.
func (t Trace) Utilization() (compute, memcpy float64) {
	var c, m float64
	for _, e := range t.Events {
		d := e.End - e.Start
		if e.Stream == StreamCompute {
			c += d
		} else {
			m += d
		}
	}
	if t.Makespan == 0 {
		return 0, 0
	}
	return c / t.Makespan, m / t.Makespan
}
