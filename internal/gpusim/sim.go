package gpusim

import "jpegact/internal/compress"

// Scheme describes how one offload method uses the platform.
type Scheme struct {
	Name string
	// Offload transfers saved activations to CPU DRAM over PCIe.
	Offload bool
	// DMASide applies the CDU ingest constraint (compression hardware at
	// the DMA engine, Fig. 7b).
	DMASide bool
	// Ratio returns the compression ratio for an activation kind.
	Ratio func(compress.Kind) float64
	// CompressPasses/DecompressPasses are extra HBM round trips per
	// activation byte spent by GPU-kernel compression (GIST runs on the
	// SMs and steals compute-stream time instead of using PCIe).
	CompressPasses   func(compress.Kind) float64
	DecompressPasses func(compress.Kind) float64
}

func one(compress.Kind) float64  { return 1 }
func zero(compress.Kind) float64 { return 0 }

// NoOffload is the ideal lower bound: compute only.
func NoOffload() Scheme {
	return Scheme{Name: "ideal", Ratio: one, CompressPasses: zero, DecompressPasses: zero}
}

// VDNN offloads raw activations over PCIe with no compression.
func VDNN() Scheme {
	return Scheme{Name: "vDNN", Offload: true, Ratio: one, CompressPasses: zero, DecompressPasses: zero}
}

// CDMAPlus offloads with DMA-side ZVC: sparse kinds compress, dense conv
// does not (ratios from §VI-B / Rhu et al.).
func CDMAPlus() Scheme {
	return Scheme{
		Name: "cDMA+", Offload: true, DMASide: true,
		Ratio: func(k compress.Kind) float64 {
			switch k {
			case compress.KindReLUToConv, compress.KindReLUToOther:
				return 2.1
			case compress.KindPoolDropout:
				return 3.9
			default:
				return 1.0
			}
		},
		CompressPasses: zero, DecompressPasses: zero,
	}
}

// GIST compresses into GPU memory with SM kernels: no PCIe traffic, but
// the compression kernels occupy the compute stream. The dense2CSR
// non-zero scan costs several HBM passes — longer than a 1×1 conv kernel
// on bottleneck layers (§VI-D).
func GIST() Scheme {
	passes := func(k compress.Kind) float64 {
		switch k {
		case compress.KindReLUToConv, compress.KindPoolDropout:
			return 6 // DPR + cuSparse dense2CSR non-zero scan + gather
		case compress.KindReLUToOther:
			return 1 // BRC bit-pack
		default:
			return 3 // DPR cast + store round trip
		}
	}
	return Scheme{Name: "GIST", Ratio: one, CompressPasses: passes, DecompressPasses: passes}
}

// SFPROnly is the accelerator with only the SFPR stage: a fixed 4× ratio
// on every kind.
func SFPROnly() Scheme {
	return Scheme{
		Name: "SFPR", Offload: true, DMASide: true,
		Ratio:          func(compress.Kind) float64 { return 4 },
		CompressPasses: zero, DecompressPasses: zero,
	}
}

// Ratios maps activation kinds to compression ratios for the JPEG
// schemes; inject measured ratios from the functional simulation here.
type Ratios map[compress.Kind]float64

func (r Ratios) fn() func(compress.Kind) float64 {
	return func(k compress.Kind) float64 {
		if v, ok := r[k]; ok {
			return v
		}
		return 1
	}
}

// JPEGActDefaultRatios are the Table I-band ratios for JPEG-ACT/optL5H.
func JPEGActDefaultRatios() Ratios {
	return Ratios{
		compress.KindConv:        8.5,
		compress.KindReLUToConv:  6.4,
		compress.KindReLUToOther: 32,
		compress.KindPoolDropout: 6.4,
	}
}

// JPEGBaseDefaultRatios are the jpeg80 JPEG-BASE ratios.
func JPEGBaseDefaultRatios() Ratios {
	return Ratios{
		compress.KindConv:        5.8,
		compress.KindReLUToConv:  4,
		compress.KindReLUToOther: 32,
		compress.KindPoolDropout: 4,
	}
}

// JPEGAct is the full accelerator with the given per-kind ratios.
func JPEGAct(r Ratios) Scheme {
	return Scheme{Name: "JPEG-ACT", Offload: true, DMASide: true,
		Ratio: r.fn(), CompressPasses: zero, DecompressPasses: zero}
}

// JPEGBase is the stock-JPEG accelerator variant.
func JPEGBase(r Ratios) Scheme {
	return Scheme{Name: "JPEG-BASE", Offload: true, DMASide: true,
		Ratio: r.fn(), CompressPasses: zero, DecompressPasses: zero}
}

// Result holds simulated times in seconds.
type Result struct {
	Forward  float64
	Backward float64
}

// Total returns forward + backward time.
func (r Result) Total() float64 { return r.Forward + r.Backward }

// effRate returns the effective offload rate in uncompressed bytes/sec
// for an activation of the given kind: PCIe delivers compressed bytes
// (so ×ratio in uncompressed terms) and, for DMA-side schemes, the
// crossbar links into the CDUs bound the uncompressed ingest (§VI-E).
func effRate(cfg Config, s Scheme, k compress.Kind) float64 {
	rate := cfg.PCIeGBs * 1e9 * s.Ratio(k)
	if s.DMASide {
		if ingest := cfg.CDUIngestGBs() * 1e9; ingest < rate {
			rate = ingest
		}
	}
	return rate
}

// Simulate runs the two-stream schedule of Fig. 1a: kernels execute on
// the compute stream while activation offloads queue on the memcpy
// stream; an iteration ends when both streams drain. The backward pass
// mirrors it with prefetches that must land before each layer's backward
// kernel.
func Simulate(w Workload, s Scheme, cfg Config) Result {
	hbm := cfg.HBMBandwidthGBs * 1e9 * 0.8

	// Forward.
	var tCompute, offEnd float64
	for _, l := range w.Layers {
		tCompute += cfg.ComputeSeconds(l.FLOPs, l.MemBytes, l.Class)
		if l.ActBytes > 0 {
			tCompute += s.CompressPasses(l.Kind) * l.ActBytes / hbm
			if s.Offload {
				start := tCompute
				if offEnd > start {
					start = offEnd
				}
				offEnd = start + l.ActBytes/effRate(cfg, s, l.Kind)
			}
		}
	}
	fwd := tCompute
	if offEnd > fwd {
		fwd = offEnd
	}

	// Backward: activations are prefetched in reverse order on the
	// memcpy stream; each layer's backward kernel (≈2× forward work)
	// waits for its own fetch.
	var tBack, fetchEnd float64
	for i := len(w.Layers) - 1; i >= 0; i-- {
		l := w.Layers[i]
		if l.ActBytes > 0 && s.Offload {
			fetchEnd += l.ActBytes / effRate(cfg, s, l.Kind)
			if fetchEnd > tBack {
				tBack = fetchEnd
			}
		}
		tBack += 2 * cfg.ComputeSeconds(l.FLOPs, l.MemBytes, l.Class)
		if l.ActBytes > 0 {
			tBack += s.DecompressPasses(l.Kind) * l.ActBytes / hbm
		}
	}
	return Result{Forward: fwd, Backward: tBack}
}

// Relative returns the speedup of scheme s over vDNN on workload w.
func Relative(w Workload, s Scheme, cfg Config) float64 {
	base := Simulate(w, VDNN(), cfg).Total()
	return base / Simulate(w, s, cfg).Total()
}

// Overhead returns scheme s's slowdown versus the no-offload ideal.
func Overhead(w Workload, s Scheme, cfg Config) float64 {
	ideal := Simulate(w, NoOffload(), cfg).Total()
	return Simulate(w, s, cfg).Total() / ideal
}

// EffectiveOffloadGBs returns the Table V "Offload" column: the
// compressed-domain PCIe rate times the average ratio, capped by the CDU
// ingest bound, expressed in uncompressed GB/s.
func EffectiveOffloadGBs(cfg Config, avgRatio float64, dmaSide bool) float64 {
	rate := cfg.PCIeGBs * avgRatio
	if dmaSide {
		if ingest := cfg.CDUIngestGBs(); ingest < rate {
			rate = ingest
		}
	}
	return rate
}
