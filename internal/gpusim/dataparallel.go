package gpusim

// K-GPU data-parallel scaling model: each of k GPUs runs the full
// forward/backward schedule on 1/k of the step's microbatches, then the
// replicas exchange weight gradients over the host interconnect (PCIe
// in the paper's platform, Table V) before the synchronous update. The
// exchange is modelled as a ring all-reduce: each GPU moves
// 2·(k-1)/k · gradBytes over its PCIe link, compressed by the gradient
// codec's ratio. The model is intentionally simple — it predicts the
// shape of the measured scaling sweep (cmd/offloadbench -dp), not
// absolute times.

// DPConfig parameterizes the data-parallel scaling model.
type DPConfig struct {
	// GPUs is k, the replica count (≥ 1).
	GPUs int
	// GradBytes is the float32 weight-gradient footprint one replica
	// publishes per step.
	GradBytes float64
	// GradRatio is the gradient codec's compression ratio over the
	// exchange (1 = CodecGradRaw; > 1 for the quantized codec).
	GradRatio float64
	// ReduceSeconds is the per-step fixed cost of the reduction itself
	// (the fixed-order accumulate, barriers). 0 = ignore.
	ReduceSeconds float64
	// Overlap is the fraction of the gradient exchange hidden behind
	// backward compute (clamped to [0, 1]). 0 models the serial
	// exchange — all gradients ship after backward finishes; with the
	// bucketed backward-overlapped exchange the tail-of-network buckets
	// ship while the head still differentiates, exposing only
	// (1-Overlap) of the wire time on the critical path.
	Overlap float64
	// HostCores caps the effective compute parallelism of the platform
	// hosting the replicas (0 = unlimited, i.e. every replica gets its
	// own device). On a host emulating k replicas with fewer cores, the
	// per-replica compute share divides by min(k, HostCores) instead of
	// k — the clamp that makes the prediction honest on a small machine.
	HostCores int
}

// DPResult is one simulated data-parallel step.
type DPResult struct {
	GPUs           int
	ComputeSeconds float64 // per-GPU forward+backward share
	ExchangeSec    float64 // ring all-reduce wire time (before overlap)
	ExposedSec     float64 // exchange time left on the critical path
	TotalSeconds   float64
	// Speedup is versus the same model at GPUs=1.
	Speedup float64
	// Efficiency is Speedup / GPUs.
	Efficiency float64
}

// SimulateDataParallel predicts one data-parallel training step of
// workload w under scheme s on k GPUs of the given platform. Compute
// (including the offload machinery of Simulate) divides by the
// effective parallelism — k, or min(k, HostCores) when the host caps
// it — while the gradient exchange grows with the ring term 2(k-1)/k
// and does not shrink; the overlap factor decides how much of it the
// backward pass hides. Speedup is therefore sublinear and monotone in
// dp.GradBytes.
func SimulateDataParallel(w Workload, s Scheme, cfg Config, dp DPConfig) DPResult {
	k := dp.GPUs
	if k < 1 {
		k = 1
	}
	ratio := dp.GradRatio
	if ratio <= 0 {
		ratio = 1
	}
	overlap := dp.Overlap
	if overlap < 0 {
		overlap = 0
	} else if overlap > 1 {
		overlap = 1
	}
	eff := k
	if dp.HostCores > 0 && dp.HostCores < eff {
		eff = dp.HostCores
	}
	stepCompute := Simulate(w, s, cfg).Total()

	perGPU := stepCompute / float64(eff)
	var exchange float64
	if k > 1 {
		wire := dp.GradBytes / ratio
		exchange = 2 * float64(k-1) / float64(k) * wire / (cfg.PCIeGBs * 1e9)
	}
	// Overlapped wire time hides under backward compute, but never below
	// the compute itself: the critical path is max(compute, hidden wire)
	// plus whatever stayed exposed.
	exposed := (1 - overlap) * exchange
	hidden := exchange - exposed
	critical := perGPU
	if hidden > critical {
		critical = hidden
	}
	total := critical + exposed + dp.ReduceSeconds
	base := stepCompute + dp.ReduceSeconds
	res := DPResult{
		GPUs:           k,
		ComputeSeconds: perGPU,
		ExchangeSec:    exchange,
		ExposedSec:     exposed,
		TotalSeconds:   total,
		Speedup:        base / total,
	}
	res.Efficiency = res.Speedup / float64(k)
	return res
}

// DPSweep runs SimulateDataParallel for each replica count in ks.
func DPSweep(w Workload, s Scheme, cfg Config, dp DPConfig, ks []int) []DPResult {
	out := make([]DPResult, 0, len(ks))
	for _, k := range ks {
		d := dp
		d.GPUs = k
		out = append(out, SimulateDataParallel(w, s, cfg, d))
	}
	return out
}
