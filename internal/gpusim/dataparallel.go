package gpusim

// K-GPU data-parallel scaling model: each of k GPUs runs the full
// forward/backward schedule on 1/k of the step's microbatches, then the
// replicas exchange weight gradients over the host interconnect (PCIe
// in the paper's platform, Table V) before the synchronous update. The
// exchange is modelled as a ring all-reduce: each GPU moves
// 2·(k-1)/k · gradBytes over its PCIe link, compressed by the gradient
// codec's ratio. The model is intentionally simple — it predicts the
// shape of the measured scaling sweep (cmd/offloadbench -dp), not
// absolute times.

// DPConfig parameterizes the data-parallel scaling model.
type DPConfig struct {
	// GPUs is k, the replica count (≥ 1).
	GPUs int
	// GradBytes is the float32 weight-gradient footprint one replica
	// publishes per step.
	GradBytes float64
	// GradRatio is the gradient codec's compression ratio over the
	// exchange (1 = CodecGradRaw; > 1 for the quantized codec).
	GradRatio float64
	// ReduceSeconds is the per-step fixed cost of the reduction itself
	// (the fixed-order accumulate, barriers). 0 = ignore.
	ReduceSeconds float64
}

// DPResult is one simulated data-parallel step.
type DPResult struct {
	GPUs           int
	ComputeSeconds float64 // per-GPU forward+backward share
	ExchangeSec    float64 // ring all-reduce wall time
	TotalSeconds   float64
	// Speedup is versus the same model at GPUs=1.
	Speedup float64
	// Efficiency is Speedup / GPUs.
	Efficiency float64
}

// SimulateDataParallel predicts one data-parallel training step of
// workload w under scheme s on k GPUs of the given platform. Compute
// (including the offload machinery of Simulate) divides by k — the
// microbatches are disjoint — while the gradient exchange grows with
// the ring term 2(k-1)/k and does not shrink. Speedup is therefore
// sublinear and monotone in dp.GradBytes.
func SimulateDataParallel(w Workload, s Scheme, cfg Config, dp DPConfig) DPResult {
	k := dp.GPUs
	if k < 1 {
		k = 1
	}
	ratio := dp.GradRatio
	if ratio <= 0 {
		ratio = 1
	}
	stepCompute := Simulate(w, s, cfg).Total()

	perGPU := stepCompute / float64(k)
	var exchange float64
	if k > 1 {
		wire := dp.GradBytes / ratio
		exchange = 2 * float64(k-1) / float64(k) * wire / (cfg.PCIeGBs * 1e9)
	}
	total := perGPU + exchange + dp.ReduceSeconds
	base := stepCompute + dp.ReduceSeconds
	res := DPResult{
		GPUs:           k,
		ComputeSeconds: perGPU,
		ExchangeSec:    exchange,
		TotalSeconds:   total,
		Speedup:        base / total,
	}
	res.Efficiency = res.Speedup / float64(k)
	return res
}

// DPSweep runs SimulateDataParallel for each replica count in ks.
func DPSweep(w Workload, s Scheme, cfg Config, dp DPConfig, ks []int) []DPResult {
	out := make([]DPResult, 0, len(ks))
	for _, k := range ks {
		d := dp
		d.GPUs = k
		out = append(out, SimulateDataParallel(w, s, cfg, d))
	}
	return out
}
