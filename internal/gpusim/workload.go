package gpusim

import "jpegact/internal/compress"

// LayerOp is one kernel in the CNR microbenchmark with the activation it
// must save for the backward pass.
type LayerOp struct {
	Name     string
	Class    KernelClass
	FLOPs    float64
	MemBytes float64 // HBM traffic of the kernel itself
	// ActBytes is the float32 footprint of the activation saved after
	// this op (0 = nothing saved).
	ActBytes float64
	Kind     compress.Kind
}

// Workload is one network's microbenchmark: the layers of three sampled
// CNR blocks (§VI-D: the first, middle and last block, batch 16).
type Workload struct {
	Name   string
	Layers []LayerOp
}

// cnrBlock builds the three kernels of one conv/norm/ReLU block at batch
// n, spatial h×w, inC→outC channels with a k×k kernel. VDSR-style blocks
// use the low-density kernel class.
func cnrBlock(name string, n, inC, outC, h, w, k int, lowDensity bool) []LayerOp {
	spatial := float64(h * w)
	batch := float64(n)
	convFLOPs := 2 * batch * float64(outC) * spatial * float64(inC*k*k)
	actIn := 4 * batch * float64(inC) * spatial   // conv input (saved)
	actOut := 4 * batch * float64(outC) * spatial // conv output = norm input (saved)

	class := KernelWinograd
	if k == 1 {
		class = KernelGEMM
	}
	if lowDensity {
		class = KernelLowDensity
	}
	return []LayerOp{
		{Name: name + ".conv", Class: class, FLOPs: convFLOPs, MemBytes: actIn + actOut, ActBytes: actIn, Kind: compress.KindReLUToConv},
		{Name: name + ".norm", Class: KernelElementwise, MemBytes: 2 * actOut, ActBytes: actOut, Kind: compress.KindConv},
		{Name: name + ".relu", Class: KernelElementwise, MemBytes: 2 * actOut, ActBytes: actOut, Kind: compress.KindReLUToConv},
	}
}

// withDropout appends a dropout op after a block (VGG, WRN).
func withDropout(ops []LayerOp, n, c, h, w int) []LayerOp {
	bytes := 4 * float64(n*c*h*w)
	return append(ops, LayerOp{
		Name: "dropout", Class: KernelElementwise, MemBytes: 2 * bytes,
		ActBytes: bytes, Kind: compress.KindPoolDropout,
	})
}

const batch = 16

// Workloads returns the seven network microbenchmarks of Fig. 20 with
// full-scale layer dimensions (the performance model needs only shapes,
// so unlike the functional training substrate it uses the real sizes).
func Workloads() []Workload {
	var ws []Workload

	// CIFAR10 networks: 32×32 inputs.
	vgg := Workload{Name: "VGG"}
	vgg.Layers = append(vgg.Layers, cnrBlock("first", batch, 64, 64, 32, 32, 3, false)...)
	vgg.Layers = withDropout(vgg.Layers, batch, 64, 32, 32)
	vgg.Layers = append(vgg.Layers, cnrBlock("mid", batch, 256, 256, 8, 8, 3, false)...)
	vgg.Layers = withDropout(vgg.Layers, batch, 256, 8, 8)
	vgg.Layers = append(vgg.Layers, cnrBlock("last", batch, 512, 512, 4, 4, 3, false)...)
	vgg.Layers = withDropout(vgg.Layers, batch, 512, 4, 4)
	ws = append(ws, vgg)

	r50c := Workload{Name: "ResNet50"}
	// Bottleneck blocks: 1×1 reduce, 3×3, 1×1 expand (the GIST-hostile
	// large-activation/low-FLOP shape, §VI-D).
	r50c.Layers = append(r50c.Layers, cnrBlock("first.a", batch, 256, 64, 32, 32, 1, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("first.b", batch, 64, 64, 32, 32, 3, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("first.c", batch, 64, 256, 32, 32, 1, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("mid.a", batch, 512, 128, 16, 16, 1, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("mid.b", batch, 128, 128, 16, 16, 3, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("mid.c", batch, 128, 512, 16, 16, 1, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("last.a", batch, 2048, 512, 8, 8, 1, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("last.b", batch, 512, 512, 8, 8, 3, false)...)
	r50c.Layers = append(r50c.Layers, cnrBlock("last.c", batch, 512, 2048, 8, 8, 1, false)...)
	ws = append(ws, r50c)

	r101 := r50c
	r101.Name = "ResNet101"
	ws = append(ws, r101)

	wrn := Workload{Name: "WRN"}
	wrn.Layers = append(wrn.Layers, cnrBlock("first", batch, 160, 160, 32, 32, 3, false)...)
	wrn.Layers = withDropout(wrn.Layers, batch, 160, 32, 32)
	wrn.Layers = append(wrn.Layers, cnrBlock("mid", batch, 320, 320, 16, 16, 3, false)...)
	wrn.Layers = withDropout(wrn.Layers, batch, 320, 16, 16)
	wrn.Layers = append(wrn.Layers, cnrBlock("last", batch, 640, 640, 8, 8, 3, false)...)
	wrn.Layers = withDropout(wrn.Layers, batch, 640, 8, 8)
	ws = append(ws, wrn)

	// ImageNet networks: 224×224 inputs.
	r18i := Workload{Name: "ResNet18/IN"}
	r18i.Layers = append(r18i.Layers, cnrBlock("first", batch, 64, 64, 56, 56, 3, false)...)
	r18i.Layers = append(r18i.Layers, cnrBlock("mid", batch, 128, 128, 28, 28, 3, false)...)
	r18i.Layers = append(r18i.Layers, cnrBlock("last", batch, 512, 512, 7, 7, 3, false)...)
	ws = append(ws, r18i)

	r50i := Workload{Name: "ResNet50/IN"}
	r50i.Layers = append(r50i.Layers, cnrBlock("first.a", batch, 256, 64, 56, 56, 1, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("first.b", batch, 64, 64, 56, 56, 3, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("first.c", batch, 64, 256, 56, 56, 1, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("mid.a", batch, 512, 128, 28, 28, 1, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("mid.b", batch, 128, 128, 28, 28, 3, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("mid.c", batch, 128, 512, 28, 28, 1, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("last.a", batch, 2048, 512, 7, 7, 1, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("last.b", batch, 512, 512, 7, 7, 3, false)...)
	r50i.Layers = append(r50i.Layers, cnrBlock("last.c", batch, 512, 2048, 7, 7, 1, false)...)
	ws = append(ws, r50i)

	// VDSR/Div2k: few channels, large planes, low-density kernels.
	vdsr := Workload{Name: "VDSR"}
	vdsr.Layers = append(vdsr.Layers, cnrBlock("first", batch, 64, 64, 64, 64, 3, true)...)
	vdsr.Layers = append(vdsr.Layers, cnrBlock("mid", batch, 64, 64, 64, 64, 3, true)...)
	vdsr.Layers = append(vdsr.Layers, cnrBlock("last", batch, 64, 64, 64, 64, 3, true)...)
	ws = append(ws, vdsr)

	return ws
}

// TotalActBytes sums the saved-activation footprint of the workload.
func (w Workload) TotalActBytes() float64 {
	var t float64
	for _, l := range w.Layers {
		t += l.ActBytes
	}
	return t
}

// TotalComputeSeconds sums the kernel times under cfg (the no-offload
// ideal).
func (w Workload) TotalComputeSeconds(cfg Config) float64 {
	var t float64
	for _, l := range w.Layers {
		t += cfg.ComputeSeconds(l.FLOPs, l.MemBytes, l.Class)
	}
	return t
}
