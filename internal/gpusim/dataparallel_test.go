package gpusim

import "testing"

// TestDataParallelScalingShape: speedup(1) = 1 exactly, speedup is
// sublinear (< k) whenever there is an exchange, monotone in k for a
// compute-dominated workload, and compression of the exchange helps.
func TestDataParallelScalingShape(t *testing.T) {
	w := Workloads()[0]
	cfg := TitanV(4)
	// ~1 MB of gradients against VGG's ~1.5 ms step keeps the sweep
	// compute-dominated, the regime where adding GPUs should win.
	dp := DPConfig{GradBytes: 1e6, GradRatio: 1}

	prev := 0.0
	for _, k := range []int{1, 2, 4, 8} {
		d := dp
		d.GPUs = k
		r := SimulateDataParallel(w, JPEGAct(JPEGActDefaultRatios()), cfg, d)
		if k == 1 {
			if r.Speedup != 1 {
				t.Fatalf("speedup(1) = %v, want exactly 1", r.Speedup)
			}
			if r.ExchangeSec != 0 {
				t.Fatalf("k=1 pays exchange time %v", r.ExchangeSec)
			}
		} else {
			if r.Speedup >= float64(k) {
				t.Fatalf("k=%d speedup %v is not sublinear", k, r.Speedup)
			}
			if r.Speedup <= prev {
				t.Fatalf("k=%d speedup %v not above k/2's %v for this compute-bound workload", k, r.Speedup, prev)
			}
			if r.Efficiency >= 1 || r.Efficiency <= 0 {
				t.Fatalf("k=%d efficiency %v out of (0,1)", k, r.Efficiency)
			}
		}
		prev = r.Speedup
	}
}

// TestDataParallelCompressionHelps: a compressed gradient exchange must
// strictly beat the raw one at the same k, and a zero-size gradient
// must give the ideal compute-only split.
func TestDataParallelCompressionHelps(t *testing.T) {
	w := Workloads()[0]
	cfg := TitanV(4)
	raw := SimulateDataParallel(w, VDNN(), cfg, DPConfig{GPUs: 4, GradBytes: 500e6, GradRatio: 1})
	comp := SimulateDataParallel(w, VDNN(), cfg, DPConfig{GPUs: 4, GradBytes: 500e6, GradRatio: 4})
	if comp.TotalSeconds >= raw.TotalSeconds {
		t.Fatalf("4x gradient compression did not reduce step time: %v vs %v", comp.TotalSeconds, raw.TotalSeconds)
	}
	ideal := SimulateDataParallel(w, VDNN(), cfg, DPConfig{GPUs: 4, GradBytes: 0})
	if ideal.ExchangeSec != 0 {
		t.Fatalf("zero gradient bytes still pays exchange %v", ideal.ExchangeSec)
	}
	if got, want := ideal.ComputeSeconds*4, Simulate(w, VDNN(), cfg).Total(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("k=4 compute share %v, want quarter of %v", ideal.ComputeSeconds, want)
	}
}

// TestDPSweep: the sweep helper preserves order and per-k results.
func TestDPSweep(t *testing.T) {
	w := Workloads()[0]
	cfg := TitanV(4)
	ks := []int{1, 2, 4}
	res := DPSweep(w, JPEGAct(JPEGActDefaultRatios()), cfg, DPConfig{GradBytes: 50e6, GradRatio: 1}, ks)
	if len(res) != len(ks) {
		t.Fatalf("%d results for %d ks", len(res), len(ks))
	}
	for i, k := range ks {
		if res[i].GPUs != k {
			t.Fatalf("result %d is for k=%d, want %d", i, res[i].GPUs, k)
		}
		single := SimulateDataParallel(w, JPEGAct(JPEGActDefaultRatios()), cfg, DPConfig{GPUs: k, GradBytes: 50e6, GradRatio: 1})
		if res[i] != single {
			t.Fatalf("sweep result %d differs from direct simulation", i)
		}
	}
}
