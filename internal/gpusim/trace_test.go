package gpusim

import (
	"strings"
	"testing"
)

func TestTraceMatchesSimulate(t *testing.T) {
	cfg := TitanV(4)
	for _, s := range []Scheme{VDNN(), CDMAPlus(), GIST(), JPEGAct(JPEGActDefaultRatios())} {
		w := findWorkload(t, "ResNet50")
		tr := TraceForward(w, s, cfg)
		base := Simulate(w, s, cfg)
		if d := tr.Makespan - base.Forward; d < -1e-12 || d > 1e-12 {
			t.Fatalf("%s: trace makespan %v vs simulate %v", s.Name, tr.Makespan, base.Forward)
		}
	}
}

func TestTraceEventsWellFormed(t *testing.T) {
	cfg := TitanV(4)
	w := findWorkload(t, "VGG")
	tr := TraceForward(w, JPEGAct(JPEGActDefaultRatios()), cfg)
	if len(tr.Events) == 0 {
		t.Fatal("no events")
	}
	var lastByStream [2]float64
	for _, e := range tr.Events {
		if e.End <= e.Start {
			t.Fatalf("empty event %+v", e)
		}
		if e.Start < lastByStream[e.Stream]-1e-15 {
			t.Fatalf("stream %d events overlap at %v", e.Stream, e.Start)
		}
		lastByStream[e.Stream] = e.End
	}
}

func TestTraceUtilizationShapes(t *testing.T) {
	cfg := TitanV(4)
	w := findWorkload(t, "ResNet50/IN")
	// vDNN: memcpy stream nearly saturated, compute mostly idle.
	cu, mu := TraceForward(w, VDNN(), cfg).Utilization()
	if mu < 0.9 || cu > 0.6 {
		t.Fatalf("vDNN utils compute %v memcpy %v", cu, mu)
	}
	// GIST: no memcpy at all.
	_, mg := TraceForward(w, GIST(), cfg).Utilization()
	if mg != 0 {
		t.Fatalf("GIST memcpy util %v", mg)
	}
	// JPEG-ACT: compute-dominated.
	ca, _ := TraceForward(w, JPEGAct(JPEGActDefaultRatios()), cfg).Utilization()
	if ca < 0.7 {
		t.Fatalf("JPEG-ACT compute util %v", ca)
	}
}

func TestTraceRender(t *testing.T) {
	cfg := TitanV(4)
	w := findWorkload(t, "VGG")
	out := TraceForward(w, VDNN(), cfg).Render(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines %d", len(lines))
	}
	if !strings.Contains(lines[0], "#") || !strings.Contains(lines[1], "=") {
		t.Fatalf("render missing marks:\n%s", out)
	}
	// Tiny width clamps.
	if TraceForward(w, VDNN(), cfg).Render(1) == "" {
		t.Fatal("render with tiny width failed")
	}
}
