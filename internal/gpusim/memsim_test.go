package gpusim

import "testing"

func TestCapacityUnconstrainedMatchesBase(t *testing.T) {
	cfg := TitanV(4)
	w := findWorkload(t, "ResNet50/IN")
	s := JPEGAct(JPEGActDefaultRatios())
	r := SimulateWithCapacity(w, s, cfg, 1e18)
	base := Simulate(w, s, cfg)
	if r.StallSeconds != 0 {
		t.Fatalf("stalls %v with unlimited memory", r.StallSeconds)
	}
	if !r.FitsInMemory {
		t.Fatal("must fit")
	}
	if diff := r.Forward - base.Forward; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("forward %v vs base %v", r.Forward, base.Forward)
	}
}

func TestTightCapacityStallsVDNN(t *testing.T) {
	cfg := TitanV(4)
	w := findWorkload(t, "ResNet50/IN")
	// Capacity of two largest activations: vDNN must stall behind PCIe.
	capacity := w.TotalActBytes() / 4
	r := SimulateWithCapacity(w, VDNN(), cfg, capacity)
	if r.StallSeconds <= 0 {
		t.Fatal("vDNN should stall under tight memory")
	}
	// vDNN's forward end is the offload tail either way (PCIe-bound), so
	// the stall shows as lost compute time, never as a faster run.
	free := SimulateWithCapacity(w, VDNN(), cfg, 1e18)
	if r.Forward < free.Forward {
		t.Fatal("constrained run cannot be faster")
	}
}

func TestCompressionLowersMinCapacity(t *testing.T) {
	// With compression, offloads drain faster, so less memory is needed
	// to run stall-free.
	cfg := TitanV(4)
	w := findWorkload(t, "ResNet50")
	vdnn := MinCapacity(w, VDNN(), cfg)
	act := MinCapacity(w, JPEGAct(JPEGActDefaultRatios()), cfg)
	if act >= vdnn {
		t.Fatalf("JPEG-ACT min capacity %v should be below vDNN %v", act, vdnn)
	}
}

func TestGISTResidencyGrows(t *testing.T) {
	// GIST keeps compressed activations in GPU memory: peak residency is
	// the sum of compressed sizes, and a capacity below that cannot run.
	cfg := TitanV(4)
	w := findWorkload(t, "ResNet50/IN")
	r := SimulateWithCapacity(w, GIST(), cfg, 1e18)
	if r.PeakResident <= 0 {
		t.Fatal("no residency tracked")
	}
	small := SimulateWithCapacity(w, GIST(), cfg, r.PeakResident/2)
	if small.FitsInMemory {
		t.Fatal("GIST must not fit below its compressed footprint")
	}
	// JPEG-ACT with the same capacity does fit: offloading drains memory.
	act := SimulateWithCapacity(w, JPEGAct(JPEGActDefaultRatios()), cfg, r.PeakResident/2)
	if !act.FitsInMemory {
		t.Fatal("JPEG-ACT should fit where GIST cannot")
	}
}

func TestStallGrowsAsCapacityShrinks(t *testing.T) {
	cfg := TitanV(4)
	w := findWorkload(t, "ResNet50/IN")
	prev := -1.0
	for _, frac := range []float64{1, 0.5, 0.25, 0.15} {
		r := SimulateWithCapacity(w, VDNN(), cfg, w.TotalActBytes()*frac)
		if prev >= 0 && r.StallSeconds < prev-1e-12 {
			t.Fatalf("stall not monotone: %v then %v at frac %v", prev, r.StallSeconds, frac)
		}
		prev = r.StallSeconds
	}
}
