package gpusim

import (
	"testing"

	"jpegact/internal/compress"
)

func TestConfigRates(t *testing.T) {
	cfg := TitanV(4)
	// 4 CDUs × 32 B/cycle × 1.455 GHz ≈ 186 GB/s ingest.
	if got := cfg.CDUIngestGBs(); got < 180 || got > 190 {
		t.Fatalf("ingest %v GB/s", got)
	}
	cfg.CacheSideSFPR = true
	if got := cfg.CDUIngestGBs(); got < 700 {
		t.Fatalf("cache-side ingest %v GB/s", got)
	}
	if TitanV(0).CDUIngestGBs() != 0 {
		t.Fatal("zero CDUs must have zero ingest")
	}
}

func TestComputeSecondsRoofline(t *testing.T) {
	cfg := TitanV(4)
	// Compute-bound: 1 GFLOP Winograd.
	tc := cfg.ComputeSeconds(1e9, 1e3, KernelWinograd)
	if tc <= 0 {
		t.Fatal("no compute time")
	}
	// Memory-bound: elementwise op on 1 GB.
	tm := cfg.ComputeSeconds(0, 1e9, KernelElementwise)
	want := 1e9 / (650e9 * 0.8)
	if tm < want*0.99 || tm > want*1.01 {
		t.Fatalf("elementwise time %v, want %v", tm, want)
	}
	// Low-density kernels are slower per FLOP than Winograd.
	if cfg.ComputeSeconds(1e9, 0, KernelLowDensity) <= cfg.ComputeSeconds(1e9, 0, KernelWinograd) {
		t.Fatal("low-density must be slower")
	}
}

func TestWorkloadsExist(t *testing.T) {
	ws := Workloads()
	if len(ws) != 7 {
		t.Fatalf("workloads %d, want 7", len(ws))
	}
	for _, w := range ws {
		if len(w.Layers) == 0 || w.TotalActBytes() <= 0 {
			t.Fatalf("%s empty", w.Name)
		}
		if w.TotalComputeSeconds(TitanV(4)) <= 0 {
			t.Fatalf("%s no compute", w.Name)
		}
	}
}

func findWorkload(t *testing.T, name string) Workload {
	t.Helper()
	for _, w := range Workloads() {
		if w.Name == name {
			return w
		}
	}
	t.Fatalf("workload %s missing", name)
	return Workload{}
}

func TestSchemeOrderingMatchesFig20(t *testing.T) {
	// On every workload: JPEG-ACT ≥ SFPR ≥ vDNN and JPEG-ACT > cDMA+.
	cfg := TitanV(4)
	for _, w := range Workloads() {
		vdnn := Simulate(w, VDNN(), cfg).Total()
		cdma := Simulate(w, CDMAPlus(), cfg).Total()
		sfpr := Simulate(w, SFPROnly(), cfg).Total()
		act := Simulate(w, JPEGAct(JPEGActDefaultRatios()), cfg).Total()
		if !(act <= sfpr && sfpr <= vdnn) {
			t.Fatalf("%s: act %v sfpr %v vdnn %v", w.Name, act, sfpr, vdnn)
		}
		if act >= cdma {
			t.Fatalf("%s: JPEG-ACT %v not faster than cDMA+ %v", w.Name, act, cdma)
		}
	}
}

func TestJPEGActSpeedupBands(t *testing.T) {
	// Aggregate speedups must land in the paper's bands: >2× over vDNN
	// (paper: 2.6×) and >1.2× over GIST (paper: 1.6×).
	cfg := TitanV(4)
	var sumVDNN, sumGIST, sumAct float64
	for _, w := range Workloads() {
		sumVDNN += Simulate(w, VDNN(), cfg).Total()
		sumGIST += Simulate(w, GIST(), cfg).Total()
		sumAct += Simulate(w, JPEGAct(JPEGActDefaultRatios()), cfg).Total()
	}
	if sp := sumVDNN / sumAct; sp < 2.0 {
		t.Fatalf("JPEG-ACT speedup over vDNN %v, want > 2", sp)
	}
	if sp := sumGIST / sumAct; sp < 1.2 {
		t.Fatalf("JPEG-ACT speedup over GIST %v, want > 1.2", sp)
	}
}

func TestGISTHurtsOnBottleneckNetworks(t *testing.T) {
	// GIST's compression kernels cost more relative to compute on
	// bottleneck networks: 1×1 convolutions have up to 9× fewer FLOPs
	// than similarly-sized 3×3 kernels, so the dense2CSR scan dominates
	// (§VI-D). Compare GIST's overhead versus the no-offload ideal on the
	// bottlenecked ResNet50/IN against the 3×3-only ResNet18/IN.
	cfg := TitanV(4)
	r50 := Overhead(findWorkload(t, "ResNet50/IN"), GIST(), cfg)
	r18 := Overhead(findWorkload(t, "ResNet18/IN"), GIST(), cfg)
	if r50 <= r18 {
		t.Fatalf("GIST overhead on ResNet50/IN (%v) should exceed ResNet18/IN (%v)", r50, r18)
	}
}

func TestJPEGActOverheadSmall(t *testing.T) {
	// JPEG-ACT nearly eliminates the PCIe bottleneck: overhead vs the
	// ideal should be small (paper: 1.13×); vDNN's is large.
	cfg := TitanV(4)
	var sumIdeal, sumAct, sumVDNN float64
	for _, w := range Workloads() {
		sumIdeal += Simulate(w, NoOffload(), cfg).Total()
		sumAct += Simulate(w, JPEGAct(JPEGActDefaultRatios()), cfg).Total()
		sumVDNN += Simulate(w, VDNN(), cfg).Total()
	}
	if ov := sumAct / sumIdeal; ov > 1.6 {
		t.Fatalf("JPEG-ACT overhead %v too large", ov)
	}
	if ov := sumVDNN / sumIdeal; ov < 1.8 {
		t.Fatalf("vDNN overhead %v suspiciously small", ov)
	}
}

func TestVDSROffloadGainsAreSmaller(t *testing.T) {
	// VDSR's few-channel large-plane layers run on low-compute-density
	// kernels: the network is compute-bound even under vDNN, so
	// compression buys less — its Fig. 20 bars sit 1.4–2.3× below the
	// other networks'.
	cfg := TitanV(4)
	s := JPEGAct(JPEGActDefaultRatios())
	vdsr := Relative(findWorkload(t, "VDSR"), s, cfg)
	r50 := Relative(findWorkload(t, "ResNet50/IN"), s, cfg)
	if vdsr >= r50/1.3 {
		t.Fatalf("VDSR relative perf %v should sit well below ResNet50/IN %v", vdsr, r50)
	}
}

func TestCDUCountSweepMatchesFig21(t *testing.T) {
	// At low compression (2×) extra CDUs do not help: PCIe is the
	// bottleneck. At high compression (12×) they do, saturating around 4.
	w := findWorkload(t, "ResNet50")
	fixedRatio := func(r float64) Scheme {
		return Scheme{Name: "fixed", Offload: true, DMASide: true,
			Ratio:          func(compress.Kind) float64 { return r },
			CompressPasses: zero, DecompressPasses: zero}
	}
	timeAt := func(ncdu int, ratio float64) float64 {
		return Simulate(w, fixedRatio(ratio), TitanV(ncdu)).Total()
	}
	// 2×: 1 CDU vs 8 CDUs nearly identical.
	if d := timeAt(1, 2) / timeAt(8, 2); d > 1.02 {
		t.Fatalf("2x compression should not scale with CDUs (%v)", d)
	}
	// 12×: 1 CDU much slower than 4; 4 ≈ 8.
	if d := timeAt(1, 12) / timeAt(4, 12); d < 1.05 {
		t.Fatalf("12x compression must benefit from CDUs (%v)", d)
	}
	if d := timeAt(4, 12) / timeAt(8, 12); d > 1.02 {
		t.Fatalf("12x compression should saturate by 4 CDUs (%v)", d)
	}
}

func TestCacheSideSFPRSmallGain(t *testing.T) {
	// §VI-E: moving SFPR to the cache side gains only ~1% over a 4-CDU
	// DMA-side design.
	w := findWorkload(t, "ResNet50")
	s := JPEGAct(JPEGActDefaultRatios())
	dma := Simulate(w, s, TitanV(4)).Total()
	cfg := TitanV(4)
	cfg.CacheSideSFPR = true
	cache := Simulate(w, s, cfg).Total()
	if cache > dma {
		t.Fatal("cache-side must not be slower")
	}
	if gain := dma / cache; gain > 1.10 {
		t.Fatalf("cache-side gain %v should be small", gain)
	}
}

func TestEffectiveOffloadTableV(t *testing.T) {
	cfg := TitanV(4)
	// Table V shape: cDMA+ (1.3×) < SFPR (4×) < JPEG-BASE (5.8×) <
	// JPEG-ACT (8.5×) in effective offload GB/s.
	vals := []float64{
		EffectiveOffloadGBs(cfg, 1.3, true),
		EffectiveOffloadGBs(cfg, 4.0, true),
		EffectiveOffloadGBs(cfg, 5.8, true),
		EffectiveOffloadGBs(cfg, 8.5, true),
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("offload rates not increasing: %v", vals)
		}
	}
	// JPEG-ACT band: paper reports 108.8 GB/s at 8.5×.
	if vals[3] < 90 || vals[3] > 120 {
		t.Fatalf("JPEG-ACT offload %v GB/s out of band", vals[3])
	}
}

func TestBackwardDominatedByCompute(t *testing.T) {
	// Backward has ~2× the kernel work; under JPEG-ACT the fetches should
	// hide behind compute for compute-dense networks.
	cfg := TitanV(4)
	w := findWorkload(t, "ResNet50/IN")
	r := Simulate(w, JPEGAct(JPEGActDefaultRatios()), cfg)
	if r.Backward < r.Forward {
		t.Fatalf("backward %v should exceed forward %v", r.Backward, r.Forward)
	}
}

func TestMonotonicityProperties(t *testing.T) {
	// More CDUs never slow a DMA-side scheme down; a higher compression
	// ratio never slows it down.
	w := findWorkload(t, "ResNet50/IN")
	fixed := func(r float64) Scheme {
		return Scheme{Name: "fixed", Offload: true, DMASide: true,
			Ratio:          func(compress.Kind) float64 { return r },
			CompressPasses: zero, DecompressPasses: zero}
	}
	prev := -1.0
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		tt := Simulate(w, fixed(8), TitanV(n)).Total()
		if prev >= 0 && tt > prev+1e-15 {
			t.Fatalf("adding CDUs slowed the run: %v -> %v at %d", prev, tt, n)
		}
		prev = tt
	}
	prev = -1.0
	for _, r := range []float64{1, 2, 4, 8, 16} {
		tt := Simulate(w, fixed(r), TitanV(4)).Total()
		if prev >= 0 && tt > prev+1e-15 {
			t.Fatalf("higher ratio slowed the run: %v -> %v at %vx", prev, tt, r)
		}
		prev = tt
	}
}

func TestAllWorkloadsAllSchemesPositive(t *testing.T) {
	cfg := TitanV(4)
	schemes := []Scheme{NoOffload(), VDNN(), CDMAPlus(), GIST(), SFPROnly(),
		JPEGBase(JPEGBaseDefaultRatios()), JPEGAct(JPEGActDefaultRatios())}
	for _, w := range Workloads() {
		for _, s := range schemes {
			r := Simulate(w, s, cfg)
			if r.Forward <= 0 || r.Backward <= 0 {
				t.Fatalf("%s/%s: non-positive times %+v", w.Name, s.Name, r)
			}
			if r.Backward <= r.Forward*0.5 {
				t.Fatalf("%s/%s: backward %v implausibly short vs forward %v",
					w.Name, s.Name, r.Backward, r.Forward)
			}
		}
	}
}
