package dct

// AAN (Arai–Agui–Nakajima) scaled 8-point DCT, the algorithm behind
// libjpeg's fast float DCT (jfdctflt/jidctflt). One 1D pass costs 5
// multiplies and 29 adds versus 11 multiplies for the LLM structure in
// dct.go, because the AAN factorization leaves a diagonal scale matrix
// unapplied: the raw forward output is
//
//	A[k] = S[k] · 2√2 · aan[k]          (1D)
//	A2D[i] = S2D[i] · 8 · aan[r] · aan[c]  (2D, i = 8r+c)
//
// where S is the JPEG-normalized DCT of dct.go and aan[k] are the AAN
// scale factors below. A JPEG codec never pays for the missing scales:
// they fold into the quantizer tables (quant.FoldedForward /
// quant.FoldedInverse), exactly as libjpeg folds them into fdtbl/dtbl.
// The compression pipeline therefore runs the scaled float32 kernels
// here and quantizes with pre-folded tables, replacing an 11-multiply
// float64 transform plus a divide per coefficient with a 5-multiply
// float32 transform plus a single multiply per coefficient.
//
// Float64 variants of the 1D kernels are kept as the algorithmic
// reference (tests pin them to Naive1D within float64 rounding).

import "math"

// aanFactors are the AAN per-frequency scale factors:
// aan[0] = 1, aan[k] = cos(kπ/16)·√2 for k ≥ 1.
var aanFactors = [8]float64{
	1.0,
	1.387039845322148,
	1.306562964876377,
	1.175875602419359,
	1.0,
	0.785694958387102,
	0.541196100146197,
	0.275899379282943,
}

var (
	// AANDescale1D[k] is the factor that converts a raw 1D AAN forward
	// output back to the JPEG normalization: S[k] = AAN1D out[k] · AANDescale1D[k].
	AANDescale1D [8]float64
	// AANPrescale1D[k] is the factor applied to JPEG-normalized
	// coefficients before AANInverse1D.
	AANPrescale1D [8]float64
	// AANDescale2D[i] converts a raw 2D AAN forward coefficient (i = 8r+c)
	// to the JPEG normalization; fold it (divided by the DQT entry) into
	// the forward quantizer table.
	AANDescale2D [64]float64
	// AANPrescale2D[i] prepares a JPEG-normalized 2D coefficient for
	// AANInverse8x8; fold it (times the DQT entry) into the dequantizer
	// table.
	AANPrescale2D [64]float64
)

func init() {
	twoSqrt2 := 2 * math.Sqrt2
	for k := 0; k < 8; k++ {
		AANDescale1D[k] = 1 / (twoSqrt2 * aanFactors[k])
		AANPrescale1D[k] = aanFactors[k] / twoSqrt2
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			AANDescale2D[r*8+c] = 1 / (8 * aanFactors[r] * aanFactors[c])
			AANPrescale2D[r*8+c] = aanFactors[r] * aanFactors[c] / 8
		}
	}
}

// AAN rotation constants (float64 and float32 copies of the same values,
// the jfdctflt/jidctflt constant set).
const (
	aan0_382683433 = 0.382683433
	aan0_541196100 = 0.541196100
	aan0_707106781 = 0.707106781
	aan1_306562965 = 1.306562965
	aan1_082392200 = 1.082392200
	aan1_414213562 = 1.414213562
	aan1_847759065 = 1.847759065
	aan2_613125930 = 2.613125930
)

// AAN1D computes the scaled forward AAN DCT of in (5 multiplies).
// Output k equals Naive1D output k times 2√2·aan[k]; multiply by
// AANDescale1D to normalize.
func AAN1D(in, out *[8]float64) {
	tmp0 := in[0] + in[7]
	tmp7 := in[0] - in[7]
	tmp1 := in[1] + in[6]
	tmp6 := in[1] - in[6]
	tmp2 := in[2] + in[5]
	tmp5 := in[2] - in[5]
	tmp3 := in[3] + in[4]
	tmp4 := in[3] - in[4]

	// Even part.
	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	out[0] = tmp10 + tmp11
	out[4] = tmp10 - tmp11

	z1 := (tmp12 + tmp13) * aan0_707106781
	out[2] = tmp13 + z1
	out[6] = tmp13 - z1

	// Odd part.
	tmp10 = tmp4 + tmp5
	tmp11 = tmp5 + tmp6
	tmp12 = tmp6 + tmp7

	z5 := (tmp10 - tmp12) * aan0_382683433
	z2 := aan0_541196100*tmp10 + z5
	z4 := aan1_306562965*tmp12 + z5
	z3 := tmp11 * aan0_707106781

	z11 := tmp7 + z3
	z13 := tmp7 - z3

	out[5] = z13 + z2
	out[3] = z13 - z2
	out[1] = z11 + z4
	out[7] = z11 - z4
}

// AANInverse1D computes the inverse AAN DCT of prescaled coefficients:
// in[k] must be the JPEG-normalized coefficient times AANPrescale1D[k].
// Output matches NaiveInverse1D of the unscaled coefficients.
func AANInverse1D(in, out *[8]float64) {
	// Even part.
	tmp0 := in[0]
	tmp1 := in[2]
	tmp2 := in[4]
	tmp3 := in[6]

	tmp10 := tmp0 + tmp2
	tmp11 := tmp0 - tmp2
	tmp13 := tmp1 + tmp3
	tmp12 := (tmp1-tmp3)*aan1_414213562 - tmp13

	tmp0 = tmp10 + tmp13
	tmp3 = tmp10 - tmp13
	tmp1 = tmp11 + tmp12
	tmp2 = tmp11 - tmp12

	// Odd part.
	tmp4 := in[1]
	tmp5 := in[3]
	tmp6 := in[5]
	tmp7 := in[7]

	z13 := tmp6 + tmp5
	z10 := tmp6 - tmp5
	z11 := tmp4 + tmp7
	z12 := tmp4 - tmp7

	tmp7 = z11 + z13
	tmp11 = (z11 - z13) * aan1_414213562

	z5 := (z10 + z12) * aan1_847759065
	tmp10 = aan1_082392200*z12 - z5
	tmp12 = -aan2_613125930*z10 + z5

	tmp6 = tmp12 - tmp7
	tmp5 = tmp11 - tmp6
	tmp4 = tmp10 + tmp5

	out[0] = tmp0 + tmp7
	out[7] = tmp0 - tmp7
	out[1] = tmp1 + tmp6
	out[6] = tmp1 - tmp6
	out[2] = tmp2 + tmp5
	out[5] = tmp2 - tmp5
	out[4] = tmp3 + tmp4
	out[3] = tmp3 - tmp4
}

// aanForward8 is the float32 production copy of AAN1D. Specialized (not
// generic over a function value) so the 2D drivers keep their scratch on
// the stack — same reasoning as Forward8x8.
func aanForward8(in, out *[8]float32) {
	tmp0 := in[0] + in[7]
	tmp7 := in[0] - in[7]
	tmp1 := in[1] + in[6]
	tmp6 := in[1] - in[6]
	tmp2 := in[2] + in[5]
	tmp5 := in[2] - in[5]
	tmp3 := in[3] + in[4]
	tmp4 := in[3] - in[4]

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	out[0] = tmp10 + tmp11
	out[4] = tmp10 - tmp11

	z1 := (tmp12 + tmp13) * float32(aan0_707106781)
	out[2] = tmp13 + z1
	out[6] = tmp13 - z1

	tmp10 = tmp4 + tmp5
	tmp11 = tmp5 + tmp6
	tmp12 = tmp6 + tmp7

	z5 := (tmp10 - tmp12) * float32(aan0_382683433)
	z2 := float32(aan0_541196100)*tmp10 + z5
	z4 := float32(aan1_306562965)*tmp12 + z5
	z3 := tmp11 * float32(aan0_707106781)

	z11 := tmp7 + z3
	z13 := tmp7 - z3

	out[5] = z13 + z2
	out[3] = z13 - z2
	out[1] = z11 + z4
	out[7] = z11 - z4
}

func aanInverse8(in, out *[8]float32) {
	tmp0 := in[0]
	tmp1 := in[2]
	tmp2 := in[4]
	tmp3 := in[6]

	tmp10 := tmp0 + tmp2
	tmp11 := tmp0 - tmp2
	tmp13 := tmp1 + tmp3
	tmp12 := (tmp1-tmp3)*float32(aan1_414213562) - tmp13

	tmp0 = tmp10 + tmp13
	tmp3 = tmp10 - tmp13
	tmp1 = tmp11 + tmp12
	tmp2 = tmp11 - tmp12

	tmp4 := in[1]
	tmp5 := in[3]
	tmp6 := in[5]
	tmp7 := in[7]

	z13 := tmp6 + tmp5
	z10 := tmp6 - tmp5
	z11 := tmp4 + tmp7
	z12 := tmp4 - tmp7

	tmp7 = z11 + z13
	tmp11 = (z11 - z13) * float32(aan1_414213562)

	z5 := (z10 + z12) * float32(aan1_847759065)
	tmp10 = float32(aan1_082392200)*z12 - z5
	tmp12 = -float32(aan2_613125930)*z10 + z5

	tmp6 = tmp12 - tmp7
	tmp5 = tmp11 - tmp6
	tmp4 = tmp10 + tmp5

	out[0] = tmp0 + tmp7
	out[7] = tmp0 - tmp7
	out[1] = tmp1 + tmp6
	out[6] = tmp1 - tmp6
	out[2] = tmp2 + tmp5
	out[5] = tmp2 - tmp5
	out[4] = tmp3 + tmp4
	out[3] = tmp3 - tmp4
}

// AANForward8x8 applies the scaled 2D forward AAN DCT to b in place in
// float32. Output coefficient i carries the extra factor
// 1/AANDescale2D[i]; quantizers must use tables with the descale folded
// in (quant.FoldedForward). Two-pass structure and concrete kernel calls
// as in Forward8x8, so nothing escapes to the heap.
func AANForward8x8(b *Block) {
	var in, out [8]float32
	var tmp [64]float32
	for r := 0; r < 8; r++ {
		copy(in[:], b[r*8:(r+1)*8])
		aanForward8(&in, &out)
		copy(tmp[r*8:], out[:])
	}
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			in[r] = tmp[r*8+c]
		}
		aanForward8(&in, &out)
		for r := 0; r < 8; r++ {
			b[r*8+c] = out[r]
		}
	}
}

// AANInverse8x8 applies the 2D inverse AAN DCT to b in place in float32.
// b must hold prescaled coefficients: JPEG-normalized values times
// AANPrescale2D (folded into the dequantizer table by
// quant.FoldedInverse). Output is the spatial block.
func AANInverse8x8(b *Block) {
	var in, out [8]float32
	var tmp [64]float32
	for r := 0; r < 8; r++ {
		copy(in[:], b[r*8:(r+1)*8])
		aanInverse8(&in, &out)
		copy(tmp[r*8:], out[:])
	}
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			in[r] = tmp[r*8+c]
		}
		aanInverse8(&in, &out)
		for r := 0; r < 8; r++ {
			b[r*8+c] = out[r]
		}
	}
}
