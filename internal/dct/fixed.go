package dct

// Fixed-point LLM DCT modelling the integer datapath of the JPEG-ACT
// hardware DCT unit. Constants are represented in Q13 (CONST_BITS = 13)
// two's-complement fixed point, matching common hardware practice for the
// LLM structure; intermediate values fit comfortably in int32 for int8
// inputs, which is what the unit receives from the SFPR stage.

const constBits = 13

func fix(x float64) int32 { return int32(x*(1<<constBits) + 0.5) }

var (
	ifix0_298631336 = fix(0.298631336)
	ifix0_390180644 = fix(0.390180644)
	ifix0_541196100 = fix(0.541196100)
	ifix0_765366865 = fix(0.765366865)
	ifix0_899976223 = fix(0.899976223)
	ifix1_175875602 = fix(1.175875602)
	ifix1_501321110 = fix(1.501321110)
	ifix1_847759065 = fix(1.847759065)
	ifix1_961570560 = fix(1.961570560)
	ifix2_053119869 = fix(2.053119869)
	ifix2_562915447 = fix(2.562915447)
	ifix3_072711026 = fix(3.072711026)
	// 1/(2*sqrt(2)) in Q13 for per-pass renormalization.
	ifixInvSqrt8 = fix(invSqrt8)
)

func descale(x int32, n uint) int32 {
	// Round-to-nearest shift right, the RTL descaling idiom.
	return (x + (1 << (n - 1))) >> n
}

func mul(a, b int32) int32 { return int32((int64(a) * int64(b)) >> constBits) }

// FixedForward1D computes the forward LLM DCT on int32 samples with Q13
// arithmetic, producing outputs in the JPEG normalization (matching
// LLM1D to within integer rounding).
func FixedForward1D(in, out *[8]int32) {
	tmp0 := in[0] + in[7]
	tmp7 := in[0] - in[7]
	tmp1 := in[1] + in[6]
	tmp6 := in[1] - in[6]
	tmp2 := in[2] + in[5]
	tmp5 := in[2] - in[5]
	tmp3 := in[3] + in[4]
	tmp4 := in[3] - in[4]

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	out[0] = mul(tmp10+tmp11, ifixInvSqrt8)
	out[4] = mul(tmp10-tmp11, ifixInvSqrt8)

	z1 := mul(tmp12+tmp13, ifix0_541196100)
	out[2] = mul(z1+mul(tmp13, ifix0_765366865), ifixInvSqrt8)
	out[6] = mul(z1-mul(tmp12, ifix1_847759065), ifixInvSqrt8)

	z1 = tmp4 + tmp7
	z2 := tmp5 + tmp6
	z3 := tmp4 + tmp6
	z4 := tmp5 + tmp7
	z5 := mul(z3+z4, ifix1_175875602)

	t4 := mul(tmp4, ifix0_298631336)
	t5 := mul(tmp5, ifix2_053119869)
	t6 := mul(tmp6, ifix3_072711026)
	t7 := mul(tmp7, ifix1_501321110)
	z1 = -mul(z1, ifix0_899976223)
	z2 = -mul(z2, ifix2_562915447)
	z3 = -mul(z3, ifix1_961570560)
	z4 = -mul(z4, ifix0_390180644)

	z3 += z5
	z4 += z5

	out[7] = mul(t4+z1+z3, ifixInvSqrt8)
	out[5] = mul(t5+z2+z4, ifixInvSqrt8)
	out[3] = mul(t6+z2+z3, ifixInvSqrt8)
	out[1] = mul(t7+z1+z4, ifixInvSqrt8)
}

// FixedInverse1D computes the inverse LLM DCT on int32 samples with Q13
// arithmetic (matching LLMInverse1D to within integer rounding).
func FixedInverse1D(in, out *[8]int32) {
	z2 := in[2]
	z3 := in[6]
	z1 := mul(z2+z3, ifix0_541196100)
	tmp2 := z1 - mul(z3, ifix1_847759065)
	tmp3 := z1 + mul(z2, ifix0_765366865)

	tmp0 := in[0] + in[4]
	tmp1 := in[0] - in[4]

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	t0 := in[7]
	t1 := in[5]
	t2 := in[3]
	t3 := in[1]

	z1 = t0 + t3
	z2 = t1 + t2
	z3 = t0 + t2
	z4 := t1 + t3
	z5 := mul(z3+z4, ifix1_175875602)

	t0 = mul(t0, ifix0_298631336)
	t1 = mul(t1, ifix2_053119869)
	t2 = mul(t2, ifix3_072711026)
	t3 = mul(t3, ifix1_501321110)
	z1 = -mul(z1, ifix0_899976223)
	z2 = -mul(z2, ifix2_562915447)
	z3 = -mul(z3, ifix1_961570560)
	z4 = -mul(z4, ifix0_390180644)

	z3 += z5
	z4 += z5

	t0 += z1 + z3
	t1 += z2 + z4
	t2 += z2 + z3
	t3 += z1 + z4

	out[0] = mul(tmp10+t3, ifixInvSqrt8)
	out[7] = mul(tmp10-t3, ifixInvSqrt8)
	out[1] = mul(tmp11+t2, ifixInvSqrt8)
	out[6] = mul(tmp11-t2, ifixInvSqrt8)
	out[2] = mul(tmp12+t1, ifixInvSqrt8)
	out[5] = mul(tmp12-t1, ifixInvSqrt8)
	out[3] = mul(tmp13+t0, ifixInvSqrt8)
	out[4] = mul(tmp13-t0, ifixInvSqrt8)
}

// IntBlock is an 8×8 block of integer samples as seen by the hardware
// datapath (int8 activations widened to int32 working precision).
type IntBlock [64]int32

// FixedForward8x8 applies the 2D fixed-point forward DCT in place.
// To preserve fractional precision between the two passes the samples are
// pre-scaled into Q(passBits) fixed point and descaled at the end,
// mirroring the pipeline register widths of the RTL.
func FixedForward8x8(b *IntBlock) {
	fixed2D(b, FixedForward1D)
}

// FixedInverse8x8 applies the 2D fixed-point inverse DCT in place.
func FixedInverse8x8(b *IntBlock) {
	fixed2D(b, FixedInverse1D)
}

const passBits = 6

func fixed2D(b *IntBlock, f func(in, out *[8]int32)) {
	var in, out [8]int32
	var tmp [64]int32
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			in[c] = b[r*8+c] << passBits
		}
		f(&in, &out)
		copy(tmp[r*8:], out[:])
	}
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			in[r] = tmp[r*8+c]
		}
		f(&in, &out)
		for r := 0; r < 8; r++ {
			b[r*8+c] = descale(out[r], passBits)
		}
	}
}
