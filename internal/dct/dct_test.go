package dct

import (
	"math"
	"testing"
	"testing/quick"

	"jpegact/internal/tensor"
)

func randBlockF64(r *tensor.RNG, scale float64) [8]float64 {
	var b [8]float64
	for i := range b {
		b[i] = (r.Float64()*2 - 1) * scale
	}
	return b
}

func TestLLMMatchesNaive1D(t *testing.T) {
	r := tensor.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		in := randBlockF64(r, 128)
		var a, b [8]float64
		Naive1D(&in, &a)
		LLM1D(&in, &b)
		for k := 0; k < 8; k++ {
			if math.Abs(a[k]-b[k]) > 1e-7*math.Max(1, math.Abs(a[k])) {
				t.Fatalf("trial %d coeff %d: naive %v llm %v", trial, k, a[k], b[k])
			}
		}
	}
}

func TestLLMInverseMatchesNaive1D(t *testing.T) {
	r := tensor.NewRNG(2)
	for trial := 0; trial < 200; trial++ {
		in := randBlockF64(r, 128)
		var a, b [8]float64
		NaiveInverse1D(&in, &a)
		LLMInverse1D(&in, &b)
		for k := 0; k < 8; k++ {
			if math.Abs(a[k]-b[k]) > 1e-7*math.Max(1, math.Abs(a[k])) {
				t.Fatalf("trial %d sample %d: naive %v llm %v", trial, k, a[k], b[k])
			}
		}
	}
}

func Test1DRoundtripIsIdentity(t *testing.T) {
	r := tensor.NewRNG(3)
	in := randBlockF64(r, 100)
	var freq, back [8]float64
	LLM1D(&in, &freq)
	LLMInverse1D(&freq, &back)
	for i := range in {
		if math.Abs(in[i]-back[i]) > 1e-6 {
			t.Fatalf("roundtrip: in %v back %v", in[i], back[i])
		}
	}
}

func TestDCNormalization(t *testing.T) {
	// A constant block of value v must have DC = 8v (2D orthonormal JPEG
	// convention: c(0)/2 per dimension → 8× for constant input) and zero AC.
	var b Block
	for i := range b {
		b[i] = 10
	}
	Forward8x8(&b)
	if math.Abs(float64(b[0])-80) > 1e-4 {
		t.Fatalf("DC = %v, want 80", b[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(float64(b[i])) > 1e-4 {
			t.Fatalf("AC[%d] = %v, want 0", i, b[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// The JPEG 2D DCT is orthonormal: energy is preserved.
	r := tensor.NewRNG(4)
	var b Block
	var inE float64
	for i := range b {
		v := float32(r.Norm() * 30)
		b[i] = v
		inE += float64(v) * float64(v)
	}
	Forward8x8(&b)
	var outE float64
	for i := range b {
		outE += float64(b[i]) * float64(b[i])
	}
	if math.Abs(inE-outE)/inE > 1e-5 {
		t.Fatalf("energy changed: %v -> %v", inE, outE)
	}
}

func Test2DRoundtrip(t *testing.T) {
	r := tensor.NewRNG(5)
	var b, orig Block
	for i := range b {
		b[i] = float32(r.Norm() * 50)
		orig[i] = b[i]
	}
	Forward8x8(&b)
	Inverse8x8(&b)
	for i := range b {
		if math.Abs(float64(b[i]-orig[i])) > 1e-3 {
			t.Fatalf("2D roundtrip at %d: %v vs %v", i, b[i], orig[i])
		}
	}
}

func TestNaive2DMatchesLLM2D(t *testing.T) {
	r := tensor.NewRNG(6)
	var a, b Block
	for i := range a {
		v := float32(r.Norm() * 40)
		a[i] = v
		b[i] = v
	}
	NaiveForward8x8(&a)
	Forward8x8(&b)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-3 {
			t.Fatalf("2D mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
	NaiveInverse8x8(&a)
	Inverse8x8(&b)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-3 {
			t.Fatalf("2D inverse mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	r := tensor.NewRNG(7)
	f := func(seed uint32) bool {
		_ = seed
		var b, orig Block
		for i := range b {
			b[i] = float32((r.Float64()*2 - 1) * 127)
			orig[i] = b[i]
		}
		Forward8x8(&b)
		Inverse8x8(&b)
		for i := range b {
			if math.Abs(float64(b[i]-orig[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, z := range Zigzag {
		if z < 0 || z > 63 || seen[z] {
			t.Fatalf("zigzag not a permutation: %d", z)
		}
		seen[z] = true
	}
	for i, z := range Zigzag {
		if Unzigzag[z] != i {
			t.Fatalf("Unzigzag[%d] = %d, want %d", z, Unzigzag[z], i)
		}
	}
	// Spot checks from the JPEG spec.
	if Zigzag[0] != 0 || Zigzag[1] != 1 || Zigzag[2] != 8 || Zigzag[63] != 63 {
		t.Fatal("zigzag order incorrect at spot checks")
	}
}

func TestFixedMatchesFloat1D(t *testing.T) {
	r := tensor.NewRNG(8)
	for trial := 0; trial < 100; trial++ {
		var fin [8]float64
		var iin [8]int32
		for i := range fin {
			v := r.Intn(255) - 127
			fin[i] = float64(v)
			iin[i] = int32(v) << passBits
		}
		var fout [8]float64
		var iout [8]int32
		LLM1D(&fin, &fout)
		FixedForward1D(&iin, &iout)
		for k := 0; k < 8; k++ {
			got := float64(iout[k]) / float64(int32(1)<<passBits)
			if math.Abs(got-fout[k]) > 0.5 {
				t.Fatalf("fixed fwd coeff %d: %v vs %v", k, got, fout[k])
			}
		}
	}
}

func TestFixedRoundtrip8x8(t *testing.T) {
	r := tensor.NewRNG(9)
	var b, orig IntBlock
	for i := range b {
		v := int32(r.Intn(255) - 127)
		b[i] = v
		orig[i] = v
	}
	FixedForward8x8(&b)
	FixedInverse8x8(&b)
	for i := range b {
		if d := b[i] - orig[i]; d > 2 || d < -2 {
			t.Fatalf("fixed roundtrip at %d: %d vs %d", i, b[i], orig[i])
		}
	}
}

func TestFixedForwardCloseToFloat8x8(t *testing.T) {
	r := tensor.NewRNG(10)
	var fb Block
	var ib IntBlock
	for i := range fb {
		v := int32(r.Intn(255) - 127)
		fb[i] = float32(v)
		ib[i] = v
	}
	Forward8x8(&fb)
	FixedForward8x8(&ib)
	for i := range fb {
		if math.Abs(float64(ib[i])-float64(fb[i])) > 1.5 {
			t.Fatalf("fixed vs float coeff %d: %d vs %v", i, ib[i], fb[i])
		}
	}
}

func BenchmarkLLMForward8x8(b *testing.B) {
	r := tensor.NewRNG(11)
	var blk Block
	for i := range blk {
		blk[i] = float32(r.Norm() * 30)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := blk
		Forward8x8(&t)
	}
}

func BenchmarkFixedForward8x8(b *testing.B) {
	r := tensor.NewRNG(12)
	var blk IntBlock
	for i := range blk {
		blk[i] = int32(r.Intn(255) - 127)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := blk
		FixedForward8x8(&t)
	}
}
