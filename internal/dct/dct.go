// Package dct implements the 8-point Discrete Cosine Transform used by
// the JPEG-ACT compression pipeline (§III-D of the paper).
//
// Three implementations are provided:
//
//   - Naive1D / NaiveInverse1D: direct O(n²) DCT-II/DCT-III in the JPEG
//     normalization, used as the correctness reference.
//   - LLM1D / LLMInverse1D: the Loeffler–Ligtenberg–Moschytz fast DCT with
//     11 multiplications, the algorithm the JPEG-ACT hardware uses (eight
//     8-point units per CDU, 88 multipliers total).
//   - fixed-point variants in fixed.go that model the integer datapath of
//     the accelerator.
//
// The JPEG normalization is
//
//	S[k] = c(k)/2 · Σ_{n=0..7} s[n]·cos((2n+1)kπ/16),  c(0)=1/√2, c(k≠0)=1
//
// which makes the 2D transform orthonormal, so Forward8x8 followed by
// Inverse8x8 is the identity up to rounding.
package dct

import "math"

// BlockSize is the JPEG block edge length.
const BlockSize = 8

// Block is one 8×8 tile of values in row-major order.
type Block [64]float32

// cosTable[k][n] = c(k)/2 * cos((2n+1)kπ/16)
var cosTable [8][8]float64

func init() {
	for k := 0; k < 8; k++ {
		ck := 1.0
		if k == 0 {
			ck = 1 / math.Sqrt2
		}
		for n := 0; n < 8; n++ {
			cosTable[k][n] = ck / 2 * math.Cos(float64(2*n+1)*float64(k)*math.Pi/16)
		}
	}
}

// Naive1D computes the reference 8-point forward DCT of in into out.
func Naive1D(in, out *[8]float64) {
	for k := 0; k < 8; k++ {
		var sum float64
		for n := 0; n < 8; n++ {
			sum += in[n] * cosTable[k][n]
		}
		out[k] = sum
	}
}

// NaiveInverse1D computes the reference 8-point inverse DCT of in into out.
func NaiveInverse1D(in, out *[8]float64) {
	for n := 0; n < 8; n++ {
		var sum float64
		for k := 0; k < 8; k++ {
			sum += in[k] * cosTable[k][n]
		}
		out[n] = sum
	}
}

// LLM constants: sqrt(2)·cos(kπ/16) combinations from Loeffler et al.,
// the same constants used by the libjpeg integer DCT derived from LLM.
const (
	fix0_298631336 = 0.298631336
	fix0_390180644 = 0.390180644
	fix0_541196100 = 0.541196100
	fix0_765366865 = 0.765366865
	fix0_899976223 = 0.899976223
	fix1_175875602 = 1.175875602
	fix1_501321110 = 1.501321110
	fix1_847759065 = 1.847759065
	fix1_961570560 = 1.961570560
	fix2_053119869 = 2.053119869
	fix2_562915447 = 2.562915447
	fix3_072711026 = 3.072711026
)

// invSqrt8 = 1/(2√2): rescales one LLM pass to the JPEG normalization.
const invSqrt8 = 0.35355339059327373

// LLM1D computes the 8-point forward DCT with the LLM fast algorithm
// (11 multiplications before normalization). Output matches Naive1D.
func LLM1D(in, out *[8]float64) {
	tmp0 := in[0] + in[7]
	tmp7 := in[0] - in[7]
	tmp1 := in[1] + in[6]
	tmp6 := in[1] - in[6]
	tmp2 := in[2] + in[5]
	tmp5 := in[2] - in[5]
	tmp3 := in[3] + in[4]
	tmp4 := in[3] - in[4]

	// Even part.
	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	out[0] = (tmp10 + tmp11) * invSqrt8
	out[4] = (tmp10 - tmp11) * invSqrt8

	z1 := (tmp12 + tmp13) * fix0_541196100
	out[2] = (z1 + tmp13*fix0_765366865) * invSqrt8
	out[6] = (z1 - tmp12*fix1_847759065) * invSqrt8

	// Odd part.
	z1 = tmp4 + tmp7
	z2 := tmp5 + tmp6
	z3 := tmp4 + tmp6
	z4 := tmp5 + tmp7
	z5 := (z3 + z4) * fix1_175875602

	t4 := tmp4 * fix0_298631336
	t5 := tmp5 * fix2_053119869
	t6 := tmp6 * fix3_072711026
	t7 := tmp7 * fix1_501321110
	z1 = -z1 * fix0_899976223
	z2 = -z2 * fix2_562915447
	z3 = -z3 * fix1_961570560
	z4 = -z4 * fix0_390180644

	z3 += z5
	z4 += z5

	out[7] = (t4 + z1 + z3) * invSqrt8
	out[5] = (t5 + z2 + z4) * invSqrt8
	out[3] = (t6 + z2 + z3) * invSqrt8
	out[1] = (t7 + z1 + z4) * invSqrt8
}

// LLMInverse1D computes the 8-point inverse DCT with the LLM fast
// algorithm. Output matches NaiveInverse1D.
func LLMInverse1D(in, out *[8]float64) {
	// Even part.
	z2 := in[2]
	z3 := in[6]
	z1 := (z2 + z3) * fix0_541196100
	tmp2 := z1 - z3*fix1_847759065
	tmp3 := z1 + z2*fix0_765366865

	tmp0 := in[0] + in[4]
	tmp1 := in[0] - in[4]

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	// Odd part.
	t0 := in[7]
	t1 := in[5]
	t2 := in[3]
	t3 := in[1]

	z1 = t0 + t3
	z2 = t1 + t2
	z3 = t0 + t2
	z4 := t1 + t3
	z5 := (z3 + z4) * fix1_175875602

	t0 *= fix0_298631336
	t1 *= fix2_053119869
	t2 *= fix3_072711026
	t3 *= fix1_501321110
	z1 = -z1 * fix0_899976223
	z2 = -z2 * fix2_562915447
	z3 = -z3 * fix1_961570560
	z4 = -z4 * fix0_390180644

	z3 += z5
	z4 += z5

	t0 += z1 + z3
	t1 += z2 + z4
	t2 += z2 + z3
	t3 += z1 + z4

	out[0] = (tmp10 + t3) * invSqrt8
	out[7] = (tmp10 - t3) * invSqrt8
	out[1] = (tmp11 + t2) * invSqrt8
	out[6] = (tmp11 - t2) * invSqrt8
	out[2] = (tmp12 + t1) * invSqrt8
	out[5] = (tmp12 - t1) * invSqrt8
	out[3] = (tmp13 + t0) * invSqrt8
	out[4] = (tmp13 - t0) * invSqrt8
}

// Forward8x8 applies the 2D forward DCT to an 8×8 block in place,
// implemented as two passes through the 1D LLM units with a transpose
// between them, exactly the two-pass structure of the hardware DCT unit.
// The LLM calls are concrete (not through a function value) so the 1D
// scratch stays on the stack — this runs once per block on the
// compression hot path and must not allocate.
func Forward8x8(b *Block) {
	var in, out [8]float64
	var tmp [64]float64
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			in[c] = float64(b[r*8+c])
		}
		LLM1D(&in, &out)
		copy(tmp[r*8:], out[:])
	}
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			in[r] = tmp[r*8+c]
		}
		LLM1D(&in, &out)
		for r := 0; r < 8; r++ {
			b[r*8+c] = float32(out[r])
		}
	}
}

// Inverse8x8 applies the 2D inverse DCT to an 8×8 block in place.
// Concrete LLM calls for the same zero-allocation reason as Forward8x8.
func Inverse8x8(b *Block) {
	var in, out [8]float64
	var tmp [64]float64
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			in[c] = float64(b[r*8+c])
		}
		LLMInverse1D(&in, &out)
		copy(tmp[r*8:], out[:])
	}
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			in[r] = tmp[r*8+c]
		}
		LLMInverse1D(&in, &out)
		for r := 0; r < 8; r++ {
			b[r*8+c] = float32(out[r])
		}
	}
}

// NaiveForward8x8 applies the reference 2D forward DCT in place.
func NaiveForward8x8(b *Block) {
	transform2D(b, Naive1D)
}

// NaiveInverse8x8 applies the reference 2D inverse DCT in place.
func NaiveInverse8x8(b *Block) {
	transform2D(b, NaiveInverse1D)
}

func transform2D(b *Block, f func(in, out *[8]float64)) {
	var in, out [8]float64
	var tmp [64]float64
	// Pass 1: rows.
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			in[c] = float64(b[r*8+c])
		}
		f(&in, &out)
		copy(tmp[r*8:], out[:])
	}
	// Pass 2: columns (transpose, transform, transpose back).
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			in[r] = tmp[r*8+c]
		}
		f(&in, &out)
		for r := 0; r < 8; r++ {
			b[r*8+c] = float32(out[r])
		}
	}
}

// Zigzag is the JPEG zigzag scan order: Zigzag[i] is the row-major block
// index of the i-th coefficient in scan order.
var Zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Unzigzag is the inverse permutation of Zigzag.
var Unzigzag [64]int

func init() {
	for i, z := range Zigzag {
		Unzigzag[z] = i
	}
}
