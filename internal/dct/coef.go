package dct

// Coefficient-layout helpers for frequency-domain compute: the scale
// bookkeeping that lets downstream kernels work on JPEG-normalized
// coefficients without running an inverse transform first.
//
// The JPEG-normalized 2D DCT is orthonormal: writing the transform as
// S[i] = Σ_j x[j]·B[i][j] with the basis below, Σ_j B[i][j]·B[k][j] = δik.
// Two consequences carry the whole frequency-domain restore path:
//
//   - Parseval: ⟨x, y⟩ = ⟨S(x), S(y)⟩ — an inner product against a saved
//     activation can be taken in the coefficient domain, visiting only
//     the nonzero (post-quantization) coefficients;
//   - the DC sum identity: B[0][j] = 1/8 for all j, so a block's spatial
//     sum is 8·S[0] — per-channel statistics need only the DC terms.

import "math"

// UnitScale2D is the identity per-coefficient scale. Folding it into a
// quantizer table (quant.(*DQT).FoldedInverse(shift, &dct.UnitScale2D))
// yields plain JPEG-normalized dequantized coefficients, with no AAN
// pre/descale applied — the representation the frequency-domain kernels
// consume directly.
var UnitScale2D = func() (u [64]float64) {
	for i := range u {
		u[i] = 1
	}
	return
}()

// NormBasis2D[i][j] is the JPEG-normalized 2D DCT basis: coefficient
// i = 8u+v of a block x (row-major j = 8r+c) is Σ_j x[j]·NormBasis2D[i][j],
// and synthesis is the transpose of the same matrix. float32 so the
// selective (nonzero-coefficient-only) dot kernels run without a
// float64 bounce. Built self-contained (not from dct.go's cosTable,
// which an init() fills later in package init order).
var NormBasis2D = func() (b [64][64]float32) {
	var ct [8][8]float64 // c(k)/2 · cos((2n+1)kπ/16)
	for k := 0; k < 8; k++ {
		ck := 1.0
		if k == 0 {
			ck = 1 / math.Sqrt2
		}
		for n := 0; n < 8; n++ {
			ct[k][n] = ck / 2 * math.Cos(float64(2*n+1)*float64(k)*math.Pi/16)
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					b[u*8+v][r*8+c] = float32(ct[u][r] * ct[v][c])
				}
			}
		}
	}
	return
}()

// AANDescale2D32 is AANDescale2D as float32, for kernels that normalize
// raw AANForward8x8 outputs coefficient-by-coefficient without folding
// the descale into a quantizer table.
var AANDescale2D32 = func() (d [64]float32) {
	// aanFactors has a static initializer, so dependency-ordered variable
	// initialization makes it usable here (AANDescale2D itself is only
	// filled by an init() that may run later).
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			d[r*8+c] = float32(1 / (8 * aanFactors[r] * aanFactors[c]))
		}
	}
	return
}()

// DCToSum is the factor converting a block's JPEG-normalized DC
// coefficient to the block's spatial sum: sum = DC · DCToSum (the DC
// basis value 1/8, inverted).
const DCToSum = 8
