package dct

import (
	"math"
	"testing"

	"jpegact/internal/tensor"
)

// relErr is the mixed absolute/relative error tolerance helper used by
// the AAN-vs-reference tests: the truncated libjpeg rotation constants
// carry ~1e-8 relative error, so exact float64 equality is off the table
// even for the float64 kernels.
func relErr(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

func TestAANMatchesNaive1D(t *testing.T) {
	r := tensor.NewRNG(20)
	for trial := 0; trial < 200; trial++ {
		in := randBlockF64(r, 128)
		var want, raw [8]float64
		Naive1D(&in, &want)
		AAN1D(&in, &raw)
		for k := 0; k < 8; k++ {
			got := raw[k] * AANDescale1D[k]
			if !relErr(got, want[k], 1e-6) {
				t.Fatalf("trial %d coeff %d: naive %v aan %v", trial, k, want[k], got)
			}
		}
	}
}

func TestAANInverseMatchesNaive1D(t *testing.T) {
	r := tensor.NewRNG(21)
	for trial := 0; trial < 200; trial++ {
		in := randBlockF64(r, 128)
		var want, pre, got [8]float64
		NaiveInverse1D(&in, &want)
		for k := 0; k < 8; k++ {
			pre[k] = in[k] * AANPrescale1D[k]
		}
		AANInverse1D(&pre, &got)
		for k := 0; k < 8; k++ {
			if !relErr(got[k], want[k], 1e-6) {
				t.Fatalf("trial %d sample %d: naive %v aan %v", trial, k, want[k], got[k])
			}
		}
	}
}

func TestAANAndLLMWithinFloatTolOfNaive(t *testing.T) {
	// The issue-level acceptance bound: both fast 1D structures stay
	// within 1e-4 of the O(n²) reference on inputs spanning the full
	// activation range.
	r := tensor.NewRNG(22)
	for trial := 0; trial < 500; trial++ {
		in := randBlockF64(r, 500)
		var want, llm, aan [8]float64
		Naive1D(&in, &want)
		LLM1D(&in, &llm)
		AAN1D(&in, &aan)
		for k := 0; k < 8; k++ {
			if !relErr(llm[k], want[k], 1e-4) {
				t.Fatalf("llm trial %d coeff %d: %v vs %v", trial, k, llm[k], want[k])
			}
			if !relErr(aan[k]*AANDescale1D[k], want[k], 1e-4) {
				t.Fatalf("aan trial %d coeff %d: %v vs %v", trial, k, aan[k]*AANDescale1D[k], want[k])
			}
		}
	}
}

func TestAAN2DMatchesLLM2D(t *testing.T) {
	r := tensor.NewRNG(23)
	var a, b Block
	for i := range a {
		v := float32(r.Norm() * 40)
		a[i] = v
		b[i] = v
	}
	Forward8x8(&a)
	AANForward8x8(&b)
	for i := range a {
		got := float64(b[i]) * AANDescale2D[i]
		if !relErr(got, float64(a[i]), 1e-4) {
			t.Fatalf("2D mismatch at %d: llm %v aan %v", i, a[i], got)
		}
	}
}

func TestAAN2DRoundtrip(t *testing.T) {
	// Forward, normalize via the descale factors, prescale, inverse —
	// the exact dataflow of the folded quantizer tables minus the
	// integer rounding — must reproduce the input.
	r := tensor.NewRNG(24)
	var b, orig Block
	for i := range b {
		b[i] = float32((r.Float64()*2 - 1) * 127)
		orig[i] = b[i]
	}
	AANForward8x8(&b)
	for i := range b {
		b[i] = float32(float64(b[i]) * AANDescale2D[i] * AANPrescale2D[i])
	}
	AANInverse8x8(&b)
	for i := range b {
		if math.Abs(float64(b[i]-orig[i])) > 1e-2 {
			t.Fatalf("roundtrip at %d: %v vs %v", i, b[i], orig[i])
		}
	}
}

func TestAANDCNormalization(t *testing.T) {
	// Constant block of v: descaled DC must be 8v (JPEG 2D convention),
	// descaled AC zero.
	var b Block
	for i := range b {
		b[i] = 10
	}
	AANForward8x8(&b)
	if got := float64(b[0]) * AANDescale2D[0]; math.Abs(got-80) > 1e-3 {
		t.Fatalf("DC = %v, want 80", got)
	}
	for i := 1; i < 64; i++ {
		if got := float64(b[i]) * AANDescale2D[i]; math.Abs(got) > 1e-3 {
			t.Fatalf("AC[%d] = %v, want 0", i, got)
		}
	}
}

func TestAANScaleTablesConsistent(t *testing.T) {
	for k := 0; k < 8; k++ {
		if !relErr(AANDescale1D[k]*(2*math.Sqrt2*aanFactors[k]), 1, 1e-12) {
			t.Fatalf("descale1d[%d] inconsistent", k)
		}
	}
	for i := 0; i < 64; i++ {
		prod := AANDescale2D[i] * (8 * aanFactors[i/8] * aanFactors[i%8])
		if !relErr(prod, 1, 1e-12) {
			t.Fatalf("descale2d[%d] inconsistent", i)
		}
		// Descale = 1/(8f), Prescale = f/8 ⇒ their product is exactly 1/64.
		if !relErr(AANDescale2D[i]*AANPrescale2D[i], 1.0/64, 1e-12) {
			t.Fatalf("prescale2d[%d]·descale2d[%d] = %v, want 1/64", i, i, AANDescale2D[i]*AANPrescale2D[i])
		}
	}
}

func BenchmarkAANForward8x8(b *testing.B) {
	r := tensor.NewRNG(25)
	var blk Block
	for i := range blk {
		blk[i] = float32(r.Norm() * 30)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := blk
		AANForward8x8(&t)
	}
}

func BenchmarkAANInverse8x8(b *testing.B) {
	r := tensor.NewRNG(26)
	var blk Block
	for i := range blk {
		blk[i] = float32(r.Norm() * 30)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := blk
		AANInverse8x8(&t)
	}
}
