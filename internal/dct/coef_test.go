package dct

import (
	"math"
	"testing"
)

// TestNormBasisOrthonormal pins the property the frequency-domain path
// rests on: the JPEG-normalized basis rows are orthonormal.
func TestNormBasisOrthonormal(t *testing.T) {
	for i := 0; i < 64; i++ {
		for k := i; k < 64; k++ {
			var dot float64
			for j := 0; j < 64; j++ {
				dot += float64(NormBasis2D[i][j]) * float64(NormBasis2D[k][j])
			}
			want := 0.0
			if i == k {
				want = 1
			}
			if math.Abs(dot-want) > 1e-5 {
				t.Fatalf("⟨B[%d], B[%d]⟩ = %g, want %g", i, k, dot, want)
			}
		}
	}
}

// TestNormBasisMatchesForward checks that analysis against NormBasis2D
// reproduces the reference JPEG-normalized transform.
func TestNormBasisMatchesForward(t *testing.T) {
	var b Block
	for j := range b {
		b[j] = float32(math.Sin(float64(j)*0.7))*3 + float32(j%5)
	}
	ref := b
	Forward8x8(&ref)
	for i := 0; i < 64; i++ {
		var s float64
		for j := 0; j < 64; j++ {
			s += float64(b[j]) * float64(NormBasis2D[i][j])
		}
		if math.Abs(s-float64(ref[i])) > 1e-3 {
			t.Fatalf("coef %d: basis dot %g, Forward8x8 %g", i, s, ref[i])
		}
	}
}

// TestDCSumIdentity pins the DC sum identity: a block's spatial sum is
// DCToSum times its normalized DC coefficient.
func TestDCSumIdentity(t *testing.T) {
	var b Block
	var sum float64
	for j := range b {
		b[j] = float32(j)*0.25 - 4
		sum += float64(b[j])
	}
	f := b
	Forward8x8(&f)
	if got := float64(f[0]) * DCToSum; math.Abs(got-sum) > 1e-3 {
		t.Fatalf("DC·%d = %g, block sum = %g", DCToSum, got, sum)
	}
}

// TestParsevalNormBasis checks ⟨x, y⟩ spatial equals ⟨S(x), S(y)⟩ in the
// normalized coefficient domain.
func TestParsevalNormBasis(t *testing.T) {
	var x, y Block
	for j := range x {
		x[j] = float32(math.Cos(float64(j) * 0.3))
		y[j] = float32(math.Sin(float64(j)*0.11)) * 2
	}
	var spatial float64
	for j := range x {
		spatial += float64(x[j]) * float64(y[j])
	}
	fx, fy := x, y
	Forward8x8(&fx)
	Forward8x8(&fy)
	var freq float64
	for i := range fx {
		freq += float64(fx[i]) * float64(fy[i])
	}
	if math.Abs(spatial-freq) > 1e-3 {
		t.Fatalf("Parseval: spatial %g, freq %g", spatial, freq)
	}
}

// TestAANDescale32 pins the float32 descale copy to the float64 table.
func TestAANDescale32(t *testing.T) {
	for i := range AANDescale2D {
		if AANDescale2D32[i] != float32(AANDescale2D[i]) {
			t.Fatalf("AANDescale2D32[%d] = %v, want %v", i, AANDescale2D32[i], float32(AANDescale2D[i]))
		}
	}
}
