// Package dqtopt implements the DQT optimization procedure of §IV
// (Fig. 9): starting from a seed table, minimize
//
//	O = (1-α)·λ₁·H + α·λ₂·L2            (Eqn. 12)
//
// over the 64 DQT entries by SGD with forward finite differences, where H
// is the Shannon entropy of the quantized coefficients (Eqn. 11) and L2
// is the average recovered-activation error (Eqn. 10). α trades rate for
// distortion: α = 0.025 yields the low-compression optL table, α = 0.005
// the high-compression optH table. The first DQT entry (the block mean)
// is pinned to 8 to keep batch-normalization statistics stable.
package dqtopt

import (
	"math"

	"jpegact/internal/compress"
	"jpegact/internal/entropy"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// Lambda1 and Lambda2 are the normalizing scale factors of Eqn. 12.
const (
	Lambda1 = 10
	Lambda2 = 10000
)

// Config parameterizes the optimizer.
type Config struct {
	Alpha float64 // rate/distortion trade-off (Eqn. 12)
	LR    float64 // SGD learning rate (paper: 2.0)
	Diff  float64 // forward finite-difference step (paper: 5)
	Iters int     // optimization steps
	// Grouped optimizes the 15 anti-diagonal frequency groups instead of
	// all 63 AC entries, cutting objective evaluations ~4× per step.
	Grouped bool
	S       float64 // SFPR scale (default sfpr.DefaultS via Pipeline)
}

func (c Config) withDefaults() Config {
	if c.LR == 0 {
		c.LR = 2.0
	}
	if c.Diff == 0 {
		c.Diff = 5
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	return c
}

// Point is one objective evaluation: entropy (bits/value), L2 error and
// the combined objective.
type Point struct {
	Entropy float64
	L2      float64
	O       float64
}

// Evaluate computes the (H, L2, O) point of a DQT on the sample
// activations using the DIV pipeline (optimization runs on the exact
// divisors; deployment snaps them to powers of two for SH).
func Evaluate(d quant.DQT, samples []*tensor.Tensor, alpha, s float64) Point {
	var allQ []int8
	var l2Sum float64
	p := compress.Pipeline{DQT: d, S: s}
	for _, x := range samples {
		blocks, scales, info := p.QuantizeBlocks(x)
		for i := range blocks {
			allQ = append(allQ, blocks[i][:]...)
		}
		rec := p.ReconstructBlocks(blocks, scales, info)
		compress.ReleaseBlocks(blocks)
		l2Sum += tensor.L2Error(x, rec)
	}
	h := entropy.Shannon(allQ)
	l2 := l2Sum / float64(len(samples))
	return Point{
		Entropy: h,
		L2:      l2,
		O:       (1-alpha)*Lambda1*h + alpha*Lambda2*l2,
	}
}

// Result is the outcome of an optimization run.
type Result struct {
	DQT   quant.DQT
	Trace []Point // objective after each iteration (index 0 = seed)
}

// Optimize minimizes the objective starting from seed.
func Optimize(seed quant.DQT, samples []*tensor.Tensor, cfg Config) Result {
	cfg = cfg.withDefaults()
	d := seed
	d.Entries[0] = 8 // pin the mean coefficient (§IV)

	res := Result{Trace: []Point{Evaluate(d, samples, cfg.Alpha, cfg.S)}}
	groups := entryGroups(cfg.Grouped)

	for it := 0; it < cfg.Iters; it++ {
		base := res.Trace[len(res.Trace)-1]
		grad := make([]float64, len(groups))
		for gi, g := range groups {
			probe := d
			for _, i := range g {
				probe.Entries[i] = clampEntry(probe.Entries[i] + cfg.Diff)
			}
			p := Evaluate(probe, samples, cfg.Alpha, cfg.S)
			grad[gi] = (p.O - base.O) / cfg.Diff
		}
		for gi, g := range groups {
			step := cfg.LR * grad[gi]
			for _, i := range g {
				d.Entries[i] = clampEntry(d.Entries[i] - step)
			}
		}
		d.Entries[0] = 8
		res.Trace = append(res.Trace, Evaluate(d, samples, cfg.Alpha, cfg.S))
	}
	res.DQT = d
	return res
}

func clampEntry(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 255 {
		return 255
	}
	return v
}

// entryGroups returns either each AC entry alone, or the 15 anti-diagonal
// groups (entries sharing r+c), excluding the pinned DC entry.
func entryGroups(grouped bool) [][]int {
	if !grouped {
		out := make([][]int, 0, 63)
		for i := 1; i < 64; i++ {
			out = append(out, []int{i})
		}
		return out
	}
	byDiag := map[int][]int{}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if r == 0 && c == 0 {
				continue
			}
			byDiag[r+c] = append(byDiag[r+c], r*8+c)
		}
	}
	out := make([][]int, 0, 14)
	for diag := 0; diag <= 14; diag++ {
		if g, ok := byDiag[diag]; ok {
			out = append(out, g)
		}
	}
	return out
}

// RateDistortion evaluates a set of DQTs plus k-bit SFPR points, the data
// behind Fig. 16. SFPR at k bits is modelled by re-quantizing the int8
// codes to k bits, giving an entropy of at most k bits/value.
type RDPoint struct {
	Name    string
	Entropy float64
	L2      float64
}

// RateDistortion computes the curve for the given tables and SFPR bit
// widths on the sample activations.
func RateDistortion(samples []*tensor.Tensor, tables []quant.DQT, sfprBits []uint, s float64) []RDPoint {
	var out []RDPoint
	for _, d := range tables {
		p := Evaluate(d, samples, 0, s)
		out = append(out, RDPoint{Name: d.Name, Entropy: p.Entropy, L2: p.L2})
	}
	for _, bits := range sfprBits {
		var allQ []int8
		var l2Sum float64
		for _, x := range samples {
			rec, q := sfprKBits(x, bits, s)
			allQ = append(allQ, q...)
			l2Sum += tensor.L2Error(x, rec)
		}
		out = append(out, RDPoint{
			Name:    sfprName(bits),
			Entropy: entropy.Shannon(allQ),
			L2:      l2Sum / float64(len(samples)),
		})
	}
	return out
}

func sfprName(bits uint) string {
	return "SFPR-" + string(rune('0'+bits)) + "bit"
}

// sfprKBits applies SFPR but keeps only the top k bits of each code.
func sfprKBits(x *tensor.Tensor, bits uint, s float64) (*tensor.Tensor, []int8) {
	if s == 0 {
		s = 1.125
	}
	shift := uint(8 - bits)
	c := compressSFPR(x, s)
	for i, v := range c {
		c[i] = int8((int32(v) >> shift) << shift)
	}
	rec := tensor.New(x.Shape.N, x.Shape.C, x.Shape.H, x.Shape.W)
	scales := channelScales(x, s)
	dequant(c, scales, rec)
	return rec, c
}

func compressSFPR(x *tensor.Tensor, s float64) []int8 {
	scales := channelScales(x, s)
	vals := make([]int8, x.Elems())
	quantize(x, scales, vals)
	return vals
}

func channelScales(x *tensor.Tensor, s float64) []float32 {
	maxes := x.ChannelMaxAbs()
	scales := make([]float32, len(maxes))
	for c, m := range maxes {
		if m > 0 {
			scales[c] = float32(s / float64(m))
		}
	}
	return scales
}

func quantize(x *tensor.Tensor, scales []float32, vals []int8) {
	sh := x.Shape
	hw := sh.H * sh.W
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			sc := float64(scales[c]) * 128
			base := (n*sh.C + c) * hw
			for i := 0; i < hw; i++ {
				q := math.Round(float64(x.Data[base+i]) * sc)
				if q > 127 {
					q = 127
				}
				if q < -128 {
					q = -128
				}
				vals[base+i] = int8(q)
			}
		}
	}
}

func dequant(vals []int8, scales []float32, x *tensor.Tensor) {
	sh := x.Shape
	hw := sh.H * sh.W
	for n := 0; n < sh.N; n++ {
		for c := 0; c < sh.C; c++ {
			var inv float32
			if scales[c] != 0 {
				inv = 1 / (scales[c] * 128)
			}
			base := (n*sh.C + c) * hw
			for i := 0; i < hw; i++ {
				x.Data[base+i] = float32(vals[base+i]) * inv
			}
		}
	}
}
