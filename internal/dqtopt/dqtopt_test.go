package dqtopt

import (
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func samples(seed uint64, n int) []*tensor.Tensor {
	r := tensor.NewRNG(seed)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = data.ActivationTensor(r, 1, 4, 16, 16, 0.5, 1.0)
	}
	return out
}

func TestEvaluateMonotoneInQuantization(t *testing.T) {
	s := samples(1, 3)
	weak := Evaluate(quant.Uniform("weak", 8, 2), s, 0.01, 1.125)
	strong := Evaluate(quant.Uniform("strong", 8, 64), s, 0.01, 1.125)
	if strong.Entropy >= weak.Entropy {
		t.Fatalf("stronger quantization must lower entropy: %v vs %v", strong.Entropy, weak.Entropy)
	}
	if strong.L2 <= weak.L2 {
		t.Fatalf("stronger quantization must raise error: %v vs %v", strong.L2, weak.L2)
	}
}

func TestObjectiveWeighting(t *testing.T) {
	s := samples(2, 2)
	d := quant.Uniform("d", 8, 16)
	lowAlpha := Evaluate(d, s, 0.001, 1.125)
	highAlpha := Evaluate(d, s, 0.1, 1.125)
	// Same table, same (H, L2); only the mixing changes.
	if lowAlpha.Entropy != highAlpha.Entropy || lowAlpha.L2 != highAlpha.L2 {
		t.Fatal("alpha must not change measurements")
	}
	wantLow := (1-0.001)*Lambda1*lowAlpha.Entropy + 0.001*Lambda2*lowAlpha.L2
	if lowAlpha.O != wantLow {
		t.Fatalf("objective %v, want %v", lowAlpha.O, wantLow)
	}
}

func TestOptimizeImprovesObjective(t *testing.T) {
	s := samples(3, 2)
	seed := quant.Uniform("seed", 8, 16)
	res := Optimize(seed, s, Config{Alpha: 0.01, Iters: 4, Grouped: true})
	first := res.Trace[0].O
	last := res.Trace[len(res.Trace)-1].O
	if last >= first {
		t.Fatalf("objective did not improve: %v -> %v", first, last)
	}
	if res.DQT.Entries[0] != 8 {
		t.Fatal("DC entry must stay pinned to 8")
	}
	for i, v := range res.DQT.Entries {
		if v < 1 || v > 255 {
			t.Fatalf("entry %d out of range: %v", i, v)
		}
	}
}

func TestAlphaControlsRateDistortion(t *testing.T) {
	// Higher α (more weight on L2) must land at lower error and higher
	// entropy than lower α — the optL vs optH relationship.
	s := samples(4, 2)
	seed := quant.Uniform("seed", 8, 16)
	lo := Optimize(seed, s, Config{Alpha: 0.002, Iters: 6, Grouped: true})
	hi := Optimize(seed, s, Config{Alpha: 0.05, Iters: 6, Grouped: true})
	pl := lo.Trace[len(lo.Trace)-1]
	ph := hi.Trace[len(hi.Trace)-1]
	if ph.L2 >= pl.L2 {
		t.Fatalf("high-alpha error %v must be below low-alpha %v", ph.L2, pl.L2)
	}
	if ph.Entropy <= pl.Entropy {
		t.Fatalf("high-alpha entropy %v must exceed low-alpha %v", ph.Entropy, pl.Entropy)
	}
}

func TestEntryGroups(t *testing.T) {
	full := entryGroups(false)
	if len(full) != 63 {
		t.Fatalf("full groups %d", len(full))
	}
	grouped := entryGroups(true)
	if len(grouped) != 14 { // diagonal 0 holds only the pinned DC
		t.Fatalf("diagonal groups %d", len(grouped))
	}
	seen := map[int]bool{}
	for _, g := range grouped {
		for _, i := range g {
			if i == 0 || seen[i] {
				t.Fatalf("bad group entry %d", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 63 {
		t.Fatalf("groups cover %d entries", len(seen))
	}
}

func TestRateDistortionCurve(t *testing.T) {
	s := samples(5, 2)
	pts := RateDistortion(s,
		[]quant.DQT{quant.JPEGQuality(80), quant.JPEGQuality(60)},
		[]uint{2, 3, 4}, 1.125)
	if len(pts) != 5 {
		t.Fatalf("points %d", len(pts))
	}
	byName := map[string]RDPoint{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	// jpeg60 compresses more (lower entropy, higher error) than jpeg80.
	if byName["jpeg60"].Entropy >= byName["jpeg80"].Entropy {
		t.Fatal("jpeg60 must have lower entropy than jpeg80")
	}
	if byName["jpeg60"].L2 <= byName["jpeg80"].L2 {
		t.Fatal("jpeg60 must have higher error than jpeg80")
	}
	// SFPR bit sweep: fewer bits = lower entropy, higher error.
	if byName["SFPR-2bit"].Entropy >= byName["SFPR-4bit"].Entropy {
		t.Fatal("SFPR-2bit must have lower entropy")
	}
	if byName["SFPR-2bit"].L2 <= byName["SFPR-4bit"].L2 {
		t.Fatal("SFPR-2bit must have higher error")
	}
	// Transform coding dominates plain precision reduction at similar
	// error: jpeg80's entropy should be well below 4-bit SFPR's at a
	// comparable or lower error — the Fig. 16 takeaway.
	if byName["jpeg80"].Entropy >= byName["SFPR-4bit"].Entropy {
		t.Fatal("jpeg80 should code below SFPR-4bit entropy")
	}
}

func TestOptimizedBeatsImageTableAtSameError(t *testing.T) {
	// The §IV result: optimizing for activations yields lower entropy at
	// similar error than an image DQT. Optimize from the jpeg80 seed and
	// compare the final objective against the seed's.
	s := samples(6, 3)
	seed := quant.JPEGQuality(80)
	res := Optimize(seed, s, Config{Alpha: 0.005, Iters: 6, Grouped: true})
	seedPt := Evaluate(seed, s, 0.005, 1.125)
	optPt := res.Trace[len(res.Trace)-1]
	if optPt.O >= seedPt.O {
		t.Fatalf("optimization failed to beat the image table: %v vs %v", optPt.O, seedPt.O)
	}
}
