package benchmeta

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestCollect: the always-available fields must be filled from the
// runtime, and the block must serialize under the shared schema keys.
func TestCollect(t *testing.T) {
	m := Collect()
	if m.OS != runtime.GOOS || m.Arch != runtime.GOARCH {
		t.Fatalf("os/arch %s/%s", m.OS, m.Arch)
	}
	if m.Cores < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("cores=%d gomaxprocs=%d", m.Cores, m.GOMAXPROCS)
	}
	if m.GoVersion == "" {
		t.Fatal("empty go version")
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(b, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"machine", "os", "arch", "cores", "gomaxprocs", "go_version"} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("schema key %q missing from %s", k, b)
		}
	}
}
