// Package benchmeta collects the machine/build provenance block every
// BENCH_*.json report embeds, so numbers from different machines or
// revisions are never compared as if they were one population.
package benchmeta

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Meta is the shared provenance schema. All fields are best-effort:
// a missing git binary or a non-repo working directory leaves GitRev
// empty rather than failing the benchmark.
type Meta struct {
	Machine    string `json:"machine"`           // hostname
	OS         string `json:"os"`                // runtime.GOOS
	Arch       string `json:"arch"`              // runtime.GOARCH
	Cores      int    `json:"cores"`             // runtime.NumCPU
	GOMAXPROCS int    `json:"gomaxprocs"`        // effective at collection time
	GoVersion  string `json:"go_version"`        // runtime.Version
	GitRev     string `json:"git_rev,omitempty"` // HEAD short hash, "-dirty" suffixed
}

// Collect gathers the provenance block for the current process.
func Collect() Meta {
	m := Meta{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if host, err := os.Hostname(); err == nil {
		m.Machine = host
	}
	m.GitRev = gitRev()
	return m
}

// gitRev returns the short HEAD hash with a "-dirty" suffix when the
// tree has uncommitted changes; empty when git or the repo is absent.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return ""
	}
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(status))) > 0 {
		rev += "-dirty"
	}
	return rev
}
