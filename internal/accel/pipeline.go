package accel

// Tick-level simulation of the CDU compression pipeline (Fig. 8): the
// crossbar load, SFPR, alignment buffer, two DCT passes, SH, ZVC, and
// the shared collector are each modelled as pipeline stages advanced one
// interconnect cycle at a time with real backpressure. It validates the
// closed-form cycle model used by Compress/gpusim: the steady-state rate
// must be one block per 8 cycles per CDU with the collector never the
// bottleneck for ≤ 8 CDUs.

// stage is one pipeline stage holding at most Capacity blocks for
// Latency cycles each.
type stage struct {
	name     string
	latency  int
	capacity int
	// entries are (blockID, readyCycle) pairs.
	ids   []int
	ready []int
}

func newStage(name string, latency, capacity int) *stage {
	return &stage{name: name, latency: latency, capacity: capacity}
}

func (s *stage) canAccept() bool { return len(s.ids) < s.capacity }

func (s *stage) push(id, now int) {
	s.ids = append(s.ids, id)
	s.ready = append(s.ready, now+s.latency)
}

// front returns the oldest block if it has finished its latency.
func (s *stage) front(now int) (int, bool) {
	if len(s.ids) == 0 || s.ready[0] > now {
		return 0, false
	}
	return s.ids[0], true
}

func (s *stage) pop() {
	s.ids = s.ids[1:]
	s.ready = s.ready[1:]
}

// cduPipe is one CDU's stage chain.
type cduPipe struct {
	load  *stage // crossbar load: 8 cycles per block (32 B/cycle of 256 B)
	sfpr  *stage // hidden under the load in the RTL; 0-latency pass-through
	align *stage // alignment buffer: 4 blocks
	dct1  *stage // first DCT pass: 4 cycles
	dct2  *stage // second DCT pass: 4 cycles
	shzvc *stage // SH + ZVC: 1 cycle each, fused here
	done  []int  // block IDs waiting for the collector
}

func newCDUPipe() *cduPipe {
	return &cduPipe{
		load:  newStage("load", cyclesPerBlockLoad, 1),
		sfpr:  newStage("sfpr", 0, 1),
		align: newStage("align", 0, 4),
		dct1:  newStage("dct1", 4, 1),
		dct2:  newStage("dct2", 4, 1),
		shzvc: newStage("shzvc", 2, 1),
	}
}

// tick advances the pipe one cycle, draining back-to-front so a block can
// move one stage per cycle.
func (p *cduPipe) tick(now int, nextBlock func() (int, bool)) {
	if id, ok := p.shzvc.front(now); ok {
		p.shzvc.pop()
		p.done = append(p.done, id)
	}
	move := func(from, to *stage) {
		if id, ok := from.front(now); ok && to.canAccept() {
			from.pop()
			to.push(id, now)
		}
	}
	move(p.dct2, p.shzvc)
	move(p.dct1, p.dct2)
	move(p.align, p.dct1)
	move(p.sfpr, p.align)
	move(p.load, p.sfpr)
	if p.load.canAccept() {
		if id, ok := nextBlock(); ok {
			p.load.push(id, now)
		}
	}
}

// PipelineStats summarizes a tick-level run.
type PipelineStats struct {
	Cycles          int
	Blocks          int
	CollectorStalls int // cycles a CDU held a finished block because the collector was busy
}

// SimulatePipeline runs nBlocks through nCDU tick-level pipes with a
// one-block-per-cycle round-robin collector, returning the cycle count.
func SimulatePipeline(nBlocks, nCDU int) PipelineStats {
	if nCDU < 1 {
		nCDU = 1
	}
	pipes := make([]*cduPipe, nCDU)
	for i := range pipes {
		pipes[i] = newCDUPipe()
	}
	next := 0
	feeder := func(cdu int) func() (int, bool) {
		return func() (int, bool) {
			// Round-robin distribution: block i goes to CDU i%nCDU.
			if next >= nBlocks || next%nCDU != cdu {
				return 0, false
			}
			id := next
			next++
			return id, true
		}
	}
	collected := 0
	rr := 0
	stats := PipelineStats{Blocks: nBlocks}
	for cycle := 0; collected < nBlocks; cycle++ {
		if cycle > 1000*nBlocks+1000 {
			panic("accel: pipeline simulation did not converge")
		}
		// Collector: one block per cycle, round-robin over CDUs.
		for probe := 0; probe < nCDU; probe++ {
			c := (rr + probe) % nCDU
			if len(pipes[c].done) > 0 {
				pipes[c].done = pipes[c].done[1:]
				collected++
				rr = (c + 1) % nCDU
				break
			}
		}
		for i, p := range pipes {
			p.tick(cycle, feeder(i))
			if len(p.done) > 1 {
				stats.CollectorStalls++
			}
		}
		stats.Cycles = cycle + 1
	}
	return stats
}

// Decompression direction: the splitter feeds one block per cycle round-
// robin; each CDU runs ZVD → SH⁻¹ → two iDCT passes → SFPR restore. The
// stage latencies mirror the compression pipe, and the crossbar *store*
// rate (8 cycles per 256 B block per CDU) is the drain bound, so the
// backward path sustains the same one-block-per-8-cycles-per-CDU rate.

// decodePipe is one CDU's decompression stage chain.
type decodePipe struct {
	zvd   *stage // ZVD unpack: 1 cycle
	sh    *stage // inverse shift: 1 cycle
	idct1 *stage // first iDCT pass: 4 cycles
	idct2 *stage // second iDCT pass: 4 cycles
	store *stage // crossbar store: 8 cycles per block
	done  int
}

func newDecodePipe() *decodePipe {
	return &decodePipe{
		zvd:   newStage("zvd", 1, 1),
		sh:    newStage("sh", 1, 1),
		idct1: newStage("idct1", 4, 1),
		idct2: newStage("idct2", 4, 1),
		store: newStage("store", cyclesPerBlockLoad, 1),
	}
}

func (p *decodePipe) tick(now int, nextBlock func() (int, bool)) {
	if _, ok := p.store.front(now); ok {
		p.store.pop()
		p.done++
	}
	move := func(from, to *stage) {
		if id, ok := from.front(now); ok && to.canAccept() {
			from.pop()
			to.push(id, now)
		}
	}
	move(p.idct2, p.store)
	move(p.idct1, p.idct2)
	move(p.sh, p.idct1)
	move(p.zvd, p.sh)
	if p.zvd.canAccept() {
		if id, ok := nextBlock(); ok {
			p.zvd.push(id, now)
		}
	}
}

// SimulateDecompressPipeline runs nBlocks through nCDU decompression
// pipes with a one-block-per-cycle splitter, returning the cycle count.
func SimulateDecompressPipeline(nBlocks, nCDU int) PipelineStats {
	if nCDU < 1 {
		nCDU = 1
	}
	pipes := make([]*decodePipe, nCDU)
	for i := range pipes {
		pipes[i] = newDecodePipe()
	}
	next := 0
	stats := PipelineStats{Blocks: nBlocks}
	total := 0
	for cycle := 0; total < nBlocks; cycle++ {
		if cycle > 1000*nBlocks+1000 {
			panic("accel: decompress pipeline did not converge")
		}
		// Splitter: offers the next block to its round-robin target CDU;
		// if that CDU's front stage is busy, the offer stalls this cycle.
		if next < nBlocks {
			target := pipes[next%nCDU]
			if target.zvd.canAccept() {
				target.zvd.push(next, cycle)
				next++
			}
		}
		total = 0
		for _, p := range pipes {
			p.tick(cycle, func() (int, bool) { return 0, false })
			total += p.done
		}
		stats.Cycles = cycle + 1
	}
	return stats
}
