package accel

import "testing"

func TestPipelineSteadyStateRate(t *testing.T) {
	// The tick-level model must sustain one block per 8 cycles per CDU:
	// the closed-form cycle model (cycles ≈ 8·ceil(n/c) + latency) should
	// match within the fill latency.
	for _, nCDU := range []int{1, 2, 4, 8} {
		n := 128
		st := SimulatePipeline(n, nCDU)
		closed := (n+nCDU-1)/nCDU*cyclesPerBlockLoad + pipelineLatency
		diff := st.Cycles - closed
		if diff < -pipelineLatency || diff > pipelineLatency {
			t.Fatalf("nCDU=%d: tick %d vs closed-form %d", nCDU, st.Cycles, closed)
		}
	}
}

func TestPipelineCollectorNeverBottlenecksUpTo8CDUs(t *testing.T) {
	// §III-G: the CDUs produce at most one block per 8 cycles each, and
	// the collector drains one per cycle, so with ≤ 8 CDUs no finished
	// block ever queues behind the collector.
	for _, nCDU := range []int{1, 4, 8} {
		st := SimulatePipeline(96, nCDU)
		if st.CollectorStalls > 0 {
			t.Fatalf("nCDU=%d: %d collector stalls", nCDU, st.CollectorStalls)
		}
	}
}

func TestPipelineCollectorBindsBeyond8CDUs(t *testing.T) {
	// With 16 CDUs the aggregate rate (2 blocks/cycle) exceeds the
	// collector's 1/cycle, so stalls must appear — the reason the design
	// stops at 8 CDUs per collector.
	st := SimulatePipeline(256, 16)
	if st.CollectorStalls == 0 {
		t.Fatal("16 CDUs should overwhelm a 1 block/cycle collector")
	}
	// And throughput saturates near 1 block/cycle instead of 2.
	perBlock := float64(st.Cycles) / 256
	if perBlock < 0.9 {
		t.Fatalf("throughput %v blocks/cycle exceeds the collector rate", 1/perBlock)
	}
}

func TestPipelineTinyRuns(t *testing.T) {
	st := SimulatePipeline(1, 4)
	if st.Cycles < cyclesPerBlockLoad || st.Cycles > 4*pipelineLatency {
		t.Fatalf("single-block latency %d", st.Cycles)
	}
	if SimulatePipeline(0, 4).Cycles != 0 {
		t.Fatal("zero blocks should take zero cycles")
	}
}

func TestDecompressPipelineRate(t *testing.T) {
	// The backward path must sustain the same rate as compression: the
	// crossbar store bound of one block per 8 cycles per CDU.
	for _, nCDU := range []int{1, 2, 4} {
		n := 96
		st := SimulateDecompressPipeline(n, nCDU)
		closed := (n+nCDU-1)/nCDU*cyclesPerBlockLoad + pipelineLatency
		diff := st.Cycles - closed
		if diff < -2*pipelineLatency || diff > 2*pipelineLatency {
			t.Fatalf("nCDU=%d: tick %d vs closed-form %d", nCDU, st.Cycles, closed)
		}
	}
}

func TestDecompressPipelineTiny(t *testing.T) {
	if SimulateDecompressPipeline(0, 4).Cycles != 0 {
		t.Fatal("zero blocks should take zero cycles")
	}
	st := SimulateDecompressPipeline(1, 2)
	if st.Cycles < cyclesPerBlockLoad {
		t.Fatalf("single-block latency %d below store time", st.Cycles)
	}
}
