package accel

import (
	"math"
	"testing"
	"testing/quick"

	"jpegact/internal/data"
	"jpegact/internal/dct"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func TestByteFIFO(t *testing.T) {
	f := NewByteFIFO(8)
	if !f.CanPush(8) || f.CanPush(9) {
		t.Fatal("capacity accounting wrong")
	}
	f.Push([]byte{1, 2, 3})
	f.Push([]byte{4, 5})
	if f.Len() != 5 {
		t.Fatalf("len %d", f.Len())
	}
	head, err := f.Peek(2)
	if err != nil || head[0] != 1 || head[1] != 2 {
		t.Fatalf("peek %v %v", head, err)
	}
	got, err := f.Pop(4)
	if err != nil || got[3] != 4 {
		t.Fatalf("pop %v %v", got, err)
	}
	if _, err := f.Pop(2); err != ErrUnderflow {
		t.Fatalf("want underflow, got %v", err)
	}
}

func TestByteFIFOOverflowPanics(t *testing.T) {
	f := NewByteFIFO(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Push([]byte{1, 2, 3})
}

func TestBlockZVCRoundtrip(t *testing.T) {
	r := tensor.NewRNG(1)
	f := func(sparsity uint8) bool {
		var q [64]int8
		for i := range q {
			if r.Float64() >= float64(sparsity%101)/100 {
				v := r.Intn(255) - 127
				if v == 0 {
					v = 1
				}
				q[i] = int8(v)
			}
		}
		enc := encodeBlockZVC(&q)
		if len(enc) != blockSizeFromMask(enc[:8]) {
			return false
		}
		return decodeBlockZVC(enc) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randBlocks(seed uint64, n int) [][64]float32 {
	r := tensor.NewRNG(seed)
	plane := data.ActivationLike(r, 8, 8*n, 0.5, 1.0)
	out := make([][64]float32, n)
	for b := 0; b < n; b++ {
		for row := 0; row < 8; row++ {
			copy(out[b][row*8:(row+1)*8], plane[row*8*n+b*8:row*8*n+b*8+8])
		}
	}
	return out
}

func maxAbsBlocks(blocks [][64]float32) float32 {
	var m float32
	for i := range blocks {
		for _, v := range blocks[i] {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
	}
	return m
}

func TestCompressDecompressRoundtrip(t *testing.T) {
	blocks := randBlocks(2, 37)
	sc := float32(1.125) / maxAbsBlocks(blocks)
	for _, ncdu := range []int{1, 4, 8} {
		a := New(ncdu, quant.OptL())
		s := a.Compress(blocks, sc)
		if s.Blocks != 37 {
			t.Fatalf("blocks %d", s.Blocks)
		}
		rec, cycles := a.Decompress(s, sc)
		if len(rec) != 37 || cycles <= 0 {
			t.Fatalf("rec %d cycles %d", len(rec), cycles)
		}
		// Reconstruction error bounded by SFPR step + SH quantization.
		step := 1.125 / float64(maxAbsBlocks(blocks)) // code unit in value space
		_ = step
		var worst float64
		for b := range blocks {
			for i := range blocks[b] {
				d := math.Abs(float64(rec[b][i] - blocks[b][i]))
				if d > worst {
					worst = d
				}
			}
		}
		scale := float64(maxAbsBlocks(blocks))
		if worst > scale*0.25 {
			t.Fatalf("ncdu=%d worst error %v vs scale %v", ncdu, worst, scale)
		}
	}
}

func TestStreamFraming(t *testing.T) {
	blocks := randBlocks(3, 10)
	sc := float32(1.0) / maxAbsBlocks(blocks)
	a := New(4, quant.OptH())
	s := a.Compress(blocks, sc)
	for i, p := range s.Packets {
		if len(p) != PacketBytes {
			t.Fatalf("packet %d size %d", i, len(p))
		}
	}
	// True bytes fit within the packets, with less than one packet of pad.
	if s.Bytes > len(s.Packets)*PacketBytes || len(s.Packets)*PacketBytes-s.Bytes >= PacketBytes {
		t.Fatalf("framing: %d bytes in %d packets", s.Bytes, len(s.Packets))
	}
	if s.Ratio() <= 1 {
		t.Fatalf("ratio %v", s.Ratio())
	}
}

func TestCyclesModel(t *testing.T) {
	blocks := randBlocks(4, 64)
	sc := float32(1.0) / maxAbsBlocks(blocks)
	t1 := New(1, quant.OptH()).Compress(blocks, sc).Cycles
	t4 := New(4, quant.OptH()).Compress(blocks, sc).Cycles
	t8 := New(8, quant.OptH()).Compress(blocks, sc).Cycles
	// 64 blocks: 1 CDU = 512 + latency; 4 CDUs = 128 + latency.
	if t1 != 64*cyclesPerBlockLoad+pipelineLatency {
		t.Fatalf("t1 = %d", t1)
	}
	if t4 != 16*cyclesPerBlockLoad+pipelineLatency {
		t.Fatalf("t4 = %d", t4)
	}
	if !(t8 < t4 && t4 < t1) {
		t.Fatalf("cycles not scaling: %d %d %d", t1, t4, t8)
	}
	// Per-CDU ingest: 256 B per 8 cycles = 32 B/cycle (§III-G).
	s := New(1, quant.OptH()).Compress(blocks, sc)
	if tp := s.ThroughputBytesPerCycle(); tp < 28 || tp > 32.5 {
		t.Fatalf("single-CDU throughput %v B/cycle", tp)
	}
}

func TestHigherQuantizationCompressesMore(t *testing.T) {
	blocks := randBlocks(5, 32)
	sc := float32(1.125) / maxAbsBlocks(blocks)
	l := New(4, quant.OptL()).Compress(blocks, sc)
	h := New(4, quant.OptH()).Compress(blocks, sc)
	if h.Bytes >= l.Bytes {
		t.Fatalf("optH %dB should beat optL %dB", h.Bytes, l.Bytes)
	}
}

func TestAccelMatchesSoftwarePipeline(t *testing.T) {
	// The hardware fixed-point path must agree with the float functional
	// pipeline within the Q13 rounding budget: compare quantized blocks.
	blocks := randBlocks(6, 16)
	sc := float32(1.125) / maxAbsBlocks(blocks)
	a := New(4, quant.OptL())
	mismatch := 0
	total := 0
	for bi := range blocks {
		_, qHW := a.compressBlock(&blocks[bi], sc)
		// Software: same SFPR codes, float DCT, SH quantize.
		var fb [64]float32
		for i, v := range blocks[bi] {
			fb[i] = float32(sfprQuantize(v, sc))
		}
		var dctBlk [64]float32
		copy(dctBlk[:], fb[:])
		blkp := (*[64]float32)(&dctBlk)
		forward8x8Float(blkp)
		var qSW [64]int8
		d := quant.OptL()
		quant.ShiftQuantizeFloat(blkp, &d, &qSW)
		for i := range qHW {
			total++
			diff := int(qHW[i]) - int(qSW[i])
			if diff < -1 || diff > 1 {
				t.Fatalf("block %d coeff %d: hw %d sw %d", bi, i, qHW[i], qSW[i])
			}
			if diff != 0 {
				mismatch++
			}
		}
	}
	if float64(mismatch)/float64(total) > 0.10 {
		t.Fatalf("too many ±1 rounding mismatches: %d/%d", mismatch, total)
	}
}

// forward8x8Float adapts dct.Forward8x8 to a flat array.
func forward8x8Float(b *[64]float32) {
	var db dct.Block
	copy(db[:], b[:])
	dct.Forward8x8(&db)
	copy(b[:], db[:])
}

func TestDecompressPanicsOnTruncatedStream(t *testing.T) {
	blocks := randBlocks(7, 8)
	sc := float32(1.0) / maxAbsBlocks(blocks)
	a := New(2, quant.OptH())
	s := a.Compress(blocks, sc)
	s.Packets = s.Packets[:0]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncated stream")
		}
	}()
	a.Decompress(s, sc)
}
