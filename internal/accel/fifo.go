// Package accel is a cycle-counted functional model of the JPEG-ACT
// offload accelerator datapath (Fig. 8): SFPR processing elements, the
// 256 B alignment buffer, the two-pass fixed-point DCT unit, the SH
// quantizer, ZVC coding, and the collector/splitter FIFOs that marshal
// variable-size compressed blocks into fixed 128 B DMA packets
// (DESIGN.md substitution 6). It is byte-exact with respect to its own
// inverse and numerically equivalent (within integer rounding) to the
// software pipeline in internal/compress, and its cycle counts back the
// CDU throughput constants used by internal/gpusim.
package accel

import "errors"

// ErrUnderflow is returned when a FIFO pop exceeds its fill.
var ErrUnderflow = errors.New("accel: fifo underflow")

// ByteFIFO models the collector IFIFO / splitter OFIFO: a byte queue
// with variable-size pushes (0–72 B compressed blocks) and fixed-size
// pops (128 B DMA packets), as in Fig. 15. Capacity is enforced like the
// RTL: a push that would overflow stalls the producer (the caller checks
// CanPush).
type ByteFIFO struct {
	buf      []byte
	capacity int
}

// NewByteFIFO builds a FIFO of the given capacity (256 B in the paper).
func NewByteFIFO(capacity int) *ByteFIFO {
	return &ByteFIFO{capacity: capacity}
}

// Len returns the current fill in bytes.
func (f *ByteFIFO) Len() int { return len(f.buf) }

// CanPush reports whether n more bytes fit.
func (f *ByteFIFO) CanPush(n int) bool { return len(f.buf)+n <= f.capacity }

// Push appends data; the caller must have checked CanPush.
func (f *ByteFIFO) Push(data []byte) {
	if !f.CanPush(len(data)) {
		panic("accel: fifo overflow (producer must stall)")
	}
	f.buf = append(f.buf, data...)
}

// Pop removes and returns n bytes from the head.
func (f *ByteFIFO) Pop(n int) ([]byte, error) {
	if len(f.buf) < n {
		return nil, ErrUnderflow
	}
	out := make([]byte, n)
	copy(out, f.buf[:n])
	f.buf = f.buf[n:]
	return out, nil
}

// Peek returns the first n bytes without removing them.
func (f *ByteFIFO) Peek(n int) ([]byte, error) {
	if len(f.buf) < n {
		return nil, ErrUnderflow
	}
	return f.buf[:n], nil
}
